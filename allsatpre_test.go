package allsatpre

import (
	"math/big"
	"os"
	"strings"
	"testing"
)

func TestLoadBenchAndPreimage(t *testing.T) {
	c, err := LoadBench("testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Latches) != 3 {
		t.Fatalf("s27 should have 3 latches")
	}
	r, err := Preimage(c, Options{}, "111")
	if err != nil {
		t.Fatal(err)
	}
	if r.Count == nil || r.StateSpace.Size() != 3 {
		t.Fatal("result shape")
	}
	// Cross-engine agreement through the facade.
	for _, eng := range []Engine{EngineBlocking, EngineLifting, EngineBDD} {
		r2, err := Preimage(c, Options{Engine: eng}, "111")
		if err != nil {
			t.Fatal(err)
		}
		if r.Count.Cmp(r2.Count) != 0 {
			t.Fatalf("engine %v disagrees: %v vs %v", eng, r2.Count, r.Count)
		}
	}
}

func TestLoadBenchMissingFile(t *testing.T) {
	if _, err := LoadBench("testdata/nope.bench"); err == nil {
		t.Fatal("expected error")
	}
}

func TestLoadAiger(t *testing.T) {
	c, err := LoadAiger("testdata/johnson4.aag")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Latches) != 4 || len(c.Inputs) != 0 {
		t.Fatalf("johnson4.aag shape: %v", c.Stats())
	}
	// Behaves like a Johnson counter: preimage of 1000 is {0000}.
	r, err := Preimage(c, Options{}, "1000")
	if err != nil {
		t.Fatal(err)
	}
	if r.Count.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("preimage count %v, want 1", r.Count)
	}
	if r.States.Cubes()[0].String() != "0000" {
		t.Fatalf("preimage %s, want 0000", r.States.Cubes()[0])
	}
	if _, err := LoadAiger("testdata/nope.aag"); err == nil {
		t.Fatal("expected missing-file error")
	}
	if _, err := LoadAiger("testdata/s27.bench"); err == nil {
		t.Fatal("expected parse error for BENCH content")
	}
}

func TestParseBench(t *testing.T) {
	c, err := ParseBench("mini", "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Latches) != 1 {
		t.Fatal("latch count")
	}
	if _, err := ParseBench("bad", "garbage("); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestTargetValidation(t *testing.T) {
	c := NewCounter(4, true, false)
	if _, err := Target(c, "11"); err == nil {
		t.Fatal("expected width error")
	}
	cv, err := Target(c, "1XX0", "0011")
	if err != nil || cv.Len() != 2 {
		t.Fatal("Target failed")
	}
	if _, err := Preimage(c, Options{}, "1"); err == nil {
		t.Fatal("Preimage should propagate width error")
	}
	if _, err := BackwardReach(c, Options{}, 1, "1"); err == nil {
		t.Fatal("BackwardReach should propagate width error")
	}
}

func TestFacadeBackwardReach(t *testing.T) {
	c := NewCounter(3, true, false)
	r, err := BackwardReach(c, Options{}, -1, "101")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Fixpoint || r.AllCount.Cmp(big.NewInt(8)) != 0 {
		t.Fatalf("reach: fixpoint=%v all=%v", r.Fixpoint, r.AllCount)
	}
}

func TestPreimageOf(t *testing.T) {
	c := NewShiftRegister(4)
	target, _ := Target(c, "1XXX")
	r, err := PreimageOf(c, target, Options{Engine: EngineBDD})
	if err != nil {
		t.Fatal(err)
	}
	// s0' = sin, so every state can reach s0'=1: preimage is all 16.
	if r.Count.Cmp(big.NewInt(16)) != 0 {
		t.Fatalf("count %v, want 16", r.Count)
	}
}

func TestEnumerateDimacs(t *testing.T) {
	src := "c proj 1 2\np cnf 3 2\n1 2 0\n-1 3 0\n"
	for _, eng := range []Engine{EngineSuccessDriven, EngineBlocking, EngineLifting} {
		r, err := EnumerateDimacs(strings.NewReader(src), eng, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Projections of models onto (x1,x2): 01, 10, 11 → 3.
		if r.Count.Cmp(big.NewInt(3)) != 0 {
			t.Fatalf("engine %v: count %v, want 3", eng, r.Count)
		}
	}
	// Explicit projection overrides the file.
	r, err := EnumerateDimacs(strings.NewReader(src), EngineSuccessDriven, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Count.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("count %v, want 2", r.Count)
	}
	// No projection info: all variables.
	r, err = EnumerateDimacs(strings.NewReader("p cnf 2 1\n1 0\n"), EngineSuccessDriven, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("count %v, want 2", r.Count)
	}
}

func TestEnumerateDimacsPreprocess(t *testing.T) {
	// Subsumed clause plus implied unit: preprocessing must not change
	// the projected solution set.
	src := "c proj 1 2 3\np cnf 4 4\n1 2 0\n1 2 3 0\n4 0\n-4 1 0\n"
	plain, err := EnumerateDimacs(strings.NewReader(src), EngineSuccessDriven, nil)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := EnumerateDimacsOpts(strings.NewReader(src), DimacsOptions{
		Engine: EngineSuccessDriven, Preprocess: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Count.Cmp(pre.Count) != 0 {
		t.Fatalf("preprocessing changed the count: %v vs %v", plain.Count, pre.Count)
	}
	// A contradictory formula preprocesses to an empty result.
	unsat := "p cnf 1 2\n1 0\n-1 0\n"
	r, err := EnumerateDimacsOpts(strings.NewReader(unsat), DimacsOptions{
		Engine: EngineBlocking, Preprocess: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Count.Sign() != 0 {
		t.Fatal("UNSAT after preprocessing should have empty projection")
	}
}

func TestDimacsFixturesGolden(t *testing.T) {
	cases := []struct {
		file  string
		count int64
	}{
		{"testdata/parity5.cnf", 16}, // odd-parity assignments of 5 bits
		{"testdata/mux4.cnf", 8},     // every (sel, out) pair is realizable
	}
	for _, tc := range cases {
		data, err := os.ReadFile(tc.file)
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range []Engine{EngineSuccessDriven, EngineBlocking, EngineLifting} {
			r, err := EnumerateDimacs(strings.NewReader(string(data)), eng, nil)
			if err != nil {
				t.Fatalf("%s/%v: %v", tc.file, eng, err)
			}
			if r.Count.Cmp(big.NewInt(tc.count)) != 0 {
				t.Fatalf("%s/%v: count %v, want %d", tc.file, eng, r.Count, tc.count)
			}
		}
	}
}

func TestEnumerateDimacsErrors(t *testing.T) {
	if _, err := EnumerateDimacs(strings.NewReader("p cnf x\n"), EngineSuccessDriven, nil); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := EnumerateDimacs(strings.NewReader("p cnf 2 0\n"), EngineSuccessDriven, []int{5}); err == nil {
		t.Fatal("expected projection range error")
	}
	if _, err := EnumerateDimacs(strings.NewReader("p cnf 2 0\n"), EngineBDD, nil); err == nil {
		t.Fatal("BDD engine should refuse raw CNF")
	}
}

func TestFacadeImageAndForwardReach(t *testing.T) {
	c := NewCounter(3, true, false)
	img, err := Image(c, Options{}, "000")
	if err != nil {
		t.Fatal(err)
	}
	if img.Count.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("image of {0} should be {0,1}: %v", img.Count)
	}
	init, _ := Target(c, "000")
	img2, err := ImageOf(c, init, Options{Engine: EngineBDD})
	if err != nil {
		t.Fatal(err)
	}
	if img2.Count.Cmp(img.Count) != 0 {
		t.Fatal("ImageOf/BDD disagrees")
	}
	fr, err := ForwardReach(c, Options{}, -1, "000")
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Fixpoint || fr.AllCount.Cmp(big.NewInt(8)) != 0 {
		t.Fatalf("forward reach: %v", fr.AllCount)
	}
	if _, err := Image(c, Options{}, "bad"); err == nil {
		t.Fatal("Image should reject bad pattern")
	}
	if _, err := ForwardReach(c, Options{}, 1, "toolongpattern"); err == nil {
		t.Fatal("ForwardReach should reject bad pattern")
	}
}

func TestFacadeCheckReachable(t *testing.T) {
	c := NewJohnson(4)
	init, _ := Target(c, "0000")
	bad, _ := Target(c, "0101")
	res, err := CheckReachable(c, init, bad, -1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable || !res.Complete {
		t.Fatalf("0101 should be provably unreachable: %+v", res)
	}
	if res.Invariant == nil {
		t.Fatal("unreachable verdict should carry an invariant")
	}
	if err := VerifyInvariant(c, init, bad, res.Invariant, Options{}); err != nil {
		t.Fatalf("facade invariant verification failed: %v", err)
	}
	// k-step one-shot preimage through the facade.
	ks, err := KStepPreimage(c, Options{}, 2, "1100")
	if err != nil {
		t.Fatal(err)
	}
	if ks.Count.Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("k-step preimage count %v, want 3 (states 1100, 1000, 0000)", ks.Count)
	}
	if _, err := KStepPreimage(c, Options{}, 2, "bad!"); err == nil {
		t.Fatal("KStepPreimage should reject bad patterns")
	}
	good, _ := Target(c, "1100")
	res2, err := CheckReachable(c, init, good, -1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Reachable || res2.Trace == nil || res2.Steps != 2 {
		t.Fatalf("1100 should be reachable in 2 steps: %+v", res2)
	}
}

func TestWitnessesFacade(t *testing.T) {
	c := NewCounter(4, true, false)
	wi, err := Witnesses(c, Options{}, "0110") // state 6: witnesses (5,en=1),(6,en=0)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		w, ok := wi.Next()
		if !ok {
			break
		}
		if len(w.State) != 4 || len(w.Inputs) != 1 {
			t.Fatalf("witness shape: %v %v", w.State, w.Inputs)
		}
		n++
		if n > 10 {
			t.Fatal("too many witnesses")
		}
	}
	if n == 0 {
		t.Fatal("no witnesses")
	}
	if _, err := Witnesses(c, Options{}, "01"); err == nil {
		t.Fatal("expected width error")
	}
}

func TestSimulateStep(t *testing.T) {
	c := NewCounter(4, true, false)
	_, next, err := SimulateStep(c, []bool{true, false, true, false}, []bool{true})
	if err != nil {
		t.Fatal(err)
	}
	// 5 + 1 = 6 = 0110 (LSB first).
	want := []bool{false, true, true, false}
	for i := range want {
		if next[i] != want[i] {
			t.Fatalf("next = %v, want %v", next, want)
		}
	}
	if _, _, err := SimulateStep(c, []bool{true}, []bool{true}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestGeneratorsExported(t *testing.T) {
	if NewCounter(3, true, false) == nil || NewShiftRegister(3) == nil ||
		NewLFSR(4, 0, 3) == nil || NewJohnson(3) == nil ||
		NewGrayCounter(3) == nil || NewTrafficLight() == nil {
		t.Fatal("generator exports broken")
	}
	if NewSLike(SLikeParams{Seed: 1, Inputs: 2, Latches: 2, Gates: 5}) == nil {
		t.Fatal("SLike export")
	}
	if len(BenchmarkSuite()) == 0 {
		t.Fatal("BenchmarkSuite empty")
	}
	if StateSpace(NewCounter(4, true, false)).Size() != 4 {
		t.Fatal("StateSpace export")
	}
}
