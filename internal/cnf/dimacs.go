package cnf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"allsatpre/internal/lit"
)

// ParseDimacs reads a CNF formula in DIMACS format. It tolerates comment
// lines anywhere, missing "p cnf" headers (variable count inferred), and
// clauses spanning multiple lines. A "c proj <v1> <v2> ..." comment line
// (1-based DIMACS variable numbers) declares projection variables, returned
// as the second result; projection comments are an informal convention used
// by the all-SAT tools in this repository.
func ParseDimacs(r io.Reader) (*Formula, []lit.Var, error) {
	f := New(0)
	var proj []lit.Var
	var cur Clause
	declaredVars, declaredClauses := -1, -1

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "c"):
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "proj" {
				for _, tok := range fields[2:] {
					d, err := strconv.Atoi(tok)
					if err != nil || d <= 0 {
						return nil, nil, fmt.Errorf("dimacs line %d: bad projection var %q", lineNo, tok)
					}
					proj = append(proj, lit.Var(d-1))
				}
			}
			continue
		case strings.HasPrefix(line, "p"):
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, nil, fmt.Errorf("dimacs line %d: malformed problem line %q", lineNo, line)
			}
			var err1, err2 error
			declaredVars, err1 = strconv.Atoi(fields[2])
			declaredClauses, err2 = strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || declaredVars < 0 || declaredClauses < 0 {
				return nil, nil, fmt.Errorf("dimacs line %d: malformed problem line %q", lineNo, line)
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			d, err := strconv.Atoi(tok)
			if err != nil {
				return nil, nil, fmt.Errorf("dimacs line %d: bad literal %q", lineNo, tok)
			}
			if d == 0 {
				f.AddClause(cur)
				cur = nil
				continue
			}
			cur = append(cur, lit.FromDimacs(d))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(cur) > 0 {
		f.AddClause(cur)
	}
	if declaredVars > f.NumVars {
		f.NumVars = declaredVars
	}
	if declaredClauses >= 0 && declaredClauses != len(f.Clauses) {
		return nil, nil, fmt.Errorf("dimacs: header declares %d clauses, found %d", declaredClauses, len(f.Clauses))
	}
	for _, v := range proj {
		if int(v) >= f.NumVars {
			return nil, nil, fmt.Errorf("dimacs: projection variable %d out of range", int(v)+1)
		}
	}
	return f, proj, nil
}

// ParseDimacsString parses a DIMACS formula from a string.
func ParseDimacsString(s string) (*Formula, []lit.Var, error) {
	return ParseDimacs(strings.NewReader(s))
}

// WriteDimacs writes the formula in DIMACS format. If proj is non-empty a
// "c proj ..." line is emitted first.
func WriteDimacs(w io.Writer, f *Formula, proj []lit.Var) error {
	bw := bufio.NewWriter(w)
	if len(proj) > 0 {
		fmt.Fprintf(bw, "c proj")
		for _, v := range proj {
			fmt.Fprintf(bw, " %d", int(v)+1)
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses))
	for _, c := range f.Clauses {
		for _, l := range c {
			fmt.Fprintf(bw, "%d ", l.Dimacs())
		}
		fmt.Fprintln(bw, "0")
	}
	return bw.Flush()
}

// DimacsString renders the formula as a DIMACS string.
func DimacsString(f *Formula, proj []lit.Var) string {
	var sb strings.Builder
	_ = WriteDimacs(&sb, f, proj)
	return sb.String()
}
