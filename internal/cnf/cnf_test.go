package cnf

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"allsatpre/internal/lit"
)

func mk(lits ...int) Clause {
	c := make(Clause, len(lits))
	for i, d := range lits {
		c[i] = lit.FromDimacs(d)
	}
	return c
}

func TestClauseNormalize(t *testing.T) {
	c, taut := mk(3, -1, 3, 2).Normalize()
	if taut {
		t.Fatal("unexpected tautology")
	}
	if len(c) != 3 {
		t.Fatalf("want 3 literals after dedup, got %v", c)
	}
	if _, taut := mk(1, -1, 2).Normalize(); !taut {
		t.Fatal("expected tautology")
	}
	if c, taut := mk().Normalize(); taut || len(c) != 0 {
		t.Fatal("empty clause should normalize to empty, non-tautology")
	}
}

func TestClauseEval(t *testing.T) {
	c := mk(1, -2)
	assign := make([]lit.Tern, 2)
	if c.Eval(assign) != lit.Unknown {
		t.Error("all-X clause should be Unknown")
	}
	assign[0] = lit.True
	if c.Eval(assign) != lit.True {
		t.Error("satisfied clause should be True")
	}
	assign[0] = lit.False
	assign[1] = lit.True
	if c.Eval(assign) != lit.False {
		t.Error("falsified clause should be False")
	}
	assign[1] = lit.Unknown
	if c.Eval(assign) != lit.Unknown {
		t.Error("partially falsified clause should be Unknown")
	}
}

func TestClauseEvalOutOfRangeVars(t *testing.T) {
	// Variables beyond the assignment slice behave as Unknown.
	c := mk(5)
	if got := c.Eval(nil); got != lit.Unknown {
		t.Errorf("got %v, want X", got)
	}
}

func TestClauseHasAndString(t *testing.T) {
	c := mk(1, -3)
	if !c.Has(lit.Pos(0)) || !c.Has(lit.Neg(2)) || c.Has(lit.Pos(2)) {
		t.Error("Has mismatch")
	}
	if c.String() != "(1 -3)" {
		t.Errorf("String = %q", c.String())
	}
}

func TestFormulaAddGrowsVars(t *testing.T) {
	f := New(0)
	f.Add(lit.Pos(4))
	if f.NumVars != 5 {
		t.Errorf("NumVars = %d, want 5", f.NumVars)
	}
	v := f.NewVar()
	if v != 5 || f.NumVars != 6 {
		t.Errorf("NewVar = %v NumVars=%d", v, f.NumVars)
	}
	f.AddClause(mk(10))
	if f.NumVars != 10 {
		t.Errorf("NumVars = %d, want 10", f.NumVars)
	}
}

func TestFormulaCloneIndependence(t *testing.T) {
	f := New(2)
	f.Add(lit.Pos(0), lit.Pos(1))
	g := f.Clone()
	g.Clauses[0][0] = lit.Neg(0)
	if f.Clauses[0][0] != lit.Pos(0) {
		t.Error("Clone is shallow")
	}
}

func TestFormulaEvalAndCounting(t *testing.T) {
	// (a ∨ b) ∧ (¬a ∨ c): 4 models over 3 vars? Enumerate by hand:
	// a=0: need b=1, c free -> 2 models; a=1: need c=1, b free -> 2 models.
	f := New(3)
	f.Add(lit.Pos(0), lit.Pos(1))
	f.Add(lit.Neg(0), lit.Pos(2))
	if got := f.CountModels(); got != 4 {
		t.Errorf("CountModels = %d, want 4", got)
	}
	proj := f.ProjectedModels([]lit.Var{0})
	if len(proj) != 2 {
		t.Errorf("projection onto a should have 2 entries, got %v", proj)
	}
	if f.MaxClauseLen() != 2 || f.NumLits() != 4 {
		t.Error("MaxClauseLen/NumLits mismatch")
	}
	if !strings.Contains(f.String(), "clauses=2") {
		t.Errorf("String = %q", f.String())
	}
}

func TestEnumerateModelsPanicsOnLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for >24 vars")
		}
	}()
	f := New(25)
	f.EnumerateModels(func([]bool) {})
}

func TestDimacsRoundTrip(t *testing.T) {
	f := New(4)
	f.Add(lit.Pos(0), lit.Neg(1))
	f.Add(lit.Pos(2), lit.Pos(3), lit.Neg(0))
	proj := []lit.Var{0, 2}
	s := DimacsString(f, proj)
	g, p2, err := ParseDimacsString(s)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars != f.NumVars || len(g.Clauses) != len(f.Clauses) {
		t.Fatalf("round trip mismatch: %v vs %v", g, f)
	}
	if len(p2) != 2 || p2[0] != 0 || p2[1] != 2 {
		t.Fatalf("projection round trip mismatch: %v", p2)
	}
	for i := range f.Clauses {
		if len(f.Clauses[i]) != len(g.Clauses[i]) {
			t.Fatalf("clause %d mismatch", i)
		}
		for j := range f.Clauses[i] {
			if f.Clauses[i][j] != g.Clauses[i][j] {
				t.Fatalf("clause %d literal %d mismatch", i, j)
			}
		}
	}
}

func TestParseDimacsErrors(t *testing.T) {
	cases := []string{
		"p cnf x 3\n1 0\n",
		"p dnf 2 1\n1 0\n",
		"p cnf 2 5\n1 0\n",       // clause count mismatch
		"1 2 z 0\n",              // bad literal
		"c proj 0\np cnf 1 0\n",  // bad projection var
		"c proj 9\np cnf 2 0\n",  // projection out of range
		"c proj -2\np cnf 3 0\n", // negative projection var
	}
	for _, s := range cases {
		if _, _, err := ParseDimacsString(s); err == nil {
			t.Errorf("expected error for %q", s)
		}
	}
}

func TestParseDimacsTolerant(t *testing.T) {
	// No header, clause split over lines, trailing clause without 0.
	f, _, err := ParseDimacsString("c hello\n1 2\n-3 0\n-1 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 2 {
		t.Fatalf("want 2 clauses, got %d", len(f.Clauses))
	}
	if f.NumVars != 3 {
		t.Fatalf("want 3 vars, got %d", f.NumVars)
	}
}

func TestParseDimacsHeaderGrowsVars(t *testing.T) {
	f, _, err := ParseDimacsString("p cnf 10 1\n1 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 10 {
		t.Fatalf("want 10 vars from header, got %d", f.NumVars)
	}
}

func randomFormula(rng *rand.Rand, nVars, nClauses, maxLen int) *Formula {
	f := New(nVars)
	for i := 0; i < nClauses; i++ {
		k := 1 + rng.Intn(maxLen)
		c := make(Clause, 0, k)
		for j := 0; j < k; j++ {
			c = append(c, lit.New(lit.Var(rng.Intn(nVars)), rng.Intn(2) == 0))
		}
		f.AddClause(c)
	}
	return f
}

func TestSimplifyPreservesModels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		f := randomFormula(rng, 2+rng.Intn(8), 1+rng.Intn(12), 3)
		want := f.CountModels()
		g := f.Clone()
		res := Simplify(g, nil)
		if res.Unsat {
			if want != 0 {
				t.Fatalf("iter %d: Simplify says UNSAT but %d models exist\n%s", iter, want, DimacsString(f, nil))
			}
			continue
		}
		got := g.CountModels()
		if got != want {
			t.Fatalf("iter %d: model count changed %d -> %d\nbefore:\n%safter:\n%s",
				iter, want, got, DimacsString(f, nil), DimacsString(g, nil))
		}
	}
}

func TestSimplifyUnitChain(t *testing.T) {
	// x0, (¬x0 ∨ x1), (¬x1 ∨ x2) should fix all three.
	f := New(3)
	f.Add(lit.Pos(0))
	f.Add(lit.Neg(0), lit.Pos(1))
	f.Add(lit.Neg(1), lit.Pos(2))
	res := Simplify(f, nil)
	if res.Unsat {
		t.Fatal("unexpected UNSAT")
	}
	if len(res.Units) != 3 {
		t.Fatalf("want 3 units, got %v", res.Units)
	}
	if f.CountModels() != 1 {
		t.Fatalf("want exactly one model, got %d", f.CountModels())
	}
}

func TestSimplifyDetectsUnsat(t *testing.T) {
	f := New(1)
	f.Add(lit.Pos(0))
	f.Add(lit.Neg(0))
	if res := Simplify(f, nil); !res.Unsat {
		t.Fatal("expected UNSAT")
	}
	// Conflicting implied units.
	g := New(2)
	g.Add(lit.Pos(0))
	g.Add(lit.Neg(0), lit.Pos(1))
	g.Add(lit.Neg(0), lit.Neg(1))
	if res := Simplify(g, nil); !res.Unsat {
		t.Fatal("expected UNSAT via propagation")
	}
}

func TestSimplifyRemovesTautologies(t *testing.T) {
	f := New(2)
	f.Add(lit.Pos(0), lit.Neg(0))
	f.Add(lit.Pos(1))
	res := Simplify(f, nil)
	if res.RemovedTautologies != 1 {
		t.Errorf("RemovedTautologies = %d, want 1", res.RemovedTautologies)
	}
	if len(f.Clauses) != 1 {
		t.Errorf("want 1 clause left, got %d", len(f.Clauses))
	}
}

func TestNormalizeQuick(t *testing.T) {
	// Normalized clause evaluates identically to the original under any
	// total assignment.
	f := func(raw []int8, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		c := make(Clause, 0, len(raw))
		for _, d := range raw {
			v := lit.Var(int(d&7) + 1)
			c = append(c, lit.New(v, d < 0))
		}
		nc, taut := c.Normalize()
		rng := rand.New(rand.NewSource(seed))
		assign := make([]lit.Tern, 10)
		for i := range assign {
			assign[i] = lit.TernOf(rng.Intn(2) == 0)
		}
		if taut {
			return c.Eval(assign) == lit.True
		}
		return c.Eval(assign) == nc.Eval(assign)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
