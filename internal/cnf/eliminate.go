package cnf

import (
	"allsatpre/internal/lit"
)

// ElimResult reports what EliminateVars did.
type ElimResult struct {
	// Eliminated counts variables resolved away.
	Eliminated int
	// ClausesBefore/ClausesAfter report the clause-count change.
	ClausesBefore, ClausesAfter int
}

// EliminateVars applies Davis–Putnam variable elimination to every
// variable for which eliminable returns true, as long as the replacement
// does not grow the clause count by more than maxGrowth clauses per
// variable (0 = never grow).
//
// Elimination replaces the clauses containing v by all non-tautological
// resolvents on v, which computes ∃v.F exactly: the models of the result,
// over the remaining variables, are precisely the projections of the
// original models. It is therefore safe for projected all-SAT as long as
// projection variables are never eliminated — the engines enumerate the
// same covers on the reduced formula.
func EliminateVars(f *Formula, eliminable func(lit.Var) bool, maxGrowth int) ElimResult {
	res := ElimResult{ClausesBefore: len(f.Clauses)}

	// Live clause list with occurrence indexes, rebuilt once; clause
	// deletion is by tombstone.
	clauses := make([]Clause, len(f.Clauses))
	copy(clauses, f.Clauses)
	dead := make([]bool, len(clauses))
	occ := make(map[lit.Lit][]int)
	addOcc := func(ci int) {
		for _, l := range clauses[ci] {
			occ[l] = append(occ[l], ci)
		}
	}
	for ci := range clauses {
		var taut bool
		clauses[ci], taut = clauses[ci].Normalize()
		if taut {
			dead[ci] = true
			continue
		}
		addOcc(ci)
	}

	liveWith := func(l lit.Lit) []int {
		out := occ[l][:0]
		for _, ci := range occ[l] {
			if !dead[ci] && clauses[ci].Has(l) {
				out = append(out, ci)
			}
		}
		occ[l] = out
		return out
	}

	gone := make([]bool, f.NumVars)
	for pass := 0; pass < 8; pass++ {
		changed := false
		for v := lit.Var(0); int(v) < f.NumVars; v++ {
			if gone[v] || !eliminable(v) {
				continue
			}
			pos := liveWith(lit.Pos(v))
			neg := liveWith(lit.Neg(v))
			if len(pos) == 0 && len(neg) == 0 {
				continue
			}
			// A pure variable eliminates for free (no resolvents).
			var resolvents []Clause
			feasible := true
			if len(pos) > 0 && len(neg) > 0 {
				budget := len(pos) + len(neg) + maxGrowth
				for _, pi := range pos {
					for _, ni := range neg {
						r, taut := resolve(clauses[pi], clauses[ni], v)
						if taut {
							continue
						}
						resolvents = append(resolvents, r)
						if len(resolvents) > budget {
							feasible = false
							break
						}
					}
					if !feasible {
						break
					}
				}
			}
			if !feasible {
				continue
			}
			for _, ci := range pos {
				dead[ci] = true
			}
			for _, ci := range neg {
				dead[ci] = true
			}
			for _, r := range resolvents {
				clauses = append(clauses, r)
				dead = append(dead, false)
				addOcc(len(clauses) - 1)
			}
			gone[v] = true
			res.Eliminated++
			changed = true
		}
		if !changed {
			break
		}
	}

	out := f.Clauses[:0]
	for ci, c := range clauses {
		if !dead[ci] {
			out = append(out, c)
		}
	}
	f.Clauses = out
	res.ClausesAfter = len(f.Clauses)
	return res
}

// resolve computes the resolvent of a (containing v) and b (containing
// ¬v) on variable v, reporting tautologies.
func resolve(a, b Clause, v lit.Var) (Clause, bool) {
	merged := make(Clause, 0, len(a)+len(b)-2)
	for _, l := range a {
		if l.Var() != v {
			merged = append(merged, l)
		}
	}
	for _, l := range b {
		if l.Var() != v {
			merged = append(merged, l)
		}
	}
	return merged.Normalize()
}
