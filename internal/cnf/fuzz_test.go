package cnf

import (
	"testing"
)

// FuzzParseDimacs checks the DIMACS parser never panics and accepted
// formulas survive a write/re-parse round trip with identical clauses.
func FuzzParseDimacs(f *testing.F) {
	seeds := []string{
		"p cnf 3 2\n1 2 0\n-3 0\n",
		"c proj 1 2\np cnf 2 1\n1 -2 0\n",
		"1 2 3 0\n-1 0",
		"p cnf 0 0\n",
		"p cnf 2 9\n1 0\n", // count mismatch
		"zz\n",
		"c only a comment\n",
		"p cnf 1 1\n0\n", // empty clause
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		formula, proj, err := ParseDimacsString(src)
		if err != nil {
			return
		}
		text := DimacsString(formula, proj)
		f2, p2, err := ParseDimacsString(text)
		if err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, text)
		}
		if f2.NumVars != formula.NumVars || len(f2.Clauses) != len(formula.Clauses) ||
			len(p2) != len(proj) {
			t.Fatalf("round trip changed the formula")
		}
	})
}

// FuzzSimplify checks the simplifier never panics and preserves
// satisfiability status detectable at level 0.
func FuzzSimplify(f *testing.F) {
	f.Add("p cnf 3 3\n1 0\n-1 2 0\n-2 3 0\n")
	f.Add("p cnf 2 2\n1 0\n-1 0\n")
	f.Add("p cnf 4 2\n1 -1 0\n2 3 4 0\n")
	f.Fuzz(func(t *testing.T, src string) {
		formula, _, err := ParseDimacsString(src)
		if err != nil || formula.NumVars > 16 || len(formula.Clauses) > 24 {
			return
		}
		before := formula.CountModels()
		res := Simplify(formula, nil)
		if res.Unsat {
			if before != 0 {
				t.Fatalf("Simplify claimed UNSAT with %d models", before)
			}
			return
		}
		if after := formula.CountModels(); after != before {
			t.Fatalf("Simplify changed model count %d -> %d", before, after)
		}
	})
}
