package cnf

import (
	"sort"

	"allsatpre/internal/lit"
)

// PreprocessResult reports what Preprocess did.
type PreprocessResult struct {
	// Unsat is true when preprocessing derived unsatisfiability.
	Unsat bool
	// Subsumed counts clauses removed by (backward) subsumption.
	Subsumed int
	// Strengthened counts literals removed by self-subsuming resolution.
	Strengthened int
	// Rounds is the number of fixpoint iterations.
	Rounds int
	// Simplify carries the unit-propagation summary of the final pass.
	Simplify SimplifyResult
}

// Preprocess applies model-set-preserving CNF reductions to fixpoint:
// duplicate/tautology removal and unit propagation (via Simplify),
// backward subsumption (a clause containing another clause's literals is
// deleted), and self-subsuming resolution (when C∨l and D∨¬l exist with
// C ⊆ D, the literal ¬l is deleted from D∨¬l).
//
// All three reductions preserve the exact set of models over all
// variables — not merely satisfiability — so the all-solutions engines
// can run on the preprocessed formula and enumerate the same projections.
func Preprocess(f *Formula) PreprocessResult {
	var res PreprocessResult
	for {
		res.Rounds++
		res.Simplify = Simplify(f, nil)
		if res.Simplify.Unsat {
			res.Unsat = true
			return res
		}
		changed := false
		if n := subsumptionPass(f); n > 0 {
			res.Subsumed += n
			changed = true
		}
		if n := strengthenPass(f); n > 0 {
			res.Strengthened += n
			changed = true
		}
		if !changed || res.Rounds > 20 {
			return res
		}
	}
}

// signature computes a 64-bit Bloom signature of a clause's variables; a
// clause can only subsume another when sig(sub) & ^sig(super) == 0.
func signature(c Clause) uint64 {
	var s uint64
	for _, l := range c {
		s |= 1 << (uint(l.Var()) & 63)
	}
	return s
}

// subsumes reports whether every literal of a occurs in b. Both must be
// sorted (Normalize order).
func subsumes(a, b Clause) bool {
	if len(a) > len(b) {
		return false
	}
	i := 0
	for _, l := range b {
		if i < len(a) && a[i] == l {
			i++
		}
	}
	return i == len(a)
}

// subsumptionPass deletes clauses subsumed by a smaller (or equal) clause.
func subsumptionPass(f *Formula) int {
	type entry struct {
		c   Clause
		sig uint64
	}
	entries := make([]entry, 0, len(f.Clauses))
	for _, c := range f.Clauses {
		nc, taut := c.Normalize()
		if taut {
			continue
		}
		entries = append(entries, entry{c: nc, sig: signature(nc)})
	}
	// Sort by length so potential subsumers come first.
	sort.SliceStable(entries, func(i, j int) bool { return len(entries[i].c) < len(entries[j].c) })
	removed := 0
	dead := make([]bool, len(entries))
	// occ maps a literal to the indices of entries containing it; checking
	// only clauses sharing the subsumer's first literal bounds the scan.
	occ := map[lit.Lit][]int{}
	for i, e := range entries {
		for _, l := range e.c {
			occ[l] = append(occ[l], i)
		}
	}
	for i, e := range entries {
		if dead[i] || len(e.c) == 0 {
			continue
		}
		// Candidates: clauses containing e.c[0].
		for _, j := range occ[e.c[0]] {
			if j == i || dead[j] {
				continue
			}
			o := entries[j]
			if len(o.c) < len(e.c) || e.sig&^o.sig != 0 {
				continue
			}
			if len(o.c) == len(e.c) && j < i {
				continue // identical clauses: keep the first
			}
			if subsumes(e.c, o.c) {
				dead[j] = true
				removed++
			}
		}
	}
	out := f.Clauses[:0]
	for i, e := range entries {
		if !dead[i] {
			out = append(out, e.c)
		}
	}
	f.Clauses = out
	return removed
}

// strengthenPass applies self-subsuming resolution: for clauses A = C∨l
// and B = D∨¬l with C ⊆ D, remove ¬l from B.
func strengthenPass(f *Formula) int {
	strengthened := 0
	// occ by literal over current clauses (indices stay valid; clause
	// contents are edited in place, only shrinking).
	occ := map[lit.Lit][]int{}
	for i, c := range f.Clauses {
		for _, l := range c {
			occ[l] = append(occ[l], i)
		}
	}
	for i := range f.Clauses {
		a := f.Clauses[i]
		if len(a) == 0 {
			continue
		}
		for _, l := range a {
			// A = C ∨ l. Try every B containing ¬l.
			rest := make(Clause, 0, len(a)-1)
			for _, x := range a {
				if x != l {
					rest = append(rest, x)
				}
			}
			restSig := signature(rest)
			for _, j := range occ[l.Not()] {
				if j == i {
					continue
				}
				b := f.Clauses[j]
				if len(b)-1 < len(rest) || restSig&^signature(b) != 0 {
					continue
				}
				if !b.Has(l.Not()) {
					continue // already strengthened away
				}
				// Check C ⊆ B \ {¬l}.
				bRest := make(Clause, 0, len(b)-1)
				for _, x := range b {
					if x != l.Not() {
						bRest = append(bRest, x)
					}
				}
				if subsumes(rest, bRest) {
					f.Clauses[j] = bRest
					strengthened++
				}
			}
		}
	}
	return strengthened
}
