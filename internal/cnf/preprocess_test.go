package cnf

import (
	"math/rand"
	"testing"

	"allsatpre/internal/lit"
)

func TestSubsumptionBasic(t *testing.T) {
	f := New(3)
	f.Add(lit.Pos(0), lit.Pos(1))
	f.Add(lit.Pos(0), lit.Pos(1), lit.Pos(2)) // subsumed
	res := Preprocess(f)
	if res.Subsumed != 1 {
		t.Fatalf("Subsumed = %d, want 1", res.Subsumed)
	}
	if len(f.Clauses) != 1 {
		t.Fatalf("%d clauses left", len(f.Clauses))
	}
}

func TestDuplicateClausesCollapse(t *testing.T) {
	f := New(2)
	f.Add(lit.Pos(0), lit.Pos(1))
	f.Add(lit.Pos(1), lit.Pos(0)) // same clause, different order
	Preprocess(f)
	if len(f.Clauses) != 1 {
		t.Fatalf("%d clauses left, want 1", len(f.Clauses))
	}
}

func TestSelfSubsumingResolution(t *testing.T) {
	// (a ∨ l) and (a ∨ b ∨ ¬l): the second strengthens to (a ∨ b).
	f := New(3)
	a, b, l := lit.Pos(0), lit.Pos(1), lit.Pos(2)
	f.Add(a, l)
	f.Add(a, b, l.Not())
	res := Preprocess(f)
	if res.Strengthened < 1 {
		t.Fatalf("Strengthened = %d, want >= 1", res.Strengthened)
	}
	for _, c := range f.Clauses {
		if c.Has(l.Not()) && len(c) == 3 {
			t.Fatalf("clause not strengthened: %v", c)
		}
	}
}

func TestStrengthenToUnsat(t *testing.T) {
	f := New(1)
	f.Add(lit.Pos(0))
	f.Add(lit.Neg(0))
	if res := Preprocess(f); !res.Unsat {
		t.Fatal("expected UNSAT")
	}
}

// TestPreprocessPreservesModels is the crucial property: the exact model
// set over all variables is unchanged.
func TestPreprocessPreservesModels(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for iter := 0; iter < 300; iter++ {
		nVars := 2 + rng.Intn(8)
		f := randomFormula(rng, nVars, 1+rng.Intn(14), 1+rng.Intn(3))
		want := make(map[string]bool)
		f.EnumerateModels(func(m []bool) { want[modelKey(m)] = true })
		g := f.Clone()
		res := Preprocess(g)
		if res.Unsat {
			if len(want) != 0 {
				t.Fatalf("iter %d: Preprocess says UNSAT but %d models exist", iter, len(want))
			}
			continue
		}
		got := make(map[string]bool)
		// Preprocessing never adds variables; pad with f's count.
		g.NumVars = f.NumVars
		g.EnumerateModels(func(m []bool) { got[modelKey(m)] = true })
		if len(got) != len(want) {
			t.Fatalf("iter %d: model count %d -> %d\nbefore:\n%safter:\n%s",
				iter, len(want), len(got), DimacsString(f, nil), DimacsString(g, nil))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("iter %d: model %s lost", iter, k)
			}
		}
	}
}

func modelKey(m []bool) string {
	b := make([]byte, len(m))
	for i, v := range m {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

func TestPreprocessIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(911))
	for iter := 0; iter < 50; iter++ {
		f := randomFormula(rng, 6, 12, 3)
		if Preprocess(f).Unsat {
			continue
		}
		res2 := Preprocess(f)
		if res2.Subsumed != 0 || res2.Strengthened != 0 {
			t.Fatalf("iter %d: second pass still found work: %+v", iter, res2)
		}
	}
}

func TestSubsumesHelper(t *testing.T) {
	a, _ := mk(1, 3).Normalize()
	b, _ := mk(1, 2, 3).Normalize()
	if !subsumes(a, b) || subsumes(b, a) {
		t.Fatal("subsumes broken")
	}
	empty := Clause{}
	if !subsumes(empty, a) {
		t.Fatal("empty clause subsumes everything")
	}
}

func TestSignatureIsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(912))
	for iter := 0; iter < 200; iter++ {
		a := randomFormula(rng, 10, 1, 3).Clauses[0]
		b := randomFormula(rng, 10, 1, 4).Clauses[0]
		an, t1 := a.Normalize()
		bn, t2 := b.Normalize()
		if t1 || t2 {
			continue
		}
		if subsumes(an, bn) && signature(an)&^signature(bn) != 0 {
			t.Fatalf("signature filter rejects a real subsumption: %v ⊆ %v", an, bn)
		}
	}
}
