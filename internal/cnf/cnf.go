// Package cnf provides CNF formula containers, DIMACS I/O, and small
// reference algorithms (evaluation, brute-force enumeration) used both by
// the solvers and by the test suites as ground truth.
package cnf

import (
	"fmt"
	"sort"

	"allsatpre/internal/lit"
)

// Clause is a disjunction of literals.
type Clause []lit.Lit

// Clone returns a deep copy of the clause.
func (c Clause) Clone() Clause {
	out := make(Clause, len(c))
	copy(out, c)
	return out
}

// Normalize sorts the clause, removes duplicate literals, and reports
// whether the clause is a tautology (contains l and ¬l).
func (c Clause) Normalize() (Clause, bool) {
	if len(c) == 0 {
		return c, false
	}
	s := c.Clone()
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	var prev lit.Lit = lit.UndefLit
	for _, l := range s {
		if l == prev {
			continue
		}
		if prev.IsDef() && l == prev.Not() {
			return nil, true
		}
		out = append(out, l)
		prev = l
	}
	return out, false
}

// Eval evaluates the clause under a ternary assignment indexed by variable.
func (c Clause) Eval(assign []lit.Tern) lit.Tern {
	res := lit.False
	for _, l := range c {
		v := l.Var()
		var t lit.Tern
		if int(v) < len(assign) {
			t = assign[v].XorSign(l.Sign())
		}
		if t == lit.True {
			return lit.True
		}
		if t == lit.Unknown {
			res = lit.Unknown
		}
	}
	return res
}

// Has reports whether the clause contains the literal l.
func (c Clause) Has(l lit.Lit) bool {
	for _, x := range c {
		if x == l {
			return true
		}
	}
	return false
}

// String renders the clause in DIMACS style without the trailing 0.
func (c Clause) String() string {
	s := "("
	for i, l := range c {
		if i > 0 {
			s += " "
		}
		s += l.String()
	}
	return s + ")"
}

// Formula is a CNF formula: a number of variables and a set of clauses.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// New returns an empty formula over n variables.
func New(n int) *Formula {
	return &Formula{NumVars: n}
}

// NewVar allocates a fresh variable and returns it.
func (f *Formula) NewVar() lit.Var {
	v := lit.Var(f.NumVars)
	f.NumVars++
	return v
}

// Add appends a clause, growing NumVars to cover its literals.
func (f *Formula) Add(c ...lit.Lit) {
	cl := Clause(c).Clone()
	for _, l := range cl {
		if int(l.Var()) >= f.NumVars {
			f.NumVars = int(l.Var()) + 1
		}
	}
	f.Clauses = append(f.Clauses, cl)
}

// AddClause appends an existing clause value (without copying).
func (f *Formula) AddClause(c Clause) {
	for _, l := range c {
		if int(l.Var()) >= f.NumVars {
			f.NumVars = int(l.Var()) + 1
		}
	}
	f.Clauses = append(f.Clauses, c)
}

// Clone returns a deep copy of the formula.
func (f *Formula) Clone() *Formula {
	g := &Formula{NumVars: f.NumVars, Clauses: make([]Clause, len(f.Clauses))}
	for i, c := range f.Clauses {
		g.Clauses[i] = c.Clone()
	}
	return g
}

// Eval evaluates the formula under a ternary assignment.
func (f *Formula) Eval(assign []lit.Tern) lit.Tern {
	res := lit.True
	for _, c := range f.Clauses {
		switch c.Eval(assign) {
		case lit.False:
			return lit.False
		case lit.Unknown:
			res = lit.Unknown
		}
	}
	return res
}

// Satisfied reports whether the (total or partial) assignment satisfies
// every clause.
func (f *Formula) Satisfied(assign []lit.Tern) bool {
	return f.Eval(assign) == lit.True
}

// MaxClauseLen returns the length of the longest clause.
func (f *Formula) MaxClauseLen() int {
	m := 0
	for _, c := range f.Clauses {
		if len(c) > m {
			m = len(c)
		}
	}
	return m
}

// NumLits returns the total number of literal occurrences.
func (f *Formula) NumLits() int {
	n := 0
	for _, c := range f.Clauses {
		n += len(c)
	}
	return n
}

func (f *Formula) String() string {
	return fmt.Sprintf("cnf(vars=%d clauses=%d)", f.NumVars, len(f.Clauses))
}

// EnumerateModels brute-forces every total assignment over the formula's
// variables and calls fn with each satisfying assignment (as a bool slice
// indexed by variable). It is exponential and intended for tests and tiny
// instances only; it panics if the formula has more than 24 variables.
func (f *Formula) EnumerateModels(fn func(model []bool)) {
	if f.NumVars > 24 {
		panic("cnf: EnumerateModels limited to 24 variables")
	}
	n := f.NumVars
	model := make([]bool, n)
	assign := make([]lit.Tern, n)
	for m := 0; m < 1<<uint(n); m++ {
		for i := 0; i < n; i++ {
			model[i] = m&(1<<uint(i)) != 0
			assign[i] = lit.TernOf(model[i])
		}
		if f.Satisfied(assign) {
			fn(model)
		}
	}
}

// CountModels returns the number of total satisfying assignments (brute
// force; tests only).
func (f *Formula) CountModels() int {
	n := 0
	f.EnumerateModels(func([]bool) { n++ })
	return n
}

// ProjectedModels returns the set of distinct projections of all models
// onto the given variables, encoded as strings of '0'/'1' in vars order.
// Brute force; tests only.
func (f *Formula) ProjectedModels(vars []lit.Var) map[string]bool {
	out := make(map[string]bool)
	buf := make([]byte, len(vars))
	f.EnumerateModels(func(model []bool) {
		for i, v := range vars {
			if int(v) < len(model) && model[v] {
				buf[i] = '1'
			} else {
				buf[i] = '0'
			}
		}
		out[string(buf)] = true
	})
	return out
}
