package cnf

import (
	"allsatpre/internal/lit"
)

// SimplifyResult reports what a Simplify call did.
type SimplifyResult struct {
	// Unsat is true when simplification derived the empty clause.
	Unsat bool
	// Units holds every variable fixed by unit propagation, as literals.
	Units []lit.Lit
	// RemovedTautologies counts deleted always-true clauses.
	RemovedTautologies int
	// RemovedSatisfied counts clauses deleted because a fixed unit
	// satisfies them.
	RemovedSatisfied int
}

// Simplify normalizes the formula in place: it removes duplicate literals
// and tautological clauses, then runs unit propagation to fixpoint,
// deleting satisfied clauses and falsified literals. Fixed variables stay
// present as unit clauses so the formula remains equisatisfiable with
// identical models over all variables.
//
// keep marks variables whose unit clauses must be preserved even when the
// variable disappears from every other clause (pass nil to keep all units,
// which is the default behaviour anyway — the parameter exists for
// symmetry with projection-aware callers).
func Simplify(f *Formula, keep func(lit.Var) bool) SimplifyResult {
	var res SimplifyResult
	_ = keep

	fixed := make([]lit.Tern, f.NumVars)

	// Normalize clauses first.
	norm := f.Clauses[:0]
	for _, c := range f.Clauses {
		nc, taut := c.Normalize()
		if taut {
			res.RemovedTautologies++
			continue
		}
		norm = append(norm, nc)
	}
	f.Clauses = norm

	// Unit propagation to fixpoint.
	for {
		changed := false
		out := f.Clauses[:0]
		for _, c := range f.Clauses {
			nc := make(Clause, 0, len(c))
			sat := false
			for _, l := range c {
				switch fixed[l.Var()].XorSign(l.Sign()) {
				case lit.True:
					sat = true
				case lit.False:
					// literal falsified: drop it
					changed = true
				default:
					nc = append(nc, l)
				}
				if sat {
					break
				}
			}
			if sat {
				res.RemovedSatisfied++
				changed = true
				continue
			}
			if len(nc) == 0 {
				res.Unsat = true
				f.Clauses = append(out, nc)
				return res
			}
			if len(nc) == 1 {
				l := nc[0]
				cur := fixed[l.Var()]
				want := lit.TernOf(!l.Sign())
				if cur == lit.Unknown {
					fixed[l.Var()] = want
					res.Units = append(res.Units, l)
					changed = true
				} else if cur != want {
					res.Unsat = true
					f.Clauses = append(out, nc)
					return res
				}
			}
			out = append(out, nc)
		}
		f.Clauses = out
		if !changed {
			break
		}
	}

	// Propagation deletes satisfied clauses, which includes the unit
	// clauses themselves. Re-emit every fixed variable as a unit clause
	// exactly once so models over all variables are preserved.
	seenUnit := make(map[lit.Lit]bool)
	out := f.Clauses[:0]
	for _, c := range f.Clauses {
		if len(c) == 1 {
			if seenUnit[c[0]] {
				continue
			}
			seenUnit[c[0]] = true
		}
		out = append(out, c)
	}
	for _, u := range res.Units {
		if !seenUnit[u] {
			seenUnit[u] = true
			out = append(out, Clause{u})
		}
	}
	f.Clauses = out
	return res
}
