package cnf

import (
	"math/rand"
	"testing"

	"allsatpre/internal/lit"
)

func TestEliminateSingleVar(t *testing.T) {
	// (a ∨ x)(¬x ∨ b): eliminating x yields (a ∨ b).
	f := New(3)
	a, b, x := lit.Pos(0), lit.Pos(1), lit.Pos(2)
	f.Add(a, x)
	f.Add(x.Not(), b)
	res := EliminateVars(f, func(v lit.Var) bool { return v == 2 }, 0)
	if res.Eliminated != 1 {
		t.Fatalf("Eliminated = %d", res.Eliminated)
	}
	if len(f.Clauses) != 1 || len(f.Clauses[0]) != 2 {
		t.Fatalf("clauses after: %v", f.Clauses)
	}
}

func TestEliminatePureVariable(t *testing.T) {
	// x occurs only positively: its clauses vanish with no resolvents.
	f := New(2)
	f.Add(lit.Pos(1), lit.Pos(0))
	f.Add(lit.Pos(1))
	res := EliminateVars(f, func(v lit.Var) bool { return v == 1 }, 0)
	if res.Eliminated != 1 || len(f.Clauses) != 0 {
		t.Fatalf("pure elimination failed: %+v / %v", res, f.Clauses)
	}
}

func TestEliminateRespectsGrowthCap(t *testing.T) {
	// A variable with 3 positive and 3 negative occurrences can produce
	// up to 9 resolvents; with maxGrowth 0 the budget is 6.
	f := New(8)
	x := lit.Var(0)
	for i := 1; i <= 3; i++ {
		f.Add(lit.Pos(x), lit.Pos(lit.Var(i)))
		f.Add(lit.Neg(x), lit.Pos(lit.Var(i+3)))
	}
	res := EliminateVars(f, func(v lit.Var) bool { return v == x }, 0)
	if res.Eliminated != 0 {
		t.Fatalf("should have refused to grow: %+v", res)
	}
	res = EliminateVars(f, func(v lit.Var) bool { return v == x }, 10)
	if res.Eliminated != 1 {
		t.Fatalf("should eliminate with a slack budget: %+v", res)
	}
}

// TestEliminationPreservesProjection is the essential property: the set
// of projections of models onto the kept variables is unchanged.
func TestEliminationPreservesProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(515))
	for iter := 0; iter < 300; iter++ {
		nVars := 4 + rng.Intn(7)
		f := randomFormula(rng, nVars, 1+rng.Intn(3*nVars), 1+rng.Intn(3))
		// Keep a random subset as "projection".
		keep := make([]bool, nVars)
		var kept []lit.Var
		for v := 0; v < nVars; v++ {
			if rng.Intn(2) == 0 {
				keep[v] = true
				kept = append(kept, lit.Var(v))
			}
		}
		if len(kept) == 0 {
			kept = append(kept, 0)
			keep[0] = true
		}
		want := f.ProjectedModels(kept)
		g := f.Clone()
		EliminateVars(g, func(v lit.Var) bool { return !keep[v] }, 2)
		g.NumVars = f.NumVars // eliminated vars are now unconstrained
		got := g.ProjectedModels(kept)
		if len(got) != len(want) {
			t.Fatalf("iter %d: projection count %d -> %d\nbefore:\n%safter:\n%s",
				iter, len(want), len(got), DimacsString(f, kept), DimacsString(g, kept))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("iter %d: projection %s lost", iter, k)
			}
		}
	}
}

func TestEliminateNothingWhenNoneEliminable(t *testing.T) {
	f := New(3)
	f.Add(lit.Pos(0), lit.Pos(1))
	res := EliminateVars(f, func(lit.Var) bool { return false }, 0)
	if res.Eliminated != 0 || res.ClausesBefore != res.ClausesAfter {
		t.Fatalf("unexpected work: %+v", res)
	}
}

func TestResolveTautology(t *testing.T) {
	a := Clause{lit.Pos(0), lit.Pos(1)}
	b := Clause{lit.Neg(0), lit.Neg(1)}
	if _, taut := resolve(a, b, 0); !taut {
		t.Fatal("resolvent (1 ∨ ¬1) should be a tautology")
	}
	c := Clause{lit.Neg(0), lit.Pos(2)}
	r, taut := resolve(a, c, 0)
	if taut || len(r) != 2 {
		t.Fatalf("resolvent = %v", r)
	}
}
