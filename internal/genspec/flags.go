package genspec

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"allsatpre/internal/budget"
	"allsatpre/internal/simplify"
	"allsatpre/internal/stats"
)

// BudgetFlags holds the resource-limit and observability flags shared by
// the CLI tools. Register them with AddBudgetFlags before flag.Parse,
// then build the budget and stats registry from the parsed values.
type BudgetFlags struct {
	// Timeout is the wall-clock budget (0 = unlimited).
	Timeout time.Duration
	// MaxConflicts / MaxDecisions / MaxCubes cap the SAT search and the
	// enumeration (0 = unlimited).
	MaxConflicts uint64
	MaxDecisions uint64
	MaxCubes     uint64
	// MaxBDDNodes caps the solution/engine BDD size (0 = unlimited).
	MaxBDDNodes int
	// Workers is the enumeration worker count (-workers). Defaults to
	// runtime.NumCPU(); 1 disables parallelism.
	Workers int
	// ShowStats requests a counter snapshot on stdout after the run.
	ShowStats bool
	// StatsHTTP, when non-empty, serves live JSON snapshots at this
	// address while the run is in flight.
	StatsHTTP string
}

// AddBudgetFlags registers -timeout, -max-conflicts, -max-decisions,
// -max-cubes, -max-bdd-nodes, -stats and -stats-http on fs and returns
// the handle to read after parsing.
func AddBudgetFlags(fs *flag.FlagSet) *BudgetFlags {
	bf := &BudgetFlags{}
	fs.DurationVar(&bf.Timeout, "timeout", 0,
		"wall-clock budget, e.g. 30s or 2m (0 = unlimited); on expiry the run reports TRUNCATED with a sound partial result")
	fs.Uint64Var(&bf.MaxConflicts, "max-conflicts", 0,
		"abort after this many SAT conflicts (0 = unlimited)")
	fs.Uint64Var(&bf.MaxDecisions, "max-decisions", 0,
		"abort after this many search decisions (0 = unlimited)")
	fs.Uint64Var(&bf.MaxCubes, "max-cubes", 0,
		"abort after enumerating this many cubes (0 = unlimited)")
	fs.IntVar(&bf.MaxBDDNodes, "max-bdd-nodes", 0,
		"abort when the BDD grows past this many nodes (0 = unlimited)")
	fs.IntVar(&bf.Workers, "workers", runtime.NumCPU(),
		"parallel enumeration workers (default = CPU count; 1 = sequential)")
	fs.BoolVar(&bf.ShowStats, "stats", false,
		"print a hierarchical counter snapshot after the run")
	fs.StringVar(&bf.StatsHTTP, "stats-http", "",
		"serve live JSON counter snapshots at this address (e.g. :8080) while running")
	return bf
}

// AddIncrementalFlag registers -incremental on fs: iterated reachability
// entry points then keep one persistent solver session and BDD manager
// across steps instead of re-encoding the circuit per step. Results are
// bit-identical to the non-incremental runs; budgets become
// session-global. Registered separately from AddBudgetFlags because only
// the reachability-iterating tools can honor it.
func AddIncrementalFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("incremental", false,
		"reuse one solver session and BDD manager across reachability steps (bit-identical results, session-global budgets)")
}

// AddSimplifyFlag registers -simplify on fs as a tri-state string
// (auto|on|off). Parse the value with SimplifyMode after fs.Parse. Auto
// follows each entry point's default: on for one-shot enumeration, off
// for incremental sessions.
func AddSimplifyFlag(fs *flag.FlagSet) *string {
	return fs.String("simplify", "auto",
		"projection-safe CNF preprocessing before enumeration: auto, on, or off (the enumerated state set is identical either way)")
}

// SimplifyMode parses an -simplify flag value.
func SimplifyMode(s string) (simplify.Mode, error) {
	switch s {
	case "auto", "":
		return simplify.Auto, nil
	case "on", "true", "1":
		return simplify.On, nil
	case "off", "false", "0":
		return simplify.Off, nil
	default:
		return simplify.Auto, fmt.Errorf("invalid -simplify value %q (want auto, on, or off)", s)
	}
}

// Budget builds the resource budget described by the parsed flags. The
// returned budget is relative (Timeout, not Deadline); the library
// materializes it once at the outermost entry point.
func (bf *BudgetFlags) Budget() budget.Budget {
	return budget.Budget{
		Timeout:      bf.Timeout,
		MaxConflicts: bf.MaxConflicts,
		MaxDecisions: bf.MaxDecisions,
		MaxCubes:     bf.MaxCubes,
		MaxBDDNodes:  bf.MaxBDDNodes,
	}
}

// StatsRegistry returns a registry when -stats or -stats-http was given
// (nil otherwise, which disables collection), starting the HTTP snapshot
// server when requested.
func (bf *BudgetFlags) StatsRegistry(name string) *stats.Registry {
	if !bf.ShowStats && bf.StatsHTTP == "" {
		return nil
	}
	reg := stats.NewRegistry(name)
	if bf.StatsHTTP != "" {
		ss := reg.Serve(bf.StatsHTTP)
		go func() {
			if err := <-ss.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "stats-http:", err)
			}
		}()
	}
	return reg
}

// Report writes the final snapshot to w when -stats was given.
func (bf *BudgetFlags) Report(w io.Writer, reg *stats.Registry) {
	if reg == nil || !bf.ShowStats {
		return
	}
	fmt.Fprintln(w, "--- stats ---")
	reg.Snapshot().WriteText(w)
}

// Truncated prints the loud truncation marker every CLI shares when a
// resource limit cut a run short: results are sound but incomplete, and
// must never be read as a complete answer.
func Truncated(w io.Writer, aborted bool, reason budget.Reason) {
	if !aborted {
		return
	}
	fmt.Fprintf(w, "*** TRUNCATED (%s): partial result — a sound under-approximation, NOT the complete answer ***\n", reason)
}
