// Package genspec resolves the command-line circuit and engine
// specification strings shared by the CLI tools: a spec is either a path
// to a BENCH file or a generator description like "counter:8",
// "lfsr:8,0,3,4,5" or "slike:SEED,GATES,LATCHES,INPUTS".
package genspec

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"allsatpre/internal/aig"
	"allsatpre/internal/circuit"
	"allsatpre/internal/gen"
	"allsatpre/internal/preimage"
)

// Resolve turns a circuit spec into a netlist. Specs with a ':' (or the
// bare word "traffic") select a generator; anything else is treated as a
// BENCH file path.
func Resolve(spec string) (*circuit.Circuit, error) {
	if spec == "traffic" {
		return gen.TrafficLight(), nil
	}
	name, argStr, found := strings.Cut(spec, ":")
	if !found {
		f, err := os.Open(spec)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(spec, ".aag") {
			g, err := aig.ParseAiger(spec, f)
			if err != nil {
				return nil, err
			}
			return g.ToCircuit().Circuit, nil
		}
		return circuit.ParseBench(spec, f)
	}
	args, err := parseInts(argStr)
	if err != nil {
		return nil, fmt.Errorf("genspec: %q: %v", spec, err)
	}
	switch name {
	case "counter":
		if len(args) != 1 {
			return nil, fmt.Errorf("genspec: counter:N")
		}
		return gen.Counter(args[0], true, false), nil
	case "counter-free":
		if len(args) != 1 {
			return nil, fmt.Errorf("genspec: counter-free:N")
		}
		return gen.Counter(args[0], false, false), nil
	case "shift":
		if len(args) != 1 {
			return nil, fmt.Errorf("genspec: shift:N")
		}
		return gen.ShiftRegister(args[0]), nil
	case "lfsr":
		if len(args) < 2 {
			return nil, fmt.Errorf("genspec: lfsr:N,tap[,tap...]")
		}
		return gen.LFSR(args[0], args[1:]...), nil
	case "johnson":
		if len(args) != 1 {
			return nil, fmt.Errorf("genspec: johnson:N")
		}
		return gen.Johnson(args[0]), nil
	case "gray":
		if len(args) != 1 {
			return nil, fmt.Errorf("genspec: gray:N")
		}
		return gen.GrayCounter(args[0]), nil
	case "arbiter":
		if len(args) != 1 {
			return nil, fmt.Errorf("genspec: arbiter:N")
		}
		return gen.Arbiter(args[0]), nil
	case "fifo":
		if len(args) != 1 {
			return nil, fmt.Errorf("genspec: fifo:N")
		}
		return gen.FIFOCtrl(args[0]), nil
	case "mult":
		if len(args) != 1 {
			return nil, fmt.Errorf("genspec: mult:N")
		}
		return gen.MultCore(args[0]), nil
	case "slike":
		if len(args) != 4 {
			return nil, fmt.Errorf("genspec: slike:SEED,GATES,LATCHES,INPUTS")
		}
		return gen.SLike(gen.SLikeParams{
			Seed: int64(args[0]), Gates: args[1], Latches: args[2], Inputs: args[3],
		}), nil
	default:
		return nil, fmt.Errorf("genspec: unknown generator %q", name)
	}
}

// Engine maps an engine name to its constant.
func Engine(name string) (preimage.Engine, error) {
	switch name {
	case "success", "success-driven", "sd":
		return preimage.EngineSuccessDriven, nil
	case "blocking":
		return preimage.EngineBlocking, nil
	case "lifting":
		return preimage.EngineLifting, nil
	case "disjoint":
		return preimage.EngineDisjoint, nil
	case "bdd":
		return preimage.EngineBDD, nil
	default:
		return 0, fmt.Errorf("genspec: unknown engine %q", name)
	}
}

func parseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("missing arguments")
	}
	var out []int
	for _, tok := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", tok)
		}
		out = append(out, n)
	}
	return out, nil
}
