package genspec

import (
	"os"
	"path/filepath"
	"testing"

	"allsatpre/internal/preimage"
)

func TestResolveGenerators(t *testing.T) {
	cases := []struct {
		spec            string
		inputs, latches int
	}{
		{"counter:5", 1, 5},
		{"counter-free:4", 0, 4},
		{"shift:6", 1, 6},
		{"lfsr:5,0,2", 0, 5},
		{"johnson:4", 0, 4},
		{"gray:4", 0, 4},
		{"traffic", 2, 5},
		{"arbiter:3", 3, 5},
		{"mult:4", 8, 4},
		{"fifo:2", 2, 5},
		{"slike:7,30,4,3", 3, 4},
	}
	for _, tc := range cases {
		c, err := Resolve(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		if len(c.Inputs) != tc.inputs || len(c.Latches) != tc.latches {
			t.Fatalf("%s: PI=%d FF=%d, want PI=%d FF=%d",
				tc.spec, len(c.Inputs), len(c.Latches), tc.inputs, tc.latches)
		}
	}
}

func TestResolveBenchFile(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "s27.bench")
	c, err := Resolve(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Latches) != 3 {
		t.Fatal("s27 should have 3 latches")
	}
}

func TestResolveAigerFile(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "johnson4.aag")
	c, err := Resolve(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Latches) != 4 {
		t.Fatal("johnson4.aag should have 4 latches")
	}
}

func TestResolveErrors(t *testing.T) {
	bad := []string{
		"nope.bench",   // missing file
		"frobnicate:3", // unknown generator
		"counter:",     // missing args
		"counter:1,2",  // wrong arity
		"counter:x",    // non-integer
		"shift:1,2",    // wrong arity
		"lfsr:4",       // missing taps
		"arbiter:1,2",  // wrong arity
		"fifo:",        // empty args
		"mult:2,3",     // wrong arity
		"johnson:1,2",  // wrong arity
		"gray:",        // empty args
		"slike:1,2",    // wrong arity
	}
	for _, spec := range bad {
		if _, err := Resolve(spec); err == nil {
			t.Errorf("%s: expected error", spec)
		}
	}
	_ = os.ErrNotExist
}

func TestEngineNames(t *testing.T) {
	cases := map[string]preimage.Engine{
		"success":        preimage.EngineSuccessDriven,
		"success-driven": preimage.EngineSuccessDriven,
		"sd":             preimage.EngineSuccessDriven,
		"blocking":       preimage.EngineBlocking,
		"lifting":        preimage.EngineLifting,
		"bdd":            preimage.EngineBDD,
	}
	for name, want := range cases {
		got, err := Engine(name)
		if err != nil || got != want {
			t.Errorf("Engine(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := Engine("quantum"); err == nil {
		t.Error("expected error for unknown engine")
	}
}
