package stats

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotone counter safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Registry is a hierarchical collection of named counters, gauges, and
// duration accumulators, organized into phases (sub-registries). Engines
// record into it during a run; callers snapshot it for reporting or
// serve it over HTTP. All methods are safe for concurrent use.
type Registry struct {
	name string

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]int64
	floats     map[string]float64
	durations  map[string]time.Duration
	histograms map[string]*Histogram
	phases     map[string]*Registry
	order      []string // insertion order of phases
}

// NewRegistry creates a root registry with the given name.
func NewRegistry(name string) *Registry {
	return &Registry{
		name:       name,
		counters:   map[string]*Counter{},
		gauges:     map[string]int64{},
		floats:     map[string]float64{},
		durations:  map[string]time.Duration{},
		histograms: map[string]*Histogram{},
		phases:     map[string]*Registry{},
	}
}

// Name returns the registry's name.
func (r *Registry) Name() string { return r.name }

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// SetGauge records a point-in-time value (last write wins).
func (r *Registry) SetGauge(name string, v int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = v
}

// SetFloatGauge records a point-in-time fractional value (last write
// wins) — ratios like load factors or mean probe lengths, rendered with
// three decimals in snapshots.
func (r *Registry) SetFloatGauge(name string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.floats[name] = v
}

// MaxGauge records a point-in-time value, keeping the maximum observed.
func (r *Registry) MaxGauge(name string, v int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur, ok := r.gauges[name]; !ok || v > cur {
		r.gauges[name] = v
	}
}

// AddDuration accumulates wall-clock time under the given name.
func (r *Registry) AddDuration(name string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.durations[name] += d
}

// Phase returns (creating on first use) the named sub-registry. Phases
// group counters by computation stage — e.g. one phase per reachability
// step — and render as an indented subtree in snapshots.
func (r *Registry) Phase(name string) *Registry {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.phases[name]
	if !ok {
		p = NewRegistry(name)
		r.phases[name] = p
		r.order = append(r.order, name)
	}
	return p
}

// KV is one snapshotted metric.
type KV struct {
	Key   string
	Value string
}

// Snapshot is a point-in-time copy of a registry subtree, ready to
// render. Metrics are sorted by key; phases keep insertion order.
type Snapshot struct {
	Name    string
	Metrics []KV
	Phases  []Snapshot
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	s := Snapshot{Name: r.name}
	for k, c := range r.counters {
		s.Metrics = append(s.Metrics, KV{k, fmt.Sprintf("%d", c.Load())})
	}
	for k, v := range r.gauges {
		s.Metrics = append(s.Metrics, KV{k, fmt.Sprintf("%d", v)})
	}
	for k, v := range r.floats {
		s.Metrics = append(s.Metrics, KV{k, fmt.Sprintf("%.3f", v)})
	}
	for k, d := range r.durations {
		s.Metrics = append(s.Metrics, KV{k, fmtDuration(d)})
	}
	phases := make([]*Registry, 0, len(r.order))
	for _, name := range r.order {
		phases = append(phases, r.phases[name])
	}
	r.mu.Unlock()

	sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].Key < s.Metrics[j].Key })
	for _, p := range phases {
		s.Phases = append(s.Phases, p.Snapshot())
	}
	return s
}

// WriteText renders the snapshot as an indented tree.
func (s Snapshot) WriteText(w io.Writer) { s.writeText(w, "") }

func (s Snapshot) writeText(w io.Writer, indent string) {
	fmt.Fprintf(w, "%s[%s]\n", indent, s.Name)
	for _, kv := range s.Metrics {
		fmt.Fprintf(w, "%s  %-24s %s\n", indent, kv.Key, kv.Value)
	}
	for _, p := range s.Phases {
		p.writeText(w, indent+"  ")
	}
}

// WriteJSON renders the snapshot as a JSON object in the expvar style:
// metric keys map to values, phases map to nested objects. Keys are
// emitted with %q so the output is always valid JSON.
func (s Snapshot) WriteJSON(w io.Writer) {
	fmt.Fprint(w, "{")
	first := true
	sep := func() {
		if !first {
			fmt.Fprint(w, ",")
		}
		first = false
	}
	for _, kv := range s.Metrics {
		sep()
		fmt.Fprintf(w, "%q:%q", kv.Key, kv.Value)
	}
	for _, p := range s.Phases {
		sep()
		fmt.Fprintf(w, "%q:", p.Name)
		p.WriteJSON(w)
	}
	fmt.Fprint(w, "}")
}

// String renders the text form.
func (s Snapshot) String() string {
	var b strings.Builder
	s.WriteText(&b)
	return b.String()
}

// Handler serves the registry as JSON — an expvar-style snapshot
// endpoint the CLIs can expose with -stats-http while a long run is in
// flight.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.Snapshot().WriteJSON(w)
		io.WriteString(w, "\n")
	})
}

// SnapshotServer is a running registry-snapshot HTTP endpoint with a
// graceful shutdown path. Close drains in-flight snapshot requests
// instead of dropping them; the underlying server carries a
// ReadHeaderTimeout so a slow-headers client cannot pin a connection
// open indefinitely (slowloris).
type SnapshotServer struct {
	srv  *http.Server
	errc chan error
}

// Serve starts an HTTP server for the registry snapshot on addr in a
// background goroutine, returning immediately. Startup errors (e.g. a
// busy port) are reported on Err; call Close to shut the endpoint down
// gracefully.
func (r *Registry) Serve(addr string) *SnapshotServer {
	mux := http.NewServeMux()
	mux.Handle("/", r.Handler())
	mux.Handle("/debug/stats", r.Handler())
	s := &SnapshotServer{
		srv: &http.Server{
			Addr:              addr,
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
		errc: make(chan error, 1),
	}
	go func() {
		if err := s.srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			s.errc <- err
		}
	}()
	return s
}

// Err reports a startup or serve failure (never http.ErrServerClosed).
func (s *SnapshotServer) Err() <-chan error { return s.errc }

// Close shuts the endpoint down, draining in-flight requests for up to
// two seconds before closing the remaining connections.
func (s *SnapshotServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
