// Package stats provides the small reporting toolkit used by the
// experiment harness: wall-clock timers, aligned text tables, and CSV
// output, so every table and figure of the evaluation renders uniformly
// from cmd/experiments and the benchmarks.
package stats

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Timer measures wall-clock durations.
type Timer struct {
	start time.Time
}

// StartTimer begins timing.
func StartTimer() *Timer { return &Timer{start: time.Now()} }

// Elapsed returns the time since start.
func (t *Timer) Elapsed() time.Duration { return time.Since(t.start) }

// ElapsedMS returns elapsed milliseconds as a float.
func (t *Timer) ElapsedMS() float64 { return float64(t.Elapsed().Microseconds()) / 1000.0 }

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = fmtDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

func fmtDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// RenderCSV writes the table as CSV (no quoting — the harness emits only
// simple tokens).
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.headers, ","))
	for _, row := range t.rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Ratio formats a/b with a guard for b = 0.
func Ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", a/b)
}
