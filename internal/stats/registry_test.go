package stats

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryCountersAndPhases(t *testing.T) {
	r := NewRegistry("run")
	r.Counter("decisions").Add(10)
	r.Counter("decisions").Add(5)
	r.Counter("conflicts").Inc()
	r.SetGauge("bdd-nodes", 42)
	r.MaxGauge("peak", 7)
	r.MaxGauge("peak", 3)
	r.AddDuration("time", 1500*time.Microsecond)
	p := r.Phase("step00")
	p.Counter("cubes").Add(2)
	// Same phase name returns the same sub-registry.
	if r.Phase("step00") != p {
		t.Fatal("Phase not idempotent")
	}

	s := r.Snapshot()
	if s.Name != "run" {
		t.Fatalf("name %q", s.Name)
	}
	got := map[string]string{}
	for _, kv := range s.Metrics {
		got[kv.Key] = kv.Value
	}
	if got["decisions"] != "15" || got["conflicts"] != "1" ||
		got["bdd-nodes"] != "42" || got["peak"] != "7" {
		t.Fatalf("bad metrics %v", got)
	}
	if len(s.Phases) != 1 || s.Phases[0].Name != "step00" {
		t.Fatalf("bad phases %v", s.Phases)
	}
	if s.Phases[0].Metrics[0].Key != "cubes" || s.Phases[0].Metrics[0].Value != "2" {
		t.Fatalf("bad phase metrics %v", s.Phases[0].Metrics)
	}
}

func TestSnapshotMetricsSorted(t *testing.T) {
	r := NewRegistry("x")
	r.Counter("zz").Inc()
	r.Counter("aa").Inc()
	r.Counter("mm").Inc()
	s := r.Snapshot()
	for i := 1; i < len(s.Metrics); i++ {
		if s.Metrics[i-1].Key > s.Metrics[i].Key {
			t.Fatalf("metrics not sorted: %v", s.Metrics)
		}
	}
}

func TestSnapshotJSONValid(t *testing.T) {
	r := NewRegistry("run")
	r.Counter("decisions").Add(3)
	r.Phase("phase \"quoted\"").Counter("odd\nkey").Add(1)
	var sb strings.Builder
	r.Snapshot().WriteJSON(&sb)
	var out map[string]interface{}
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("invalid JSON %q: %v", sb.String(), err)
	}
	if out["decisions"] != "3" {
		t.Fatalf("decisions = %v", out["decisions"])
	}
	if _, ok := out[`phase "quoted"`].(map[string]interface{}); !ok {
		t.Fatalf("phase missing in %v", out)
	}
}

func TestSnapshotTextRendering(t *testing.T) {
	r := NewRegistry("run")
	r.Counter("cubes").Add(9)
	r.Phase("step01").Counter("hits").Add(4)
	text := r.Snapshot().String()
	for _, want := range []string{"[run]", "cubes", "9", "[step01]", "hits"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text %q missing %q", text, want)
		}
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry("race")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("n").Inc()
				r.Phase("p").Counter("m").Inc()
				r.MaxGauge("g", int64(g*1000+i))
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("n").Load(); got != 8000 {
		t.Fatalf("n = %d, want 8000", got)
	}
	if got := r.Phase("p").Counter("m").Load(); got != 8000 {
		t.Fatalf("m = %d, want 8000", got)
	}
}

func TestHandlerServesJSON(t *testing.T) {
	r := NewRegistry("srv")
	r.Counter("hits").Add(2)
	req := httptest.NewRequest("GET", "/debug/stats", nil)
	w := httptest.NewRecorder()
	r.Handler().ServeHTTP(w, req)
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var out map[string]interface{}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad body %q: %v", w.Body.String(), err)
	}
	if out["hits"] != "2" {
		t.Fatalf("hits = %v", out["hits"])
	}
}

func TestFloatGauges(t *testing.T) {
	r := NewRegistry("run")
	r.SetFloatGauge("load-factor", 0.5)
	r.SetFloatGauge("load-factor", 0.75) // last write wins
	r.SetFloatGauge("avg-probes", 1.0/3.0)
	s := r.Snapshot()
	got := map[string]string{}
	for _, kv := range s.Metrics {
		got[kv.Key] = kv.Value
	}
	if got["load-factor"] != "0.750" {
		t.Fatalf("load-factor = %q, want 0.750", got["load-factor"])
	}
	if got["avg-probes"] != "0.333" {
		t.Fatalf("avg-probes = %q, want 0.333", got["avg-probes"])
	}
	// Float gauges must survive the JSON rendering path too.
	var b strings.Builder
	s.WriteJSON(&b)
	var parsed map[string]any
	if err := json.Unmarshal([]byte(b.String()), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if parsed["load-factor"] != "0.750" {
		t.Fatalf("JSON load-factor = %v", parsed["load-factor"])
	}
}
