package stats

import (
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "circuit", "time", "count")
	tb.AddRow("s27", 1.5, 42)
	tb.AddRow("counter8", 0.25, 7)
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "counter8") || !strings.Contains(out, "1.500") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Error("NumRows")
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "bbbb")
	tb.AddRow("xxxxxx", "y")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header line should be padded to the widest cell
	if len(lines[0]) < len("xxxxxx")+2+len("bbbb")-1 {
		t.Errorf("header not padded: %q", lines[0])
	}
}

func TestDurationFormatting(t *testing.T) {
	tb := NewTable("", "d")
	tb.AddRow(500 * time.Microsecond)
	tb.AddRow(25 * time.Millisecond)
	tb.AddRow(3 * time.Second)
	out := tb.String()
	for _, want := range []string{"µs", "ms", "s"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s in:\n%s", want, out)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow(1, 2)
	var sb strings.Builder
	tb.RenderCSV(&sb)
	if sb.String() != "a,b\n1,2\n" {
		t.Errorf("CSV = %q", sb.String())
	}
}

func TestTimer(t *testing.T) {
	tm := StartTimer()
	time.Sleep(2 * time.Millisecond)
	if tm.Elapsed() < time.Millisecond {
		t.Error("timer too fast")
	}
	if tm.ElapsedMS() <= 0 {
		t.Error("ElapsedMS")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(4, 2) != "2.00x" {
		t.Errorf("Ratio = %q", Ratio(4, 2))
	}
	if Ratio(1, 0) != "inf" {
		t.Error("Ratio by zero")
	}
}
