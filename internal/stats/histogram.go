package stats

import (
	"fmt"
	"time"
)

// histBounds are the exponential latency buckets (upper bounds) shared
// by every Histogram: 1ms·4^k up to ~17 minutes, plus a +inf overflow.
// Powers of four keep the bucket count small while still separating
// "interactive" from "long solve" traffic. Keys are zero-padded so the
// registry's alphabetical metric sort renders them in numeric order.
var histBounds = []time.Duration{
	1 * time.Millisecond,
	4 * time.Millisecond,
	16 * time.Millisecond,
	64 * time.Millisecond,
	256 * time.Millisecond,
	1024 * time.Millisecond,
	4096 * time.Millisecond,
	16384 * time.Millisecond,
	65536 * time.Millisecond,
	262144 * time.Millisecond,
	1048576 * time.Millisecond,
}

// Histogram accumulates duration observations into cumulative
// exponential buckets. The buckets live as ordinary registry counters
// (name.le-0001ms … name.le-inf, plus name.count and a name.total
// duration), so snapshots, the text renderer, and the HTTP endpoint all
// see histogram data with no new snapshot machinery. Safe for
// concurrent use.
type Histogram struct {
	buckets []*Counter // cumulative: buckets[i] counts d <= histBounds[i]
	inf     *Counter
	count   *Counter
	reg     *Registry
	total   string
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	h, ok := r.histograms[name]
	if ok {
		r.mu.Unlock()
		return h
	}
	r.mu.Unlock()

	h = &Histogram{reg: r, total: name + ".total"}
	for _, b := range histBounds {
		h.buckets = append(h.buckets,
			r.Counter(fmt.Sprintf("%s.le-%07dms", name, b.Milliseconds())))
	}
	h.inf = r.Counter(name + ".le-inf")
	h.count = r.Counter(name + ".count")

	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.histograms[name]; ok {
		return existing // lost a registration race; counters are shared anyway
	}
	r.histograms[name] = h
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	for i, b := range histBounds {
		if d <= b {
			h.buckets[i].Inc()
		}
	}
	h.inf.Inc()
	h.count.Inc()
	h.reg.AddDuration(h.total, d)
}
