package stats

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry("test")
	h := r.Histogram("lat")
	h.Observe(500 * time.Microsecond) // le-1ms
	h.Observe(3 * time.Millisecond)   // le-4ms
	h.Observe(2 * time.Hour)          // overflow: only le-inf

	find := func(key string) string {
		t.Helper()
		for _, kv := range r.Snapshot().Metrics {
			if kv.Key == key {
				return kv.Value
			}
		}
		t.Fatalf("metric %q missing from snapshot", key)
		return ""
	}
	if got := find("lat.le-0000001ms"); got != "1" {
		t.Errorf("le-1ms = %s, want 1", got)
	}
	if got := find("lat.le-0000004ms"); got != "2" {
		t.Errorf("le-4ms = %s, want 2 (buckets are cumulative)", got)
	}
	if got := find("lat.le-inf"); got != "3" {
		t.Errorf("le-inf = %s, want 3", got)
	}
	if got := find("lat.count"); got != "3" {
		t.Errorf("count = %s, want 3", got)
	}
	find("lat.total") // must exist
}

func TestHistogramSameInstance(t *testing.T) {
	r := NewRegistry("test")
	var wg sync.WaitGroup
	hs := make([]*Histogram, 8)
	for i := range hs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hs[i] = r.Histogram("lat")
			hs[i].Observe(time.Millisecond)
		}(i)
	}
	wg.Wait()
	snap := r.Snapshot()
	for _, kv := range snap.Metrics {
		if kv.Key == "lat.count" && kv.Value != "8" {
			t.Fatalf("lat.count = %s, want 8", kv.Value)
		}
	}
}

func TestSnapshotServerServesAndCloses(t *testing.T) {
	r := NewRegistry("test")
	r.Counter("hits").Add(42)

	// Exercise the handler directly (the full Serve path binds a real
	// port; covered by the cmd/serve smoke in scripts/verify.sh).
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/stats", nil))
	if !strings.Contains(rec.Body.String(), `"hits":"42"`) {
		t.Fatalf("snapshot body = %s", rec.Body.String())
	}

	s := r.Serve("127.0.0.1:0") // port 0: never collides
	// Err must stay silent during startup races; Close must not error.
	select {
	case err := <-s.Err():
		t.Fatalf("unexpected serve error: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
