package stats

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentHammer drives every Registry entry point from
// eight goroutines at once while a reader snapshots the tree. It exists
// as a -race regression guard for the parallel enumeration pool, which
// publishes per-worker metrics into a shared registry: any future
// lock-coverage gap (an unguarded map write, a counter swapped for a
// plain int) fails this test under the race detector.
func TestRegistryConcurrentHammer(t *testing.T) {
	reg := NewRegistry("hammer")
	const (
		goroutines = 8
		rounds     = 500
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Half the keys are shared across goroutines (contended), half
			// are private (map-growth churn while others hold references).
			shared := "shared"
			private := fmt.Sprintf("private-%d", g)
			for i := 0; i < rounds; i++ {
				reg.Counter(shared).Inc()
				reg.Counter(private).Add(2)
				reg.SetGauge(shared, int64(i))
				reg.SetGauge(private, int64(g))
				reg.MaxGauge("max", int64(g*rounds+i))
				reg.SetFloatGauge("ratio", float64(i)/rounds)
				reg.AddDuration("busy", time.Microsecond)
				ph := reg.Phase(fmt.Sprintf("phase-%d", i%3))
				ph.Counter(shared).Inc()
				ph.MaxGauge("depth", int64(i))
				if i%50 == 0 {
					_ = reg.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	if got := reg.Counter("shared").Load(); got != goroutines*rounds {
		t.Errorf("shared counter = %d, want %d", got, goroutines*rounds)
	}
	for g := 0; g < goroutines; g++ {
		key := fmt.Sprintf("private-%d", g)
		if got := reg.Counter(key).Load(); got != 2*rounds {
			t.Errorf("%s = %d, want %d", key, got, 2*rounds)
		}
	}
	snap := reg.Snapshot()
	if len(snap.Phases) != 3 {
		t.Errorf("phases = %d, want 3", len(snap.Phases))
	}
	// MaxGauge keeps the maximum over all writes: g=7, i=rounds-1.
	want := fmt.Sprint(goroutines*rounds - 1)
	for _, kv := range snap.Metrics {
		if kv.Key == "max" && kv.Value != want {
			t.Errorf("max gauge = %s, want %s", kv.Value, want)
		}
	}
}

// TestRegistryIncrKeysHammer hammers the exact metric keys the
// incremental reach session (internal/incr) publishes, concurrently with
// snapshot readers. The incremental engine shares one registry between
// the session goroutine, the per-worker pool goroutines, and whatever
// reports stats at the end, so a lock-coverage regression on these keys
// surfaces here under -race before it corrupts a real run's report.
// TestRegistrySimplifyKeysHammer hammers the exact metric keys the
// projection-safe preprocessor publishes (preimage.recordStats and the
// incr session's incr.simplify-* variants), concurrently with snapshot
// readers — the preimage path records them from whichever goroutine
// finishes a parallel run, so the same lock-coverage guarantee applies.
func TestRegistrySimplifyKeysHammer(t *testing.T) {
	reg := NewRegistry("simplify-hammer")
	counters := []string{
		"simplify-runs", "simplify-vars-eliminated", "simplify-units-fixed",
		"simplify-clauses-subsumed", "simplify-lits-strengthened",
		"simplify-resolvents-added", "simplify-probes", "simplify-probe-failures",
		"simplify-clauses-removed",
		"incr.simplify-vars-eliminated", "incr.simplify-clauses-subsumed",
		"incr.simplify-lits-strengthened", "incr.simplify-resolvents-added",
		"incr.simplify-probe-failures",
	}
	const (
		goroutines = 8
		rounds     = 300
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for _, k := range counters {
					reg.Counter(k).Inc()
				}
				if i%64 == 0 {
					_ = reg.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	for _, k := range counters {
		if got := reg.Counter(k).Load(); got != goroutines*rounds {
			t.Errorf("%s = %d, want %d", k, got, goroutines*rounds)
		}
	}
}

func TestRegistryIncrKeysHammer(t *testing.T) {
	reg := NewRegistry("incr-hammer")
	counters := []string{
		"incr.steps", "incr.clauses-added", "incr.clauses-retired",
		"incr.learned-dropped", "incr.act-vars-retired", "incr.memo-invalidated",
	}
	gauges := []string{
		"incr.learned-kept", "incr.learned-live", "incr.learned-live-lits",
		"incr.memo-size",
		// The sat.* arena/tier keys are recorded by preimage.recordStats
		// from whichever goroutine finishes a parallel run, like the
		// simplify keys above.
		"sat.learnts-core", "sat.learnts-tier2", "sat.learnts-local",
	}
	const (
		goroutines = 8
		rounds     = 300
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for _, k := range counters {
					reg.Counter(k).Inc()
				}
				for _, k := range gauges {
					reg.SetGauge(k, int64(i))
				}
				reg.AddDuration("incr.encode-saved", time.Microsecond)
				if i%64 == 0 {
					_ = reg.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	for _, k := range counters {
		if got := reg.Counter(k).Load(); got != goroutines*rounds {
			t.Errorf("%s = %d, want %d", k, got, goroutines*rounds)
		}
	}
}
