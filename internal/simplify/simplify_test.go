package simplify

import (
	"fmt"
	"math/rand"
	"testing"

	"allsatpre/internal/cnf"
	"allsatpre/internal/lit"
)

// randomFormula builds a small random 1..4-CNF over n variables.
func randomFormula(rng *rand.Rand, n, clauses int) *cnf.Formula {
	f := cnf.New(n)
	for i := 0; i < clauses; i++ {
		width := 1 + rng.Intn(4)
		c := make(cnf.Clause, 0, width)
		for j := 0; j < width; j++ {
			v := lit.Var(rng.Intn(n))
			c = append(c, lit.New(v, rng.Intn(2) == 1))
		}
		f.AddClause(c)
	}
	return f
}

// frozenSubset picks a random frozen set of size k and returns it as a
// predicate plus the ordered variable list.
func frozenSubset(rng *rand.Rand, n, k int) (func(lit.Var) bool, []lit.Var) {
	perm := rng.Perm(n)
	set := make(map[lit.Var]bool, k)
	vars := make([]lit.Var, 0, k)
	for _, i := range perm[:k] {
		set[lit.Var(i)] = true
	}
	for v := 0; v < n; v++ {
		if set[lit.Var(v)] {
			vars = append(vars, lit.Var(v))
		}
	}
	return func(v lit.Var) bool { return set[v] }, vars
}

// TestProjectionEquivalenceRandom is the core soundness property: for a
// random formula and a random frozen set, the projection of the solution
// set onto the frozen variables is identical before and after Run.
func TestProjectionEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(8)
		f := randomFormula(rng, n, 2+rng.Intn(3*n))
		frozen, fvars := frozenSubset(rng, n, 1+rng.Intn(n))
		orig := f.Clone()
		want := orig.ProjectedModels(fvars)

		res := Run(f, frozen, Options{})
		if f.NumVars != n {
			t.Fatalf("trial %d: NumVars changed %d -> %d", trial, n, f.NumVars)
		}
		got := f.ProjectedModels(fvars)
		if res.Unsat && len(want) != 0 {
			t.Fatalf("trial %d: claimed Unsat but original has %d projected models", trial, len(want))
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: projected model count %d != %d\norig: %v\nsimp: %v",
				trial, len(got), len(want), orig, f)
		}
		for m := range want {
			if !got[m] {
				t.Fatalf("trial %d: projected model %s lost", trial, m)
			}
		}
	}
}

// TestExtendReconstruction checks the elimination stack: every model of
// the simplified formula extends to a total model of the original.
func TestExtendReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(8)
		f := randomFormula(rng, n, 2+rng.Intn(3*n))
		frozen, _ := frozenSubset(rng, n, rng.Intn(n+1))
		orig := f.Clone()

		res := Run(f, frozen, Options{})
		if res.Unsat {
			if orig.CountModels() != 0 {
				t.Fatalf("trial %d: claimed Unsat but original satisfiable", trial)
			}
			continue
		}
		assign := make([]lit.Tern, n)
		checked := 0
		f.EnumerateModels(func(model []bool) {
			if checked >= 64 {
				return
			}
			checked++
			total := res.Extend(append([]bool(nil), model...))
			for i, b := range total {
				assign[i] = lit.TernOf(b)
			}
			if !orig.Satisfied(assign) {
				t.Fatalf("trial %d: extended model %v does not satisfy original\norig: %v\nsimp: %v\nstack: %+v",
					trial, total, orig, f, res.stack)
			}
		})
	}
}

// TestFrozenVarsSurvive pins the frozen-set contract: frozen variables
// are never eliminated and never carry reconstruction records, even when
// they are the perfect BVE candidates (definitional equivalences).
func TestFrozenVarsSurvive(t *testing.T) {
	// Chain of equivalences x0 = x1 = x2 = x3; every var occurs twice per
	// phase, so unfrozen BVE would collapse the chain entirely.
	f := cnf.New(4)
	for v := 0; v < 3; v++ {
		f.Add(lit.Neg(lit.Var(v)), lit.Pos(lit.Var(v+1)))
		f.Add(lit.Pos(lit.Var(v)), lit.Neg(lit.Var(v+1)))
	}
	frozen := func(v lit.Var) bool { return v == 0 || v == 3 }
	res := Run(f, frozen, Options{})
	for _, v := range []lit.Var{0, 3} {
		if res.Eliminated(v) {
			t.Fatalf("frozen var %v was eliminated", v)
		}
	}
	if res.Stats.VarsEliminated == 0 {
		t.Fatalf("expected the middle of the chain to be eliminated, stats: %+v", res.Stats)
	}
	// x0 and x3 must still be constrained to be equal.
	want := map[string]bool{"00": true, "11": true}
	got := f.ProjectedModels([]lit.Var{0, 3})
	if len(got) != len(want) {
		t.Fatalf("projection onto frozen vars changed: %v", got)
	}
	for m := range want {
		if !got[m] {
			t.Fatalf("frozen projection lost %s: %v", m, got)
		}
	}
}

// TestFrozenUnitsReemitted: a unit fixing a frozen variable must survive
// in the output formula so downstream enumeration engines see it.
func TestFrozenUnitsReemitted(t *testing.T) {
	f := cnf.New(3)
	f.Add(lit.Pos(0))
	f.Add(lit.Neg(0), lit.Pos(1))
	f.Add(lit.Neg(1), lit.Pos(2))
	frozen := func(v lit.Var) bool { return v == 0 }
	Run(f, frozen, Options{})
	found := false
	for _, c := range f.Clauses {
		if len(c) == 1 && c[0] == lit.Pos(0) {
			found = true
		}
	}
	if !found {
		t.Fatalf("unit on frozen var 0 not re-emitted: %v", f)
	}
	got := f.ProjectedModels([]lit.Var{0})
	if len(got) != 1 || !got["1"] {
		t.Fatalf("frozen projection wrong: %v", got)
	}
}

// TestUnsat: a contradiction must be detected and the formula rewritten
// to a single empty clause with NumVars preserved.
func TestUnsat(t *testing.T) {
	f := cnf.New(2)
	f.Add(lit.Pos(0))
	f.Add(lit.Neg(0), lit.Pos(1))
	f.Add(lit.Neg(1))
	res := Run(f, func(lit.Var) bool { return false }, Options{})
	if !res.Unsat {
		t.Fatalf("expected Unsat, stats: %+v", res.Stats)
	}
	if f.NumVars != 2 || len(f.Clauses) != 1 || len(f.Clauses[0]) != 0 {
		t.Fatalf("unsat rewrite wrong: NumVars=%d clauses=%v", f.NumVars, f.Clauses)
	}
}

// TestSubsumptionAndStrengthening exercises the occurrence-index passes
// directly.
func TestSubsumptionAndStrengthening(t *testing.T) {
	f := cnf.New(4)
	f.Add(lit.Pos(0), lit.Pos(1))                // c0
	f.Add(lit.Pos(0), lit.Pos(1), lit.Pos(2))    // subsumed by c0
	f.Add(lit.Neg(0), lit.Pos(1), lit.Pos(3))    // self-subsumed by c0 on x0 -> (x1 x3)
	frozen := func(lit.Var) bool { return true } // isolate subsumption from BVE
	res := Run(f, frozen, Options{Probing: false, MaxRounds: 2, MaxOccur: 1})
	if res.Stats.ClausesSubsumed == 0 {
		t.Fatalf("expected subsumption, stats: %+v", res.Stats)
	}
	if res.Stats.LitsStrengthened == 0 {
		t.Fatalf("expected self-subsuming strengthening, stats: %+v", res.Stats)
	}
	// Semantic check over all vars (all frozen => full equivalence).
	vars := []lit.Var{0, 1, 2, 3}
	orig := cnf.New(4)
	orig.Add(lit.Pos(0), lit.Pos(1))
	orig.Add(lit.Pos(0), lit.Pos(1), lit.Pos(2))
	orig.Add(lit.Neg(0), lit.Pos(1), lit.Pos(3))
	want := orig.ProjectedModels(vars)
	got := f.ProjectedModels(vars)
	if len(want) != len(got) {
		t.Fatalf("model sets differ: %d vs %d", len(want), len(got))
	}
}

// TestProbing: x2 is entailed through the chain (¬x0 ∨ x2) ∧ (x0 ∨ x1) ∧
// (¬x1 ∨ x2) — no clause pair admits self-subsuming resolution, so only
// failed-literal probing of ¬x2 (whose BCP derives ¬x0, x1, conflict)
// exposes the unit.
func TestProbing(t *testing.T) {
	f := cnf.New(3)
	f.Add(lit.Neg(0), lit.Pos(2))
	f.Add(lit.Pos(0), lit.Pos(1))
	f.Add(lit.Neg(1), lit.Pos(2))
	frozen := func(lit.Var) bool { return true }
	res := Run(f, frozen, Options{Probing: true, MaxOccur: 1})
	if res.Stats.ProbeFailures == 0 {
		t.Fatalf("expected a failed literal, stats: %+v", res.Stats)
	}
	got := f.ProjectedModels([]lit.Var{2})
	if len(got) != 1 || !got["1"] {
		t.Fatalf("probing failed to fix x2: %v", got)
	}
}

// TestPureLiteralElimination: a variable occurring in one phase only is
// eliminated with zero resolvents.
func TestPureLiteralElimination(t *testing.T) {
	f := cnf.New(3)
	f.Add(lit.Pos(0), lit.Pos(2))
	f.Add(lit.Pos(1), lit.Pos(2))
	frozen := func(v lit.Var) bool { return v != 2 }
	res := Run(f, frozen, Options{Probing: false})
	if res.Stats.VarsEliminated != 1 {
		t.Fatalf("expected pure-literal elimination of x2, stats: %+v", res.Stats)
	}
	if len(f.Clauses) != 0 {
		t.Fatalf("expected empty simplified formula, got %v", f.Clauses)
	}
	// Extend must still produce a model of the original.
	total := res.Extend(make([]bool, 3))
	assign := make([]lit.Tern, 3)
	for i, b := range total {
		assign[i] = lit.TernOf(b)
	}
	orig := cnf.New(3)
	orig.Add(lit.Pos(0), lit.Pos(2))
	orig.Add(lit.Pos(1), lit.Pos(2))
	if !orig.Satisfied(assign) {
		t.Fatalf("extended model %v does not satisfy original", total)
	}
}

// TestDeterminism: two runs over clones produce identical output clause
// lists and stats.
func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(8)
		f1 := randomFormula(rng, n, 3*n)
		f2 := f1.Clone()
		frozen, _ := frozenSubset(rng, n, 1+rng.Intn(n/2+1))
		r1 := Run(f1, frozen, Options{})
		r2 := Run(f2, frozen, Options{})
		if fmt.Sprint(f1.Clauses) != fmt.Sprint(f2.Clauses) {
			t.Fatalf("trial %d: nondeterministic output\n%v\n%v", trial, f1.Clauses, f2.Clauses)
		}
		if r1.Stats != r2.Stats {
			t.Fatalf("trial %d: nondeterministic stats\n%+v\n%+v", trial, r1.Stats, r2.Stats)
		}
	}
}

// TestModeEnabled pins the tri-state resolution.
func TestModeEnabled(t *testing.T) {
	if !Auto.Enabled(true) || Auto.Enabled(false) {
		t.Fatal("Auto must follow the default")
	}
	if !On.Enabled(false) || Off.Enabled(true) {
		t.Fatal("On/Off must override the default")
	}
	if Auto.String() != "auto" || On.String() != "on" || Off.String() != "off" {
		t.Fatal("Mode.String mismatch")
	}
}
