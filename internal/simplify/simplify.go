// Package simplify is a projection-safe CNF preprocessor in the SatELite
// lineage (Eén & Biere, "Effective Preprocessing in SAT through Variable
// and Clause Elimination"): bounded variable elimination by resolution,
// forward/backward subsumption and self-subsuming resolution over an
// occurrence index with 64-bit clause signatures, and top-level
// failed-literal probing.
//
// The pass is *projection-safe*: a caller-supplied frozen set names the
// variables whose joint solution projection must be preserved exactly —
// projection/input variables, latch next-state variables, incremental
// activation/selector literals. Frozen variables are never eliminated and
// never dropped when fixed, so for every frozen-variable assignment the
// simplified formula is satisfiable iff the original is. Non-frozen
// (auxiliary) variables are fair game: eliminating a variable v replaces
// its clauses with all non-tautological resolvents on v, which computes
// ∃v.F exactly. All-solutions enumeration projected onto the frozen set
// therefore denotes the same solution set with or without simplification
// (search-dependent engines may tile that set into different — often
// larger — cubes, since shrinking no longer walks eliminated aux vars).
//
// Every elimination is recorded on a stack; Result.Extend replays it in
// reverse to reconstruct a total model of the original formula from a
// model of the simplified one — the SatELite model-extension rule — for
// callers that need full witnesses rather than projections.
package simplify

import (
	"sort"

	"allsatpre/internal/cnf"
	"allsatpre/internal/lit"
)

// Mode is a tri-state switch for threading the simplifier through option
// structs whose zero value must mean "use the context's default".
type Mode int

// Modes. Auto resolves per call site: on for one-shot enumeration, off
// where the clause database must stay stable (incremental sessions,
// proof-logging solvers).
const (
	Auto Mode = iota
	On
	Off
)

// Enabled resolves the mode against the call site's default for Auto.
func (m Mode) Enabled(def bool) bool {
	switch m {
	case On:
		return true
	case Off:
		return false
	default:
		return def
	}
}

func (m Mode) String() string {
	switch m {
	case On:
		return "on"
	case Off:
		return "off"
	default:
		return "auto"
	}
}

// Options tunes the simplifier. The zero value is replaced by
// DefaultOptions.
type Options struct {
	// MaxGrowth is the clause-count growth allowed when eliminating one
	// variable: v is eliminated only when the number of non-tautological
	// resolvents is at most (occurrences of v) + MaxGrowth. 0 (the
	// NiVER/SatELite default) never grows the clause count.
	MaxGrowth int
	// MaxOccur skips elimination for variables occurring more often than
	// this (the resolvent check is quadratic in the occurrence counts).
	MaxOccur int
	// Probing enables top-level failed-literal probing: assume each
	// candidate literal, propagate, and add the negation as a unit when
	// propagation hits a conflict.
	Probing bool
	// MaxProbes caps the number of probed literals per run.
	MaxProbes int
	// MaxRounds bounds the simplify–eliminate fixpoint iteration.
	MaxRounds int
}

// DefaultOptions returns the standard tuning.
func DefaultOptions() Options {
	return Options{
		MaxGrowth: 0,
		MaxOccur:  80,
		Probing:   true,
		MaxProbes: 4096,
		MaxRounds: 8,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o == (Options{}) {
		return d
	}
	if o.MaxOccur == 0 {
		o.MaxOccur = d.MaxOccur
	}
	if o.MaxProbes == 0 {
		o.MaxProbes = d.MaxProbes
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = d.MaxRounds
	}
	return o
}

// Stats counts the work one Run performed.
type Stats struct {
	// Applied is true when the simplifier ran (distinguishes a zero-work
	// run from "simplification disabled").
	Applied bool
	// Rounds is the number of simplify–eliminate rounds executed.
	Rounds int
	// VarsEliminated counts variables removed by resolution (including
	// pure literals, whose resolvent set is empty).
	VarsEliminated int
	// UnitsFixed counts variables assigned at top level (input units,
	// strengthened-to-unit clauses, failed-literal negations).
	UnitsFixed int
	// ClausesSubsumed counts clauses deleted because a subset clause
	// exists (forward and backward subsumption, and resolvents dropped
	// on arrival because an existing clause subsumes them).
	ClausesSubsumed int
	// LitsStrengthened counts literals removed by self-subsuming
	// resolution and by unit propagation into clauses.
	LitsStrengthened int
	// ResolventsAdded counts clauses added by variable elimination.
	ResolventsAdded int
	// Probes / ProbeFailures count failed-literal probing activity.
	Probes, ProbeFailures int
	// ClausesBefore/After and LitsBefore/After measure the net effect.
	ClausesBefore, ClausesAfter int
	LitsBefore, LitsAfter       int
}

// record is one entry of the elimination stack, in chronological order.
// A unit record (clauses == nil) fixes a non-frozen variable; a variable-
// elimination record saves the clauses resolved away with v so Extend can
// choose a satisfying value.
type record struct {
	v       lit.Var
	unit    lit.Lit
	clauses []cnf.Clause
}

// Result reports one Run and carries the elimination stack for witness
// reconstruction.
type Result struct {
	// Unsat is true when simplification proved the formula unsatisfiable
	// (the formula was rewritten to a single empty clause).
	Unsat bool
	// Stats counts the transformation.
	Stats Stats

	numVars int
	stack   []record
}

// Run simplifies f in place. frozen(v) must report true for every
// variable whose solution projection matters to the caller; those are
// never eliminated, and top-level units fixing them are re-emitted so
// enumeration engines still see the constraint. f.NumVars is never
// changed, so variable ids, projection spaces, and solver sizing stay
// valid. When the formula is proved unsatisfiable, f is rewritten to a
// single empty clause and Result.Unsat is set.
func Run(f *cnf.Formula, frozen func(lit.Var) bool, opts Options) *Result {
	sp := newSimplifier(f, frozen, opts.withDefaults())
	sp.stats.ClausesBefore = len(f.Clauses)
	sp.stats.LitsBefore = f.NumLits()
	sp.load()
	sp.propagate()
	for round := 0; round < sp.opts.MaxRounds && !sp.unsat; round++ {
		changed := sp.subsumePass()
		if round == 0 && sp.opts.Probing && !sp.unsat {
			changed = sp.probePass() || changed
		}
		if !sp.unsat {
			changed = sp.bvePass() || changed
		}
		sp.stats.Rounds++
		if !changed {
			break
		}
	}
	sp.rebuild(f)
	sp.stats.Applied = true
	sp.stats.ClausesAfter = len(f.Clauses)
	sp.stats.LitsAfter = f.NumLits()
	return &Result{
		Unsat:   sp.unsat,
		Stats:   sp.stats,
		numVars: f.NumVars,
		stack:   sp.stack,
	}
}

// Extend reconstructs a total model of the original formula from a model
// of the simplified one (indexed by variable; missing positions default
// to false and are overwritten as needed). The elimination stack is
// replayed in reverse: a later-eliminated variable never appears in an
// earlier record's saved clauses, so each step sees the final values of
// every other variable it mentions. For an elimination record the
// SatELite rule applies — set v false unless some saved clause is then
// unsatisfied, in which case v must be true (the resolvents, satisfied by
// the model, guarantee the opposite phase's clauses are covered).
func (r *Result) Extend(model []bool) []bool {
	for len(model) < r.numVars {
		model = append(model, false)
	}
	for i := len(r.stack) - 1; i >= 0; i-- {
		rec := r.stack[i]
		if rec.clauses == nil {
			model[rec.v] = !rec.unit.Sign()
			continue
		}
		val := false
		for _, c := range rec.clauses {
			if !clauseSatisfied(c, model, rec.v, false) {
				val = true
				break
			}
		}
		model[rec.v] = val
	}
	return model
}

// NumVars is the variable count of the (original and simplified) formula.
func (r *Result) NumVars() int { return r.numVars }

// Eliminated reports whether v was removed (eliminated or fixed) by the
// run; such variables carry stack records and are reconstructed by
// Extend.
func (r *Result) Eliminated(v lit.Var) bool {
	for _, rec := range r.stack {
		if rec.v == v {
			return true
		}
	}
	return false
}

// clauseSatisfied evaluates c under the total model, with variable v
// forced to vVal.
func clauseSatisfied(c cnf.Clause, model []bool, v lit.Var, vVal bool) bool {
	for _, l := range c {
		val := vVal
		if l.Var() != v {
			val = model[l.Var()]
		}
		if val != l.Sign() {
			return true
		}
	}
	return false
}

// simplifier is the occurrence-indexed clause database the passes share.
type simplifier struct {
	opts   Options
	f      *cnf.Formula
	frozen []bool

	cls  []cnf.Clause // normalized; entries are never mutated after death
	dead []bool
	sig  []uint64

	occ    [][]int // literal -> clause indexes (may contain stale entries)
	occCnt []int   // literal -> live occurrence count

	val  []lit.Tern // top-level assignment, by var
	gone []bool     // eliminated by resolution, by var

	unitQ []lit.Lit

	// probe scratch: trail of temporary assignments, bfs queue.
	probeTrail []lit.Var
	probeQ     []lit.Lit

	stack []record
	stats Stats
	unsat bool
}

func newSimplifier(f *cnf.Formula, frozen func(lit.Var) bool, opts Options) *simplifier {
	n := f.NumVars
	sp := &simplifier{
		opts:   opts,
		f:      f,
		frozen: make([]bool, n),
		occ:    make([][]int, 2*n),
		occCnt: make([]int, 2*n),
		val:    make([]lit.Tern, n),
		gone:   make([]bool, n),
	}
	for v := 0; v < n; v++ {
		sp.frozen[v] = frozen(lit.Var(v))
	}
	return sp
}

// signature hashes a clause into a 64-bit Bloom filter over its literals;
// sub ⊆ super requires sig(sub) &^ sig(super) == 0.
func signature(c cnf.Clause) uint64 {
	var s uint64
	for _, l := range c {
		s |= 1 << (uint(l) % 64)
	}
	return s
}

// subsumes reports c ⊆ d for normalized (sorted, deduplicated) clauses.
func subsumes(c, d cnf.Clause) bool {
	if len(c) > len(d) {
		return false
	}
	i := 0
	for _, l := range d {
		if i == len(c) {
			return true
		}
		if c[i] == l {
			i++
		} else if c[i] < l {
			return false
		}
	}
	return i == len(c)
}

// load normalizes the input clauses into the database, queueing units.
func (sp *simplifier) load() {
	for _, c := range sp.f.Clauses {
		nc, taut := c.Normalize()
		if taut {
			continue
		}
		switch len(nc) {
		case 0:
			sp.unsat = true
			return
		case 1:
			sp.unitQ = append(sp.unitQ, nc[0])
		default:
			sp.addClause(nc)
		}
	}
}

// addClause inserts a normalized clause (length ≥ 2) into the database.
func (sp *simplifier) addClause(c cnf.Clause) int {
	ci := len(sp.cls)
	sp.cls = append(sp.cls, c)
	sp.dead = append(sp.dead, false)
	sp.sig = append(sp.sig, signature(c))
	for _, l := range c {
		sp.occ[l] = append(sp.occ[l], ci)
		sp.occCnt[l]++
	}
	return ci
}

// kill tombstones a clause. Dead clause values are never mutated, so
// elimination records may alias them.
func (sp *simplifier) kill(ci int) {
	if sp.dead[ci] {
		return
	}
	sp.dead[ci] = true
	for _, l := range sp.cls[ci] {
		sp.occCnt[l]--
	}
}

// strengthen removes literal rem from clause ci, replacing the stored
// clause with a fresh slice (the old value may be aliased by an
// elimination record). A clause strengthened to a unit is killed and its
// literal queued.
func (sp *simplifier) strengthen(ci int, rem lit.Lit) {
	old := sp.cls[ci]
	nc := make(cnf.Clause, 0, len(old)-1)
	for _, l := range old {
		if l != rem {
			nc = append(nc, l)
		}
	}
	sp.occCnt[rem]--
	sp.stats.LitsStrengthened++
	if len(nc) == 0 {
		sp.unsat = true
		return
	}
	if len(nc) == 1 {
		// Kill first so the unit's occurrence counts stay consistent.
		sp.cls[ci] = nc
		sp.sig[ci] = signature(nc)
		sp.killStrengthened(ci, nc)
		return
	}
	sp.cls[ci] = nc
	sp.sig[ci] = signature(nc)
}

// killStrengthened retires a clause that strengthened down to one
// literal, queueing the unit.
func (sp *simplifier) killStrengthened(ci int, nc cnf.Clause) {
	sp.dead[ci] = true
	for _, l := range nc {
		sp.occCnt[l]--
	}
	sp.unitQ = append(sp.unitQ, nc[0])
}

// liveWith reports whether ci is live and still contains l (occurrence
// lists keep stale entries after strengthening).
func (sp *simplifier) liveWith(ci int, l lit.Lit) bool {
	return !sp.dead[ci] && sp.cls[ci].Has(l)
}

// occLive returns the live clause indexes containing l, compacting the
// occurrence list in place.
func (sp *simplifier) occLive(l lit.Lit) []int {
	list := sp.occ[l][:0]
	for _, ci := range sp.occ[l] {
		if sp.liveWith(ci, l) {
			list = append(list, ci)
		}
	}
	sp.occ[l] = list
	return list
}

// assign fixes a variable at top level, recording non-frozen assignments
// for witness reconstruction (frozen units are re-emitted by rebuild, so
// the solver model carries them).
func (sp *simplifier) assign(l lit.Lit) bool {
	v := l.Var()
	want := lit.TernOf(!l.Sign())
	if sp.val[v] != lit.Unknown {
		if sp.val[v] != want {
			sp.unsat = true
			return false
		}
		return true
	}
	sp.val[v] = want
	sp.stats.UnitsFixed++
	if !sp.frozen[v] {
		sp.stack = append(sp.stack, record{v: v, unit: l})
	}
	return true
}

// propagate drains the unit queue: satisfied clauses die, falsified
// literals are removed, new units are queued.
func (sp *simplifier) propagate() {
	for len(sp.unitQ) > 0 && !sp.unsat {
		l := sp.unitQ[0]
		sp.unitQ = sp.unitQ[1:]
		v := l.Var()
		if sp.val[v] != lit.Unknown {
			if !sp.assign(l) {
				return
			}
			continue
		}
		if !sp.assign(l) {
			return
		}
		for _, ci := range sp.occLive(l) {
			sp.kill(ci)
		}
		for _, ci := range sp.occLive(l.Not()) {
			sp.strengthen(ci, l.Not())
			if sp.unsat {
				return
			}
		}
	}
}

// subsumePass runs backward subsumption and self-subsuming resolution to
// a local fixpoint, returning whether anything changed.
func (sp *simplifier) subsumePass() bool {
	changedAny := false
	for {
		changed := false
		for ci := 0; ci < len(sp.cls); ci++ {
			if sp.dead[ci] {
				continue
			}
			if sp.subsumeWith(ci) {
				changed = true
			}
			if sp.unsat {
				return true
			}
		}
		sp.propagate()
		if sp.unsat {
			return true
		}
		if !changed {
			break
		}
		changedAny = true
	}
	return changedAny
}

// subsumeWith uses clause ci to delete clauses it subsumes and to
// strengthen clauses via self-subsuming resolution (ci with one literal
// flipped subsumes d ⇒ the flipped literal can be removed from d).
func (sp *simplifier) subsumeWith(ci int) bool {
	c := sp.cls[ci]
	changed := false
	// Scan candidates through c's least-occurring literal.
	min := c[0]
	for _, l := range c[1:] {
		if sp.occCnt[l] < sp.occCnt[min] {
			min = l
		}
	}
	for _, di := range sp.occLive(min) {
		if di == ci || sp.dead[ci] {
			continue
		}
		if len(c) <= len(sp.cls[di]) && sp.sig[ci]&^sp.sig[di] == 0 && subsumes(c, sp.cls[di]) {
			sp.kill(di)
			sp.stats.ClausesSubsumed++
			changed = true
		}
	}
	// Self-subsuming resolution: for each literal l of c, find clauses d
	// containing ¬l with (c \ l) ⊆ (d \ ¬l) and remove ¬l from d.
	for _, l := range c {
		if sp.dead[ci] {
			break
		}
		restSig := signature(c) &^ (1 << (uint(l) % 64))
		for _, di := range sp.occLive(l.Not()) {
			if sp.dead[ci] || sp.dead[di] || len(c) > len(sp.cls[di]) {
				continue
			}
			if restSig&^sp.sig[di] != 0 {
				continue
			}
			if subsumesExcept(c, sp.cls[di], l, l.Not()) {
				sp.strengthen(di, l.Not())
				changed = true
				if sp.unsat {
					return true
				}
			}
		}
	}
	return changed
}

// subsumesExcept reports (c \ {cSkip}) ⊆ (d \ {dSkip}) for normalized
// clauses.
func subsumesExcept(c, d cnf.Clause, cSkip, dSkip lit.Lit) bool {
	i := 0
	for _, l := range d {
		if l == dSkip {
			continue
		}
		for i < len(c) && c[i] == cSkip {
			i++
		}
		if i == len(c) {
			return true
		}
		if c[i] == l {
			i++
		} else if c[i] < l {
			return false
		}
	}
	for i < len(c) && c[i] == cSkip {
		i++
	}
	return i == len(c)
}

// probePass probes both phases of unassigned variables: a literal whose
// propagation yields a conflict is failed, and its negation is added as a
// top-level unit. Probing adds entailed units only, so it is always
// model-preserving (frozen or not).
func (sp *simplifier) probePass() bool {
	changed := false
	for v := 0; v < len(sp.val) && sp.stats.Probes < sp.opts.MaxProbes; v++ {
		vv := lit.Var(v)
		if sp.val[v] != lit.Unknown || sp.gone[v] {
			continue
		}
		if sp.occCnt[lit.Pos(vv)] == 0 && sp.occCnt[lit.Neg(vv)] == 0 {
			continue
		}
		for _, l := range [2]lit.Lit{lit.Pos(vv), lit.Neg(vv)} {
			if sp.val[v] != lit.Unknown {
				break
			}
			if sp.occCnt[l.Not()] == 0 {
				// Assuming l can only satisfy clauses, never propagate —
				// probing it cannot fail. (For a pure variable the
				// opposite probe still matters: frozen pure literals
				// cannot be fixed outright, but a failed probe proves
				// the unit is entailed, which is projection-safe.)
				continue
			}
			sp.stats.Probes++
			if sp.probeLit(l) {
				sp.stats.ProbeFailures++
				sp.unitQ = append(sp.unitQ, l.Not())
				sp.propagate()
				changed = true
				if sp.unsat {
					return true
				}
			}
			if sp.stats.Probes >= sp.opts.MaxProbes {
				break
			}
		}
	}
	return changed
}

// probeLit simulates top-level BCP of l over the live database using the
// shared assignment array plus an undo trail; it reports whether a
// conflict was reached.
func (sp *simplifier) probeLit(l lit.Lit) bool {
	sp.probeTrail = sp.probeTrail[:0]
	sp.probeQ = append(sp.probeQ[:0], l)
	conflict := false
loop:
	for len(sp.probeQ) > 0 {
		p := sp.probeQ[len(sp.probeQ)-1]
		sp.probeQ = sp.probeQ[:len(sp.probeQ)-1]
		v := p.Var()
		want := lit.TernOf(!p.Sign())
		if sp.val[v] != lit.Unknown {
			if sp.val[v] != want {
				conflict = true
				break
			}
			continue
		}
		sp.val[v] = want
		sp.probeTrail = append(sp.probeTrail, v)
		// Clauses containing ¬p lose a literal: find new units/conflicts.
		for _, ci := range sp.occ[p.Not()] {
			if !sp.liveWith(ci, p.Not()) {
				continue
			}
			unknowns := 0
			var last lit.Lit
			for _, q := range sp.cls[ci] {
				switch sp.val[q.Var()].XorSign(q.Sign()) {
				case lit.True:
					unknowns = -1
				case lit.Unknown:
					unknowns++
					last = q
				}
				if unknowns < 0 {
					break
				}
			}
			switch unknowns {
			case -1: // satisfied
			case 0:
				conflict = true
				break loop
			case 1:
				sp.probeQ = append(sp.probeQ, last)
			}
		}
	}
	for _, v := range sp.probeTrail {
		sp.val[v] = lit.Unknown
	}
	return conflict
}

// bvePass attempts bounded variable elimination on every non-frozen
// candidate, cheapest occurrence counts first. Returns whether any
// variable was eliminated.
func (sp *simplifier) bvePass() bool {
	type cand struct {
		v    lit.Var
		cost int
	}
	var cands []cand
	for v := 0; v < len(sp.val); v++ {
		vv := lit.Var(v)
		if sp.frozen[v] || sp.gone[v] || sp.val[v] != lit.Unknown {
			continue
		}
		cost := sp.occCnt[lit.Pos(vv)] + sp.occCnt[lit.Neg(vv)]
		if cost == 0 || cost > sp.opts.MaxOccur {
			continue
		}
		cands = append(cands, cand{v: vv, cost: cost})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].v < cands[j].v
	})
	changed := false
	for _, cd := range cands {
		if sp.unsat {
			return true
		}
		if sp.gone[cd.v] || sp.val[cd.v] != lit.Unknown {
			continue // removed by a unit cascade from an earlier elimination
		}
		if sp.tryEliminate(cd.v) {
			changed = true
		}
	}
	return changed
}

// tryEliminate resolves v away when the resolvent count stays within the
// growth budget. The saved positive/negative occurrence lists go onto the
// elimination stack for witness reconstruction.
func (sp *simplifier) tryEliminate(v lit.Var) bool {
	pos := sp.occLive(lit.Pos(v))
	neg := sp.occLive(lit.Neg(v))
	budget := len(pos) + len(neg) + sp.opts.MaxGrowth
	if len(pos)*len(neg) > 4*budget+16 {
		// Even counting the resolvents would be quadratic blowup; skip.
		return false
	}
	var resolvents []cnf.Clause
	for _, pi := range pos {
		for _, ni := range neg {
			r, taut := resolve(sp.cls[pi], sp.cls[ni], v)
			if taut {
				continue
			}
			resolvents = append(resolvents, r)
			if len(resolvents) > budget {
				return false
			}
		}
	}

	// Commit: save the occurrences, retire them, add the resolvents.
	saved := make([]cnf.Clause, 0, len(pos)+len(neg))
	for _, ci := range pos {
		saved = append(saved, sp.cls[ci])
		sp.kill(ci)
	}
	for _, ci := range neg {
		saved = append(saved, sp.cls[ci])
		sp.kill(ci)
	}
	sp.gone[v] = true
	sp.stack = append(sp.stack, record{v: v, clauses: saved})
	sp.stats.VarsEliminated++

	for _, r := range resolvents {
		sp.addResolvent(r)
		if sp.unsat {
			return true
		}
	}
	sp.propagate()
	return true
}

// resolve computes the resolvent of p (containing v) and n (containing
// ¬v) on v; ok=false marks a tautology. Inputs are normalized, so a
// sorted merge both builds the resolvent and detects clashes.
func resolve(p, n cnf.Clause, v lit.Var) (cnf.Clause, bool) {
	out := make(cnf.Clause, 0, len(p)+len(n)-2)
	i, j := 0, 0
	for i < len(p) || j < len(n) {
		var l lit.Lit
		switch {
		case i == len(p):
			l = n[j]
			j++
		case j == len(n):
			l = p[i]
			i++
		case p[i] <= n[j]:
			l = p[i]
			i++
		default:
			l = n[j]
			j++
		}
		if l.Var() == v {
			continue
		}
		if k := len(out); k > 0 {
			if out[k-1] == l {
				continue
			}
			if out[k-1] == l.Not() {
				return nil, true
			}
		}
		out = append(out, l)
	}
	return out, false
}

// addResolvent inserts a resolvent, dropping it when an existing clause
// subsumes it.
func (sp *simplifier) addResolvent(r cnf.Clause) {
	switch len(r) {
	case 0:
		sp.unsat = true
		return
	case 1:
		sp.unitQ = append(sp.unitQ, r[0])
		return
	}
	rs := signature(r)
	min := r[0]
	for _, l := range r[1:] {
		if sp.occCnt[l] < sp.occCnt[min] {
			min = l
		}
	}
	for _, ci := range sp.occLive(min) {
		c := sp.cls[ci]
		if len(c) <= len(r) && sp.sig[ci]&^rs == 0 && subsumes(c, r) {
			sp.stats.ClausesSubsumed++
			return
		}
	}
	sp.addClause(r)
	sp.stats.ResolventsAdded++
}

// rebuild writes the simplified database back into f: live clauses plus
// one unit per fixed frozen variable. NumVars is preserved. On Unsat the
// formula becomes a single empty clause.
func (sp *simplifier) rebuild(f *cnf.Formula) {
	if sp.unsat {
		f.Clauses = []cnf.Clause{{}}
		return
	}
	out := make([]cnf.Clause, 0, len(sp.cls))
	for v, t := range sp.val {
		if t != lit.Unknown && sp.frozen[v] {
			out = append(out, cnf.Clause{lit.New(lit.Var(v), t == lit.False)})
		}
	}
	for ci, c := range sp.cls {
		if !sp.dead[ci] {
			out = append(out, c)
		}
	}
	f.Clauses = out
}
