// Package aig implements And-Inverter Graphs: the normalized two-input
// AND / inverter netlist representation used by modern model checkers,
// with structural hashing, constant propagation, conversion to and from
// the gate-level circuit model, and AIGER ASCII (.aag) I/O. AIGER is the
// interchange format of the hardware model checking competition, so this
// package gives every CLI a second benchmark input path besides BENCH.
package aig

import (
	"fmt"

	"allsatpre/internal/circuit"
)

// Lit is an AIG literal: 2*node for the positive phase, 2*node+1 for the
// negated phase. Node 0 is the constant false, so Lit 0 = false and
// Lit 1 = true — exactly the AIGER convention.
type Lit uint32

// Constant literals.
const (
	False Lit = 0
	True  Lit = 1
)

// Node returns the node index underlying the literal.
func (l Lit) Node() uint32 { return uint32(l) >> 1 }

// Neg reports whether the literal is inverted.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

// XorNeg conditionally complements the literal.
func (l Lit) XorNeg(neg bool) Lit {
	if neg {
		return l ^ 1
	}
	return l
}

type nodeKind uint8

const (
	kindConst nodeKind = iota
	kindInput
	kindLatch
	kindAnd
)

type node struct {
	kind nodeKind
	// and gate fanins (kind == kindAnd)
	f0, f1 Lit
	// io index for inputs/latches
	ioIdx int
}

// Graph is an And-Inverter Graph with latches.
type Graph struct {
	Name  string
	nodes []node
	// strash maps (f0, f1) to the AND node producing it.
	strash map[[2]Lit]Lit

	inputs  []Lit // input node literals, in declaration order
	latches []Lit // latch node literals
	nextFn  []Lit // latch next-state literals, parallel to latches
	outputs []Lit

	inputNames, latchNames, outputNames []string
}

// New creates an empty graph (with the constant node).
func New(name string) *Graph {
	return &Graph{
		Name:   name,
		nodes:  []node{{kind: kindConst}},
		strash: make(map[[2]Lit]Lit),
	}
}

// NumNodes returns the node count including the constant.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumAnds returns the number of AND nodes.
func (g *Graph) NumAnds() int {
	n := 0
	for _, nd := range g.nodes {
		if nd.kind == kindAnd {
			n++
		}
	}
	return n
}

// NumInputs / NumLatches / NumOutputs report interface sizes.
func (g *Graph) NumInputs() int  { return len(g.inputs) }
func (g *Graph) NumLatches() int { return len(g.latches) }
func (g *Graph) NumOutputs() int { return len(g.outputs) }

// Inputs returns the input literals (shared slice).
func (g *Graph) Inputs() []Lit { return g.inputs }

// Latches returns the latch output literals (shared slice).
func (g *Graph) Latches() []Lit { return g.latches }

// NextFns returns the latch next-state literals (shared slice).
func (g *Graph) NextFns() []Lit { return g.nextFn }

// Outputs returns the output literals (shared slice).
func (g *Graph) Outputs() []Lit { return g.outputs }

// AddInput appends a primary input and returns its literal.
func (g *Graph) AddInput(name string) Lit {
	l := Lit(len(g.nodes) << 1)
	g.nodes = append(g.nodes, node{kind: kindInput, ioIdx: len(g.inputs)})
	g.inputs = append(g.inputs, l)
	g.inputNames = append(g.inputNames, name)
	return l
}

// AddLatch appends a latch with a placeholder next function (set later
// via SetNext) and returns its output literal.
func (g *Graph) AddLatch(name string) Lit {
	l := Lit(len(g.nodes) << 1)
	g.nodes = append(g.nodes, node{kind: kindLatch, ioIdx: len(g.latches)})
	g.latches = append(g.latches, l)
	g.nextFn = append(g.nextFn, False)
	g.latchNames = append(g.latchNames, name)
	return l
}

// SetNext sets latch k's next-state literal.
func (g *Graph) SetNext(k int, next Lit) { g.nextFn[k] = next }

// AddOutput marks a literal as a primary output.
func (g *Graph) AddOutput(name string, l Lit) {
	g.outputs = append(g.outputs, l)
	g.outputNames = append(g.outputNames, name)
}

// And returns the literal of a ∧ b, applying constant folding, idempotence
// and complement rules, and structural hashing.
func (g *Graph) And(a, b Lit) Lit {
	// Normalization and trivial cases.
	if a == False || b == False || a == b.Not() {
		return False
	}
	if a == True {
		return b
	}
	if b == True || a == b {
		return a
	}
	if a > b {
		a, b = b, a
	}
	key := [2]Lit{a, b}
	if l, ok := g.strash[key]; ok {
		return l
	}
	l := Lit(len(g.nodes) << 1)
	g.nodes = append(g.nodes, node{kind: kindAnd, f0: a, f1: b})
	g.strash[key] = l
	return l
}

// Or, Xor, Mux and Not are derived connectives.
func (g *Graph) Or(a, b Lit) Lit  { return g.And(a.Not(), b.Not()).Not() }
func (g *Graph) Xor(a, b Lit) Lit { return g.Or(g.And(a, b.Not()), g.And(a.Not(), b)) }

// Mux returns s ? t : e.
func (g *Graph) Mux(s, t, e Lit) Lit {
	return g.Or(g.And(s, t), g.And(s.Not(), e))
}

// AndN folds And over a list (True for empty).
func (g *Graph) AndN(ls ...Lit) Lit {
	r := True
	for _, l := range ls {
		r = g.And(r, l)
	}
	return r
}

// Eval evaluates the graph: given input and latch-state values, it
// returns output values and the next latch state.
func (g *Graph) Eval(state, inputs []bool) (outputs, nextState []bool) {
	if len(state) != len(g.latches) || len(inputs) != len(g.inputs) {
		panic("aig: Eval dimension mismatch")
	}
	val := make([]bool, len(g.nodes))
	for i, nd := range g.nodes {
		switch nd.kind {
		case kindConst:
			val[i] = false
		case kindInput:
			val[i] = inputs[nd.ioIdx]
		case kindLatch:
			val[i] = state[nd.ioIdx]
		case kindAnd:
			val[i] = g.evalLit(val, nd.f0) && g.evalLit(val, nd.f1)
		}
	}
	outputs = make([]bool, len(g.outputs))
	for k, l := range g.outputs {
		outputs[k] = g.evalLit(val, l)
	}
	nextState = make([]bool, len(g.latches))
	for k, l := range g.nextFn {
		nextState[k] = g.evalLit(val, l)
	}
	return outputs, nextState
}

func (g *Graph) evalLit(val []bool, l Lit) bool {
	return val[l.Node()] != l.Neg()
}

func (g *Graph) String() string {
	return fmt.Sprintf("aig %s: I=%d L=%d O=%d A=%d",
		g.Name, len(g.inputs), len(g.latches), len(g.outputs), g.NumAnds())
}

// FromCircuit converts a gate-level netlist into an AIG with structural
// hashing. Gate fanouts sharing logic collapse automatically.
func FromCircuit(c *circuit.Circuit) (*Graph, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	g := New(c.Name)
	lits := make([]Lit, len(c.Gates))
	// Inputs and latches first, in declaration order.
	for _, gi := range c.Inputs {
		lits[gi] = g.AddInput(c.Gates[gi].Name)
	}
	for _, gi := range c.Latches {
		lits[gi] = g.AddLatch(c.Gates[gi].Name)
	}
	for _, i := range order {
		gt := &c.Gates[i]
		switch gt.Type {
		case circuit.Input, circuit.DFF:
			continue
		case circuit.Const0:
			lits[i] = False
		case circuit.Const1:
			lits[i] = True
		case circuit.Buf:
			lits[i] = lits[gt.Fanins[0]]
		case circuit.Not:
			lits[i] = lits[gt.Fanins[0]].Not()
		case circuit.And, circuit.Nand:
			r := True
			for _, f := range gt.Fanins {
				r = g.And(r, lits[f])
			}
			if gt.Type == circuit.Nand {
				r = r.Not()
			}
			lits[i] = r
		case circuit.Or, circuit.Nor:
			r := False
			for _, f := range gt.Fanins {
				r = g.Or(r, lits[f])
			}
			if gt.Type == circuit.Nor {
				r = r.Not()
			}
			lits[i] = r
		case circuit.Xor:
			lits[i] = g.Xor(lits[gt.Fanins[0]], lits[gt.Fanins[1]])
		case circuit.Xnor:
			lits[i] = g.Xor(lits[gt.Fanins[0]], lits[gt.Fanins[1]]).Not()
		default:
			return nil, fmt.Errorf("aig: unsupported gate %v", gt.Type)
		}
	}
	for k, gi := range c.Latches {
		g.SetNext(k, lits[c.Gates[gi].Fanins[0]])
	}
	for _, gi := range c.Outputs {
		g.AddOutput(c.Gates[gi].Name, lits[gi])
	}
	return g, nil
}

// ToCircuit converts the AIG back to the gate-level model (AND/NOT gates
// only, plus DFFs). Inverted literals become NOT gates, shared per node.
func (g *Graph) ToCircuit() *Circuitized {
	c := circuit.New(g.Name)
	pos := make([]int, len(g.nodes)) // circuit gate for positive literal
	neg := make([]int, len(g.nodes)) // circuit gate for negated literal
	for i := range neg {
		pos[i], neg[i] = -1, -1
	}
	// Constant node.
	pos[0] = c.AddGate("aig_const0", circuit.Const0)
	var latchIdx []int
	for i, nd := range g.nodes {
		switch nd.kind {
		case kindInput:
			pos[i] = c.AddInput(g.inputNames[nd.ioIdx])
		case kindLatch:
			// Placeholder fanin (the constant gate), fixed below once the
			// AND nodes exist.
			pos[i] = c.AddGate(g.latchNames[nd.ioIdx], circuit.DFF, pos[0])
			latchIdx = append(latchIdx, pos[i])
		}
	}
	var litGate func(l Lit) int
	var nodeGate func(n uint32) int
	nodeGate = func(n uint32) int {
		if pos[n] >= 0 {
			return pos[n]
		}
		nd := g.nodes[n]
		a := litGate(nd.f0)
		b := litGate(nd.f1)
		pos[n] = c.AddGate(fmt.Sprintf("aig_n%d", n), circuit.And, a, b)
		return pos[n]
	}
	litGate = func(l Lit) int {
		n := l.Node()
		gp := nodeGate(n)
		if !l.Neg() {
			return gp
		}
		if neg[n] < 0 {
			neg[n] = c.AddGate(fmt.Sprintf("aig_n%d_inv", n), circuit.Not, gp)
		}
		return neg[n]
	}
	for k, l := range g.nextFn {
		c.Gates[latchIdx[k]].Fanins[0] = litGate(l)
	}
	for k, l := range g.outputs {
		og := litGate(l)
		name := g.outputNames[k]
		buf := c.AddGate("out_"+name, circuit.Buf, og)
		c.MarkOutput(buf)
	}
	return &Circuitized{Circuit: c}
}

// Circuitized wraps the converted circuit (the wrapper exists so callers
// can later carry conversion metadata without an API break).
type Circuitized struct {
	*circuit.Circuit
}
