package aig

import (
	"testing"
)

// FuzzParseAiger checks the AIGER parser never panics and accepted graphs
// survive a write/re-parse round trip with the same interface.
func FuzzParseAiger(f *testing.F) {
	seeds := []string{
		"aag 0 0 0 0 0\n",
		"aag 1 1 0 1 0\n2\n2\n",
		"aag 3 1 1 1 1\n2\n4 6\n6\n6 2 4\n",
		"aag 4 1 1 1 2\n2\n4 9\n4\n6 3 5\n8 2 4\ni0 en\nl0 q\no0 q\nc\nnote\n",
		"aag 2 1 0 0 1\n2\n4 6 2\n", // ordering violation
		"aig 1 0 0 0 0\n",           // binary header
		"aag x\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseAigerString("fuzz", src)
		if err != nil {
			return
		}
		text := AigerString(g)
		g2, err := ParseAigerString("fuzz2", text)
		if err != nil {
			t.Fatalf("round trip rejected: %v\noriginal:\n%s\nwritten:\n%s", err, src, text)
		}
		if g2.NumInputs() != g.NumInputs() || g2.NumLatches() != g.NumLatches() ||
			g2.NumOutputs() != g.NumOutputs() {
			t.Fatalf("interface changed in round trip")
		}
		// Behaviour preserved on the all-false vector.
		st := make([]bool, g.NumLatches())
		in := make([]bool, g.NumInputs())
		o1, n1 := g.Eval(st, in)
		o2, n2 := g2.Eval(st, in)
		for k := range o1 {
			if o1[k] != o2[k] {
				t.Fatalf("output %d changed in round trip", k)
			}
		}
		for k := range n1 {
			if n1[k] != n2[k] {
				t.Fatalf("next state %d changed in round trip", k)
			}
		}
	})
}
