package aig

import (
	"math/rand"
	"strings"
	"testing"

	"allsatpre/internal/circuit"
	"allsatpre/internal/gen"
)

func TestLitBasics(t *testing.T) {
	if True != False.Not() || False != True.Not() {
		t.Fatal("constant literals")
	}
	l := Lit(6)
	if l.Node() != 3 || l.Neg() {
		t.Fatal("Lit decoding")
	}
	if l.Not() != 7 || !l.Not().Neg() {
		t.Fatal("Not")
	}
	if l.XorNeg(true) != 7 || l.XorNeg(false) != 6 {
		t.Fatal("XorNeg")
	}
}

func TestAndSimplifications(t *testing.T) {
	g := New("t")
	a := g.AddInput("a")
	b := g.AddInput("b")
	if g.And(a, False) != False || g.And(False, b) != False {
		t.Fatal("x ∧ 0 = 0")
	}
	if g.And(a, True) != a || g.And(True, b) != b {
		t.Fatal("x ∧ 1 = x")
	}
	if g.And(a, a) != a {
		t.Fatal("idempotence")
	}
	if g.And(a, a.Not()) != False {
		t.Fatal("x ∧ ¬x = 0")
	}
	// Structural hashing: same AND twice, argument order irrelevant.
	x := g.And(a, b)
	y := g.And(b, a)
	if x != y {
		t.Fatal("strashing failed")
	}
	if g.NumAnds() != 1 {
		t.Fatalf("NumAnds = %d, want 1", g.NumAnds())
	}
}

func TestDerivedConnectives(t *testing.T) {
	g := New("t")
	a := g.AddInput("a")
	b := g.AddInput("b")
	s := g.AddInput("s")
	or := g.Or(a, b)
	xor := g.Xor(a, b)
	mux := g.Mux(s, a, b)
	andN := g.AndN(a, b, s)
	g.AddOutput("or", or)
	g.AddOutput("xor", xor)
	g.AddOutput("mux", mux)
	g.AddOutput("andN", andN)
	for v := 0; v < 8; v++ {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0}
		out, _ := g.Eval(nil, in)
		if out[0] != (in[0] || in[1]) {
			t.Fatalf("or wrong at %v", in)
		}
		if out[1] != (in[0] != in[1]) {
			t.Fatalf("xor wrong at %v", in)
		}
		want := in[1]
		if in[2] {
			want = in[0]
		}
		if out[2] != want {
			t.Fatalf("mux wrong at %v", in)
		}
		if out[3] != (in[0] && in[1] && in[2]) {
			t.Fatalf("andN wrong at %v", in)
		}
	}
	if g.AndN() != True {
		t.Fatal("empty AndN")
	}
}

func TestEvalPanics(t *testing.T) {
	g := New("t")
	g.AddInput("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Eval(nil, nil)
}

// equivalentSim checks the AIG and the circuit agree on random vectors.
func equivalentSim(t *testing.T, c *circuit.Circuit, g *Graph, vectors int) {
	t.Helper()
	sim, err := circuit.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(404))
	nL, nI := len(c.Latches), len(c.Inputs)
	if g.NumLatches() != nL || g.NumInputs() != nI {
		t.Fatalf("interface mismatch: %s vs %s", g, c.Stats())
	}
	for v := 0; v < vectors; v++ {
		st := make([]bool, nL)
		in := make([]bool, nI)
		for i := range st {
			st[i] = rng.Intn(2) == 0
		}
		for i := range in {
			in[i] = rng.Intn(2) == 0
		}
		co, cn := sim.Step(st, in)
		ao, an := g.Eval(st, in)
		for k := range co {
			if co[k] != ao[k] {
				t.Fatalf("output %d mismatch at vector %d", k, v)
			}
		}
		for k := range cn {
			if cn[k] != an[k] {
				t.Fatalf("next-state %d mismatch at vector %d", k, v)
			}
		}
	}
}

func TestFromCircuitEquivalence(t *testing.T) {
	suite := gen.Suite()
	suite = append(suite,
		gen.NamedCircuit{Name: "mult5", Circuit: gen.MultCore(5)},
		gen.NamedCircuit{Name: "counter-rst", Circuit: gen.Counter(5, true, true)},
	)
	for _, nc := range suite {
		g, err := FromCircuit(nc.Circuit)
		if err != nil {
			t.Fatalf("%s: %v", nc.Name, err)
		}
		equivalentSim(t, nc.Circuit, g, 64)
	}
}

func TestFromCircuitStrashing(t *testing.T) {
	// Duplicate logic must collapse: two identical AND cones.
	c := circuit.New("dup")
	a := c.AddInput("a")
	b := c.AddInput("b")
	x := c.AddGate("x", circuit.And, a, b)
	y := c.AddGate("y", circuit.And, a, b)
	z := c.AddGate("z", circuit.Or, x, y)
	c.MarkOutput(z)
	g, err := FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	// OR(x,x) = x, so the AIG needs exactly one AND node.
	if g.NumAnds() != 1 {
		t.Fatalf("NumAnds = %d, want 1 (strash + idempotence)", g.NumAnds())
	}
}

func TestToCircuitRoundTrip(t *testing.T) {
	for _, nc := range gen.Suite() {
		g, err := FromCircuit(nc.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		back := g.ToCircuit()
		if _, err := back.TopoOrder(); err != nil {
			t.Fatalf("%s: round-tripped circuit is cyclic: %v", nc.Name, err)
		}
		g2, err := FromCircuit(back.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		equivalentSim(t, back.Circuit, g, 64)
		_ = g2
	}
}

func TestAigerRoundTrip(t *testing.T) {
	for _, nc := range gen.Suite() {
		g, err := FromCircuit(nc.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		text := AigerString(g)
		g2, err := ParseAigerString(nc.Name+"-rt", text)
		if err != nil {
			t.Fatalf("%s: %v\n%s", nc.Name, err, text)
		}
		if g2.NumInputs() != g.NumInputs() || g2.NumLatches() != g.NumLatches() ||
			g2.NumOutputs() != g.NumOutputs() {
			t.Fatalf("%s: interface changed", nc.Name)
		}
		// Same behaviour as the original circuit.
		equivalentSim(t, nc.Circuit, g2, 64)
		// Names survive the symbol table.
		if g.NumInputs() > 0 && g2.inputNames[0] != g.inputNames[0] {
			t.Fatalf("%s: input name lost: %q vs %q", nc.Name, g2.inputNames[0], g.inputNames[0])
		}
		if g.NumLatches() > 0 && g2.latchNames[0] != g.latchNames[0] {
			t.Fatalf("%s: latch name lost", nc.Name)
		}
	}
}

func TestAigerKnownFile(t *testing.T) {
	// A hand-written toggle flip-flop with enable:
	//   next = latch XOR en  encoded as AIG:
	//   and2 = ¬(¬en ∧ ¬l) ... XOR needs two ANDs.
	src := `aag 4 1 1 1 2
2
4 9
4
6 3 5
8 2 4
i0 en
l0 q
o0 q
c
toggle
`
	g, err := ParseAigerString("toggle", src)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumInputs() != 1 || g.NumLatches() != 1 || g.NumAnds() != 2 {
		t.Fatalf("shape: %s", g)
	}
	// next = ¬( (¬en∧¬q) ∨ (en∧q) )? Evaluate: literal 9 = ¬var4.
	// var3=and(¬en,¬q)... just check the truth table of the next state:
	// 6 = and(3,5) = ¬en ∧ ¬q ; 8 = and(2,4) = en ∧ q ; hmm next = ¬8?
	// next literal is 9 = ¬(var 4) = ¬(en∧q)... evaluate all four cases
	// against direct computation.
	for v := 0; v < 4; v++ {
		st := []bool{v&1 != 0}
		in := []bool{v&2 != 0}
		_, next := g.Eval(st, in)
		want := !(in[0] && st[0])
		if next[0] != want {
			t.Fatalf("case %d: next=%v want %v", v, next[0], want)
		}
	}
}

func TestAigerLatchResetField(t *testing.T) {
	// AIGER 1.9 optional reset value: 0 is tolerated, 1 rejected.
	ok := "aag 2 1 1 0 0\n2\n4 2 0\n"
	if _, err := ParseAigerString("r0", ok); err != nil {
		t.Fatalf("zero reset rejected: %v", err)
	}
	bad := "aag 2 1 1 0 0\n2\n4 2 1\n"
	if _, err := ParseAigerString("r1", bad); err == nil {
		t.Fatal("non-zero reset accepted")
	}
}

func TestAigerParseErrors(t *testing.T) {
	bad := []string{
		"",
		"aig 1 0 0 0 0\n",                // binary format
		"aag x 0 0 0 0\n",                // bad number
		"aag 0 1 0 0 0\n2\n",             // M too small
		"aag 1 1 0 0 0\n3\n",             // odd input literal
		"aag 1 1 0 0 0\n0\n",             // constant input
		"aag 2 2 0 0 0\n2\n2\n",          // duplicate definition
		"aag 1 1 0 0 0\n",                // missing input line
		"aag 2 1 0 1 1\n2\n4\n4 2 2\nxx", // ok until garbage; actually and row[1]=2<4 fine... output 4 defined ✓
		"aag 2 1 0 0 1\n2\n4 6 2\n",      // and fanin ≥ lhs
		"aag 2 1 0 1 0\n2\n5\n",          // output var 2 undefined... wait 5>>1=2 undefined ✓ error
	}
	for _, s := range bad[:8] {
		if _, err := ParseAigerString("bad", s); err == nil {
			t.Errorf("expected error for %q", s)
		}
	}
	if _, err := ParseAigerString("bad", bad[9]); err == nil {
		t.Errorf("expected ordering error")
	}
	if _, err := ParseAigerString("bad", bad[10]); err == nil {
		t.Errorf("expected undefined-output error")
	}
}

func TestGraphString(t *testing.T) {
	g := New("demo")
	if !strings.Contains(g.String(), "demo") {
		t.Fatal("String")
	}
}
