package aig

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteAiger emits the graph in AIGER ASCII format ("aag"). Node indices
// are compacted so inputs come first, then latches, then ANDs, per the
// AIGER specification. Symbol-table entries carry the original names.
func WriteAiger(w io.Writer, g *Graph) error {
	// Compact index map: AIGER variable index per node.
	varOf := make([]uint32, len(g.nodes))
	next := uint32(1)
	for _, l := range g.inputs {
		varOf[l.Node()] = next
		next++
	}
	for _, l := range g.latches {
		varOf[l.Node()] = next
		next++
	}
	var ands []uint32
	for i, nd := range g.nodes {
		if nd.kind == kindAnd {
			varOf[i] = next
			next++
			ands = append(ands, uint32(i))
		}
	}
	relit := func(l Lit) uint32 {
		return varOf[l.Node()]<<1 | uint32(l&1)
	}

	bw := bufio.NewWriter(w)
	maxVar := next - 1
	fmt.Fprintf(bw, "aag %d %d %d %d %d\n",
		maxVar, len(g.inputs), len(g.latches), len(g.outputs), len(ands))
	for _, l := range g.inputs {
		fmt.Fprintf(bw, "%d\n", relit(l))
	}
	for k, l := range g.latches {
		fmt.Fprintf(bw, "%d %d\n", relit(l), relit(g.nextFn[k]))
	}
	for _, l := range g.outputs {
		fmt.Fprintf(bw, "%d\n", relit(l))
	}
	for _, n := range ands {
		nd := g.nodes[n]
		fmt.Fprintf(bw, "%d %d %d\n", varOf[n]<<1, relit(nd.f0), relit(nd.f1))
	}
	for k, name := range g.inputNames {
		fmt.Fprintf(bw, "i%d %s\n", k, name)
	}
	for k, name := range g.latchNames {
		fmt.Fprintf(bw, "l%d %s\n", k, name)
	}
	for k, name := range g.outputNames {
		fmt.Fprintf(bw, "o%d %s\n", k, name)
	}
	fmt.Fprintf(bw, "c\n%s\n", g.Name)
	return bw.Flush()
}

// AigerString renders the graph as AIGER ASCII text.
func AigerString(g *Graph) string {
	var sb strings.Builder
	_ = WriteAiger(&sb, g)
	return sb.String()
}

// ParseAiger reads an AIGER ASCII ("aag") file. Latch reset values and
// the binary "aig" format are not supported; the MILOA header must be
// consistent. Symbol-table names are honoured when present.
func ParseAiger(name string, r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("aiger: empty input")
	}
	header := strings.Fields(strings.TrimSpace(sc.Text()))
	if len(header) != 6 || header[0] != "aag" {
		return nil, fmt.Errorf("aiger: bad header %q (only ASCII aag supported)", sc.Text())
	}
	nums := make([]int, 5)
	for i := 0; i < 5; i++ {
		v, err := strconv.Atoi(header[i+1])
		if err != nil || v < 0 {
			return nil, fmt.Errorf("aiger: bad header field %q", header[i+1])
		}
		nums[i] = v
	}
	maxVar, nI, nL, nO, nA := nums[0], nums[1], nums[2], nums[3], nums[4]
	if nI+nL+nA > maxVar {
		return nil, fmt.Errorf("aiger: header M=%d too small for I+L+A=%d", maxVar, nI+nL+nA)
	}

	readLits := func(n int, what string) ([][]int, error) {
		out := make([][]int, 0, n)
		for i := 0; i < n; i++ {
			if !sc.Scan() {
				return nil, fmt.Errorf("aiger: unexpected EOF in %s section", what)
			}
			fields := strings.Fields(strings.TrimSpace(sc.Text()))
			row := make([]int, len(fields))
			for j, f := range fields {
				v, err := strconv.Atoi(f)
				if err != nil || v < 0 || v > 2*maxVar+1 {
					return nil, fmt.Errorf("aiger: bad literal %q in %s section", f, what)
				}
				row[j] = v
			}
			out = append(out, row)
		}
		return out, nil
	}

	inputRows, err := readLits(nI, "input")
	if err != nil {
		return nil, err
	}
	latchRows, err := readLits(nL, "latch")
	if err != nil {
		return nil, err
	}
	outputRows, err := readLits(nO, "output")
	if err != nil {
		return nil, err
	}
	andRows, err := readLits(nA, "and")
	if err != nil {
		return nil, err
	}

	g := New(name)
	// Map AIGER variable -> graph literal of its positive phase.
	lits := make([]Lit, maxVar+1)
	for i := range lits {
		lits[i] = False // unreferenced variables default to constant
	}
	defined := make([]bool, maxVar+1)
	defined[0] = true

	for k, row := range inputRows {
		if len(row) != 1 || row[0]&1 != 0 || row[0] == 0 {
			return nil, fmt.Errorf("aiger: input %d must be a positive non-constant literal", k)
		}
		v := row[0] >> 1
		if defined[v] {
			return nil, fmt.Errorf("aiger: variable %d defined twice", v)
		}
		defined[v] = true
		lits[v] = g.AddInput(fmt.Sprintf("i%d", k))
	}
	for k, row := range latchRows {
		// AIGER 1.9 allows an optional third field with the reset value;
		// only the default (0) is representable in the circuit model.
		if len(row) == 3 && row[2] == 0 {
			row = row[:2]
			latchRows[k] = row
		}
		if len(row) != 2 || row[0]&1 != 0 || row[0] == 0 {
			return nil, fmt.Errorf("aiger: latch %d malformed (non-zero reset values are unsupported)", k)
		}
		v := row[0] >> 1
		if defined[v] {
			return nil, fmt.Errorf("aiger: variable %d defined twice", v)
		}
		defined[v] = true
		lits[v] = g.AddLatch(fmt.Sprintf("l%d", k))
	}
	// AND definitions may reference later ANDs in legal AIGER only in
	// topological order (the format requires LHS > RHS), so one pass works.
	for k, row := range andRows {
		if len(row) != 3 || row[0]&1 != 0 || row[0] == 0 {
			return nil, fmt.Errorf("aiger: and %d malformed", k)
		}
		v := row[0] >> 1
		if defined[v] {
			return nil, fmt.Errorf("aiger: variable %d defined twice", v)
		}
		if row[1] >= row[0] || row[2] >= row[0] {
			return nil, fmt.Errorf("aiger: and %d violates topological ordering", k)
		}
		defined[v] = true
		a := lits[row[1]>>1].XorNeg(row[1]&1 == 1)
		b := lits[row[2]>>1].XorNeg(row[2]&1 == 1)
		lits[v] = g.And(a, b)
	}
	for k, row := range latchRows {
		nv := row[1]
		if !defined[nv>>1] {
			return nil, fmt.Errorf("aiger: latch %d next-state uses undefined variable %d", k, nv>>1)
		}
		g.SetNext(k, lits[nv>>1].XorNeg(nv&1 == 1))
	}
	for k, row := range outputRows {
		if len(row) != 1 {
			return nil, fmt.Errorf("aiger: output %d malformed", k)
		}
		if !defined[row[0]>>1] {
			return nil, fmt.Errorf("aiger: output %d uses undefined variable %d", k, row[0]>>1)
		}
		g.AddOutput(fmt.Sprintf("o%d", k), lits[row[0]>>1].XorNeg(row[0]&1 == 1))
	}

	// Symbol table and comments.
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "c" {
			break
		}
		if line == "" {
			continue
		}
		kind := line[0]
		rest := line[1:]
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			continue
		}
		idx, err := strconv.Atoi(rest[:sp])
		if err != nil || idx < 0 {
			continue
		}
		sym := strings.TrimSpace(rest[sp+1:])
		switch kind {
		case 'i':
			if idx < len(g.inputNames) {
				g.inputNames[idx] = sym
			}
		case 'l':
			if idx < len(g.latchNames) {
				g.latchNames[idx] = sym
			}
		case 'o':
			if idx < len(g.outputNames) {
				g.outputNames[idx] = sym
			}
		}
	}
	return g, sc.Err()
}

// ParseAigerString parses AIGER ASCII text.
func ParseAigerString(name, s string) (*Graph, error) {
	return ParseAiger(name, strings.NewReader(s))
}
