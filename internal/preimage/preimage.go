// Package preimage computes preimages of state sets of sequential
// circuits — the set of present states (optionally with input witnesses)
// from which one transition reaches a given target set — and iterates them
// into full backward reachability.
//
// Five interchangeable engines are provided:
//
//   - EngineSuccessDriven (default): the paper's all-solutions SAT
//     enumerator (internal/core), returning the preimage directly as an
//     ROBDD-backed cube cover.
//   - EngineBlocking: classical all-SAT with full-minterm blocking
//     clauses (the paper's SAT baseline).
//   - EngineLifting: all-SAT with greedily lifted (shortened) blocking
//     clauses.
//   - EngineDisjoint: blocking-clause-free disjoint enumeration via
//     chronological backtracking with implicant shrinking — pairwise
//     disjoint cubes, O(1) clause growth per solution.
//   - EngineBDD: symbolic relational product with partitioned transition
//     relations and early quantification (the paper's BDD baseline).
//
// All engines return covers over the canonical state space (position k =
// latch k in declaration order), so results are directly comparable.
package preimage

import (
	"context"
	"fmt"
	"math/big"
	"sync"
	"time"

	"allsatpre/internal/allsat"
	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/circuit"
	"allsatpre/internal/cnf"
	"allsatpre/internal/core"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
	"allsatpre/internal/pool"
	rt "allsatpre/internal/runtime"
	"allsatpre/internal/simplify"
	"allsatpre/internal/stats"
	"allsatpre/internal/trans"
)

// Engine selects the preimage computation strategy.
type Engine int

// Available engines.
const (
	EngineSuccessDriven Engine = iota
	EngineBlocking
	EngineLifting
	EngineBDD
	EngineDisjoint
)

func (e Engine) String() string {
	switch e {
	case EngineSuccessDriven:
		return "success-driven"
	case EngineBlocking:
		return "blocking"
	case EngineLifting:
		return "lifting"
	case EngineBDD:
		return "bdd"
	case EngineDisjoint:
		return "disjoint"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Options configures a preimage computation.
type Options struct {
	// Engine selects the strategy (default EngineSuccessDriven).
	Engine Engine
	// WithInputs also reports the input assignments: the SAT engines then
	// enumerate over (state, input) and InputsCover is populated.
	WithInputs bool
	// Core tunes the success-driven enumerator (zero value → defaults).
	Core core.Options
	// AllSAT tunes the blocking/lifting engines.
	AllSAT allsat.Options
	// StateFirstOrder controls the success-driven decision order /
	// BDD variable order: true (default semantics when unset is
	// state-first) decides state variables before inputs. Setting
	// InputFirstOrder flips it — used by the decision-order ablation.
	InputFirstOrder bool
	// Interleave uses an s,x-interleaved order (ablation).
	Interleave bool
	// BDDSegregatedOrder makes the BDD engine place all present-state
	// variables before all next-state variables instead of interleaving
	// the (s_k, s'_k) pairs — the ordering ablation for Table 5.
	BDDSegregatedOrder bool
	// EliminateAux applies growth-free Davis–Putnam elimination to the
	// auxiliary (non-projection) CNF variables before enumeration. The
	// projection of the model set is preserved exactly, so all engines
	// return identical covers with or without it.
	EliminateAux bool
	// Simplify controls the full projection-safe preprocessing pass
	// (internal/simplify: bounded variable elimination, subsumption,
	// self-subsuming resolution, failed-literal probing) over the
	// instance CNF before a SAT engine runs, with the projection
	// variables frozen. The enumerated cover is identical with or
	// without it — the pass preserves the projected solution set
	// exactly. Auto resolves to on for the one-shot SAT engines;
	// the BDD engine has no CNF and ignores it. Incremental sessions
	// default off (the session retargets the clause database in place);
	// pass On to opt in there, see Options.Incremental.
	Simplify simplify.Mode
	// Restrict, when non-nil, intersects the preimage with the given
	// present-state cube (one position per latch): only predecessors
	// inside the cube are enumerated. It is also the splitting mechanism
	// behind the BDD engine's Parallel path.
	Restrict cube.Cube
	// Parallel, when > 1, computes the preimage with that many workers.
	// The success-driven engine partitions the projection space into
	// guiding-path subcubes drained by a work-stealing pool
	// (internal/pool) whose merged BDD — and therefore ISOP cover — is
	// bit-identical to the sequential run; the blocking/lifting engines
	// fan guiding-path subcubes over per-subcube solvers
	// (allsat.Options.Workers); the BDD engine computes disjoint
	// Restrict slices of the present-state space concurrently. All
	// engines return the same solution set as the sequential run for
	// every worker count.
	Parallel int
	// FrontierSimplify lets Reach pass each backward frontier through the
	// Coudert–Madre generalized cofactor with the already-visited states
	// as don't cares, trading frontier-cover size for possibly revisiting
	// known states. The fixpoint and reported per-distance frontiers are
	// unchanged; only the target handed to the next preimage differs.
	FrontierSimplify bool
	// Incremental makes the iterated entry points (Reach, ForwardReach,
	// KStepPreimage, CheckReachable's trace extraction) keep one
	// persistent solver session and one shared BDD manager across steps
	// (internal/incr): the circuit is encoded once, each step's target is
	// gated on a fresh activation literal, and learned clauses plus the
	// success-driven memo survive retargeting. Frontiers, counts, and
	// verdicts are bit-identical to the fresh-instance path; only the
	// resource accounting differs (budgets are session-global instead of
	// per-step, see DESIGN.md §10). It applies to the success-driven
	// engine without EliminateAux/Restrict; other configurations fall
	// back to the fresh path. Single-step Compute ignores it.
	Incremental bool
	// ShareManager, when non-nil, asks the success-driven engine to also
	// export the state projection of its solution set into this manager
	// (Result.Set/HasSet), skipping the cover→BDD re-import for callers
	// that keep their own visited set — Reach's fixpoint loop. The set is
	// renamed onto the canonical state space (variable k = latch k), so
	// the manager must be ordered over those variables — typically
	// bdd.NewOrdered(StateSpace(c).Vars()).
	ShareManager *bdd.Manager
	// Budget imposes resource limits (deadline, context cancellation,
	// decision/conflict/cube caps, BDD node cap) on the whole computation,
	// shared by every engine it drives. A relative Timeout is resolved to
	// an absolute deadline once, at the outermost entry point, so nested
	// calls (Reach steps, parallel slices) spend from one allowance. When
	// the budget trips, results come back with Aborted set and a sound
	// partial answer — never an error, never silently truncated. Explicit
	// per-engine budgets (Core.Budget, AllSAT.Budget) take precedence.
	Budget budget.Budget
	// Stats, when non-nil, receives hierarchical counters for the run:
	// engine totals at the root, per-step sub-registries for the
	// reachability loops. Safe for concurrent use; snapshot or serve it
	// while the computation is in flight.
	Stats *stats.Registry
	// Runtime, when non-nil, executes the computation on the shared
	// pooled runtime: solvers and BDD managers come warm from its
	// free-list instead of being rebuilt per request, and — when it also
	// carries a scheduler — the parallel engines run their subcube jobs
	// on the server-wide executor pool under the runtime's tenant label.
	// Results are bit-identical either way; nil keeps the classic
	// build-per-request behavior. Incremental sessions ignore it (their
	// solvers persist across steps by design).
	Runtime *rt.Runtime
}

// Result is a preimage: the set of predecessor states.
type Result struct {
	// States is the preimage as a cube cover over StateSpace.
	States *cube.Cover
	// StateSpace is the canonical state space (vars 0..L-1, latch names).
	StateSpace *cube.Space
	// Count is the exact number of preimage states.
	Count *big.Int
	// Pairs, when Options.WithInputs was set on a SAT engine, is the
	// cover over (state ++ input) of all witness pairs; nil otherwise.
	Pairs *cube.Cover
	// Stats carries search counters (SAT engines) or is zero (BDD).
	Stats allsat.Stats
	// BDDNodes is the peak node count of the engine's manager.
	BDDNodes int
	// Engine records which engine produced the result.
	Engine Engine
	// Aborted is true when a resource limit (cube cap, decision cap,
	// deadline, cancellation, BDD node cap) stopped the engine early.
	// States is then a sound under-approximation of the true preimage —
	// every reported state is a genuine predecessor, but some may be
	// missing. AbortReason says which limit tripped.
	Aborted     bool
	AbortReason budget.Reason
	// Set, valid when HasSet, is the state set as a BDD over the
	// canonical state space in the manager the caller passed via
	// Options.ShareManager — the same set States covers, without the
	// cover→BDD re-import.
	Set    bdd.Ref
	HasSet bool
}

// StateSpace builds the canonical state space of a circuit: position k is
// latch k, variable ids are 0..L-1, names are the latch signal names.
func StateSpace(c *circuit.Circuit) *cube.Space {
	vars := make([]lit.Var, len(c.Latches))
	names := make([]string, len(c.Latches))
	for i, gi := range c.Latches {
		vars[i] = lit.Var(i)
		names[i] = c.Gates[gi].Name
	}
	return cube.NewNamedSpace(vars, names)
}

// canonicalize re-expresses a cover (position-aligned to the latch order)
// over the canonical state space.
func canonicalize(space *cube.Space, cv *cube.Cover) *cube.Cover {
	out := cube.NewCover(space)
	for _, c := range cv.Cubes() {
		out.Add(c.Clone())
	}
	return out
}

// Compute returns the one-step preimage of the target set. When the
// budget in opts trips mid-computation the result carries Aborted=true
// and a States cover that under-approximates the preimage; the error
// return is reserved for malformed inputs.
func Compute(c *circuit.Circuit, target *cube.Cover, opts Options) (*Result, error) {
	opts.Budget = opts.Budget.Materialize()
	start := time.Now()
	var res *Result
	var err error
	switch {
	case opts.Engine == EngineBDD && opts.Parallel > 1 && len(c.Latches) > 0:
		res, err = computeBDDParallel(c, target, opts)
	case opts.Engine == EngineBDD:
		res, err = computeBDD(c, target, opts)
	default:
		res, err = computeSAT(c, target, opts)
	}
	if err == nil {
		recordStats(opts.Stats, res, time.Since(start))
	}
	return res, err
}

// applySimplify preprocesses f in place when opts.Simplify resolves to
// enabled, freezing the projection variables so the projected solution
// set — and therefore every engine's cover — is unchanged. Every caller
// passes an instance-local formula (trans.NewInstance clones the cached
// encoding; KStepPreimage builds a private unrolling), so mutating in
// place is safe. The decision is made once at this layer: both the local
// mode and the nested allsat mode are flipped to Off so inner layers
// never re-run (or independently enable) the pass.
func applySimplify(f *cnf.Formula, projSpace *cube.Space, opts *Options) simplify.Stats {
	enabled := opts.Simplify.Enabled(true)
	opts.Simplify = simplify.Off
	opts.AllSAT.Simplify = simplify.Off
	if !enabled {
		return simplify.Stats{}
	}
	frozen := make([]bool, f.NumVars)
	for _, v := range projSpace.Vars() {
		if int(v) < len(frozen) {
			frozen[v] = true
		}
	}
	res := simplify.Run(f, func(v lit.Var) bool { return frozen[v] }, simplify.Options{})
	return res.Stats
}

// runSATEngine dispatches one all-SAT enumeration for the selected SAT
// engine, injecting the computation budget into the engine options. The
// injection happens after the Core zero-value check so default tuning is
// preserved; an explicitly set engine budget wins over opts.Budget. The
// formula is simplified first (see applySimplify) unless the caller
// already did or opted out.
func runSATEngine(f *cnf.Formula, projSpace *cube.Space, opts Options) (*allsat.Result, error) {
	if r := opts.Budget.Start().Now(); r != budget.None {
		// Dead budget: abort before preprocessing (see computeSAT).
		return &allsat.Result{
			Space:   projSpace,
			Cover:   cube.NewCover(projSpace),
			Count:   new(big.Int),
			Aborted: true,
			Reason:  r,
		}, nil
	}
	sstats := applySimplify(f, projSpace, &opts)
	ar, err := runSATEngineSimplified(f, projSpace, opts)
	if ar != nil && sstats.Applied {
		ar.Stats.Simplify = sstats
	}
	return ar, err
}

func runSATEngineSimplified(f *cnf.Formula, projSpace *cube.Space, opts Options) (*allsat.Result, error) {
	switch opts.Engine {
	case EngineSuccessDriven:
		pr, ar := runSuccessDriven(f, projSpace, opts)
		pr.Release() // the cover/count are extracted; the manager can go back warm
		return ar, nil
	case EngineBlocking, EngineLifting, EngineDisjoint:
		as := opts.AllSAT
		if as.Budget.IsZero() {
			as.Budget = opts.Budget
		}
		if as.Runtime == nil {
			as.Runtime = opts.Runtime
		}
		if opts.Parallel > 1 && as.Workers == 0 {
			as.Workers = opts.Parallel
		}
		switch opts.Engine {
		case EngineBlocking:
			return allsat.EnumerateBlocking(f, projSpace, as), nil
		case EngineLifting:
			return allsat.EnumerateLifting(f, projSpace, as), nil
		default:
			return allsat.EnumerateDisjoint(f, projSpace, as), nil
		}
	default:
		return nil, fmt.Errorf("preimage: unknown engine %v", opts.Engine)
	}
}

// runSuccessDriven runs the success-driven engine — pooled for any worker
// count (one worker short-circuits to the plain sequential enumerator
// inside the pool) — and returns both the merged BDD (manager + set) and
// the allsat-shaped result extracted from it. The run budget is enforced
// by the pool; an explicitly set engine budget wins over opts.Budget.
func runSuccessDriven(f *cnf.Formula, projSpace *cube.Space, opts Options) (*pool.Result, *allsat.Result) {
	co := opts.Core
	if co.IsZero() {
		co = core.DefaultOptions()
	}
	bud := co.Budget
	if bud.IsZero() {
		bud = opts.Budget
	}
	co.Budget = budget.Budget{}
	workers := opts.Parallel
	if workers < 1 {
		workers = 1
	}
	pr := pool.Enumerate(f, projSpace, pool.Options{
		Workers: workers,
		Core:    co,
		Budget:  bud,
		Stats:   opts.Stats,
		Runtime: opts.Runtime,
	})
	ar := &allsat.Result{
		Space:   projSpace,
		Cover:   pr.Manager.ISOP(pr.Set, projSpace),
		Count:   pr.Manager.SatCount(pr.Set),
		Stats:   pr.Stats,
		Aborted: pr.Aborted,
		Reason:  pr.Reason,
	}
	ar.Stats.Cubes = uint64(ar.Cover.Len())
	return pr, ar
}

// recordStats publishes a result's counters into the run registry.
func recordStats(reg *stats.Registry, r *Result, elapsed time.Duration) {
	if reg == nil || r == nil {
		return
	}
	reg.Counter("decisions").Add(r.Stats.Decisions)
	reg.Counter("propagations").Add(r.Stats.Propagations)
	reg.Counter("conflicts").Add(r.Stats.Conflicts)
	reg.Counter("solutions").Add(r.Stats.Solutions)
	reg.Counter("cubes").Add(r.Stats.Cubes)
	reg.Counter("cache-lookups").Add(r.Stats.CacheLookups)
	reg.Counter("cache-hits").Add(r.Stats.CacheHits)
	reg.Counter("cache-clears").Add(r.Stats.CacheClears)
	reg.MaxGauge("bdd-nodes", int64(r.BDDNodes))
	if r.Stats.ArenaBytes > 0 || r.Stats.PeakLearnts > 0 {
		// Clause-arena residency of the CDCL solvers (summed across
		// parallel workers at capture time). The per-tier gauges snapshot
		// the tiered learnt DB: core is permanent, tier2 demotes on
		// disuse, local churns under reduction.
		reg.MaxGauge("sat.arena-bytes", int64(r.Stats.ArenaBytes))
		reg.MaxGauge("sat.peak-learnts", int64(r.Stats.PeakLearnts))
		reg.MaxGauge("sat.peak-learnt-bytes", int64(r.Stats.PeakLearntBytes))
		reg.SetGauge("sat.learnts-core", int64(r.Stats.LearntsCore))
		reg.SetGauge("sat.learnts-tier2", int64(r.Stats.LearntsTier2))
		reg.SetGauge("sat.learnts-local", int64(r.Stats.LearntsLocal))
	}
	if k := r.Stats.Kernel; k.UniqueLookups > 0 || k.CacheLookups > 0 {
		reg.Counter("kernel-unique-lookups").Add(k.UniqueLookups)
		reg.Counter("kernel-unique-probes").Add(k.UniqueProbes)
		reg.Counter("kernel-rehashes").Add(k.Rehashes)
		reg.Counter("kernel-cache-lookups").Add(k.CacheLookups)
		reg.Counter("kernel-cache-hits").Add(k.CacheHits)
		reg.Counter("kernel-cache-evictions").Add(k.CacheEvictions)
		reg.MaxGauge("kernel-unique-cap", int64(k.UniqueCap))
		reg.MaxGauge("kernel-cache-cap", int64(k.CacheCap))
		reg.MaxGauge("kernel-cache-size", int64(k.CacheSize))
		reg.SetFloatGauge("kernel-load-factor", k.LoadFactor())
		reg.SetFloatGauge("kernel-avg-probes", k.AvgProbes())
	}
	if sp := r.Stats.Simplify; sp.Applied {
		reg.Counter("simplify-runs").Inc()
		reg.Counter("simplify-vars-eliminated").Add(uint64(sp.VarsEliminated))
		reg.Counter("simplify-units-fixed").Add(uint64(sp.UnitsFixed))
		reg.Counter("simplify-clauses-subsumed").Add(uint64(sp.ClausesSubsumed))
		reg.Counter("simplify-lits-strengthened").Add(uint64(sp.LitsStrengthened))
		reg.Counter("simplify-resolvents-added").Add(uint64(sp.ResolventsAdded))
		reg.Counter("simplify-probes").Add(uint64(sp.Probes))
		reg.Counter("simplify-probe-failures").Add(uint64(sp.ProbeFailures))
		if sp.ClausesAfter < sp.ClausesBefore {
			reg.Counter("simplify-clauses-removed").Add(uint64(sp.ClausesBefore - sp.ClausesAfter))
		}
	}
	reg.AddDuration("time", elapsed)
	if r.Aborted {
		reg.Counter("aborts").Inc()
		reg.Counter("abort-" + r.AbortReason.String()).Inc()
	}
}

// computeBDDParallel splits the present-state space into disjoint slices
// on the leading latches and runs computeBDD per slice concurrently,
// each slice on its own (single-threaded) manager via Restrict. The
// slices share one budget context: the first slice to fail or abort
// cancels the rest, so an error does not leave sibling goroutines
// burning CPU to completion. Per-slice Aborted flags are merged into the
// result. The SAT engines do not come through here — they parallelize
// inside their enumerators (internal/pool, allsat.Options.Workers).
func computeBDDParallel(c *circuit.Circuit, target *cube.Cover, opts Options) (*Result, error) {
	bits := 1
	for 1<<bits < opts.Parallel && bits < len(c.Latches) && bits < 4 {
		bits++
	}
	n := 1 << bits
	stateSpace := StateSpace(c)
	results := make([]*Result, n)
	errs := make([]error, n)

	parent := opts.Budget.Ctx
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var wg sync.WaitGroup
	for slice := 0; slice < n; slice++ {
		wg.Add(1)
		go func(slice int) {
			defer wg.Done()
			sub := opts
			sub.Parallel = 0
			sub.Stats = nil // the caller records the merged totals once
			sub.Budget.Ctx = ctx
			restrict := stateSpace.FullCube()
			if opts.Restrict != nil {
				copy(restrict, opts.Restrict)
			}
			for b := 0; b < bits; b++ {
				want := lit.TernOf(slice&(1<<b) != 0)
				if restrict[b] != lit.Unknown && restrict[b] != want {
					// Slice contradicts the caller's restriction: empty.
					results[slice] = &Result{
						States:     cube.NewCover(stateSpace),
						StateSpace: stateSpace,
						Count:      new(big.Int),
						Engine:     opts.Engine,
					}
					return
				}
				restrict[b] = want
			}
			sub.Restrict = restrict
			results[slice], errs[slice] = computeBDD(c, target, sub)
			if errs[slice] != nil || (results[slice] != nil && results[slice].Aborted) {
				cancel() // stop the sibling slices
			}
		}(slice)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Slices are disjoint: union covers, add counts, sum stats.
	out := &Result{
		States:     cube.NewCover(stateSpace),
		StateSpace: stateSpace,
		Count:      new(big.Int),
		Engine:     opts.Engine,
	}
	for _, r := range results {
		if r == nil {
			continue
		}
		for _, cb := range r.States.Cubes() {
			out.States.Add(cb)
		}
		out.Count.Add(out.Count, r.Count)
		accumulate(&out.Stats, r.Stats)
		if r.BDDNodes > out.BDDNodes {
			out.BDDNodes = r.BDDNodes
		}
		if r.Aborted {
			out.Aborted = true
			if out.AbortReason == budget.None {
				out.AbortReason = r.AbortReason
			}
		}
	}
	out.States.Reduce()
	return out, nil
}

// projectionOrder builds the decision/projection variable order for the
// SAT engines from the instance according to the ablation options.
func projectionOrder(inst *trans.Instance, opts Options) ([]lit.Var, []string) {
	return inst.OrderedProjection(opts.InputFirstOrder, opts.Interleave)
}

func computeSAT(c *circuit.Circuit, target *cube.Cover, opts Options) (*Result, error) {
	// Poll once up front: an already-expired deadline or cancelled context
	// aborts before any encoding or preprocessing effort is spent. (The
	// engines poll too, but preprocessing can solve small instances
	// outright, in zero decisions — without this check such a run would
	// look complete despite the dead budget.)
	if r := opts.Budget.Start().Now(); r != budget.None {
		stateSpace := StateSpace(c)
		return &Result{
			States:      cube.NewCover(stateSpace),
			StateSpace:  stateSpace,
			Count:       new(big.Int),
			Engine:      opts.Engine,
			Aborted:     true,
			AbortReason: r,
		}, nil
	}
	inst, err := trans.NewInstance(c, target)
	if err != nil {
		return nil, err
	}
	if opts.Restrict != nil {
		if len(opts.Restrict) != len(inst.StateVars) {
			return nil, fmt.Errorf("preimage: Restrict has %d positions, circuit has %d latches",
				len(opts.Restrict), len(inst.StateVars))
		}
		for pos, t := range opts.Restrict {
			if t == lit.Unknown {
				continue
			}
			inst.F.Add(lit.New(inst.StateVars[pos], t == lit.False))
		}
	}
	projVars, projNames := projectionOrder(inst, opts)
	projSpace := cube.NewNamedSpace(projVars, projNames)

	if opts.EliminateAux {
		isProj := make([]bool, inst.F.NumVars)
		for _, v := range projVars {
			isProj[v] = true
		}
		cnf.EliminateVars(inst.F, func(v lit.Var) bool { return !isProj[v] }, 0)
	}

	sstats := applySimplify(inst.F, projSpace, &opts)

	var res *allsat.Result
	var pr *pool.Result
	if opts.Engine == EngineSuccessDriven {
		pr, res = runSuccessDriven(inst.F, projSpace, opts)
	} else {
		res, err = runSATEngine(inst.F, projSpace, opts)
		if err != nil {
			return nil, err
		}
	}
	res.Stats.Simplify = sstats

	stateSpace := StateSpace(c)
	// Project the (ordered) projection cover onto the state positions.
	posOfLatch := make([]int, len(inst.StateVars))
	for i, v := range inst.StateVars {
		posOfLatch[i] = projSpace.PosOf(v)
	}
	states := cube.NewCover(stateSpace)
	for _, cb := range res.Cover.Cubes() {
		sc := stateSpace.FullCube()
		for i, pos := range posOfLatch {
			sc[i] = cb[pos]
		}
		states.Add(sc)
	}
	states.Reduce()

	out := &Result{
		States:      states,
		StateSpace:  stateSpace,
		Stats:       res.Stats,
		BDDNodes:    res.Stats.BDDNodes,
		Engine:      opts.Engine,
		Aborted:     res.Aborted,
		AbortReason: res.Reason,
	}
	if pr != nil {
		// The engine handed back its merged BDD: the state count and (when
		// requested) the state set come straight from it — no third
		// manager, no cover round-trip. ∃x·set counted over the state
		// variables equals the minterm count of the projected cover.
		stateSet := pr.Manager.ExistsVars(pr.Set, inst.InputVars)
		out.Count = pr.Manager.SatCountIn(stateSet, inst.StateVars)
		if opts.ShareManager != nil {
			// Rename CNF state vars to canonical positions; the relative
			// order is the latch order in both managers, so the import
			// stays on the fast structural path.
			sub := make(map[lit.Var]lit.Var, len(inst.StateVars))
			for i, v := range inst.StateVars {
				sub[v] = lit.Var(i)
			}
			snap := pr.Manager.Export(stateSet).Rename(sub)
			out.Set = opts.ShareManager.Import(snap)
			out.HasSet = true
		}
		pr.Release()
	} else {
		out.Count = countStates(states, opts.Runtime)
	}
	if opts.WithInputs {
		// Re-express the projection cover over (state ++ input) order.
		pairSpace := pairSpace(inst)
		pairs := cube.NewCover(pairSpace)
		fullVars := inst.FullSpace.Vars()
		for _, cb := range res.Cover.Cubes() {
			pc := pairSpace.FullCube()
			for i, v := range fullVars {
				pc[i] = cb[projSpace.PosOf(v)]
			}
			pairs.Add(pc)
		}
		out.Pairs = pairs
	}
	return out, nil
}

func pairSpace(inst *trans.Instance) *cube.Space {
	n := inst.FullSpace.Size()
	vars := make([]lit.Var, n)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		vars[i] = lit.Var(i)
		names[i] = inst.FullSpace.Name(i)
	}
	return cube.NewNamedSpace(vars, names)
}

// countStates counts the minterms of a state cover exactly via a BDD,
// borrowing the counting manager from the runtime pool when one is
// available (r may be nil).
func countStates(cv *cube.Cover, r *rt.Runtime) *big.Int {
	m := r.P().AcquireManager(cv.Space().Vars(), 0)
	n := m.SatCount(m.FromCover(cv))
	r.P().ReleaseManager(m)
	return n
}
