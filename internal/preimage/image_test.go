package preimage

import (
	"math/big"
	"math/rand"
	"testing"

	"allsatpre/internal/circuit"
	"allsatpre/internal/cube"
	"allsatpre/internal/gen"
	"allsatpre/internal/trans"
)

// bruteImage computes the ground-truth forward image by simulation.
func bruteImage(t *testing.T, c *circuit.Circuit, init *cube.Cover) map[int]bool {
	t.Helper()
	sim, err := circuit.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	nL, nI := len(c.Latches), len(c.Inputs)
	out := map[int]bool{}
	for sv := 0; sv < 1<<uint(nL); sv++ {
		st := make([]bool, nL)
		for i := range st {
			st[i] = sv&(1<<uint(i)) != 0
		}
		if !init.Contains(st) {
			continue
		}
		for iv := 0; iv < 1<<uint(nI); iv++ {
			in := make([]bool, nI)
			for i := range in {
				in[i] = iv&(1<<uint(i)) != 0
			}
			_, next := sim.Step(st, in)
			nv := 0
			for i, b := range next {
				if b {
					nv |= 1 << uint(i)
				}
			}
			out[nv] = true
		}
	}
	return out
}

func checkImageEngines(t *testing.T, tag string, c *circuit.Circuit, init *cube.Cover) {
	t.Helper()
	want := bruteImage(t, c, init)
	for _, eng := range allEngines {
		r, err := Image(c, init, Options{Engine: eng})
		if err != nil {
			t.Fatalf("%s/%v: %v", tag, eng, err)
		}
		got := coverSet(t, r.States)
		for x := range want {
			if !got[x] {
				t.Fatalf("%s/%v: image missing state %b", tag, eng, x)
			}
		}
		for x := range got {
			if !want[x] {
				t.Fatalf("%s/%v: image has spurious state %b", tag, eng, x)
			}
		}
		if r.Count.Cmp(big.NewInt(int64(len(want)))) != 0 {
			t.Fatalf("%s/%v: count %v, want %d", tag, eng, r.Count, len(want))
		}
	}
}

func TestImageCounterClosedForm(t *testing.T) {
	// Image of {k} under the enabled counter is {k, k+1}.
	c := gen.Counter(4, true, false)
	init := trans.TargetFromPatterns(4, "1010") // state 5
	for _, eng := range allEngines {
		r, err := Image(c, init, Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		got := coverSet(t, r.States)
		if len(got) != 2 || !got[5] || !got[6] {
			t.Fatalf("engine %v: image %v, want {5,6}", eng, got)
		}
	}
}

func TestImageAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	cases := []*circuit.Circuit{
		gen.Counter(5, true, false),
		gen.ShiftRegister(5),
		gen.Johnson(5),
		gen.TrafficLight(),
		gen.SLike(gen.SLikeParams{Seed: 41, Inputs: 4, Latches: 5, Gates: 30}),
	}
	for _, c := range cases {
		nL := len(c.Latches)
		for rep := 0; rep < 2; rep++ {
			pat := make([]byte, nL)
			for i := range pat {
				pat[i] = "01X"[rng.Intn(3)]
			}
			init := trans.TargetFromPatterns(nL, string(pat))
			checkImageEngines(t, c.Name, c, init)
		}
	}
}

func TestImagePreimageDuality(t *testing.T) {
	// s' ∈ Img(I) ⟺ Pre({s'}) ∩ I ≠ ∅, spot-checked on a random circuit.
	c := gen.SLike(gen.SLikeParams{Seed: 51, Inputs: 4, Latches: 4, Gates: 25})
	init := trans.TargetFromPatterns(4, "1X0X")
	img, err := Image(c, init, Options{})
	if err != nil {
		t.Fatal(err)
	}
	imgSet := coverSet(t, img.States)
	for sv := 0; sv < 16; sv++ {
		pat := make([]byte, 4)
		st := make([]bool, 4)
		for i := range pat {
			if sv&(1<<uint(i)) != 0 {
				pat[i] = '1'
				st[i] = true
			} else {
				pat[i] = '0'
			}
		}
		pre, err := Compute(c, trans.TargetFromPatterns(4, string(pat)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		intersects := false
		for x := range coverSet(t, pre.States) {
			m := make([]bool, 4)
			for i := range m {
				m[i] = x&(1<<uint(i)) != 0
			}
			if init.Contains(m) {
				intersects = true
				break
			}
		}
		if intersects != imgSet[sv] {
			t.Fatalf("duality broken at state %04b: pre∩init=%v, in image=%v",
				sv, intersects, imgSet[sv])
		}
	}
}

func TestImageEmptyInit(t *testing.T) {
	c := gen.Counter(3, true, false)
	sp := StateSpace(c)
	for _, eng := range allEngines {
		r, err := Image(c, cube.NewCover(sp), Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if r.Count.Sign() != 0 {
			t.Fatalf("engine %v: empty init should have empty image", eng)
		}
	}
}

func TestImageSharedNextStateGate(t *testing.T) {
	// Two latches fed by the same gate: next states always equal.
	c := circuit.New("shared")
	a := c.AddInput("a")
	s0 := c.AddLatch("s0", a)
	s1 := c.AddLatch("s1", a)
	g := c.AddGate("g", circuit.And, s0, a)
	c.Gates[s0].Fanins[0] = g
	c.Gates[s1].Fanins[0] = g
	c.MarkOutput(g)
	_ = s1
	init := trans.TargetFromPatterns(2, "XX")
	checkImageEngines(t, "shared", c, init)
}

func TestForwardReachCounter(t *testing.T) {
	// Forward from {0}: each step adds exactly one new state.
	c := gen.Counter(3, true, false)
	init := trans.TargetFromPatterns(3, "000")
	r, err := ForwardReach(c, init, -1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Fixpoint || r.AllCount.Cmp(big.NewInt(8)) != 0 {
		t.Fatalf("forward reach: fixpoint=%v all=%v", r.Fixpoint, r.AllCount)
	}
	for k, cnt := range r.FrontierCounts {
		if cnt.Cmp(big.NewInt(1)) != 0 {
			t.Fatalf("frontier %d count %v, want 1", k, cnt)
		}
	}
}

func TestForwardReachJohnsonOrbit(t *testing.T) {
	// The Johnson counter's reachable set from 0 is its 2n-state orbit.
	c := gen.Johnson(4)
	init := trans.TargetFromPatterns(4, "0000")
	for _, eng := range allEngines {
		r, err := ForwardReach(c, init, -1, Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if r.AllCount.Cmp(big.NewInt(8)) != 0 {
			t.Fatalf("engine %v: orbit size %v, want 8", eng, r.AllCount)
		}
	}
}

func TestForwardReachStepLimit(t *testing.T) {
	c := gen.Counter(4, true, false)
	init := trans.TargetFromPatterns(4, "0000")
	r, err := ForwardReach(c, init, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Fixpoint || r.AllCount.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("limited forward reach: %v states, fixpoint=%v", r.AllCount, r.Fixpoint)
	}
}

func TestCheckReachableWithTrace(t *testing.T) {
	// Counter: state 5 is reachable from 0 in 5 steps; the trace must
	// simulate correctly end to end.
	c := gen.Counter(4, true, false)
	init := trans.TargetFromPatterns(4, "0000")
	bad := trans.TargetFromPatterns(4, "1010")
	res, err := CheckReachable(c, init, bad, -1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable || !res.Complete {
		t.Fatalf("should be reachable: %+v", res)
	}
	if res.Steps != 5 {
		t.Fatalf("distance %d, want 5", res.Steps)
	}
	validateTrace(t, c, init, bad, res.Trace)
}

func validateTrace(t *testing.T, c *circuit.Circuit, init, bad *cube.Cover, tr *Trace) {
	t.Helper()
	if tr == nil {
		t.Fatal("missing trace")
	}
	if !init.Contains(tr.States[0]) {
		t.Fatal("trace does not start in init")
	}
	if !bad.Contains(tr.States[len(tr.States)-1]) {
		t.Fatal("trace does not end in bad")
	}
	sim, err := circuit.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range tr.Inputs {
		_, next := sim.Step(tr.States[i], in)
		for k := range next {
			if next[k] != tr.States[i+1][k] {
				t.Fatalf("trace step %d does not simulate", i)
			}
		}
	}
	if tr.Steps() != len(tr.States)-1 {
		t.Fatal("Steps() inconsistent")
	}
}

func TestCheckReachableImmediateHit(t *testing.T) {
	c := gen.Counter(3, true, false)
	init := trans.TargetFromPatterns(3, "XXX")
	bad := trans.TargetFromPatterns(3, "110")
	res, err := CheckReachable(c, init, bad, -1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable || res.Steps != 0 || res.Trace.Steps() != 0 {
		t.Fatalf("init∩bad should hit at distance 0: %+v", res)
	}
}

func TestCheckReachableUnreachable(t *testing.T) {
	// Johnson counter: 0101 is not a code word, so it is unreachable from
	// the zero state; the backward fixpoint proves it.
	c := gen.Johnson(4)
	init := trans.TargetFromPatterns(4, "0000")
	bad := trans.TargetFromPatterns(4, "0101")
	for _, eng := range allEngines {
		res, err := CheckReachable(c, init, bad, -1, Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if res.Reachable || !res.Complete {
			t.Fatalf("engine %v: 0101 should be provably unreachable: %+v", eng, res)
		}
	}
}

func TestCheckReachableStepCap(t *testing.T) {
	c := gen.Counter(4, true, false)
	init := trans.TargetFromPatterns(4, "0000")
	bad := trans.TargetFromPatterns(4, "1111")
	res, err := CheckReachable(c, init, bad, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable || res.Complete {
		t.Fatalf("step cap should return incomplete: %+v", res)
	}
}

func TestTraceOnRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for seed := int64(61); seed < 65; seed++ {
		c := gen.SLike(gen.SLikeParams{Seed: seed, Inputs: 4, Latches: 4, Gates: 25})
		initPat := make([]byte, 4)
		badPat := make([]byte, 4)
		for i := range initPat {
			initPat[i] = "01"[rng.Intn(2)]
			badPat[i] = "01"[rng.Intn(2)]
		}
		init := trans.TargetFromPatterns(4, string(initPat))
		bad := trans.TargetFromPatterns(4, string(badPat))
		res, err := CheckReachable(c, init, bad, 16, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Reachable {
			validateTrace(t, c, init, bad, res.Trace)
		}
	}
}
