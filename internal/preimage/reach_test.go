package preimage

import (
	"math/big"
	"testing"

	"allsatpre/internal/circuit"
	"allsatpre/internal/cube"
	"allsatpre/internal/gen"
	"allsatpre/internal/trans"
)

// bruteBackwardBFS computes, by explicit-state search, the set of states
// that can reach the target within maxSteps transitions (or all, if
// maxSteps < 0), plus the per-distance frontiers.
func bruteBackwardBFS(t *testing.T, c *circuit.Circuit, target *cube.Cover, maxSteps int) ([]map[int]bool, map[int]bool) {
	t.Helper()
	nL, nI := len(c.Latches), len(c.Inputs)
	sim, err := circuit.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	// Precompute the transition relation as predecessor lists.
	preds := make([][]int, 1<<uint(nL))
	for sv := 0; sv < 1<<uint(nL); sv++ {
		st := make([]bool, nL)
		for i := range st {
			st[i] = sv&(1<<uint(i)) != 0
		}
		for iv := 0; iv < 1<<uint(nI); iv++ {
			in := make([]bool, nI)
			for i := range in {
				in[i] = iv&(1<<uint(i)) != 0
			}
			_, next := sim.Step(st, in)
			nv := 0
			for i, b := range next {
				if b {
					nv |= 1 << uint(i)
				}
			}
			preds[nv] = append(preds[nv], sv)
		}
	}
	visited := map[int]bool{}
	frontier := map[int]bool{}
	m := make([]bool, nL)
	for x := 0; x < 1<<uint(nL); x++ {
		for i := 0; i < nL; i++ {
			m[i] = x&(1<<uint(i)) != 0
		}
		if target.Contains(m) {
			visited[x] = true
			frontier[x] = true
		}
	}
	layers := []map[int]bool{copySet(frontier)}
	for step := 0; maxSteps < 0 || step < maxSteps; step++ {
		next := map[int]bool{}
		for x := range frontier {
			for _, p := range preds[x] {
				if !visited[p] {
					next[p] = true
				}
			}
		}
		if len(next) == 0 {
			break
		}
		for x := range next {
			visited[x] = true
		}
		layers = append(layers, copySet(next))
		frontier = next
	}
	return layers, visited
}

func copySet(s map[int]bool) map[int]bool {
	out := make(map[int]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func checkReach(t *testing.T, tag string, c *circuit.Circuit, target *cube.Cover, maxSteps int, opts Options) {
	t.Helper()
	wantLayers, wantAll := bruteBackwardBFS(t, c, target, maxSteps)
	r, err := Reach(c, target, maxSteps, opts)
	if err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	gotAll := coverSet(t, r.All)
	for x := range wantAll {
		if !gotAll[x] {
			t.Fatalf("%s: missing reachable state %b", tag, x)
		}
	}
	for x := range gotAll {
		if !wantAll[x] {
			t.Fatalf("%s: spurious reachable state %b", tag, x)
		}
	}
	if r.AllCount.Cmp(big.NewInt(int64(len(wantAll)))) != 0 {
		t.Fatalf("%s: AllCount %v, want %d", tag, r.AllCount, len(wantAll))
	}
	if len(r.Frontiers) != len(wantLayers) {
		t.Fatalf("%s: %d frontiers, want %d", tag, len(r.Frontiers), len(wantLayers))
	}
	for k, layer := range wantLayers {
		got := coverSet(t, r.Frontiers[k])
		if len(got) != len(layer) {
			t.Fatalf("%s: frontier %d has %d states, want %d", tag, k, len(got), len(layer))
		}
		for x := range layer {
			if !got[x] {
				t.Fatalf("%s: frontier %d missing %b", tag, k, x)
			}
		}
		if r.FrontierCounts[k].Cmp(big.NewInt(int64(len(layer)))) != 0 {
			t.Fatalf("%s: frontier count %d mismatch", tag, k)
		}
	}
}

func TestReachCounterLayers(t *testing.T) {
	// Enabled counter, target {s=5}: each backward layer adds exactly one
	// new state (5, then 4, 3, ... wrapping), reaching all 8 states.
	c := gen.Counter(3, true, false)
	target := trans.TargetFromPatterns(3, "101")
	r, err := Reach(c, target, -1, Options{Engine: EngineSuccessDriven})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Fixpoint {
		t.Fatal("should reach fixpoint")
	}
	if r.AllCount.Cmp(big.NewInt(8)) != 0 {
		t.Fatalf("AllCount %v, want 8", r.AllCount)
	}
	if len(r.Frontiers) != 8 {
		t.Fatalf("%d frontiers, want 8 (one new state per step)", len(r.Frontiers))
	}
	for k, cnt := range r.FrontierCounts {
		if cnt.Cmp(big.NewInt(1)) != 0 {
			t.Fatalf("frontier %d count %v, want 1", k, cnt)
		}
	}
}

func TestReachAgainstBFSAllEngines(t *testing.T) {
	cases := []struct {
		c      *circuit.Circuit
		target *cube.Cover
	}{
		{gen.Counter(4, true, false), trans.TargetFromPatterns(4, "1111")},
		{gen.ShiftRegister(4), trans.TargetFromPatterns(4, "1001")},
		{gen.Johnson(4), trans.TargetFromPatterns(4, "1111")},
		{gen.TrafficLight(), trans.TargetFromPatterns(5, "010XX")},
		{gen.SLike(gen.SLikeParams{Seed: 31, Inputs: 4, Latches: 4, Gates: 25}), trans.TargetFromPatterns(4, "0110")},
	}
	for _, tc := range cases {
		for _, eng := range allEngines {
			checkReach(t, tc.c.Name+"/"+eng.String(), tc.c, tc.target, -1, Options{Engine: eng})
		}
	}
}

func TestReachStepLimit(t *testing.T) {
	c := gen.Counter(4, true, false)
	target := trans.TargetFromPatterns(4, "0000")
	r, err := Reach(c, target, 3, Options{Engine: EngineSuccessDriven})
	if err != nil {
		t.Fatal(err)
	}
	if r.Fixpoint {
		t.Fatal("should not reach fixpoint in 3 steps")
	}
	if r.Steps != 3 {
		t.Fatalf("Steps = %d, want 3", r.Steps)
	}
	// Target + 3 new states.
	if r.AllCount.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("AllCount %v, want 4", r.AllCount)
	}
	checkReach(t, "counter-limited", c, target, 3, Options{Engine: EngineSuccessDriven})
}

func TestReachUnreachableTarget(t *testing.T) {
	// Johnson counter: state 0101 (alternating) has no predecessor within
	// the Johnson orbit... it does have predecessors in the full state
	// graph (any state shifts), so instead use an empty target.
	c := gen.Johnson(4)
	sp := StateSpace(c)
	empty := cube.NewCover(sp)
	r, err := Reach(c, empty, -1, Options{Engine: EngineSuccessDriven})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Fixpoint || r.AllCount.Sign() != 0 {
		t.Fatalf("empty target should fixpoint immediately with 0 states")
	}
}

func TestReachStatsAccumulate(t *testing.T) {
	c := gen.Counter(4, true, false)
	target := trans.TargetFromPatterns(4, "1010")
	r, err := Reach(c, target, -1, Options{Engine: EngineBlocking})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Solutions == 0 || r.Stats.Decisions == 0 {
		t.Error("expected accumulated SAT stats")
	}
	if r.Steps == 0 {
		t.Error("no steps recorded")
	}
}

func TestReachFrontierSimplifyAgrees(t *testing.T) {
	cases := []struct {
		c      *circuit.Circuit
		target *cube.Cover
	}{
		{gen.Counter(4, true, false), trans.TargetFromPatterns(4, "1111")},
		{gen.TrafficLight(), trans.TargetFromPatterns(5, "010XX")},
		{gen.SLike(gen.SLikeParams{Seed: 31, Inputs: 4, Latches: 4, Gates: 25}), trans.TargetFromPatterns(4, "0110")},
	}
	for _, tc := range cases {
		for _, eng := range []Engine{EngineSuccessDriven, EngineBDD} {
			plain, err := Reach(tc.c, tc.target, -1, Options{Engine: eng})
			if err != nil {
				t.Fatal(err)
			}
			simp, err := Reach(tc.c, tc.target, -1, Options{Engine: eng, FrontierSimplify: true})
			if err != nil {
				t.Fatal(err)
			}
			if plain.AllCount.Cmp(simp.AllCount) != 0 || plain.Fixpoint != simp.Fixpoint {
				t.Fatalf("%s/%v: simplify changed the fixpoint: %v vs %v",
					tc.c.Name, eng, simp.AllCount, plain.AllCount)
			}
			if len(plain.Frontiers) != len(simp.Frontiers) {
				t.Fatalf("%s/%v: layer counts differ", tc.c.Name, eng)
			}
			for k := range plain.FrontierCounts {
				if plain.FrontierCounts[k].Cmp(simp.FrontierCounts[k]) != 0 {
					t.Fatalf("%s/%v: distance-%d layer size changed", tc.c.Name, eng, k)
				}
			}
		}
	}
}

func TestReachS27Fixpoint(t *testing.T) {
	c := loadS27(t)
	target := trans.TargetFromPatterns(3, "111")
	for _, eng := range allEngines {
		checkReach(t, "s27/"+eng.String(), c, target, -1, Options{Engine: eng})
	}
}
