package preimage

import (
	"fmt"

	"allsatpre/internal/bdd"
	"allsatpre/internal/circuit"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
)

// bddVars fixes the BDD variable layout for a circuit with L latches and
// I inputs: present-state bit k ↦ var 2k, next-state bit k ↦ var 2k+1
// (interleaved, the classic pairing for transition relations), primary
// input j ↦ var 2L+j.
type bddVars struct {
	nL, nI int
}

func (bv bddVars) state(k int) lit.Var { return lit.Var(2 * k) }
func (bv bddVars) next(k int) lit.Var  { return lit.Var(2*k + 1) }
func (bv bddVars) input(j int) lit.Var { return lit.Var(2*bv.nL + j) }

func (bv bddVars) order() []lit.Var {
	var out []lit.Var
	for k := 0; k < bv.nL; k++ {
		out = append(out, bv.state(k), bv.next(k))
	}
	for j := 0; j < bv.nI; j++ {
		out = append(out, bv.input(j))
	}
	return out
}

// segregatedOrder places all present-state variables before all
// next-state variables (the textbook-bad ordering for transition
// relations); used by the ordering ablation.
func (bv bddVars) segregatedOrder() []lit.Var {
	var out []lit.Var
	for k := 0; k < bv.nL; k++ {
		out = append(out, bv.state(k))
	}
	for k := 0; k < bv.nL; k++ {
		out = append(out, bv.next(k))
	}
	for j := 0; j < bv.nI; j++ {
		out = append(out, bv.input(j))
	}
	return out
}

// computeBDD computes the preimage symbolically:
//
//	Pre(N)(s) = ∃x ∃s'. N(s') ∧ ∏_k (s'_k ≡ δ_k(s, x))
//
// with the product evaluated as a sequence of AndExists relational
// products, quantifying each s'_k as soon as its partition is conjoined
// (early quantification), then quantifying the inputs.
func computeBDD(c *circuit.Circuit, target *cube.Cover, opts Options) (*Result, error) {
	if target.Space().Size() != len(c.Latches) {
		return nil, fmt.Errorf("preimage: target has %d positions, circuit has %d latches",
			target.Space().Size(), len(c.Latches))
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	bv := bddVars{nL: len(c.Latches), nI: len(c.Inputs)}
	varOrder := bv.order()
	if opts.BDDSegregatedOrder {
		varOrder = bv.segregatedOrder()
	}
	m := bdd.NewOrdered(varOrder)
	val, err := gateBDDs(m, c, bv, order)
	if err != nil {
		return nil, err
	}

	// Target over next-state variables.
	nextSpace := func() *cube.Space {
		vars := make([]lit.Var, bv.nL)
		for k := range vars {
			vars[k] = bv.next(k)
		}
		return cube.NewSpace(vars)
	}()
	nPrime := bdd.False
	for _, cb := range target.Cubes() {
		nPrime = m.Or(nPrime, m.FromCube(nextSpace, cb))
	}

	// Partitioned relational product with early quantification: each
	// partition T_k = (s'_k ≡ δ_k) is the only one mentioning s'_k
	// besides the shrinking R, so s'_k is quantified immediately.
	r := nPrime
	for k, gi := range c.Latches {
		delta := val[c.Gates[gi].Fanins[0]]
		tk := m.Xnor(m.Var(bv.next(k)), delta)
		r = m.AndExists(r, tk, m.CubeVars([]lit.Var{bv.next(k)}))
	}
	// Quantify the primary inputs.
	inVars := make([]lit.Var, bv.nI)
	for j := range inVars {
		inVars[j] = bv.input(j)
	}
	r = m.ExistsVars(r, inVars)

	// Read the result back over the canonical state space.
	mgrStateSpace := func() *cube.Space {
		vars := make([]lit.Var, bv.nL)
		for k := range vars {
			vars[k] = bv.state(k)
		}
		return cube.NewSpace(vars)
	}()
	if opts.Restrict != nil {
		if len(opts.Restrict) != bv.nL {
			return nil, fmt.Errorf("preimage: Restrict has %d positions, circuit has %d latches",
				len(opts.Restrict), bv.nL)
		}
		r = m.And(r, m.FromCube(mgrStateSpace, opts.Restrict))
	}
	stateSpace := StateSpace(c)
	states := canonicalize(stateSpace, m.ISOP(r, mgrStateSpace))

	return &Result{
		States:     states,
		StateSpace: stateSpace,
		Count:      m.SatCountIn(r, mgrStateSpace.Vars()),
		BDDNodes:   m.NumNodes(),
		Engine:     EngineBDD,
	}, nil
}
