package preimage

import (
	"fmt"
	"math/big"

	"allsatpre/internal/allsat"
	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/circuit"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
)

// installLimits arms a BDD manager with the computation budget: a node
// cap and a deadline/cancellation checker polled from the node-creation
// hot path. Callers must wrap the subsequent BDD work with
// bdd.CatchAbort to turn a tripped limit into a structured abort.
func installLimits(m *bdd.Manager, b budget.Budget) {
	if b.IsZero() {
		return
	}
	m.SetLimits(b.MaxBDDNodes, b.Start())
}

// abortedBDDResult is the sound fallback for an aborted symbolic run:
// unlike the SAT engines, an interrupted relational product has no usable
// partial answer, so the under-approximation is the empty cover.
func abortedBDDResult(c *circuit.Circuit, m *bdd.Manager, reason budget.Reason) *Result {
	stateSpace := StateSpace(c)
	return &Result{
		States:      cube.NewCover(stateSpace),
		StateSpace:  stateSpace,
		Count:       new(big.Int),
		BDDNodes:    m.NumNodes(),
		Stats:       allsat.Stats{BDDNodes: m.NumNodes(), Kernel: m.Kernel()},
		Engine:      EngineBDD,
		Aborted:     true,
		AbortReason: reason,
	}
}

// bddVars fixes the BDD variable layout for a circuit with L latches and
// I inputs: present-state bit k ↦ var 2k, next-state bit k ↦ var 2k+1
// (interleaved, the classic pairing for transition relations), primary
// input j ↦ var 2L+j.
type bddVars struct {
	nL, nI int
}

func (bv bddVars) state(k int) lit.Var { return lit.Var(2 * k) }
func (bv bddVars) next(k int) lit.Var  { return lit.Var(2*k + 1) }
func (bv bddVars) input(j int) lit.Var { return lit.Var(2*bv.nL + j) }

func (bv bddVars) order() []lit.Var {
	var out []lit.Var
	for k := 0; k < bv.nL; k++ {
		out = append(out, bv.state(k), bv.next(k))
	}
	for j := 0; j < bv.nI; j++ {
		out = append(out, bv.input(j))
	}
	return out
}

// segregatedOrder places all present-state variables before all
// next-state variables (the textbook-bad ordering for transition
// relations); used by the ordering ablation.
func (bv bddVars) segregatedOrder() []lit.Var {
	var out []lit.Var
	for k := 0; k < bv.nL; k++ {
		out = append(out, bv.state(k))
	}
	for k := 0; k < bv.nL; k++ {
		out = append(out, bv.next(k))
	}
	for j := 0; j < bv.nI; j++ {
		out = append(out, bv.input(j))
	}
	return out
}

// computeBDD computes the preimage symbolically:
//
//	Pre(N)(s) = ∃x ∃s'. N(s') ∧ ∏_k (s'_k ≡ δ_k(s, x))
//
// with the product evaluated as a sequence of AndExists relational
// products, quantifying each s'_k as soon as its partition is conjoined
// (early quantification), then quantifying the inputs.
func computeBDD(c *circuit.Circuit, target *cube.Cover, opts Options) (*Result, error) {
	if target.Space().Size() != len(c.Latches) {
		return nil, fmt.Errorf("preimage: target has %d positions, circuit has %d latches",
			target.Space().Size(), len(c.Latches))
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	bv := bddVars{nL: len(c.Latches), nI: len(c.Inputs)}
	varOrder := bv.order()
	if opts.BDDSegregatedOrder {
		varOrder = bv.segregatedOrder()
	}
	m := bdd.NewOrdered(varOrder)
	installLimits(m, opts.Budget)
	res, reason, err := computeBDDBody(c, target, opts, m, bv, order)
	if err != nil {
		return nil, err
	}
	if reason != budget.None {
		return abortedBDDResult(c, m, reason), nil
	}
	return res, nil
}

// computeBDDBody runs the budget-armed symbolic computation; a tripped
// limit unwinds via the *bdd.Abort panic recovered into reason.
func computeBDDBody(c *circuit.Circuit, target *cube.Cover, opts Options,
	m *bdd.Manager, bv bddVars, order []int) (_ *Result, reason budget.Reason, err error) {
	defer bdd.CatchAbort(&reason)

	val, err := gateBDDs(m, c, bv, order)
	if err != nil {
		return nil, budget.None, err
	}

	// Target over next-state variables.
	nextSpace := func() *cube.Space {
		vars := make([]lit.Var, bv.nL)
		for k := range vars {
			vars[k] = bv.next(k)
		}
		return cube.NewSpace(vars)
	}()
	nPrime := bdd.False
	for _, cb := range target.Cubes() {
		nPrime = m.Or(nPrime, m.FromCube(nextSpace, cb))
	}

	// Partitioned relational product with early quantification: each
	// partition T_k = (s'_k ≡ δ_k) is the only one mentioning s'_k
	// besides the shrinking R, so s'_k is quantified immediately.
	r := nPrime
	for k, gi := range c.Latches {
		delta := val[c.Gates[gi].Fanins[0]]
		tk := m.Xnor(m.Var(bv.next(k)), delta)
		r = m.AndExists(r, tk, m.CubeVars([]lit.Var{bv.next(k)}))
	}
	// Quantify the primary inputs.
	inVars := make([]lit.Var, bv.nI)
	for j := range inVars {
		inVars[j] = bv.input(j)
	}
	r = m.ExistsVars(r, inVars)

	// Read the result back over the canonical state space.
	mgrStateSpace := func() *cube.Space {
		vars := make([]lit.Var, bv.nL)
		for k := range vars {
			vars[k] = bv.state(k)
		}
		return cube.NewSpace(vars)
	}()
	if opts.Restrict != nil {
		if len(opts.Restrict) != bv.nL {
			return nil, budget.None, fmt.Errorf("preimage: Restrict has %d positions, circuit has %d latches",
				len(opts.Restrict), bv.nL)
		}
		r = m.And(r, m.FromCube(mgrStateSpace, opts.Restrict))
	}
	stateSpace := StateSpace(c)
	states := canonicalize(stateSpace, m.ISOP(r, mgrStateSpace))

	return &Result{
		States:     states,
		StateSpace: stateSpace,
		Count:      m.SatCountIn(r, mgrStateSpace.Vars()),
		BDDNodes:   m.NumNodes(),
		Stats:      allsat.Stats{BDDNodes: m.NumNodes(), Kernel: m.Kernel()},
		Engine:     EngineBDD,
	}, budget.None, nil
}
