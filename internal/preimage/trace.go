package preimage

import (
	"fmt"
	"math/big"

	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/circuit"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
	"allsatpre/internal/sat"
	"allsatpre/internal/trans"
)

// ForwardReach iterates Image from the initial set until a fixpoint or
// maxSteps image computations — the forward dual of Reach, with the same
// budget semantics: one shared allowance, no fixpoint claims from
// truncated layers.
func ForwardReach(c *circuit.Circuit, init *cube.Cover, maxSteps int, opts Options) (*ReachResult, error) {
	opts.Budget = opts.Budget.Materialize()
	if useIncremental(opts) {
		return forwardReachIncremental(c, init, maxSteps, opts)
	}
	runStats := opts.Stats
	stateSpace := StateSpace(c)
	man := bdd.NewOrdered(stateSpace.Vars())

	initC := canonicalize(stateSpace, init)
	visited := man.FromCover(initC)
	res := &ReachResult{
		StateSpace:     stateSpace,
		Frontiers:      []*cube.Cover{initC},
		FrontierCounts: []*big.Int{man.SatCount(visited)},
	}
	frontier := initC
	for step := 0; maxSteps <= 0 || step < maxSteps; step++ {
		if frontier.Len() == 0 {
			res.Fixpoint = true
			break
		}
		if runStats != nil {
			opts.Stats = runStats.Phase(fmt.Sprintf("step%02d", step))
		}
		img, err := Image(c, frontier, opts)
		if err != nil {
			return nil, err
		}
		res.Steps++
		accumulate(&res.Stats, img.Stats)
		if img.BDDNodes > res.BDDNodes {
			res.BDDNodes = img.BDDNodes
		}
		if img.Aborted {
			res.Aborted = true
			if res.AbortReason == budget.None {
				res.AbortReason = img.AbortReason
			}
		}
		imgSet := man.FromCover(img.States)
		newSet := man.Diff(imgSet, visited)
		if newSet == bdd.False {
			if !img.Aborted {
				res.Fixpoint = true
			}
			break
		}
		visited = man.Or(visited, newSet)
		frontier = man.ISOP(newSet, stateSpace)
		res.Frontiers = append(res.Frontiers, frontier)
		res.FrontierCounts = append(res.FrontierCounts, man.SatCount(newSet))
		if img.Aborted {
			break
		}
	}
	res.All = man.ISOP(visited, stateSpace)
	res.AllCount = man.SatCount(visited)
	return res, nil
}

// Trace is a concrete counterexample: a state sequence and the input
// vectors driving it, with States[i+1] = δ(States[i], Inputs[i]).
type Trace struct {
	// States has length Steps+1; States[0] ∈ init, States[len-1] ∈ bad.
	States [][]bool
	// Inputs has length Steps.
	Inputs [][]bool
}

// Steps returns the number of transitions in the trace.
func (tr *Trace) Steps() int { return len(tr.Inputs) }

// CheckResult is the outcome of a reachability query.
type CheckResult struct {
	// Reachable reports whether some bad state is reachable from init.
	Reachable bool
	// Trace is a concrete witness when Reachable (nil otherwise).
	Trace *Trace
	// Steps is the distance of the witness, or the number of preimage
	// iterations performed before the fixpoint proof.
	Steps int
	// Complete is true when the answer is definitive: either a trace was
	// found, or the backward fixpoint proves unreachability. It is false
	// when maxSteps or a resource budget cut the iteration short.
	Complete bool
	// Aborted is true when a resource budget (not the maxSteps
	// parameter) ended the search before a verdict; AbortReason says
	// which limit tripped. A REACHABLE verdict is still trusted even if
	// some layer was truncated — every state in a partial layer is a
	// genuine predecessor — but no unreachability proof is possible.
	Aborted     bool
	AbortReason budget.Reason
	// Invariant, on a complete UNREACHABLE verdict, is an inductive
	// invariant certifying it: a state cover that contains init, excludes
	// bad, and is closed under the transition relation (its image is
	// contained in it). It is the complement of the backward-reachable
	// set. Verify it independently with VerifyInvariant.
	Invariant *cube.Cover
}

// VerifyInvariant checks the three conditions making inv a proof that bad
// is unreachable from init: init ⊆ inv, inv ∩ bad = ∅, and
// Img(inv) ⊆ inv. It recomputes the image with the given engine, so the
// certificate is checked by machinery independent of how it was found.
func VerifyInvariant(c *circuit.Circuit, init, bad, inv *cube.Cover, opts Options) error {
	stateSpace := StateSpace(c)
	man := bdd.NewOrdered(stateSpace.Vars())
	invSet := man.FromCover(canonicalize(stateSpace, inv))
	initSet := man.FromCover(canonicalize(stateSpace, init))
	badSet := man.FromCover(canonicalize(stateSpace, bad))
	if man.Diff(initSet, invSet) != bdd.False {
		return fmt.Errorf("preimage: invariant does not contain init")
	}
	if man.And(invSet, badSet) != bdd.False {
		return fmt.Errorf("preimage: invariant intersects bad")
	}
	img, err := Image(c, canonicalize(stateSpace, inv), opts)
	if err != nil {
		return err
	}
	imgSet := man.FromCover(img.States)
	if man.Diff(imgSet, invSet) != bdd.False {
		return fmt.Errorf("preimage: invariant is not inductive")
	}
	return nil
}

// CheckReachable decides whether any state of bad is reachable from any
// state of init, using backward reachability from bad (the paper's
// unbounded model-checking loop) and, on success, extracting a concrete
// input trace with one SAT query per step.
func CheckReachable(c *circuit.Circuit, init, bad *cube.Cover, maxSteps int, opts Options) (*CheckResult, error) {
	opts.Budget = opts.Budget.Materialize()
	stateSpace := StateSpace(c)
	man := bdd.NewOrdered(stateSpace.Vars())
	initSet := man.FromCover(canonicalize(stateSpace, init))

	// Backward layers from bad until init is hit or fixpoint.
	badC := canonicalize(stateSpace, bad)
	visited := man.FromCover(badC)
	layers := []bdd.Ref{visited}
	frontier := badC

	hitLayer := -1
	if man.And(initSet, visited) != bdd.False {
		hitLayer = 0
	}
	steps := 0
	for hitLayer < 0 {
		if maxSteps > 0 && steps >= maxSteps {
			return &CheckResult{Steps: steps}, nil
		}
		pre, err := Compute(c, frontier, opts)
		if err != nil {
			return nil, err
		}
		steps++
		preSet := man.FromCover(pre.States)
		newSet := man.Diff(preSet, visited)
		if newSet == bdd.False {
			if pre.Aborted {
				// A truncated layer that happens to add nothing proves
				// nothing: the missing predecessors may be exactly the
				// ones reaching init.
				return &CheckResult{
					Steps: steps, Aborted: true, AbortReason: pre.AbortReason,
				}, nil
			}
			inv := man.ISOP(man.Not(visited), stateSpace)
			return &CheckResult{Steps: steps, Complete: true, Invariant: inv}, nil
		}
		visited = man.Or(visited, newSet)
		layers = append(layers, newSet)
		frontier = man.ISOP(newSet, stateSpace)
		if man.And(initSet, newSet) != bdd.False {
			// Sound even from a truncated layer: every state in a partial
			// preimage is a genuine predecessor, so the trace exists.
			hitLayer = len(layers) - 1
		} else if pre.Aborted {
			return &CheckResult{
				Steps: steps, Aborted: true, AbortReason: pre.AbortReason,
			}, nil
		}
	}

	// Extract the trace: start at a state in init ∩ layers[hitLayer], then
	// step forward into layers[hitLayer-1], ..., layers[0].
	start := man.AnySat(man.And(initSet, layers[hitLayer]), stateSpace)
	cur := cubeToState(start)
	tr := &Trace{States: [][]bool{cur}}
	var stepper *traceStepper
	if opts.Incremental && hitLayer > 1 {
		// One persistent solver for the whole trace instead of a fresh
		// CNF + solver per layer. Any valid witness is acceptable, so the
		// (legal) model differences a warmed-up solver may produce do not
		// matter here.
		s, err := newTraceStepper(c)
		if err != nil {
			return nil, err
		}
		stepper = s
	}
	for k := hitLayer - 1; k >= 0; k-- {
		var in, next []bool
		var err error
		if stepper != nil {
			in, next, err = stepper.step(cur, man.ISOP(layers[k], stateSpace))
		} else {
			in, next, err = stepInto(c, cur, man.ISOP(layers[k], stateSpace))
		}
		if err != nil {
			return nil, fmt.Errorf("preimage: trace extraction at layer %d: %w", k, err)
		}
		tr.Inputs = append(tr.Inputs, in)
		tr.States = append(tr.States, next)
		cur = next
	}
	return &CheckResult{Reachable: true, Trace: tr, Steps: hitLayer, Complete: true}, nil
}

// cubeToState picks the concrete state of a cube (free positions → 0).
func cubeToState(cb cube.Cube) []bool {
	out := make([]bool, len(cb))
	for i, t := range cb {
		out[i] = t == lit.True
	}
	return out
}

// stepInto finds one input vector that moves the concrete state cur into
// the target set, returning the inputs and the successor state. It is a
// single incremental SAT query on the transition CNF.
func stepInto(c *circuit.Circuit, cur []bool, target *cube.Cover) (inputs, next []bool, err error) {
	inst, err := trans.NewInstance(c, target)
	if err != nil {
		return nil, nil, err
	}
	s := sat.FromFormula(inst.F, sat.DefaultOptions())
	var assume []lit.Lit
	for i, v := range inst.StateVars {
		assume = append(assume, lit.New(v, !cur[i]))
	}
	switch s.Solve(assume...) {
	case sat.Sat:
	case sat.Unsat:
		return nil, nil, fmt.Errorf("no transition from %v into the layer", cur)
	default:
		return nil, nil, fmt.Errorf("budget exhausted during trace extraction")
	}
	m := s.Model()
	inputs = make([]bool, len(inst.InputVars))
	for i, v := range inst.InputVars {
		inputs[i] = m[v]
	}
	next = make([]bool, len(inst.NextVars))
	for i, v := range inst.NextVars {
		next[i] = m[v]
	}
	return inputs, next, nil
}
