package preimage

import (
	"fmt"
	"testing"

	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/gen"
	"allsatpre/internal/stats"
	"allsatpre/internal/trans"
)

// compareReach checks the fields the incremental path promises to
// reproduce bit-identically: frontiers (as sorted cube lists), exact
// counts, step count, and the Fixpoint/Aborted verdicts. Stats and
// BDDNodes legitimately differ (persistent managers, session-global
// accounting) and are not compared.
func compareReach(t *testing.T, label string, inc, ref *ReachResult) {
	t.Helper()
	if inc.Steps != ref.Steps {
		t.Fatalf("%s: steps %d, want %d", label, inc.Steps, ref.Steps)
	}
	if inc.Fixpoint != ref.Fixpoint {
		t.Fatalf("%s: fixpoint %v, want %v", label, inc.Fixpoint, ref.Fixpoint)
	}
	if inc.Aborted != ref.Aborted {
		t.Fatalf("%s: aborted %v, want %v", label, inc.Aborted, ref.Aborted)
	}
	if inc.AllCount.Cmp(ref.AllCount) != 0 {
		t.Fatalf("%s: all-count %v, want %v", label, inc.AllCount, ref.AllCount)
	}
	if len(inc.Frontiers) != len(ref.Frontiers) {
		t.Fatalf("%s: %d frontiers, want %d", label, len(inc.Frontiers), len(ref.Frontiers))
	}
	for k := range ref.Frontiers {
		if inc.FrontierCounts[k].Cmp(ref.FrontierCounts[k]) != 0 {
			t.Fatalf("%s: frontier %d count %v, want %v",
				label, k, inc.FrontierCounts[k], ref.FrontierCounts[k])
		}
		ik, rk := inc.Frontiers[k].SortedKeys(), ref.Frontiers[k].SortedKeys()
		if len(ik) != len(rk) {
			t.Fatalf("%s: frontier %d has %d cubes, want %d", label, k, len(ik), len(rk))
		}
		for i := range rk {
			if ik[i] != rk[i] {
				t.Fatalf("%s: frontier %d cube %d = %s, want %s", label, k, i, ik[i], rk[i])
			}
		}
	}
	ia, ra := inc.All.SortedKeys(), ref.All.SortedKeys()
	if len(ia) != len(ra) {
		t.Fatalf("%s: All has %d cubes, want %d", label, len(ia), len(ra))
	}
	for i := range ra {
		if ia[i] != ra[i] {
			t.Fatalf("%s: All cube %d = %s, want %s", label, i, ia[i], ra[i])
		}
	}
}

// TestIncrementalReachMatchesFresh is the incremental-equivalence
// contract over the determinism suite: for every circuit and worker
// count, the session-backed Reach must reproduce the fresh-instance
// Reach bit-for-bit.
func TestIncrementalReachMatchesFresh(t *testing.T) {
	for _, nc := range determinismSuite() {
		target := wideTarget(len(nc.Circuit.Latches))
		ref, err := Reach(nc.Circuit, target, 4, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			inc, err := Reach(nc.Circuit, target, 4, Options{Incremental: true, Parallel: workers})
			if err != nil {
				t.Fatal(err)
			}
			compareReach(t, fmt.Sprintf("%s/w%d", nc.Name, workers), inc, ref)
		}
	}
}

// TestIncrementalReachAblationsMatchFresh repeats the contract under the
// option axes that change the projection order or the frontier handed to
// the next step.
func TestIncrementalReachAblationsMatchFresh(t *testing.T) {
	c := gen.SLike(gen.SLikeParams{Seed: 1, Inputs: 6, Latches: 6, Gates: 60})
	target := wideTarget(6)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"frontier-simplify", Options{FrontierSimplify: true}},
		{"input-first", Options{InputFirstOrder: true}},
		{"interleave", Options{Interleave: true}},
	} {
		ref, err := Reach(c, target, 4, tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		opts := tc.opts
		opts.Incremental = true
		opts.Parallel = 2
		inc, err := Reach(c, target, 4, opts)
		if err != nil {
			t.Fatal(err)
		}
		compareReach(t, tc.name, inc, ref)
	}
}

func TestIncrementalReachEmptyTarget(t *testing.T) {
	c := gen.Counter(4, true, false)
	empty := trans.TargetFromPatterns(4)
	ref, err := Reach(c, empty, -1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := Reach(c, empty, -1, Options{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	compareReach(t, "empty-target", inc, ref)
	if !inc.Fixpoint || inc.Steps != 0 || inc.AllCount.Sign() != 0 {
		t.Fatalf("empty target: %+v", inc)
	}
}

// TestIncrementalKStepMatchesFresh: the BFS-union session path must
// reproduce the unrolled-formula KStepPreimage exactly on unbudgeted
// runs — same state cover, same count.
func TestIncrementalKStepMatchesFresh(t *testing.T) {
	suite := []gen.NamedCircuit{
		{Name: "counter8", Circuit: gen.Counter(8, true, false)},
		{Name: "traffic", Circuit: gen.TrafficLight()},
		{Name: "slike1", Circuit: gen.SLike(gen.SLikeParams{Seed: 1, Inputs: 6, Latches: 6, Gates: 60})},
	}
	for _, nc := range suite {
		target := wideTarget(len(nc.Circuit.Latches))
		for _, k := range []int{0, 1, 3} {
			ref, err := KStepPreimage(nc.Circuit, target, k, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				inc, err := KStepPreimage(nc.Circuit, target, k,
					Options{Incremental: true, Parallel: workers})
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%s/k%d/w%d", nc.Name, k, workers)
				if inc.Aborted != ref.Aborted {
					t.Fatalf("%s: aborted %v, want %v", label, inc.Aborted, ref.Aborted)
				}
				if inc.Count.Cmp(ref.Count) != 0 {
					t.Fatalf("%s: count %v, want %v", label, inc.Count, ref.Count)
				}
				ik, rk := inc.States.SortedKeys(), ref.States.SortedKeys()
				if len(ik) != len(rk) {
					t.Fatalf("%s: %d cubes, want %d", label, len(ik), len(rk))
				}
				for i := range rk {
					if ik[i] != rk[i] {
						t.Fatalf("%s: cube %d = %s, want %s", label, i, ik[i], rk[i])
					}
				}
			}
		}
	}
}

func TestIncrementalForwardReachMatchesFresh(t *testing.T) {
	for _, nc := range []gen.NamedCircuit{
		{Name: "counter4", Circuit: gen.Counter(4, true, false)},
		{Name: "johnson4", Circuit: gen.Johnson(4)},
		{Name: "slike1", Circuit: gen.SLike(gen.SLikeParams{Seed: 1, Inputs: 6, Latches: 6, Gates: 60})},
	} {
		nL := len(nc.Circuit.Latches)
		pat := make([]byte, nL)
		for i := range pat {
			pat[i] = '0'
		}
		init := trans.TargetFromPatterns(nL, string(pat))
		ref, err := ForwardReach(nc.Circuit, init, 3, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			inc, err := ForwardReach(nc.Circuit, init, 3,
				Options{Incremental: true, Parallel: workers})
			if err != nil {
				t.Fatal(err)
			}
			compareReach(t, fmt.Sprintf("%s/w%d", nc.Name, workers), inc, ref)
		}
	}
}

// TestIncrementalReachAbortSoundness: under a mid-run or pre-expired
// budget the incremental path must report the abort and stay a sound
// under-approximation of the unbudgeted reach. Bit-identity is not
// promised under abort — the session budget is global, so abort timing
// differs from per-step fresh instances.
func TestIncrementalReachAbortSoundness(t *testing.T) {
	c := gen.SLike(gen.SLikeParams{Seed: 2, Inputs: 8, Latches: 8, Gates: 120})
	target := wideTarget(8)
	full, err := Reach(c, target, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := bdd.NewOrdered(full.StateSpace.Vars())
	fullSet := m.FromCover(full.All)

	for _, bud := range []budget.Budget{
		{MaxDecisions: 10},
		expiredBudget(),
	} {
		for _, workers := range []int{1, 4} {
			inc, err := Reach(c, target, 4, Options{
				Incremental: true, Parallel: workers, Budget: bud,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !inc.Aborted {
				t.Fatalf("w%d: budget %+v not reported as abort", workers, bud)
			}
			if inc.Fixpoint {
				t.Fatalf("w%d: aborted run claimed a fixpoint", workers)
			}
			if m.Diff(m.FromCover(inc.All), fullSet) != bdd.False {
				t.Fatalf("w%d: aborted reach reported states outside the true reach set", workers)
			}
		}
	}
}

func TestCheckReachableIncrementalTrace(t *testing.T) {
	c := gen.Counter(4, true, false)
	init := trans.TargetFromPatterns(4, "0000")
	bad := trans.TargetFromPatterns(4, "1010")
	res, err := CheckReachable(c, init, bad, -1, Options{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable || !res.Complete || res.Steps != 5 {
		t.Fatalf("incremental trace extraction: %+v", res)
	}
	validateTrace(t, c, init, bad, res.Trace)
}

// TestIncrementalReachPublishesStats: the incr.* keys must appear and
// the retention counters must show the session actually carried state
// across steps (clauses retired on every retarget, encode time saved).
func TestIncrementalReachPublishesStats(t *testing.T) {
	c := gen.SLike(gen.SLikeParams{Seed: 2, Inputs: 8, Latches: 8, Gates: 120})
	reg := stats.NewRegistry("run")
	_, err := Reach(c, wideTarget(8), 3, Options{Incremental: true, Stats: reg})
	if err != nil {
		t.Fatal(err)
	}
	steps := reg.Counter("incr.steps").Load()
	if steps < 2 {
		t.Fatalf("incr.steps = %d, want >= 2", steps)
	}
	if reg.Counter("incr.clauses-added").Load() == 0 {
		t.Error("incr.clauses-added stayed zero")
	}
	if reg.Counter("incr.clauses-retired").Load() == 0 {
		t.Error("incr.clauses-retired stayed zero: retargeting did not retire the old group")
	}
	if reg.Counter("incr.act-vars-retired").Load() == 0 {
		t.Error("incr.act-vars-retired stayed zero")
	}
}
