package preimage

import (
	"testing"

	"allsatpre/internal/circuit"
	"allsatpre/internal/gen"
	"allsatpre/internal/lit"
	"allsatpre/internal/trans"
)

func TestWitnessIteratorFirstWitnessSimulates(t *testing.T) {
	c := gen.Counter(5, true, false)
	target := trans.TargetFromPatterns(5, "10110") // state 13
	wi, err := NewWitnessIterator(c, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := circuit.NewSimulator(c)
	count := 0
	for {
		w, ok := wi.Next()
		if !ok {
			break
		}
		count++
		// Complete free positions with zeros and simulate.
		st := make([]bool, 5)
		for i, tv := range w.State {
			st[i] = tv == lit.True
		}
		in := make([]bool, 1)
		for i, tv := range w.Inputs {
			in[i] = tv == lit.True
		}
		_, next := sim.Step(st, in)
		m := make([]bool, 5)
		copy(m, next)
		if !target.Contains(m) {
			t.Fatalf("witness (%s, %s) does not land in the target", w.State, w.Inputs)
		}
	}
	if count == 0 {
		t.Fatal("no witnesses for a reachable target")
	}
	if wi.Stats().Solutions == 0 {
		t.Fatal("stats missing")
	}
}

func TestWitnessIteratorEarlyStop(t *testing.T) {
	c := gen.SLike(gen.SLikeParams{Seed: 2, Inputs: 8, Latches: 8, Gates: 120})
	// A broad target: full enumeration would take many iterations, but
	// the first witness must come back immediately.
	target := trans.TargetFromPatterns(8, "1XXXXXXX")
	wi, err := NewWitnessIterator(c, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := wi.Next(); !ok {
		t.Fatal("expected at least one witness")
	}
	if wi.Stats().Solutions != 1 {
		t.Fatalf("one pull should cost one solve, got %d", wi.Stats().Solutions)
	}
}

func TestWitnessIteratorWidthError(t *testing.T) {
	c := gen.Counter(3, true, false)
	if _, err := NewWitnessIterator(c, trans.TargetFromPatterns(2, "11"), Options{}); err == nil {
		t.Fatal("expected width error")
	}
}

func TestWitnessIteratorAgreesWithPreimage(t *testing.T) {
	// The set of witness states must equal the preimage state set.
	c := gen.TrafficLight()
	target := trans.TargetFromPatterns(5, "010XX")
	wi, err := NewWitnessIterator(c, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	states := map[int]bool{}
	for {
		w, ok := wi.Next()
		if !ok {
			break
		}
		// Expand free state bits.
		n := len(w.State)
		for x := 0; x < 1<<uint(n); x++ {
			m := make([]bool, n)
			okM := true
			for i := 0; i < n; i++ {
				m[i] = x&(1<<uint(i)) != 0
				if w.State[i] != lit.Unknown && (w.State[i] == lit.True) != m[i] {
					okM = false
					break
				}
			}
			if okM {
				states[x] = true
			}
		}
	}
	pre, err := Compute(c, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := coverSet(t, pre.States)
	if len(states) != len(want) {
		t.Fatalf("witness states %d, preimage %d", len(states), len(want))
	}
	for x := range want {
		if !states[x] {
			t.Fatalf("missing witness state %b", x)
		}
	}
}
