package preimage

import (
	"testing"

	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/cube"
	"allsatpre/internal/gen"
	"allsatpre/internal/trans"
)

// determinismSuite is the seed-circuit subset the worker-count
// determinism tests sweep (the larger Suite members are exercised by the
// benchmarks; here runtime matters because every circuit runs at four
// worker counts).
func determinismSuite() []gen.NamedCircuit {
	return []gen.NamedCircuit{
		{Name: "counter8", Circuit: gen.Counter(8, true, false)},
		{Name: "shift8", Circuit: gen.ShiftRegister(8)},
		{Name: "lfsr8", Circuit: gen.LFSR(8, 0, 3, 4, 5)},
		{Name: "gray6", Circuit: gen.GrayCounter(6)},
		{Name: "traffic", Circuit: gen.TrafficLight()},
		{Name: "slike1", Circuit: gen.SLike(gen.SLikeParams{Seed: 1, Inputs: 6, Latches: 6, Gates: 60})},
		{Name: "slike2", Circuit: gen.SLike(gen.SLikeParams{Seed: 2, Inputs: 8, Latches: 8, Gates: 120})},
	}
}

// TestDeterministicCoverAcrossWorkers is the parallel-enumeration
// determinism contract: for every seed circuit the merged success-driven
// preimage cover must be bit-identical — same sorted cube list, same
// model count, same canonical BDD — across workers ∈ {1, 2, 4, 8} and
// equal to the sequential enumerator's cover.
// wideTarget builds a mostly-free target pattern (two fixed bits) so the
// preimage is non-trivial on every suite circuit — fully fixed patterns
// propagate to empty or tiny preimages on the slike instances, which
// would let the sweep pass vacuously.
func wideTarget(nL int) *cube.Cover {
	pat := make([]byte, nL)
	for i := range pat {
		pat[i] = 'X'
	}
	pat[1] = '1'
	if nL > 4 {
		pat[4] = '0'
	}
	return trans.TargetFromPatterns(nL, string(pat))
}

func TestDeterministicCoverAcrossWorkers(t *testing.T) {
	for _, nc := range determinismSuite() {
		target := wideTarget(len(nc.Circuit.Latches))

		seq, err := Compute(nc.Circuit, target, Options{})
		if err != nil {
			t.Fatal(err)
		}
		seqKeys := seq.States.SortedKeys()
		m := bdd.NewOrdered(seq.StateSpace.Vars())
		seqSet := m.FromCover(seq.States)

		for _, workers := range []int{1, 2, 4, 8} {
			par, err := Compute(nc.Circuit, target, Options{Parallel: workers})
			if err != nil {
				t.Fatal(err)
			}
			if par.Aborted {
				t.Fatalf("%s/p%d: spurious abort (%v)", nc.Name, workers, par.AbortReason)
			}
			if par.Count.Cmp(seq.Count) != 0 {
				t.Fatalf("%s/p%d: count %v, want %v", nc.Name, workers, par.Count, seq.Count)
			}
			if m.FromCover(par.States) != seqSet {
				t.Fatalf("%s/p%d: canonical state set differs", nc.Name, workers)
			}
			keys := par.States.SortedKeys()
			if len(keys) != len(seqKeys) {
				t.Fatalf("%s/p%d: %d cubes, want %d", nc.Name, workers, len(keys), len(seqKeys))
			}
			for i := range keys {
				if keys[i] != seqKeys[i] {
					t.Fatalf("%s/p%d: cube %d = %s, want %s",
						nc.Name, workers, i, keys[i], seqKeys[i])
				}
			}
		}
	}
}

// TestAbortSoundnessAcrossWorkers injects a mid-run decision budget at
// every worker count: the run must report the abort with its reason, and
// the partial cover must stay a subset of the true preimage. (Exact
// cube-level determinism is not promised under abort — which subcubes
// completed is scheduling-dependent — soundness and abort reporting
// are.)
func TestAbortSoundnessAcrossWorkers(t *testing.T) {
	c := gen.SLike(gen.SLikeParams{Seed: 2, Inputs: 8, Latches: 8, Gates: 120})
	// ~2k decisions sequentially, so a 10-decision budget trips mid-run.
	target := trans.TargetFromPatterns(8, "X1XXXXXX")

	full, err := Compute(c, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := bdd.NewOrdered(full.StateSpace.Vars())
	fullSet := m.FromCover(full.States)

	sawAbort := false
	for _, workers := range []int{1, 2, 4, 8} {
		par, err := Compute(c, target, Options{
			Parallel: workers,
			Budget:   budget.Budget{MaxDecisions: 10},
		})
		if err != nil {
			t.Fatal(err)
		}
		if par.Aborted {
			sawAbort = true
			if par.AbortReason != budget.Decisions {
				t.Fatalf("p%d: abort reason %v, want decisions", workers, par.AbortReason)
			}
		}
		if extra := m.Diff(m.FromCover(par.States), fullSet); extra != bdd.False {
			t.Fatalf("p%d: aborted cover is not a subset of the full preimage", workers)
		}
	}
	if !sawAbort {
		t.Fatal("a 10-decision budget never aborted the 8-latch instance")
	}
}

// TestDeterministicCoverBlockingEngines extends the sweep to the
// blocking/lifting engines: their covers are representation-dependent in
// parallel (per-subcube solvers lift differently), so the contract is
// set-level — identical canonical BDD and count at every worker count.
func TestDeterministicCoverBlockingEngines(t *testing.T) {
	for _, nc := range []gen.NamedCircuit{
		{Name: "gray6", Circuit: gen.GrayCounter(6)},
		{Name: "slike1", Circuit: gen.SLike(gen.SLikeParams{Seed: 1, Inputs: 6, Latches: 6, Gates: 60})},
	} {
		target := wideTarget(len(nc.Circuit.Latches))
		for _, eng := range []Engine{EngineBlocking, EngineLifting} {
			seq, err := Compute(nc.Circuit, target, Options{Engine: eng})
			if err != nil {
				t.Fatal(err)
			}
			m := bdd.NewOrdered(seq.StateSpace.Vars())
			seqSet := m.FromCover(seq.States)
			for _, workers := range []int{2, 4, 8} {
				par, err := Compute(nc.Circuit, target, Options{Engine: eng, Parallel: workers})
				if err != nil {
					t.Fatal(err)
				}
				if par.Count.Cmp(seq.Count) != 0 || m.FromCover(par.States) != seqSet {
					t.Fatalf("%s/%v/p%d: parallel state set differs", nc.Name, eng, workers)
				}
			}
		}
	}
}

// TestDeterministicCoverDisjointEngine checks the blocking-clause-free
// engine end to end: on each suite circuit its preimage must denote the
// same state set (canonical BDD and count) as the success-driven
// reference — and as the blocking baseline on one circuit — at every
// worker count, while adding zero blocking clauses.
func TestDeterministicCoverDisjointEngine(t *testing.T) {
	for _, nc := range []gen.NamedCircuit{
		{Name: "gray6", Circuit: gen.GrayCounter(6)},
		{Name: "counter8", Circuit: gen.Counter(8, true, false)},
		{Name: "slike1", Circuit: gen.SLike(gen.SLikeParams{Seed: 1, Inputs: 6, Latches: 6, Gates: 60})},
	} {
		target := wideTarget(len(nc.Circuit.Latches))
		ref, err := Compute(nc.Circuit, target, Options{})
		if err != nil {
			t.Fatal(err)
		}
		m := bdd.NewOrdered(ref.StateSpace.Vars())
		refSet := m.FromCover(ref.States)

		for _, workers := range []int{1, 2, 4, 8} {
			dis, err := Compute(nc.Circuit, target, Options{Engine: EngineDisjoint, Parallel: workers})
			if err != nil {
				t.Fatal(err)
			}
			if dis.Aborted {
				t.Fatalf("%s/p%d: spurious abort (%v)", nc.Name, workers, dis.AbortReason)
			}
			if dis.Count.Cmp(ref.Count) != 0 {
				t.Fatalf("%s/p%d: count %v, want %v", nc.Name, workers, dis.Count, ref.Count)
			}
			if m.FromCover(dis.States) != refSet {
				t.Fatalf("%s/p%d: disjoint state set differs from success-driven", nc.Name, workers)
			}
			if dis.Stats.BlockingClauses != 0 {
				t.Fatalf("%s/p%d: %d blocking clauses added by the blocking-free engine",
					nc.Name, workers, dis.Stats.BlockingClauses)
			}
		}
	}

	// Cross-check against the blocking baseline on one circuit.
	c := gen.GrayCounter(6)
	target := wideTarget(6)
	blk, err := Compute(c, target, Options{Engine: EngineBlocking})
	if err != nil {
		t.Fatal(err)
	}
	dis, err := Compute(c, target, Options{Engine: EngineDisjoint})
	if err != nil {
		t.Fatal(err)
	}
	m := bdd.NewOrdered(blk.StateSpace.Vars())
	if dis.Count.Cmp(blk.Count) != 0 || m.FromCover(dis.States) != m.FromCover(blk.States) {
		t.Fatal("disjoint state set differs from blocking baseline")
	}
}

// TestDeterministicCoverBDDEngine covers the fourth engine: the sliced
// parallel BDD path must agree with the monolithic relational product.
func TestDeterministicCoverBDDEngine(t *testing.T) {
	c := gen.Counter(6, true, false)
	target := trans.TargetFromPatterns(6, "01X01X")
	seq, err := Compute(c, target, Options{Engine: EngineBDD})
	if err != nil {
		t.Fatal(err)
	}
	m := bdd.NewOrdered(seq.StateSpace.Vars())
	seqSet := m.FromCover(seq.States)
	for _, workers := range []int{2, 4, 8} {
		par, err := Compute(c, target, Options{Engine: EngineBDD, Parallel: workers})
		if err != nil {
			t.Fatal(err)
		}
		if par.Count.Cmp(seq.Count) != 0 || m.FromCover(par.States) != seqSet {
			t.Fatalf("bdd/p%d: parallel state set differs", workers)
		}
	}
}
