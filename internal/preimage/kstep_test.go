package preimage

import (
	"math/big"
	"testing"

	"allsatpre/internal/bdd"
	"allsatpre/internal/circuit"
	"allsatpre/internal/cube"
	"allsatpre/internal/gen"
	"allsatpre/internal/trans"
)

// reachUnion computes the union of the first k+1 backward layers via the
// iterated engine, as ground truth for the one-shot unrolled version.
func reachUnion(t *testing.T, c *circuit.Circuit, target *cube.Cover, k int) (*cube.Cover, *big.Int) {
	t.Helper()
	if k == 0 {
		// Reach treats maxSteps<=0 as "run to fixpoint"; distance 0 is
		// just the target set itself.
		sp := StateSpace(c)
		man := bdd.NewOrdered(sp.Vars())
		set := man.FromCover(canonicalize(sp, target))
		return man.ToCover(set, sp), man.SatCount(set)
	}
	r, err := Reach(c, target, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r.All, r.AllCount
}

func sameCoverSets(t *testing.T, tag string, a, b *cube.Cover) {
	t.Helper()
	if !a.Equal(b) {
		t.Fatalf("%s: covers differ\nA:\n%sB:\n%s", tag, a, b)
	}
}

func TestKStepEqualsIteratedReach(t *testing.T) {
	cases := []struct {
		c      *circuit.Circuit
		target *cube.Cover
		k      int
	}{
		{gen.Counter(4, true, false), trans.TargetFromPatterns(4, "1111"), 0},
		{gen.Counter(4, true, false), trans.TargetFromPatterns(4, "1111"), 1},
		{gen.Counter(4, true, false), trans.TargetFromPatterns(4, "1111"), 5},
		{gen.Johnson(4), trans.TargetFromPatterns(4, "1111"), 3},
		{gen.ShiftRegister(4), trans.TargetFromPatterns(4, "1001"), 2},
		{gen.TrafficLight(), trans.TargetFromPatterns(5, "010XX"), 3},
		{gen.SLike(gen.SLikeParams{Seed: 91, Inputs: 4, Latches: 4, Gates: 25}),
			trans.TargetFromPatterns(4, "01X0"), 3},
	}
	for _, tc := range cases {
		want, wantCount := reachUnion(t, tc.c, tc.target, tc.k)
		for _, eng := range []Engine{EngineSuccessDriven, EngineBlocking, EngineLifting} {
			r, err := KStepPreimage(tc.c, tc.target, tc.k, Options{Engine: eng})
			if err != nil {
				t.Fatalf("%s k=%d %v: %v", tc.c.Name, tc.k, eng, err)
			}
			if r.Count.Cmp(wantCount) != 0 {
				t.Fatalf("%s k=%d %v: count %v, want %v", tc.c.Name, tc.k, eng, r.Count, wantCount)
			}
			sameCoverSets(t, tc.c.Name, r.States, want)
		}
	}
}

func TestKStepZeroIsTargetItself(t *testing.T) {
	c := gen.Counter(3, true, false)
	target := trans.TargetFromPatterns(3, "101", "010")
	r, err := KStepPreimage(c, target, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Count.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("k=0 should return the target states, got %v", r.Count)
	}
}

func TestKStepGrowsMonotonically(t *testing.T) {
	c := gen.Counter(4, true, false)
	target := trans.TargetFromPatterns(4, "0000")
	man := bdd.NewOrdered(StateSpace(c).Vars())
	prev := bdd.False
	for k := 0; k <= 6; k++ {
		r, err := KStepPreimage(c, target, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		set := man.FromCover(r.States)
		if man.Diff(prev, set) != bdd.False {
			t.Fatalf("k=%d lost states from k-1", k)
		}
		if r.Count.Cmp(big.NewInt(int64(k+1))) != 0 {
			t.Fatalf("k=%d: count %v, want %d", k, r.Count, k+1)
		}
		prev = set
	}
}

func TestKStepErrors(t *testing.T) {
	c := gen.Counter(3, true, false)
	target := trans.TargetFromPatterns(3, "000")
	if _, err := KStepPreimage(c, target, 2, Options{Engine: EngineBDD}); err == nil {
		t.Fatal("BDD engine should be rejected")
	}
	if _, err := KStepPreimage(c, target, -1, Options{}); err == nil {
		t.Fatal("negative k should be rejected")
	}
	if _, err := KStepPreimage(c, trans.TargetFromPatterns(2, "00"), 1, Options{}); err == nil {
		t.Fatal("width mismatch should be rejected")
	}
	if _, err := KStepPreimage(c, target, 1, Options{Engine: Engine(9)}); err == nil {
		t.Fatal("unknown engine should be rejected")
	}
}

func TestKStepEmptyTarget(t *testing.T) {
	c := gen.Counter(3, true, false)
	empty := cube.NewCover(StateSpace(c))
	r, err := KStepPreimage(c, empty, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Count.Sign() != 0 {
		t.Fatal("empty target should have empty k-step preimage")
	}
}
