package preimage

// Equivalence suite for the projection-safe preprocessor: with Simplify
// on, every engine must produce exactly the state set it produces with
// the pass off — same SatCount, same canonical BDD — at every worker
// count, aborted runs must stay subset-sound, and the frozen projection
// variables must never be eliminated. These tests are the CI gate behind
// the simplifier's central claim ("covers are identical either way").

import (
	"math/rand"
	"testing"

	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/gen"
	"allsatpre/internal/lit"
	"allsatpre/internal/sat"
	"allsatpre/internal/simplify"
	"allsatpre/internal/trans"
)

// TestSimplifyEquivalenceAllEngines sweeps all five engines over the
// determinism suite at workers ∈ {1, 2, 4, 8}: the simplified cover must
// denote the same state set (canonical BDD) with the same model count as
// the unsimplified reference. The BDD engine never sees the CNF, so its
// rows double as a no-op check of the option plumbing.
func TestSimplifyEquivalenceAllEngines(t *testing.T) {
	engines := []Engine{
		EngineSuccessDriven, EngineBlocking, EngineLifting, EngineDisjoint, EngineBDD,
	}
	for _, nc := range determinismSuite() {
		target := wideTarget(len(nc.Circuit.Latches))
		for _, eng := range engines {
			if (eng == EngineBlocking || eng == EngineLifting) && nc.Name == "slike2" {
				// The per-minterm baselines need minutes on the widest
				// random workload (the blowup the paper measures); the
				// engine×simplify contract is covered by the six others.
				continue
			}
			ref, err := Compute(nc.Circuit, target, Options{Engine: eng, Simplify: simplify.Off})
			if err != nil {
				t.Fatal(err)
			}
			m := bdd.NewOrdered(ref.StateSpace.Vars())
			refSet := m.FromCover(ref.States)
			for _, workers := range []int{1, 2, 4, 8} {
				got, err := Compute(nc.Circuit, target,
					Options{Engine: eng, Simplify: simplify.On, Parallel: workers})
				if err != nil {
					t.Fatal(err)
				}
				if got.Aborted {
					t.Fatalf("%s/%v/p%d: spurious abort (%v)", nc.Name, eng, workers, got.AbortReason)
				}
				if got.Count.Cmp(ref.Count) != 0 {
					t.Fatalf("%s/%v/p%d: simplified count %v, want %v",
						nc.Name, eng, workers, got.Count, ref.Count)
				}
				if m.FromCover(got.States) != refSet {
					t.Fatalf("%s/%v/p%d: simplified cover denotes a different state set",
						nc.Name, eng, workers)
				}
			}
		}
	}
}

// TestSimplifyAbortSubsetSound injects decision budgets that trip after
// preprocessing: an aborted simplified run must report the abort and its
// partial cover must be a subset of the true (unsimplified) preimage at
// every worker count. A pre-expired budget (cancelled context) must
// abort at the entry point with an empty — vacuously sound — cover.
func TestSimplifyAbortSubsetSound(t *testing.T) {
	c := gen.SLike(gen.SLikeParams{Seed: 2, Inputs: 8, Latches: 8, Gates: 120})
	target := trans.TargetFromPatterns(8, "X1XXXXXX")

	full, err := Compute(c, target, Options{Simplify: simplify.Off})
	if err != nil {
		t.Fatal(err)
	}
	m := bdd.NewOrdered(full.StateSpace.Vars())
	fullSet := m.FromCover(full.States)

	sawAbort := false
	for _, workers := range []int{1, 2, 4, 8} {
		for _, maxDecisions := range []uint64{1, 5, 20} {
			par, err := Compute(c, target, Options{
				Simplify: simplify.On,
				Parallel: workers,
				Budget:   budget.Budget{MaxDecisions: maxDecisions},
			})
			if err != nil {
				t.Fatal(err)
			}
			if par.Aborted {
				sawAbort = true
				if par.AbortReason != budget.Decisions {
					t.Fatalf("p%d/d%d: abort reason %v, want decisions",
						workers, maxDecisions, par.AbortReason)
				}
			} else if par.Count.Cmp(full.Count) != 0 {
				t.Fatalf("p%d/d%d: un-aborted run with wrong count %v, want %v",
					workers, maxDecisions, par.Count, full.Count)
			}
			if extra := m.Diff(m.FromCover(par.States), fullSet); extra != bdd.False {
				t.Fatalf("p%d/d%d: aborted simplified cover is not a subset of the preimage",
					workers, maxDecisions)
			}
		}
	}
	if !sawAbort {
		t.Fatal("no decision budget ever aborted the simplified 8-latch instance")
	}
}

// TestSimplifyFrozenProjectionVarsSurvive is the frozen-set regression:
// on a real transition instance with every projection-relevant variable
// frozen (state, input, next-state), the pass may eliminate only
// auxiliary Tseitin variables, and frozen variables fixed by the target
// constraint must come back as re-emitted unit clauses, not disappear.
func TestSimplifyFrozenProjectionVarsSurvive(t *testing.T) {
	c := gen.SLike(gen.SLikeParams{Seed: 3, Inputs: 6, Latches: 6, Gates: 80})
	// A single target cube with four fixed positions: after constraint
	// propagation those next-state variables are forced, i.e. frozen AND
	// fixed. (A fully fixed cube would make this instance UNSAT — that
	// state has an empty preimage — which proves nothing here.)
	pattern := "10XX01"
	target := trans.TargetFromPatterns(6, pattern)
	inst, err := trans.NewInstance(c, target)
	if err != nil {
		t.Fatal(err)
	}
	frozen := make(map[lit.Var]bool)
	for _, vs := range [][]lit.Var{inst.StateVars, inst.InputVars, inst.NextVars} {
		for _, v := range vs {
			frozen[v] = true
		}
	}
	res := simplify.Run(inst.F, func(v lit.Var) bool { return frozen[v] }, simplify.Options{})
	if res.Stats.VarsEliminated == 0 {
		t.Fatal("the pass eliminated nothing on an 80-gate instance — the regression is vacuous")
	}
	for v := range frozen {
		if res.Eliminated(v) {
			t.Fatalf("frozen projection variable %d was eliminated", v)
		}
	}
	// Every forced next-state variable must survive as a unit clause so
	// downstream solvers still see the target constraint.
	for i, v := range inst.NextVars {
		if pattern[i] == 'X' {
			continue
		}
		want := lit.New(v, pattern[i] == '0')
		found := false
		for _, cl := range inst.F.Clauses {
			if len(cl) == 1 && cl[0] == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("unit %v for forced frozen next-state var %d not re-emitted", want, v)
		}
	}
}

// TestSimplifyWitnessReconstructionGenCircuits is the witness property
// test on real circuit CNFs: for randomized generated circuits, any
// model of the simplified transition formula extended through the
// elimination stack must be a total model of the original formula. The
// runs diversify the models with random assumption cubes over the frozen
// state variables.
func TestSimplifyWitnessReconstructionGenCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	suite := []gen.NamedCircuit{
		{Name: "counter6", Circuit: gen.Counter(6, true, false)},
		{Name: "gray5", Circuit: gen.GrayCounter(5)},
		{Name: "shift6", Circuit: gen.ShiftRegister(6)},
	}
	for seed := int64(1); seed <= 6; seed++ {
		suite = append(suite, gen.NamedCircuit{
			Name: "slike-rand",
			Circuit: gen.SLike(gen.SLikeParams{
				Seed:    seed,
				Inputs:  2 + int(seed)%5,
				Latches: 3 + int(seed)%4,
				Gates:   20 + 15*int(seed),
			}),
		})
	}
	for _, nc := range suite {
		inst, err := trans.NewBaseInstance(nc.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		orig := inst.F.Clone()
		frozen := make(map[lit.Var]bool)
		// Freeze only the state variables — the widest elimination the
		// one-step preimage needs, so the reconstruction covers inputs
		// and next-state vars too when they get eliminated.
		for _, v := range inst.StateVars {
			frozen[v] = true
		}
		res := simplify.Run(inst.F, func(v lit.Var) bool { return frozen[v] }, simplify.Options{})
		if res.Unsat {
			t.Fatalf("%s: base transition formula simplified to UNSAT", nc.Name)
		}
		for trial := 0; trial < 10; trial++ {
			s := sat.FromFormula(inst.F, sat.DefaultOptions())
			// Pin a random subset of the frozen state vars to hit
			// different regions of the solution space.
			var assume []lit.Lit
			for _, v := range inst.StateVars {
				if rng.Intn(2) == 0 {
					assume = append(assume, lit.New(v, rng.Intn(2) == 0))
				}
			}
			switch s.Solve(assume...) {
			case sat.Sat:
			case sat.Unsat:
				continue // this state cube has no transition; pick another
			default:
				t.Fatalf("%s: unbudgeted solve returned unknown", nc.Name)
			}
			model := res.Extend(s.Model())
			if len(model) != orig.NumVars {
				t.Fatalf("%s: extended model has %d vars, want %d",
					nc.Name, len(model), orig.NumVars)
			}
			for ci, cl := range orig.Clauses {
				satisfied := false
				for _, l := range cl {
					if model[l.Var()] != l.Sign() {
						satisfied = true
						break
					}
				}
				if !satisfied {
					t.Fatalf("%s trial %d: extended model violates original clause %d (%v)",
						nc.Name, trial, ci, cl)
				}
			}
		}
	}
}
