package preimage

import (
	"math/big"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"allsatpre/internal/circuit"
	"allsatpre/internal/cube"
	"allsatpre/internal/gen"
	"allsatpre/internal/lit"
	"allsatpre/internal/simplify"
	"allsatpre/internal/trans"
)

func loadS27(t *testing.T) *circuit.Circuit {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "s27.bench"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := circuit.ParseBenchString("s27", string(data))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

var allEngines = []Engine{EngineSuccessDriven, EngineBlocking, EngineLifting, EngineBDD}

// brutePreimage computes the ground-truth preimage by exhaustive
// simulation over all (state, input) pairs. Only usable for small L+I.
func brutePreimage(t *testing.T, c *circuit.Circuit, target *cube.Cover) map[int]bool {
	t.Helper()
	sim, err := circuit.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	nL, nI := len(c.Latches), len(c.Inputs)
	if nL+nI > 22 {
		t.Fatalf("brutePreimage: %d+%d too large", nL, nI)
	}
	out := map[int]bool{}
	for sv := 0; sv < 1<<uint(nL); sv++ {
		st := make([]bool, nL)
		for i := range st {
			st[i] = sv&(1<<uint(i)) != 0
		}
		for iv := 0; iv < 1<<uint(nI); iv++ {
			in := make([]bool, nI)
			for i := range in {
				in[i] = iv&(1<<uint(i)) != 0
			}
			_, next := sim.Step(st, in)
			if target.Contains(next) {
				out[sv] = true
				break
			}
		}
	}
	return out
}

func coverSet(t *testing.T, cv *cube.Cover) map[int]bool {
	t.Helper()
	n := cv.Space().Size()
	out := map[int]bool{}
	m := make([]bool, n)
	for x := 0; x < 1<<uint(n); x++ {
		for i := 0; i < n; i++ {
			m[i] = x&(1<<uint(i)) != 0
		}
		if cv.Contains(m) {
			out[x] = true
		}
	}
	return out
}

func checkEngines(t *testing.T, tag string, c *circuit.Circuit, target *cube.Cover) {
	t.Helper()
	want := brutePreimage(t, c, target)
	for _, eng := range allEngines {
		r, err := Compute(c, target, Options{Engine: eng})
		if err != nil {
			t.Fatalf("%s/%v: %v", tag, eng, err)
		}
		got := coverSet(t, r.States)
		for x := range want {
			if !got[x] {
				t.Fatalf("%s/%v: missing state %b", tag, eng, x)
			}
		}
		for x := range got {
			if !want[x] {
				t.Fatalf("%s/%v: spurious state %b", tag, eng, x)
			}
		}
		if r.Count.Cmp(big.NewInt(int64(len(want)))) != 0 {
			t.Fatalf("%s/%v: count %v, want %d", tag, eng, r.Count, len(want))
		}
		if r.Engine != eng {
			t.Fatalf("%s: result engine mismatch", tag)
		}
	}
}

func TestCounterPreimageClosedForm(t *testing.T) {
	// Preimage of {s' = k} for an enabled counter is {k-1 (en=1), k (en=0)}.
	n := 4
	c := gen.Counter(n, true, false)
	for _, k := range []int{0, 1, 7, 15} {
		pat := make([]byte, n)
		for i := 0; i < n; i++ {
			if k&(1<<uint(i)) != 0 {
				pat[i] = '1'
			} else {
				pat[i] = '0'
			}
		}
		target := trans.TargetFromPatterns(n, string(pat))
		for _, eng := range allEngines {
			r, err := Compute(c, target, Options{Engine: eng})
			if err != nil {
				t.Fatal(err)
			}
			if r.Count.Cmp(big.NewInt(2)) != 0 {
				t.Fatalf("engine %v target %d: count %v, want 2", eng, k, r.Count)
			}
			got := coverSet(t, r.States)
			prev := (k - 1 + (1 << uint(n))) % (1 << uint(n))
			if !got[prev] || !got[k] {
				t.Fatalf("engine %v target %d: preimage %v, want {%d,%d}", eng, k, got, prev, k)
			}
		}
	}
}

func TestS27AllEnginesAgainstBruteForce(t *testing.T) {
	c := loadS27(t)
	targets := []*cube.Cover{
		trans.TargetFromPatterns(3, "1XX"),
		trans.TargetFromPatterns(3, "111"),
		trans.TargetFromPatterns(3, "000", "110"),
		trans.TargetFromPatterns(3, "X0X"),
		trans.TargetFromPatterns(3, "XXX"),
	}
	for i, target := range targets {
		checkEngines(t, "s27-"+string(rune('a'+i)), c, target)
	}
}

func TestSuiteCircuitsAllEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cases := []*circuit.Circuit{
		gen.Counter(5, true, false),
		gen.ShiftRegister(5),
		gen.LFSR(5, 0, 2),
		gen.Johnson(5),
		gen.GrayCounter(4),
		gen.TrafficLight(),
		gen.SLike(gen.SLikeParams{Seed: 11, Inputs: 4, Latches: 5, Gates: 30}),
		gen.SLike(gen.SLikeParams{Seed: 12, Inputs: 5, Latches: 6, Gates: 50, XorFraction: 0.4}),
	}
	for _, c := range cases {
		nL := len(c.Latches)
		// Two random targets per circuit.
		for rep := 0; rep < 2; rep++ {
			pat := make([]byte, nL)
			for i := range pat {
				pat[i] = "01X"[rng.Intn(3)]
			}
			target := trans.TargetFromPatterns(nL, string(pat))
			checkEngines(t, c.Name, c, target)
		}
	}
}

func TestEmptyTargetEmptyPreimage(t *testing.T) {
	c := gen.Counter(4, true, false)
	sp := cube.NewSpace([]lit.Var{0, 1, 2, 3})
	empty := cube.NewCover(sp)
	for _, eng := range allEngines {
		r, err := Compute(c, empty, Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if r.Count.Sign() != 0 || r.States.Len() != 0 {
			t.Fatalf("engine %v: empty target should have empty preimage", eng)
		}
	}
}

func TestFullTargetFullPreimage(t *testing.T) {
	// Every state has a successor, so the preimage of "all states" is all
	// states.
	c := gen.Counter(4, true, false)
	target := trans.TargetFromPatterns(4, "XXXX")
	for _, eng := range allEngines {
		r, err := Compute(c, target, Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if r.Count.Cmp(big.NewInt(16)) != 0 {
			t.Fatalf("engine %v: count %v, want 16", eng, r.Count)
		}
	}
}

func TestWithInputsPairs(t *testing.T) {
	// Counter: target {s'=5}; the witness pairs are (4, en=1) and (5, en=0).
	c := gen.Counter(3, true, false)
	target := trans.TargetFromPatterns(3, "101")
	r, err := Compute(c, target, Options{Engine: EngineSuccessDriven, WithInputs: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Pairs == nil {
		t.Fatal("Pairs missing")
	}
	if r.Pairs.Space().Size() != 4 {
		t.Fatalf("pair space size %d, want 4", r.Pairs.Space().Size())
	}
	got := coverSet(t, r.Pairs)
	// positions: s0,s1,s2,en → value bits in that order
	want := map[int]bool{
		0b0100: true, // s=001₂ reversed... s0=0,s1=0,s2=1 (state 4), en=1 → bits s0..s2,en = 0,0,1,1 = 0b1100
	}
	_ = want
	// Compute expected directly: (state=4, en=1) → s0=0,s1=0,s2=1,en=1 → x = 0b1100 = 12
	// (state=5, en=0) → s0=1,s1=0,s2=1,en=0 → x = 0b0101 = 5
	expect := map[int]bool{12: true, 5: true}
	for x := range expect {
		if !got[x] {
			t.Fatalf("missing pair %04b in %v", x, got)
		}
	}
	for x := range got {
		if !expect[x] {
			t.Fatalf("spurious pair %04b", x)
		}
	}
	// State projection must still be {4, 5}.
	states := coverSet(t, r.States)
	if !states[4] || !states[5] || len(states) != 2 {
		t.Fatalf("states = %v", states)
	}
}

func TestDecisionOrderAblationsAgree(t *testing.T) {
	c := gen.SLike(gen.SLikeParams{Seed: 21, Inputs: 5, Latches: 5, Gates: 40})
	target := trans.TargetFromPatterns(5, "1X0X1")
	var counts []*big.Int
	for _, opt := range []Options{
		{Engine: EngineSuccessDriven},
		{Engine: EngineSuccessDriven, InputFirstOrder: true},
		{Engine: EngineSuccessDriven, Interleave: true},
	} {
		r, err := Compute(c, target, opt)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, r.Count)
	}
	if counts[0].Cmp(counts[1]) != 0 || counts[0].Cmp(counts[2]) != 0 {
		t.Fatalf("ablation orders disagree: %v", counts)
	}
}

func TestEliminateAuxPreservesResults(t *testing.T) {
	cases := []*circuit.Circuit{
		gen.Counter(5, true, false),
		gen.GrayCounter(4),
		gen.TrafficLight(),
		gen.SLike(gen.SLikeParams{Seed: 23, Inputs: 5, Latches: 5, Gates: 40}),
	}
	for _, c := range cases {
		nL := len(c.Latches)
		pat := make([]byte, nL)
		for i := range pat {
			pat[i] = "01X"[i%3]
		}
		target := trans.TargetFromPatterns(nL, string(pat))
		for _, eng := range []Engine{EngineSuccessDriven, EngineBlocking, EngineLifting} {
			plain, err := Compute(c, target, Options{Engine: eng})
			if err != nil {
				t.Fatal(err)
			}
			elim, err := Compute(c, target, Options{Engine: eng, EliminateAux: true})
			if err != nil {
				t.Fatal(err)
			}
			if plain.Count.Cmp(elim.Count) != 0 {
				t.Fatalf("%s/%v: elimination changed the preimage: %v vs %v",
					c.Name, eng, elim.Count, plain.Count)
			}
			if !plain.States.Equal(elim.States) {
				t.Fatalf("%s/%v: covers differ after elimination", c.Name, eng)
			}
		}
	}
}

func TestUnknownEngineError(t *testing.T) {
	c := gen.Counter(2, true, false)
	target := trans.TargetFromPatterns(2, "11")
	if _, err := Compute(c, target, Options{Engine: Engine(42)}); err == nil {
		t.Fatal("expected error for unknown engine")
	}
	if Engine(42).String() == "" {
		t.Fatal("Engine.String on unknown")
	}
	for _, e := range allEngines {
		if e.String() == "" {
			t.Fatal("empty engine name")
		}
	}
}

func TestBDDEngineTargetMismatch(t *testing.T) {
	c := gen.Counter(3, true, false)
	if _, err := Compute(c, trans.TargetFromPatterns(2, "11"), Options{Engine: EngineBDD}); err == nil {
		t.Fatal("expected width error")
	}
}

func TestStateSpaceNames(t *testing.T) {
	c := loadS27(t)
	sp := StateSpace(c)
	if sp.Name(0) != "G5" || sp.Name(1) != "G6" || sp.Name(2) != "G7" {
		t.Fatalf("latch names: %s %s %s", sp.Name(0), sp.Name(1), sp.Name(2))
	}
}

func TestSuccessDrivenCacheActivity(t *testing.T) {
	// A shift register's preimage search has heavily repeated subproblems.
	// Simplification is off: this test pins the memo accounting of the raw
	// enumerator, and preprocessing collapses the shift CNF to units that
	// never consult the cache.
	c := gen.ShiftRegister(8)
	target := trans.TargetFromPatterns(8, "1XXXXXX1")
	r, err := Compute(c, target, Options{Engine: EngineSuccessDriven, Simplify: simplify.Off})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.CacheLookups == 0 {
		t.Error("no cache lookups recorded")
	}
}
