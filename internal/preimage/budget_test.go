package preimage

import (
	"context"
	"testing"
	"time"

	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/cube"
	"allsatpre/internal/gen"
	"allsatpre/internal/stats"
	"allsatpre/internal/trans"
)

// expiredBudget is a budget whose deadline has already passed: every
// engine must notice it on the first poll and abort immediately.
func expiredBudget() budget.Budget {
	return budget.Budget{Deadline: time.Now().Add(-time.Second)}
}

// assertSubset fails unless sub ⊆ full over the given space (checked
// exactly via BDDs).
func assertSubset(t *testing.T, space *cube.Space, sub, full *cube.Cover, label string) {
	t.Helper()
	man := bdd.NewOrdered(space.Vars())
	s := man.FromCover(canonicalize(space, sub))
	f := man.FromCover(canonicalize(space, full))
	if man.Diff(s, f) != bdd.False {
		t.Fatalf("%s: partial cover is not a subset of the full preimage", label)
	}
}

// TestDeadlineAbortsAllEngines: an expired deadline must yield a
// structured Aborted result from every engine, with the partial cover a
// sound subset of the true preimage — never an error, never a silently
// complete-looking answer.
func TestDeadlineAbortsAllEngines(t *testing.T) {
	c := gen.SLike(gen.SLikeParams{Seed: 3, Inputs: 6, Latches: 6, Gates: 60})
	target := trans.TargetFromPatterns(6, "XX1X0X")
	for _, eng := range allEngines {
		full, err := Compute(c, target, Options{Engine: eng})
		if err != nil {
			t.Fatalf("%v full: %v", eng, err)
		}
		if full.Aborted {
			t.Fatalf("%v: unbudgeted run reported Aborted", eng)
		}
		res, err := Compute(c, target, Options{Engine: eng, Budget: expiredBudget()})
		if err != nil {
			t.Fatalf("%v budgeted: %v", eng, err)
		}
		if !res.Aborted {
			t.Fatalf("%v: expired deadline not reported as Aborted", eng)
		}
		if res.AbortReason != budget.Deadline {
			t.Fatalf("%v: AbortReason = %v, want %v", eng, res.AbortReason, budget.Deadline)
		}
		assertSubset(t, full.StateSpace, res.States, full.States, eng.String())
	}
}

// TestContextCancelAborts: a pre-cancelled context aborts with reason
// Cancelled on the SAT engines.
func TestContextCancelAborts(t *testing.T) {
	c := gen.Counter(8, true, false)
	target := trans.TargetFromPatterns(8, "XXXXXXX1")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, eng := range []Engine{EngineSuccessDriven, EngineBlocking, EngineLifting} {
		res, err := Compute(c, target, Options{Engine: eng, Budget: budget.Budget{Ctx: ctx}})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if !res.Aborted || res.AbortReason != budget.Cancelled {
			t.Fatalf("%v: Aborted=%v reason=%v, want cancelled abort", eng, res.Aborted, res.AbortReason)
		}
	}
}

// TestParallelAbortMerge: the sliced parallel engine must merge
// per-slice aborts into the top-level result.
func TestParallelAbortMerge(t *testing.T) {
	c := gen.SLike(gen.SLikeParams{Seed: 4, Inputs: 6, Latches: 6, Gates: 60})
	target := trans.TargetFromPatterns(6, "X1XX0X")
	full, err := Compute(c, target, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(c, target, Options{Parallel: 4, Budget: expiredBudget()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("parallel: expired deadline not reported as Aborted")
	}
	if res.AbortReason != budget.Deadline {
		t.Fatalf("parallel: AbortReason = %v, want %v", res.AbortReason, budget.Deadline)
	}
	assertSubset(t, full.StateSpace, res.States, full.States, "parallel")
}

// TestReachCubeCapNeverClaimsFixpoint is the regression test for the
// headline bug: backward reachability on a cube-capped engine used to
// merge the truncated layer and then report convergence. A run whose
// layer aborted must never claim Fixpoint.
func TestReachCubeCapNeverClaimsFixpoint(t *testing.T) {
	c := gen.Counter(6, true, false)
	target := trans.TargetFromPatterns(6, "XXXXX1")
	opts := Options{Engine: EngineBlocking}
	opts.AllSAT.MaxCubes = 1
	res, err := Reach(c, target, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("cube-capped reach did not report Aborted")
	}
	if res.AbortReason != budget.Cubes {
		t.Fatalf("AbortReason = %v, want %v", res.AbortReason, budget.Cubes)
	}
	if res.Fixpoint {
		t.Fatal("cube-capped reach claimed a fixpoint from a truncated layer")
	}
}

// TestReachBudgetCubeCap exercises the same regression through the
// Budget.MaxCubes path instead of the engine-local option.
func TestReachBudgetCubeCap(t *testing.T) {
	c := gen.Counter(6, true, false)
	target := trans.TargetFromPatterns(6, "XXXXX1")
	res, err := Reach(c, target, 0, Options{
		Engine: EngineBlocking,
		Budget: budget.Budget{MaxCubes: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted || res.Fixpoint {
		t.Fatalf("Aborted=%v Fixpoint=%v, want aborted non-fixpoint", res.Aborted, res.Fixpoint)
	}
}

// TestCheckReachableAbortsWithoutVerdict: a budget abort during the
// backward sweep must surface as Aborted, not as an unreachability
// verdict (Complete) and not as an error.
func TestCheckReachableAbortsWithoutVerdict(t *testing.T) {
	c := gen.Counter(8, true, false)
	init := trans.TargetFromPatterns(8, "00000000")
	bad := trans.TargetFromPatterns(8, "11111111")
	res, err := CheckReachable(c, init, bad, 0, Options{Budget: expiredBudget()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("aborted CheckReachable claimed a complete verdict")
	}
	if res.Reachable {
		t.Fatal("aborted CheckReachable fabricated a trace")
	}
	if !res.Aborted || res.AbortReason != budget.Deadline {
		t.Fatalf("Aborted=%v reason=%v, want deadline abort", res.Aborted, res.AbortReason)
	}
}

// TestForwardReachAbortNoFixpoint mirrors the backward regression on the
// forward engine.
func TestForwardReachAbortNoFixpoint(t *testing.T) {
	c := gen.Counter(6, true, false)
	init := trans.TargetFromPatterns(6, "000000")
	res, err := ForwardReach(c, init, 0, Options{Budget: expiredBudget()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("expired deadline not reported by ForwardReach")
	}
	if res.Fixpoint {
		t.Fatal("aborted ForwardReach claimed a fixpoint")
	}
}

// TestStatsRecording: a registry passed through Options collects the
// run's counters, including the abort markers.
func TestStatsRecording(t *testing.T) {
	c := gen.Counter(8, true, false)
	target := trans.TargetFromPatterns(8, "XXXXXXX1")
	reg := stats.NewRegistry("test")
	_, err := Compute(c, target, Options{Stats: reg})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Counter("decisions").Load() == 0 {
		t.Fatal("stats registry recorded no decisions")
	}
	if reg.Counter("aborts").Load() != 0 {
		t.Fatal("complete run recorded an abort")
	}

	reg2 := stats.NewRegistry("test2")
	res, err := Compute(c, target, Options{Stats: reg2, Budget: expiredBudget()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("expired deadline not reported")
	}
	if reg2.Counter("aborts").Load() != 1 {
		t.Fatal("aborted run did not record the abort counter")
	}
}

// TestKStepDeadlineAborts: the unrolled k-step enumeration obeys the
// budget too.
func TestKStepDeadlineAborts(t *testing.T) {
	c := gen.Counter(8, true, false)
	target := trans.TargetFromPatterns(8, "XXXXXXX1")
	res, err := KStepPreimage(c, target, 3, Options{Budget: expiredBudget()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted || res.AbortReason != budget.Deadline {
		t.Fatalf("Aborted=%v reason=%v, want deadline abort", res.Aborted, res.AbortReason)
	}
}
