package preimage

import (
	"allsatpre/internal/allsat"
	"allsatpre/internal/budget"
	"allsatpre/internal/circuit"
	"allsatpre/internal/cube"
	"allsatpre/internal/trans"
)

// Witness is one (state, input) pair — or cube of pairs — that drives the
// circuit into the target in one step.
type Witness struct {
	// State is the present-state part (latch order).
	State cube.Cube
	// Inputs is the primary-input part (input order).
	Inputs cube.Cube
}

// WitnessIterator streams preimage witnesses one at a time, backed by the
// lifting all-SAT iterator, so callers can take the first witness — the
// test-generation use case — or sample a few without enumerating the
// whole preimage.
type WitnessIterator struct {
	it     *allsat.Iterator
	nL, nI int
}

// NewWitnessIterator prepares a streaming enumeration of the (state,
// input) pairs whose successor lies in target. The budget in opts bounds
// the iteration; a tripped limit ends it early with Aborted reporting
// true.
func NewWitnessIterator(c *circuit.Circuit, target *cube.Cover, opts Options) (*WitnessIterator, error) {
	inst, err := trans.NewInstance(c, target)
	if err != nil {
		return nil, err
	}
	as := opts.AllSAT
	if as.Budget.IsZero() {
		as.Budget = opts.Budget.Materialize()
	}
	return &WitnessIterator{
		it: allsat.NewIterator(inst.F, inst.FullSpace, as, true),
		nL: len(inst.StateVars),
		nI: len(inst.InputVars),
	}, nil
}

// Next returns the next witness cube, or ok=false when exhausted. Free
// positions in either part are genuine don't cares: any completion works.
func (wi *WitnessIterator) Next() (Witness, bool) {
	c, ok := wi.it.Next()
	if !ok {
		return Witness{}, false
	}
	w := Witness{
		State:  c[:wi.nL].Clone(),
		Inputs: c[wi.nL : wi.nL+wi.nI].Clone(),
	}
	return w, true
}

// Stats reports the underlying search counters.
func (wi *WitnessIterator) Stats() allsat.Stats { return wi.it.Stats() }

// Aborted reports whether a resource limit cut the iteration short; the
// witnesses seen so far are then a subset of the preimage pairs.
func (wi *WitnessIterator) Aborted() bool { return wi.it.Aborted() }

// AbortReason reports which limit ended the iteration (budget.None when
// it ran to exhaustion or is still running).
func (wi *WitnessIterator) AbortReason() budget.Reason { return wi.it.Reason() }
