package preimage

import (
	"allsatpre/internal/allsat"
	"allsatpre/internal/circuit"
	"allsatpre/internal/cube"
	"allsatpre/internal/trans"
)

// Witness is one (state, input) pair — or cube of pairs — that drives the
// circuit into the target in one step.
type Witness struct {
	// State is the present-state part (latch order).
	State cube.Cube
	// Inputs is the primary-input part (input order).
	Inputs cube.Cube
}

// WitnessIterator streams preimage witnesses one at a time, backed by the
// lifting all-SAT iterator, so callers can take the first witness — the
// test-generation use case — or sample a few without enumerating the
// whole preimage.
type WitnessIterator struct {
	it     *allsat.Iterator
	nL, nI int
}

// NewWitnessIterator prepares a streaming enumeration of the (state,
// input) pairs whose successor lies in target.
func NewWitnessIterator(c *circuit.Circuit, target *cube.Cover, opts Options) (*WitnessIterator, error) {
	inst, err := trans.NewInstance(c, target)
	if err != nil {
		return nil, err
	}
	return &WitnessIterator{
		it: allsat.NewIterator(inst.F, inst.FullSpace, opts.AllSAT, true),
		nL: len(inst.StateVars),
		nI: len(inst.InputVars),
	}, nil
}

// Next returns the next witness cube, or ok=false when exhausted. Free
// positions in either part are genuine don't cares: any completion works.
func (wi *WitnessIterator) Next() (Witness, bool) {
	c, ok := wi.it.Next()
	if !ok {
		return Witness{}, false
	}
	w := Witness{
		State:  c[:wi.nL].Clone(),
		Inputs: c[wi.nL : wi.nL+wi.nI].Clone(),
	}
	return w, true
}

// Stats reports the underlying search counters.
func (wi *WitnessIterator) Stats() allsat.Stats { return wi.it.Stats() }
