package preimage

import (
	"fmt"
	"math/big"

	"allsatpre/internal/allsat"
	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/circuit"
	"allsatpre/internal/cube"
)

// ReachResult is the outcome of iterated preimage computation (backward
// reachability from a target set).
type ReachResult struct {
	// StateSpace is the canonical state space.
	StateSpace *cube.Space
	// Frontiers[k] is the set of states first reached at distance k from
	// the target (Frontiers[0] is the target itself).
	Frontiers []*cube.Cover
	// FrontierCounts[k] is the exact state count of Frontiers[k].
	FrontierCounts []*big.Int
	// All is the union of every frontier: all states that can reach the
	// target within the explored depth.
	All *cube.Cover
	// AllCount is the exact state count of All.
	AllCount *big.Int
	// Fixpoint is true when the iteration converged (the last preimage
	// added no new states) before the step limit. A fixpoint is claimed
	// only from complete preimage layers: when the final layer aborted,
	// Fixpoint stays false no matter how the diff came out, because the
	// truncated layer may simply have missed the remaining predecessors.
	Fixpoint bool
	// Steps is the number of preimage computations performed.
	Steps int
	// Stats accumulates the SAT engines' counters over all steps.
	Stats allsat.Stats
	// BDDNodes is the peak per-step engine node count observed.
	BDDNodes int
	// Aborted is true when a resource budget cut some preimage step
	// short. All frontiers up to the truncated one are exact; the final
	// frontier and All are sound under-approximations. AbortReason says
	// which limit tripped first.
	Aborted     bool
	AbortReason budget.Reason
}

// Reach iterates Compute backwards from the target until a fixpoint or
// maxSteps preimage computations (maxSteps <= 0 means run to fixpoint).
// The budget in opts governs the whole iteration: a relative Timeout is
// resolved once here, so all steps share the allowance, and a step that
// aborts ends the iteration with ReachResult.Aborted set — Fixpoint is
// never claimed from a truncated layer.
func Reach(c *circuit.Circuit, target *cube.Cover, maxSteps int, opts Options) (*ReachResult, error) {
	opts.Budget = opts.Budget.Materialize()
	if useIncremental(opts) {
		return reachIncremental(c, target, maxSteps, opts)
	}
	runStats := opts.Stats
	stateSpace := StateSpace(c)
	man := bdd.NewOrdered(stateSpace.Vars())
	if opts.Engine == EngineSuccessDriven {
		// Let Compute export each step's state set straight into our
		// manager instead of round-tripping it through a cover.
		opts.ShareManager = man
	}

	targetC := canonicalize(stateSpace, target)
	visited := man.FromCover(targetC)
	res := &ReachResult{
		StateSpace:     stateSpace,
		Frontiers:      []*cube.Cover{targetC},
		FrontierCounts: []*big.Int{man.SatCount(visited)},
	}
	frontier := targetC

	for step := 0; maxSteps <= 0 || step < maxSteps; step++ {
		if frontier.Len() == 0 {
			res.Fixpoint = true
			break
		}
		if runStats != nil {
			opts.Stats = runStats.Phase(fmt.Sprintf("step%02d", step))
		}
		pre, err := Compute(c, frontier, opts)
		if err != nil {
			return nil, err
		}
		res.Steps++
		accumulate(&res.Stats, pre.Stats)
		if pre.BDDNodes > res.BDDNodes {
			res.BDDNodes = pre.BDDNodes
		}
		if pre.Aborted {
			res.Aborted = true
			if res.AbortReason == budget.None {
				res.AbortReason = pre.AbortReason
			}
		}
		var preSet bdd.Ref
		if pre.HasSet {
			preSet = pre.Set
		} else {
			preSet = man.FromCover(pre.States)
		}
		newSet := man.Diff(preSet, visited)
		if newSet == bdd.False {
			// Convergence may be claimed only from a complete layer: an
			// aborted preimage adding nothing proves nothing.
			if !pre.Aborted {
				res.Fixpoint = true
			}
			break
		}
		exact := man.ISOP(newSet, stateSpace)
		if opts.FrontierSimplify {
			// Any set between newSet and newSet ∪ visited is a valid next
			// target; the generalized cofactor picks a compact one.
			simp := man.SimplifyWith(newSet, man.Not(visited))
			frontier = man.ISOP(simp, stateSpace)
		} else {
			frontier = exact
		}
		visited = man.Or(visited, newSet)
		res.Frontiers = append(res.Frontiers, exact)
		res.FrontierCounts = append(res.FrontierCounts, man.SatCount(newSet))
		if pre.Aborted {
			// The partial layer's states are genuine (all prior frontiers
			// were exact, so they sit at distance step+1), but iterating
			// from a truncated frontier would assign wrong distances —
			// merge it and stop.
			break
		}
	}
	res.All = man.ISOP(visited, stateSpace)
	res.AllCount = man.SatCount(visited)
	return res, nil
}

func accumulate(dst *allsat.Stats, s allsat.Stats) {
	dst.Solutions += s.Solutions
	dst.Cubes += s.Cubes
	dst.BlockingClauses += s.BlockingClauses
	dst.BlockingLits += s.BlockingLits
	dst.LiftedFree += s.LiftedFree
	dst.Decisions += s.Decisions
	dst.Propagations += s.Propagations
	dst.Conflicts += s.Conflicts
	dst.CacheLookups += s.CacheLookups
	dst.CacheHits += s.CacheHits
	dst.CacheClears += s.CacheClears
	dst.Kernel.Merge(s.Kernel)
	if s.BDDNodes > dst.BDDNodes {
		dst.BDDNodes = s.BDDNodes
	}
}
