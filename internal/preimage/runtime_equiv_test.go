package preimage

import (
	"math/rand"
	goruntime "runtime"
	"testing"
	"time"

	"allsatpre/internal/budget"
	"allsatpre/internal/circuit"
	"allsatpre/internal/gen"
	rt "allsatpre/internal/runtime"
	"allsatpre/internal/stats"
	"allsatpre/internal/trans"
)

// equivEngines is every engine, including the disjoint one missing from
// allEngines (it postdates that list).
var equivEngines = []Engine{
	EngineSuccessDriven, EngineBlocking, EngineLifting, EngineDisjoint, EngineBDD,
}

// TestRuntimeReuseBitIdentical is the reuse-correctness contract of the
// pooled runtime: for every engine and worker count, a computation on
// warm Reset solvers and managers (shared pool + shared scheduler,
// reused across all the runs of this test) returns a cover bit-identical
// to the classic build-from-scratch path — same cubes, same order, same
// count. Run it under -race: the scheduler interleaves the runs' jobs on
// shared executors.
func TestRuntimeReuseBitIdentical(t *testing.T) {
	reg := stats.NewRegistry("equiv")
	sched := rt.NewScheduler(4, reg)
	defer sched.Close()
	shared := &rt.Runtime{Pool: rt.NewPool(rt.PoolOptions{Stats: reg}), Sched: sched}

	rng := rand.New(rand.NewSource(321))
	circuits := []*circuit.Circuit{
		gen.Counter(5, true, false),
		gen.LFSR(5, 0, 2),
		gen.SLike(gen.SLikeParams{Seed: 31, Inputs: 4, Latches: 5, Gates: 30}),
	}
	for _, c := range circuits {
		nL := len(c.Latches)
		pat := make([]byte, nL)
		for i := range pat {
			pat[i] = "01X"[rng.Intn(3)]
		}
		target := trans.TargetFromPatterns(nL, string(pat))
		for _, eng := range equivEngines {
			for _, workers := range []int{1, 2, 4, 8} {
				fresh, err := Compute(c, target, Options{Engine: eng, Parallel: workers})
				if err != nil {
					t.Fatalf("%s/%v/w%d fresh: %v", c.Name, eng, workers, err)
				}
				warm, err := Compute(c, target, Options{
					Engine: eng, Parallel: workers,
					Runtime: shared.WithTenant(c.Name),
				})
				if err != nil {
					t.Fatalf("%s/%v/w%d warm: %v", c.Name, eng, workers, err)
				}
				if fresh.Count.Cmp(warm.Count) != 0 {
					t.Fatalf("%s/%v/w%d: warm count %v, fresh %v",
						c.Name, eng, workers, warm.Count, fresh.Count)
				}
				if fs, ws := fresh.States.String(), warm.States.String(); fs != ws {
					t.Fatalf("%s/%v/w%d: warm cover differs\nfresh: %s\nwarm:  %s",
						c.Name, eng, workers, fs, ws)
				}
			}
		}
	}
	if got := poolMetric(t, reg, "runtime.solver-hits"); got == 0 {
		t.Fatal("equivalence suite never reused a warm solver")
	}
	if got := poolMetric(t, reg, "runtime.manager-hits"); got == 0 {
		t.Fatal("equivalence suite never reused a warm manager")
	}
}

// TestRuntimeReuseAfterAbort releases aborted solvers/managers into the
// pool and checks the next (warm) computation is still bit-identical to
// fresh: Reset must scrub abort state — stop reasons, partial trails,
// node caps — along with everything else.
func TestRuntimeReuseAfterAbort(t *testing.T) {
	shared := &rt.Runtime{Pool: rt.NewPool(rt.PoolOptions{})}
	c := gen.SLike(gen.SLikeParams{Seed: 33, Inputs: 5, Latches: 8, Gates: 60})
	target := trans.TargetFromPatterns(len(c.Latches), "1XXXXXX0")

	for _, eng := range []Engine{EngineSuccessDriven, EngineBlocking, EngineDisjoint} {
		aborted, err := Compute(c, target, Options{
			Engine:  eng,
			Budget:  budget.Budget{MaxDecisions: 3},
			Runtime: shared,
		})
		if err != nil {
			t.Fatalf("%v aborted run: %v", eng, err)
		}
		if !aborted.Aborted {
			t.Fatalf("%v: MaxDecisions=3 did not abort", eng)
		}
		fresh, err := Compute(c, target, Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := Compute(c, target, Options{Engine: eng, Runtime: shared})
		if err != nil {
			t.Fatal(err)
		}
		if fresh.States.String() != warm.States.String() || fresh.Count.Cmp(warm.Count) != 0 {
			t.Fatalf("%v: cover after aborted reuse differs from fresh", eng)
		}
	}
}

// TestRuntimeSchedulerNoGoroutineLeak checks scheduler-mode runs leave
// no stragglers: after Close the goroutine count returns to (about) the
// pre-test level even though the runs fanned dozens of jobs out.
func TestRuntimeSchedulerNoGoroutineLeak(t *testing.T) {
	before := goruntime.NumGoroutine()
	reg := stats.NewRegistry("leak")
	sched := rt.NewScheduler(4, reg)
	shared := &rt.Runtime{Pool: rt.NewPool(rt.PoolOptions{}), Sched: sched}

	c := gen.Counter(6, true, false)
	target := trans.TargetFromPatterns(len(c.Latches), "1X0X1X")
	for i := 0; i < 4; i++ {
		if _, err := Compute(c, target, Options{
			Engine: EngineSuccessDriven, Parallel: 4, Runtime: shared,
		}); err != nil {
			t.Fatal(err)
		}
	}
	sched.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if goruntime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after close", before, goruntime.NumGoroutine())
}

// poolMetric reads one runtime.* counter from a registry snapshot.
func poolMetric(t *testing.T, reg *stats.Registry, key string) uint64 {
	t.Helper()
	snap := reg.Snapshot()
	for _, kv := range snap.Metrics {
		if kv.Key == key {
			var n uint64
			for _, r := range kv.Value {
				if r < '0' || r > '9' {
					return n
				}
				n = n*10 + uint64(r-'0')
			}
			return n
		}
	}
	return 0
}
