package preimage

import (
	"testing"

	"allsatpre/internal/gen"
	"allsatpre/internal/lit"
	"allsatpre/internal/trans"
)

func TestRestrictIntersectsPreimage(t *testing.T) {
	c := gen.Counter(4, true, false)
	target := trans.TargetFromPatterns(4, "1010") // preimage {4, 5}
	sp := StateSpace(c)
	for _, eng := range allEngines {
		// Restrict to states with s0 = 0: only state 4 (0010) survives.
		r, err := Compute(c, target, Options{Engine: eng, Restrict: sp.CubeOf("0XXX")})
		if err != nil {
			t.Fatal(err)
		}
		got := coverSet(t, r.States)
		if len(got) != 1 || !got[4] {
			t.Fatalf("engine %v: restricted preimage %v, want {4}", eng, got)
		}
	}
}

func TestRestrictWidthError(t *testing.T) {
	c := gen.Counter(3, true, false)
	target := trans.TargetFromPatterns(3, "000")
	bad := make([]lit.Tern, 2)
	if _, err := Compute(c, target, Options{Restrict: bad}); err == nil {
		t.Fatal("expected width error (SAT path)")
	}
	if _, err := Compute(c, target, Options{Engine: EngineBDD, Restrict: bad}); err == nil {
		t.Fatal("expected width error (BDD path)")
	}
}

func TestParallelEqualsSerial(t *testing.T) {
	for _, nc := range []gen.NamedCircuit{
		{Name: "counter6", Circuit: gen.Counter(6, true, false)},
		{Name: "slike1", Circuit: gen.SLike(gen.SLikeParams{Seed: 1, Inputs: 6, Latches: 6, Gates: 60})},
		{Name: "traffic", Circuit: gen.TrafficLight()},
	} {
		nL := len(nc.Circuit.Latches)
		pat := make([]byte, nL)
		for i := range pat {
			pat[i] = "01X"[i%3]
		}
		target := trans.TargetFromPatterns(nL, string(pat))
		for _, eng := range []Engine{EngineSuccessDriven, EngineLifting} {
			serial, err := Compute(nc.Circuit, target, Options{Engine: eng})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 7} {
				par, err := Compute(nc.Circuit, target, Options{Engine: eng, Parallel: workers})
				if err != nil {
					t.Fatal(err)
				}
				if par.Count.Cmp(serial.Count) != 0 {
					t.Fatalf("%s/%v/p%d: count %v, want %v",
						nc.Name, eng, workers, par.Count, serial.Count)
				}
				if !par.States.Equal(serial.States) {
					t.Fatalf("%s/%v/p%d: covers differ", nc.Name, eng, workers)
				}
			}
		}
	}
}

func TestParallelWithCallerRestriction(t *testing.T) {
	// Parallel splitting must compose with a caller Restrict that fixes
	// one of the splitting bits.
	c := gen.Counter(5, true, false)
	target := trans.TargetFromPatterns(5, "XX1X1")
	sp := StateSpace(c)
	restrict := sp.CubeOf("1XXXX")
	serial, err := Compute(c, target, Options{Restrict: restrict})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Compute(c, target, Options{Restrict: restrict, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.Count.Cmp(serial.Count) != 0 || !par.States.Equal(serial.States) {
		t.Fatalf("parallel+restrict mismatch: %v vs %v", par.Count, serial.Count)
	}
}
