package preimage

import (
	"fmt"

	"allsatpre/internal/circuit"
	"allsatpre/internal/cnf"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
	"allsatpre/internal/tseitin"
)

// KStepPreimage computes, in a single all-SAT enumeration over an
// unrolled transition CNF, the set of states that can reach the target
// within at most k transitions — the union of the first k+1 backward
// layers, obtained without iterating preimages. Only the SAT engines
// apply (the BDD engine has no unrolled formulation here).
//
// The unrolling chains k copies of the combinational next-state logic;
// a per-frame selector asserts "the state at frame i is in the target",
// and the disjunction of the selectors requires some frame to hit it.
// The projection is the frame-0 state vector.
func KStepPreimage(c *circuit.Circuit, target *cube.Cover, k int, opts Options) (*Result, error) {
	opts.Budget = opts.Budget.Materialize()
	if opts.Engine == EngineBDD {
		return nil, fmt.Errorf("preimage: KStepPreimage supports only the SAT engines")
	}
	if k < 0 {
		return nil, fmt.Errorf("preimage: negative step bound %d", k)
	}
	if target.Space().Size() != len(c.Latches) {
		return nil, fmt.Errorf("preimage: target has %d positions, circuit has %d latches",
			target.Space().Size(), len(c.Latches))
	}
	if useIncremental(opts) {
		return kstepIncremental(c, target, k, opts)
	}
	enc, err := tseitin.EncodeCached(c)
	if err != nil {
		return nil, err
	}

	f := cnf.New(0)
	nL := len(c.Latches)
	// Frame-0 state variables come first so the enumerators decide them
	// at the top of the search (and of the solution BDD).
	state0 := make([]lit.Var, nL)
	for i := range state0 {
		state0[i] = f.NewVar()
	}

	// Unroll k frames of the transition logic.
	frameState := [][]lit.Var{state0}
	cur := state0
	for frame := 0; frame < k; frame++ {
		base := f.NumVars
		mapVar := make([]lit.Var, enc.F.NumVars)
		for v := 0; v < enc.F.NumVars; v++ {
			mapVar[v] = lit.Var(base + v)
		}
		for i, sv := range enc.StateVars {
			mapVar[sv] = cur[i]
		}
		f.NumVars = base + enc.F.NumVars
		for _, cl := range enc.F.Clauses {
			lits := make([]lit.Lit, len(cl))
			for i, l := range cl {
				lits[i] = lit.New(mapVar[l.Var()], l.Sign())
			}
			f.AddClause(lits)
		}
		next := make([]lit.Var, nL)
		for i, nv := range enc.NextStateVars {
			next[i] = mapVar[nv]
		}
		frameState = append(frameState, next)
		cur = next
	}

	// "Some frame's state is in the target": one activator per frame,
	// cube selectors beneath each.
	if target.Len() == 0 {
		f.AddClause(cnf.Clause{})
	} else {
		var hit []lit.Lit
		for _, st := range frameState {
			u := f.NewVar()
			hit = append(hit, lit.Pos(u))
			var any []lit.Lit
			any = append(any, lit.Neg(u))
			for _, cb := range target.Cubes() {
				sel := f.NewVar()
				any = append(any, lit.Pos(sel))
				for pos, t := range cb {
					if t == lit.Unknown {
						continue
					}
					f.Add(lit.Neg(sel), lit.New(st[pos], t == lit.False))
				}
			}
			f.AddClause(any)
		}
		f.AddClause(hit)
	}

	stateSpace := StateSpace(c)
	names := make([]string, nL)
	for i := range names {
		names[i] = stateSpace.Name(i)
	}
	projSpace := cube.NewNamedSpace(state0, names)

	res, err := runSATEngine(f, projSpace, opts)
	if err != nil {
		return nil, err
	}

	states := canonicalize(stateSpace, res.Cover)
	states.Reduce()
	out := &Result{
		States:      states,
		StateSpace:  stateSpace,
		Stats:       res.Stats,
		BDDNodes:    res.Stats.BDDNodes,
		Engine:      opts.Engine,
		Aborted:     res.Aborted,
		AbortReason: res.Reason,
	}
	// The projection space is exactly the frame-0 state vector, so the
	// engine's minterm count is already the state count.
	out.Count = res.Count
	return out, nil
}
