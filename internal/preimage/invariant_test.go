package preimage

import (
	"testing"

	"allsatpre/internal/cube"
	"allsatpre/internal/gen"
	"allsatpre/internal/lit"
	"allsatpre/internal/trans"
)

func TestUnreachableProducesCheckableInvariant(t *testing.T) {
	c := gen.Johnson(4)
	init := trans.TargetFromPatterns(4, "0000")
	bad := trans.TargetFromPatterns(4, "0101")
	res, err := CheckReachable(c, init, bad, -1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable || res.Invariant == nil {
		t.Fatalf("expected unreachable with invariant: %+v", res)
	}
	if err := VerifyInvariant(c, init, bad, res.Invariant, Options{}); err != nil {
		t.Fatalf("invariant failed verification: %v", err)
	}
	// Cross-engine verification of the same certificate.
	for _, eng := range allEngines {
		if err := VerifyInvariant(c, init, bad, res.Invariant, Options{Engine: eng}); err != nil {
			t.Fatalf("engine %v rejects the invariant: %v", eng, err)
		}
	}
}

func TestInvariantOnRandomUnreachableInstances(t *testing.T) {
	for seed := int64(80); seed < 86; seed++ {
		c := gen.SLike(gen.SLikeParams{Seed: seed, Inputs: 4, Latches: 4, Gates: 25})
		init := trans.TargetFromPatterns(4, "0000")
		bad := trans.TargetFromPatterns(4, "1111")
		res, err := CheckReachable(c, init, bad, -1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Reachable {
			continue
		}
		if res.Invariant == nil {
			t.Fatalf("seed %d: unreachable without invariant", seed)
		}
		if err := VerifyInvariant(c, init, bad, res.Invariant, Options{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestArbiterMutualExclusion(t *testing.T) {
	// The round-robin arbiter can never raise two grants simultaneously
	// from the idle state — proven by fixpoint with a checked invariant,
	// for every pair of grant lines.
	c := gen.Arbiter(3)
	init := trans.TargetFromPatterns(5, "00000")
	pairs := []string{"11XXX", "1X1XX", "X11XX"}
	for _, p := range pairs {
		bad := trans.TargetFromPatterns(5, p)
		res, err := CheckReachable(c, init, bad, -1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Reachable {
			t.Fatalf("mutual exclusion violated for %s", p)
		}
		if err := VerifyInvariant(c, init, bad, res.Invariant, Options{}); err != nil {
			t.Fatalf("invariant for %s: %v", p, err)
		}
	}
	// Sanity: a single grant IS reachable.
	one := trans.TargetFromPatterns(5, "1XXXX")
	res, err := CheckReachable(c, init, one, -1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable {
		t.Fatal("a single grant must be reachable")
	}
}

func TestVerifyInvariantRejectsBogusCertificates(t *testing.T) {
	c := gen.Johnson(4)
	sp := StateSpace(c)
	init := trans.TargetFromPatterns(4, "0000")
	bad := trans.TargetFromPatterns(4, "0101")

	// Does not contain init.
	noInit := cube.NewCover(sp)
	noInit.Add(sp.CubeOf("1XXX"))
	if err := VerifyInvariant(c, init, bad, noInit, Options{}); err == nil {
		t.Fatal("certificate missing init must be rejected")
	}
	// Intersects bad.
	withBad := cube.NewCover(sp)
	withBad.Add(sp.CubeOf("XXXX"))
	if err := VerifyInvariant(c, init, bad, withBad, Options{}); err == nil {
		t.Fatal("certificate covering bad must be rejected")
	}
	// Not inductive: {0000} alone steps to 1000 which is outside.
	notInd := cube.NewCover(sp)
	notInd.Add(sp.CubeOf("0000"))
	if err := VerifyInvariant(c, init, bad, notInd, Options{}); err == nil {
		t.Fatal("non-inductive certificate must be rejected")
	}
	_ = lit.Var(0)
}
