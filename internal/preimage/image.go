package preimage

import (
	"fmt"
	"time"

	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/circuit"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
	"allsatpre/internal/trans"
)

// Image computes the forward image of an initial state set — the set of
// states reachable in exactly one transition from init:
//
//	Img(I)(s') = ∃s ∃x. I(s) ∧ T(s, x, s')
//
// The same four engines are available. For the SAT engines the projection
// is onto the next-state variables, so the success-driven enumerator's
// decision order is s' (the cut that functionally *depends on* the rest,
// rather than determining it — image is the harder direction for
// cut-based enumeration, exactly as the paper observes for preimage's
// dual).
func Image(c *circuit.Circuit, init *cube.Cover, opts Options) (*Result, error) {
	opts.Budget = opts.Budget.Materialize()
	start := time.Now()
	if opts.Engine == EngineBDD {
		out, err := imageBDD(c, init, opts)
		if err == nil {
			recordStats(opts.Stats, out, time.Since(start))
		}
		return out, err
	}
	inst, err := trans.NewImageInstance(c, init)
	if err != nil {
		return nil, err
	}
	// Projection: the next-state variables in latch order (deduplicated —
	// latches may share a next-state gate). They are internal gate
	// variables of the Tseitin CNF, which the enumerators handle like any
	// other projection set.
	stateSpace := StateSpace(c)
	projSpace := cube.NewSpace(DedupVars(inst.NextVars))

	res, err := runSATEngine(inst.F, projSpace, opts)
	if err != nil {
		return nil, err
	}

	states := ExpandNextCover(inst.NextVars, projSpace, res.Cover, stateSpace)
	states.Reduce()
	out := &Result{
		States:      states,
		StateSpace:  stateSpace,
		Stats:       res.Stats,
		BDDNodes:    res.Stats.BDDNodes,
		Engine:      opts.Engine,
		Aborted:     res.Aborted,
		AbortReason: res.Reason,
	}
	// Each assignment to the deduplicated next-state variables maps to
	// exactly one state (shared latches just repeat a bit), so the
	// engine's minterm count is already the state count.
	out.Count = res.Count
	recordStats(opts.Stats, out, time.Since(start))
	return out, nil
}

// ExpandNextCover expands a cover over the deduplicated next-state
// variable space (see DedupVars) back onto the full latch order —
// exported for drivers that enumerate images over a shared-gate
// projection themselves. Latches whose next-state
// functions share a gate share a projection variable; if that variable is
// free in a cube, the latch bits are "free but equal", which a cube
// cannot express — such cubes are split on the shared variable's two
// values. Shared variables are scanned in latch order so the expansion —
// and hence the produced cube order — is deterministic.
func ExpandNextCover(nextVars []lit.Var, projSpace *cube.Space, cover *cube.Cover, stateSpace *cube.Space) *cube.Cover {
	counts := map[lit.Var]int{}
	for _, v := range nextVars {
		counts[v]++
	}
	sharedFree := func(cb cube.Cube) lit.Var {
		for _, v := range nextVars {
			if counts[v] > 1 && cb[projSpace.PosOf(v)] == lit.Unknown {
				return v
			}
		}
		return lit.UndefVar
	}
	states := cube.NewCover(stateSpace)
	var expand func(cb cube.Cube)
	expand = func(cb cube.Cube) {
		if v := sharedFree(cb); v != lit.UndefVar {
			for _, val := range []lit.Tern{lit.False, lit.True} {
				split := cb.Clone()
				split[projSpace.PosOf(v)] = val
				expand(split)
			}
			return
		}
		sc := stateSpace.FullCube()
		for i, v := range nextVars {
			sc[i] = cb[projSpace.PosOf(v)]
		}
		states.Add(sc)
	}
	for _, cb := range cover.Cubes() {
		expand(cb)
	}
	return states
}

// DedupVars removes duplicate variables while preserving first-occurrence
// order. Two latches may share the same next-state gate (and hence CNF
// variable); a cube space must not list a variable twice.
func DedupVars(vars []lit.Var) []lit.Var {
	seen := map[lit.Var]bool{}
	out := make([]lit.Var, 0, len(vars))
	for _, v := range vars {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// imageBDD computes the forward image symbolically: the next-state
// functions are built over (s, x), conjoined with the initial set, and
// (s, x) is quantified out of the transition product. A tripped budget
// yields the aborted empty-cover result, like the preimage direction.
func imageBDD(c *circuit.Circuit, init *cube.Cover, opts Options) (*Result, error) {
	if init.Space().Size() != len(c.Latches) {
		return nil, fmt.Errorf("preimage: init has %d positions, circuit has %d latches",
			init.Space().Size(), len(c.Latches))
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	bv := bddVars{nL: len(c.Latches), nI: len(c.Inputs)}
	m := bdd.NewOrdered(bv.order())
	installLimits(m, opts.Budget)
	res, reason, err := imageBDDBody(c, init, m, bv, order)
	if err != nil {
		return nil, err
	}
	if reason != budget.None {
		return abortedBDDResult(c, m, reason), nil
	}
	return res, nil
}

func imageBDDBody(c *circuit.Circuit, init *cube.Cover,
	m *bdd.Manager, bv bddVars, order []int) (_ *Result, reason budget.Reason, err error) {
	defer bdd.CatchAbort(&reason)

	val, err := gateBDDs(m, c, bv, order)
	if err != nil {
		return nil, budget.None, err
	}

	curSpace := func() *cube.Space {
		vars := make([]lit.Var, bv.nL)
		for k := range vars {
			vars[k] = bv.state(k)
		}
		return cube.NewSpace(vars)
	}()
	r := bdd.False
	for _, cb := range init.Cubes() {
		r = m.Or(r, m.FromCube(curSpace, cb))
	}
	// Conjoin all transition partitions, then quantify (s, x). Unlike the
	// preimage direction there is no per-partition early quantification:
	// every δ_k shares the s and x variables.
	for k, gi := range c.Latches {
		delta := val[c.Gates[gi].Fanins[0]]
		r = m.And(r, m.Xnor(m.Var(bv.next(k)), delta))
	}
	var quant []lit.Var
	for k := 0; k < bv.nL; k++ {
		quant = append(quant, bv.state(k))
	}
	for j := 0; j < bv.nI; j++ {
		quant = append(quant, bv.input(j))
	}
	r = m.ExistsVars(r, quant)

	nextSpace := func() *cube.Space {
		vars := make([]lit.Var, bv.nL)
		for k := range vars {
			vars[k] = bv.next(k)
		}
		return cube.NewSpace(vars)
	}()
	stateSpace := StateSpace(c)
	states := canonicalize(stateSpace, m.ISOP(r, nextSpace))
	return &Result{
		States:     states,
		StateSpace: stateSpace,
		Count:      m.SatCountIn(r, nextSpace.Vars()),
		BDDNodes:   m.NumNodes(),
		Engine:     EngineBDD,
	}, budget.None, nil
}

// gateBDDs builds the per-gate BDDs over (state, input) variables; shared
// by the preimage and image BDD engines.
func gateBDDs(m *bdd.Manager, c *circuit.Circuit, bv bddVars, order []int) ([]bdd.Ref, error) {
	val := make([]bdd.Ref, len(c.Gates))
	latchPos := make(map[int]int, bv.nL)
	for k, gi := range c.Latches {
		latchPos[gi] = k
	}
	inputPos := make(map[int]int, bv.nI)
	for j, gi := range c.Inputs {
		inputPos[gi] = j
	}
	for _, i := range order {
		g := &c.Gates[i]
		switch g.Type {
		case circuit.Input:
			val[i] = m.Var(bv.input(inputPos[i]))
		case circuit.DFF:
			val[i] = m.Var(bv.state(latchPos[i]))
		case circuit.Const0:
			val[i] = bdd.False
		case circuit.Const1:
			val[i] = bdd.True
		case circuit.Buf:
			val[i] = val[g.Fanins[0]]
		case circuit.Not:
			val[i] = m.Not(val[g.Fanins[0]])
		case circuit.And, circuit.Nand:
			r := bdd.True
			for _, f := range g.Fanins {
				r = m.And(r, val[f])
			}
			if g.Type == circuit.Nand {
				r = m.Not(r)
			}
			val[i] = r
		case circuit.Or, circuit.Nor:
			r := bdd.False
			for _, f := range g.Fanins {
				r = m.Or(r, val[f])
			}
			if g.Type == circuit.Nor {
				r = m.Not(r)
			}
			val[i] = r
		case circuit.Xor:
			val[i] = m.Xor(val[g.Fanins[0]], val[g.Fanins[1]])
		case circuit.Xnor:
			val[i] = m.Xnor(val[g.Fanins[0]], val[g.Fanins[1]])
		default:
			return nil, fmt.Errorf("preimage: unsupported gate %v", g.Type)
		}
	}
	return val, nil
}
