package preimage

// Incremental reachability paths: the iterated entry points (Reach,
// ForwardReach, KStepPreimage, CheckReachable's trace extraction) backed
// by one persistent incr.Session instead of a fresh instance per step.
// The circuit is encoded once, learned clauses and the success-driven
// memo survive retargeting, and frontiers never round-trip through a
// second BDD manager. The produced frontiers, counts, and verdicts are
// bit-identical to the fresh path (see DESIGN.md §10); only the resource
// accounting differs — budgets are session-global rather than per-step.

import (
	"fmt"
	"math/big"
	"time"

	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/circuit"
	"allsatpre/internal/core"
	"allsatpre/internal/cube"
	"allsatpre/internal/incr"
	"allsatpre/internal/lit"
	"allsatpre/internal/sat"
	"allsatpre/internal/simplify"
	"allsatpre/internal/trans"
)

// useIncremental reports whether the incremental session path applies:
// it implements only the success-driven engine, and neither per-step
// variable elimination (the clause database must persist) nor Restrict
// (a per-step unit constraint) compose with a persistent solver.
func useIncremental(opts Options) bool {
	return opts.Incremental && opts.Engine == EngineSuccessDriven &&
		!opts.EliminateAux && opts.Restrict == nil
}

// incrOptions translates preimage options into session options with the
// same budget-precedence rule as runSuccessDriven: an explicitly set
// engine budget wins over the computation budget.
func incrOptions(opts Options) incr.Options {
	workers := opts.Parallel
	if workers < 1 {
		workers = 1
	}
	co := opts.Core
	if co.IsZero() {
		co = core.DefaultOptions()
	}
	bud := co.Budget
	if bud.IsZero() {
		bud = opts.Budget
	}
	co.Budget = budget.Budget{}
	return incr.Options{
		Workers:    workers,
		Core:       co,
		Budget:     bud,
		InputFirst: opts.InputFirstOrder,
		Interleave: opts.Interleave,
		// Sessions default off regardless of the one-shot default: only an
		// explicit On opts in (Auto means "context default", and the
		// incremental context's default is no preprocessing).
		Simplify: opts.Simplify == simplify.On,
		Stats:    opts.Stats,
	}
}

// reachIncremental is Reach over one backward session: the per-step
// loop is the same as the fresh path's, but the visited set lives in the
// session manager (over CNF state variable ids) and each layer's state
// set comes from the session via ∃-quantification instead of a cover
// re-import. Frontier covers are extracted over the instance state space
// — positionally identical to the canonical-space covers, since both
// managers keep the latches in declaration order — and canonicalized for
// the result.
func reachIncremental(c *circuit.Circuit, target *cube.Cover, maxSteps int, opts Options) (*ReachResult, error) {
	runStats := opts.Stats
	stateSpace := StateSpace(c)
	sess, err := incr.NewBackward(c, incrOptions(opts))
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	man := sess.Manager()
	cnfSpace := sess.StateSpace()
	stateVars := sess.StateVars()

	targetC := canonicalize(stateSpace, target)
	visited := man.FromCover(sess.Instance().RetargetCover(targetC))
	res := &ReachResult{
		StateSpace:     stateSpace,
		Frontiers:      []*cube.Cover{targetC},
		FrontierCounts: []*big.Int{man.SatCountIn(visited, stateVars)},
	}
	frontier := targetC

	for step := 0; maxSteps <= 0 || step < maxSteps; step++ {
		if frontier.Len() == 0 {
			res.Fixpoint = true
			break
		}
		start := time.Now()
		st, err := sess.Step(frontier)
		if err != nil {
			return nil, err
		}
		res.Steps++
		accumulate(&res.Stats, st.Stats)
		if st.Stats.BDDNodes > res.BDDNodes {
			res.BDDNodes = st.Stats.BDDNodes
		}
		if st.Aborted {
			res.Aborted = true
			if res.AbortReason == budget.None {
				res.AbortReason = st.Reason
			}
		}
		if runStats != nil {
			recordStats(runStats.Phase(fmt.Sprintf("step%02d", step)), &Result{
				Stats:       st.Stats,
				BDDNodes:    st.Stats.BDDNodes,
				Engine:      opts.Engine,
				Aborted:     st.Aborted,
				AbortReason: st.Reason,
			}, time.Since(start))
		}
		preSet := sess.StateSet(st.Set)
		newSet := man.Diff(preSet, visited)
		if newSet == bdd.False {
			if !st.Aborted {
				res.Fixpoint = true
			}
			break
		}
		exact := man.ISOP(newSet, cnfSpace)
		if opts.FrontierSimplify {
			simp := man.SimplifyWith(newSet, man.Not(visited))
			frontier = man.ISOP(simp, cnfSpace)
		} else {
			frontier = exact
		}
		visited = man.Or(visited, newSet)
		res.Frontiers = append(res.Frontiers, canonicalize(stateSpace, exact))
		res.FrontierCounts = append(res.FrontierCounts, man.SatCountIn(newSet, stateVars))
		if st.Aborted {
			break
		}
	}
	res.All = canonicalize(stateSpace, man.ISOP(visited, cnfSpace))
	res.AllCount = man.SatCountIn(visited, stateVars)
	return res, nil
}

// forwardReachIncremental is ForwardReach over one forward session. The
// session enumerates over the deduplicated next-state variables; each
// image cover is expanded back onto the full latch order (shared
// next-state gates) and merged into a canonical-space visited set, the
// one cover round-trip the forward direction keeps.
func forwardReachIncremental(c *circuit.Circuit, init *cube.Cover, maxSteps int, opts Options) (*ReachResult, error) {
	runStats := opts.Stats
	stateSpace := StateSpace(c)
	sess, err := incr.NewForward(c, incrOptions(opts))
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	man := bdd.NewOrdered(stateSpace.Vars())

	initC := canonicalize(stateSpace, init)
	visited := man.FromCover(initC)
	res := &ReachResult{
		StateSpace:     stateSpace,
		Frontiers:      []*cube.Cover{initC},
		FrontierCounts: []*big.Int{man.SatCount(visited)},
	}
	frontier := initC
	for step := 0; maxSteps <= 0 || step < maxSteps; step++ {
		if frontier.Len() == 0 {
			res.Fixpoint = true
			break
		}
		start := time.Now()
		st, err := sess.Step(frontier)
		if err != nil {
			return nil, err
		}
		res.Steps++
		accumulate(&res.Stats, st.Stats)
		if st.Stats.BDDNodes > res.BDDNodes {
			res.BDDNodes = st.Stats.BDDNodes
		}
		if st.Aborted {
			res.Aborted = true
			if res.AbortReason == budget.None {
				res.AbortReason = st.Reason
			}
		}
		if runStats != nil {
			recordStats(runStats.Phase(fmt.Sprintf("step%02d", step)), &Result{
				Stats:       st.Stats,
				BDDNodes:    st.Stats.BDDNodes,
				Engine:      opts.Engine,
				Aborted:     st.Aborted,
				AbortReason: st.Reason,
			}, time.Since(start))
		}
		imgCover := ExpandNextCover(sess.Instance().NextVars, sess.ProjSpace(),
			sess.Manager().ISOP(st.Set, sess.ProjSpace()), stateSpace)
		imgCover.Reduce()
		imgSet := man.FromCover(imgCover)
		newSet := man.Diff(imgSet, visited)
		if newSet == bdd.False {
			if !st.Aborted {
				res.Fixpoint = true
			}
			break
		}
		visited = man.Or(visited, newSet)
		frontier = man.ISOP(newSet, stateSpace)
		res.Frontiers = append(res.Frontiers, frontier)
		res.FrontierCounts = append(res.FrontierCounts, man.SatCount(newSet))
		if st.Aborted {
			break
		}
	}
	res.All = man.ISOP(visited, stateSpace)
	res.AllCount = man.SatCount(visited)
	return res, nil
}

// kstepIncremental is KStepPreimage over one backward session: a BFS
// union of the first k+1 backward layers. The union equals the unrolled
// formula's projection, and ISOP over the same latch order makes the
// returned cover bit-identical to the fresh path's on unbudgeted runs
// (abort timing necessarily differs between one unrolled enumeration and
// k separate layers).
func kstepIncremental(c *circuit.Circuit, target *cube.Cover, k int, opts Options) (*Result, error) {
	stateSpace := StateSpace(c)
	sess, err := incr.NewBackward(c, incrOptions(opts))
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	man := sess.Manager()
	cnfSpace := sess.StateSpace()
	stateVars := sess.StateVars()

	targetC := canonicalize(stateSpace, target)
	visited := man.FromCover(sess.Instance().RetargetCover(targetC))
	out := &Result{StateSpace: stateSpace, Engine: opts.Engine}
	frontier := targetC
	for step := 0; step < k; step++ {
		if frontier.Len() == 0 {
			break
		}
		st, err := sess.Step(frontier)
		if err != nil {
			return nil, err
		}
		accumulate(&out.Stats, st.Stats)
		if st.Stats.BDDNodes > out.BDDNodes {
			out.BDDNodes = st.Stats.BDDNodes
		}
		if st.Aborted {
			out.Aborted = true
			if out.AbortReason == budget.None {
				out.AbortReason = st.Reason
			}
		}
		newSet := man.Diff(sess.StateSet(st.Set), visited)
		if newSet == bdd.False {
			break
		}
		visited = man.Or(visited, newSet)
		if st.Aborted {
			// Merge the sound partial layer, then stop deepening.
			break
		}
		frontier = man.ISOP(newSet, cnfSpace)
	}
	states := canonicalize(stateSpace, man.ISOP(visited, cnfSpace))
	states.Reduce()
	out.States = states
	out.Count = man.SatCountIn(visited, stateVars)
	return out, nil
}

// traceStepper replays a counterexample trace with one persistent
// transition instance and SAT solver: each layer's target is gated on a
// fresh activation literal (trans.Retarget) and retired with a unit,
// instead of rebuilding the CNF and solver per layer. Learned clauses
// mentioning a retired activation variable are permanently satisfied by
// its unit, so the plain CDCL solver needs no group GC.
type traceStepper struct {
	inst   *trans.Instance
	s      *sat.Solver
	act    lit.Lit
	hasAct bool
}

func newTraceStepper(c *circuit.Circuit) (*traceStepper, error) {
	inst, err := trans.NewBaseInstance(c)
	if err != nil {
		return nil, err
	}
	return &traceStepper{inst: inst, s: sat.FromFormula(inst.F, sat.DefaultOptions())}, nil
}

// step finds one input vector moving the concrete state cur into the
// target set — the incremental counterpart of stepInto.
func (ts *traceStepper) step(cur []bool, target *cube.Cover) (inputs, next []bool, err error) {
	if ts.hasAct {
		ts.s.AddClause(ts.act.Not())
	}
	st, err := ts.inst.Retarget(target, ts.s.NewVar)
	if err != nil {
		return nil, nil, err
	}
	ts.act, ts.hasAct = st.Act, true
	ok := true
	for _, cl := range st.Clauses {
		ok = ts.s.AddClause(cl...) && ok
	}
	if !ok {
		return nil, nil, fmt.Errorf("no transition from %v into the layer", cur)
	}
	assume := make([]lit.Lit, 0, len(ts.inst.StateVars)+1)
	for i, v := range ts.inst.StateVars {
		assume = append(assume, lit.New(v, !cur[i]))
	}
	assume = append(assume, st.Act)
	switch ts.s.Solve(assume...) {
	case sat.Sat:
	case sat.Unsat:
		return nil, nil, fmt.Errorf("no transition from %v into the layer", cur)
	default:
		return nil, nil, fmt.Errorf("budget exhausted during trace extraction")
	}
	m := ts.s.Model()
	inputs = make([]bool, len(ts.inst.InputVars))
	for i, v := range ts.inst.InputVars {
		inputs[i] = m[v]
	}
	next = make([]bool, len(ts.inst.NextVars))
	for i, v := range ts.inst.NextVars {
		next[i] = m[v]
	}
	return inputs, next, nil
}
