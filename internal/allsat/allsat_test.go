package allsat

import (
	"math/big"
	"math/rand"
	"testing"

	"allsatpre/internal/cnf"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
)

func projSpace(vars ...int) *cube.Space {
	vs := make([]lit.Var, len(vars))
	for i, v := range vars {
		vs[i] = lit.Var(v)
	}
	return cube.NewSpace(vs)
}

func randomFormula(rng *rand.Rand, nVars, nClauses, k int) *cnf.Formula {
	f := cnf.New(nVars)
	for i := 0; i < nClauses; i++ {
		c := make(cnf.Clause, 0, k)
		for len(c) < k {
			v := lit.Var(rng.Intn(nVars))
			dup := false
			for _, x := range c {
				if x.Var() == v {
					dup = true
					break
				}
			}
			if !dup {
				c = append(c, lit.New(v, rng.Intn(2) == 0))
			}
		}
		f.AddClause(c)
	}
	return f
}

// wantProjections computes the ground-truth projection set by brute force.
func wantProjections(f *cnf.Formula, space *cube.Space) map[string]bool {
	return f.ProjectedModels(space.Vars())
}

// gotProjections expands a result cover into the set of projected
// minterm strings.
func gotProjections(r *Result) map[string]bool {
	out := make(map[string]bool)
	n := r.Space.Size()
	m := make([]bool, n)
	for x := 0; x < 1<<uint(n); x++ {
		for i := 0; i < n; i++ {
			m[i] = x&(1<<uint(i)) != 0
		}
		if r.Cover.Contains(m) {
			buf := make([]byte, n)
			for i := range m {
				if m[i] {
					buf[i] = '1'
				} else {
					buf[i] = '0'
				}
			}
			out[string(buf)] = true
		}
	}
	return out
}

func sameSet(t *testing.T, tag string, want, got map[string]bool) {
	t.Helper()
	for k := range want {
		if !got[k] {
			t.Fatalf("%s: missing projection %s", tag, k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Fatalf("%s: spurious projection %s", tag, k)
		}
	}
}

func TestBlockingAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for iter := 0; iter < 200; iter++ {
		nVars := 3 + rng.Intn(8)
		f := randomFormula(rng, nVars, 1+rng.Intn(4*nVars), 3)
		nProj := 1 + rng.Intn(nVars)
		vars := rng.Perm(nVars)[:nProj]
		space := projSpace(vars...)
		want := wantProjections(f, space)
		r := EnumerateBlocking(f.Clone(), space, Options{})
		if r.Aborted {
			t.Fatalf("iter %d: unexpected abort", iter)
		}
		sameSet(t, "blocking", want, gotProjections(r))
		if r.Count.Cmp(big.NewInt(int64(len(want)))) != 0 {
			t.Fatalf("iter %d: count %v, want %d", iter, r.Count, len(want))
		}
		// Blocking cubes are full minterms: one cube per projection.
		if int(r.Stats.Cubes) != len(want) {
			t.Fatalf("iter %d: %d cubes, want %d", iter, r.Stats.Cubes, len(want))
		}
	}
}

func TestLiftingAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for iter := 0; iter < 200; iter++ {
		nVars := 3 + rng.Intn(8)
		f := randomFormula(rng, nVars, 1+rng.Intn(4*nVars), 3)
		nProj := 1 + rng.Intn(nVars)
		vars := rng.Perm(nVars)[:nProj]
		space := projSpace(vars...)
		want := wantProjections(f, space)
		r := EnumerateLifting(f.Clone(), space, Options{})
		sameSet(t, "lifting", want, gotProjections(r))
		if r.Count.Cmp(big.NewInt(int64(len(want)))) != 0 {
			t.Fatalf("iter %d: count %v, want %d", iter, r.Count, len(want))
		}
		// Lifting can only reduce the number of cubes relative to
		// blocking, never produce more cubes than projections.
		if int(r.Stats.Cubes) > len(want) {
			t.Fatalf("iter %d: %d cubes for %d projections", iter, r.Stats.Cubes, len(want))
		}
	}
}

func TestLiftingCubesAreSound(t *testing.T) {
	// Every cube the lifting engine emits must be entirely inside the
	// projection (checked cube-by-cube, not just as a union).
	rng := rand.New(rand.NewSource(303))
	for iter := 0; iter < 120; iter++ {
		nVars := 3 + rng.Intn(7)
		f := randomFormula(rng, nVars, 1+rng.Intn(3*nVars), 3)
		nProj := 1 + rng.Intn(nVars)
		vars := rng.Perm(nVars)[:nProj]
		space := projSpace(vars...)
		want := wantProjections(f, space)
		r := EnumerateLifting(f.Clone(), space, Options{})
		n := space.Size()
		m := make([]bool, n)
		for _, c := range r.Cover.Cubes() {
			for x := 0; x < 1<<uint(n); x++ {
				for i := 0; i < n; i++ {
					m[i] = x&(1<<uint(i)) != 0
				}
				if !c.ContainsMinterm(m) {
					continue
				}
				buf := make([]byte, n)
				for i := range m {
					if m[i] {
						buf[i] = '1'
					} else {
						buf[i] = '0'
					}
				}
				if !want[string(buf)] {
					t.Fatalf("iter %d: cube %s covers non-solution %s", iter, c, buf)
				}
			}
		}
	}
}

func TestUnsatFormula(t *testing.T) {
	f := cnf.New(2)
	f.Add(lit.Pos(0))
	f.Add(lit.Neg(0))
	for _, enum := range []func(*cnf.Formula, *cube.Space, Options) *Result{
		EnumerateBlocking, EnumerateLifting,
	} {
		r := enum(f.Clone(), projSpace(0, 1), Options{})
		if r.Cover.Len() != 0 || r.Count.Sign() != 0 {
			t.Fatal("UNSAT formula should yield empty cover")
		}
	}
}

func TestTautologyFullSpace(t *testing.T) {
	// Empty clause set: every projection is a solution. The first lifted
	// cube should be fully free and cover everything.
	f := cnf.New(3)
	r := EnumerateLifting(f.Clone(), projSpace(0, 1, 2), Options{})
	if r.Count.Cmp(big.NewInt(8)) != 0 {
		t.Fatalf("count %v, want 8", r.Count)
	}
	if r.Stats.Cubes != 1 {
		t.Fatalf("want a single universal cube, got %d", r.Stats.Cubes)
	}
}

func TestMaxCubesAborts(t *testing.T) {
	f := cnf.New(4) // tautology over 4 vars: 16 projections
	r := EnumerateBlocking(f.Clone(), projSpace(0, 1, 2, 3), Options{MaxCubes: 3})
	if !r.Aborted {
		t.Fatal("expected abort")
	}
	if r.Stats.Cubes != 3 {
		t.Fatalf("enumerated %d cubes, want 3", r.Stats.Cubes)
	}
}

func TestLiftOrderOverride(t *testing.T) {
	// f = (x0): projection over {x0, x1}. Lifting must free x1 whichever
	// order is used; with explicit order listing only position 0 it must
	// NOT free position 1... order lists positions to *try*, so listing
	// only position 1 frees x1 but never x0.
	f := cnf.New(2)
	f.Add(lit.Pos(0))
	space := projSpace(0, 1)
	r := EnumerateLifting(f.Clone(), space, Options{LiftOrder: []int{1}})
	if r.Count.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("count %v, want 2", r.Count)
	}
	if r.Stats.Cubes != 1 {
		t.Fatalf("cubes = %d, want 1 (x1 freed immediately)", r.Stats.Cubes)
	}
	if r.Cover.Cubes()[0].String() != "1X" {
		t.Fatalf("cube = %s, want 1X", r.Cover.Cubes()[0])
	}
}

func TestProjectionVariableOutsideClauses(t *testing.T) {
	// A projection variable that appears in no clause must be free in the
	// result (both engines).
	f := cnf.New(3)
	f.Add(lit.Pos(0), lit.Pos(1))
	space := projSpace(0, 2)
	want := wantProjections(f, space)
	for _, tc := range []struct {
		name string
		enum func(*cnf.Formula, *cube.Space, Options) *Result
	}{
		{"blocking", EnumerateBlocking},
		{"lifting", EnumerateLifting},
	} {
		r := tc.enum(f.Clone(), space, Options{})
		sameSet(t, tc.name, want, gotProjections(r))
	}
}

func TestStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	f := randomFormula(rng, 8, 20, 3)
	space := projSpace(0, 1, 2)
	r := EnumerateBlocking(f.Clone(), space, Options{})
	if r.Stats.Solutions != r.Stats.Cubes {
		t.Error("blocking: one cube per solution expected")
	}
	if r.Stats.BlockingClauses != r.Stats.Cubes && r.Stats.BlockingClauses != r.Stats.Cubes-1 {
		// The last cube may cover the whole space and skip its clause.
		t.Errorf("blocking clauses %d vs cubes %d", r.Stats.BlockingClauses, r.Stats.Cubes)
	}
	if r.Stats.BDDNodes == 0 {
		t.Error("BDD node count missing")
	}
}

func TestLiftingShortensBlockingClauses(t *testing.T) {
	// On a wide OR, models lift to tiny cubes; blocking stays full width.
	n := 10
	f := cnf.New(n)
	c := make(cnf.Clause, n)
	for i := range c {
		c[i] = lit.Pos(lit.Var(i))
	}
	f.AddClause(c)
	vars := make([]int, n)
	for i := range vars {
		vars[i] = i
	}
	space := projSpace(vars...)
	rb := EnumerateBlocking(f.Clone(), space, Options{})
	rl := EnumerateLifting(f.Clone(), space, Options{})
	if rb.Count.Cmp(rl.Count) != 0 {
		t.Fatalf("engines disagree: %v vs %v", rb.Count, rl.Count)
	}
	if rl.Stats.Cubes >= rb.Stats.Cubes {
		t.Fatalf("lifting should use fewer cubes: %d vs %d", rl.Stats.Cubes, rb.Stats.Cubes)
	}
	avgB := float64(rb.Stats.BlockingLits) / float64(rb.Stats.BlockingClauses)
	avgL := float64(rl.Stats.BlockingLits) / float64(rl.Stats.BlockingClauses)
	if avgL >= avgB {
		t.Fatalf("lifted blocking clauses should be shorter: %.1f vs %.1f", avgL, avgB)
	}
}
