package allsat

import (
	"allsatpre/internal/budget"
	"allsatpre/internal/cnf"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
	rt "allsatpre/internal/runtime"
	"allsatpre/internal/sat"
	"allsatpre/internal/simplify"
)

// DisjointIterator streams the pairwise-disjoint solution cubes of the
// blocking-clause-free engine (sat.ChronoEnum): chronological
// backtracking advances enumeration by flipping decisions in place, and
// implicant shrinking generalizes each model into a short cube, so the
// clause database never grows with the number of solutions. It mirrors
// the Iterator surface, so the same drivers (sequential loop, parallel
// workers) run either engine.
type DisjointIterator struct {
	s      *sat.Solver
	rt     *rt.Runtime // pool the solver returns to on Close (may be nil)
	ch     *sat.ChronoEnum
	space  *cube.Space
	done   bool
	reason budget.Reason
	stats  Stats
}

// NewDisjointIterator prepares a disjoint enumeration of the solutions of
// f projected onto space. An Options.Budget bounds the whole iteration;
// when it trips, Next returns false and Reason reports the limit. Unless
// opts.Simplify is Off, f is preprocessed first (on a clone); cubes stay
// pairwise disjoint and their union is unchanged — simplification
// preserves the projected solution set, and unit clauses pinning subcube
// prefixes are frozen (projection vars), so they survive the pass.
func NewDisjointIterator(f *cnf.Formula, space *cube.Space, opts Options) *DisjointIterator {
	var sstats simplify.Stats
	f, sstats = maybeSimplify(f, space, &opts)
	satOpts := opts.SAT
	if satOpts.Budget.IsZero() {
		satOpts.Budget = opts.Budget.Materialize()
	}
	s := acquireLoaded(f, satOpts, opts.Runtime)
	it := &DisjointIterator{
		s:     s,
		rt:    opts.Runtime,
		ch:    sat.NewChronoEnum(s, space.Vars()),
		space: space,
	}
	it.stats.Simplify = sstats
	return it
}

// Next returns the next solution cube, or ok=false when the enumeration
// is exhausted or a budget tripped. Returned cubes are pairwise disjoint;
// their union converges to the exact projection.
func (it *DisjointIterator) Next() (cube.Cube, bool) {
	if it.done {
		return nil, false
	}
	switch it.ch.Next() {
	case sat.Sat:
		c := it.space.FullCube()
		for _, l := range it.ch.Cube() {
			c[it.space.PosOf(l.Var())] = lit.TernOf(!l.Sign())
		}
		it.stats.Solutions++
		it.stats.Cubes++
		it.stats.LiftedFree += uint64(c.FreeVars())
		return c, true
	case sat.Unknown:
		it.reason = it.ch.StopReason()
	}
	it.done = true
	it.captureStats()
	return nil, false
}

// Exhausted reports whether the enumeration has completed.
func (it *DisjointIterator) Exhausted() bool { return it.done }

// Reason reports why the iteration stopped before exhausting the solution
// set (budget.None when it ran to completion or is still running).
func (it *DisjointIterator) Reason() budget.Reason { return it.reason }

// Aborted reports whether a resource limit cut the iteration short.
func (it *DisjointIterator) Aborted() bool { return it.reason != budget.None }

// Stats returns the counters accumulated so far. BlockingClauses is zero
// by construction — the engine's defining property.
func (it *DisjointIterator) Stats() Stats {
	it.captureStats()
	return it.stats
}

// Close ends the iteration and releases the solver back to the runtime
// pool (a no-op without one). The ChronoEnum wrapped around the solver
// is dropped with it — a Reset solver must never be driven by a stale
// enumerator. Idempotent; Stats stays valid.
func (it *DisjointIterator) Close() {
	if it.s == nil {
		return
	}
	it.captureStats()
	it.done = true
	s := it.s
	it.s = nil
	it.ch = nil
	it.rt.P().ReleaseSolver(s)
}

func (it *DisjointIterator) captureStats() {
	if it.s == nil {
		return
	}
	ss := it.s.Stats()
	it.stats.Decisions = ss.Decisions
	it.stats.Propagations = ss.Propagations
	it.stats.Conflicts = ss.Conflicts
	it.stats.PeakLearnts = uint64(ss.PeakLearnts)
	it.stats.PeakLearntBytes = ss.PeakLearntBytes
	it.stats.ArenaBytes = ss.ArenaBytes
	it.stats.LearntsCore = uint64(ss.LearntsCore)
	it.stats.LearntsTier2 = uint64(ss.LearntsTier2)
	it.stats.LearntsLocal = uint64(ss.LearntsLocal)
}
