package allsat

import (
	"allsatpre/internal/budget"
	"allsatpre/internal/cnf"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
	rt "allsatpre/internal/runtime"
	"allsatpre/internal/sat"
	"allsatpre/internal/simplify"
)

// Iterator enumerates projected solutions one cube at a time, so callers
// can stop early (first witness, bounded sampling, streaming consumers)
// without an up-front cube cap. It drives the blocking loop — optionally
// with lifting — underneath.
type Iterator struct {
	s        *sat.Solver
	rt       *rt.Runtime // pool the solver returns to on Close (may be nil)
	space    *cube.Space
	lifter   *modelLifter
	modelBuf []bool // reused across Next calls via ModelBuf
	done     bool
	reason   budget.Reason // why enumeration stopped early, None if exhausted
	stats    Stats
}

// NewIterator prepares an iterator over the solutions of f projected onto
// space. With lift, each returned cube is greedily enlarged first. An
// Options.Budget bounds the whole iteration; when it trips, Next returns
// false and Reason reports the limit. Unless opts.Simplify is Off, f is
// preprocessed first (on a clone; the caller's formula is untouched) —
// the stream denotes the same solution set either way.
func NewIterator(f *cnf.Formula, space *cube.Space, opts Options, lift bool) *Iterator {
	var sstats simplify.Stats
	f, sstats = maybeSimplify(f, space, &opts)
	satOpts := opts.SAT
	if satOpts.Budget.IsZero() {
		satOpts.Budget = opts.Budget.Materialize()
	}
	it := &Iterator{
		s:     acquireLoaded(f, satOpts, opts.Runtime),
		rt:    opts.Runtime,
		space: space,
	}
	it.stats.Simplify = sstats
	if lift {
		// Lift against the simplified formula: a cube all of whose
		// completions satisfy the simplified formula denotes completions
		// inside its projection, which equals the original's projection.
		it.lifter = newModelLifter(f, space, opts.LiftOrder)
	}
	return it
}

// Next returns the next solution cube, or ok=false when the enumeration
// is exhausted. Cubes may overlap when lifting; their union converges to
// the exact projection.
func (it *Iterator) Next() (cube.Cube, bool) {
	if it.done {
		return nil, false
	}
	st := it.s.Solve()
	if st != sat.Sat {
		it.done = true
		if st == sat.Unknown {
			it.reason = it.s.StopReason()
		}
		it.captureStats()
		return nil, false
	}
	it.stats.Solutions++
	it.modelBuf = it.s.ModelBuf(it.modelBuf)
	model := it.modelBuf
	var c cube.Cube
	if it.lifter != nil {
		c = it.lifter.lift(model)
		it.stats.LiftedFree += uint64(c.FreeVars())
	} else {
		c = it.space.FromModel(model)
	}
	it.stats.Cubes++

	var blocking []lit.Lit
	for pos, t := range c {
		if t == lit.Unknown {
			continue
		}
		blocking = append(blocking, lit.New(it.space.Vars()[pos], t == lit.True))
	}
	it.stats.BlockingClauses++
	it.stats.BlockingLits += uint64(len(blocking))
	if len(blocking) == 0 || !it.s.AddClause(blocking...) {
		it.done = true
		it.captureStats()
	}
	return c, true
}

// Exhausted reports whether the enumeration has completed.
func (it *Iterator) Exhausted() bool { return it.done }

// Reason reports why the iteration stopped before exhausting the solution
// set (budget.None when it ran to completion or is still running). A
// non-None reason means the cubes seen so far are a subset of the
// projection, not all of it.
func (it *Iterator) Reason() budget.Reason { return it.reason }

// Aborted reports whether a resource limit cut the iteration short.
func (it *Iterator) Aborted() bool { return it.reason != budget.None }

// Stats returns the counters accumulated so far.
func (it *Iterator) Stats() Stats {
	it.captureStats()
	return it.stats
}

// Close ends the iteration and releases the solver back to the runtime
// pool (a no-op without one). Idempotent; Next returns false afterwards
// and Stats stays valid.
func (it *Iterator) Close() {
	if it.s == nil {
		return
	}
	it.captureStats()
	it.done = true
	s := it.s
	it.s = nil
	it.rt.P().ReleaseSolver(s)
}

func (it *Iterator) captureStats() {
	if it.s == nil {
		return
	}
	ss := it.s.Stats()
	it.stats.Decisions = ss.Decisions
	it.stats.Propagations = ss.Propagations
	it.stats.Conflicts = ss.Conflicts
	it.stats.PeakLearnts = uint64(ss.PeakLearnts)
	it.stats.PeakLearntBytes = ss.PeakLearntBytes
	it.stats.ArenaBytes = ss.ArenaBytes
	it.stats.LearntsCore = uint64(ss.LearntsCore)
	it.stats.LearntsTier2 = uint64(ss.LearntsTier2)
	it.stats.LearntsLocal = uint64(ss.LearntsLocal)
}
