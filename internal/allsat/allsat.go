// Package allsat provides all-solutions SAT enumeration with projection:
// given a CNF formula and a set of projection variables, it computes the
// set of projected assignments extendable to a model, as a cube cover.
//
// Three engines live here:
//
//   - EnumerateBlocking — the classical all-SAT loop: solve, project the
//     model, add a blocking clause over every projection variable, repeat.
//   - EnumerateLifting — the same loop, but each model is first lifted
//     (greedily minimized into a short cube whose every completion still
//     satisfies the formula), so one blocking clause removes 2^k
//     projections at once.
//   - EnumerateDisjoint — blocking-clause-free enumeration by
//     chronological backtracking with implicant shrinking (sat.ChronoEnum):
//     pairwise-disjoint cubes and O(1) clause-database growth — one
//     in-place flip per region instead of one blocking clause per cube.
//
// The paper's contribution — the success-driven enumerator that stores
// solutions directly as an ROBDD and memoizes completed subproblems — is
// implemented in internal/core and shares this package's Result type.
package allsat

import (
	"math/big"

	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/cnf"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
	rt "allsatpre/internal/runtime"
	"allsatpre/internal/sat"
	"allsatpre/internal/simplify"
)

// Stats aggregates enumeration counters.
type Stats struct {
	// Solutions is the number of satisfying assignments the underlying
	// solver produced (one per iteration for the blocking engines; the
	// number of 1-leaves reached for the success-driven engine).
	Solutions uint64
	// Cubes is the number of cubes emitted into the cover.
	Cubes uint64
	// BlockingClauses / BlockingLits measure added blocking clauses.
	BlockingClauses, BlockingLits uint64
	// LiftedFree is the total count of projection variables freed by
	// lifting (or by early cutoff in the success-driven engine, or by
	// implicant shrinking in the disjoint engine).
	LiftedFree uint64
	// PeakLearnts is the high-water count of learnt clauses held by the
	// underlying CDCL solver (summed across parallel workers, which run
	// concurrently). Together with BlockingClauses it measures clause-
	// database growth: the disjoint engine keeps BlockingClauses at zero
	// by construction.
	PeakLearnts uint64
	// PeakLearntBytes is the high-water arena footprint of live learnt
	// clauses in bytes (summed across workers). With the tiered learnt
	// database, clause counts are incomparable across engines (core
	// clauses are permanent, locals churn), so the byte watermark is the
	// apples-to-apples memory measure alongside PeakLearnts.
	PeakLearntBytes uint64
	// ArenaBytes is the clause-arena footprint at capture time (summed
	// across workers); LearntsCore/Tier2/Local are the live per-tier
	// learnt counts at the same instant.
	ArenaBytes                              uint64
	LearntsCore, LearntsTier2, LearntsLocal uint64
	// Decisions/Propagations/Conflicts come from the underlying search.
	Decisions, Propagations, Conflicts uint64
	// CacheLookups/CacheHits/CacheClears count success-driven memo
	// activity; a clear is a wholesale memo reset at the memo bound.
	CacheLookups, CacheHits, CacheClears uint64
	// BDDNodes is the node count of the solution BDD (success-driven) or
	// of the counting BDD (blocking engines).
	BDDNodes int
	// Kernel snapshots the BDD manager's unique-table and apply-cache
	// gauges for the run (merged across managers when several are used).
	Kernel bdd.KernelStats
	// Simplify reports the preprocessing pass (Simplify.Applied is false
	// when simplification was disabled for the run).
	Simplify simplify.Stats
}

// Result is the outcome of an enumeration.
type Result struct {
	// Space is the projection space (one position per projection var).
	Space *cube.Space
	// Cover is the set of projected solutions as cubes. Cubes may overlap
	// (for the lifting engine; the disjoint engine's are pairwise
	// disjoint); their union is exactly the projection.
	Cover *cube.Cover
	// Count is the exact number of projected minterms.
	Count *big.Int
	// Aborted is true when a resource limit (MaxCubes, the solver's
	// conflict cap, or the Budget) stopped enumeration early; Cover is
	// then a subset of the projection — a sound under-approximation, never
	// garbage. Reason says which limit tripped.
	Aborted bool
	Reason  budget.Reason
	// Stats holds the search counters.
	Stats Stats
}

// Options tunes the enumeration engines.
type Options struct {
	// MaxCubes bounds the number of enumerated cubes (0 = unlimited).
	// The cap is exact for every worker count: a parallel run's merged
	// cover contains exactly min(MaxCubes, |full cover|) cubes — workers
	// claim cap slots atomically, so the cap is never overshot.
	MaxCubes uint64
	// SAT configures the underlying CDCL solver (zero value = defaults).
	SAT sat.Options
	// LiftOrder optionally overrides the greedy lifting order: it is the
	// list of projection-space positions to try to free, first to last.
	LiftOrder []int
	// Budget imposes wall-clock/cancellation/cube limits across the whole
	// enumeration loop (the SAT sub-budget in SAT.Budget applies per
	// solver). The zero Budget is unbounded.
	Budget budget.Budget
	// Workers > 1 fans the enumeration out over guiding-path subcubes of
	// the projection space, one fresh solver per subcube (see parallel.go).
	// The merged cover denotes the same solution set as the sequential
	// run for every worker count. 0 or 1 enumerates sequentially.
	Workers int
	// Simplify controls projection-safe CNF preprocessing ahead of
	// enumeration (internal/simplify): bounded elimination of auxiliary
	// variables, subsumption, self-subsuming resolution, and top-level
	// failed-literal probing, with the projection variables (plus Frozen)
	// never eliminated — so the enumerated cover is identical with or
	// without it. Auto resolves to on for the Enumerate* entry points and
	// the public iterators; pass Off when the input clause indices must
	// stay stable (e.g. proof logging).
	Simplify simplify.Mode
	// Frozen names extra variables beyond the projection space that the
	// simplifier must preserve: activation/selector literals, next-state
	// variables a caller will constrain incrementally.
	Frozen []lit.Var
	// Runtime, when non-nil, attaches the pooled execution substrate:
	// solvers and BDD managers come warm from Runtime.Pool (Reset instead
	// of reconstructed — bit-identical results, pinned by the reuse
	// equivalence suite), and parallel subcube jobs run on Runtime.Sched's
	// shared fair-share executors instead of per-request goroutines. Nil
	// keeps the classic behavior.
	Runtime *rt.Runtime
}

// maybeSimplify preprocesses f (on a clone — the caller's formula is
// never mutated) when opts.Simplify resolves to enabled, freezing the
// projection variables plus opts.Frozen. It flips opts.Simplify to Off so
// inner layers (parallel fallback, per-worker iterators) never re-run the
// pass on the already-simplified formula.
func maybeSimplify(f *cnf.Formula, space *cube.Space, opts *Options) (*cnf.Formula, simplify.Stats) {
	if !opts.Simplify.Enabled(true) {
		return f, simplify.Stats{}
	}
	opts.Simplify = simplify.Off
	frozen := make([]bool, f.NumVars)
	for _, v := range space.Vars() {
		if int(v) < len(frozen) {
			frozen[v] = true
		}
	}
	for _, v := range opts.Frozen {
		if int(v) < len(frozen) {
			frozen[v] = true
		}
	}
	sf := f.Clone()
	res := simplify.Run(sf, func(v lit.Var) bool { return frozen[v] }, simplify.Options{})
	return sf, res.Stats
}

// countCover computes the exact minterm count of a cover by building its
// BDD over the projection space, reporting the manager's kernel gauges.
// The counting manager comes from (and returns to) the warm pool when
// one is attached; node counts and the count itself are identical either
// way — canonicity does not depend on table capacity.
func countCover(cv *cube.Cover, p *rt.Pool) (*big.Int, int, bdd.KernelStats) {
	m := p.AcquireManager(cv.Space().Vars(), 0)
	f := m.FromCover(cv)
	count, nodes, kernel := m.SatCount(f), m.NumNodes(), m.Kernel()
	p.ReleaseManager(m)
	return count, nodes, kernel
}

// acquireLoaded obtains an iterator's solver — warm from the runtime
// pool when one is attached, fresh otherwise — and bulk-loads f into it.
func acquireLoaded(f *cnf.Formula, satOpts sat.Options, r *rt.Runtime) *sat.Solver {
	s := r.P().AcquireSolver(satOpts, uint64(f.NumVars)*64)
	s.LoadFormula(f)
	return s
}

// engineKind selects which streaming iterator drives the shared
// enumeration loop.
type engineKind int

const (
	engBlocking engineKind = iota
	engLifting
	engDisjoint
)

// cubeIterator is the streaming surface shared by the per-engine
// iterators; the sequential loop and the parallel workers drive it.
type cubeIterator interface {
	Next() (cube.Cube, bool)
	Reason() budget.Reason
	Stats() Stats
	// Close releases pooled resources (the solver) back to the runtime
	// pool; the iterator is spent afterwards. Idempotent, nil-pool-safe.
	Close()
}

func newKindIterator(f *cnf.Formula, space *cube.Space, opts Options, eng engineKind) cubeIterator {
	if eng == engDisjoint {
		return NewDisjointIterator(f, space, opts)
	}
	return NewIterator(f, space, opts, eng == engLifting)
}

// EnumerateBlocking runs the classical blocking-clause all-SAT loop,
// projecting onto the variables of space.
func EnumerateBlocking(f *cnf.Formula, space *cube.Space, opts Options) *Result {
	return enumerateEngine(f, space, opts, engBlocking)
}

// EnumerateLifting runs the blocking-clause loop with greedy cube lifting:
// each model is minimized into a cube over the projection variables before
// being blocked.
func EnumerateLifting(f *cnf.Formula, space *cube.Space, opts Options) *Result {
	return enumerateEngine(f, space, opts, engLifting)
}

// EnumerateDisjoint runs the blocking-clause-free engine: chronological
// backtracking with implicant shrinking yields pairwise-disjoint cubes
// whose union is the exact projection, while the clause database stays
// O(1) in the number of solutions (Stats.BlockingClauses is always zero).
func EnumerateDisjoint(f *cnf.Formula, space *cube.Space, opts Options) *Result {
	return enumerateEngine(f, space, opts, engDisjoint)
}

func enumerateEngine(f *cnf.Formula, space *cube.Space, opts Options, eng engineKind) *Result {
	f, sstats := maybeSimplify(f, space, &opts)
	res := enumerateSimplified(f, space, opts, eng)
	res.Stats.Simplify = sstats
	return res
}

func enumerateSimplified(f *cnf.Formula, space *cube.Space, opts Options, eng engineKind) *Result {
	if opts.Workers > 1 && space.Size() > 0 {
		return enumerateParallel(f, space, opts, eng)
	}
	// Share the enumeration budget with the solver so a deadline or
	// cancellation interrupts a long solver call, not just the loop
	// between calls. An explicit solver budget wins (inside the iterator).
	bud := opts.Budget.Materialize()
	opts.Budget = bud
	res := &Result{Space: space, Cover: cube.NewCover(space), Count: new(big.Int)}
	it := newKindIterator(f, space, opts, eng)

	maxCubes := bud.MergeCubes(opts.MaxCubes)
	var n uint64
	for {
		if maxCubes > 0 && n >= maxCubes {
			res.Aborted = true
			res.Reason = budget.Cubes
			break
		}
		c, ok := it.Next()
		if !ok {
			if r := it.Reason(); r != budget.None {
				// Budget exhausted; the cover so far is a sound
				// under-approximation.
				res.Aborted = true
				res.Reason = r
			}
			break
		}
		res.Cover.Add(c)
		n++
	}

	res.Stats = it.Stats()
	it.Close()
	var kernel bdd.KernelStats
	res.Count, res.Stats.BDDNodes, kernel = countCover(res.Cover, opts.Runtime.P())
	res.Stats.Kernel.Merge(kernel)
	return res
}

// modelLifter greedily minimizes models into cubes. It indexes, for every
// projection variable, the clauses in which each of its phases occurs, and
// maintains per-clause counts of currently-satisfying literals.
type modelLifter struct {
	f     *cnf.Formula
	space *cube.Space
	order []int
	// occ[l] lists clause indexes containing literal l.
	occ [][]int
	// satCnt[i] is the number of true literals of clause i under the
	// current (partial) assignment; scratch, rebuilt per model.
	satCnt []int
}

func newModelLifter(f *cnf.Formula, space *cube.Space, order []int) *modelLifter {
	ml := &modelLifter{
		f:      f,
		space:  space,
		occ:    make([][]int, 2*f.NumVars),
		satCnt: make([]int, len(f.Clauses)),
	}
	for ci, c := range f.Clauses {
		for _, l := range c {
			ml.occ[l] = append(ml.occ[l], ci)
		}
	}
	if order == nil {
		// Default: free positions from the last to the first, which for
		// preimage instances frees primary inputs before state bits.
		order = make([]int, space.Size())
		for i := range order {
			order[i] = space.Size() - 1 - i
		}
	}
	ml.order = append([]int(nil), order...)
	return ml
}

// lift returns a cube over the projection space, containing the model's
// projection, all of whose completions satisfy every clause of f.
func (ml *modelLifter) lift(model []bool) cube.Cube {
	// Count satisfying literals per clause under the full model.
	for i, c := range ml.f.Clauses {
		n := 0
		for _, l := range c {
			if int(l.Var()) < len(model) && model[l.Var()] != l.Sign() {
				n++
			}
		}
		ml.satCnt[i] = n
	}
	out := ml.space.FromModel(model)
	for _, pos := range ml.order {
		v := ml.space.Vars()[pos]
		if int(v) >= len(model) {
			out[pos] = lit.Unknown
			continue
		}
		// The literal of v that is true under the model.
		trueLit := lit.New(v, !model[v])
		ok := true
		for _, ci := range ml.occ[trueLit] {
			if ml.satCnt[ci] <= 1 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, ci := range ml.occ[trueLit] {
			ml.satCnt[ci]--
		}
		out[pos] = lit.Unknown
	}
	return out
}
