package allsat

import (
	"math/rand"
	"testing"

	"allsatpre/internal/budget"
	"allsatpre/internal/cnf"
)

// TestDisjointAgainstBruteForce checks the blocking-clause-free engine on
// random instances: the cover must equal the brute-force projection, the
// cubes must be pairwise disjoint, and — the engine's defining property —
// no blocking clauses may ever be added.
func TestDisjointAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		nVars := 4 + rng.Intn(7)
		f := randomFormula(rng, nVars, 1+rng.Intn(4*nVars), 3)
		vars := rng.Perm(nVars)[:1+rng.Intn(nVars)]
		space := projSpace(vars...)
		want := wantProjections(f, space)

		r := EnumerateDisjoint(f.Clone(), space, Options{})
		if r.Aborted {
			t.Fatalf("trial %d: aborted without a budget (%v)", trial, r.Reason)
		}
		sameSet(t, "disjoint", want, gotProjections(r))
		if r.Stats.BlockingClauses != 0 {
			t.Fatalf("trial %d: %d blocking clauses added by the blocking-free engine",
				trial, r.Stats.BlockingClauses)
		}
		cubes := r.Cover.Cubes()
		for i := range cubes {
			for j := i + 1; j < len(cubes); j++ {
				if !cubes[i].Disjoint(cubes[j]) {
					t.Fatalf("trial %d: cubes %v and %v overlap", trial, cubes[i], cubes[j])
				}
			}
		}
	}
}

// TestDisjointParallelWorkerSweep checks that the guiding-path-partitioned
// disjoint enumeration yields the same solution set as the sequential run
// for every worker count, keeps the merged cubes pairwise disjoint, and
// still adds zero blocking clauses.
func TestDisjointParallelWorkerSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := randomFormula(rng, 12, 30, 3)
	space := projSpace(0, 1, 2, 3, 4, 5, 6, 7)
	want := wantProjections(f, space)
	for _, workers := range []int{1, 2, 4, 8} {
		r := EnumerateDisjoint(f.Clone(), space, Options{Workers: workers})
		if r.Aborted {
			t.Fatalf("workers=%d: aborted without a budget (%v)", workers, r.Reason)
		}
		sameSet(t, "disjoint-parallel", want, gotProjections(r))
		if r.Stats.BlockingClauses != 0 {
			t.Fatalf("workers=%d: %d blocking clauses", workers, r.Stats.BlockingClauses)
		}
		cubes := r.Cover.Cubes()
		for i := range cubes {
			for j := i + 1; j < len(cubes); j++ {
				if !cubes[i].Disjoint(cubes[j]) {
					t.Fatalf("workers=%d: cubes %v and %v overlap", workers, cubes[i], cubes[j])
				}
			}
		}
	}
}

// TestDisjointMaxCubes: the cube cap aborts the disjoint enumeration with
// the cap respected exactly, like the other engines.
func TestDisjointMaxCubes(t *testing.T) {
	f := cnf.New(5) // tautology: 32 minterms, many cubes
	r := EnumerateDisjoint(f.Clone(), projSpace(0, 1, 2, 3, 4), Options{MaxCubes: 1})
	if !r.Aborted || r.Reason != budget.Cubes {
		t.Fatalf("aborted=%v reason=%v, want cube-cap abort", r.Aborted, r.Reason)
	}
	if r.Cover.Len() != 1 {
		t.Fatalf("cover has %d cubes, want exactly 1", r.Cover.Len())
	}
}

// TestDisjointBudgetAbort: a tripped solver budget surfaces as an aborted
// result with the recorded reason rather than a silent partial cover.
func TestDisjointBudgetAbort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := randomFormula(rng, 14, 25, 3)
	space := projSpace(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	r := EnumerateDisjoint(f.Clone(), space, Options{
		Budget: budget.Budget{MaxDecisions: 5},
	})
	if !r.Aborted {
		t.Fatal("5-decision budget never tripped")
	}
	if r.Reason != budget.Decisions {
		t.Fatalf("reason %v, want decisions", r.Reason)
	}
}

// TestDisjointStatsPopulated: the solver counters and the learnt-clause
// high-water mark flow through the disjoint iterator's Stats.
func TestDisjointStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := randomFormula(rng, 10, 40, 3)
	space := projSpace(0, 1, 2)
	r := EnumerateDisjoint(f.Clone(), space, Options{})
	if r.Count == nil || r.Count.Sign() == 0 {
		t.Skip("instance unsat; pick another seed")
	}
	if r.Stats.Decisions == 0 || r.Stats.Propagations == 0 {
		t.Fatalf("solver counters missing: %+v", r.Stats)
	}
	if r.Stats.Cubes == 0 || r.Stats.Solutions == 0 {
		t.Fatalf("enumeration counters missing: %+v", r.Stats)
	}
}
