package allsat

// Mid-stream cancellation tests: a consumer that cancels the budget
// context after N cubes must see the iterator stop promptly with
// Reason() == budget.Cancelled, with the sibling workers wound down and
// no goroutines left behind. This is the contract the streaming service
// leans on to abort solves when a client disconnects.

import (
	"context"
	"runtime"
	"testing"
	"time"

	"allsatpre/internal/budget"
	"allsatpre/internal/cnf"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
)

// pairsFormula builds (x0 v x1)(x2 v x3)...(x_{2n-2} v x_{2n-1}) over
// the full 2n-variable projection. Its minimum disjoint cover is the
// product of the per-pair covers {1X, 01} — 2^n cubes — so cancelling
// after a handful of cubes is guaranteed to strike mid-enumeration.
func pairsFormula(pairs int) (*cnf.Formula, *cube.Space) {
	f := cnf.New(2 * pairs)
	vars := make([]lit.Var, 2*pairs)
	for i := 0; i < pairs; i++ {
		f.Add(lit.Pos(lit.Var(2*i)), lit.Pos(lit.Var(2*i+1)))
	}
	for i := range vars {
		vars[i] = lit.Var(i)
	}
	return f, cube.NewSpace(vars)
}

// waitGoroutines polls until the goroutine count returns to the
// baseline taken before the iterator was built.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines stuck at %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDisjointIteratorCancelMidStream(t *testing.T) {
	f, space := pairsFormula(18) // >= 2^18 disjoint cubes
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	it := NewDisjointIterator(f, space, Options{Budget: budget.Budget{Ctx: ctx}})

	var got []cube.Cube
	for i := 0; i < 5; i++ {
		c, ok := it.Next()
		if !ok {
			t.Fatalf("stream dried up after %d cubes (%v)", i, it.Reason())
		}
		got = append(got, c.Clone())
	}
	cancel()
	// ChronoEnum checks the budget at every cube boundary, so the very
	// next call must stop — no buffering in the sequential iterator.
	if _, ok := it.Next(); ok {
		t.Fatal("iterator produced a cube after cancellation")
	}
	if it.Reason() != budget.Cancelled {
		t.Fatalf("reason = %v, want %v", it.Reason(), budget.Cancelled)
	}
	// The prefix delivered before the cut must still be pairwise disjoint.
	for i := range got {
		for j := i + 1; j < len(got); j++ {
			if !got[i].Disjoint(got[j]) {
				t.Fatalf("cubes %v and %v overlap", got[i], got[j])
			}
		}
	}
}

func TestParallelDisjointIteratorCancelMidStream(t *testing.T) {
	baseline := runtime.NumGoroutine()
	f, space := pairsFormula(18)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	it := NewParallelDisjointIterator(f, space, Options{
		Workers: 4, Budget: budget.Budget{Ctx: ctx},
	})

	for i := 0; i < 8; i++ {
		if _, ok := it.Next(); !ok {
			t.Fatalf("stream dried up after %d cubes (%v)", i, it.Reason())
		}
	}
	cancel()
	// Drain whatever the workers had buffered; the channel must close.
	drained := 0
	for {
		_, ok := it.Next()
		if !ok {
			break
		}
		if drained++; drained > 1024 {
			t.Fatalf("workers still producing %d cubes after cancel", drained)
		}
	}
	if it.Reason() != budget.Cancelled {
		t.Fatalf("reason = %v, want %v", it.Reason(), budget.Cancelled)
	}
	if !it.Exhausted() {
		t.Fatal("iterator not exhausted after cancellation drain")
	}
	it.Stop()
	// All workers, the feed goroutine, and the closer must be gone.
	waitGoroutines(t, baseline)
}

func TestParallelIteratorCancelReleasesWorkers(t *testing.T) {
	baseline := runtime.NumGoroutine()
	f, space := pairsFormula(15)
	ctx, cancel := context.WithCancel(context.Background())
	it := NewParallelIterator(f, space, Options{
		Workers: 4, Budget: budget.Budget{Ctx: ctx},
	}, false)
	if _, ok := it.Next(); !ok {
		t.Fatalf("no first cube (%v)", it.Reason())
	}
	// Cancel without draining — the abandoning-client shape. Stop is the
	// only call the consumer still owes the iterator.
	cancel()
	it.Stop()
	if it.Reason() != budget.Cancelled {
		t.Fatalf("reason = %v, want %v", it.Reason(), budget.Cancelled)
	}
	waitGoroutines(t, baseline)
}
