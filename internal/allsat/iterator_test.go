package allsat

import (
	"math/big"
	"math/rand"
	"testing"

	"allsatpre/internal/cnf"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
)

func drain(it *Iterator, space *cube.Space) *Cover {
	cv := cube.NewCover(space)
	for {
		c, ok := it.Next()
		if !ok {
			return &Cover{cv}
		}
		cv.Add(c)
	}
}

// Cover is a tiny wrapper to keep the helper local.
type Cover struct{ *cube.Cover }

func TestIteratorMatchesBatchEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for iter := 0; iter < 80; iter++ {
		nVars := 3 + rng.Intn(7)
		f := randomFormula(rng, nVars, 1+rng.Intn(3*nVars), 3)
		nProj := 1 + rng.Intn(nVars)
		vars := rng.Perm(nVars)[:nProj]
		space := projSpace(vars...)
		for _, lift := range []bool{false, true} {
			batch := EnumerateBlocking(f.Clone(), space, Options{})
			it := NewIterator(f.Clone(), space, Options{}, lift)
			got := drain(it, space)
			m, n := countCoverMinterms(got.Cover), batch.Count
			if m.Cmp(n) != 0 {
				t.Fatalf("iter %d lift=%v: iterator %v vs batch %v", iter, lift, m, n)
			}
			if !it.Exhausted() {
				t.Fatal("drained iterator should be exhausted")
			}
			if _, ok := it.Next(); ok {
				t.Fatal("Next after exhaustion should fail")
			}
		}
	}
}

func countCoverMinterms(cv *cube.Cover) *big.Int {
	c, _, _ := countCover(cv, nil)
	return c
}

func TestIteratorEarlyStop(t *testing.T) {
	// Take only the first 3 solutions of a 16-solution space.
	f := cnf.New(4)
	space := projSpace(0, 1, 2, 3)
	it := NewIterator(f, space, Options{}, false)
	seen := 0
	for seen < 3 {
		if _, ok := it.Next(); !ok {
			t.Fatal("premature exhaustion")
		}
		seen++
	}
	if it.Exhausted() {
		t.Fatal("iterator should still have work")
	}
	if st := it.Stats(); st.Cubes != 3 {
		t.Fatalf("stats cubes = %d, want 3", st.Cubes)
	}
}

func TestIteratorUnsat(t *testing.T) {
	f := cnf.New(1)
	f.Add(lit.Pos(0))
	f.Add(lit.Neg(0))
	it := NewIterator(f, projSpace(0), Options{}, false)
	if _, ok := it.Next(); ok {
		t.Fatal("UNSAT formula should yield nothing")
	}
	if !it.Exhausted() {
		t.Fatal("should be exhausted")
	}
}

func TestIteratorLiftedCubesOverlapButConverge(t *testing.T) {
	// Wide OR: lifting yields few large cubes whose union is correct.
	n := 8
	f := cnf.New(n)
	c := make(cnf.Clause, n)
	for i := range c {
		c[i] = lit.Pos(lit.Var(i))
	}
	f.AddClause(c)
	vars := make([]int, n)
	for i := range vars {
		vars[i] = i
	}
	space := projSpace(vars...)
	it := NewIterator(f.Clone(), space, Options{}, true)
	got := drain(it, space)
	want := EnumerateBlocking(f.Clone(), space, Options{})
	if countCoverMinterms(got.Cover).Cmp(want.Count) != 0 {
		t.Fatal("lifted iterator union wrong")
	}
	if st := it.Stats(); st.Cubes >= want.Stats.Cubes {
		t.Fatalf("lifting should need fewer cubes: %d vs %d", st.Cubes, want.Stats.Cubes)
	}
}
