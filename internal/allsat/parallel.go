package allsat

import (
	"context"
	"sync"
	"sync/atomic"

	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/cnf"
	"allsatpre/internal/cube"
	"allsatpre/internal/partition"
	"allsatpre/internal/simplify"
)

// Parallel returns a copy of the options with the worker count set —
// the fluent spelling of Options.Workers for call sites that start from
// a literal or a default.
func (o Options) Parallel(workers int) Options {
	o.Workers = workers
	return o
}

// restrictFormula clones the formula and pins a guiding-path subcube
// with unit clauses. Each parallel worker enumerates such a restricted
// clone with its own solver; the units also pin the subcube prefix
// against lifting (a unit clause has exactly one satisfying literal, so
// the lifter can never free its variable), which keeps the per-subcube
// covers disjoint even for the lifting engine.
func restrictFormula(f *cnf.Formula, space *cube.Space, s partition.Subcube) *cnf.Formula {
	rf := f.Clone()
	for _, l := range s.Assumptions(space, nil) {
		rf.AddClause(cnf.Clause{l})
	}
	return rf
}

// enumerateParallel fans an engine's enumeration loop out over
// guiding-path subcubes: the projection space is split into disjoint prefix subcubes,
// workers drain them from a shared feed (each subcube enumerated by a
// fresh solver on a restricted clone), and the per-subcube covers are
// concatenated in subcube order — so the merged cover is deterministic
// for a fixed split depth, and as a solution set it equals the
// sequential enumeration for every worker count.
func enumerateParallel(f *cnf.Formula, space *cube.Space, opts Options, eng engineKind) *Result {
	bud := opts.Budget.Materialize()
	workers := opts.Workers
	k := partition.PrefixDepth(space, workers, 2)
	subs := partition.Split(space, k)
	if len(subs) <= 1 {
		// f is already simplified by the enumerateEngine entry point
		// (opts.Simplify is Off here), so skip straight to the loop.
		seq := opts
		seq.Workers = 0
		return enumerateSimplified(f, space, seq, eng)
	}
	if workers > len(subs) {
		workers = len(subs)
	}

	// The cube cap is global: workers claim slots from a shared counter.
	// The first abort records its reason and cancels the siblings via a
	// shared context threaded into every worker's solver budget.
	maxCubes := bud.MergeCubes(opts.MaxCubes)
	var cubeCount atomic.Uint64
	base := context.Background()
	if bud.Ctx != nil {
		base = bud.Ctx
	}
	ctx, cancel := context.WithCancel(base)
	defer cancel()
	var abortReason atomic.Int32
	record := func(r budget.Reason) {
		if r != budget.None && abortReason.CompareAndSwap(0, int32(r)) {
			cancel()
		}
	}
	wopts := opts
	wopts.Workers = 0
	wopts.MaxCubes = 0
	wopts.Budget = bud
	wopts.Budget.Ctx = ctx
	wopts.Budget.MaxCubes = 0

	type subOut struct {
		cubes []cube.Cube
		stats Stats
	}
	outs := make([]subOut, len(subs))
	runSub := func(i int) {
		it := newKindIterator(restrictFormula(f, space, subs[i]), space, wopts, eng)
		var cubes []cube.Cube
		for {
			if maxCubes > 0 && cubeCount.Load() >= maxCubes {
				record(budget.Cubes)
				break
			}
			c, ok := it.Next()
			if !ok {
				record(it.Reason())
				break
			}
			// Claim the slot before keeping the cube: the shared
			// counter only ever holds kept cubes plus transient
			// over-claims that are immediately returned, so the
			// merged cover respects the cap exactly — checking
			// Load() before Add() would let two workers pass at
			// maxCubes-1 and overshoot by up to workers-1.
			if maxCubes > 0 && cubeCount.Add(1) > maxCubes {
				cubeCount.Add(^uint64(0)) // unclaim
				record(budget.Cubes)
				break
			}
			cubes = append(cubes, c)
		}
		outs[i] = subOut{cubes: cubes, stats: it.Stats()}
		it.Close()
	}

	if sched := opts.Runtime.S(); sched != nil {
		// Scheduler mode: one job per subcube on the server-wide executor
		// pool, fair-shared against every other in-flight request. outs is
		// indexed by subcube, so the merged cover is byte-identical to the
		// goroutine mode regardless of dispatch order.
		var wg sync.WaitGroup
		wg.Add(len(subs))
		for i := range subs {
			sched.Submit(opts.Runtime.Tenant, func() {
				defer wg.Done()
				if ctx.Err() == nil {
					runSub(i)
				}
			})
		}
		wg.Wait()
	} else {
		feed := make(chan int)
		go func() {
			defer close(feed)
			for i := range subs {
				select {
				case feed <- i:
				case <-ctx.Done():
					return
				}
			}
		}()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range feed {
					runSub(i)
					if ctx.Err() != nil {
						return
					}
				}
			}()
		}
		wg.Wait()
	}

	res := &Result{Space: space, Cover: cube.NewCover(space)}
	for _, o := range outs {
		for _, c := range o.cubes {
			res.Cover.Add(c)
		}
		s := o.stats
		res.Stats.Solutions += s.Solutions
		res.Stats.Cubes += s.Cubes
		res.Stats.BlockingClauses += s.BlockingClauses
		res.Stats.BlockingLits += s.BlockingLits
		res.Stats.LiftedFree += s.LiftedFree
		res.Stats.PeakLearnts += s.PeakLearnts
		res.Stats.PeakLearntBytes += s.PeakLearntBytes
		res.Stats.ArenaBytes += s.ArenaBytes
		res.Stats.LearntsCore += s.LearntsCore
		res.Stats.LearntsTier2 += s.LearntsTier2
		res.Stats.LearntsLocal += s.LearntsLocal
		res.Stats.Decisions += s.Decisions
		res.Stats.Propagations += s.Propagations
		res.Stats.Conflicts += s.Conflicts
	}
	var kernel bdd.KernelStats
	res.Count, res.Stats.BDDNodes, kernel = countCover(res.Cover, opts.Runtime.P())
	res.Stats.Kernel.Merge(kernel)
	if r := budget.Reason(abortReason.Load()); r != budget.None {
		res.Aborted = true
		res.Reason = r
	}
	return res
}

// ParallelIterator streams solution cubes from a pool of workers, each
// enumerating one guiding-path subcube at a time on its own solver. The
// arrival order is scheduling-dependent (unlike the sequential Iterator),
// but the multiset of cubes drains the same disjoint subcube covers.
type ParallelIterator struct {
	ch     chan cube.Cube
	cancel context.CancelFunc
	reason atomic.Int32
	done   atomic.Bool

	mu    sync.Mutex
	stats Stats

	// Scheduler mode (runtime-backed): subcube jobs run on the shared
	// executors, which must never block on a slow consumer — cubes
	// accumulate in buf under mu and Next waits on cond instead of a
	// bounded channel. The lost backpressure is bounded by the request's
	// cube/budget fences (the collect-then-merge paths buffer the whole
	// cover anyway).
	sched   bool
	cond    *sync.Cond
	buf     []cube.Cube
	bufHead int
	closed  bool // every subcube job finished
	stopped bool // consumer called Stop
}

// NewParallelIterator starts opts.Workers workers (minimum 1) and
// returns the streaming iterator over the blocking (or, with lift, the
// lifting) engine. Callers must either drain it or call Stop to release
// the workers.
func NewParallelIterator(f *cnf.Formula, space *cube.Space, opts Options, lift bool) *ParallelIterator {
	eng := engBlocking
	if lift {
		eng = engLifting
	}
	return newParallelIterator(f, space, opts, eng)
}

// NewParallelDisjointIterator is NewParallelIterator for the disjoint
// engine. The per-subcube covers stay pairwise disjoint: every cube pins
// its subcube's unit prefix (level-0 literals are never shrunk away).
func NewParallelDisjointIterator(f *cnf.Formula, space *cube.Space, opts Options) *ParallelIterator {
	return newParallelIterator(f, space, opts, engDisjoint)
}

func newParallelIterator(f *cnf.Formula, space *cube.Space, opts Options, eng engineKind) *ParallelIterator {
	var sstats simplify.Stats
	f, sstats = maybeSimplify(f, space, &opts)
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	bud := opts.Budget.Materialize()
	base := context.Background()
	if bud.Ctx != nil {
		base = bud.Ctx
	}
	ctx, cancel := context.WithCancel(base)
	p := &ParallelIterator{
		ch:     make(chan cube.Cube, 4*workers),
		cancel: cancel,
	}
	p.stats.Simplify = sstats
	k := partition.PrefixDepth(space, workers, 2)
	subs := partition.Split(space, k)
	if workers > len(subs) {
		workers = len(subs)
	}
	wopts := opts
	wopts.Workers = 0
	wopts.Budget = bud
	wopts.Budget.Ctx = ctx

	if sched := opts.Runtime.S(); sched != nil {
		p.sched = true
		p.cond = sync.NewCond(&p.mu)
		var pending atomic.Int64
		pending.Store(int64(len(subs)))
		for i := range subs {
			sched.Submit(opts.Runtime.Tenant, func() {
				if ctx.Err() == nil {
					it := newKindIterator(restrictFormula(f, space, subs[i]), space, wopts, eng)
					for {
						c, ok := it.Next()
						if !ok {
							p.record(it.Reason())
							break
						}
						p.push(c)
					}
					p.fold(it.Stats())
					it.Close()
				}
				if pending.Add(-1) == 0 {
					p.mu.Lock()
					p.closed = true
					p.mu.Unlock()
					p.cond.Broadcast()
				}
			})
		}
		return p
	}

	feed := make(chan int)
	go func() {
		defer close(feed)
		for i := range subs {
			select {
			case feed <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				it := newKindIterator(restrictFormula(f, space, subs[i]), space, wopts, eng)
				for {
					c, ok := it.Next()
					if !ok {
						p.record(it.Reason())
						break
					}
					select {
					case p.ch <- c:
					case <-ctx.Done():
						// Cancelled while blocked on a full stream: record it, or
						// a consumer that drains the buffered cubes would read the
						// truncated enumeration as complete (Reason stays None when
						// a sibling's budget abort cancelled us first — the CAS in
						// record keeps the first reason).
						p.record(budget.Cancelled)
						p.fold(it.Stats())
						it.Close()
						return
					}
				}
				p.fold(it.Stats())
				it.Close()
				if ctx.Err() != nil {
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(p.ch)
	}()
	return p
}

// record stores the first abort reason and cancels the siblings: one
// tripped budget stops the whole pool promptly (matching
// enumerateParallel's first-abort-cancels-all semantics) instead of
// letting the remaining workers keep burning their own budgets.
func (p *ParallelIterator) record(r budget.Reason) {
	if r != budget.None && p.reason.CompareAndSwap(0, int32(r)) {
		p.cancel()
	}
}

func (p *ParallelIterator) fold(s Stats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Solutions += s.Solutions
	p.stats.Cubes += s.Cubes
	p.stats.BlockingClauses += s.BlockingClauses
	p.stats.BlockingLits += s.BlockingLits
	p.stats.LiftedFree += s.LiftedFree
	p.stats.PeakLearnts += s.PeakLearnts
	p.stats.PeakLearntBytes += s.PeakLearntBytes
	p.stats.ArenaBytes += s.ArenaBytes
	p.stats.LearntsCore += s.LearntsCore
	p.stats.LearntsTier2 += s.LearntsTier2
	p.stats.LearntsLocal += s.LearntsLocal
	p.stats.Decisions += s.Decisions
	p.stats.Propagations += s.Propagations
	p.stats.Conflicts += s.Conflicts
}

// push appends a cube to the scheduler-mode buffer and wakes a consumer.
func (p *ParallelIterator) push(c cube.Cube) {
	p.mu.Lock()
	p.buf = append(p.buf, c)
	p.mu.Unlock()
	p.cond.Signal()
}

// Next returns the next solution cube, or ok=false once every worker has
// drained its subcubes (or Stop/a budget cut them short).
func (p *ParallelIterator) Next() (cube.Cube, bool) {
	if !p.sched {
		c, ok := <-p.ch
		if !ok {
			p.done.Store(true)
		}
		return c, ok
	}
	p.mu.Lock()
	for p.bufHead >= len(p.buf) && !p.closed && !p.stopped {
		p.cond.Wait()
	}
	if p.bufHead < len(p.buf) && !p.stopped {
		c := p.buf[p.bufHead]
		p.buf[p.bufHead] = nil
		p.bufHead++
		p.mu.Unlock()
		return c, true
	}
	p.mu.Unlock()
	p.done.Store(true)
	return nil, false
}

// Stop cancels the workers and drains the stream. Safe to call more than
// once and after exhaustion.
func (p *ParallelIterator) Stop() {
	p.cancel()
	if p.sched {
		p.mu.Lock()
		p.stopped = true
		p.mu.Unlock()
		p.cond.Broadcast()
		p.done.Store(true)
		return
	}
	for range p.ch {
	}
	p.done.Store(true)
}

// Close ends the iteration; the workers (or scheduler jobs) release
// their per-subcube iterators — and pooled solvers — as they wind down.
// It makes ParallelIterator satisfy the same closeable-iterator surface
// as the sequential iterators.
func (p *ParallelIterator) Close() { p.Stop() }

// Exhausted reports whether the stream has ended. Safe to call
// concurrently with Next/Stop.
func (p *ParallelIterator) Exhausted() bool { return p.done.Load() }

// Reason reports why the iteration stopped early (budget.None when it
// ran to completion or is still running).
func (p *ParallelIterator) Reason() budget.Reason {
	return budget.Reason(p.reason.Load())
}

// Aborted reports whether a resource limit cut the iteration short.
func (p *ParallelIterator) Aborted() bool { return p.Reason() != budget.None }

// Stats returns the counters folded in from finished subcube iterators.
func (p *ParallelIterator) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
