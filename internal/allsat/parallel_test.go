package allsat

import (
	"math/rand"
	"testing"

	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/cnf"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
)

// coverSet builds the canonical BDD of a cover so parallel and
// sequential runs can be compared as solution sets (lifting covers are
// representation-dependent; the denoted set is not).
func coverSet(m *bdd.Manager, cv *cube.Cover) bdd.Ref {
	return m.FromCover(cv)
}

func TestParallelBlockingEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1101))
	for iter := 0; iter < 25; iter++ {
		nVars := 5 + rng.Intn(6)
		f := randomFormula(rng, nVars, 1+rng.Intn(3*nVars), 3)
		nProj := 3 + rng.Intn(nVars-2)
		space := projSpace(rng.Perm(nVars)[:nProj]...)

		want := EnumerateBlocking(f.Clone(), space, Options{})
		m := bdd.NewOrdered(space.Vars())
		wantSet := coverSet(m, want.Cover)
		for _, workers := range []int{2, 4, 8} {
			got := EnumerateBlocking(f.Clone(), space, Options{}.Parallel(workers))
			if got.Count.Cmp(want.Count) != 0 {
				t.Fatalf("iter %d workers %d: count %v, want %v",
					iter, workers, got.Count, want.Count)
			}
			if coverSet(m, got.Cover) != wantSet {
				t.Fatalf("iter %d workers %d: blocking cover set differs", iter, workers)
			}
			// Blocking cubes are full assignments over disjoint subcubes:
			// the sorted cube lists must be identical, not just the sets.
			a, b := got.Cover.SortedKeys(), want.Cover.SortedKeys()
			if len(a) != len(b) {
				t.Fatalf("iter %d workers %d: %d cubes, want %d", iter, workers, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("iter %d workers %d: cube %d = %s, want %s",
						iter, workers, i, a[i], b[i])
				}
			}
		}
	}
}

func TestParallelLiftingEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2202))
	for iter := 0; iter < 25; iter++ {
		nVars := 5 + rng.Intn(6)
		f := randomFormula(rng, nVars, 1+rng.Intn(3*nVars), 3)
		nProj := 3 + rng.Intn(nVars-2)
		space := projSpace(rng.Perm(nVars)[:nProj]...)

		want := EnumerateLifting(f.Clone(), space, Options{})
		m := bdd.NewOrdered(space.Vars())
		wantSet := coverSet(m, want.Cover)
		for _, workers := range []int{2, 4, 8} {
			got := EnumerateLifting(f.Clone(), space, Options{Workers: workers})
			if got.Count.Cmp(want.Count) != 0 {
				t.Fatalf("iter %d workers %d: count %v, want %v",
					iter, workers, got.Count, want.Count)
			}
			// Lifted covers are representation-dependent; the solution sets
			// must agree exactly.
			if coverSet(m, got.Cover) != wantSet {
				t.Fatalf("iter %d workers %d: lifting cover set differs", iter, workers)
			}
		}
	}
}

// TestParallelMaxCubesExact is the regression test for the shared cube
// cap: workers must claim a slot atomically before keeping a cube, so the
// merged cover holds exactly min(MaxCubes, |full cover|) cubes at every
// worker count. The old check-then-act pattern (Load before Add) let up
// to workers-1 extra cubes through when several workers raced past the
// cap simultaneously.
func TestParallelMaxCubesExact(t *testing.T) {
	// x0..x5 unconstrained: 64 projected solutions.
	mk := func() *cnf.Formula {
		f := cnf.New(6)
		f.AddClause(cnf.Clause{lit.Pos(0), lit.Neg(0)})
		return f
	}
	space := projSpace(0, 1, 2, 3, 4, 5)
	for _, workers := range []int{1, 2, 4, 8} {
		for trial := 0; trial < 10; trial++ {
			r := EnumerateBlocking(mk(), space, Options{MaxCubes: 7, Workers: workers})
			if !r.Aborted || r.Reason != budget.Cubes {
				t.Fatalf("workers=%d: aborted=%v reason=%v, want cube abort",
					workers, r.Aborted, r.Reason)
			}
			if r.Cover.Len() != 7 {
				t.Fatalf("workers=%d trial %d: cover has %d cubes, want exactly 7",
					workers, trial, r.Cover.Len())
			}
		}
		// A cap above the full cover must not abort or truncate.
		r := EnumerateBlocking(mk(), space, Options{MaxCubes: 100, Workers: workers})
		if r.Aborted || r.Cover.Len() != 64 {
			t.Fatalf("workers=%d: aborted=%v len=%d, want full 64-cube cover",
				workers, r.Aborted, r.Cover.Len())
		}
	}
}

// TestParallelIteratorAbortCancelsSiblings is the regression test for the
// first-abort-cancels-all contract: when one worker's budget trips, the
// shared context must be cancelled so no further subcubes are handed out.
// Setup: 4 subcubes, 2 workers, and a per-solver decision budget that
// trips long before any subcube exhausts — so each worker processes
// exactly one subcube (its first pull) and then returns. Only subcubes 0
// and 1 can ever be pulled, and both fix order position 1 to false.
// Before the fix the abort reason was recorded without cancelling, each
// worker went back to the feed, and cubes from subcubes 2 and 3 (position
// 1 true) leaked into the stream.
func TestParallelIteratorAbortCancelsSiblings(t *testing.T) {
	f := cnf.New(12)
	f.AddClause(cnf.Clause{lit.Pos(0), lit.Neg(0)})
	space := projSpace(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11)
	for trial := 0; trial < 5; trial++ {
		it := NewParallelIterator(f.Clone(), space, Options{
			Workers: 2,
			Budget:  budget.Budget{MaxDecisions: 200},
		}, false)
		n := 0
		for {
			c, ok := it.Next()
			if !ok {
				break
			}
			n++
			if c[1] != lit.False {
				t.Fatalf("trial %d: cube %v from a subcube fed out after the abort", trial, c)
			}
		}
		if !it.Aborted() || it.Reason() != budget.Decisions {
			t.Fatalf("trial %d: aborted=%v reason=%v, want decision-budget abort",
				trial, it.Aborted(), it.Reason())
		}
		if !it.Exhausted() {
			t.Fatalf("trial %d: stream ended but Exhausted is false", trial)
		}
		if n == 0 {
			t.Fatalf("trial %d: no cubes before the budget tripped", trial)
		}
	}
}

// TestParallelIteratorExhaustedRace drives Exhausted concurrently with
// Next and Stop; run under -race it pins the atomic done flag (the field
// used to be a plain bool written by Next and read by Exhausted).
func TestParallelIteratorExhaustedRace(t *testing.T) {
	f := cnf.New(8)
	f.AddClause(cnf.Clause{lit.Pos(0), lit.Neg(0)})
	space := projSpace(0, 1, 2, 3, 4, 5, 6, 7)
	it := NewParallelIterator(f, space, Options{Workers: 4}, false)
	stop := make(chan struct{})
	go func() {
		defer close(stop)
		for !it.Exhausted() {
		}
	}()
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	<-stop
	if !it.Exhausted() {
		t.Fatal("drained stream not exhausted")
	}
}

// TestParallelDisjointIteratorDrains checks the streaming parallel form
// of the disjoint engine against the sequential cover as a solution set.
func TestParallelDisjointIteratorDrains(t *testing.T) {
	rng := rand.New(rand.NewSource(4404))
	for iter := 0; iter < 10; iter++ {
		nVars := 5 + rng.Intn(5)
		f := randomFormula(rng, nVars, 1+rng.Intn(3*nVars), 3)
		space := projSpace(rng.Perm(nVars)[:4]...)

		want := EnumerateDisjoint(f.Clone(), space, Options{})
		m := bdd.NewOrdered(space.Vars())
		wantSet := coverSet(m, want.Cover)

		it := NewParallelDisjointIterator(f.Clone(), space, Options{Workers: 4})
		got := cube.NewCover(space)
		for {
			c, ok := it.Next()
			if !ok {
				break
			}
			got.Add(c)
		}
		if it.Aborted() {
			t.Fatalf("iter %d: spurious abort: %v", iter, it.Reason())
		}
		if coverSet(m, got) != wantSet {
			t.Fatalf("iter %d: parallel disjoint iterator set differs", iter)
		}
		if it.Stats().BlockingClauses != 0 {
			t.Fatalf("iter %d: %d blocking clauses", iter, it.Stats().BlockingClauses)
		}
	}
}

func TestParallelIteratorDrainsProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(3303))
	for iter := 0; iter < 10; iter++ {
		nVars := 5 + rng.Intn(5)
		f := randomFormula(rng, nVars, 1+rng.Intn(3*nVars), 3)
		space := projSpace(rng.Perm(nVars)[:4]...)

		want := EnumerateBlocking(f.Clone(), space, Options{})
		m := bdd.NewOrdered(space.Vars())
		wantSet := coverSet(m, want.Cover)

		it := NewParallelIterator(f.Clone(), space, Options{Workers: 4}, false)
		got := cube.NewCover(space)
		for {
			c, ok := it.Next()
			if !ok {
				break
			}
			got.Add(c)
		}
		if it.Aborted() {
			t.Fatalf("iter %d: spurious abort: %v", iter, it.Reason())
		}
		if coverSet(m, got) != wantSet {
			t.Fatalf("iter %d: parallel iterator set differs", iter)
		}
		if it.Stats().Cubes != uint64(got.Len()) {
			t.Fatalf("iter %d: stats cubes %d, cover %d", iter, it.Stats().Cubes, got.Len())
		}
	}
}

func TestParallelIteratorStop(t *testing.T) {
	// Unconstrained 10-var projection (1024 cubes): take 3, stop, and the
	// workers must wind down without leaking or deadlocking.
	f := cnf.New(10)
	f.AddClause(cnf.Clause{lit.Pos(0), lit.Neg(0)})
	space := projSpace(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	it := NewParallelIterator(f, space, Options{Workers: 4}, false)
	for i := 0; i < 3; i++ {
		if _, ok := it.Next(); !ok {
			t.Fatalf("stream ended after %d cubes", i)
		}
	}
	it.Stop()
	if !it.Exhausted() {
		t.Fatal("iterator not exhausted after Stop")
	}
	if _, ok := it.Next(); ok {
		t.Fatal("Next succeeded after Stop drained the stream")
	}
}
