package allsat

import (
	"math/rand"
	"testing"

	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/cnf"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
)

// coverSet builds the canonical BDD of a cover so parallel and
// sequential runs can be compared as solution sets (lifting covers are
// representation-dependent; the denoted set is not).
func coverSet(m *bdd.Manager, cv *cube.Cover) bdd.Ref {
	return m.FromCover(cv)
}

func TestParallelBlockingEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1101))
	for iter := 0; iter < 25; iter++ {
		nVars := 5 + rng.Intn(6)
		f := randomFormula(rng, nVars, 1+rng.Intn(3*nVars), 3)
		nProj := 3 + rng.Intn(nVars-2)
		space := projSpace(rng.Perm(nVars)[:nProj]...)

		want := EnumerateBlocking(f.Clone(), space, Options{})
		m := bdd.NewOrdered(space.Vars())
		wantSet := coverSet(m, want.Cover)
		for _, workers := range []int{2, 4, 8} {
			got := EnumerateBlocking(f.Clone(), space, Options{}.Parallel(workers))
			if got.Count.Cmp(want.Count) != 0 {
				t.Fatalf("iter %d workers %d: count %v, want %v",
					iter, workers, got.Count, want.Count)
			}
			if coverSet(m, got.Cover) != wantSet {
				t.Fatalf("iter %d workers %d: blocking cover set differs", iter, workers)
			}
			// Blocking cubes are full assignments over disjoint subcubes:
			// the sorted cube lists must be identical, not just the sets.
			a, b := got.Cover.SortedKeys(), want.Cover.SortedKeys()
			if len(a) != len(b) {
				t.Fatalf("iter %d workers %d: %d cubes, want %d", iter, workers, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("iter %d workers %d: cube %d = %s, want %s",
						iter, workers, i, a[i], b[i])
				}
			}
		}
	}
}

func TestParallelLiftingEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2202))
	for iter := 0; iter < 25; iter++ {
		nVars := 5 + rng.Intn(6)
		f := randomFormula(rng, nVars, 1+rng.Intn(3*nVars), 3)
		nProj := 3 + rng.Intn(nVars-2)
		space := projSpace(rng.Perm(nVars)[:nProj]...)

		want := EnumerateLifting(f.Clone(), space, Options{})
		m := bdd.NewOrdered(space.Vars())
		wantSet := coverSet(m, want.Cover)
		for _, workers := range []int{2, 4, 8} {
			got := EnumerateLifting(f.Clone(), space, Options{Workers: workers})
			if got.Count.Cmp(want.Count) != 0 {
				t.Fatalf("iter %d workers %d: count %v, want %v",
					iter, workers, got.Count, want.Count)
			}
			// Lifted covers are representation-dependent; the solution sets
			// must agree exactly.
			if coverSet(m, got.Cover) != wantSet {
				t.Fatalf("iter %d workers %d: lifting cover set differs", iter, workers)
			}
		}
	}
}

func TestParallelMaxCubesAborts(t *testing.T) {
	// x0..x5 unconstrained: 64 projected solutions; a global cap of 7 must
	// abort with budget.Cubes and at most 7+workers cubes (each worker can
	// overshoot by at most the one cube in flight).
	f := cnf.New(6)
	f.AddClause(cnf.Clause{lit.Pos(0), lit.Neg(0)})
	space := projSpace(0, 1, 2, 3, 4, 5)
	r := EnumerateBlocking(f, space, Options{MaxCubes: 7, Workers: 4})
	if !r.Aborted || r.Reason != budget.Cubes {
		t.Fatalf("aborted=%v reason=%v, want cube abort", r.Aborted, r.Reason)
	}
	if r.Cover.Len() < 7 || r.Cover.Len() > 7+4 {
		t.Fatalf("cover has %d cubes, want ~7", r.Cover.Len())
	}
}

func TestParallelIteratorDrainsProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(3303))
	for iter := 0; iter < 10; iter++ {
		nVars := 5 + rng.Intn(5)
		f := randomFormula(rng, nVars, 1+rng.Intn(3*nVars), 3)
		space := projSpace(rng.Perm(nVars)[:4]...)

		want := EnumerateBlocking(f.Clone(), space, Options{})
		m := bdd.NewOrdered(space.Vars())
		wantSet := coverSet(m, want.Cover)

		it := NewParallelIterator(f.Clone(), space, Options{Workers: 4}, false)
		got := cube.NewCover(space)
		for {
			c, ok := it.Next()
			if !ok {
				break
			}
			got.Add(c)
		}
		if it.Aborted() {
			t.Fatalf("iter %d: spurious abort: %v", iter, it.Reason())
		}
		if coverSet(m, got) != wantSet {
			t.Fatalf("iter %d: parallel iterator set differs", iter)
		}
		if it.Stats().Cubes != uint64(got.Len()) {
			t.Fatalf("iter %d: stats cubes %d, cover %d", iter, it.Stats().Cubes, got.Len())
		}
	}
}

func TestParallelIteratorStop(t *testing.T) {
	// Unconstrained 10-var projection (1024 cubes): take 3, stop, and the
	// workers must wind down without leaking or deadlocking.
	f := cnf.New(10)
	f.AddClause(cnf.Clause{lit.Pos(0), lit.Neg(0)})
	space := projSpace(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	it := NewParallelIterator(f, space, Options{Workers: 4}, false)
	for i := 0; i < 3; i++ {
		if _, ok := it.Next(); !ok {
			t.Fatalf("stream ended after %d cubes", i)
		}
	}
	it.Stop()
	if !it.Exhausted() {
		t.Fatal("iterator not exhausted after Stop")
	}
	if _, ok := it.Next(); ok {
		t.Fatal("Next succeeded after Stop drained the stream")
	}
}
