package budget

import (
	"context"
	"testing"
	"time"
)

func TestZeroBudgetNeverTrips(t *testing.T) {
	var b Budget
	if !b.IsZero() {
		t.Fatal("zero budget should report IsZero")
	}
	c := b.Start()
	for i := 0; i < 10*pollPeriod; i++ {
		if r := c.Poll(); r != None {
			t.Fatalf("zero budget tripped with %v", r)
		}
	}
	if c.Now() != None {
		t.Fatal("zero budget tripped on Now")
	}
}

func TestExpiredDeadlineTripsImmediately(t *testing.T) {
	b := Budget{Deadline: time.Now().Add(-time.Second)}
	c := b.Start()
	if r := c.Poll(); r != Deadline {
		t.Fatalf("expired deadline: first Poll = %v, want Deadline", r)
	}
	// Sticky.
	if r := c.Poll(); r != Deadline {
		t.Fatalf("reason not sticky: %v", r)
	}
}

func TestCancelledContextTrips(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := Budget{Ctx: ctx}
	c := b.Start()
	if r := c.Now(); r != None {
		t.Fatalf("live context tripped with %v", r)
	}
	cancel()
	if r := c.Now(); r != Cancelled {
		t.Fatalf("cancelled context: Now = %v, want Cancelled", r)
	}
}

func TestCancelledContextTripsViaAmortizedPoll(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := Budget{Ctx: ctx}.Start()
	// Start's immediate check already caught it.
	if r := c.Poll(); r != Cancelled {
		t.Fatalf("pre-cancelled context: Poll = %v, want Cancelled", r)
	}
}

func TestMaterializeTimeout(t *testing.T) {
	b := Budget{Timeout: time.Hour}
	m := b.Materialize()
	if m.Timeout != 0 {
		t.Fatal("Materialize must clear Timeout")
	}
	if m.Deadline.IsZero() || time.Until(m.Deadline) > time.Hour {
		t.Fatalf("bad materialized deadline %v", m.Deadline)
	}
	// Idempotent: a second Materialize leaves the deadline alone.
	m2 := m.Materialize()
	if !m2.Deadline.Equal(m.Deadline) {
		t.Fatal("Materialize not idempotent")
	}
	// Keeps the earlier of explicit deadline vs timeout.
	early := time.Now().Add(time.Minute)
	b = Budget{Timeout: time.Hour, Deadline: early}
	if got := b.Materialize().Deadline; !got.Equal(early) {
		t.Fatalf("kept %v, want the earlier %v", got, early)
	}
}

func TestMergeCaps(t *testing.T) {
	b := Budget{MaxCubes: 10, MaxConflicts: 0, MaxDecisions: 7}
	if got := b.MergeCubes(0); got != 10 {
		t.Fatalf("MergeCubes(0) = %d, want 10", got)
	}
	if got := b.MergeCubes(3); got != 3 {
		t.Fatalf("MergeCubes(3) = %d, want 3", got)
	}
	if got := b.MergeConflicts(5); got != 5 {
		t.Fatalf("MergeConflicts(5) = %d, want 5", got)
	}
	if got := b.MergeDecisions(100); got != 7 {
		t.Fatalf("MergeDecisions(100) = %d, want 7", got)
	}
}

func TestReasonStrings(t *testing.T) {
	for r, want := range map[Reason]string{
		None: "none", Cancelled: "cancelled", Deadline: "deadline",
		Conflicts: "conflict-limit", Decisions: "decision-limit",
		Cubes: "cube-limit", Nodes: "bdd-node-limit",
	} {
		if r.String() != want {
			t.Fatalf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
}

func TestDeadlineTripsViaPoll(t *testing.T) {
	c := Budget{Deadline: time.Now().Add(5 * time.Millisecond)}.Start()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c.Poll() == Deadline {
			return
		}
	}
	t.Fatal("deadline never tripped through amortized polling")
}
