package budget

import (
	"context"
	"time"
)

// Fence is a set of server-enforced ceilings on client-requested
// budgets. A multi-tenant front end cannot trust callers to bound their
// own work: a request asking for "unlimited" (zero) — or for more than
// the operator allows — must still land under the server's caps, or one
// tenant starves every other. Clamp applies that policy in one place.
//
// A zero ceiling leaves the corresponding limit unfenced (the client's
// request passes through unchanged), so the zero Fence is a no-op and
// existing single-user entry points keep their semantics.
type Fence struct {
	// MaxTimeout caps the wall-clock budget of one request (or, for a
	// persistent session, the session's cumulative solve time — session
	// budgets materialize once at creation).
	MaxTimeout time.Duration
	// MaxConflicts / MaxDecisions / MaxCubes cap the search counters.
	MaxConflicts uint64
	MaxDecisions uint64
	MaxCubes     uint64
	// MaxBDDNodes caps the solution-BDD size.
	MaxBDDNodes int
}

// IsZero reports whether the fence imposes no ceilings.
func (f Fence) IsZero() bool {
	return f.MaxTimeout == 0 && f.MaxConflicts == 0 && f.MaxDecisions == 0 &&
		f.MaxCubes == 0 && f.MaxBDDNodes == 0
}

// Clamp returns the requested budget clamped under the fence and bound
// to ctx: for every limit the fence sets, the effective value is the
// tighter of the request and the ceiling — in particular an "unlimited"
// (zero) request becomes the ceiling. A non-nil ctx is attached so the
// caller's cancellation (dropped connection, shutdown drain) aborts the
// solve through the normal budget-poll path; a nil ctx leaves the
// request's own context in place.
func (f Fence) Clamp(ctx context.Context, req Budget) Budget {
	if ctx != nil {
		req.Ctx = ctx
	}
	if f.MaxTimeout > 0 && (req.Timeout <= 0 || req.Timeout > f.MaxTimeout) {
		req.Timeout = f.MaxTimeout
	}
	req.MaxConflicts = mergeCap(req.MaxConflicts, f.MaxConflicts)
	req.MaxDecisions = mergeCap(req.MaxDecisions, f.MaxDecisions)
	req.MaxCubes = mergeCap(req.MaxCubes, f.MaxCubes)
	if f.MaxBDDNodes > 0 && (req.MaxBDDNodes <= 0 || req.MaxBDDNodes > f.MaxBDDNodes) {
		req.MaxBDDNodes = f.MaxBDDNodes
	}
	return req
}
