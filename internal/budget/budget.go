// Package budget defines the resource-governance contract shared by every
// engine in the repository: a Budget bundles the limits a caller is
// willing to spend — wall-clock deadline, context cancellation, and
// counter caps on conflicts, decisions, cubes, and BDD nodes — and a
// Checker polls the time-based limits cheaply from engine hot loops.
//
// The contract every engine honors:
//
//   - A zero Budget imposes no limits; enumeration runs to completion.
//   - When any limit trips, the engine stops promptly, keeps whatever
//     partial answer it has (always a sound under-approximation of the
//     full result), and reports Aborted together with the Reason.
//   - Truncation is never silent: the Aborted flag propagates through
//     every layer up to the facade and the CLIs.
package budget

import (
	"context"
	"time"
)

// Reason says which limit stopped an engine early. None means the run
// completed (or is still running).
type Reason int

// Stop reasons, in rough priority order when several trip at once.
const (
	None Reason = iota
	// Cancelled: the budget's context was cancelled.
	Cancelled
	// Deadline: the wall-clock deadline passed.
	Deadline
	// Conflicts: the SAT conflict cap was reached.
	Conflicts
	// Decisions: the enumeration decision cap was reached.
	Decisions
	// Cubes: the enumerated-cube cap was reached.
	Cubes
	// Nodes: the BDD node cap was reached.
	Nodes
)

func (r Reason) String() string {
	switch r {
	case None:
		return "none"
	case Cancelled:
		return "cancelled"
	case Deadline:
		return "deadline"
	case Conflicts:
		return "conflict-limit"
	case Decisions:
		return "decision-limit"
	case Cubes:
		return "cube-limit"
	case Nodes:
		return "bdd-node-limit"
	default:
		return "reason(?)"
	}
}

// Budget bounds one computation. The zero value means "unlimited".
// Budgets are plain values: copy freely, pass down by value.
type Budget struct {
	// Ctx, when non-nil, cancels the computation when done.
	Ctx context.Context
	// Deadline, when non-zero, is the absolute wall-clock stop time.
	Deadline time.Time
	// Timeout, when positive, is a relative deadline. It is resolved into
	// Deadline exactly once, by Materialize, at the outermost entry point
	// — so nested engine calls share one clock instead of each restarting
	// the timeout.
	Timeout time.Duration
	// MaxConflicts caps the total SAT conflicts of the run (0 = unlimited).
	MaxConflicts uint64
	// MaxDecisions caps enumeration decisions (0 = unlimited).
	MaxDecisions uint64
	// MaxCubes caps the number of enumerated cubes (0 = unlimited).
	MaxCubes uint64
	// MaxBDDNodes caps the engine BDD manager size (0 = unlimited).
	MaxBDDNodes int
}

// IsZero reports whether the budget imposes no limits at all.
func (b Budget) IsZero() bool {
	return b.Ctx == nil && b.Deadline.IsZero() && b.Timeout == 0 &&
		b.MaxConflicts == 0 && b.MaxDecisions == 0 && b.MaxCubes == 0 &&
		b.MaxBDDNodes == 0
}

// Materialize resolves a relative Timeout into an absolute Deadline
// (keeping the earlier of the two when both are set) and returns the
// updated budget. Call it once at the top-level entry of a computation;
// it is idempotent afterwards.
func (b Budget) Materialize() Budget {
	if b.Timeout > 0 {
		d := time.Now().Add(b.Timeout)
		if b.Deadline.IsZero() || d.Before(b.Deadline) {
			b.Deadline = d
		}
		b.Timeout = 0
	}
	return b
}

// MergeCubes returns the effective cube cap given an engine-local cap:
// the smaller of the two non-zero values.
func (b Budget) MergeCubes(local uint64) uint64 {
	return mergeCap(b.MaxCubes, local)
}

// MergeConflicts returns the effective conflict cap given a local cap.
func (b Budget) MergeConflicts(local uint64) uint64 {
	return mergeCap(b.MaxConflicts, local)
}

// MergeDecisions returns the effective decision cap given a local cap.
func (b Budget) MergeDecisions(local uint64) uint64 {
	return mergeCap(b.MaxDecisions, local)
}

func mergeCap(a, b uint64) uint64 {
	switch {
	case a == 0:
		return b
	case b == 0:
		return a
	case a < b:
		return a
	default:
		return b
	}
}

// pollPeriod is how many Poll calls elapse between real time/context
// checks; a power of two so the modulo is a mask.
const pollPeriod = 256

// Checker polls a budget's time and cancellation limits with an
// amortized cost of a counter increment per call. It is not safe for
// concurrent use; give each goroutine its own checker via Start.
type Checker struct {
	done     <-chan struct{}
	deadline time.Time
	tick     uint32
	reason   Reason
	inactive bool // no time/context limits: Poll is a constant None
}

// Start builds a checker for the budget's deadline and context. The
// counter caps (conflicts, decisions, cubes, nodes) are the engine's own
// responsibility — they are already counted in its hot loop. Start
// performs one immediate check, so an already-expired deadline or
// already-cancelled context trips on the first Poll.
func (b Budget) Start() *Checker {
	c := &Checker{deadline: b.Deadline}
	if b.Ctx != nil {
		c.done = b.Ctx.Done()
	}
	if c.done == nil && c.deadline.IsZero() {
		c.inactive = true
		return c
	}
	c.check()
	return c
}

// Poll returns the stop reason, or None while the budget holds. Real
// checks run every pollPeriod calls; once tripped, the reason is sticky
// and every subsequent call returns it immediately.
func (c *Checker) Poll() Reason {
	if c.reason != None || c.inactive {
		return c.reason
	}
	c.tick++
	if c.tick&(pollPeriod-1) != 0 {
		return None
	}
	return c.check()
}

// Now performs an immediate (non-amortized) check.
func (c *Checker) Now() Reason {
	if c.reason != None || c.inactive {
		return c.reason
	}
	return c.check()
}

// Reason returns the sticky stop reason without checking anything.
func (c *Checker) Reason() Reason { return c.reason }

func (c *Checker) check() Reason {
	if c.done != nil {
		select {
		case <-c.done:
			c.reason = Cancelled
			return c.reason
		default:
		}
	}
	if !c.deadline.IsZero() && !time.Now().Before(c.deadline) {
		c.reason = Deadline
	}
	return c.reason
}
