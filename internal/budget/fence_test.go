package budget

import (
	"context"
	"testing"
	"time"
)

func TestFenceClampCeilings(t *testing.T) {
	f := Fence{
		MaxTimeout:   time.Minute,
		MaxConflicts: 1000,
		MaxDecisions: 2000,
		MaxCubes:     50,
		MaxBDDNodes:  1 << 20,
	}
	cases := []struct {
		name string
		req  Budget
		want Budget
	}{
		{
			name: "unlimited request lands on every ceiling",
			req:  Budget{},
			want: Budget{Timeout: time.Minute, MaxConflicts: 1000,
				MaxDecisions: 2000, MaxCubes: 50, MaxBDDNodes: 1 << 20},
		},
		{
			name: "over-ask is clamped down",
			req: Budget{Timeout: time.Hour, MaxConflicts: 1 << 40,
				MaxDecisions: 1 << 40, MaxCubes: 1 << 40, MaxBDDNodes: 1 << 30},
			want: Budget{Timeout: time.Minute, MaxConflicts: 1000,
				MaxDecisions: 2000, MaxCubes: 50, MaxBDDNodes: 1 << 20},
		},
		{
			name: "tighter request passes through",
			req: Budget{Timeout: time.Second, MaxConflicts: 10,
				MaxDecisions: 20, MaxCubes: 5, MaxBDDNodes: 100},
			want: Budget{Timeout: time.Second, MaxConflicts: 10,
				MaxDecisions: 20, MaxCubes: 5, MaxBDDNodes: 100},
		},
	}
	for _, tc := range cases {
		got := f.Clamp(nil, tc.req)
		if got.Timeout != tc.want.Timeout || got.MaxConflicts != tc.want.MaxConflicts ||
			got.MaxDecisions != tc.want.MaxDecisions || got.MaxCubes != tc.want.MaxCubes ||
			got.MaxBDDNodes != tc.want.MaxBDDNodes {
			t.Errorf("%s: Clamp = %+v, want %+v", tc.name, got, tc.want)
		}
		if got.Ctx != nil {
			t.Errorf("%s: nil ctx must not be attached", tc.name)
		}
	}
}

func TestFenceClampAttachesContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := Fence{}.Clamp(ctx, Budget{MaxCubes: 7})
	if got.Ctx != ctx {
		t.Fatalf("Clamp did not attach the context")
	}
	if got.MaxCubes != 7 {
		t.Fatalf("zero fence changed MaxCubes: %d", got.MaxCubes)
	}
	// A zero fence with a context still produces a non-zero budget, so
	// engines build a checker and observe the cancellation.
	if got.IsZero() {
		t.Fatalf("budget with ctx reported IsZero")
	}
}

func TestFenceIsZero(t *testing.T) {
	if !(Fence{}).IsZero() {
		t.Fatalf("zero fence not IsZero")
	}
	if (Fence{MaxCubes: 1}).IsZero() {
		t.Fatalf("non-zero fence reported IsZero")
	}
}
