// Package bmc implements bounded model checking by time-frame expansion:
// the circuit's transition logic is unrolled k times into one CNF, the
// initial-state constraint is asserted at frame 0, and the bad-state
// constraint is checked frame by frame with assumption-based incremental
// SAT — clauses are added monotonically and never retracted, so learnt
// clauses carry across bounds.
//
// BMC complements the preimage engines: it finds shallow counterexamples
// fast but cannot prove unreachability; iterated preimage (internal/
// preimage.CheckReachable) proves both directions. The test suite uses
// each to cross-validate the other.
package bmc

import (
	"fmt"

	"allsatpre/internal/budget"
	"allsatpre/internal/circuit"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
	"allsatpre/internal/preimage"
	"allsatpre/internal/sat"
	"allsatpre/internal/simplify"
	"allsatpre/internal/tseitin"
)

// Options configures a BMC run.
type Options struct {
	// SAT tunes the underlying incremental solver (zero value = defaults).
	SAT sat.Options
	// Budget imposes resource limits across the whole bound sweep. When
	// it trips, CheckTo returns a Result with Aborted set and Depth
	// reporting the last fully explored depth — never an error.
	Budget budget.Budget
	// Workers > 1 makes CheckOpts sweep the depths in parallel, one
	// checker (solver + unrolling) per worker — see CheckParallel. The
	// Reachable/Depth outcome matches the sequential sweep exactly.
	Workers int
	// Simplify controls projection-safe preprocessing of the per-frame
	// transition CNF before unrolling (internal/simplify). State, input,
	// and next-state variables are frozen, so every frame's
	// (s_k, i_k, s_k+1) projection — and therefore the Reachable/Depth
	// verdict and the extracted trace — is unchanged; only the auxiliary
	// Tseitin variables are eliminated, shrinking every unrolled frame.
	// Auto resolves to on. The pass runs once per checker on a private
	// clone of the (shared, memoized) encoding.
	Simplify simplify.Mode
}

// Result is the outcome of a BMC run.
type Result struct {
	// Reachable reports whether a bad state was found within the bound.
	Reachable bool
	// Depth is the number of transitions of the counterexample, when
	// found; otherwise the deepest bound fully explored (on an aborted
	// run, the last depth proven free of counterexamples).
	Depth int
	// Trace is the counterexample (nil when not Reachable).
	Trace *preimage.Trace
	// Solves counts incremental SAT calls.
	Solves int
	// Stats carries the cumulative SAT solver counters.
	Stats sat.Stats
	// Aborted is true when a resource limit stopped the sweep before the
	// requested bound. Depths 0..Depth are then certified
	// counterexample-free, but deeper counterexamples may exist.
	// AbortReason says which limit tripped.
	Aborted     bool
	AbortReason budget.Reason
}

// Checker incrementally unrolls a circuit. Create with New, then call
// CheckTo with growing bounds; frames and learnt clauses persist.
type Checker struct {
	c   *circuit.Circuit
	enc *tseitin.Encoding
	s   *sat.Solver

	// frameState[k] holds the state variables of frame k; frameInput[k]
	// the input variables of frame k (frames 0..unrolled-1 exist).
	frameState [][]lit.Var
	frameInput [][]lit.Var
	unrolled   int

	// activators[k] is the selector literal that turns on the bad-state
	// constraint at frame k (assumption-based, so each Solve checks
	// exactly one frame).
	activators []lit.Lit

	init, bad *cube.Cover
}

// New prepares a checker for the circuit with an initial-state cover and
// a bad-state cover (both over the latch order).
func New(c *circuit.Circuit, init, bad *cube.Cover) (*Checker, error) {
	return NewOpts(c, init, bad, Options{})
}

// NewOpts is New with solver tuning and a resource budget.
func NewOpts(c *circuit.Circuit, init, bad *cube.Cover, opts Options) (*Checker, error) {
	if init.Space().Size() != len(c.Latches) || bad.Space().Size() != len(c.Latches) {
		return nil, fmt.Errorf("bmc: init/bad space width must equal the latch count")
	}
	enc, err := tseitin.EncodeCached(c)
	if err != nil {
		return nil, err
	}
	if opts.Simplify.Enabled(true) {
		// EncodeCached returns a shared, memoized encoding — simplify a
		// private copy, never the cache entry other checkers see.
		f := enc.F.Clone()
		frozen := make([]bool, f.NumVars)
		for _, vs := range [][]lit.Var{enc.StateVars, enc.InputVars, enc.NextStateVars} {
			for _, v := range vs {
				if int(v) < len(frozen) {
					frozen[v] = true
				}
			}
		}
		simplify.Run(f, func(v lit.Var) bool { return frozen[v] }, simplify.Options{})
		e2 := *enc
		e2.F = f
		enc = &e2
	}
	satOpts := opts.SAT
	if satOpts.Budget.IsZero() {
		satOpts.Budget = opts.Budget.Materialize()
	}
	ck := &Checker{c: c, enc: enc, s: sat.New(satOpts), init: init, bad: bad}

	// Frame 0 state variables are fresh solver variables constrained to
	// the initial cover.
	n := len(c.Latches)
	st0 := make([]lit.Var, n)
	for i := range st0 {
		st0[i] = ck.s.NewVar()
	}
	ck.frameState = append(ck.frameState, st0)
	if !ck.addCoverConstraint(st0, init) {
		// Empty or contradictory initial set: the solver is already UNSAT.
		return ck, nil
	}
	return ck, nil
}

// addCoverConstraint asserts "state vector ∈ cover" over the given state
// variables using one selector per cube. Returns the solver's okay state.
func (ck *Checker) addCoverConstraint(stateVars []lit.Var, cv *cube.Cover) bool {
	if cv.Len() == 0 {
		return ck.s.AddClause() // empty clause: unsatisfiable
	}
	var any []lit.Lit
	for _, cb := range cv.Cubes() {
		sel := ck.s.NewVar()
		any = append(any, lit.Pos(sel))
		for pos, t := range cb {
			if t == lit.Unknown {
				continue
			}
			if !ck.s.AddClause(lit.Neg(sel), lit.New(stateVars[pos], t == lit.False)) {
				return false
			}
		}
	}
	return ck.s.AddClause(any...)
}

// ensureFrames unrolls transition logic until `frames` transitions exist.
func (ck *Checker) ensureFrames(frames int) {
	for ck.unrolled < frames {
		k := ck.unrolled
		// Instantiate a fresh copy of the combinational logic: variable
		// v of the encoding maps to base+v in the solver, except the
		// state variables, which alias frame k's state vector.
		base := ck.s.NumVars()
		mapVar := make([]lit.Var, ck.enc.F.NumVars)
		for v := 0; v < ck.enc.F.NumVars; v++ {
			mapVar[v] = lit.Var(base + v)
		}
		for i, sv := range ck.enc.StateVars {
			mapVar[sv] = ck.frameState[k][i]
		}
		ck.s.EnsureVars(base + ck.enc.F.NumVars)
		remap := func(l lit.Lit) lit.Lit {
			return lit.New(mapVar[l.Var()], l.Sign())
		}
		for _, cl := range ck.enc.F.Clauses {
			lits := make([]lit.Lit, len(cl))
			for i, l := range cl {
				lits[i] = remap(l)
			}
			ck.s.AddClause(lits...)
		}
		inputs := make([]lit.Var, len(ck.enc.InputVars))
		for i, iv := range ck.enc.InputVars {
			inputs[i] = mapVar[iv]
		}
		nextState := make([]lit.Var, len(ck.enc.NextStateVars))
		for i, nv := range ck.enc.NextStateVars {
			nextState[i] = mapVar[nv]
		}
		ck.frameInput = append(ck.frameInput, inputs)
		ck.frameState = append(ck.frameState, nextState)
		ck.unrolled++
	}
}

// badActivator returns (creating if needed) the assumption literal that
// enables the bad-state constraint at frame k.
func (ck *Checker) badActivator(k int) lit.Lit {
	for len(ck.activators) <= k {
		frame := len(ck.activators)
		act := lit.Pos(ck.s.NewVar())
		// act → (state_k ∈ bad): per cube, a selector implied chain.
		if ck.bad.Len() == 0 {
			ck.s.AddClause(act.Not())
		} else {
			var any []lit.Lit
			any = append(any, act.Not())
			for _, cb := range ck.bad.Cubes() {
				sel := ck.s.NewVar()
				any = append(any, lit.Pos(sel))
				for pos, t := range cb {
					if t == lit.Unknown {
						continue
					}
					ck.s.AddClause(lit.Neg(sel), lit.New(ck.frameState[frame][pos], t == lit.False))
				}
			}
			ck.s.AddClause(any...)
		}
		ck.activators = append(ck.activators, act)
	}
	return ck.activators[k]
}

// CheckTo searches for a counterexample of length ≤ bound, checking each
// depth in order with one assumption-based incremental solve. When the
// solver's budget runs out mid-sweep, the result reports Aborted with the
// deepest counterexample-free depth instead of failing with an error.
func (ck *Checker) CheckTo(bound int) (*Result, error) {
	res := &Result{}
	for k := 0; k <= bound; k++ {
		ck.ensureFrames(k)
		act := ck.badActivator(k)
		res.Solves++
		switch ck.s.Solve(act) {
		case sat.Sat:
			res.Reachable = true
			res.Depth = k
			res.Trace = ck.extractTrace(k)
			res.Stats = ck.s.Stats()
			return res, nil
		case sat.Unsat:
			res.Depth = k // certified counterexample-free
		default:
			res.Aborted = true
			res.AbortReason = ck.s.StopReason()
			res.Depth = k - 1
			res.Stats = ck.s.Stats()
			return res, nil
		}
	}
	res.Depth = bound
	res.Stats = ck.s.Stats()
	return res, nil
}

// SetBudget replaces the checker's resource budget for subsequent
// CheckTo calls (the clock of a relative Timeout starts now).
func (ck *Checker) SetBudget(b budget.Budget) { ck.s.SetBudget(b) }

// extractTrace reads the model back into a concrete trace of length k.
func (ck *Checker) extractTrace(k int) *preimage.Trace {
	m := ck.s.Model()
	tr := &preimage.Trace{}
	for f := 0; f <= k; f++ {
		st := make([]bool, len(ck.frameState[f]))
		for i, v := range ck.frameState[f] {
			st[i] = m[v]
		}
		tr.States = append(tr.States, st)
		if f < k {
			in := make([]bool, len(ck.frameInput[f]))
			for i, v := range ck.frameInput[f] {
				in[i] = m[v]
			}
			tr.Inputs = append(tr.Inputs, in)
		}
	}
	return tr
}

// Check is the one-shot convenience: build a checker and search to bound.
func Check(c *circuit.Circuit, init, bad *cube.Cover, bound int) (*Result, error) {
	ck, err := New(c, init, bad)
	if err != nil {
		return nil, err
	}
	return ck.CheckTo(bound)
}

// CheckOpts is Check with solver tuning and a resource budget. With
// Options.Workers > 1 the depth sweep runs in parallel (CheckParallel).
func CheckOpts(c *circuit.Circuit, init, bad *cube.Cover, bound int, opts Options) (*Result, error) {
	if opts.Workers > 1 {
		return CheckParallel(c, init, bad, bound, opts)
	}
	ck, err := NewOpts(c, init, bad, opts)
	if err != nil {
		return nil, err
	}
	return ck.CheckTo(bound)
}
