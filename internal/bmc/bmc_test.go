package bmc

import (
	"math/rand"
	"testing"

	"allsatpre/internal/circuit"
	"allsatpre/internal/cube"
	"allsatpre/internal/gen"
	"allsatpre/internal/preimage"
	"allsatpre/internal/trans"
)

func validateTrace(t *testing.T, c *circuit.Circuit, init, bad *cube.Cover, tr *preimage.Trace) {
	t.Helper()
	if tr == nil {
		t.Fatal("missing trace")
	}
	if !init.Contains(tr.States[0]) {
		t.Fatalf("trace starts outside init: %v", tr.States[0])
	}
	if !bad.Contains(tr.States[len(tr.States)-1]) {
		t.Fatalf("trace ends outside bad: %v", tr.States[len(tr.States)-1])
	}
	sim, err := circuit.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range tr.Inputs {
		_, next := sim.Step(tr.States[i], in)
		for k := range next {
			if next[k] != tr.States[i+1][k] {
				t.Fatalf("trace step %d does not simulate", i)
			}
		}
	}
}

func TestCounterDistance(t *testing.T) {
	c := gen.Counter(4, true, false)
	init := trans.TargetFromPatterns(4, "0000")
	bad := trans.TargetFromPatterns(4, "1010") // state 5
	r, err := Check(c, init, bad, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Reachable || r.Depth != 5 {
		t.Fatalf("want depth 5, got %+v", r)
	}
	validateTrace(t, c, init, bad, r.Trace)
}

func TestDepthZeroHit(t *testing.T) {
	c := gen.Counter(3, true, false)
	init := trans.TargetFromPatterns(3, "1X0")
	bad := trans.TargetFromPatterns(3, "110")
	r, err := Check(c, init, bad, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Reachable || r.Depth != 0 || len(r.Trace.Inputs) != 0 {
		t.Fatalf("want depth-0 hit, got %+v", r)
	}
	validateTrace(t, c, init, bad, r.Trace)
}

func TestBoundTooShallow(t *testing.T) {
	c := gen.Counter(4, true, false)
	init := trans.TargetFromPatterns(4, "0000")
	bad := trans.TargetFromPatterns(4, "1111")
	r, err := Check(c, init, bad, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.Reachable {
		t.Fatal("15 needs 15 steps; bound 7 should find nothing")
	}
	if r.Depth != 7 || r.Solves != 8 {
		t.Fatalf("explored depth %d with %d solves", r.Depth, r.Solves)
	}
}

func TestIncrementalDeepening(t *testing.T) {
	// The same Checker reused with growing bounds must find the bug at
	// the exact depth, reusing earlier frames.
	c := gen.Counter(4, true, false)
	init := trans.TargetFromPatterns(4, "0000")
	bad := trans.TargetFromPatterns(4, "0110") // state 6
	ck, err := New(c, init, bad)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ck.CheckTo(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Reachable {
		t.Fatal("bound 3 too shallow for state 6")
	}
	r, err = ck.CheckTo(8)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Reachable || r.Depth != 6 {
		t.Fatalf("want depth 6, got %+v", r)
	}
	validateTrace(t, c, init, bad, r.Trace)
}

func TestUnreachableWithinAnyBound(t *testing.T) {
	// Johnson non-code-word is unreachable; BMC can only say "not within
	// bound", which must hold for a bound exceeding the diameter.
	c := gen.Johnson(4)
	init := trans.TargetFromPatterns(4, "0000")
	bad := trans.TargetFromPatterns(4, "0101")
	r, err := Check(c, init, bad, 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.Reachable {
		t.Fatal("0101 must be unreachable")
	}
}

func TestEmptyInitOrBad(t *testing.T) {
	c := gen.Counter(3, true, false)
	sp := preimage.StateSpace(c)
	empty := cube.NewCover(sp)
	full := trans.TargetFromPatterns(3, "XXX")
	r, err := Check(c, empty, full, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Reachable {
		t.Fatal("empty init reaches nothing")
	}
	r, err = Check(c, full, empty, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Reachable {
		t.Fatal("empty bad is never hit")
	}
}

func TestWidthMismatch(t *testing.T) {
	c := gen.Counter(3, true, false)
	if _, err := New(c, trans.TargetFromPatterns(2, "00"), trans.TargetFromPatterns(3, "111")); err == nil {
		t.Fatal("expected width error")
	}
}

// TestAgainstCheckReachable cross-validates BMC and the preimage-based
// checker on random circuits: identical verdicts, identical distances.
func TestAgainstCheckReachable(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	for seed := int64(70); seed < 78; seed++ {
		c := gen.SLike(gen.SLikeParams{Seed: seed, Inputs: 4, Latches: 4, Gates: 22})
		initPat := make([]byte, 4)
		badPat := make([]byte, 4)
		for i := range initPat {
			initPat[i] = "01"[rng.Intn(2)]
			badPat[i] = "01X"[rng.Intn(3)]
		}
		init := trans.TargetFromPatterns(4, string(initPat))
		bad := trans.TargetFromPatterns(4, string(badPat))

		const bound = 18 // ≥ diameter of a 4-latch machine
		bres, err := Check(c, init, bad, bound)
		if err != nil {
			t.Fatal(err)
		}
		pres, err := preimage.CheckReachable(c, init, bad, -1, preimage.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if bres.Reachable != pres.Reachable {
			t.Fatalf("seed %d: BMC says %v, preimage says %v",
				seed, bres.Reachable, pres.Reachable)
		}
		if bres.Reachable {
			if bres.Depth != pres.Steps {
				t.Fatalf("seed %d: distances differ: BMC %d vs preimage %d",
					seed, bres.Depth, pres.Steps)
			}
			validateTrace(t, c, init, bad, bres.Trace)
		}
	}
}

func TestS27CrossValidation(t *testing.T) {
	data := `
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`
	c, err := circuit.ParseBenchString("s27", data)
	if err != nil {
		t.Fatal(err)
	}
	init := trans.TargetFromPatterns(3, "000")
	for _, badPat := range []string{"111", "011", "1X1", "010"} {
		bad := trans.TargetFromPatterns(3, badPat)
		bres, err := Check(c, init, bad, 10)
		if err != nil {
			t.Fatal(err)
		}
		pres, err := preimage.CheckReachable(c, init, bad, -1, preimage.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if bres.Reachable != pres.Reachable {
			t.Fatalf("bad=%s: BMC %v vs preimage %v", badPat, bres.Reachable, pres.Reachable)
		}
		if bres.Reachable && bres.Depth != pres.Steps {
			t.Fatalf("bad=%s: distances %d vs %d", badPat, bres.Depth, pres.Steps)
		}
	}
}
