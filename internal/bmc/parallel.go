package bmc

import (
	"context"
	"sync"
	"sync/atomic"

	"allsatpre/internal/budget"
	"allsatpre/internal/circuit"
	"allsatpre/internal/cube"
	"allsatpre/internal/preimage"
	"allsatpre/internal/sat"
)

// CheckAt solves exactly depth k, unrolling frames as needed and reusing
// the incremental solver. found reports a counterexample at that exact
// depth; aborted reports a budget trip (the depth is then undetermined).
func (ck *Checker) CheckAt(k int) (found bool, trace *preimage.Trace, aborted bool, reason budget.Reason) {
	ck.ensureFrames(k)
	act := ck.badActivator(k)
	switch ck.s.Solve(act) {
	case sat.Sat:
		return true, ck.extractTrace(k), false, budget.None
	case sat.Unsat:
		return false, nil, false, budget.None
	default:
		return false, nil, true, ck.s.StopReason()
	}
}

// depth outcome codes for the parallel sweep.
const (
	depthPending = iota
	depthUnsat
	depthSat
	depthAborted
)

type depthOutcome struct {
	status int
	trace  *preimage.Trace
	reason budget.Reason
}

// CheckParallel sweeps depths 0..bound across opts.Workers checkers,
// each with its own solver and unrolling. Workers claim depths from a
// shared counter, record a shared minimum counterexample depth, and skip
// any depth at or beyond it, so the sweep never spends work past the
// answer. The Reachable/Depth outcome is identical to the sequential
// CheckTo — the shortest counterexample depth is certified by UNSAT
// answers at every smaller depth — though the trace may be a different
// (equally valid) witness of that depth, and learnt clauses are per
// worker rather than carried across every bound.
//
// The budget applies per worker solver except for cancellation and
// deadline, which are shared: the first worker to trip cancels the
// siblings, and the result reports the first reason.
func CheckParallel(c *circuit.Circuit, init, bad *cube.Cover, bound int, opts Options) (*Result, error) {
	workers := opts.Workers
	if workers > bound+1 {
		workers = bound + 1
	}
	if workers <= 1 {
		seq := opts
		seq.Workers = 0
		return CheckOpts(c, init, bad, bound, seq)
	}
	bud := opts.Budget.Materialize()
	base := context.Background()
	if bud.Ctx != nil {
		base = bud.Ctx
	}
	ctx, cancel := context.WithCancel(base)
	defer cancel()
	wopts := opts
	wopts.Workers = 0
	wopts.Budget = bud
	wopts.Budget.Ctx = ctx

	var abortReason atomic.Int32
	recordAbort := func(r budget.Reason) {
		if r != budget.None && abortReason.CompareAndSwap(0, int32(r)) {
			cancel()
		}
	}

	outcomes := make([]depthOutcome, bound+1)
	var nextDepth atomic.Int64
	bestSAT := atomic.Int64{}
	bestSAT.Store(int64(bound) + 1)

	var (
		mu      sync.Mutex
		solves  int
		stats   sat.Stats
		initErr error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ck, err := NewOpts(c, init, bad, wopts)
			if err != nil {
				mu.Lock()
				if initErr == nil {
					initErr = err
				}
				mu.Unlock()
				cancel()
				return
			}
			nSolves := 0
			for {
				d := int(nextDepth.Add(1) - 1)
				if d > bound || int64(d) >= bestSAT.Load() || ctx.Err() != nil {
					break
				}
				nSolves++
				found, trace, aborted, reason := ck.CheckAt(d)
				switch {
				case aborted:
					outcomes[d] = depthOutcome{status: depthAborted, reason: reason}
					recordAbort(reason)
				case found:
					outcomes[d] = depthOutcome{status: depthSat, trace: trace}
					for {
						cur := bestSAT.Load()
						if int64(d) >= cur || bestSAT.CompareAndSwap(cur, int64(d)) {
							break
						}
					}
				default:
					outcomes[d] = depthOutcome{status: depthUnsat}
				}
				if aborted {
					break
				}
			}
			mu.Lock()
			solves += nSolves
			addSatStats(&stats, ck.s.Stats())
			mu.Unlock()
		}()
	}
	wg.Wait()
	if initErr != nil {
		return nil, initErr
	}

	// Merge in depth order, mirroring the sequential sweep: UNSAT extends
	// the certified prefix, SAT on a fully certified prefix is the
	// shortest counterexample, and a hole (aborted, or never solved
	// because a sibling cancelled the run) ends the sweep as an abort.
	res := &Result{Depth: -1, Solves: solves, Stats: stats}
	for d := 0; d <= bound; d++ {
		switch outcomes[d].status {
		case depthUnsat:
			res.Depth = d
		case depthSat:
			res.Reachable = true
			res.Depth = d
			res.Trace = outcomes[d].trace
			return res, nil
		default:
			res.Aborted = true
			res.AbortReason = outcomes[d].reason
			if res.AbortReason == budget.None {
				res.AbortReason = budget.Reason(abortReason.Load())
			}
			if res.AbortReason == budget.None {
				res.AbortReason = budget.Cancelled
			}
			return res, nil
		}
	}
	return res, nil
}

// addSatStats accumulates solver counters across workers (MaxTrail is a
// per-solver high-water mark, so it merges by maximum).
func addSatStats(dst *sat.Stats, s sat.Stats) {
	dst.Decisions += s.Decisions
	dst.Propagations += s.Propagations
	dst.Conflicts += s.Conflicts
	dst.Restarts += s.Restarts
	dst.Learned += s.Learned
	dst.LearnedLits += s.LearnedLits
	dst.MinimizedOut += s.MinimizedOut
	dst.Reduced += s.Reduced
	if s.MaxTrail > dst.MaxTrail {
		dst.MaxTrail = s.MaxTrail
	}
}
