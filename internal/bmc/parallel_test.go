package bmc

import (
	"context"
	"testing"

	"allsatpre/internal/budget"
	"allsatpre/internal/gen"
	"allsatpre/internal/trans"
)

func contextCancelled() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx, cancel
}

// TestParallelMatchesSequentialSweep compares the parallel depth sweep
// against CheckTo on reachable and unreachable instances at several
// worker counts: Reachable and Depth must match exactly, and a found
// trace must simulate.
func TestParallelMatchesSequentialSweep(t *testing.T) {
	cases := []struct {
		name      string
		n         int
		init, bad string
		bound     int
	}{
		{"counter-hit", 4, "0000", "1010", 10}, // depth 5
		{"counter-miss", 4, "0000", "1111", 6}, // deeper than bound
		{"depth-zero", 3, "1X0", "110", 4},     // init ∩ bad
		{"unreach-evens", 3, "000", "XX1", 8},  // counter steps keep parity until bit0 set
	}
	for _, tc := range cases {
		c := gen.Counter(tc.n, true, false)
		init := trans.TargetFromPatterns(tc.n, tc.init)
		bad := trans.TargetFromPatterns(tc.n, tc.bad)
		seq, err := Check(c, init, bad, tc.bound)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			par, err := CheckOpts(c, init, bad, tc.bound, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if par.Aborted {
				t.Fatalf("%s/w%d: spurious abort (%v)", tc.name, workers, par.AbortReason)
			}
			if par.Reachable != seq.Reachable || par.Depth != seq.Depth {
				t.Fatalf("%s/w%d: (reachable=%v, depth=%d), want (%v, %d)",
					tc.name, workers, par.Reachable, par.Depth, seq.Reachable, seq.Depth)
			}
			if par.Reachable {
				validateTrace(t, c, init, bad, par.Trace)
				if len(par.Trace.States) != par.Depth+1 {
					t.Fatalf("%s/w%d: trace length %d for depth %d",
						tc.name, workers, len(par.Trace.States), par.Depth)
				}
			}
		}
	}
}

// TestParallelShortestCounterexample uses a bad cover hit at several
// depths: the parallel sweep must still report the shortest one.
func TestParallelShortestCounterexample(t *testing.T) {
	c := gen.Counter(4, true, false)
	init := trans.TargetFromPatterns(4, "0000")
	// States 3 (1100) and 5 (1010): shortest hit is depth 3.
	bad := trans.TargetFromPatterns(4, "1100", "1010")
	for _, workers := range []int{2, 4, 8} {
		r, err := CheckOpts(c, init, bad, 12, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Reachable || r.Depth != 3 {
			t.Fatalf("w%d: (reachable=%v, depth=%d), want shortest depth 3",
				workers, r.Reachable, r.Depth)
		}
		validateTrace(t, c, init, bad, r.Trace)
	}
}

// TestParallelAbortReporting: an expired deadline must surface as a
// structured abort with a certified prefix, not an error or a hang.
func TestParallelAbortReporting(t *testing.T) {
	c := gen.Counter(8, true, false)
	init := trans.TargetFromPatterns(8, "00000000")
	bad := trans.TargetFromPatterns(8, "11111111")
	ctx, cancel := contextCancelled()
	defer cancel()
	r, err := CheckOpts(c, init, bad, 40, Options{
		Workers: 4,
		Budget:  budget.Budget{Ctx: ctx},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Aborted || r.Reachable {
		t.Fatalf("want abort on cancelled context, got %+v", r)
	}
	if r.AbortReason != budget.Cancelled {
		t.Fatalf("abort reason %v, want cancelled", r.AbortReason)
	}
}
