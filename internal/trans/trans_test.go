package trans

import (
	"os"
	"path/filepath"
	"testing"

	"allsatpre/internal/circuit"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
	"allsatpre/internal/sat"
)

func loadS27(t *testing.T) *circuit.Circuit {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "s27.bench"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := circuit.ParseBenchString("s27", string(data))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestInstanceSpaces(t *testing.T) {
	c := loadS27(t)
	target := TargetFromPatterns(3, "1XX")
	inst, err := NewInstance(c, target)
	if err != nil {
		t.Fatal(err)
	}
	if inst.StateSpace.Size() != 3 || inst.FullSpace.Size() != 7 {
		t.Fatalf("space sizes: %d %d", inst.StateSpace.Size(), inst.FullSpace.Size())
	}
	if inst.StateSpace.Name(0) != "G5" {
		t.Errorf("latch name = %q, want G5", inst.StateSpace.Name(0))
	}
	if len(inst.SelectorVars) != 1 {
		t.Errorf("selector count = %d", len(inst.SelectorVars))
	}
	if got := inst.ProjectionVars(false); len(got) != 3 {
		t.Error("ProjectionVars(false)")
	}
	if got := inst.ProjectionVars(true); len(got) != 7 {
		t.Error("ProjectionVars(true)")
	}
	if inst.ProjectionSpace(false) != inst.StateSpace || inst.ProjectionSpace(true) != inst.FullSpace {
		t.Error("ProjectionSpace accessors")
	}
}

func TestTargetWidthMismatch(t *testing.T) {
	c := loadS27(t)
	if _, err := NewInstance(c, TargetFromPatterns(2, "1X")); err == nil {
		t.Fatal("expected width-mismatch error")
	}
}

// TestInstanceSemantics cross-checks the CNF against simulation: for every
// (state, input) pair of s27, the instance is satisfiable under the pair's
// assumptions iff simulation lands in the target.
func TestInstanceSemantics(t *testing.T) {
	c := loadS27(t)
	sim, err := circuit.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	// Target: G10'=1 and G13'=0 (one cube with a free middle position).
	target := TargetFromPatterns(3, "1X0")
	inst, err := NewInstance(c, target)
	if err != nil {
		t.Fatal(err)
	}
	s := sat.FromFormula(inst.F, sat.DefaultOptions())
	for sv := 0; sv < 8; sv++ {
		for iv := 0; iv < 16; iv++ {
			st := []bool{sv&1 != 0, sv&2 != 0, sv&4 != 0}
			in := []bool{iv&1 != 0, iv&2 != 0, iv&4 != 0, iv&8 != 0}
			_, next := sim.Step(st, in)
			want := next[0] && !next[2]
			var assume []lit.Lit
			for i, v := range inst.StateVars {
				assume = append(assume, lit.New(v, !st[i]))
			}
			for i, v := range inst.InputVars {
				assume = append(assume, lit.New(v, !in[i]))
			}
			got := s.Solve(assume...)
			if want && got != sat.Sat {
				t.Fatalf("state %d input %d: want SAT, got %v", sv, iv, got)
			}
			if !want && got != sat.Unsat {
				t.Fatalf("state %d input %d: want UNSAT, got %v", sv, iv, got)
			}
		}
	}
}

func TestMultiCubeTarget(t *testing.T) {
	c := loadS27(t)
	sim, _ := circuit.NewSimulator(c)
	target := TargetFromPatterns(3, "111", "000")
	inst, err := NewInstance(c, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.SelectorVars) != 2 {
		t.Fatalf("want 2 selectors, got %d", len(inst.SelectorVars))
	}
	s := sat.FromFormula(inst.F, sat.DefaultOptions())
	for sv := 0; sv < 8; sv++ {
		for iv := 0; iv < 16; iv++ {
			st := []bool{sv&1 != 0, sv&2 != 0, sv&4 != 0}
			in := []bool{iv&1 != 0, iv&2 != 0, iv&4 != 0, iv&8 != 0}
			_, next := sim.Step(st, in)
			all := next[0] && next[1] && next[2]
			none := !next[0] && !next[1] && !next[2]
			want := all || none
			var assume []lit.Lit
			for i, v := range inst.StateVars {
				assume = append(assume, lit.New(v, !st[i]))
			}
			for i, v := range inst.InputVars {
				assume = append(assume, lit.New(v, !in[i]))
			}
			got := s.Solve(assume...)
			if (got == sat.Sat) != want {
				t.Fatalf("state %d input %d: want %v, got %v", sv, iv, want, got)
			}
		}
	}
}

// TestImageInstanceSemantics: the image CNF is satisfiable under a
// (state, input) assumption pair iff the state lies in the initial cover.
func TestImageInstanceSemantics(t *testing.T) {
	c := loadS27(t)
	init := TargetFromPatterns(3, "1X0")
	inst, err := NewImageInstance(c, init)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.SelectorVars) != 1 {
		t.Fatalf("selector count %d", len(inst.SelectorVars))
	}
	s := sat.FromFormula(inst.F, sat.DefaultOptions())
	for sv := 0; sv < 8; sv++ {
		st := []bool{sv&1 != 0, sv&2 != 0, sv&4 != 0}
		want := st[0] && !st[2]
		var assume []lit.Lit
		for i, v := range inst.StateVars {
			assume = append(assume, lit.New(v, !st[i]))
		}
		got := s.Solve(assume...)
		if want && got != sat.Sat || !want && got != sat.Unsat {
			t.Fatalf("state %03b: got %v, want in-init=%v", sv, got, want)
		}
	}
}

func TestImageInstanceErrors(t *testing.T) {
	c := loadS27(t)
	if _, err := NewImageInstance(c, TargetFromPatterns(2, "11")); err == nil {
		t.Fatal("expected width error")
	}
	// Empty init: unsatisfiable instance.
	sp := cube.NewSpace([]lit.Var{0, 1, 2})
	inst, err := NewImageInstance(c, cube.NewCover(sp))
	if err != nil {
		t.Fatal(err)
	}
	s := sat.FromFormula(inst.F, sat.DefaultOptions())
	if got := s.Solve(); got != sat.Unsat {
		t.Fatalf("empty init should be UNSAT, got %v", got)
	}
}

func TestImageInstanceMultiCube(t *testing.T) {
	c := loadS27(t)
	init := TargetFromPatterns(3, "111", "000")
	inst, err := NewImageInstance(c, init)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.SelectorVars) != 2 || inst.StateSpace.Size() != 3 || inst.FullSpace.Size() != 7 {
		t.Fatal("instance shape")
	}
	s := sat.FromFormula(inst.F, sat.DefaultOptions())
	for sv := 0; sv < 8; sv++ {
		st := []bool{sv&1 != 0, sv&2 != 0, sv&4 != 0}
		want := sv == 0 || sv == 7
		var assume []lit.Lit
		for i, v := range inst.StateVars {
			assume = append(assume, lit.New(v, !st[i]))
		}
		got := s.Solve(assume...)
		if (got == sat.Sat) != want {
			t.Fatalf("state %03b: got %v, want %v", sv, got, want)
		}
	}
}

func TestEmptyTargetIsUnsat(t *testing.T) {
	c := loadS27(t)
	sp := cube.NewSpace([]lit.Var{0, 1, 2})
	inst, err := NewInstance(c, cube.NewCover(sp))
	if err != nil {
		t.Fatal(err)
	}
	s := sat.FromFormula(inst.F, sat.DefaultOptions())
	if got := s.Solve(); got != sat.Unsat {
		t.Fatalf("empty target should be UNSAT, got %v", got)
	}
}

func TestRetargetCover(t *testing.T) {
	c := loadS27(t)
	inst, _ := NewInstance(c, TargetFromPatterns(3, "1XX"))
	src := TargetFromPatterns(3, "01X", "X10")
	out := inst.RetargetCover(src)
	if out.Space() != inst.StateSpace {
		t.Fatal("retargeted cover should live on the instance state space")
	}
	if out.Len() != 2 || out.Cubes()[0].String() != "01X" {
		t.Fatal("cube patterns should be preserved")
	}
}

func TestTargetFromPatterns(t *testing.T) {
	cv := TargetFromPatterns(2, "1X", "01")
	if cv.Len() != 2 || cv.Space().Size() != 2 {
		t.Fatal("TargetFromPatterns shape")
	}
}
