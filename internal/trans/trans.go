// Package trans builds single-step preimage problem instances from
// sequential circuits: the Tseitin CNF of the next-state logic conjoined
// with a target-set constraint over the next-state variables, together
// with the variable spaces (present state, primary input) the all-SAT
// engines project onto.
package trans

import (
	"fmt"

	"allsatpre/internal/circuit"
	"allsatpre/internal/cnf"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
	"allsatpre/internal/tseitin"
)

// Instance is a ready-to-enumerate preimage problem.
//
// The CNF F is satisfiable exactly by the consistent circuit valuations
// (s, x, internals) whose next state lies in the target set. The preimage
// is the projection of F's models onto StateVars (or onto StateVars ∪
// InputVars when the input word is wanted too).
type Instance struct {
	// F is the constraint CNF.
	F *cnf.Formula
	// Enc is the underlying circuit encoding.
	Enc *tseitin.Encoding
	// StateVars, InputVars and NextVars are the projection variable
	// groups, in latch/input declaration order.
	StateVars, InputVars, NextVars []lit.Var
	// StateSpace is the cube space over StateVars with latch names.
	StateSpace *cube.Space
	// FullSpace is the cube space over StateVars followed by InputVars.
	FullSpace *cube.Space
	// SelectorVars are the auxiliary cube-selector variables added for
	// the target cover (one per target cube), for diagnostics.
	SelectorVars []lit.Var
}

// NewBaseInstance builds an instance carrying the circuit's Tseitin CNF
// with no target constraint: F is a private clone of the (cached)
// encoding, every consistent circuit valuation satisfies it. Callers add
// the target themselves — either as plain clauses or, for incremental
// sessions, as activation-gated clause groups built with Retarget /
// RetargetInit.
func NewBaseInstance(c *circuit.Circuit) (*Instance, error) {
	enc, err := tseitin.EncodeCached(c)
	if err != nil {
		return nil, err
	}
	inst := &Instance{
		F:         enc.F.Clone(),
		Enc:       enc,
		StateVars: enc.StateVars,
		InputVars: enc.InputVars,
		NextVars:  enc.NextStateVars,
	}
	names := make([]string, len(c.Latches))
	for i, gi := range c.Latches {
		names[i] = c.Gates[gi].Name
	}
	inst.StateSpace = cube.NewNamedSpace(enc.StateVars, names)
	fullVars := append(append([]lit.Var(nil), enc.StateVars...), enc.InputVars...)
	fullNames := append([]string(nil), names...)
	for _, gi := range c.Inputs {
		fullNames = append(fullNames, c.Gates[gi].Name)
	}
	inst.FullSpace = cube.NewNamedSpace(fullVars, fullNames)
	return inst, nil
}

// addCoverConstraint encodes "the valuation of vars lies in cv" into
// in.F with one selector variable per cube:
//
//	sel_i → (literals of cube i),  sel_1 ∨ … ∨ sel_k
//
// An empty cover yields an empty clause (unsatisfiable instance).
func (in *Instance) addCoverConstraint(cv *cube.Cover, vars []lit.Var) {
	if cv.Len() == 0 {
		in.F.Add()
		return
	}
	var any []lit.Lit
	for _, cb := range cv.Cubes() {
		sel := in.F.NewVar()
		in.SelectorVars = append(in.SelectorVars, sel)
		any = append(any, lit.Pos(sel))
		for pos, t := range cb {
			if t == lit.Unknown {
				continue
			}
			in.F.Add(lit.Neg(sel), lit.New(vars[pos], t == lit.False))
		}
	}
	in.F.Add(any...)
}

// NewInstance builds the preimage instance for the circuit and a target
// cover over the state space (one position per latch, in declaration
// order). The target constraint "next-state ∈ target" is encoded with one
// selector variable per cube:
//
//	sel_i → (next-state literals of cube i),  sel_1 ∨ … ∨ sel_k
//
// An empty target cover yields an unsatisfiable instance (empty preimage).
func NewInstance(c *circuit.Circuit, target *cube.Cover) (*Instance, error) {
	if target.Space().Size() != len(c.Latches) {
		return nil, fmt.Errorf("trans: target space has %d positions, circuit has %d latches",
			target.Space().Size(), len(c.Latches))
	}
	inst, err := NewBaseInstance(c)
	if err != nil {
		return nil, err
	}
	inst.addCoverConstraint(target, inst.NextVars)
	return inst, nil
}

// NewImageInstance builds the forward-image problem for the circuit and
// an initial-state cover: the CNF is satisfiable exactly by consistent
// valuations whose present state lies in init, and the image is the
// projection of its models onto NextVars.
func NewImageInstance(c *circuit.Circuit, init *cube.Cover) (*Instance, error) {
	if init.Space().Size() != len(c.Latches) {
		return nil, fmt.Errorf("trans: init space has %d positions, circuit has %d latches",
			init.Space().Size(), len(c.Latches))
	}
	inst, err := NewBaseInstance(c)
	if err != nil {
		return nil, err
	}
	inst.addCoverConstraint(init, inst.StateVars)
	return inst, nil
}

// Step is one activation-gated target encoding produced by Retarget or
// RetargetInit, for feeding a persistent solver: add every clause in
// Clauses (each contains ¬Act), solve/enumerate under the assumption
// Act, then retire the step with the unit ¬Act and garbage-collect
// everything mentioning Vars.
type Step struct {
	// Act is the activation literal (positive polarity).
	Act lit.Lit
	// Vars are the variables private to the step — the activation
	// variable and the cube selectors — to retire with it.
	Vars []lit.Var
	// Clauses is the gated constraint: sel_i → cube_i literals and the
	// selector disjunction, every clause gated on ¬Act. An empty cover
	// encodes as the single clause {¬Act}, making the step UNSAT under
	// the assumption Act without touching the base formula.
	Clauses [][]lit.Lit
}

// gateCover builds the activation-gated clause set constraining vars to
// lie in cv. newVar allocates fresh solver variables (the caller keeps
// every participating solver's variable counts in sync).
func gateCover(cv *cube.Cover, vars []lit.Var, newVar func() lit.Var) *Step {
	act := newVar()
	st := &Step{Act: lit.Pos(act), Vars: []lit.Var{act}}
	nact := lit.Neg(act)
	if cv.Len() == 0 {
		st.Clauses = append(st.Clauses, []lit.Lit{nact})
		return st
	}
	any := []lit.Lit{nact}
	for _, cb := range cv.Cubes() {
		sel := newVar()
		st.Vars = append(st.Vars, sel)
		any = append(any, lit.Pos(sel))
		for pos, t := range cb {
			if t == lit.Unknown {
				continue
			}
			st.Clauses = append(st.Clauses,
				[]lit.Lit{nact, lit.Neg(sel), lit.New(vars[pos], t == lit.False)})
		}
	}
	st.Clauses = append(st.Clauses, any)
	return st
}

// Retarget encodes a new target cover over the next-state variables as
// an activation-gated step for an incremental backward-reachability
// session. The cover may live in any space of the right width (cube
// positions map to latches by index, as in RetargetCover).
func (in *Instance) Retarget(cv *cube.Cover, newVar func() lit.Var) (*Step, error) {
	if cv.Space().Size() != len(in.NextVars) {
		return nil, fmt.Errorf("trans: cover has %d positions, circuit has %d latches",
			cv.Space().Size(), len(in.NextVars))
	}
	return gateCover(cv, in.NextVars, newVar), nil
}

// RetargetInit encodes a present-state cover as an activation-gated step,
// the forward-image analogue of Retarget.
func (in *Instance) RetargetInit(cv *cube.Cover, newVar func() lit.Var) (*Step, error) {
	if cv.Space().Size() != len(in.StateVars) {
		return nil, fmt.Errorf("trans: cover has %d positions, circuit has %d latches",
			cv.Space().Size(), len(in.StateVars))
	}
	return gateCover(cv, in.StateVars, newVar), nil
}

// TargetFromPatterns builds a cover over a fresh state-shaped space from
// "01X" pattern strings (one position per latch).
func TargetFromPatterns(nLatches int, patterns ...string) *cube.Cover {
	vars := make([]lit.Var, nLatches)
	for i := range vars {
		vars[i] = lit.Var(i)
	}
	sp := cube.NewSpace(vars)
	cv := cube.NewCover(sp)
	for _, p := range patterns {
		cv.Add(sp.CubeOf(p))
	}
	return cv
}

// RetargetCover rebuilds a cover (over any space of the right width) onto
// the instance's state space, so a preimage result can feed the next
// backward step as a target.
func (in *Instance) RetargetCover(cv *cube.Cover) *cube.Cover {
	out := cube.NewCover(in.StateSpace)
	for _, c := range cv.Cubes() {
		out.Add(c.Clone())
	}
	return out
}

// OrderedProjection returns the (state ∪ input) projection variables and
// their names in the requested decision order: state-first by default,
// input-first when inputFirst is set, (s, x)-interleaved when interleave
// is set (interleave wins when both are set). Every ordering keeps the
// latches in declaration order relative to each other, which is what
// makes ISOP covers positionally comparable across orderings.
func (in *Instance) OrderedProjection(inputFirst, interleave bool) ([]lit.Var, []string) {
	st, inp := in.StateVars, in.InputVars
	stateNames := make([]string, len(st))
	for i := range st {
		stateNames[i] = in.StateSpace.Name(i)
	}
	inputNames := make([]string, len(inp))
	for i := range inp {
		inputNames[i] = in.FullSpace.Name(len(st) + i)
	}
	var vars []lit.Var
	var names []string
	switch {
	case interleave:
		for i := 0; i < len(st) || i < len(inp); i++ {
			if i < len(st) {
				vars = append(vars, st[i])
				names = append(names, stateNames[i])
			}
			if i < len(inp) {
				vars = append(vars, inp[i])
				names = append(names, inputNames[i])
			}
		}
	case inputFirst:
		vars = append(append(vars, inp...), st...)
		names = append(append(names, inputNames...), stateNames...)
	default:
		vars = append(append(vars, st...), inp...)
		names = append(append(names, stateNames...), inputNames...)
	}
	return vars, names
}

// ProjectionVars returns the projection variable list: the state variables,
// plus the input variables when withInputs is set.
func (in *Instance) ProjectionVars(withInputs bool) []lit.Var {
	if withInputs {
		return in.FullSpace.Vars()
	}
	return in.StateVars
}

// ProjectionSpace returns the matching cube space for ProjectionVars.
func (in *Instance) ProjectionSpace(withInputs bool) *cube.Space {
	if withInputs {
		return in.FullSpace
	}
	return in.StateSpace
}
