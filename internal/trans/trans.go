// Package trans builds single-step preimage problem instances from
// sequential circuits: the Tseitin CNF of the next-state logic conjoined
// with a target-set constraint over the next-state variables, together
// with the variable spaces (present state, primary input) the all-SAT
// engines project onto.
package trans

import (
	"fmt"

	"allsatpre/internal/circuit"
	"allsatpre/internal/cnf"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
	"allsatpre/internal/tseitin"
)

// Instance is a ready-to-enumerate preimage problem.
//
// The CNF F is satisfiable exactly by the consistent circuit valuations
// (s, x, internals) whose next state lies in the target set. The preimage
// is the projection of F's models onto StateVars (or onto StateVars ∪
// InputVars when the input word is wanted too).
type Instance struct {
	// F is the constraint CNF.
	F *cnf.Formula
	// Enc is the underlying circuit encoding.
	Enc *tseitin.Encoding
	// StateVars, InputVars and NextVars are the projection variable
	// groups, in latch/input declaration order.
	StateVars, InputVars, NextVars []lit.Var
	// StateSpace is the cube space over StateVars with latch names.
	StateSpace *cube.Space
	// FullSpace is the cube space over StateVars followed by InputVars.
	FullSpace *cube.Space
	// SelectorVars are the auxiliary cube-selector variables added for
	// the target cover (one per target cube), for diagnostics.
	SelectorVars []lit.Var
}

// NewInstance builds the preimage instance for the circuit and a target
// cover over the state space (one position per latch, in declaration
// order). The target constraint "next-state ∈ target" is encoded with one
// selector variable per cube:
//
//	sel_i → (next-state literals of cube i),  sel_1 ∨ … ∨ sel_k
//
// An empty target cover yields an unsatisfiable instance (empty preimage).
func NewInstance(c *circuit.Circuit, target *cube.Cover) (*Instance, error) {
	enc, err := tseitin.Encode(c)
	if err != nil {
		return nil, err
	}
	if target.Space().Size() != len(c.Latches) {
		return nil, fmt.Errorf("trans: target space has %d positions, circuit has %d latches",
			target.Space().Size(), len(c.Latches))
	}
	f := enc.F.Clone()
	inst := &Instance{
		F:         f,
		Enc:       enc,
		StateVars: enc.StateVars,
		InputVars: enc.InputVars,
		NextVars:  enc.NextStateVars,
	}

	names := make([]string, len(c.Latches))
	for i, gi := range c.Latches {
		names[i] = c.Gates[gi].Name
	}
	inst.StateSpace = cube.NewNamedSpace(enc.StateVars, names)

	fullVars := append(append([]lit.Var(nil), enc.StateVars...), enc.InputVars...)
	fullNames := append([]string(nil), names...)
	for _, gi := range c.Inputs {
		fullNames = append(fullNames, c.Gates[gi].Name)
	}
	inst.FullSpace = cube.NewNamedSpace(fullVars, fullNames)

	// Encode the target cover over the next-state variables.
	if target.Len() == 0 {
		f.Add() // empty clause: no next state is in the target
		return inst, nil
	}
	var any []lit.Lit
	for _, cb := range target.Cubes() {
		sel := f.NewVar()
		inst.SelectorVars = append(inst.SelectorVars, sel)
		any = append(any, lit.Pos(sel))
		for pos, t := range cb {
			if t == lit.Unknown {
				continue
			}
			f.Add(lit.Neg(sel), lit.New(enc.NextStateVars[pos], t == lit.False))
		}
	}
	f.Add(any...)
	return inst, nil
}

// NewImageInstance builds the forward-image problem for the circuit and
// an initial-state cover: the CNF is satisfiable exactly by consistent
// valuations whose present state lies in init, and the image is the
// projection of its models onto NextVars.
func NewImageInstance(c *circuit.Circuit, init *cube.Cover) (*Instance, error) {
	enc, err := tseitin.Encode(c)
	if err != nil {
		return nil, err
	}
	if init.Space().Size() != len(c.Latches) {
		return nil, fmt.Errorf("trans: init space has %d positions, circuit has %d latches",
			init.Space().Size(), len(c.Latches))
	}
	f := enc.F.Clone()
	inst := &Instance{
		F:         f,
		Enc:       enc,
		StateVars: enc.StateVars,
		InputVars: enc.InputVars,
		NextVars:  enc.NextStateVars,
	}
	names := make([]string, len(c.Latches))
	for i, gi := range c.Latches {
		names[i] = c.Gates[gi].Name
	}
	inst.StateSpace = cube.NewNamedSpace(enc.StateVars, names)
	fullVars := append(append([]lit.Var(nil), enc.StateVars...), enc.InputVars...)
	fullNames := append([]string(nil), names...)
	for _, gi := range c.Inputs {
		fullNames = append(fullNames, c.Gates[gi].Name)
	}
	inst.FullSpace = cube.NewNamedSpace(fullVars, fullNames)

	// Constrain the present state to the initial cover.
	if init.Len() == 0 {
		f.Add()
		return inst, nil
	}
	var any []lit.Lit
	for _, cb := range init.Cubes() {
		sel := f.NewVar()
		inst.SelectorVars = append(inst.SelectorVars, sel)
		any = append(any, lit.Pos(sel))
		for pos, t := range cb {
			if t == lit.Unknown {
				continue
			}
			f.Add(lit.Neg(sel), lit.New(enc.StateVars[pos], t == lit.False))
		}
	}
	f.Add(any...)
	return inst, nil
}

// TargetFromPatterns builds a cover over a fresh state-shaped space from
// "01X" pattern strings (one position per latch).
func TargetFromPatterns(nLatches int, patterns ...string) *cube.Cover {
	vars := make([]lit.Var, nLatches)
	for i := range vars {
		vars[i] = lit.Var(i)
	}
	sp := cube.NewSpace(vars)
	cv := cube.NewCover(sp)
	for _, p := range patterns {
		cv.Add(sp.CubeOf(p))
	}
	return cv
}

// RetargetCover rebuilds a cover (over any space of the right width) onto
// the instance's state space, so a preimage result can feed the next
// backward step as a target.
func (in *Instance) RetargetCover(cv *cube.Cover) *cube.Cover {
	out := cube.NewCover(in.StateSpace)
	for _, c := range cv.Cubes() {
		out.Add(c.Clone())
	}
	return out
}

// ProjectionVars returns the projection variable list: the state variables,
// plus the input variables when withInputs is set.
func (in *Instance) ProjectionVars(withInputs bool) []lit.Var {
	if withInputs {
		return in.FullSpace.Vars()
	}
	return in.StateVars
}

// ProjectionSpace returns the matching cube space for ProjectionVars.
func (in *Instance) ProjectionSpace(withInputs bool) *cube.Space {
	if withInputs {
		return in.FullSpace
	}
	return in.StateSpace
}
