package server

import (
	"net/http"
	"strconv"
	"time"

	"allsatpre/internal/stats"
)

// admission is the semaphore-based concurrency gate in front of every
// solve (one-shot streams and session steps alike). Enumeration is
// CPU-bound: admitting more solves than cores only adds scheduler
// churn and lets a burst of tenants push each other past their
// wall-clock budgets. Saturated requests are rejected immediately with
// 429 + Retry-After rather than queued — the client holds the retry
// policy, the server holds the cap.
type admission struct {
	sem      chan struct{}
	active   *stats.Counter // admitted, for the gauge pair below
	released *stats.Counter
	rejected *stats.Counter
}

func newAdmission(n int, reg *stats.Registry) *admission {
	return &admission{
		sem:      make(chan struct{}, n),
		active:   reg.Counter("server.admitted"),
		released: reg.Counter("server.completed"),
		rejected: reg.Counter("server.rejected"),
	}
}

// tryAcquire claims a solve slot without blocking.
func (a *admission) tryAcquire() bool {
	select {
	case a.sem <- struct{}{}:
		a.active.Inc()
		return true
	default:
		a.rejected.Inc()
		return false
	}
}

func (a *admission) release() {
	<-a.sem
	a.released.Inc()
}

// admit gates a handler: on saturation it writes the 429 and reports
// false; on success the caller must defer release().
func (s *Server) admit(w http.ResponseWriter) bool {
	if s.adm.tryAcquire() {
		return true
	}
	secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	httpError(w, http.StatusTooManyRequests,
		"solver capacity saturated; retry after the indicated delay")
	return false
}
