package server

import (
	"context"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"allsatpre/internal/stats"
)

// admission is the concurrency gate in front of every solve (one-shot
// streams and session steps alike). Enumeration is CPU-bound: admitting
// more solves than cores only adds scheduler churn and lets a burst of
// tenants push each other past their wall-clock budgets. At saturation
// a request first waits in a bounded FIFO queue (blocked channel sends
// are served in arrival order) for up to maxWait; only when the queue
// is full, the wait times out, or waiting is disabled does it get 429 +
// Retry-After. The hint is not a fixed constant: it extrapolates the
// observed drain rate — an EWMA of how long admitted solves hold their
// slot — across the queue ahead of the caller.
type admission struct {
	sem      chan struct{}
	slots    int
	maxWait  time.Duration // 0 disables waiting: immediate 429 at saturation
	maxQueue int           // waiter cap while maxWait > 0

	waiters atomic.Int64
	holdNs  atomic.Int64 // EWMA of slot hold time, nanoseconds

	active   *stats.Counter // admitted, for the gauge pair below
	released *stats.Counter
	rejected *stats.Counter
	queued   *stats.Counter // entered the wait queue
	timedOut *stats.Counter // left it on deadline
}

func newAdmission(n int, maxWait time.Duration, maxQueue int, reg *stats.Registry) *admission {
	if maxQueue <= 0 {
		maxQueue = 2 * n
	}
	return &admission{
		sem:      make(chan struct{}, n),
		slots:    n,
		maxWait:  maxWait,
		maxQueue: maxQueue,
		active:   reg.Counter("server.admitted"),
		released: reg.Counter("server.completed"),
		rejected: reg.Counter("server.rejected"),
		queued:   reg.Counter("server.queue-entered"),
		timedOut: reg.Counter("server.queue-timeout"),
	}
}

// admitTok carries the admission timestamp so release can fold the
// slot's hold time into the drain-rate estimate.
type admitTok struct{ t0 time.Time }

// acquire claims a solve slot, waiting in the bounded queue when the
// gate is saturated. False means the caller must answer 429.
func (a *admission) acquire(ctx context.Context) (admitTok, bool) {
	select {
	case a.sem <- struct{}{}:
		a.active.Inc()
		return admitTok{t0: time.Now()}, true
	default:
	}
	if a.maxWait <= 0 {
		a.rejected.Inc()
		return admitTok{}, false
	}
	if a.waiters.Add(1) > int64(a.maxQueue) {
		a.waiters.Add(-1)
		a.rejected.Inc()
		return admitTok{}, false
	}
	defer a.waiters.Add(-1)
	a.queued.Inc()
	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	select {
	case a.sem <- struct{}{}:
		a.active.Inc()
		return admitTok{t0: time.Now()}, true
	case <-timer.C:
		a.timedOut.Inc()
		a.rejected.Inc()
		return admitTok{}, false
	case <-ctx.Done():
		a.rejected.Inc()
		return admitTok{}, false
	}
}

func (a *admission) release(tok admitTok) {
	<-a.sem
	held := time.Since(tok.t0).Nanoseconds()
	// EWMA with alpha 1/4: old + (sample-old)/4. Lossy under races, which
	// is fine for a retry hint.
	old := a.holdNs.Load()
	a.holdNs.Store(old + (held-old)/4)
	a.released.Inc()
}

// retryAfter estimates when a slot is likely to be free for THIS caller:
// everyone already waiting drains ahead of it, so the queue depth plus
// one, spread over the slots, times the observed per-solve hold time.
// Falls back to the configured constant before any solve has completed.
func (a *admission) retryAfter(fallback time.Duration) time.Duration {
	hold := time.Duration(a.holdNs.Load())
	if hold <= 0 {
		return fallback
	}
	d := hold * time.Duration(a.waiters.Load()+1) / time.Duration(a.slots)
	if d < time.Second {
		d = time.Second
	}
	return d
}

// admit gates a handler: on saturation (queue full or wait expired) it
// writes the 429 and reports ok=false; on success the caller must defer
// release(tok).
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (admitTok, bool) {
	tok, ok := s.adm.acquire(r.Context())
	if ok {
		return tok, true
	}
	ra := s.adm.retryAfter(s.cfg.RetryAfter)
	secs := int((ra + time.Second - 1) / time.Second)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	httpError(w, http.StatusTooManyRequests,
		"solver capacity saturated; retry after the indicated delay")
	return admitTok{}, false
}
