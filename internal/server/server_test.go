package server

// End-to-end tests over a real HTTP round-trip (httptest.Server), proving
// the three service-level properties the subsystem exists for:
//
//   - streaming: cubes reach the client while the enumeration is still
//     running, not after it finishes;
//   - cancellation: a client that stops reading aborts the underlying
//     solve (observable as the admission slot being released);
//   - multi-tenancy: concurrent sessions with different budgets compute
//     independently-verified covers while the LRU bounds residency.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/circuit"
	"allsatpre/internal/cube"
	"allsatpre/internal/gen"
	"allsatpre/internal/lit"
	"allsatpre/internal/preimage"
	"allsatpre/internal/stats"
	"allsatpre/internal/trans"
)

// wideDimacs builds a near-unconstrained formula: one clause over nVars
// variables. Blocking enumeration over the full projection yields about
// 2^nVars minterm cubes — it cannot complete within a test's lifetime,
// so any cube the client observes arrived before the solve finished.
func wideDimacs(nVars int) string {
	return fmt.Sprintf("p cnf %d 1\n1 2 0\n", nVars)
}

// event is the union of the NDJSON stream line shapes, for decoding.
type event struct {
	Type      string `json:"type"`
	Engine    string `json:"engine"`
	Vars      int    `json:"vars"`
	Cube      string `json:"cube"`
	Cubes     uint64 `json:"cubes"`
	Solutions uint64 `json:"solutions"`
	Count     string `json:"count"`
	Truncated bool   `json:"truncated"`
	Reason    string `json:"reason"`
}

func decodeLine(t *testing.T, sc *bufio.Scanner) event {
	t.Helper()
	if !sc.Scan() {
		t.Fatalf("stream ended early: %v", sc.Err())
	}
	var ev event
	if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
		t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
	}
	return ev
}

// waitCounter polls a registry counter until it reaches want; the only
// way to observe "the handler finished" from outside the HTTP surface.
func waitCounter(t *testing.T, reg *stats.Registry, name string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for reg.Counter(name).Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter %s stuck at %d, want >= %d", name, reg.Counter(name).Load(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestEnumerateStreamsIncrementallyAndDisconnectAborts(t *testing.T) {
	reg := stats.NewRegistry("test")
	srv := New(Config{Stats: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/enumerate?engine=blocking", "text/plain",
		strings.NewReader(wideDimacs(40)))
	if err != nil {
		t.Fatalf("POST /v1/enumerate: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	hdr := decodeLine(t, sc)
	if hdr.Type != "header" || hdr.Engine != "blocking" || hdr.Vars != 40 {
		t.Fatalf("bad header event: %+v", hdr)
	}
	// Reading cubes here at all proves incremental delivery: a ~2^40-cube
	// enumeration cannot have completed before the first line arrived.
	for i := 0; i < 3; i++ {
		ev := decodeLine(t, sc)
		if ev.Type != "cube" || len(ev.Cube) != 40 {
			t.Fatalf("cube %d: %+v", i, ev)
		}
	}
	// Walk away mid-stream. The dropped connection must cancel the solve
	// context and the handler must exit, releasing its admission slot.
	resp.Body.Close()
	waitCounter(t, reg, "server.completed", 1)
}

func TestEnumerateDisjointCompleteCover(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// (x1 v x2) & (!x1 v x3): exactly 4 of the 8 assignments.
	resp, err := http.Post(ts.URL+"/v1/enumerate?engine=disjoint", "text/plain",
		strings.NewReader("p cnf 3 2\n1 2 0\n-1 3 0\n"))
	if err != nil {
		t.Fatalf("POST /v1/enumerate: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if hdr := decodeLine(t, sc); hdr.Type != "header" {
		t.Fatalf("want header first, got %+v", hdr)
	}
	sp := cube.NewSpace([]lit.Var{0, 1, 2})
	var cubes []cube.Cube
	var summary event
	for {
		ev := decodeLine(t, sc)
		if ev.Type == "summary" {
			summary = ev
			break
		}
		cubes = append(cubes, sp.CubeOf(ev.Cube))
	}
	if summary.Truncated || summary.Reason != "" {
		t.Fatalf("complete enumeration reported truncated: %+v", summary)
	}
	if summary.Cubes != uint64(len(cubes)) {
		t.Fatalf("summary says %d cubes, stream had %d", summary.Cubes, len(cubes))
	}
	var total uint64
	for i, c := range cubes {
		total += c.Minterms()
		for j := i + 1; j < len(cubes); j++ {
			if !c.Disjoint(cubes[j]) {
				t.Fatalf("cubes %v and %v overlap", c, cubes[j])
			}
		}
	}
	if total != 4 {
		t.Fatalf("disjoint cover has %d minterms, want 4", total)
	}
}

// --- session helpers ---

type stepReply struct {
	ID        string   `json:"id"`
	Step      int      `json:"step"`
	Frontier  []string `json:"frontier"`
	NewStates string   `json:"new_states"`
	Fixpoint  bool     `json:"fixpoint"`
	Truncated bool     `json:"truncated"`
	Reason    string   `json:"reason"`
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if s, ok := body.(string); ok {
		rd = bytes.NewReader([]byte(s))
	} else {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	resp, err := http.Post(url, "application/json", rd)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

// walkToFixpoint steps a session until it reports fixpoint, retrying
// politely on 429 (the admission gate applies to steps too), and
// returns every step reply in order.
func walkToFixpoint(t *testing.T, url, id string) []stepReply {
	t.Helper()
	var steps []stepReply
	for i := 0; i < 64; i++ {
		var rep stepReply
		code := postJSON(t, url+"/v1/sessions/"+id+"/step", "", &rep)
		if code == http.StatusTooManyRequests {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		if code != http.StatusOK {
			t.Fatalf("step %s: status %d", id, code)
		}
		if rep.Truncated {
			t.Fatalf("step %s truncated: %s", id, rep.Reason)
		}
		steps = append(steps, rep)
		if rep.Fixpoint {
			return steps
		}
	}
	t.Fatalf("session %s did not reach fixpoint in 64 steps", id)
	return nil
}

// verifyTenant checks a completed walk against the library run fresh:
// per-layer state counts against preimage.Reach, and the first frontier
// as a BDD set against preimage.Compute (preimage minus target).
func verifyTenant(t *testing.T, c *circuit.Circuit, target string, steps []stepReply) {
	t.Helper()
	n := len(target)
	tc := trans.TargetFromPatterns(n, target)
	ref, err := preimage.Reach(c, tc, 0, preimage.Options{})
	if err != nil {
		t.Fatalf("reference Reach: %v", err)
	}
	if !ref.Fixpoint {
		t.Fatalf("reference Reach did not converge")
	}
	var nonzero []string
	for _, s := range steps {
		if s.NewStates != "" && s.NewStates != "0" {
			nonzero = append(nonzero, s.NewStates)
		}
	}
	if len(nonzero) != len(ref.FrontierCounts)-1 {
		t.Fatalf("walk found %d productive layers, reference found %d",
			len(nonzero), len(ref.FrontierCounts)-1)
	}
	for k, got := range nonzero {
		if want := ref.FrontierCounts[k+1].String(); got != want {
			t.Fatalf("layer %d: %s new states, reference says %s", k+1, got, want)
		}
	}

	pre, err := preimage.Compute(c, tc, preimage.Options{})
	if err != nil {
		t.Fatalf("reference Compute: %v", err)
	}
	man := bdd.NewOrdered(pre.StateSpace.Vars())
	want := man.Diff(man.FromCover(pre.States), man.FromCover(tc))
	gotCover := cube.NewCover(pre.StateSpace)
	for _, p := range steps[0].Frontier {
		gotCover.Add(pre.StateSpace.CubeOf(p))
	}
	if got := man.FromCover(gotCover); got != want {
		t.Fatalf("step-1 frontier %v does not equal preimage \\ target", steps[0].Frontier)
	}
}

func TestConcurrentTenantsAndLRUEviction(t *testing.T) {
	reg := stats.NewRegistry("test")
	srv := New(Config{
		MaxSessions:   2,
		MaxConcurrent: 4,
		Fence:         budget.Fence{MaxConflicts: 50_000_000, MaxTimeout: 2 * time.Minute},
		Stats:         reg,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	c := gen.Counter(4, false, false)
	bench := circuit.BenchString(c)

	type createReply struct {
		ID      string   `json:"id"`
		Latches int      `json:"latches"`
		Evicted []string `json:"evicted"`
	}
	mk := func(name, target string, extra map[string]any) createReply {
		body := map[string]any{"name": name, "bench": bench, "target": []string{target}}
		for k, v := range extra {
			body[k] = v
		}
		var rep createReply
		if code := postJSON(t, ts.URL+"/v1/sessions", body, &rep); code != http.StatusCreated {
			t.Fatalf("create %s: status %d", name, code)
		}
		return rep
	}

	// Fill capacity with an idle session plus tenant alice, then let
	// tenant bob's creation evict the idle one (LRU back). The two live
	// tenants request different budgets; the fence clamps both.
	mk("idle", "1100", nil)
	mk("alice", "0000", map[string]any{"max_conflicts": 40_000_000})
	bob := mk("bob", "0011", map[string]any{"timeout": "90s"})
	if len(bob.Evicted) != 1 || bob.Evicted[0] != "idle" {
		t.Fatalf("creating bob evicted %v, want [idle]", bob.Evicted)
	}
	if got := reg.Counter("server.sessions-evicted").Load(); got != 1 {
		t.Fatalf("sessions-evicted = %d, want 1", got)
	}

	// The evicted session is gone from the HTTP surface.
	var errRep map[string]any
	if code := postJSON(t, ts.URL+"/v1/sessions/idle/step", "", &errRep); code != http.StatusNotFound {
		t.Fatalf("stepping evicted session: status %d, want 404", code)
	}

	// Both tenants walk their reachability to fixpoint concurrently.
	results := map[string][]stepReply{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range []string{"alice", "bob"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			steps := walkToFixpoint(t, ts.URL, id)
			mu.Lock()
			results[id] = steps
			mu.Unlock()
		}(id)
	}
	wg.Wait()

	verifyTenant(t, c, "0000", results["alice"])
	verifyTenant(t, c, "0011", results["bob"])

	// Listing shows exactly the two live tenants.
	resp, err := http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatalf("GET /v1/sessions: %v", err)
	}
	var infos []sessionInfo
	json.NewDecoder(resp.Body).Decode(&infos)
	resp.Body.Close()
	ids := map[string]bool{}
	for _, in := range infos {
		ids[in.ID] = true
	}
	if len(ids) != 2 || !ids["alice"] || !ids["bob"] {
		t.Fatalf("live sessions %v, want {alice, bob}", ids)
	}
}

func TestAdmissionSaturatedReturns429(t *testing.T) {
	reg := stats.NewRegistry("test")
	srv := New(Config{MaxConcurrent: 1, RetryAfter: 3 * time.Second, Stats: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Hold the only solve slot with an endless stream.
	resp, err := http.Post(ts.URL+"/v1/enumerate?engine=blocking", "text/plain",
		strings.NewReader(wideDimacs(40)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	sc := bufio.NewScanner(resp.Body)
	decodeLine(t, sc) // header: the slot is definitely held now

	second, err := http.Post(ts.URL+"/v1/enumerate", "text/plain",
		strings.NewReader("p cnf 2 1\n1 2 0\n"))
	if err != nil {
		t.Fatalf("second POST: %v", err)
	}
	defer second.Body.Close()
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d, want 429", second.StatusCode)
	}
	if ra := second.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	var e struct {
		Error string `json:"error"`
	}
	json.NewDecoder(second.Body).Decode(&e)
	if e.Error == "" {
		t.Fatalf("429 body carries no error message")
	}
	if got := reg.Counter("server.rejected").Load(); got != 1 {
		t.Fatalf("server.rejected = %d, want 1", got)
	}

	resp.Body.Close()
	waitCounter(t, reg, "server.completed", 1)
}

func TestShutdownDrainsStreamWithTruncatedSummary(t *testing.T) {
	reg := stats.NewRegistry("test")
	srv := New(Config{Stats: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/enumerate?engine=blocking", "text/plain",
		strings.NewReader(wideDimacs(40)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	decodeLine(t, sc) // header
	decodeLine(t, sc) // at least one cube in flight before the drain
	srv.BeginShutdown()

	// Cubes may keep flowing until the handler's next poll; the stream
	// must then end with a summary naming the shutdown.
	var summary event
	found := false
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if ev.Type == "summary" {
			summary, found = ev, true
		}
	}
	if !found {
		t.Fatalf("stream ended without a summary line: %v", sc.Err())
	}
	if !summary.Truncated || summary.Reason != "shutdown" {
		t.Fatalf("drain summary = %+v, want truncated with reason shutdown", summary)
	}
	waitCounter(t, reg, "server.shutdown-truncated", 1)
	srv.Close()
}

func TestSessionLifecycleOverHTTP(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	bench := circuit.BenchString(gen.Counter(3, false, false))
	var created map[string]any
	code := postJSON(t, ts.URL+"/v1/sessions",
		map[string]any{"name": "walk", "bench": bench, "target": []string{"000"}}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}

	// One step of a 3-bit counter toward 000: exactly its predecessor 111.
	var rep stepReply
	if code := postJSON(t, ts.URL+"/v1/sessions/walk/step", "", &rep); code != http.StatusOK {
		t.Fatalf("step: status %d", code)
	}
	if rep.Step != 1 || rep.NewStates != "1" || len(rep.Frontier) != 1 || rep.Frontier[0] != "111" {
		t.Fatalf("step 1 = %+v, want frontier [111] with 1 new state", rep)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/walk", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d, want 204", resp.StatusCode)
	}
	if code := postJSON(t, ts.URL+"/v1/sessions/walk/step", "", nil); code != http.StatusNotFound {
		t.Fatalf("step after delete: status %d, want 404", code)
	}
}
