package server

// Tests for the pooled-runtime serving features: the admission wait
// queue, per-tenant fences, the fence-spec parser, pprof gating, and
// end-to-end equivalence of pooled vs classic request execution.

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"allsatpre/internal/budget"
	"allsatpre/internal/stats"
)

func TestParseFenceSpec(t *testing.T) {
	got, err := ParseFenceSpec("alice:timeout=30s,cubes=100000; bob:conflicts=5000,bdd-nodes=200,decisions=7")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]budget.Fence{
		"alice": {MaxTimeout: 30 * time.Second, MaxCubes: 100000},
		"bob":   {MaxConflicts: 5000, MaxBDDNodes: 200, MaxDecisions: 7},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d tenants, want %d", len(got), len(want))
	}
	for k, f := range want {
		if got[k] != f {
			t.Fatalf("tenant %q: got %+v, want %+v", k, got[k], f)
		}
	}
	if got, err := ParseFenceSpec("  "); err != nil || got != nil {
		t.Fatalf("empty spec: got %v, %v; want nil, nil", got, err)
	}
	for _, bad := range []string{
		"noseparator",
		"alice:cubes",
		"alice:cubes=abc",
		"alice:timeout=-3s",
		"alice:warp=9",
		"a:cubes=1;a:cubes=2",
	} {
		if _, err := ParseFenceSpec(bad); err == nil {
			t.Fatalf("spec %q: expected an error", bad)
		}
	}
}

// TestAdmissionQueueAdmitsWhenSlotFrees: with AdmissionWait set, a
// request arriving at a saturated gate waits instead of bouncing, and
// completes once the slot holder finishes.
func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	reg := stats.NewRegistry("test")
	srv := New(Config{MaxConcurrent: 1, AdmissionWait: 15 * time.Second, Stats: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Hold the only slot with an endless stream.
	holder, err := http.Post(ts.URL+"/v1/enumerate?engine=blocking", "text/plain",
		strings.NewReader(wideDimacs(40)))
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(holder.Body)
	decodeLine(t, sc) // header: the slot is definitely held now

	type outcome struct {
		status int
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/enumerate", "text/plain",
			strings.NewReader("p cnf 2 1\n1 2 0\n"))
		if err != nil {
			done <- outcome{err: err}
			return
		}
		defer resp.Body.Close()
		done <- outcome{status: resp.StatusCode}
	}()

	waitCounter(t, reg, "server.queue-entered", 1)
	select {
	case o := <-done:
		t.Fatalf("queued request finished while the slot was held: %+v", o)
	default:
	}
	holder.Body.Close() // cancels the endless solve, freeing the slot
	select {
	case o := <-done:
		if o.err != nil || o.status != http.StatusOK {
			t.Fatalf("queued request: %+v, want 200", o)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("queued request never admitted after the slot freed")
	}
	if got := reg.Counter("server.rejected").Load(); got != 0 {
		t.Fatalf("server.rejected = %d, want 0", got)
	}
}

// TestAdmissionQueueCapRejects: once the wait queue itself is full, the
// next request gets the immediate 429 (with a Retry-After hint).
func TestAdmissionQueueCapRejects(t *testing.T) {
	reg := stats.NewRegistry("test")
	srv := New(Config{
		MaxConcurrent: 1, AdmissionWait: 15 * time.Second, AdmissionQueue: 1,
		Stats: reg,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	holder, err := http.Post(ts.URL+"/v1/enumerate?engine=blocking", "text/plain",
		strings.NewReader(wideDimacs(40)))
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Body.Close()
	sc := bufio.NewScanner(holder.Body)
	decodeLine(t, sc)

	// Fill the one queue slot with a second request.
	go http.Post(ts.URL+"/v1/enumerate", "text/plain",
		strings.NewReader("p cnf 2 1\n1 2 0\n"))
	waitCounter(t, reg, "server.queue-entered", 1)

	third, err := http.Post(ts.URL+"/v1/enumerate", "text/plain",
		strings.NewReader("p cnf 2 1\n1 2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer third.Body.Close()
	if third.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-queue request: status %d, want 429", third.StatusCode)
	}
	if third.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
}

// TestTenantFenceClampsPerTenant: a tenant listed in TenantFences gets
// its own ceilings; everyone else keeps the global fence.
func TestTenantFenceClampsPerTenant(t *testing.T) {
	srv := New(Config{
		TenantFences: map[string]budget.Fence{"capped": {MaxCubes: 2}},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	enumerate := func(tenant string) (cubes int, reason string) {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/enumerate?engine=disjoint",
			strings.NewReader("p cnf 3 1\n1 2 3 0\n"))
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for {
			ev := decodeLine(t, sc)
			switch ev.Type {
			case "cube":
				cubes++
			case "summary":
				return cubes, ev.Reason
			}
		}
	}

	if n, reason := enumerate("capped"); n > 2 || reason != "cube-limit" {
		t.Fatalf("capped tenant: %d cubes, reason %q; want <=2 and \"cube-limit\"", n, reason)
	}
	if n, reason := enumerate("other"); reason != "" || n == 0 {
		t.Fatalf("unlisted tenant: %d cubes, reason %q; want a complete cover", n, reason)
	}
}

func TestPprofGatedByConfig(t *testing.T) {
	off := httptest.NewServer(New(Config{}).Handler())
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof reachable without EnablePprof")
	}

	on := httptest.NewServer(New(Config{EnablePprof: true}).Handler())
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with EnablePprof: status %d, want 200", resp.StatusCode)
	}
}

// TestPooledServerEquivalentStreams: the same request sequence against a
// pooled server (warm free-list + shared scheduler, the defaults) and a
// classic server (both disabled) must produce identical NDJSON cube
// sequences — and the pooled server must actually hit its warm pool on
// repeat requests.
func TestPooledServerEquivalentStreams(t *testing.T) {
	regPooled := stats.NewRegistry("pooled")
	pooled := New(Config{MaxConcurrent: 4, Stats: regPooled})
	classic := New(Config{MaxConcurrent: 4, PoolBytes: -1, SchedWorkers: -1})
	tsPooled := httptest.NewServer(pooled.Handler())
	defer tsPooled.Close()
	defer pooled.Close()
	tsClassic := httptest.NewServer(classic.Handler())
	defer tsClassic.Close()

	dimacs := "p cnf 6 3\n1 2 3 0\n-1 4 0\n2 -5 6 0\n"
	stream := func(base, query string) []string {
		resp, err := http.Post(base+"/v1/enumerate?"+query, "text/plain",
			strings.NewReader(dimacs))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var cubes []string
		sc := bufio.NewScanner(resp.Body)
		for {
			ev := decodeLine(t, sc)
			if ev.Type == "summary" {
				if ev.Truncated {
					t.Fatalf("unexpected truncation: %q", ev.Reason)
				}
				return cubes
			}
			if ev.Type == "cube" {
				cubes = append(cubes, ev.Cube)
			}
		}
	}

	for _, query := range []string{
		"engine=disjoint", "engine=disjoint&workers=4",
		"engine=success", "engine=success&workers=4",
		"engine=blocking&workers=2", "engine=lifting",
	} {
		for rep := 0; rep < 2; rep++ { // second pass runs on warm state
			got := stream(tsPooled.URL, query)
			want := stream(tsClassic.URL, query)
			if strings.Join(got, "|") != strings.Join(want, "|") {
				t.Fatalf("%s rep %d: pooled stream differs from classic\npooled:  %v\nclassic: %v",
					query, rep, got, want)
			}
		}
	}
	if reg := regPooled; reg.Counter("runtime.solver-hits").Load() == 0 {
		t.Fatal("pooled server never reused a warm solver")
	}
}
