package server

import (
	"encoding/json"
	"net/http"

	"allsatpre/internal/allsat"
	"allsatpre/internal/budget"
)

// The NDJSON stream protocol: one JSON object per line. A stream is
//
//	{"type":"header", ...}        exactly once, first
//	{"type":"cube","cube":"01X"}  zero or more, as the iterator produces them
//	{"type":"summary", ...}       exactly once, last
//
// The summary's truncated/reason pair is the HTTP spelling of the
// repository-wide Aborted contract: a stream without truncated=true is
// the complete projection; with it, the cubes seen are a sound
// under-approximation and reason says which limit (or "shutdown", or
// "cancelled") cut it short.

type headerEvent struct {
	Type       string `json:"type"` // "header"
	Engine     string `json:"engine"`
	Vars       int    `json:"vars"`
	Projection []int  `json:"projection"` // 1-based DIMACS numbering
	Workers    int    `json:"workers"`
}

type cubeEvent struct {
	Type string `json:"type"` // "cube"
	Cube string `json:"cube"` // 01X pattern over the projection, in order
}

type summaryEvent struct {
	Type      string `json:"type"` // "summary"
	Cubes     uint64 `json:"cubes"`
	Solutions uint64 `json:"solutions"`
	Count     string `json:"count,omitempty"` // exact minterms, when computed
	Truncated bool   `json:"truncated"`
	Reason    string `json:"reason,omitempty"`
	Decisions uint64 `json:"decisions"`
	Conflicts uint64 `json:"conflicts"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

// streamWriter writes NDJSON events and flushes after each one, so a
// cube reaches the client the moment the iterator produced it — the
// whole point of a streaming front end. Write errors (client went
// away) are sticky; callers poll failed() and stop enumerating.
type streamWriter struct {
	enc  *json.Encoder
	rc   *http.ResponseController
	err  error
	sent uint64
}

func newStreamWriter(w http.ResponseWriter) *streamWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	return &streamWriter{enc: json.NewEncoder(w), rc: http.NewResponseController(w)}
}

func (sw *streamWriter) emit(v any) {
	if sw.err != nil {
		return
	}
	if err := sw.enc.Encode(v); err != nil {
		sw.err = err
		return
	}
	if err := sw.rc.Flush(); err != nil {
		sw.err = err
	}
}

func (sw *streamWriter) cube(pattern string) {
	sw.emit(cubeEvent{Type: "cube", Cube: pattern})
	if sw.err == nil {
		sw.sent++
	}
}

func (sw *streamWriter) failed() bool { return sw.err != nil }

// reasonString renders a stop reason for the summary line, folding the
// server-side shutdown drain into its own named reason so clients can tell
// "the server is restarting, retry elsewhere" from "my budget tripped".
func (s *Server) reasonString(r budget.Reason) string {
	if r == budget.Cancelled && s.drained() {
		return "shutdown"
	}
	if r == budget.None {
		return ""
	}
	return r.String()
}

// summarize builds the trailer for a streamed enumeration.
func (s *Server) summarize(st allsat.Stats, sent uint64, reason budget.Reason, elapsedMS int64) summaryEvent {
	return summaryEvent{
		Type:      "summary",
		Cubes:     sent,
		Solutions: st.Solutions,
		Truncated: reason != budget.None,
		Reason:    s.reasonString(reason),
		Decisions: st.Decisions,
		Conflicts: st.Conflicts,
		ElapsedMS: elapsedMS,
	}
}
