package server

// Table-driven rejection tests: every malformed request must produce a
// 4xx with a machine-readable JSON error, never a hang, a 500, or a
// half-written stream.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"allsatpre/internal/circuit"
	"allsatpre/internal/gen"
)

func TestHandlerRejections(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bench := circuit.BenchString(gen.Counter(2, false, false))
	goodDimacs := "p cnf 2 1\n1 2 0\n"

	cases := []struct {
		name, method, path, body string
		wantCode                 int
		wantErr                  string
	}{
		{"malformed dimacs", "POST", "/v1/enumerate", "p cnf oops\n", 400, "malformed DIMACS"},
		{"unknown enumerate engine", "POST", "/v1/enumerate?engine=magic", goodDimacs, 400, "unknown engine"},
		{"bad projection", "POST", "/v1/enumerate?proj=0", goodDimacs, 400, "projection"},
		{"bad timeout", "POST", "/v1/enumerate?timeout=fast", goodDimacs, 400, "timeout"},
		{"bad workers", "POST", "/v1/enumerate?workers=-2", goodDimacs, 400, "workers"},
		{"bad max-conflicts", "POST", "/v1/enumerate?max-conflicts=-1", goodDimacs, 400, "max-conflicts"},
		{"malformed bench", "POST", "/v1/preimage?target=00", "INPUT(broken\n", 400, "malformed BENCH"},
		{"unknown preimage engine", "POST", "/v1/preimage?engine=magic&target=00", bench, 400, "unknown engine"},
		{"missing target", "POST", "/v1/preimage", bench, 400, "no target"},
		{"target wrong length", "POST", "/v1/preimage?target=000", bench, 400, "latches"},
		{"target bad alphabet", "POST", "/v1/preimage?target=2Z", bench, 400, "invalid character"},
		{"session malformed json", "POST", "/v1/sessions", "{not json", 400, "malformed JSON"},
		{"step unknown session", "POST", "/v1/sessions/ghost/step", "", 404, "no session"},
		{"delete unknown session", "DELETE", "/v1/sessions/ghost", "", 404, "no session"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("building request: %v", err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatalf("%s %s: %v", tc.method, tc.path, err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantCode)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if !strings.Contains(e.Error, tc.wantErr) {
				t.Fatalf("error %q does not mention %q", e.Error, tc.wantErr)
			}
		})
	}
}

func TestRequestBodyLimit(t *testing.T) {
	srv := New(Config{MaxBodyBytes: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/enumerate", "text/plain",
		strings.NewReader(strings.Repeat("c padding line\n", 40)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&e)
	if !strings.Contains(e.Error, "64-byte limit") {
		t.Fatalf("error %q does not name the limit", e.Error)
	}
}

func TestSessionDuplicateName(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	body := map[string]any{
		"name":   "dup",
		"bench":  circuit.BenchString(gen.Counter(2, false, false)),
		"target": []string{"00"},
	}
	if code := postJSON(t, ts.URL+"/v1/sessions", body, nil); code != http.StatusCreated {
		t.Fatalf("first create: status %d", code)
	}
	var e struct {
		Error string `json:"error"`
	}
	if code := postJSON(t, ts.URL+"/v1/sessions", body, &e); code != http.StatusConflict {
		t.Fatalf("duplicate create: status %d, want 409", code)
	}
	if !strings.Contains(e.Error, "already exists") {
		t.Fatalf("conflict error %q", e.Error)
	}
}
