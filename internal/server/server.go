// Package server turns the one-shot enumeration CLIs into a long-lived
// multi-tenant HTTP service: the front door the ROADMAP's "millions of
// users" north star asks for.
//
// Three ideas organize the package:
//
//   - Streaming, not batching. One-shot enumeration requests run the
//     existing allsat iterators (sequential, disjoint, or the parallel
//     worker pool) and write each cube as one NDJSON line the moment
//     the iterator produces it. The disjoint engine's cubes are
//     pairwise disjoint by construction, so a consumer can fold the
//     stream incrementally with no post-hoc dedup; every stream ends
//     with a summary line that carries the truncation verdict, so a
//     partial answer is never silent (the Aborted contract over HTTP).
//   - Fenced budgets. Clients request budgets; the server clamps them
//     under operator ceilings (budget.Fence) and binds the request
//     context in, so a dropped connection aborts the solve at the next
//     budget poll and no tenant can ask for unbounded work.
//   - Bounded residency. Named incremental sessions (internal/incr)
//     persist solver and BDD state across reachability steps; an LRU
//     with a fixed capacity evicts the idlest session (closing its
//     solver pool) whenever a new one would exceed it, and a
//     semaphore-based admission controller caps concurrent solves,
//     returning 429 with Retry-After when saturated.
//
// The package is transport only: every solver capability it exposes —
// engines, budgets, simplification, parallelism, stats — is the
// library's, reached through the same entry points the CLIs use.
package server

import (
	"context"
	"net/http"
	"runtime"
	"time"

	"allsatpre/internal/budget"
	"allsatpre/internal/stats"
)

// Config tunes a Server. The zero value serves with defaults suitable
// for tests; cmd/serve exposes every field as a flag.
type Config struct {
	// MaxConcurrent bounds simultaneously running solves (streams and
	// session steps) across all tenants. <= 0 selects GOMAXPROCS.
	MaxConcurrent int
	// MaxSessions is the incremental-session LRU capacity. <= 0
	// selects DefaultMaxSessions.
	MaxSessions int
	// MaxBodyBytes caps request payloads (DIMACS/BENCH text). <= 0
	// selects DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// Fence holds the server-enforced budget ceilings; client-requested
	// budgets are clamped under it (zero = no ceilings).
	Fence budget.Fence
	// MaxWorkers caps the per-request worker count. <= 0 selects
	// GOMAXPROCS.
	MaxWorkers int
	// RetryAfter is the hint returned with 429 responses. <= 0 selects
	// one second.
	RetryAfter time.Duration
	// Stats, when non-nil, receives the server.* counters, gauges, and
	// per-engine latency histograms alongside whatever engine counters
	// the registry already collects.
	Stats *stats.Registry
}

// Defaults for Config's zero fields.
const (
	DefaultMaxSessions  = 8
	DefaultMaxBodyBytes = 8 << 20 // 8 MiB of DIMACS/BENCH text
)

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the enumeration service. Build one with New, mount
// Handler on an http.Server, and call BeginShutdown before the HTTP
// server's Shutdown so in-flight streams finish with a
// TRUNCATED(shutdown) summary instead of being cut mid-line.
type Server struct {
	cfg      Config
	adm      *admission
	store    *sessionStore
	reg      *stats.Registry // never nil; a discard registry when unset
	shutdown chan struct{}
}

// New builds a Server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Stats
	if reg == nil {
		reg = stats.NewRegistry("serve") // unobserved sink keeps handlers branch-free
	}
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		shutdown: make(chan struct{}),
	}
	s.adm = newAdmission(cfg.MaxConcurrent, reg)
	s.store = newSessionStore(cfg.MaxSessions, reg)
	return s
}

// Handler returns the service's routing table. Mount it as the root
// handler; the stats registry is served at /debug/stats so the
// existing snapshot tooling observes the daemon.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/enumerate", s.handleEnumerate)
	mux.HandleFunc("POST /v1/preimage", s.handlePreimage)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleSessionList)
	mux.HandleFunc("POST /v1/sessions/{id}/step", s.handleSessionStep)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.Handle("GET /debug/stats", s.reg.Handler())
	return mux
}

// BeginShutdown starts the drain: every in-flight stream's solve is
// cancelled, and the streams write their summary line with
// reason=shutdown before returning, so the subsequent http
// Server.Shutdown finds handlers that finish promptly and clients that
// know their cover is partial. Idempotent.
func (s *Server) BeginShutdown() {
	select {
	case <-s.shutdown:
	default:
		close(s.shutdown)
	}
}

// Close releases every live session. Call after the HTTP server has
// stopped accepting requests.
func (s *Server) Close() { s.store.closeAll() }

// solveContext derives the context a solve runs under: cancelled when
// the client goes away (request context) or when the server drains
// (BeginShutdown). The cancellation reaches the engines through
// budget.Fence.Clamp, so one budget poll later the solve stops.
func (s *Server) solveContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	go func() {
		select {
		case <-s.shutdown:
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}

// drained reports whether BeginShutdown has been called — used to tell
// a shutdown-cancelled stream from a client-cancelled one.
func (s *Server) drained() bool {
	select {
	case <-s.shutdown:
		return true
	default:
		return false
	}
}
