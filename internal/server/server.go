// Package server turns the one-shot enumeration CLIs into a long-lived
// multi-tenant HTTP service: the front door the ROADMAP's "millions of
// users" north star asks for.
//
// Three ideas organize the package:
//
//   - Streaming, not batching. One-shot enumeration requests run the
//     existing allsat iterators (sequential, disjoint, or the parallel
//     worker pool) and write each cube as one NDJSON line the moment
//     the iterator produces it. The disjoint engine's cubes are
//     pairwise disjoint by construction, so a consumer can fold the
//     stream incrementally with no post-hoc dedup; every stream ends
//     with a summary line that carries the truncation verdict, so a
//     partial answer is never silent (the Aborted contract over HTTP).
//   - Fenced budgets. Clients request budgets; the server clamps them
//     under operator ceilings (budget.Fence) and binds the request
//     context in, so a dropped connection aborts the solve at the next
//     budget poll and no tenant can ask for unbounded work.
//   - Bounded residency. Named incremental sessions (internal/incr)
//     persist solver and BDD state across reachability steps; an LRU
//     with a fixed capacity evicts the idlest session (closing its
//     solver pool) whenever a new one would exceed it, and a
//     semaphore-based admission controller caps concurrent solves,
//     returning 429 with Retry-After when saturated.
//
// The package is transport only: every solver capability it exposes —
// engines, budgets, simplification, parallelism, stats — is the
// library's, reached through the same entry points the CLIs use.
package server

import (
	"context"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"allsatpre/internal/budget"
	rt "allsatpre/internal/runtime"
	"allsatpre/internal/stats"
)

// Config tunes a Server. The zero value serves with defaults suitable
// for tests; cmd/serve exposes every field as a flag.
type Config struct {
	// MaxConcurrent bounds simultaneously running solves (streams and
	// session steps) across all tenants. <= 0 selects GOMAXPROCS.
	MaxConcurrent int
	// MaxSessions is the incremental-session LRU capacity. <= 0
	// selects DefaultMaxSessions.
	MaxSessions int
	// MaxBodyBytes caps request payloads (DIMACS/BENCH text). <= 0
	// selects DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// Fence holds the server-enforced budget ceilings; client-requested
	// budgets are clamped under it (zero = no ceilings).
	Fence budget.Fence
	// MaxWorkers caps the per-request worker count. <= 0 selects
	// GOMAXPROCS.
	MaxWorkers int
	// RetryAfter is the hint returned with 429 responses before any solve
	// has completed (afterwards the hint extrapolates the observed queue
	// drain time). <= 0 selects one second.
	RetryAfter time.Duration
	// AdmissionWait lets a request at a saturated gate wait in a bounded
	// FIFO queue for up to this long before getting 429. 0 keeps the
	// classic immediate-reject behavior.
	AdmissionWait time.Duration
	// AdmissionQueue caps how many requests may wait at once when
	// AdmissionWait > 0. <= 0 selects 2×MaxConcurrent.
	AdmissionQueue int
	// PoolBytes is the byte ceiling of the warm solver/manager free-list
	// (internal/runtime): released instances above it are dropped,
	// largest first. 0 selects runtime.DefaultMaxBytes; < 0 disables the
	// pooled runtime entirely (every request rebuilds from scratch).
	PoolBytes int64
	// SchedWorkers sizes the server-wide executor pool that runs all
	// requests' subcube jobs with per-tenant fair share. 0 selects
	// MaxConcurrent; < 0 disables the shared scheduler (parallel
	// requests then spawn private goroutines as before).
	SchedWorkers int
	// TenantHeader names the request header carrying the tenant id used
	// for fair-share scheduling and per-tenant fences. Empty selects
	// "X-Tenant".
	TenantHeader string
	// TenantFences overrides Fence for specific tenant ids; tenants not
	// listed fall back to the global Fence.
	TenantFences map[string]budget.Fence
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (off by
	// default: profiling endpoints leak heap contents and timing).
	EnablePprof bool
	// Stats, when non-nil, receives the server.* counters, gauges, and
	// per-engine latency histograms alongside whatever engine counters
	// the registry already collects.
	Stats *stats.Registry
}

// Defaults for Config's zero fields.
const (
	DefaultMaxSessions  = 8
	DefaultMaxBodyBytes = 8 << 20 // 8 MiB of DIMACS/BENCH text
)

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.SchedWorkers == 0 {
		c.SchedWorkers = c.MaxConcurrent
	}
	if c.TenantHeader == "" {
		c.TenantHeader = "X-Tenant"
	}
	return c
}

// Server is the enumeration service. Build one with New, mount
// Handler on an http.Server, and call BeginShutdown before the HTTP
// server's Shutdown so in-flight streams finish with a
// TRUNCATED(shutdown) summary instead of being cut mid-line.
type Server struct {
	cfg      Config
	adm      *admission
	store    *sessionStore
	rt       *rt.Runtime // nil when both pool and scheduler are disabled
	reg      *stats.Registry // never nil; a discard registry when unset
	shutdown chan struct{}
}

// New builds a Server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Stats
	if reg == nil {
		reg = stats.NewRegistry("serve") // unobserved sink keeps handlers branch-free
	}
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		shutdown: make(chan struct{}),
	}
	s.adm = newAdmission(cfg.MaxConcurrent, cfg.AdmissionWait, cfg.AdmissionQueue, reg)
	s.store = newSessionStore(cfg.MaxSessions, reg)

	// The pooled runtime: a warm solver/manager free-list plus the
	// server-wide fair-share executor pool. Either half can be disabled
	// independently; with both off s.rt stays nil and every engine runs
	// its classic build-per-request path.
	var run rt.Runtime
	if cfg.PoolBytes >= 0 {
		run.Pool = rt.NewPool(rt.PoolOptions{MaxBytes: cfg.PoolBytes, Stats: reg})
	}
	if cfg.SchedWorkers > 0 {
		run.Sched = rt.NewScheduler(cfg.SchedWorkers, reg)
	}
	if run.Pool != nil || run.Sched != nil {
		s.rt = &run
	}
	return s
}

// runtimeFor labels the shared runtime with the request's tenant id so
// the scheduler can fair-share across tenants; nil when the pooled
// runtime is disabled.
func (s *Server) runtimeFor(r *http.Request) *rt.Runtime {
	return s.rt.WithTenant(r.Header.Get(s.cfg.TenantHeader))
}

// fenceFor picks the budget fence for the request's tenant: an entry in
// TenantFences keyed by the tenant header, else the global fence.
func (s *Server) fenceFor(r *http.Request) budget.Fence {
	if f, ok := s.cfg.TenantFences[r.Header.Get(s.cfg.TenantHeader)]; ok {
		return f
	}
	return s.cfg.Fence
}

// Handler returns the service's routing table. Mount it as the root
// handler; the stats registry is served at /debug/stats so the
// existing snapshot tooling observes the daemon.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/enumerate", s.handleEnumerate)
	mux.HandleFunc("POST /v1/preimage", s.handlePreimage)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleSessionList)
	mux.HandleFunc("POST /v1/sessions/{id}/step", s.handleSessionStep)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.Handle("GET /debug/stats", s.reg.Handler())
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// BeginShutdown starts the drain: every in-flight stream's solve is
// cancelled, and the streams write their summary line with
// reason=shutdown before returning, so the subsequent http
// Server.Shutdown finds handlers that finish promptly and clients that
// know their cover is partial. Idempotent.
func (s *Server) BeginShutdown() {
	select {
	case <-s.shutdown:
	default:
		close(s.shutdown)
	}
}

// Close releases every live session and stops the shared scheduler
// executors (draining queued jobs first). Call after the HTTP server
// has stopped accepting requests.
func (s *Server) Close() {
	s.store.closeAll()
	if sched := s.rt.S(); sched != nil {
		sched.Close()
	}
}

// solveContext derives the context a solve runs under: cancelled when
// the client goes away (request context) or when the server drains
// (BeginShutdown). The cancellation reaches the engines through
// budget.Fence.Clamp, so one budget poll later the solve stops.
func (s *Server) solveContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	go func() {
		select {
		case <-s.shutdown:
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}

// drained reports whether BeginShutdown has been called — used to tell
// a shutdown-cancelled stream from a client-cancelled one.
func (s *Server) drained() bool {
	select {
	case <-s.shutdown:
		return true
	default:
		return false
	}
}
