package server

// BenchmarkServerLoad measures request throughput and per-request
// allocation under concurrent load, pooled runtime vs classic
// build-from-scratch execution. scripts/loadbench.sh records it as
// BENCH_7.json; one op is one complete HTTP enumeration (request,
// streamed cubes, summary trailer), fired from loadClients concurrent
// client goroutines so pooled solvers are contended the way a real
// deployment contends them.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// loadClients is the number of concurrent client goroutines per
// GOMAXPROCS slot (RunParallel semantics), so even a single-core host
// drives at least this many in-flight requests.
const loadClients = 8

// loadDimacs builds an implication-chain formula: x1 forced, x1 → x2 →
// … → x_{n-2}, and one free clause over the last two variables. The
// cover is tiny (three cubes) but the formula is wide enough that
// per-request solver construction — arena, watch lists, heap — is the
// dominant allocation cost, which is exactly what the warm pool removes.
func loadDimacs(nVars int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "p cnf %d %d\n", nVars, nVars-1)
	sb.WriteString("1 0\n")
	for v := 2; v <= nVars-2; v++ {
		fmt.Fprintf(&sb, "-%d %d 0\n", v-1, v)
	}
	fmt.Fprintf(&sb, "%d %d 0\n", nVars-1, nVars)
	return sb.String()
}

func BenchmarkServerLoad(b *testing.B) {
	dimacs := loadDimacs(160)
	// Rotate engines so the pool serves the sequential iterator path,
	// the scheduler-driven success engine, and the blocking enumerator.
	queries := []string{"engine=disjoint", "engine=success&workers=2", "engine=blocking"}

	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		// AdmissionWait keeps saturated requests queued instead of 429ing,
		// so every op measures a completed enumeration in both modes.
		{"pooled", Config{MaxConcurrent: 8, AdmissionWait: 30 * time.Second}},
		{"classic", Config{MaxConcurrent: 8, AdmissionWait: 30 * time.Second,
			PoolBytes: -1, SchedWorkers: -1}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			srv := New(mode.cfg)
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			defer srv.Close()

			do := func(q string) error {
				resp, err := http.Post(ts.URL+"/v1/enumerate?"+q, "text/plain",
					strings.NewReader(dimacs))
				if err != nil {
					return err
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					return fmt.Errorf("status %d", resp.StatusCode)
				}
				_, err = io.Copy(io.Discard, resp.Body)
				return err
			}
			// Warm-up outside the timed region: primes the HTTP keepalive
			// connections and, in pooled mode, stocks the free-list.
			for _, q := range queries {
				if err := do(q); err != nil {
					b.Fatal(err)
				}
			}

			var seq atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.SetParallelism(loadClients)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					q := queries[seq.Add(1)%uint64(len(queries))]
					if err := do(q); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
