package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"allsatpre/internal/allsat"
	"allsatpre/internal/budget"
	"allsatpre/internal/circuit"
	"allsatpre/internal/cnf"
	"allsatpre/internal/core"
	"allsatpre/internal/cube"
	"allsatpre/internal/genspec"
	"allsatpre/internal/incr"
	"allsatpre/internal/lit"
	"allsatpre/internal/pool"
	"allsatpre/internal/preimage"
	"allsatpre/internal/trans"
)

// httpError writes a JSON error body. Every 4xx/5xx the service emits
// goes through here, so clients always get a machine-readable reason.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// readBody drains the request body under the configured size limit,
// translating an over-limit read into 413 (and reporting whether the
// response has already been written).
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d-byte limit", mbe.Limit)
		} else {
			httpError(w, http.StatusBadRequest, "reading body: %v", err)
		}
		return nil, false
	}
	return data, true
}

// parseBudget reads the client's requested resource limits from query
// parameters (timeout, max-conflicts, max-decisions, max-cubes,
// max-bdd-nodes — the CLI flag names without the dash). The values are
// requests, not grants: the fence clamps them afterwards.
func parseBudget(q url.Values) (budget.Budget, error) {
	var b budget.Budget
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return b, fmt.Errorf("bad timeout %q (want a duration like 30s)", v)
		}
		b.Timeout = d
	}
	for _, p := range []struct {
		key string
		dst *uint64
	}{
		{"max-conflicts", &b.MaxConflicts},
		{"max-decisions", &b.MaxDecisions},
		{"max-cubes", &b.MaxCubes},
	} {
		if v := q.Get(p.key); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return b, fmt.Errorf("bad %s %q (want a non-negative integer)", p.key, v)
			}
			*p.dst = n
		}
	}
	if v := q.Get("max-bdd-nodes"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return b, fmt.Errorf("bad max-bdd-nodes %q (want a non-negative integer)", v)
		}
		b.MaxBDDNodes = n
	}
	return b, nil
}

// workersFor resolves the requested worker count under the server cap.
func (s *Server) workersFor(q url.Values) (int, error) {
	v := q.Get("workers")
	if v == "" {
		return 1, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad workers %q (want a positive integer)", v)
	}
	if n > s.cfg.MaxWorkers {
		n = s.cfg.MaxWorkers
	}
	return n, nil
}

// streamIterator is the engine surface the streaming loop drives —
// satisfied by allsat.Iterator, DisjointIterator, and ParallelIterator.
type streamIterator interface {
	Next() (cube.Cube, bool)
	Reason() budget.Reason
	Stats() allsat.Stats
	// Close ends the iteration and returns pooled solvers to the warm
	// runtime (captured stats stay valid afterwards).
	Close()
}

// handleEnumerate streams the solutions of a DIMACS payload projected
// onto a variable set, as NDJSON cube events.
//
//	POST /v1/enumerate?engine=disjoint&workers=4&timeout=30s
//	(body: DIMACS text, optionally carrying a "c proj ..." line)
//
// Engines: disjoint (default; pairwise-disjoint cubes, safe to fold
// incrementally), blocking, lifting (both stream but cubes may
// overlap), success (the paper's enumerator; builds its cover first,
// then streams it — cubes do not arrive incrementally).
func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("server.requests").Inc()
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	engine := q.Get("engine")
	if engine == "" {
		engine = "disjoint"
	}
	switch engine {
	case "disjoint", "blocking", "lifting", "success":
	default:
		httpError(w, http.StatusBadRequest,
			"unknown engine %q (want disjoint, blocking, lifting, or success)", engine)
		return
	}
	f, fileProj, err := cnf.ParseDimacs(bytes.NewReader(data))
	if err != nil {
		httpError(w, http.StatusBadRequest, "malformed DIMACS: %v", err)
		return
	}
	proj, err := parseProjection(q.Get("proj"), fileProj, f.NumVars)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	workers, err := s.workersFor(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	reqBudget, err := parseBudget(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	smode, err := genspec.SimplifyMode(q.Get("simplify"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	tok, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer s.adm.release(tok)

	ctx, cancel := s.solveContext(r)
	defer cancel()
	bud := s.fenceFor(r).Clamp(ctx, reqBudget).Materialize()
	run := s.runtimeFor(r)
	space := cube.NewSpace(proj)

	start := time.Now()
	sw := newStreamWriter(w)
	sw.emit(headerEvent{
		Type: "header", Engine: engine, Vars: f.NumVars,
		Projection: dimacsVars(proj), Workers: workers,
	})

	opts := allsat.Options{Budget: bud, Workers: workers, Simplify: smode, Runtime: run}
	var summary summaryEvent
	if engine == "success" {
		// The success-driven enumerator stores solutions as an ROBDD, so
		// there is no cube iterator to drain: run to completion, then
		// stream the resulting cover. The pool entry point handles every
		// worker count (one short-circuits to the sequential enumerator)
		// and returns its manager to the warm pool after the extraction.
		res := pool.EnumerateToResult(f, space, pool.Options{
			Workers: workers, Core: core.DefaultOptions(), Budget: bud,
			Stats: s.reg, Runtime: run,
		})
		for _, c := range res.Cover.Cubes() {
			sw.cube(c.String())
			if sw.failed() {
				break
			}
		}
		summary = s.summarize(res.Stats, sw.sent, res.Reason, time.Since(start).Milliseconds())
		summary.Count = res.Count.String()
	} else {
		var it streamIterator
		if workers > 1 {
			if engine == "disjoint" {
				it = allsat.NewParallelDisjointIterator(f, space, opts)
			} else {
				it = allsat.NewParallelIterator(f, space, opts, engine == "lifting")
			}
		} else if engine == "disjoint" {
			it = allsat.NewDisjointIterator(f, space, opts)
		} else {
			it = allsat.NewIterator(f, space, opts, engine == "lifting")
		}
		reason := s.streamCubes(ctx, sw, it, bud.MaxCubes, cancel)
		it.Close() // release workers; pooled solvers go back warm
		summary = s.summarize(it.Stats(), sw.sent, reason, time.Since(start).Milliseconds())
	}
	sw.emit(summary)
	s.reg.Counter("server.streamed-cubes").Add(sw.sent)
	s.reg.Histogram("server.latency." + engine).Observe(time.Since(start))
	if summary.Reason == "shutdown" {
		s.reg.Counter("server.shutdown-truncated").Inc()
	}
}

// streamCubes drains an iterator into the stream, enforcing the
// (already fenced) cube cap handler-side — the streaming iterators
// deliberately have no cap of their own — and aborting the solve the
// moment the client stops reading.
func (s *Server) streamCubes(ctx context.Context, sw *streamWriter,
	it streamIterator, maxCubes uint64, cancel func()) budget.Reason {
	for {
		if maxCubes > 0 && sw.sent >= maxCubes {
			cancel() // parallel workers keep enumerating otherwise
			return budget.Cubes
		}
		c, ok := it.Next()
		if !ok {
			return it.Reason()
		}
		sw.cube(c.String())
		if sw.failed() || ctx.Err() != nil {
			cancel()
			return budget.Cancelled
		}
	}
}

// handlePreimage computes the one-step preimage of a target state set
// of a BENCH circuit with any of the five engines, streaming the cover.
//
//	POST /v1/preimage?target=1X0&engine=bdd   (body: ISCAS-89 BENCH text)
func (s *Server) handlePreimage(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("server.requests").Inc()
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	eng, err := parseEngine(q.Get("engine"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	c, err := circuit.ParseBenchString("payload", string(data))
	if err != nil {
		httpError(w, http.StatusBadRequest, "malformed BENCH circuit: %v", err)
		return
	}
	target, err := targetCover(c, q["target"])
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	workers, err := s.workersFor(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	reqBudget, err := parseBudget(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	tok, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer s.adm.release(tok)
	ctx, cancel := s.solveContext(r)
	defer cancel()
	bud := s.fenceFor(r).Clamp(ctx, reqBudget)

	start := time.Now()
	res, err := preimage.Compute(c, target, preimage.Options{
		Engine: eng, Parallel: workers, Budget: bud, Stats: s.reg,
		Runtime: s.runtimeFor(r),
	})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "preimage: %v", err)
		return
	}
	sw := newStreamWriter(w)
	sw.emit(headerEvent{
		Type: "header", Engine: eng.String(), Vars: len(c.Latches),
		Projection: seq(1, len(c.Latches)), Workers: workers,
	})
	for _, cb := range res.States.Cubes() {
		sw.cube(cb.String())
		if sw.failed() {
			break
		}
	}
	summary := s.summarize(res.Stats, sw.sent, res.AbortReason, time.Since(start).Milliseconds())
	summary.Truncated = res.Aborted
	summary.Count = res.Count.String()
	sw.emit(summary)
	s.reg.Counter("server.streamed-cubes").Add(sw.sent)
	s.reg.Histogram("server.latency." + eng.String()).Observe(time.Since(start))
}

// sessionRequest is the JSON body of POST /v1/sessions.
type sessionRequest struct {
	// Name is the client-chosen session id (server-assigned if empty).
	Name string `json:"name"`
	// Bench is the ISCAS-89 BENCH netlist text.
	Bench string `json:"bench"`
	// Target holds the 01X target patterns (one per latch position)
	// whose backward reachability the session iterates.
	Target []string `json:"target"`
	// Workers is the solver pool size (clamped under the server cap).
	Workers int `json:"workers"`
	// Requested budget, clamped under the fence. The budget is
	// session-global: it bounds the cumulative solve work of every step
	// (and Timeout the wall-clock from creation), matching internal/incr
	// semantics.
	Timeout      string `json:"timeout"`
	MaxConflicts uint64 `json:"max_conflicts"`
	MaxDecisions uint64 `json:"max_decisions"`
	MaxCubes     uint64 `json:"max_cubes"`
	MaxBDDNodes  int    `json:"max_bdd_nodes"`
}

var sessionSeq atomic.Uint64

// handleSessionCreate opens a named incremental backward-reachability
// session: the circuit is encoded once, and each subsequent step call
// advances one frontier on the persistent solver pool. Creating past
// the LRU capacity evicts (and closes) the idlest session.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("server.requests").Inc()
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req sessionRequest
	if err := json.Unmarshal(data, &req); err != nil {
		httpError(w, http.StatusBadRequest, "malformed JSON body: %v", err)
		return
	}
	c, err := circuit.ParseBenchString("payload", req.Bench)
	if err != nil {
		httpError(w, http.StatusBadRequest, "malformed BENCH circuit: %v", err)
		return
	}
	target, err := targetCover(c, req.Target)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	workers := req.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > s.cfg.MaxWorkers {
		workers = s.cfg.MaxWorkers
	}
	var reqBudget budget.Budget
	if req.Timeout != "" {
		d, err := time.ParseDuration(req.Timeout)
		if err != nil || d < 0 {
			httpError(w, http.StatusBadRequest, "bad timeout %q", req.Timeout)
			return
		}
		reqBudget.Timeout = d
	}
	reqBudget.MaxConflicts = req.MaxConflicts
	reqBudget.MaxDecisions = req.MaxDecisions
	reqBudget.MaxCubes = req.MaxCubes
	reqBudget.MaxBDDNodes = req.MaxBDDNodes
	bud := s.fenceFor(r).Clamp(nil, reqBudget)

	id := req.Name
	if id == "" {
		id = fmt.Sprintf("s%d", sessionSeq.Add(1))
	}

	isess, err := incr.NewBackward(c, incr.Options{
		Workers: workers, Budget: bud, Stats: s.reg,
	})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "encoding circuit: %v", err)
		return
	}
	sess := &session{
		id:       id,
		created:  time.Now(),
		sess:     isess,
		man:      isess.Manager(),
		cnfSpace: isess.StateSpace(),
		counting: isess.StateVars(),
		frontier: target,
	}
	sess.visited = sess.man.FromCover(isess.Instance().RetargetCover(target))
	sess.touch()

	evicted, err := s.store.insert(sess)
	if err != nil {
		isess.Close()
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	for _, old := range evicted {
		old.close()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(map[string]any{
		"id":      id,
		"latches": len(c.Latches),
		"inputs":  len(c.Inputs),
		"workers": isess.Workers(),
		"evicted": evictedIDs(evicted),
	})
}

func evictedIDs(evicted []*session) []string {
	out := []string{}
	for _, s := range evicted {
		out = append(out, s.id)
	}
	return out
}

// handleSessionStep advances a session one reachability frontier.
func (s *Server) handleSessionStep(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("server.requests").Inc()
	sess, ok := s.store.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	tok, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer s.adm.release(tok)

	start := time.Now()
	sess.mu.Lock()
	if sess.sess.Closed() {
		sess.mu.Unlock()
		httpError(w, http.StatusGone, "session %q was evicted", sess.id)
		return
	}
	out, err := sess.step()
	sess.mu.Unlock()
	if err != nil {
		if errors.Is(err, incr.ErrClosed) {
			httpError(w, http.StatusGone, "session %q was evicted", sess.id)
		} else {
			httpError(w, http.StatusInternalServerError, "step: %v", err)
		}
		return
	}
	s.reg.Histogram("server.latency.session-step").Observe(time.Since(start))
	if out.Frontier == nil {
		out.Frontier = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"id":         sess.id,
		"step":       out.Step,
		"frontier":   out.Frontier,
		"new_states": out.NewStates,
		"fixpoint":   out.Fixpoint,
		"truncated":  out.Aborted,
		"reason":     out.Reason,
	})
}

// handleSessionDelete closes a session explicitly.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("server.requests").Inc()
	sess, ok := s.store.remove(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	sess.close()
	w.WriteHeader(http.StatusNoContent)
}

// handleSessionList reports the live sessions, most recently used first.
func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("server.requests").Inc()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.store.list())
}

// parseProjection resolves the projection variable set: the proj query
// parameter (comma-separated 1-based DIMACS numbers) wins, then the
// file's "c proj" line, then all variables.
func parseProjection(q string, fileProj []lit.Var, numVars int) ([]lit.Var, error) {
	if q != "" {
		var out []lit.Var
		for _, tok := range strings.Split(q, ",") {
			d, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || d <= 0 || d > numVars {
				return nil, fmt.Errorf("bad projection variable %q (want 1..%d)", tok, numVars)
			}
			out = append(out, lit.Var(d-1))
		}
		return out, nil
	}
	if len(fileProj) > 0 {
		return fileProj, nil
	}
	out := make([]lit.Var, numVars)
	for v := range out {
		out[v] = lit.Var(v)
	}
	return out, nil
}

// targetCover validates 01X patterns against the circuit's latch count
// and builds the target cover. Patterns may arrive as repeated values
// or comma-separated.
func targetCover(c *circuit.Circuit, raw []string) (*cube.Cover, error) {
	var patterns []string
	for _, r := range raw {
		for _, p := range strings.Split(r, ",") {
			if p = strings.TrimSpace(p); p != "" {
				patterns = append(patterns, p)
			}
		}
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("no target patterns given")
	}
	n := len(c.Latches)
	for _, p := range patterns {
		if len(p) != n {
			return nil, fmt.Errorf("target pattern %q has %d positions, circuit has %d latches", p, len(p), n)
		}
		for _, r := range p {
			switch r {
			case '0', '1', 'X', 'x', '-':
			default:
				return nil, fmt.Errorf("target pattern %q: invalid character %q (want 0, 1, X)", p, r)
			}
		}
	}
	return trans.TargetFromPatterns(n, patterns...), nil
}

// parseEngine maps the engine query parameter for circuit endpoints
// (all five engines apply there).
func parseEngine(name string) (preimage.Engine, error) {
	switch name {
	case "", "success":
		return preimage.EngineSuccessDriven, nil
	case "blocking":
		return preimage.EngineBlocking, nil
	case "lifting":
		return preimage.EngineLifting, nil
	case "disjoint":
		return preimage.EngineDisjoint, nil
	case "bdd":
		return preimage.EngineBDD, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want success, blocking, lifting, disjoint, or bdd)", name)
	}
}

// dimacsVars renders variables as 1-based DIMACS numbers.
func dimacsVars(vars []lit.Var) []int {
	out := make([]int, len(vars))
	for i, v := range vars {
		out[i] = int(v) + 1
	}
	return out
}

// seq returns [from, from+n) as a slice.
func seq(from, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = from + i
	}
	return out
}
