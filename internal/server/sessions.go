package server

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"allsatpre/internal/bdd"
	"allsatpre/internal/cube"
	"allsatpre/internal/incr"
	"allsatpre/internal/lit"
	"allsatpre/internal/stats"
)

// session is one tenant's persistent incremental-reachability state:
// the incr.Session (solver pool + BDD manager alive across steps) plus
// the frontier bookkeeping that turns repeated Step calls into a
// backward/forward reachability iteration, one layer per HTTP request.
//
// incr.Session is not safe for concurrent use; mu serializes steps
// against each other and against the eviction Close (see the contract
// on incr.Session). The store's lock is never held while mu is.
type session struct {
	id      string
	forward bool
	created time.Time

	mu       sync.Mutex
	sess     *incr.Session
	man      *bdd.Manager
	cnfSpace *cube.Space // state space frontier ISOPs are extracted over
	counting []lit.Var   // vars SatCountIn counts new states over
	visited  bdd.Ref
	frontier *cube.Cover
	steps    int
	fixpoint bool

	// Listing-visible mirrors of the fields above, updated atomically so
	// GET /v1/sessions never blocks behind (or races with) a long step.
	stepsDone    atomic.Int64
	fixpointSeen atomic.Bool
	lastUsedNano atomic.Int64
}

func (s *session) touch() { s.lastUsedNano.Store(time.Now().UnixNano()) }

// stepOutcome is one reachability layer, ready for JSON rendering.
type stepOutcome struct {
	Step      int
	Frontier  []string // 01X patterns in latch declaration order
	NewStates string   // exact minterm count of the new layer
	Fixpoint  bool
	Aborted   bool
	Reason    string
}

// step advances the session one frontier. Caller holds s.mu.
func (s *session) step() (*stepOutcome, error) {
	out := &stepOutcome{Step: s.steps + 1}
	if s.fixpoint || s.frontier.Len() == 0 {
		s.fixpoint = true
		s.fixpointSeen.Store(true)
		out.Step = s.steps
		out.Fixpoint = true
		return out, nil
	}
	st, err := s.sess.Step(s.frontier)
	if err != nil {
		return nil, err
	}
	s.steps++
	s.stepsDone.Store(int64(s.steps))
	out.Step = s.steps
	if st.Aborted {
		out.Aborted = true
		out.Reason = st.Reason.String()
	}
	layer := s.sess.StateSet(st.Set)
	newSet := s.man.Diff(layer, s.visited)
	if newSet == bdd.False {
		// Nothing new: a complete layer proves the fixpoint; a truncated
		// one proves only that this (partial) step added nothing.
		s.fixpoint = !st.Aborted
		s.fixpointSeen.Store(s.fixpoint)
		out.Fixpoint = s.fixpoint
		s.frontier = cube.NewCover(s.cnfSpace)
		out.NewStates = "0"
		return out, nil
	}
	s.frontier = s.man.ISOP(newSet, s.cnfSpace)
	s.visited = s.man.Or(s.visited, newSet)
	for _, c := range s.frontier.Cubes() {
		out.Frontier = append(out.Frontier, c.String())
	}
	out.NewStates = s.man.SatCountIn(newSet, s.counting).String()
	return out, nil
}

// close tears the session down, waiting for an in-flight step.
func (s *session) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sess.Close()
}

// sessionStore is the bounded, named session map: most-recently-used
// sessions at the front of the LRU list, and inserting past capacity
// evicts (and closes) the back — so solver/BDD residency is bounded by
// capacity regardless of how many tenants show up.
type sessionStore struct {
	mu   sync.Mutex
	cap  int
	byID map[string]*list.Element
	lru  *list.List // of *session

	active  *stats.Counter // created, paired with the two below
	evicted *stats.Counter
	closed  *stats.Counter
	reg     *stats.Registry
}

func newSessionStore(capacity int, reg *stats.Registry) *sessionStore {
	return &sessionStore{
		cap:     capacity,
		byID:    map[string]*list.Element{},
		lru:     list.New(),
		active:  reg.Counter("server.sessions-created"),
		evicted: reg.Counter("server.sessions-evicted"),
		closed:  reg.Counter("server.sessions-closed"),
		reg:     reg,
	}
}

func (st *sessionStore) gauge() {
	st.reg.SetGauge("server.sessions-active", int64(st.lru.Len()))
}

// insert registers a new session, evicting LRU entries past capacity.
// The evicted sessions are returned still open: the caller closes them
// outside the store lock (close blocks on in-flight steps).
func (st *sessionStore) insert(s *session) ([]*session, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.byID[s.id]; dup {
		return nil, fmt.Errorf("session %q already exists", s.id)
	}
	st.byID[s.id] = st.lru.PushFront(s)
	var evicted []*session
	for st.lru.Len() > st.cap {
		back := st.lru.Back()
		old := back.Value.(*session)
		st.lru.Remove(back)
		delete(st.byID, old.id)
		evicted = append(evicted, old)
		st.evicted.Inc()
	}
	st.active.Inc()
	st.gauge()
	return evicted, nil
}

// get returns the named session and marks it most-recently-used.
func (st *sessionStore) get(id string) (*session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.byID[id]
	if !ok {
		return nil, false
	}
	st.lru.MoveToFront(el)
	s := el.Value.(*session)
	s.touch()
	return s, true
}

// remove unregisters the named session without closing it.
func (st *sessionStore) remove(id string) (*session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.byID[id]
	if !ok {
		return nil, false
	}
	st.lru.Remove(el)
	delete(st.byID, id)
	st.closed.Inc()
	st.gauge()
	return el.Value.(*session), true
}

// sessionInfo is one row of the listing endpoint.
type sessionInfo struct {
	ID        string `json:"id"`
	Direction string `json:"direction"`
	Steps     int    `json:"steps"`
	Fixpoint  bool   `json:"fixpoint"`
	IdleMS    int64  `json:"idle_ms"`
}

func (st *sessionStore) list() []sessionInfo {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]sessionInfo, 0, st.lru.Len())
	now := time.Now()
	for el := st.lru.Front(); el != nil; el = el.Next() {
		s := el.Value.(*session)
		dir := "backward"
		if s.forward {
			dir = "forward"
		}
		out = append(out, sessionInfo{
			ID:        s.id,
			Direction: dir,
			Steps:     int(s.stepsDone.Load()),
			Fixpoint:  s.fixpointSeen.Load(),
			IdleMS:    (now.UnixNano() - s.lastUsedNano.Load()) / int64(time.Millisecond),
		})
	}
	return out
}

// closeAll drains the store on server shutdown.
func (st *sessionStore) closeAll() {
	st.mu.Lock()
	var all []*session
	for el := st.lru.Front(); el != nil; el = el.Next() {
		all = append(all, el.Value.(*session))
	}
	st.lru.Init()
	st.byID = map[string]*list.Element{}
	st.gauge()
	st.mu.Unlock()
	for _, s := range all {
		s.close()
	}
}
