package server

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"allsatpre/internal/budget"
)

// ParseFenceSpec parses the -tenant-fences flag syntax into a per-tenant
// fence table:
//
//	tenant:key=value[,key=value...][;tenant:...]
//
// with keys timeout (a duration), conflicts, decisions, cubes
// (non-negative integers), and bdd-nodes. Example:
//
//	"alice:timeout=30s,cubes=100000;bob:timeout=2s,conflicts=50000"
//
// A listed tenant's fence REPLACES the global fence entirely (unset keys
// mean no ceiling on that axis), so operators can both tighten and
// loosen per tenant. An empty spec yields an empty (nil) table.
func ParseFenceSpec(spec string) (map[string]budget.Fence, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]budget.Fence)
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		tenant, body, ok := strings.Cut(entry, ":")
		tenant = strings.TrimSpace(tenant)
		if !ok || tenant == "" {
			return nil, fmt.Errorf("fence spec entry %q: want tenant:key=value[,...]", entry)
		}
		if _, dup := out[tenant]; dup {
			return nil, fmt.Errorf("fence spec: tenant %q listed twice", tenant)
		}
		var f budget.Fence
		for _, kv := range strings.Split(body, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("fence spec entry for %q: %q is not key=value", tenant, kv)
			}
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			switch key {
			case "timeout":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("fence spec %s/%s: bad duration %q", tenant, key, val)
				}
				f.MaxTimeout = d
			case "conflicts", "decisions", "cubes":
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("fence spec %s/%s: bad count %q", tenant, key, val)
				}
				switch key {
				case "conflicts":
					f.MaxConflicts = n
				case "decisions":
					f.MaxDecisions = n
				case "cubes":
					f.MaxCubes = n
				}
			case "bdd-nodes":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("fence spec %s/%s: bad count %q", tenant, key, val)
				}
				f.MaxBDDNodes = n
			default:
				return nil, fmt.Errorf("fence spec %s: unknown key %q (want timeout, conflicts, decisions, cubes, bdd-nodes)", tenant, key)
			}
		}
		out[tenant] = f
	}
	return out, nil
}
