package pool

import (
	"sync"
	"testing"
)

func TestDequeOwnerLIFO(t *testing.T) {
	d := newDeque()
	for i := uint64(1); i <= 100; i++ {
		d.push(i)
	}
	for i := uint64(100); i >= 1; i-- {
		w, ok := d.pop()
		if !ok || w != i {
			t.Fatalf("pop = (%d, %v), want (%d, true)", w, ok, i)
		}
	}
	if _, ok := d.pop(); ok {
		t.Fatal("pop on empty deque succeeded")
	}
}

func TestDequeStealFIFO(t *testing.T) {
	d := newDeque()
	for i := uint64(1); i <= 100; i++ {
		d.push(i)
	}
	for i := uint64(1); i <= 100; i++ {
		w, ok := d.steal()
		if !ok || w != i {
			t.Fatalf("steal = (%d, %v), want (%d, true)", w, ok, i)
		}
	}
	if _, ok := d.steal(); ok {
		t.Fatal("steal on empty deque succeeded")
	}
}

func TestDequeGrowsPastInitialRing(t *testing.T) {
	d := newDeque()
	const n = 1 << 10 // 16x the initial ring
	for i := uint64(0); i < n; i++ {
		d.push(i)
	}
	seen := make(map[uint64]bool, n)
	for {
		w, ok := d.pop()
		if !ok {
			break
		}
		if seen[w] {
			t.Fatalf("task %d popped twice", w)
		}
		seen[w] = true
	}
	if len(seen) != n {
		t.Fatalf("recovered %d tasks, want %d", len(seen), n)
	}
}

// TestDequeConservationUnderStealing hammers one owner (interleaved
// pushes and pops, forcing ring growth) against 7 concurrent thieves and
// checks every task is retrieved exactly once — run under -race this
// also vets the memory ordering of the slots.
func TestDequeConservationUnderStealing(t *testing.T) {
	const (
		total    = 20000
		stealers = 7
	)
	d := newDeque()
	results := make([][]uint64, 1+stealers)
	done := make(chan struct{})

	var wg sync.WaitGroup
	for s := 0; s < stealers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for {
				if w, ok := d.steal(); ok {
					results[1+s] = append(results[1+s], w)
					continue
				}
				select {
				case <-done:
					// Owner finished pushing; drain what remains.
					if w, ok := d.steal(); ok {
						results[1+s] = append(results[1+s], w)
						continue
					}
					return
				default:
				}
			}
		}(s)
	}

	// Owner: push in bursts, pop some back between bursts.
	next := uint64(1)
	for next <= total {
		for b := 0; b < 97 && next <= total; b++ {
			d.push(next)
			next++
		}
		for b := 0; b < 13; b++ {
			if w, ok := d.pop(); ok {
				results[0] = append(results[0], w)
			}
		}
	}
	close(done)
	for {
		w, ok := d.pop()
		if !ok {
			break
		}
		results[0] = append(results[0], w)
	}
	wg.Wait()
	// Late drain: a thief may have bailed while the owner still held
	// entries, but not vice versa — after wg.Wait nothing else touches d.
	for {
		w, ok := d.steal()
		if !ok {
			break
		}
		results[0] = append(results[0], w)
	}

	seen := make(map[uint64]int, total)
	for _, rs := range results {
		for _, w := range rs {
			seen[w]++
		}
	}
	if len(seen) != total {
		t.Fatalf("recovered %d distinct tasks, want %d", len(seen), total)
	}
	for w, n := range seen {
		if n != 1 {
			t.Fatalf("task %d retrieved %d times", w, n)
		}
	}
}
