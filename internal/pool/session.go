package pool

// Session is the persistent-worker variant of Enumerate for incremental
// reachability (internal/incr): the enumerators — solver trails, learned
// clauses, memo tables, private BDD managers — and the parent merge
// manager live across any number of Run calls, so step k+1 starts from
// everything step k learned about the circuit. Between runs the caller
// retargets every enumerator through the broadcast group API (NewVar /
// BeginGroup / AddGroupClause / RetireGroup), which keeps the worker
// solvers' variable spaces in lockstep.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"allsatpre/internal/allsat"
	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/cnf"
	"allsatpre/internal/core"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
	"allsatpre/internal/partition"
)

// Session owns a set of persistent enumerators and their merge manager.
// Not safe for concurrent use: one Run (or retarget) at a time.
type Session struct {
	space   *cube.Space
	es      []*core.Enumerator
	man     *bdd.Manager
	workers int
	thresh  uint64
	prefix  int
	budget  budget.Budget // materialized; Ctx is the session context
	cancel  context.CancelFunc
	// decisions enforces a session-global decision cap across workers
	// and steps (the incremental analogue of the fresh path's per-step
	// cap: a budget is a resource allowance for the whole run).
	decisions atomic.Uint64
	mergeDead bool
}

// SessionRetireStats aggregates RetireGroup over the session's workers:
// clause-group bookkeeping is identical on every worker (same clauses in
// lockstep), so OrigRetired/VarsRetired come from one worker, while the
// learned-clause and memo effects are summed across workers.
type SessionRetireStats struct {
	OrigRetired     int
	VarsRetired     int
	LearnedKept     int
	LearnedDropped  int
	MemoInvalidated int
}

// NewSession builds a session over the formula with max(1, Workers)
// persistent enumerators. With one worker the merge manager is the
// enumerator's own manager (no snapshot round-trips at all); with more,
// per-run snapshots merge into one persistent parent manager whose
// variable order is the projection order. Core.Budget is ignored; pass
// the session budget (covering all runs) in Budget.
func NewSession(f *cnf.Formula, space *cube.Space, opts Options) *Session {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if space.Size() == 0 {
		workers = 1
	}
	b := opts.Budget.Materialize()
	base := context.Background()
	if b.Ctx != nil {
		base = b.Ctx
	}
	ctx, cancel := context.WithCancel(base)
	b.Ctx = ctx

	s := &Session{
		space:   space,
		workers: workers,
		budget:  b,
		cancel:  cancel,
	}
	s.thresh = opts.SplitThreshold
	if s.thresh == 0 {
		s.thresh = DefaultSplitThreshold
	}
	s.prefix = opts.PrefixDepth
	if s.prefix <= 0 {
		s.prefix = partition.PrefixDepth(space, workers, 0)
	}

	co := opts.Core
	co.Budget = b
	maxDec := b.MergeDecisions(co.MaxDecisions)
	co.Budget.MaxDecisions = 0
	co.MaxDecisions = 0
	if maxDec > 0 {
		dec := &s.decisions
		co.OnDecision = func() budget.Reason {
			if dec.Add(1) > maxDec {
				return budget.Decisions
			}
			return budget.None
		}
	}
	s.es = make([]*core.Enumerator, workers)
	for i := range s.es {
		s.es[i] = core.New(f, space, co)
	}
	if workers == 1 {
		s.man = s.es[0].Manager()
	} else {
		s.man = bdd.NewOrdered(space.Vars())
	}
	return s
}

// Close releases the session's context. Run must not be called after.
func (s *Session) Close() { s.cancel() }

// Workers reports the effective worker count.
func (s *Session) Workers() int { return s.workers }

// Manager returns the persistent merge manager Run results live in.
func (s *Session) Manager() *bdd.Manager { return s.man }

// NewVar allocates one fresh variable on every worker solver, keeping
// their variable spaces identical, and returns its (shared) id.
func (s *Session) NewVar() lit.Var {
	v := s.es[0].NewVar()
	for _, e := range s.es[1:] {
		if w := e.NewVar(); w != v {
			panic("pool: session enumerators disagree on variable ids")
		}
	}
	return v
}

// NumVars reports the shared solver variable count.
func (s *Session) NumVars() int { return s.es[0].NumVars() }

// AddClause adds a permanent clause on every worker; false when the
// formula became UNSAT at the root.
func (s *Session) AddClause(lits ...lit.Lit) bool {
	ok := true
	for _, e := range s.es {
		ok = e.AddClause(lits...) && ok
	}
	return ok
}

// BeginGroup opens a clause group on every worker.
func (s *Session) BeginGroup() {
	for _, e := range s.es {
		e.BeginGroup()
	}
}

// AddGroupClause adds a group clause on every worker.
func (s *Session) AddGroupClause(lits ...lit.Lit) bool {
	ok := true
	for _, e := range s.es {
		ok = e.AddGroupClause(lits...) && ok
	}
	return ok
}

// RetireGroup retires the open group on every worker.
func (s *Session) RetireGroup(unit lit.Lit, vars []lit.Var) SessionRetireStats {
	var out SessionRetireStats
	for i, e := range s.es {
		rs := e.RetireGroup(unit, vars)
		if i == 0 {
			out.OrigRetired = rs.OrigRetired
			out.VarsRetired = rs.VarsRetired
		}
		out.LearnedKept += rs.LearnedKept
		out.LearnedDropped += rs.LearnedDropped
		out.MemoInvalidated += rs.MemoInvalidated
	}
	return out
}

// LearnedCount sums the live learned clauses across workers.
func (s *Session) LearnedCount() int {
	n := 0
	for _, e := range s.es {
		n += e.LearnedCount()
	}
	return n
}

// LearnedLits sums the live learned clauses' literal counts across
// workers — the session's retained-learnt footprint.
func (s *Session) LearnedLits() int {
	n := 0
	for _, e := range s.es {
		n += e.LearnedLits()
	}
	return n
}

// MemoSize sums the memo entries across workers.
func (s *Session) MemoSize() int {
	n := 0
	for _, e := range s.es {
		n += e.MemoSize()
	}
	return n
}

// Run enumerates the solutions under the base assumptions (typically the
// current step's activation literal), reusing the persistent workers.
// The result Set lives in the session's merge manager; with >1 workers
// the merged set is bit-identical to a one-worker run over the same
// solver state. Base literals over non-projection variables (activation
// literals) do not enter the set.
func (s *Session) Run(base []lit.Lit) *Result {
	if s.workers == 1 {
		return s.runSequential(base)
	}
	return s.runParallel(base)
}

func (s *Session) runSequential(base []lit.Lit) *Result {
	e := s.es[0]
	sub := e.EnumerateUnder(base, 0)
	set := sub.Set
	if sub.Status != core.SubSAT {
		set = bdd.False
	}
	st := sub.Stats
	st.Kernel = s.man.Kernel()
	st.BDDNodes = s.man.NumNodes()
	return &Result{
		Manager: s.man,
		Set:     set,
		Stats:   st,
		Pool:    PoolStats{Workers: 1, Subcubes: 1},
		Aborted: sub.Aborted,
		Reason:  sub.Reason,
	}
}

func (s *Session) runParallel(base []lit.Lit) *Result {
	tasks := partition.Split(s.space, s.prefix)
	deques := make([]*deque, s.workers)
	for i := range deques {
		deques[i] = newDeque()
	}
	for i, t := range tasks {
		deques[i%s.workers].push(encodeTask(t))
	}
	var pending atomic.Int64
	pending.Store(int64(len(tasks)))

	// Every abort reason here is a session-global budget condition
	// (deadline, cancellation, decision/conflict/node caps), so the
	// first abort ends not just this run but the session: cancelling the
	// session context stops the siblings promptly, and the enumerators'
	// own abort state is sticky anyway.
	var abortReason atomic.Int32
	recordAbort := func(r budget.Reason) {
		if r != budget.None && abortReason.CompareAndSwap(0, int32(r)) {
			s.cancel()
		}
	}
	aborted := func() bool { return abortReason.Load() != 0 }

	// Failed-assumption patterns are valid only under the current target:
	// scoped to this run. Base literals (activation vars, outside the
	// projection space) are stripped before pattern extraction — the base
	// holds for the entire run, so a conflict "base + prefix" prunes
	// every subcube containing the prefix.
	isBase := make(map[lit.Var]bool, len(base))
	for _, l := range base {
		isBase[l.Var()] = true
	}
	var failMu sync.Mutex
	var fails []partition.FailedPattern
	addFail := func(failed []lit.Lit) {
		kept := failed[:0]
		for _, l := range failed {
			if !isBase[l.Var()] {
				kept = append(kept, l)
			}
		}
		if p, ok := partition.PatternOf(s.space, kept); ok {
			failMu.Lock()
			fails = append(fails, p)
			failMu.Unlock()
		}
	}
	prunedBy := func(sc partition.Subcube) bool {
		failMu.Lock()
		defer failMu.Unlock()
		for _, p := range fails {
			if p.Prunes(sc) {
				return true
			}
		}
		return false
	}

	msgs := make(chan mergeMsg, s.workers*4)
	var wg sync.WaitGroup
	for id := 0; id < s.workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := &worker{
				id:          id,
				e:           s.es[id],
				base:        base,
				space:       s.space,
				thresh:      s.thresh,
				deques:      deques,
				pending:     &pending,
				msgs:        msgs,
				recordAbort: recordAbort,
				aborted:     aborted,
				prunedBy:    prunedBy,
				addFail:     addFail,
			}
			w.run()
		}(id)
	}
	go func() {
		wg.Wait()
		close(msgs)
	}()

	set := bdd.False
	var total allsat.Stats
	var kernel bdd.KernelStats
	nodesSum := 0
	pst := PoolStats{Workers: s.workers, MinWorkerDecisions: ^uint64(0)}
	for m := range msgs {
		if m.exit != nil {
			kernel.Merge(m.exit.kernel)
			nodesSum += m.exit.nodes
			pst.Steals += m.exit.steals
			pst.Splits += m.exit.splits
			pst.UnsatSubcubes += m.exit.unsat
			pst.Pruned += m.exit.pruned
			pst.Subcubes += m.exit.done
			pst.Idle += m.exit.idle
			if m.exit.decisions > pst.MaxWorkerDecisions {
				pst.MaxWorkerDecisions = m.exit.decisions
			}
			if m.exit.decisions < pst.MinWorkerDecisions {
				pst.MinWorkerDecisions = m.exit.decisions
			}
			continue
		}
		addCounters(&total, m.stats)
		if m.snap != nil && !s.mergeDead {
			set = s.man.Or(set, s.man.Import(m.snap))
			if cap := s.budget.MaxBDDNodes; cap > 0 && s.man.NumNodes() >= cap {
				recordAbort(budget.Nodes)
				// The parent manager is over its cap for good: no later
				// run can merge either.
				s.mergeDead = true
			}
		}
	}
	if pst.MinWorkerDecisions == ^uint64(0) {
		pst.MinWorkerDecisions = 0
	}

	kernel.Merge(s.man.Kernel())
	total.Kernel = kernel
	total.BDDNodes = nodesSum + s.man.NumNodes()
	return &Result{
		Manager: s.man,
		Set:     set,
		Stats:   total,
		Pool:    pst,
		Aborted: abortReason.Load() != 0,
		Reason:  budget.Reason(abortReason.Load()),
	}
}
