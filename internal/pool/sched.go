package pool

// Scheduler-mode enumeration: when Options.Runtime carries a shared
// runtime.Scheduler, the pooled run submits one job per subcube to the
// server-wide executor pool instead of spinning up request-private
// worker goroutines. Enumerators are not pinned to executors — a
// per-request stash hands warm enumerators to whichever executor picks
// the next job, capped at the resolved worker count, so a request uses
// at most that many solver/manager pairs while its jobs interleave with
// every other tenant's on the shared executors.
//
// Deadlock freedom of the blocking stash receive: an executor blocks in
// acquire only when all of the request's enumerators exist and none is
// stashed — each is then held by a job that is currently running on
// some executor and returns it before finishing. If every executor were
// blocked in acquire, no holder would be running and every enumerator
// would be stashed, contradicting the block. So some holder always
// runs, and the stash receive terminates.

import (
	"sync/atomic"

	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/cnf"
	"allsatpre/internal/core"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
	"allsatpre/internal/partition"
	rt "allsatpre/internal/runtime"
)

// schedRun is the per-request state of a scheduler-mode enumeration. It
// plays the role the worker fleet plays in the classic mode: the merge
// loop in Enumerate is identical, fed by the same mergeMsg channel.
type schedRun struct {
	f      *cnf.Formula
	space  *cube.Space
	core   core.Options
	thresh uint64
	rt     *rt.Runtime

	// stash holds idle warm enumerators; its capacity is the enumerator
	// cap (the resolved worker count). created counts how many actually
	// exist, so completion knows how many to drain.
	stash   chan *core.Enumerator
	created atomic.Int32

	pending atomic.Int64
	msgs    chan<- mergeMsg

	recordAbort func(budget.Reason)
	aborted     func() bool
	prunedBy    func(partition.Subcube) bool
	addFail     func([]lit.Lit)

	splits atomic.Uint64
	unsat  atomic.Uint64
	pruned atomic.Uint64
	done   atomic.Uint64
}

// start submits the initial subcubes. The merge loop in Enumerate then
// runs until complete() closes msgs after the last job finishes.
func (r *schedRun) start(tasks []partition.Subcube) {
	r.pending.Store(int64(len(tasks)))
	for _, t := range tasks {
		r.submit(t)
	}
}

func (r *schedRun) submit(t partition.Subcube) {
	r.rt.S().Submit(r.rt.Tenant, func() { r.process(t) })
}

// acquire hands out a warm enumerator: a stashed one if available, a
// fresh one (with a pooled manager) while under the cap, else it blocks
// until a running job returns one — see the deadlock-freedom argument
// in the package comment above.
func (r *schedRun) acquire() *core.Enumerator {
	select {
	case e := <-r.stash:
		return e
	default:
	}
	if int(r.created.Add(1)) <= cap(r.stash) {
		co := r.core
		if p := r.rt.P(); p != nil {
			co.Manager = p.AcquireManager(r.space.Vars(), 0)
		}
		return core.New(r.f, r.space, co)
	}
	r.created.Add(-1)
	return <-r.stash
}

func (r *schedRun) release(e *core.Enumerator) { r.stash <- e }

// process runs one subcube job. Aborted runs still walk every queued
// job through the fast path so pending always reaches zero and the
// stream is properly closed.
func (r *schedRun) process(t partition.Subcube) {
	r.done.Add(1)
	if r.aborted() {
		r.finish()
		return
	}
	if r.prunedBy(t) {
		r.pruned.Add(1)
		r.finish()
		return
	}
	e := r.acquire()
	buf := t.Assumptions(r.space, nil)
	limit := r.thresh
	if _, _, can := t.Children(r.space); !can {
		limit = 0 // cannot split further: run the subcube to completion
	}
	sub := e.EnumerateUnder(buf, limit)
	if sub.Status == core.SubSplit {
		lo, hi, _ := t.Children(r.space)
		r.splits.Add(1)
		r.release(e)
		if sub.Aborted {
			r.recordAbort(sub.Reason)
		}
		// Two children in, one parent out; the parent is not terminal,
		// so no finish() here.
		r.pending.Add(1)
		r.submit(lo)
		r.submit(hi)
		return
	}
	var msg mergeMsg
	msg.stats = sub.Stats
	switch sub.Status {
	case core.SubSAT:
		if sub.Set != bdd.False {
			msg.snap = e.Manager().Export(sub.Set)
		}
	case core.SubUnsatAssumps:
		r.addFail(sub.Failed)
		r.unsat.Add(1)
	case core.SubGlobalUnsat:
		// UNSAT independent of assumptions: the empty pattern subsumes
		// (and prunes) every remaining subcube.
		r.addFail(nil)
	}
	r.release(e)
	if sub.Aborted {
		r.recordAbort(sub.Reason)
	}
	r.msgs <- msg
	r.finish()
}

func (r *schedRun) finish() {
	if r.pending.Add(-1) == 0 {
		r.complete()
	}
}

// complete drains the stash — every enumerator is idle once pending
// hits zero — publishing one exit report per enumerator (the moral
// equivalent of a worker) and returning the managers to the pool, then
// closes the stream so the merge loop in Enumerate can finish.
func (r *schedRun) complete() {
	shared := workerExit{
		splits: r.splits.Load(),
		unsat:  r.unsat.Load(),
		pruned: r.pruned.Load(),
		done:   r.done.Load(),
	}
	n := int(r.created.Load())
	if n == 0 {
		r.msgs <- mergeMsg{exit: &shared}
		close(r.msgs)
		return
	}
	for i := 0; i < n; i++ {
		e := <-r.stash
		exit := workerExit{}
		if i == 0 {
			exit = shared // request-wide counters ride on the first report
		}
		exit.kernel = e.Manager().Kernel()
		exit.nodes = e.Manager().NumNodes()
		exit.decisions = e.Stats().Decisions
		r.rt.P().ReleaseManager(e.Manager())
		r.msgs <- mergeMsg{exit: &exit}
	}
	close(r.msgs)
}
