package pool

import (
	"math/rand"
	"testing"
	"time"

	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/cnf"
	"allsatpre/internal/core"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
	"allsatpre/internal/stats"
)

func projSpace(vars ...int) *cube.Space {
	vs := make([]lit.Var, len(vars))
	for i, v := range vars {
		vs[i] = lit.Var(v)
	}
	return cube.NewSpace(vs)
}

func randomFormula(rng *rand.Rand, nVars, nClauses, k int) *cnf.Formula {
	f := cnf.New(nVars)
	for i := 0; i < nClauses; i++ {
		c := make(cnf.Clause, 0, k)
		for len(c) < k {
			v := lit.Var(rng.Intn(nVars))
			dup := false
			for _, x := range c {
				if x.Var() == v {
					dup = true
					break
				}
			}
			if !dup {
				c = append(c, lit.New(v, rng.Intn(2) == 0))
			}
		}
		f.AddClause(c)
	}
	return f
}

// TestPoolMatchesSequential is the determinism core: for random formulas
// the pooled cover must be bit-identical — same cubes, same order, same
// model count — to the sequential enumerator at every worker count.
func TestPoolMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4004))
	for iter := 0; iter < 40; iter++ {
		nVars := 5 + rng.Intn(7)
		f := randomFormula(rng, nVars, 1+rng.Intn(4*nVars), 3)
		nProj := 3 + rng.Intn(nVars-2)
		vars := rng.Perm(nVars)[:nProj]
		space := projSpace(vars...)

		want := core.EnumerateToResult(f.Clone(), space, core.DefaultOptions())
		for _, workers := range []int{1, 2, 4, 8} {
			got := EnumerateToResult(f.Clone(), space, Options{
				Workers: workers,
				Core:    core.DefaultOptions(),
			})
			if got.Count.Cmp(want.Count) != 0 {
				t.Fatalf("iter %d workers %d: count %v, want %v",
					iter, workers, got.Count, want.Count)
			}
			if !coversIdentical(got.Cover, want.Cover) {
				t.Fatalf("iter %d workers %d: cover differs\n got: %v\nwant: %v",
					iter, workers, got.Cover, want.Cover)
			}
		}
	}
}

func coversIdentical(a, b *cube.Cover) bool {
	if a.Len() != b.Len() {
		return false
	}
	ac, bc := a.Cubes(), b.Cubes()
	for i := range ac {
		if ac[i].String() != bc[i].String() {
			return false
		}
	}
	return true
}

// TestPoolDynamicSplit forces re-splitting with a tiny decision cap and
// checks the result is still exact.
func TestPoolDynamicSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(5005))
	splits := uint64(0)
	for iter := 0; iter < 20; iter++ {
		nVars := 8 + rng.Intn(4)
		f := randomFormula(rng, nVars, nVars, 3)
		vars := rng.Perm(nVars)[:6]
		space := projSpace(vars...)

		want := core.EnumerateToResult(f.Clone(), space, core.DefaultOptions())
		got := Enumerate(f.Clone(), space, Options{
			Workers:        4,
			PrefixDepth:    1, // start coarse so splitting has to happen
			SplitThreshold: 2,
			Core:           core.DefaultOptions(),
		})
		splits += got.Pool.Splits
		cover := got.Manager.ISOP(got.Set, space)
		if !coversIdentical(cover, want.Cover) {
			t.Fatalf("iter %d: split cover differs\n got: %v\nwant: %v",
				iter, cover, want.Cover)
		}
	}
	if splits == 0 {
		t.Fatal("threshold 2 never forced a dynamic split")
	}
}

func TestPoolGlobalUnsat(t *testing.T) {
	f := cnf.New(4)
	f.AddClause(cnf.Clause{lit.Pos(0)})
	f.AddClause(cnf.Clause{lit.Neg(0)})
	f.AddClause(cnf.Clause{lit.Pos(1), lit.Pos(2), lit.Pos(3)})
	space := projSpace(0, 1, 2, 3)
	reg := stats.NewRegistry("test")
	r := Enumerate(f, space, Options{Workers: 4, Core: core.DefaultOptions(), Stats: reg})
	if r.Set != bdd.False || r.Aborted {
		t.Fatalf("unsat: set %v aborted %v", r.Set, r.Aborted)
	}
	// The empty failed pattern must have pruned (or the UNSAT discovery
	// short-circuited) most of the 16 statically split subcubes.
	if r.Pool.Pruned == 0 && r.Pool.Subcubes >= 16 {
		t.Fatalf("no pruning on global UNSAT: %+v", r.Pool)
	}
}

// TestPoolUnsatSubcubePruning checks that a failed-assumption pattern
// recorded by one subcube prunes its subsumed siblings.
func TestPoolUnsatSubcubePruning(t *testing.T) {
	// x0 is forced false: every subcube with x0=1 is UNSAT with failed
	// set {x0}, so the pattern {x0=1} prunes half the static split.
	f := cnf.New(6)
	f.AddClause(cnf.Clause{lit.Neg(0)})
	for v := 1; v < 6; v++ {
		f.AddClause(cnf.Clause{lit.Pos(lit.Var(v)), lit.Neg(0)})
	}
	f.AddClause(cnf.Clause{lit.Pos(1), lit.Pos(2), lit.Pos(3), lit.Pos(4), lit.Pos(5)})
	space := projSpace(0, 1, 2, 3, 4, 5)
	want := core.EnumerateToResult(f.Clone(), space, core.DefaultOptions())
	r := Enumerate(f.Clone(), space, Options{
		Workers:     2,
		PrefixDepth: 4,
		Core:        core.DefaultOptions(),
	})
	cover := r.Manager.ISOP(r.Set, space)
	if !coversIdentical(cover, want.Cover) {
		t.Fatalf("cover differs\n got: %v\nwant: %v", cover, want.Cover)
	}
	if r.Pool.UnsatSubcubes == 0 {
		t.Fatalf("no unsat subcubes recorded: %+v", r.Pool)
	}
}

// TestPoolBudgetAbortPartial checks the abort protocol: a tripped global
// decision budget yields Aborted with the right reason, and the partial
// merged set is a sound under-approximation of the full solution set.
func TestPoolBudgetAbortPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(6006))
	sawAbort := false
	for iter := 0; iter < 30; iter++ {
		nVars := 8 + rng.Intn(4)
		f := randomFormula(rng, nVars, nVars, 3)
		vars := rng.Perm(nVars)[:6]
		space := projSpace(vars...)

		full := core.New(f.Clone(), space, core.DefaultOptions())
		fr := full.Enumerate()

		r := Enumerate(f.Clone(), space, Options{
			Workers: 4,
			Budget:  budget.Budget{MaxDecisions: 5},
			Core:    core.DefaultOptions(),
		})
		if r.Aborted {
			sawAbort = true
			if r.Reason != budget.Decisions {
				t.Fatalf("iter %d: abort reason %v, want decisions", iter, r.Reason)
			}
		}
		// Partial ⊆ full, aborted or not.
		fullSet := r.Manager.Import(full.Manager().Export(fr.Set))
		if extra := r.Manager.Diff(r.Set, fullSet); extra != bdd.False {
			t.Fatalf("iter %d: merged set is not a subset of the full set", iter)
		}
	}
	if !sawAbort {
		t.Fatal("5-decision budget never aborted any instance")
	}
}

// TestPoolDeadlineAbort: a wall-clock deadline must trip even when every
// subcube resolves through assumptions and BCP alone — such calls make
// no decisions, so without the per-call entry poll in EnumerateUnder a
// pooled run over easy subcubes would never check the clock.
func TestPoolDeadlineAbort(t *testing.T) {
	f := cnf.New(6)
	f.AddClause(cnf.Clause{lit.Pos(lit.Var(0)), lit.Pos(lit.Var(1))})
	space := projSpace(0, 1, 2, 3, 4, 5)
	r := Enumerate(f, space, Options{
		Workers: 4,
		Budget:  budget.Budget{Deadline: time.Now().Add(-time.Hour)},
		Core:    core.DefaultOptions(),
	})
	if !r.Aborted || r.Reason != budget.Deadline {
		t.Fatalf("expired deadline: aborted=%v reason=%v, want deadline abort",
			r.Aborted, r.Reason)
	}
	if r.Set != bdd.False {
		t.Fatalf("deadline-aborted run published solutions: %v", r.Set)
	}
}

// TestPoolStatsRegistry checks the pool.* keys land in the registry.
func TestPoolStatsRegistry(t *testing.T) {
	rng := rand.New(rand.NewSource(7007))
	f := randomFormula(rng, 10, 20, 3)
	space := projSpace(0, 1, 2, 3, 4, 5)
	reg := stats.NewRegistry("test")
	r := Enumerate(f, space, Options{Workers: 4, Core: core.DefaultOptions(), Stats: reg})
	snap := reg.Snapshot()
	metrics := map[string]string{}
	for _, kv := range snap.Metrics {
		metrics[kv.Key] = kv.Value
	}
	if metrics["pool.workers"] != "4" {
		t.Fatalf("pool.workers gauge = %q, want 4", metrics["pool.workers"])
	}
	if r.Pool.Subcubes == 0 {
		t.Fatalf("no subcubes recorded: %+v", r.Pool)
	}
	if got := reg.Counter("pool.subcubes").Load(); got != r.Pool.Subcubes {
		t.Fatalf("pool.subcubes counter = %d, pool stats %+v", got, r.Pool)
	}
}

// TestPoolSequentialShortcut: one worker must take the plain sequential
// path and still report through the pool result shape.
func TestPoolSequentialShortcut(t *testing.T) {
	rng := rand.New(rand.NewSource(8008))
	f := randomFormula(rng, 8, 16, 3)
	space := projSpace(0, 1, 2, 3)
	want := core.EnumerateToResult(f.Clone(), space, core.DefaultOptions())
	got := EnumerateToResult(f.Clone(), space, Options{Workers: 1, Core: core.DefaultOptions()})
	if got.Count.Cmp(want.Count) != 0 || !coversIdentical(got.Cover, want.Cover) {
		t.Fatalf("sequential shortcut diverged: %v vs %v", got.Cover, want.Cover)
	}
}
