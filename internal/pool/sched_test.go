package pool

import (
	"math/rand"
	"testing"

	"allsatpre/internal/core"
	rt "allsatpre/internal/runtime"
	"allsatpre/internal/stats"
)

// TestSchedMatchesSequential: scheduler mode — shared executors, warm
// pooled solvers/managers — must stay bit-identical to the sequential
// enumerator at every worker cap, and keep matching when the pool is
// reused run after run (the warm-reuse equivalence the runtime's Reset
// contract promises).
func TestSchedMatchesSequential(t *testing.T) {
	reg := stats.NewRegistry("sched-test")
	sched := rt.NewScheduler(4, reg)
	defer sched.Close()
	run := &rt.Runtime{Pool: rt.NewPool(rt.PoolOptions{Stats: reg}), Sched: sched, Tenant: "t0"}

	rng := rand.New(rand.NewSource(6006))
	for iter := 0; iter < 25; iter++ {
		nVars := 5 + rng.Intn(7)
		f := randomFormula(rng, nVars, 1+rng.Intn(4*nVars), 3)
		nProj := 3 + rng.Intn(nVars-2)
		vars := rng.Perm(nVars)[:nProj]
		space := projSpace(vars...)

		want := core.EnumerateToResult(f.Clone(), space, core.DefaultOptions())
		for _, workers := range []int{2, 4, 8} {
			got := EnumerateToResult(f.Clone(), space, Options{
				Workers: workers,
				Core:    core.DefaultOptions(),
				Runtime: run,
			})
			if got.Count.Cmp(want.Count) != 0 {
				t.Fatalf("iter %d workers %d: count %v, want %v",
					iter, workers, got.Count, want.Count)
			}
			if !coversIdentical(got.Cover, want.Cover) {
				t.Fatalf("iter %d workers %d: cover differs\n got: %v\nwant: %v",
					iter, workers, got.Cover, want.Cover)
			}
		}
	}
}

// TestSchedDynamicSplit forces re-splits in scheduler mode (children are
// submitted as fresh jobs rather than deque pushes) and checks the
// result stays exact.
func TestSchedDynamicSplit(t *testing.T) {
	reg := stats.NewRegistry("sched-split")
	sched := rt.NewScheduler(3, reg)
	defer sched.Close()
	run := &rt.Runtime{Pool: rt.NewPool(rt.PoolOptions{Stats: reg}), Sched: sched}

	rng := rand.New(rand.NewSource(7007))
	splits := uint64(0)
	for iter := 0; iter < 15; iter++ {
		nVars := 8 + rng.Intn(5)
		f := randomFormula(rng, nVars, 2*nVars, 3)
		vars := rng.Perm(nVars)[:6]
		space := projSpace(vars...)

		want := core.EnumerateToResult(f.Clone(), space, core.DefaultOptions())
		got := Enumerate(f.Clone(), space, Options{
			Workers:        4,
			SplitThreshold: 8,
			Core:           core.DefaultOptions(),
			Runtime:        run,
		})
		if got.Manager.SatCount(got.Set).Cmp(want.Count) != 0 {
			t.Fatalf("iter %d: count %v, want %v",
				iter, got.Manager.SatCount(got.Set), want.Count)
		}
		splits += got.Pool.Splits
		got.Release()
	}
	if splits == 0 {
		t.Fatal("threshold 8 never forced a dynamic split in scheduler mode")
	}
}

// TestSchedSharedExecutorsTwoRequests interleaves two concurrent pooled
// requests from different tenants on one shared scheduler and checks
// both come back exact — the multi-tenant case the scheduler exists for.
func TestSchedSharedExecutorsTwoRequests(t *testing.T) {
	sched := rt.NewScheduler(2, nil)
	defer sched.Close()
	pl := rt.NewPool(rt.PoolOptions{})

	rng := rand.New(rand.NewSource(8008))
	f1 := randomFormula(rng, 10, 25, 3)
	f2 := randomFormula(rng, 11, 30, 3)
	s1 := projSpace(0, 2, 4, 6, 8)
	s2 := projSpace(1, 3, 5, 7, 9)
	want1 := core.EnumerateToResult(f1.Clone(), s1, core.DefaultOptions())
	want2 := core.EnumerateToResult(f2.Clone(), s2, core.DefaultOptions())

	done := make(chan string, 2)
	go func() {
		got := EnumerateToResult(f1.Clone(), s1, Options{
			Workers: 4, Core: core.DefaultOptions(),
			Runtime: &rt.Runtime{Pool: pl, Sched: sched, Tenant: "a"},
		})
		if !coversIdentical(got.Cover, want1.Cover) {
			done <- "tenant a: cover differs from sequential"
			return
		}
		done <- ""
	}()
	go func() {
		got := EnumerateToResult(f2.Clone(), s2, Options{
			Workers: 4, Core: core.DefaultOptions(),
			Runtime: &rt.Runtime{Pool: pl, Sched: sched, Tenant: "b"},
		})
		if !coversIdentical(got.Cover, want2.Cover) {
			done <- "tenant b: cover differs from sequential"
			return
		}
		done <- ""
	}()
	for i := 0; i < 2; i++ {
		if msg := <-done; msg != "" {
			t.Fatal(msg)
		}
	}
}
