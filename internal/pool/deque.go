package pool

import "sync/atomic"

// deque is a Chase–Lev work-stealing deque of uint64-encoded subcubes
// (Lê/Pop/Cocchi's formulation; Go atomics are sequentially consistent,
// which subsumes the fences the weak-memory version needs). The owning
// worker pushes and pops at the bottom without synchronization beyond the
// atomics; thieves take the oldest entry from the top with a single CAS.
// Entries are single words held in atomic slots, so a racing steal can
// never observe a torn task.
type deque struct {
	top    atomic.Int64
	bottom atomic.Int64
	ring   atomic.Pointer[dequeRing]
}

type dequeRing struct {
	mask  int64 // size-1, size a power of two
	slots []atomic.Uint64
}

func newDequeRing(size int64) *dequeRing {
	return &dequeRing{mask: size - 1, slots: make([]atomic.Uint64, size)}
}

func (r *dequeRing) get(i int64) uint64    { return r.slots[i&r.mask].Load() }
func (r *dequeRing) put(i int64, w uint64) { r.slots[i&r.mask].Store(w) }

func newDeque() *deque {
	d := &deque{}
	d.ring.Store(newDequeRing(64))
	return d
}

// push appends a task at the bottom. Owner only.
func (d *deque) push(w uint64) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t > r.mask {
		// Full: double the ring. Live entries are copied, and the old ring
		// keeps its values, so a thief that loaded the old ring before the
		// swap still reads a valid word (its CAS on top arbitrates).
		nr := newDequeRing((r.mask + 1) * 2)
		for i := t; i < b; i++ {
			nr.put(i, r.get(i))
		}
		d.ring.Store(nr)
		r = nr
	}
	r.put(b, w)
	d.bottom.Store(b + 1)
}

// pop removes the most recently pushed task (LIFO). Owner only.
func (d *deque) pop() (uint64, bool) {
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore.
		d.bottom.Store(b + 1)
		return 0, false
	}
	w := r.get(b)
	if t == b {
		// Last entry: race the thieves for it via top.
		ok := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(b + 1)
		return w, ok
	}
	return w, true
}

// steal removes the oldest task (FIFO). Any goroutine.
func (d *deque) steal() (uint64, bool) {
	for {
		t := d.top.Load()
		b := d.bottom.Load()
		if t >= b {
			return 0, false
		}
		w := d.ring.Load().get(t)
		if d.top.CompareAndSwap(t, t+1) {
			return w, true
		}
		// Lost the race to another thief or the owner; reload and retry.
	}
}
