// Package pool runs the success-driven enumerator (internal/core) across
// a work-stealing worker pool. The projection space is split into
// guiding-path subcubes (internal/partition); each worker owns a private
// core.Enumerator — its own solver trail, learned clauses, memo table,
// and single-threaded BDD manager — and drains a lock-free deque of
// subcubes, re-splitting any subcube whose enumeration exceeds the work
// threshold. Per-subcube solution sets are exported as immutable BDD
// snapshots and published over a channel together with the search-counter
// deltas; the merging thread rebuilds the union in a parent manager.
// Because the subcubes are pairwise disjoint, the merge is a pure Or with
// no cancellation, and BDD canonicity makes the merged set — and the ISOP
// cover extracted from it — bit-identical to the sequential enumeration
// for every worker count.
//
// Abort protocol: the shared budget.Budget stays the single source of
// truth. Each worker polls its own checker; the first abort records the
// reason and cancels a context shared by all workers, so siblings stop at
// their next poll. Partial per-subcube sets still merge, and the result
// reports Aborted with the first reason — a sound under-approximation,
// exactly like the sequential engine.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"allsatpre/internal/allsat"
	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/cnf"
	"allsatpre/internal/core"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
	"allsatpre/internal/partition"
	rt "allsatpre/internal/runtime"
	"allsatpre/internal/stats"
)

// DefaultSplitThreshold is the per-subcube decision cap before a dynamic
// re-split: coarse enough that the split bookkeeping is noise, fine
// enough that one pathological subcube cannot serialize the run.
const DefaultSplitThreshold = 4096

// Options configures a pooled enumeration.
type Options struct {
	// Workers is the worker count; <= 0 selects runtime.GOMAXPROCS(0).
	// One worker short-circuits to the plain sequential enumerator.
	Workers int
	// PrefixDepth overrides the static split depth (0 = automatic: the
	// smallest k with 2^k >= 4*Workers subcubes).
	PrefixDepth int
	// SplitThreshold overrides the dynamic re-split decision cap
	// (0 = DefaultSplitThreshold).
	SplitThreshold uint64
	// Core configures each worker's enumerator. Core.Budget is ignored;
	// pass the run budget in Budget.
	Core core.Options
	// Budget bounds the whole pooled run. MaxDecisions is enforced
	// globally via a shared atomic counter; MaxBDDNodes applies to each
	// worker's manager and to the merged parent manager individually.
	Budget budget.Budget
	// Stats, when non-nil, receives the pool.* counters and gauges.
	Stats *stats.Registry
	// Runtime, when non-nil, supplies warm solver/manager pairs from its
	// pool and — when it also carries a scheduler — runs the subcube
	// jobs on the shared server-wide executors instead of spawning
	// request-private worker goroutines. Nil keeps the classic
	// fresh-build, private-goroutine behavior.
	Runtime *rt.Runtime
}

// PoolStats aggregates the pool's own bookkeeping (the solver counters
// are in the allsat.Stats of the result).
type PoolStats struct {
	// Workers is the effective worker count.
	Workers int
	// Subcubes counts work units processed, including pruned ones.
	Subcubes uint64
	// Steals counts tasks taken from another worker's deque.
	Steals uint64
	// Splits counts dynamic re-splits (each replaces one subcube by two).
	Splits uint64
	// UnsatSubcubes counts subcubes whose assumptions conflicted with the
	// formula (the assumption-aware UNSAT path, not global UNSAT).
	UnsatSubcubes uint64
	// Pruned counts subcubes skipped because a recorded failed-assumption
	// pattern subsumed them.
	Pruned uint64
	// Idle is the total time workers spent waiting for work.
	Idle time.Duration
	// MaxWorkerDecisions/MinWorkerDecisions expose load imbalance: the
	// decision counts of the busiest and laziest workers.
	MaxWorkerDecisions uint64
	MinWorkerDecisions uint64
}

// Result is the merged outcome of a pooled enumeration.
type Result struct {
	// Manager owns Set: the parent manager the per-subcube sets were
	// merged into. Its variable order is the projection order.
	Manager *bdd.Manager
	// Set is the union of the per-subcube solution sets.
	Set bdd.Ref
	// Stats sums the workers' search counters; BDDNodes totals every
	// manager (workers + parent) as the run's memory proxy, and Kernel
	// merges all kernel counters.
	Stats allsat.Stats
	// Pool holds the pool's own counters.
	Pool PoolStats
	// Aborted is set when any worker or the merger tripped the budget;
	// Set is then a sound under-approximation and Reason holds the first
	// cause.
	Aborted bool
	Reason  budget.Reason
	// rt is the runtime the parent manager was acquired from, so Release
	// can return it (nil for classic runs and Session results, where
	// Release degrades to clearing the references).
	rt *rt.Runtime
}

// Release returns the merged-set manager to the runtime pool the run
// was configured with (a no-op without one) and clears Manager/Set.
// Call it after the last use of either; not for Session results, whose
// manager persists across runs.
func (r *Result) Release() {
	if r == nil || r.Manager == nil {
		return
	}
	m := r.Manager
	r.Manager = nil
	r.Set = bdd.False
	r.rt.P().ReleaseManager(m)
}

// Task words pack a subcube into one uint64 for the lock-free deque:
// the path in the low partition.MaxDepth bits, the depth above.
func encodeTask(s partition.Subcube) uint64 {
	return s.Path | uint64(s.Depth)<<partition.MaxDepth
}

func decodeTask(w uint64) partition.Subcube {
	return partition.Subcube{
		Path:  w & (1<<partition.MaxDepth - 1),
		Depth: int(w >> partition.MaxDepth),
	}
}

// mergeMsg is one channel message from a worker: a per-subcube result
// (snapshot + counter deltas), or the worker's exit report.
type mergeMsg struct {
	snap  *bdd.Snapshot
	stats allsat.Stats
	exit  *workerExit
}

type workerExit struct {
	kernel    bdd.KernelStats
	nodes     int
	decisions uint64
	idle      time.Duration
	steals    uint64
	splits    uint64
	unsat     uint64
	pruned    uint64
	done      uint64
}

// Enumerate runs the pooled enumeration and merges the per-subcube sets
// into a fresh parent manager. With one worker (or an empty projection
// space, where there is nothing to partition) it degrades to the plain
// sequential enumerator — the reference the determinism tests compare
// every other worker count against.
func Enumerate(f *cnf.Formula, space *cube.Space, opts Options) *Result {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	opts.Budget = opts.Budget.Materialize()
	if workers == 1 || space.Size() == 0 {
		return sequential(f, space, opts)
	}

	// Workers share one cancellation context so the first abort stops the
	// siblings; the global decision cap moves into a shared atomic polled
	// through the enumerator's OnDecision hook.
	base := context.Background()
	if opts.Budget.Ctx != nil {
		base = opts.Budget.Ctx
	}
	ctx, cancel := context.WithCancel(base)
	defer cancel()
	maxDec := opts.Budget.MergeDecisions(opts.Core.MaxDecisions)
	co := opts.Core
	co.Budget = opts.Budget
	co.Budget.Ctx = ctx
	co.Budget.MaxDecisions = 0
	co.MaxDecisions = 0
	var decisions atomic.Uint64
	if maxDec > 0 {
		co.OnDecision = func() budget.Reason {
			if decisions.Add(1) > maxDec {
				return budget.Decisions
			}
			return budget.None
		}
	}

	k := opts.PrefixDepth
	if k <= 0 {
		k = partition.PrefixDepth(space, workers, 0)
	}
	tasks := partition.Split(space, k)
	thresh := opts.SplitThreshold
	if thresh == 0 {
		thresh = DefaultSplitThreshold
	}

	var abortReason atomic.Int32
	recordAbort := func(r budget.Reason) {
		if r != budget.None && abortReason.CompareAndSwap(0, int32(r)) {
			cancel()
		}
	}
	aborted := func() bool { return abortReason.Load() != 0 }

	// Failed-assumption patterns shared across workers: a subcube whose
	// assumptions already failed prunes every later subcube it subsumes.
	var failMu sync.Mutex
	var fails []partition.FailedPattern
	addFail := func(failed []lit.Lit) {
		if p, ok := partition.PatternOf(space, failed); ok {
			failMu.Lock()
			fails = append(fails, p)
			failMu.Unlock()
		}
	}
	prunedBy := func(s partition.Subcube) bool {
		failMu.Lock()
		defer failMu.Unlock()
		for _, p := range fails {
			if p.Prunes(s) {
				return true
			}
		}
		return false
	}

	msgs := make(chan mergeMsg, workers*4)
	if opts.Runtime.S() != nil {
		// Scheduler mode: one job per subcube on the shared executors,
		// warm enumerators handed out through a per-request stash capped
		// at the worker count. complete() closes msgs when the last job
		// finishes, so the merge loop below is unchanged.
		r := &schedRun{
			f:           f,
			space:       space,
			core:        co,
			thresh:      thresh,
			rt:          opts.Runtime,
			stash:       make(chan *core.Enumerator, workers),
			msgs:        msgs,
			recordAbort: recordAbort,
			aborted:     aborted,
			prunedBy:    prunedBy,
			addFail:     addFail,
		}
		r.start(tasks)
	} else {
		deques := make([]*deque, workers)
		for i := range deques {
			deques[i] = newDeque()
		}
		for i, t := range tasks {
			deques[i%workers].push(encodeTask(t))
		}
		pending := new(atomic.Int64)
		pending.Store(int64(len(tasks)))
		var wg sync.WaitGroup
		for id := 0; id < workers; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				w := &worker{
					id:          id,
					f:           f,
					space:       space,
					core:        co,
					rt:          opts.Runtime,
					thresh:      thresh,
					deques:      deques,
					pending:     pending,
					msgs:        msgs,
					recordAbort: recordAbort,
					aborted:     aborted,
					prunedBy:    prunedBy,
					addFail:     addFail,
				}
				w.run()
			}(id)
		}
		go func() {
			wg.Wait()
			close(msgs)
		}()
	}

	// Merge in this goroutine: disjoint subcube sets, so a pure Or. The
	// parent manager honors the node cap by checking after each import —
	// once it trips, later snapshots are dropped (sound: the set only
	// shrinks) and the run reports the abort.
	man := opts.Runtime.P().AcquireManager(space.Vars(), 0)
	set := bdd.False
	mergeDead := false
	var total allsat.Stats
	var kernel bdd.KernelStats
	nodesSum := 0
	pst := PoolStats{Workers: workers, MinWorkerDecisions: ^uint64(0)}
	for m := range msgs {
		if m.exit != nil {
			kernel.Merge(m.exit.kernel)
			nodesSum += m.exit.nodes
			pst.Steals += m.exit.steals
			pst.Splits += m.exit.splits
			pst.UnsatSubcubes += m.exit.unsat
			pst.Pruned += m.exit.pruned
			pst.Subcubes += m.exit.done
			pst.Idle += m.exit.idle
			if m.exit.decisions > pst.MaxWorkerDecisions {
				pst.MaxWorkerDecisions = m.exit.decisions
			}
			if m.exit.decisions < pst.MinWorkerDecisions {
				pst.MinWorkerDecisions = m.exit.decisions
			}
			continue
		}
		addCounters(&total, m.stats)
		if m.snap != nil && !mergeDead {
			set = man.Or(set, man.Import(m.snap))
			if cap := opts.Budget.MaxBDDNodes; cap > 0 && man.NumNodes() >= cap {
				recordAbort(budget.Nodes)
				mergeDead = true
			}
		}
	}
	if pst.MinWorkerDecisions == ^uint64(0) {
		pst.MinWorkerDecisions = 0
	}

	kernel.Merge(man.Kernel())
	total.Kernel = kernel
	total.BDDNodes = nodesSum + man.NumNodes()
	res := &Result{
		Manager: man,
		Set:     set,
		Stats:   total,
		Pool:    pst,
		Aborted: abortReason.Load() != 0,
		Reason:  budget.Reason(abortReason.Load()),
		rt:      opts.Runtime,
	}
	publish(opts.Stats, res.Pool)
	return res
}

// sequential is the one-worker degenerate case: the plain enumerator,
// with the pool bookkeeping reduced to a worker-count gauge.
func sequential(f *cnf.Formula, space *cube.Space, opts Options) *Result {
	co := opts.Core
	co.Budget = opts.Budget
	if p := opts.Runtime.P(); p != nil {
		co.Manager = p.AcquireManager(space.Vars(), 0)
	}
	e := core.New(f, space, co)
	r := e.Enumerate()
	res := &Result{
		Manager: r.Manager,
		Set:     r.Set,
		Stats:   r.Stats,
		Pool:    PoolStats{Workers: 1, Subcubes: 1},
		Aborted: r.Aborted,
		Reason:  r.Reason,
		rt:      opts.Runtime,
	}
	publish(opts.Stats, res.Pool)
	return res
}

type worker struct {
	id    int
	f     *cnf.Formula
	space *cube.Space
	core  core.Options
	// e, when non-nil, is a persistent enumerator reused across runs (a
	// pool.Session worker); otherwise a fresh one is built from f/core.
	e *core.Enumerator
	// base literals are assumed before every subcube's guiding-path
	// assumptions (a Session's per-step activation literal).
	base []lit.Lit
	// rt, when non-nil and e is nil, supplies the fresh enumerator's
	// manager from the warm pool and takes it back at exit.
	rt          *rt.Runtime
	thresh      uint64
	deques      []*deque
	pending     *atomic.Int64
	msgs        chan<- mergeMsg
	recordAbort func(budget.Reason)
	aborted     func() bool
	prunedBy    func(partition.Subcube) bool
	addFail     func([]lit.Lit)
}

func (w *worker) run() {
	e := w.e
	if e == nil {
		co := w.core
		if p := w.rt.P(); p != nil {
			co.Manager = p.AcquireManager(w.space.Vars(), 0)
		}
		e = core.New(w.f, w.space, co)
	}
	decBase := e.Stats().Decisions
	my := w.deques[w.id]
	var exit workerExit
	var buf []lit.Lit
	for !w.aborted() {
		t, ok := my.pop()
		if !ok {
			for off := 1; off < len(w.deques) && !ok; off++ {
				t, ok = w.deques[(w.id+off)%len(w.deques)].steal()
			}
			if ok {
				exit.steals++
			}
		}
		if !ok {
			if w.pending.Load() == 0 {
				break
			}
			t0 := time.Now()
			runtime.Gosched()
			time.Sleep(20 * time.Microsecond)
			exit.idle += time.Since(t0)
			continue
		}
		sc := decodeTask(t)
		exit.done++
		if w.prunedBy(sc) {
			exit.pruned++
			w.pending.Add(-1)
			continue
		}
		buf = sc.Assumptions(w.space, append(buf[:0], w.base...))
		limit := w.thresh
		if _, _, can := sc.Children(w.space); !can {
			limit = 0 // cannot split further: run the subcube to completion
		}
		sub := e.EnumerateUnder(buf, limit)
		switch sub.Status {
		case core.SubSplit:
			lo, hi, _ := sc.Children(w.space)
			my.push(encodeTask(hi))
			my.push(encodeTask(lo))
			w.pending.Add(1) // two children in, one parent out
			exit.splits++
		case core.SubSAT:
			var snap *bdd.Snapshot
			if sub.Set != bdd.False {
				snap = e.Manager().Export(sub.Set)
			}
			w.msgs <- mergeMsg{snap: snap, stats: sub.Stats}
			w.pending.Add(-1)
		case core.SubUnsatAssumps:
			w.addFail(sub.Failed)
			exit.unsat++
			w.msgs <- mergeMsg{stats: sub.Stats}
			w.pending.Add(-1)
		case core.SubGlobalUnsat:
			// UNSAT independent of assumptions: the empty pattern subsumes
			// (and prunes) every remaining subcube.
			w.addFail(nil)
			w.msgs <- mergeMsg{stats: sub.Stats}
			w.pending.Add(-1)
		}
		if sub.Aborted {
			// Partial set already published; stop and let the shared
			// context stop the siblings.
			w.recordAbort(sub.Reason)
			break
		}
	}
	exit.kernel = e.Manager().Kernel()
	exit.nodes = e.Manager().NumNodes()
	exit.decisions = e.Stats().Decisions - decBase
	w.msgs <- mergeMsg{exit: &exit}
	if w.e == nil {
		// The enumerator was built for this run: its manager can go back
		// to the warm pool now that the exit report copied its counters
		// (snapshots are deep copies, so the merge never touches it).
		w.rt.P().ReleaseManager(e.Manager())
	}
}

// EnumerateToResult converts a pooled run to the shared allsat result
// shape, extracting the ISOP cover from the merged set exactly like the
// sequential core.EnumerateToResult.
func EnumerateToResult(f *cnf.Formula, space *cube.Space, opts Options) *allsat.Result {
	r := Enumerate(f, space, opts)
	out := &allsat.Result{
		Space:   space,
		Cover:   r.Manager.ISOP(r.Set, space),
		Count:   r.Manager.SatCount(r.Set),
		Stats:   r.Stats,
		Aborted: r.Aborted,
		Reason:  r.Reason,
	}
	out.Stats.Cubes = uint64(out.Cover.Len())
	r.Release()
	return out
}

// addCounters accumulates the monotone counter fields (gauge-like fields
// — BDDNodes, Kernel — are aggregated from the worker exit reports).
func addCounters(dst *allsat.Stats, s allsat.Stats) {
	dst.Solutions += s.Solutions
	dst.Cubes += s.Cubes
	dst.BlockingClauses += s.BlockingClauses
	dst.BlockingLits += s.BlockingLits
	dst.LiftedFree += s.LiftedFree
	dst.Decisions += s.Decisions
	dst.Propagations += s.Propagations
	dst.Conflicts += s.Conflicts
	dst.CacheLookups += s.CacheLookups
	dst.CacheHits += s.CacheHits
	dst.CacheClears += s.CacheClears
}

// publish mirrors the pool counters into the stats registry under the
// pool.* keys.
func publish(reg *stats.Registry, p PoolStats) {
	if reg == nil {
		return
	}
	reg.SetGauge("pool.workers", int64(p.Workers))
	reg.Counter("pool.subcubes").Add(p.Subcubes)
	reg.Counter("pool.steals").Add(p.Steals)
	reg.Counter("pool.splits").Add(p.Splits)
	reg.Counter("pool.unsat-subcubes").Add(p.UnsatSubcubes)
	reg.Counter("pool.pruned-subcubes").Add(p.Pruned)
	reg.AddDuration("pool.idle", p.Idle)
	reg.SetGauge("pool.max-worker-decisions", int64(p.MaxWorkerDecisions))
	reg.SetGauge("pool.min-worker-decisions", int64(p.MinWorkerDecisions))
	if p.MaxWorkerDecisions > 0 {
		reg.SetFloatGauge("pool.imbalance",
			float64(p.MaxWorkerDecisions-p.MinWorkerDecisions)/float64(p.MaxWorkerDecisions))
	}
}
