// Package incr provides incremental reachability sessions: the circuit
// is Tseitin-encoded once, one persistent set of success-driven
// enumerators (internal/pool.Session) and one shared BDD manager stay
// alive across every reachability step, and each step's frontier cover
// is encoded under a fresh activation literal (trans.Step). Retiring a
// step is one unit clause plus garbage collection — learned clauses not
// mentioning the step's selector/activation variables survive into the
// next step, and the success-driven memo survives with invalidation only
// where a residual touched the retired clauses.
package incr

import (
	"errors"
	"time"

	"allsatpre/internal/allsat"
	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/circuit"
	"allsatpre/internal/core"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
	"allsatpre/internal/pool"
	"allsatpre/internal/simplify"
	"allsatpre/internal/stats"
	"allsatpre/internal/trans"
)

// Options configures an incremental session.
type Options struct {
	// Workers is the enumeration worker count (pool.Session semantics:
	// <= 0 selects GOMAXPROCS, 1 runs in-place on the session manager).
	Workers int
	// Core tunes the enumerators (zero value → core defaults).
	Core core.Options
	// Budget bounds the whole session — every step spends from it. The
	// decision cap is enforced session-globally, unlike the fresh path's
	// per-step enumerators (a budget is a resource allowance, not a
	// semantic knob; see DESIGN.md §10).
	Budget budget.Budget
	// InputFirst / Interleave select the projection-order ablations,
	// matching preimage.Options.
	InputFirst bool
	Interleave bool
	// Simplify opts the base transition CNF into the projection-safe
	// preprocessing pass (internal/simplify) before the persistent
	// solvers are built. Off by default — an explicit opt-in, unlike the
	// one-shot paths: the session retargets the clause database in place,
	// so the frozen set must cover everything future steps constrain.
	// State, input, and next-state variables are frozen, which is exactly
	// that set (Retarget/RetargetInit clauses touch only next-state or
	// state variables plus fresh activation/selector variables allocated
	// after the pass, so they can never be eliminated).
	Simplify bool
	// Stats, when non-nil, receives the incr.* counters.
	Stats *stats.Registry
}

// StepResult is the outcome of one Step call.
type StepResult struct {
	// Set is this step's solution set over the projection variables, in
	// the session manager.
	Set bdd.Ref
	// Stats are this step's search-counter deltas.
	Stats allsat.Stats
	// Pool is this step's pool bookkeeping.
	Pool pool.PoolStats
	// Retire reports the retirement of the previous step's clause group
	// (zero for the first step).
	Retire pool.SessionRetireStats
	// ClausesAdded is the number of gated clauses encoding this target.
	ClausesAdded int
	// Aborted/Reason report a budget trip; Set is then a sound
	// under-approximation.
	Aborted bool
	Reason  budget.Reason
}

// ErrClosed is returned by Step after Close: a closed session's solver
// pool is cancelled and its retarget state is gone, so no further
// frontier can be advanced.
var ErrClosed = errors.New("incr: session is closed")

// Session is a persistent solver + manager serving a sequence of
// reachability steps.
//
// Concurrency contract: a Session is NOT safe for concurrent use —
// callers serialize every method, including Close. A store that owns
// sessions on behalf of multiple clients (e.g. internal/server's LRU
// session store) must hold a per-session lock across each Step and
// across the eviction Close, so an in-flight step always finishes or
// aborts before the session's resources are torn down.
type Session struct {
	inst     *trans.Instance
	ps       *pool.Session
	backward bool
	closed   bool

	projSpace *cube.Space // ordered (state, input) projection, CNF var ids
	stateVars []lit.Var   // enc.StateVars (backward) / dedup NextVars (forward)
	quantVars []lit.Var   // projection vars to ∃-quantify for StateSet

	cur        *trans.Step // open step's gated group, nil before first Step
	steps      int
	encodeTime time.Duration
	reg        *stats.Registry
}

// NewBackward opens a backward-reachability session: each Step(cover)
// enumerates the one-step preimage of the cover. The projection space is
// the ordered (state, input) space of the fresh path, so covers and
// counts are directly comparable.
func NewBackward(c *circuit.Circuit, opts Options) (*Session, error) {
	t0 := time.Now()
	inst, err := trans.NewBaseInstance(c)
	if err != nil {
		return nil, err
	}
	simplifyBase(inst, opts)
	encodeTime := time.Since(t0)
	projVars, projNames := inst.OrderedProjection(opts.InputFirst, opts.Interleave)
	s := &Session{
		inst:       inst,
		backward:   true,
		projSpace:  cube.NewNamedSpace(projVars, projNames),
		stateVars:  inst.StateVars,
		quantVars:  inst.InputVars,
		encodeTime: encodeTime,
		reg:        opts.Stats,
	}
	s.ps = newPoolSession(inst, s.projSpace, opts)
	return s, nil
}

// NewForward opens a forward-image session: each Step(cover) enumerates
// the image of the cover. The projection space is the deduplicated
// next-state variable space (several latches may share one D signal);
// StateSet is the identity — expansion back to per-latch positions is
// the caller's job (preimage.ForwardReach).
func NewForward(c *circuit.Circuit, opts Options) (*Session, error) {
	t0 := time.Now()
	inst, err := trans.NewBaseInstance(c)
	if err != nil {
		return nil, err
	}
	simplifyBase(inst, opts)
	encodeTime := time.Since(t0)
	next := dedupVars(inst.NextVars)
	s := &Session{
		inst:       inst,
		backward:   false,
		projSpace:  cube.NewSpace(next),
		stateVars:  next,
		encodeTime: encodeTime,
		reg:        opts.Stats,
	}
	s.ps = newPoolSession(inst, s.projSpace, opts)
	return s, nil
}

// simplifyBase preprocesses the session's base CNF in place (it is a
// private clone, see trans.NewBaseInstance) when the caller opted in,
// freezing every variable a future Retarget step may constrain. The
// preprocessing cost is folded into the session's encode time — it is
// paid once and amortized over every step, like the encoding itself.
func simplifyBase(inst *trans.Instance, opts Options) {
	if !opts.Simplify {
		return
	}
	frozen := make([]bool, inst.F.NumVars)
	for _, vs := range [][]lit.Var{inst.StateVars, inst.InputVars, inst.NextVars} {
		for _, v := range vs {
			if int(v) < len(frozen) {
				frozen[v] = true
			}
		}
	}
	res := simplify.Run(inst.F, func(v lit.Var) bool { return frozen[v] }, simplify.Options{})
	if reg := opts.Stats; reg != nil && res.Stats.Applied {
		reg.Counter("incr.simplify-vars-eliminated").Add(uint64(res.Stats.VarsEliminated))
		reg.Counter("incr.simplify-clauses-subsumed").Add(uint64(res.Stats.ClausesSubsumed))
		reg.Counter("incr.simplify-lits-strengthened").Add(uint64(res.Stats.LitsStrengthened))
		reg.Counter("incr.simplify-resolvents-added").Add(uint64(res.Stats.ResolventsAdded))
		reg.Counter("incr.simplify-probe-failures").Add(uint64(res.Stats.ProbeFailures))
	}
}

func newPoolSession(inst *trans.Instance, space *cube.Space, opts Options) *pool.Session {
	co := opts.Core
	if co.IsZero() {
		co = core.DefaultOptions()
	}
	return pool.NewSession(inst.F, space, pool.Options{
		Workers: opts.Workers,
		Core:    co,
		Budget:  opts.Budget,
		Stats:   opts.Stats,
	})
}

// Close releases the session's resources: the worker pool's context is
// cancelled (stopping any budget-polling solver work), the open step's
// retarget state is dropped, and the solver/BDD state becomes
// unreachable as soon as the caller drops its Session reference. Close
// is idempotent; Step after Close returns ErrClosed. Like every other
// method it must be externally serialized (see the type comment) — it
// is the eviction hook an LRU session store calls once no step is in
// flight.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.cur = nil
	s.ps.Close()
}

// Closed reports whether Close has been called.
func (s *Session) Closed() bool { return s.closed }

// Manager is the persistent BDD manager step sets live in.
func (s *Session) Manager() *bdd.Manager { return s.ps.Manager() }

// ProjSpace is the projection space of Step sets (CNF variable ids).
func (s *Session) ProjSpace() *cube.Space { return s.projSpace }

// StateSpace is the instance's state space (CNF variable ids, latch
// names), the space frontier ISOPs are extracted over.
func (s *Session) StateSpace() *cube.Space { return s.inst.StateSpace }

// StateVars are the projection variables a state set ranges over.
func (s *Session) StateVars() []lit.Var { return s.stateVars }

// Instance exposes the underlying base instance.
func (s *Session) Instance() *trans.Instance { return s.inst }

// Workers reports the effective worker count.
func (s *Session) Workers() int { return s.ps.Workers() }

// Step retires the previous target (if any) and enumerates the current
// one. The cover must be position-aligned to the latch order; any space
// of the right width is accepted (RetargetCover semantics).
func (s *Session) Step(cover *cube.Cover) (*StepResult, error) {
	if s.closed {
		return nil, ErrClosed
	}
	out := &StepResult{}
	if s.cur != nil {
		out.Retire = s.ps.RetireGroup(s.cur.Act.Not(), s.cur.Vars)
		s.cur = nil
	}
	var st *trans.Step
	var err error
	if s.backward {
		st, err = s.inst.Retarget(cover, s.ps.NewVar)
	} else {
		st, err = s.inst.RetargetInit(cover, s.ps.NewVar)
	}
	if err != nil {
		return nil, err
	}
	s.ps.BeginGroup()
	ok := true
	for _, cl := range st.Clauses {
		ok = s.ps.AddGroupClause(cl...) && ok
	}
	s.cur = st
	out.ClausesAdded = len(st.Clauses)
	if !ok {
		// The base formula went UNSAT at the root — only possible when
		// the circuit CNF itself is inconsistent; report an empty step.
		out.Set = bdd.False
	} else {
		r := s.ps.Run([]lit.Lit{st.Act})
		out.Set = r.Set
		out.Stats = r.Stats
		out.Pool = r.Pool
		out.Aborted = r.Aborted
		out.Reason = r.Reason
	}
	s.steps++
	s.publish(out)
	return out, nil
}

// StateSet projects a Step set onto the state variables: backward
// sessions quantify out the input variables; forward sessions return the
// set unchanged (it already ranges over next-state variables only).
func (s *Session) StateSet(set bdd.Ref) bdd.Ref {
	if !s.backward {
		return set
	}
	return s.Manager().ExistsVars(set, s.quantVars)
}

// publish mirrors the per-step bookkeeping into the stats registry under
// the incr.* keys.
func (s *Session) publish(r *StepResult) {
	reg := s.reg
	if reg == nil {
		return
	}
	reg.Counter("incr.steps").Inc()
	reg.Counter("incr.clauses-added").Add(uint64(r.ClausesAdded))
	reg.Counter("incr.clauses-retired").Add(uint64(r.Retire.OrigRetired))
	reg.Counter("incr.learned-dropped").Add(uint64(r.Retire.LearnedDropped))
	reg.Counter("incr.act-vars-retired").Add(uint64(r.Retire.VarsRetired))
	reg.Counter("incr.memo-invalidated").Add(uint64(r.Retire.MemoInvalidated))
	reg.SetGauge("incr.learned-kept", int64(r.Retire.LearnedKept))
	reg.SetGauge("incr.learned-live", int64(s.ps.LearnedCount()))
	reg.SetGauge("incr.learned-live-lits", int64(s.ps.LearnedLits()))
	reg.SetGauge("incr.memo-size", int64(s.ps.MemoSize()))
	if s.steps > 1 {
		// Every step after the first reuses the one-time encoding the
		// fresh path would redo: credit its cost as time saved.
		reg.AddDuration("incr.encode-saved", s.encodeTime)
	}
}

// dedupVars drops repeated variables, keeping first occurrences (several
// latches can share one next-state signal).
func dedupVars(vars []lit.Var) []lit.Var {
	seen := make(map[lit.Var]bool, len(vars))
	out := make([]lit.Var, 0, len(vars))
	for _, v := range vars {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
