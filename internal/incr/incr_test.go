package incr_test

import (
	"testing"

	"allsatpre/internal/bdd"
	"allsatpre/internal/cube"
	"allsatpre/internal/gen"
	"allsatpre/internal/incr"
	"allsatpre/internal/preimage"
	"allsatpre/internal/trans"
)

// preCanon re-expresses a cover positionally over the canonical space.
func preCanon(space *cube.Space, cv *cube.Cover) *cube.Cover {
	out := cube.NewCover(space)
	for _, c := range cv.Cubes() {
		out.Add(c.Clone())
	}
	return out
}

// TestSessionStepMatchesFreshCompute drives one backward session through
// a sequence of unrelated targets and checks, per step, that the
// session's state set matches a fresh preimage.Compute of the same
// target — and that across the retargets a nonzero number of learned
// clauses survived (the whole point of keeping the solver alive).
func TestSessionStepMatchesFreshCompute(t *testing.T) {
	c := gen.SLike(gen.SLikeParams{Seed: 2, Inputs: 8, Latches: 8, Gates: 120})
	targets := []string{"X1XXXXXX", "XX0XXXXX", "1XXXXX0X", "XXXX10XX"}

	for _, workers := range []int{1, 4} {
		sess, err := incr.NewBackward(c, incr.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		kept := 0
		for i, pat := range targets {
			target := trans.TargetFromPatterns(8, pat)
			st, err := sess.Step(target)
			if err != nil {
				t.Fatal(err)
			}
			if st.Aborted {
				t.Fatalf("w%d step %d: spurious abort (%v)", workers, i, st.Reason)
			}
			kept += st.Retire.LearnedKept

			ref, err := preimage.Compute(c, target, preimage.Options{})
			if err != nil {
				t.Fatal(err)
			}
			// The session's ISOP of the quantified set and Compute's
			// projected cover are different covers of the same set:
			// compare sets and exact counts, not cube lists.
			stateSet := sess.StateSet(st.Set)
			count := sess.Manager().SatCountIn(stateSet, sess.StateVars())
			if count.Cmp(ref.Count) != 0 {
				t.Fatalf("w%d step %d: count %v, want %v", workers, i, count, ref.Count)
			}
			got := sess.Manager().ISOP(stateSet, sess.StateSpace())
			m := bdd.NewOrdered(ref.StateSpace.Vars())
			gotSet := m.FromCover(preCanon(ref.StateSpace, got))
			refSet := m.FromCover(ref.States)
			if gotSet != refSet {
				t.Fatalf("w%d step %d: state set differs from fresh Compute", workers, i)
			}
		}
		if kept == 0 {
			t.Errorf("w%d: no learned clauses survived any retarget", workers)
		}
		if sess.Workers() != workers {
			t.Errorf("w%d: session reports %d workers", workers, sess.Workers())
		}
		sess.Close()
	}
}

// TestSessionCloseContract pins the eviction hook the server's LRU
// store relies on: Close is idempotent, Closed reports it, and Step
// after Close fails with ErrClosed instead of touching torn-down state.
func TestSessionCloseContract(t *testing.T) {
	c := gen.SLike(gen.SLikeParams{Seed: 3, Inputs: 4, Latches: 4, Gates: 30})
	sess, err := incr.NewBackward(c, incr.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Closed() {
		t.Fatal("fresh session reports Closed")
	}
	if _, err := sess.Step(trans.TargetFromPatterns(4, "1XXX")); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	sess.Close() // idempotent
	if !sess.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if _, err := sess.Step(trans.TargetFromPatterns(4, "0XXX")); err != incr.ErrClosed {
		t.Fatalf("Step after Close: err = %v, want ErrClosed", err)
	}
}

// TestForwardSessionStepMatchesFreshImage does the same for the forward
// direction against preimage.Image.
func TestForwardSessionStepMatchesFreshImage(t *testing.T) {
	c := gen.SLike(gen.SLikeParams{Seed: 1, Inputs: 6, Latches: 6, Gates: 60})
	inits := []string{"000000", "X1XXXX", "10XXXX"}

	sess, err := incr.NewForward(c, incr.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for i, pat := range inits {
		init := trans.TargetFromPatterns(6, pat)
		st, err := sess.Step(init)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := preimage.Image(c, init, preimage.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Forward sets range over deduplicated next-state vars; compare
		// exact counts (cover expansion is exercised by the preimage
		// layer's own tests).
		got := sess.Manager().SatCountIn(st.Set, sess.StateVars())
		if got.Cmp(ref.Count) != 0 {
			t.Fatalf("init %d: image count %v, want %v", i, got, ref.Count)
		}
	}
}
