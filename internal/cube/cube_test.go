package cube

import (
	"math/rand"
	"testing"
	"testing/quick"

	"allsatpre/internal/lit"
)

func space(n int) *Space {
	vars := make([]lit.Var, n)
	for i := range vars {
		vars[i] = lit.Var(i)
	}
	return NewSpace(vars)
}

func TestSpaceBasics(t *testing.T) {
	s := space(4)
	if s.Size() != 4 {
		t.Fatal("size")
	}
	if s.PosOf(2) != 2 || s.PosOf(9) != -1 {
		t.Fatal("PosOf")
	}
	if s.Name(1) != "v1" {
		t.Errorf("Name = %q", s.Name(1))
	}
	ns := NewNamedSpace([]lit.Var{5, 6}, []string{"a", "b"})
	if ns.Name(0) != "a" || ns.Name(1) != "b" {
		t.Error("named space names")
	}
}

func TestSpacePanics(t *testing.T) {
	mustPanic(t, func() { NewSpace([]lit.Var{1, 1}) })
	mustPanic(t, func() { NewNamedSpace([]lit.Var{1}, []string{"a", "b"}) })
	s := space(2)
	mustPanic(t, func() { s.CubeOf("1") })
	mustPanic(t, func() { s.CubeOf("1z") })
	mustPanic(t, func() { NewCover(s).Add(Cube{lit.True}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestCubeOfAndString(t *testing.T) {
	s := space(5)
	c := s.CubeOf("01X-x")
	if c.String() != "01XXX" {
		t.Errorf("String = %q", c.String())
	}
	if c.FreeVars() != 3 || c.FixedVars() != 2 {
		t.Error("free/fixed counts")
	}
	if c.Minterms() != 8 {
		t.Errorf("Minterms = %d", c.Minterms())
	}
}

func TestFromModelAndAssign(t *testing.T) {
	s := NewSpace([]lit.Var{3, 1})
	c := s.FromModel([]bool{false, true, false, true})
	if c.String() != "11" {
		t.Errorf("FromModel = %q", c.String())
	}
	// Model shorter than variables: missing vars read false.
	c2 := s.FromModel([]bool{false, true})
	if c2.String() != "01" {
		t.Errorf("FromModel short = %q", c2.String())
	}
	a := make([]lit.Tern, 4)
	a[3] = lit.False
	c3 := s.FromAssign(a)
	if c3.String() != "0X" {
		t.Errorf("FromAssign = %q", c3.String())
	}
}

func TestContainsIntersectDisjoint(t *testing.T) {
	s := space(4)
	big := s.CubeOf("1XXX")
	small := s.CubeOf("10X1")
	if !big.Contains(small) || small.Contains(big) {
		t.Error("containment")
	}
	if got := big.Intersect(small); got == nil || got.String() != "10X1" {
		t.Errorf("intersect = %v", got)
	}
	other := s.CubeOf("0XXX")
	if big.Intersect(other) != nil {
		t.Error("disjoint cubes should not intersect")
	}
	if !big.Disjoint(other) || big.Disjoint(small) {
		t.Error("Disjoint mismatch")
	}
	x := s.CubeOf("X1XX")
	got := big.Intersect(x)
	if got == nil || got.String() != "11XX" {
		t.Errorf("intersect with free = %v", got)
	}
}

func TestContainsMinterm(t *testing.T) {
	s := space(3)
	c := s.CubeOf("1X0")
	if !c.ContainsMinterm([]bool{true, false, false}) {
		t.Error("should contain 100")
	}
	if !c.ContainsMinterm([]bool{true, true, false}) {
		t.Error("should contain 110")
	}
	if c.ContainsMinterm([]bool{true, true, true}) {
		t.Error("should not contain 111")
	}
}

func TestMintermsOverflowPanics(t *testing.T) {
	s := space(63)
	mustPanic(t, func() { s.FullCube().Minterms() })
}

func TestCoverReduce(t *testing.T) {
	s := space(3)
	cv := NewCover(s)
	cv.Add(s.CubeOf("1XX"))
	cv.Add(s.CubeOf("11X")) // contained
	cv.Add(s.CubeOf("1XX")) // duplicate
	cv.Add(s.CubeOf("0X0"))
	cv.Reduce()
	if cv.Len() != 2 {
		t.Fatalf("Reduce left %d cubes: %v", cv.Len(), cv.SortedKeys())
	}
}

func bruteCount(cv *Cover) uint64 {
	n := cv.Space().Size()
	var cnt uint64
	m := make([]bool, n)
	for x := 0; x < 1<<uint(n); x++ {
		for i := 0; i < n; i++ {
			m[i] = x&(1<<uint(i)) != 0
		}
		if cv.Contains(m) {
			cnt++
		}
	}
	return cnt
}

func randomCover(rng *rand.Rand, s *Space, nCubes int) *Cover {
	cv := NewCover(s)
	for i := 0; i < nCubes; i++ {
		c := s.FullCube()
		for j := range c {
			switch rng.Intn(3) {
			case 0:
				c[j] = lit.True
			case 1:
				c[j] = lit.False
			}
		}
		cv.Add(c)
	}
	return cv
}

func TestCountMintermsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 300; iter++ {
		s := space(1 + rng.Intn(8))
		cv := randomCover(rng, s, rng.Intn(6))
		want := bruteCount(cv)
		if got := cv.CountMinterms(); got != want {
			t.Fatalf("iter %d: CountMinterms = %d, want %d\n%s", iter, got, want, cv)
		}
	}
}

func TestCountMintermsAfterReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 100; iter++ {
		s := space(2 + rng.Intn(6))
		cv := randomCover(rng, s, 1+rng.Intn(5))
		want := cv.CountMinterms()
		cv.Reduce()
		if got := cv.CountMinterms(); got != want {
			t.Fatalf("iter %d: Reduce changed minterms %d -> %d", iter, want, got)
		}
	}
}

func TestCoverEqual(t *testing.T) {
	s := space(3)
	a := NewCover(s)
	a.Add(s.CubeOf("1XX"))
	b := NewCover(s)
	b.Add(s.CubeOf("11X"))
	b.Add(s.CubeOf("10X"))
	if !a.Equal(b) {
		t.Error("split cover should equal whole cube")
	}
	b.Add(s.CubeOf("0X0"))
	if a.Equal(b) {
		t.Error("covers differ after adding a cube")
	}
	c := NewCover(space(2))
	if a.Equal(c) {
		t.Error("different spaces cannot be equal")
	}
}

func TestCoverEqualRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 120; iter++ {
		s := space(2 + rng.Intn(6))
		a := randomCover(rng, s, rng.Intn(5))
		b := randomCover(rng, s, rng.Intn(5))
		want := true
		n := s.Size()
		m := make([]bool, n)
		for x := 0; x < 1<<uint(n) && want; x++ {
			for i := 0; i < n; i++ {
				m[i] = x&(1<<uint(i)) != 0
			}
			if a.Contains(m) != b.Contains(m) {
				want = false
			}
		}
		if got := a.Equal(b); got != want {
			t.Fatalf("iter %d: Equal = %v, want %v\nA:\n%sB:\n%s", iter, got, want, a, b)
		}
	}
}

func TestSharpProperties(t *testing.T) {
	// For random cubes w, p: sharp(w,p) fragments are disjoint from p,
	// pairwise disjoint, contained in w, and together with w∩p cover w.
	f := func(wRaw, pRaw [6]uint8) bool {
		s := space(6)
		w, p := s.FullCube(), s.FullCube()
		for i := 0; i < 6; i++ {
			w[i] = lit.Tern(wRaw[i] % 3)
			p[i] = lit.Tern(pRaw[i] % 3)
		}
		frags := sharp(w, p)
		var total uint64
		for i, f1 := range frags {
			if !w.Contains(f1) {
				return false
			}
			if !f1.Disjoint(p) {
				return false
			}
			for j := i + 1; j < len(frags); j++ {
				if !f1.Disjoint(frags[j]) {
					return false
				}
			}
			total += f1.Minterms()
		}
		inter := w.Intersect(p)
		var interCnt uint64
		if inter != nil {
			interCnt = inter.Minterms()
		}
		return total+interCnt == w.Minterms()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSortedKeysStable(t *testing.T) {
	s := space(2)
	cv := NewCover(s)
	cv.Add(s.CubeOf("1X"))
	cv.Add(s.CubeOf("01"))
	k := cv.SortedKeys()
	if len(k) != 2 || k[0] != "01" || k[1] != "1X" {
		t.Errorf("SortedKeys = %v", k)
	}
}
