// Package cube implements cubes (partial assignments) and cube covers over
// a fixed, ordered variable space. Preimage engines report state sets
// either as ROBDDs or as covers of cubes; this package provides the cover
// half: containment, intersection, disjoint decomposition, and exact
// minterm counting.
package cube

import (
	"fmt"
	"sort"
	"strings"

	"allsatpre/internal/lit"
)

// Space is an ordered list of variables over which cubes are expressed.
type Space struct {
	vars  []lit.Var
	index map[lit.Var]int
	names []string // optional display names, aligned with vars
}

// NewSpace builds a space over the given variables (order is significant).
// Duplicate variables panic.
func NewSpace(vars []lit.Var) *Space {
	s := &Space{
		vars:  append([]lit.Var(nil), vars...),
		index: make(map[lit.Var]int, len(vars)),
	}
	for i, v := range s.vars {
		if _, dup := s.index[v]; dup {
			panic(fmt.Sprintf("cube: duplicate variable %v in space", v))
		}
		s.index[v] = i
	}
	return s
}

// NewNamedSpace builds a space with display names for each variable.
func NewNamedSpace(vars []lit.Var, names []string) *Space {
	if len(names) != len(vars) {
		panic("cube: names/vars length mismatch")
	}
	s := NewSpace(vars)
	s.names = append([]string(nil), names...)
	return s
}

// Size returns the number of variables in the space.
func (s *Space) Size() int { return len(s.vars) }

// Vars returns the variables of the space in order (shared slice; do not
// modify).
func (s *Space) Vars() []lit.Var { return s.vars }

// Name returns the display name of position i.
func (s *Space) Name(i int) string {
	if s.names != nil {
		return s.names[i]
	}
	return s.vars[i].String()
}

// PosOf returns the position of variable v in the space, or -1.
func (s *Space) PosOf(v lit.Var) int {
	if i, ok := s.index[v]; ok {
		return i
	}
	return -1
}

// Cube is a partial assignment over a space: one ternary value per
// position. Unknown positions are free (don't-care) variables.
type Cube []lit.Tern

// FullCube returns a cube with every position free.
func (s *Space) FullCube() Cube { return make(Cube, len(s.vars)) }

// CubeOf builds a cube from a "01X-" string ('-' and 'x' also mean free).
func (s *Space) CubeOf(pattern string) Cube {
	if len(pattern) != len(s.vars) {
		panic(fmt.Sprintf("cube: pattern %q has %d positions, space has %d",
			pattern, len(pattern), len(s.vars)))
	}
	c := s.FullCube()
	for i, r := range pattern {
		switch r {
		case '0':
			c[i] = lit.False
		case '1':
			c[i] = lit.True
		case 'X', 'x', '-':
			c[i] = lit.Unknown
		default:
			panic(fmt.Sprintf("cube: bad pattern char %q", r))
		}
	}
	return c
}

// FromModel projects a total model (indexed by variable) onto the space.
func (s *Space) FromModel(model []bool) Cube {
	c := s.FullCube()
	for i, v := range s.vars {
		if int(v) < len(model) {
			c[i] = lit.TernOf(model[v])
		} else {
			c[i] = lit.False
		}
	}
	return c
}

// FromAssign projects a ternary assignment (indexed by variable) onto the
// space, keeping Unknown entries free.
func (s *Space) FromAssign(assign []lit.Tern) Cube {
	c := s.FullCube()
	for i, v := range s.vars {
		if int(v) < len(assign) {
			c[i] = assign[v]
		}
	}
	return c
}

// Clone returns a copy of the cube.
func (c Cube) Clone() Cube {
	out := make(Cube, len(c))
	copy(out, c)
	return out
}

// String renders the cube as a 01X pattern.
func (c Cube) String() string {
	var sb strings.Builder
	for _, t := range c {
		switch t {
		case lit.True:
			sb.WriteByte('1')
		case lit.False:
			sb.WriteByte('0')
		default:
			sb.WriteByte('X')
		}
	}
	return sb.String()
}

// FreeVars returns the number of free (don't-care) positions.
func (c Cube) FreeVars() int {
	n := 0
	for _, t := range c {
		if t == lit.Unknown {
			n++
		}
	}
	return n
}

// FixedVars returns the number of assigned positions.
func (c Cube) FixedVars() int { return len(c) - c.FreeVars() }

// Minterms returns the number of minterms covered (2^free). Panics above
// 62 free variables.
func (c Cube) Minterms() uint64 {
	f := c.FreeVars()
	if f > 62 {
		panic("cube: minterm count overflow")
	}
	return uint64(1) << uint(f)
}

// Contains reports whether c covers d (every minterm of d is in c). Both
// must be over the same space.
func (c Cube) Contains(d Cube) bool {
	for i := range c {
		if c[i] != lit.Unknown && c[i] != d[i] {
			return false
		}
	}
	return true
}

// ContainsMinterm reports whether the total assignment m (one bool per
// position) lies in c.
func (c Cube) ContainsMinterm(m []bool) bool {
	for i := range c {
		if c[i] != lit.Unknown && c[i] != lit.TernOf(m[i]) {
			return false
		}
	}
	return true
}

// Intersect returns the conjunction of two cubes, or nil if they are
// disjoint.
func (c Cube) Intersect(d Cube) Cube {
	out := make(Cube, len(c))
	for i := range c {
		switch {
		case c[i] == lit.Unknown:
			out[i] = d[i]
		case d[i] == lit.Unknown || d[i] == c[i]:
			out[i] = c[i]
		default:
			return nil
		}
	}
	return out
}

// Disjoint reports whether the cubes share no minterm.
func (c Cube) Disjoint(d Cube) bool {
	for i := range c {
		if c[i] != lit.Unknown && d[i] != lit.Unknown && c[i] != d[i] {
			return true
		}
	}
	return false
}

// Key returns a canonical comparable key for map deduplication.
func (c Cube) Key() string { return c.String() }

// less orders cubes lexicographically by pattern (0 < 1 < X).
func (c Cube) less(d Cube) bool {
	for i := range c {
		if c[i] != d[i] {
			return c[i] < d[i]
		}
	}
	return false
}

// Cover is a set (disjunction) of cubes over one space.
type Cover struct {
	space *Space
	cubes []Cube
}

// NewCover creates an empty cover over the space.
func NewCover(s *Space) *Cover { return &Cover{space: s} }

// Space returns the cover's variable space.
func (cv *Cover) Space() *Space { return cv.space }

// Add appends a cube (no containment check).
func (cv *Cover) Add(c Cube) {
	if len(c) != cv.space.Size() {
		panic("cube: cube/space size mismatch")
	}
	cv.cubes = append(cv.cubes, c)
}

// Len returns the number of cubes.
func (cv *Cover) Len() int { return len(cv.cubes) }

// Cubes returns the underlying cube slice (shared; do not modify).
func (cv *Cover) Cubes() []Cube { return cv.cubes }

// Contains reports whether any cube of the cover contains the minterm.
func (cv *Cover) Contains(m []bool) bool {
	for _, c := range cv.cubes {
		if c.ContainsMinterm(m) {
			return true
		}
	}
	return false
}

// Reduce removes duplicate cubes and cubes contained in another cube
// (single-cube containment only, not multi-cube coverage).
func (cv *Cover) Reduce() {
	sort.Slice(cv.cubes, func(i, j int) bool {
		fi, fj := cv.cubes[i].FreeVars(), cv.cubes[j].FreeVars()
		if fi != fj {
			return fi > fj // bigger cubes first
		}
		return cv.cubes[i].less(cv.cubes[j])
	})
	kept := cv.cubes[:0]
	for _, c := range cv.cubes {
		contained := false
		for _, k := range kept {
			if k.Contains(c) {
				contained = true
				break
			}
		}
		if !contained {
			kept = append(kept, c)
		}
	}
	cv.cubes = kept
}

// CountMinterms returns the exact number of minterms covered, computed by
// disjointing the cover (cube-by-cube sharp). Exponential in the worst
// case but fast on the covers produced by the preimage engines. Panics
// above 62 variables.
func (cv *Cover) CountMinterms() uint64 {
	if cv.space.Size() > 62 {
		panic("cube: CountMinterms overflow risk above 62 variables")
	}
	var total uint64
	for ci, c := range cv.cubes {
		// Subtract every earlier cube from c, leaving disjoint fragments.
		work := []Cube{c.Clone()}
		for pi := 0; pi < ci && len(work) > 0; pi++ {
			prev := cv.cubes[pi]
			var next []Cube
			for _, w := range work {
				next = append(next, sharp(w, prev)...)
			}
			work = next
		}
		for _, w := range work {
			total += w.Minterms()
		}
	}
	return total
}

// sharp computes w \ p as a list of disjoint cubes.
func sharp(w, p Cube) []Cube {
	if w.Disjoint(p) {
		return []Cube{w}
	}
	var out []Cube
	cur := w.Clone()
	for i := range w {
		if p[i] == lit.Unknown || w[i] != lit.Unknown {
			continue
		}
		// Split cur on variable i: the half disagreeing with p survives.
		frag := cur.Clone()
		frag[i] = p[i].Not()
		out = append(out, frag)
		cur[i] = p[i]
	}
	// cur is now w ∩ p (on the free-var positions); if w and p conflicted
	// on a fixed position we'd have returned above, so cur ⊆ p and is
	// dropped entirely.
	return out
}

// Equal reports whether two covers denote the same set of minterms, by
// mutual difference checks on up to 62 variables.
func (cv *Cover) Equal(other *Cover) bool {
	if cv.space.Size() != other.space.Size() {
		return false
	}
	return cv.coversAll(other) && other.coversAll(cv)
}

// coversAll reports whether every minterm of other is contained in cv.
func (cv *Cover) coversAll(other *Cover) bool {
	for _, c := range other.cubes {
		frags := []Cube{c.Clone()}
		for _, mine := range cv.cubes {
			var next []Cube
			for _, f := range frags {
				next = append(next, sharp(f, mine)...)
			}
			frags = next
			if len(frags) == 0 {
				break
			}
		}
		if len(frags) > 0 {
			return false
		}
	}
	return true
}

// String lists the cubes one per line.
func (cv *Cover) String() string {
	var sb strings.Builder
	for _, c := range cv.cubes {
		sb.WriteString(c.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SortedKeys returns the cube patterns sorted, for stable comparison in
// tests and tools.
func (cv *Cover) SortedKeys() []string {
	keys := make([]string, len(cv.cubes))
	for i, c := range cv.cubes {
		keys[i] = c.Key()
	}
	sort.Strings(keys)
	return keys
}
