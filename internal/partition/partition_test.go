package partition

import (
	"testing"

	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
)

func space(n int) *cube.Space {
	vs := make([]lit.Var, n)
	for i := range vs {
		vs[i] = lit.Var(i)
	}
	return cube.NewSpace(vs)
}

func TestSplitDisjointAndComplete(t *testing.T) {
	sp := space(6)
	for k := 0; k <= 6; k++ {
		subs := Split(sp, k)
		if len(subs) != 1<<uint(k) {
			t.Fatalf("k=%d: %d subcubes, want %d", k, len(subs), 1<<uint(k))
		}
		// Every full assignment of the space belongs to exactly one subcube.
		for x := 0; x < 64; x++ {
			hits := 0
			for _, s := range subs {
				mask := uint64(1)<<uint(s.Depth) - 1
				if uint64(x)&mask == s.Path {
					hits++
				}
			}
			if hits != 1 {
				t.Fatalf("k=%d x=%d: covered by %d subcubes", k, x, hits)
			}
		}
	}
}

func TestSplitClamps(t *testing.T) {
	sp := space(3)
	if got := len(Split(sp, 10)); got != 8 {
		t.Fatalf("oversized k: %d subcubes, want 8", got)
	}
	if got := len(Split(sp, -1)); got != 1 {
		t.Fatalf("negative k: %d subcubes, want 1", got)
	}
}

func TestChildrenPartitionParent(t *testing.T) {
	sp := space(5)
	s := Subcube{Path: 0b101, Depth: 3}
	lo, hi, ok := s.Children(sp)
	if !ok {
		t.Fatal("split refused")
	}
	if lo.Depth != 4 || hi.Depth != 4 {
		t.Fatalf("child depths %d/%d", lo.Depth, hi.Depth)
	}
	if lo.Path != 0b0101 || hi.Path != 0b1101 {
		t.Fatalf("child paths %b/%b", lo.Path, hi.Path)
	}
	// Exhausted space refuses to split.
	full := Subcube{Path: 0, Depth: 5}
	if _, _, ok := full.Children(sp); ok {
		t.Fatal("split past the space size")
	}
}

func TestAssumptionsMatchCube(t *testing.T) {
	sp := space(4)
	s := Subcube{Path: 0b10, Depth: 3} // pos0=0, pos1=1, pos2=0
	as := s.Assumptions(sp, nil)
	if len(as) != 3 {
		t.Fatalf("%d assumptions, want 3", len(as))
	}
	want := []lit.Lit{lit.Neg(0), lit.Pos(1), lit.Neg(2)}
	for i, l := range as {
		if l != want[i] {
			t.Fatalf("assumption %d = %v, want %v", i, l, want[i])
		}
	}
	if got := s.Cube(sp).String(); got != "010X" {
		t.Fatalf("cube %q, want 010X", got)
	}
}

func TestPrefixDepth(t *testing.T) {
	sp := space(20)
	if d := PrefixDepth(sp, 1, 4); d != 0 {
		t.Fatalf("1 worker: depth %d, want 0", d)
	}
	if d := PrefixDepth(sp, 4, 4); d != 4 {
		t.Fatalf("4 workers x4: depth %d, want 4 (16 subcubes)", d)
	}
	if d := PrefixDepth(space(2), 8, 4); d != 2 {
		t.Fatalf("small space: depth %d, want 2", d)
	}
}

func TestFailedPatternPrunes(t *testing.T) {
	sp := space(6)
	// Failure {pos1=1, pos3=0}.
	p, ok := PatternOf(sp, []lit.Lit{lit.Pos(1), lit.Neg(3)})
	if !ok {
		t.Fatal("pattern rejected")
	}
	match := Subcube{Path: 0b0010, Depth: 4}  // pos1=1, pos3=0
	differ := Subcube{Path: 0b1010, Depth: 4} // pos3=1
	short := Subcube{Path: 0b10, Depth: 2}    // pos3 still free
	if !p.Prunes(match) {
		t.Fatal("matching subcube not pruned")
	}
	if p.Prunes(differ) {
		t.Fatal("disagreeing subcube pruned")
	}
	if p.Prunes(short) {
		t.Fatal("subcube with the position free pruned")
	}
	// The empty pattern (global UNSAT) prunes everything.
	var empty FailedPattern
	if !empty.Prunes(match) || !empty.Prunes(short) {
		t.Fatal("empty pattern must prune every subcube")
	}
	// Variables outside the space cannot be indexed.
	if _, ok := PatternOf(sp, []lit.Lit{lit.Pos(63)}); ok {
		t.Fatal("out-of-space literal accepted")
	}
}
