// Package partition splits a projection space into guiding-path subcubes
// for parallel enumeration. A subcube fixes the first Depth variables of
// the fixed projection order to the values in Path; because the paper's
// decision procedure branches on exactly that order, each subcube is an
// independent subproblem whose solution sets are disjoint by
// construction, and the union over any full split is the whole space.
//
// The pool starts from a static prefix split (Split) sized by
// PrefixDepth, and re-splits any subcube whose enumeration exceeds the
// work threshold (Children), descending one more order position per
// split. Both operations preserve the disjoint-cover invariant, so the
// merged result is identical for every worker count.
package partition

import (
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
)

// MaxDepth bounds how many leading projection variables a subcube can
// fix. Paths are packed into a uint64 (bit i = value of order position
// i), and the pool also encodes (Path, Depth) into a single word for its
// lock-free deque, so the bound is well under 64. Splitting beyond 48
// positions would mean 2^48 outstanding subcubes — re-splitting simply
// stops there.
const MaxDepth = 48

// Subcube is one guiding-path work unit: the assignment Path to the
// first Depth variables of the projection order. The zero Subcube is the
// whole space.
type Subcube struct {
	Path  uint64
	Depth int
}

// Split returns the complete static prefix split at depth k: 2^k
// pairwise-disjoint subcubes covering the whole space. k is clamped to
// [0, min(space.Size(), MaxDepth)].
func Split(space *cube.Space, k int) []Subcube {
	if k > space.Size() {
		k = space.Size()
	}
	if k > MaxDepth {
		k = MaxDepth
	}
	if k < 0 {
		k = 0
	}
	out := make([]Subcube, 1<<uint(k))
	for i := range out {
		out[i] = Subcube{Path: uint64(i), Depth: k}
	}
	return out
}

// Children splits the subcube on the next projection variable in order,
// returning the two disjoint halves. ok is false when the subcube cannot
// be split further (every position fixed, or MaxDepth reached).
func (s Subcube) Children(space *cube.Space) (lo, hi Subcube, ok bool) {
	if s.Depth >= space.Size() || s.Depth >= MaxDepth {
		return s, s, false
	}
	lo = Subcube{Path: s.Path, Depth: s.Depth + 1}
	hi = Subcube{Path: s.Path | 1<<uint(s.Depth), Depth: s.Depth + 1}
	return lo, hi, true
}

// Assumptions renders the subcube as assumption literals over the
// projection variables, appended to buf (pass buf[:0] to reuse).
func (s Subcube) Assumptions(space *cube.Space, buf []lit.Lit) []lit.Lit {
	vars := space.Vars()
	for i := 0; i < s.Depth; i++ {
		buf = append(buf, lit.New(vars[i], s.Path&(1<<uint(i)) == 0))
	}
	return buf
}

// Cube renders the subcube in the space's cube representation (free
// positions beyond Depth).
func (s Subcube) Cube(space *cube.Space) cube.Cube {
	c := space.FullCube()
	for i := 0; i < s.Depth; i++ {
		if s.Path&(1<<uint(i)) != 0 {
			c[i] = lit.True
		} else {
			c[i] = lit.False
		}
	}
	return c
}

// PrefixDepth picks the static split depth for a worker count: the
// smallest k with 2^k >= workers*oversub subcubes, clamped to the space.
// Oversubscription (oversub <= 0 selects 4) gives the stealing pool
// enough independent units to balance uneven subcube costs before
// dynamic re-splitting has to kick in.
func PrefixDepth(space *cube.Space, workers, oversub int) int {
	if workers <= 1 {
		return 0
	}
	if oversub <= 0 {
		oversub = 4
	}
	want := workers * oversub
	k := 0
	for 1<<uint(k) < want && k < MaxDepth {
		k++
	}
	if k > space.Size() {
		k = space.Size()
	}
	return k
}

// FailedPattern is a partial assignment over the first MaxDepth order
// positions, recording a failed-assumption subset reported by the
// enumerator: every subcube that agrees with it is UNSAT too. The zero
// pattern (empty subset) matches everything — the formula itself is
// UNSAT.
type FailedPattern struct {
	Mask, Bits uint64
}

// PatternOf converts failed-assumption literals back into a pattern.
// ok is false when a literal lies outside the first MaxDepth positions
// of the order (it cannot be indexed into a path word, so no pruning).
func PatternOf(space *cube.Space, failed []lit.Lit) (FailedPattern, bool) {
	var p FailedPattern
	for _, l := range failed {
		pos := space.PosOf(l.Var())
		if pos < 0 || pos >= MaxDepth {
			return FailedPattern{}, false
		}
		p.Mask |= 1 << uint(pos)
		if !l.Sign() {
			p.Bits |= 1 << uint(pos)
		}
	}
	return p, true
}

// Prunes reports whether the subcube is subsumed by the pattern: every
// position the pattern fixes is fixed to the same value by the subcube.
func (p FailedPattern) Prunes(s Subcube) bool {
	fixed := uint64(1)<<uint(s.Depth) - 1
	if s.Depth >= 64 {
		fixed = ^uint64(0)
	}
	return p.Mask&^fixed == 0 && s.Path&p.Mask == p.Bits
}
