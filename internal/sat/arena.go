package sat

import (
	"math"

	"allsatpre/internal/lit"
)

// Clause arena: all clauses live in one growable []uint32 backing store,
// MiniSat-style. A clause is identified by a cref — the 32-bit word
// offset of its header — so the hot propagation/analysis paths chase no
// Go pointers and neighbouring clauses share cache lines. The layout per
// clause is
//
//	word 0:            size<<8 | flags   (learnt, deleted, used, tier, reloc)
//	word 1 (learnt):   float32 activity bits
//	word 2 (learnt):   LBD at learn time (improved on use)
//	words hdr..hdr+sz: the literals, one uint32 each
//
// Problem clauses carry a one-word header (no activity/LBD); learnt
// clauses three. Deleted clauses are tombstoned in place (the deleted
// flag) and their words counted as wasted; garbageCollect compacts the
// store when waste passes a threshold, relocating every live clause
// leftward into a fresh backing array and forwarding old crefs through
// the tombstoned headers, so watchers, reasons, and external clause
// lists can be retargeted in one sweep.
type cref uint32

// crefUndef is the nil clause reference (decision/unset reasons).
const crefUndef cref = ^cref(0)

const (
	caLearnt  uint32 = 1 << 0
	caDeleted uint32 = 1 << 1
	// caUsed is the recently-used protection bit: set when the clause
	// participates in conflict analysis (and at learn time), cleared by
	// reduceDB — a used clause survives the round it was useful in.
	caUsed  uint32 = 1 << 2
	caReloc uint32 = 1 << 5

	caTierShift uint32 = 3
	caTierMask  uint32 = 3 << caTierShift
	caSizeShift uint32 = 8
)

// Learnt tiers (Audemard & Simon "glue" tiering). tierNone marks problem
// clauses; core clauses (LBD ≤ 2, and every binary) are kept forever;
// tier2 clauses are demoted to local when unused for a full reduce
// round; local clauses face activity-sorted deletion each round.
const (
	tierNone uint32 = iota
	tierCore
	tierTwo
	tierLocal
)

// tier2LBD is the inclusive LBD bound for the middle tier.
const tier2LBD = 6

// tierFor assigns the initial tier of a learnt clause.
func tierFor(size, lbd int) uint32 {
	switch {
	case size <= 2 || lbd <= 2:
		return tierCore
	case lbd <= tier2LBD:
		return tierTwo
	default:
		return tierLocal
	}
}

type arena struct {
	data   []uint32
	wasted uint32 // words held by deleted clauses, reclaimed by GC
}

// hdrWords is the header length of a clause with header word h.
func hdrWords(h uint32) cref {
	if h&caLearnt != 0 {
		return 3
	}
	return 1
}

// alloc appends a clause and returns its cref. len(ls) must be ≥ 2
// (units propagate instead of being stored).
func (a *arena) alloc(ls []lit.Lit, learnt bool) cref {
	c := cref(len(a.data))
	h := uint32(len(ls)) << caSizeShift
	if learnt {
		h |= caLearnt
		a.data = append(a.data, h, 0, 0)
	} else {
		a.data = append(a.data, h)
	}
	for _, l := range ls {
		a.data = append(a.data, uint32(l))
	}
	return c
}

func (a *arena) size(c cref) int { return int(a.data[c] >> caSizeShift) }

// lits returns the clause's literal words as a mutable view. The view is
// invalidated by any alloc or garbageCollect.
func (a *arena) lits(c cref) []uint32 {
	h := a.data[c]
	base := c + hdrWords(h)
	return a.data[base : base+cref(h>>caSizeShift)]
}

func (a *arena) lit(c cref, i int) lit.Lit {
	return lit.Lit(a.data[c+hdrWords(a.data[c])+cref(i)])
}

func (a *arena) isLearnt(c cref) bool  { return a.data[c]&caLearnt != 0 }
func (a *arena) isDeleted(c cref) bool { return a.data[c]&caDeleted != 0 }
func (a *arena) isUsed(c cref) bool    { return a.data[c]&caUsed != 0 }
func (a *arena) setUsed(c cref)        { a.data[c] |= caUsed }
func (a *arena) clearUsed(c cref)      { a.data[c] &^= caUsed }

func (a *arena) tier(c cref) uint32 { return a.data[c] & caTierMask >> caTierShift }
func (a *arena) setTier(c cref, t uint32) {
	a.data[c] = a.data[c]&^caTierMask | t<<caTierShift
}

func (a *arena) lbd(c cref) int       { return int(a.data[c+2]) }
func (a *arena) setLBD(c cref, d int) { a.data[c+2] = uint32(d) }

func (a *arena) activity(c cref) float64 {
	return float64(math.Float32frombits(a.data[c+1]))
}

func (a *arena) setActivity(c cref, v float64) {
	a.data[c+1] = math.Float32bits(float32(v))
}

// words is the clause's total footprint (header + literals).
func (a *arena) words(c cref) cref {
	h := a.data[c]
	return hdrWords(h) + cref(h>>caSizeShift)
}

// setDeleted tombstones a clause and books its words as wasted.
func (a *arena) setDeleted(c cref) {
	if a.data[c]&caDeleted != 0 {
		return
	}
	a.data[c] |= caDeleted
	a.wasted += uint32(a.words(c))
}

// litsBuf copies the clause's literals into dst[:0].
func (a *arena) litsBuf(c cref, dst []lit.Lit) []lit.Lit {
	dst = dst[:0]
	for _, w := range a.lits(c) {
		dst = append(dst, lit.Lit(w))
	}
	return dst
}

// gcNeeded reports whether wasted space justifies a compaction (> 20 %
// of the store, MiniSat's default).
func (a *arena) gcNeeded() bool {
	return a.wasted > 0 && uint64(a.wasted)*5 > uint64(len(a.data))
}

// reloc moves clause c into `to` (once — later calls return the
// forwarded cref) and returns its new address. Watch/reason holders drop
// deleted clauses instead of relocating; a deleted clause relocated for
// index stability keeps its tombstone and is booked as waste in `to`.
func (a *arena) reloc(c cref, to *arena) cref {
	h := a.data[c]
	if h&caReloc != 0 {
		return cref(a.data[c+1])
	}
	n := a.words(c)
	nc := cref(len(to.data))
	to.data = append(to.data, a.data[c:c+n]...)
	if h&caDeleted != 0 {
		to.wasted += uint32(n)
	}
	// Forward: mark the old header and stash the new cref in word 1
	// (activity word for learnts, first literal otherwise — both are dead
	// now; every read goes through the forward).
	a.data[c] |= caReloc
	a.data[c+1] = uint32(nc)
	return nc
}

// garbageCollect compacts the arena: every live clause referenced from
// the solver's watch lists, reasons, and clause lists is copied into a
// fresh backing store and the references are retargeted in place. The
// problem-clause list is updated through its backing array, so external
// holders of the same slice (ChronoEnum) stay valid. Runs at any
// decision level; reasons of deleted clauses (possible only for level-0
// assignments whose antecedent was simplified away, which analysis never
// dereferences) are cleared to crefUndef.
func (s *Solver) garbageCollect() {
	to := arena{data: make([]uint32, 0, len(s.ca.data)-int(s.ca.wasted))}
	// Binary watchers: binaries are only deleted by Simplify, which
	// sweeps them eagerly, but stay defensive and drop tombstones here
	// too.
	for li := range s.binWatches {
		ws := s.binWatches[li]
		out := ws[:0]
		for _, w := range ws {
			if s.ca.isDeleted(cref(w.c)) {
				continue
			}
			w.c = uint32(s.ca.reloc(cref(w.c), &to))
			out = append(out, w)
		}
		s.binWatches[li] = out
	}
	// Long watchers: deleted clauses are dropped lazily during
	// propagation; drop the stragglers now so nothing dead survives.
	for li := range s.watches {
		ws := s.watches[li]
		out := ws[:0]
		for _, w := range ws {
			if s.ca.isDeleted(cref(w.c)) {
				continue
			}
			w.c = uint32(s.ca.reloc(cref(w.c), &to))
			out = append(out, w)
		}
		s.watches[li] = out
	}
	// Reasons of everything currently on the trail.
	for _, l := range s.trail {
		v := l.Var()
		if r := s.reason[v]; r != crefUndef {
			if s.ca.isDeleted(r) {
				s.reason[v] = crefUndef
			} else {
				s.reason[v] = s.ca.reloc(r, &to)
			}
		}
	}
	// Problem-clause list: updated in place, position-preserving, through
	// the backing array — ChronoEnum's shared view and its index-based
	// occurrence lists stay valid. Deleted entries (possible only between
	// a Simplify mark and its own filter, never here) are carried over as
	// tombstones rather than dropped, so indices never shift.
	for i, c := range s.clauses {
		s.clauses[i] = s.ca.reloc(c, &to)
	}
	// Learnt list: nothing holds indices into it, so drop tombstones.
	out := s.learnts[:0]
	for _, c := range s.learnts {
		if s.ca.isDeleted(c) {
			continue
		}
		out = append(out, s.ca.reloc(c, &to))
	}
	s.learnts = out
	s.stats.ArenaGCs++
	s.ca = to
}
