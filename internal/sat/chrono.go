package sat

import (
	"allsatpre/internal/budget"
	"allsatpre/internal/lit"
)

// ChronoEnum enumerates the projections of a formula's models as
// pairwise-disjoint cubes without ever adding a blocking clause, in the
// style of Spallitta/Sebastiani/Biere's disjoint partial enumeration:
// after each emitted cube (and after each conflict) the search advances by
// flipping the deepest relevant decision in place — chronological
// backtracking — instead of learning a clause that excludes the region.
// The clause database therefore stays O(1) in the number of solutions;
// only ordinary first-UIP conflict clauses (implied by the formula, never
// by the enumeration history) are retained, and those are subject to the
// usual activity-based reduction.
//
// The enumeration discipline:
//
//   - Projection variables are decided strictly before auxiliary ones
//     (auxiliary decisions use the solver's VSIDS order). Because a flip
//     replaces a decision with its negation at the same level, levels
//     1..p always carry projection decisions and levels p+1..d auxiliary
//     ones — the projection-prefix invariant.
//   - When every problem clause is satisfied by the current trail, the
//     model is shrunk to an implicant: b_raw is the deepest level any
//     clause needs for a satisfying literal (tracked by a per-clause
//     occurrence index, the lifting idea applied during search). The
//     emitted cube keeps the projection literals at levels ≤ b where
//     b = min(max(b_raw, fproj), p), fproj being the deepest flipped
//     projection level: clamping up to fproj keeps cubes disjoint (a cube
//     may never free a literal whose negation separates it from an
//     already-emitted region), clamping down to p drops the auxiliary
//     suffix (one witness per projection region suffices).
//   - Advancing pops to level b, discards flipped levels, and flips the
//     deepest unflipped decision; when none remains the space is
//     exhausted.
//
// A ChronoEnum owns its solver for the duration of the enumeration: do
// not interleave Solve or AddClause calls with Next.
type ChronoEnum struct {
	s    *Solver
	proj []lit.Var

	isProj []bool // by var, sized at creation (no new vars appear)

	// Satisfaction bookkeeping over the problem clauses at creation time.
	// satBy[ci] is the trail index of the first (hence lowest-level)
	// satisfying literal of clause ci, -1 while none; satHead is the trail
	// prefix already folded in; unsatCnt counts clauses with satBy < 0.
	//
	// clauses SHARES the solver's problem-clause slice: the occurrence
	// lists hold positions into it, and arena compaction (reachable from
	// learnFrom's reduceDB) rewrites the crefs in place position-preserving
	// precisely so these indexes survive.
	clauses  []cref
	occ      [][]int32 // literal -> clause indexes
	satBy    []int32
	satHead  int
	unsatCnt int

	flipped []bool    // by decision level (flipped[l-1] for level l)
	cube    []lit.Lit // projection literals of the last emitted cube

	learn            bool
	exhausted        bool
	stopped          bool
	conflictsAtStart uint64
}

// NewChronoEnum prepares a chronological enumeration of the projections
// of s's clause set onto proj. The solver must be at decision level 0;
// the enumerator takes ownership of it until the enumeration ends. The
// solver's MaxConflicts option and Budget bound the whole enumeration
// (Next then answers Unknown and StopReason reports the limit).
func NewChronoEnum(s *Solver, proj []lit.Var) *ChronoEnum {
	if s.decisionLevel() != 0 {
		panic("sat: NewChronoEnum above decision level 0")
	}
	maxVar := 0
	for _, v := range proj {
		if int(v)+1 > maxVar {
			maxVar = int(v) + 1
		}
	}
	s.EnsureVars(maxVar)
	e := &ChronoEnum{
		s:     s,
		proj:  append([]lit.Var(nil), proj...),
		learn: true,
	}
	e.isProj = make([]bool, s.NumVars())
	for _, v := range proj {
		e.isProj[v] = true
	}
	e.clauses = s.clauses
	e.occ = make([][]int32, 2*s.NumVars())
	e.satBy = make([]int32, len(e.clauses))
	for ci, c := range e.clauses {
		e.satBy[ci] = -1
		for _, w := range s.ca.lits(c) {
			e.occ[w] = append(e.occ[w], int32(ci))
		}
	}
	e.unsatCnt = len(e.clauses)
	e.conflictsAtStart = s.stats.Conflicts
	s.maxLearnts = float64(len(s.clauses)) * s.opts.LearntFactor
	if s.maxLearnts < 100 {
		s.maxLearnts = 100
	}
	return e
}

// Next advances to the next solution cube. Sat means a cube is available
// via Cube; Unsat means the projection space is exhausted (the cubes seen
// so far are exactly the projection); Unknown means a resource limit
// tripped (StopReason tells which) and the cubes so far under-approximate
// the projection.
func (e *ChronoEnum) Next() Status {
	s := e.s
	if !s.okay || e.exhausted {
		return Unsat
	}
	if e.stopped {
		return Unknown
	}
	if s.check == nil && !s.opts.Budget.IsZero() {
		s.check = s.opts.Budget.Start()
	}
	// Immediate (non-amortized) check at every cube boundary, matching
	// Solve's entry check: enumeration between solutions can be
	// conflict-free, and the amortized polls below would let a cancelled
	// context go unnoticed for hundreds of cheap cubes otherwise.
	if s.check != nil {
		if r := s.check.Now(); r != budget.None {
			s.stopReason = r
			e.stopped = true
			return Unknown
		}
	}
	for {
		confl := s.propagate()
		if confl != crefUndef {
			s.stats.Conflicts++
			if s.decisionLevel() == 0 {
				s.okay = false
				e.exhausted = true
				return Unsat
			}
			// Amortized budget poll on the conflict path, mirroring the
			// CDCL search loop: a consecutive-conflict streak must not
			// overshoot the caps unboundedly.
			if s.stats.Conflicts&63 == 0 && s.limitExceeded(e.conflictsAtStart) {
				e.stopped = true
				return Unknown
			}
			if e.learn {
				e.learnFrom(confl)
			}
			if !e.advance() {
				e.exhausted = true
				return Unsat
			}
			continue
		}
		e.syncSat()
		if e.unsatCnt == 0 {
			e.emit()
			return Sat
		}
		if s.limitExceeded(e.conflictsAtStart) {
			e.stopped = true
			return Unknown
		}
		next := e.pickDecision()
		if !next.IsDef() {
			// A conflict-free propagation fixpoint over a total assignment
			// satisfies every clause, so unsatCnt must have been zero.
			panic("sat: chrono fixpoint left a clause unsatisfied")
		}
		s.newDecisionLevel()
		e.flipped = append(e.flipped, false)
		s.stats.Decisions++
		s.uncheckedEnqueue(next, crefUndef)
	}
}

// Cube returns the projection literals of the cube produced by the last
// Sat answer. The slice is reused by the next Next call.
func (e *ChronoEnum) Cube() []lit.Lit { return e.cube }

// Exhausted reports whether the enumeration has covered the whole
// projection (as opposed to having been stopped by a budget).
func (e *ChronoEnum) Exhausted() bool { return e.exhausted }

// StopReason reports why Next returned Unknown (budget.None otherwise).
func (e *ChronoEnum) StopReason() budget.Reason { return e.s.stopReason }

func (e *ChronoEnum) projVar(v lit.Var) bool {
	return int(v) < len(e.isProj) && e.isProj[v]
}

// pickDecision decides the first unassigned projection variable (saved
// phase), falling back to VSIDS over the auxiliaries once the projection
// is total — the decision discipline behind the prefix invariant.
func (e *ChronoEnum) pickDecision() lit.Lit {
	s := e.s
	for _, v := range e.proj {
		if s.assign[v] == lit.Unknown {
			return lit.New(v, s.polarity[v])
		}
	}
	return s.pickBranchLit()
}

// syncSat folds newly assigned trail literals into the satisfied-clause
// index. Called only at propagation fixpoints, so the fold is linear and
// each trail position is processed once per assign/unassign cycle.
func (e *ChronoEnum) syncSat() {
	s := e.s
	for ; e.satHead < len(s.trail); e.satHead++ {
		l := s.trail[e.satHead]
		for _, ci := range e.occ[l] {
			if e.satBy[ci] < 0 {
				e.satBy[ci] = int32(e.satHead)
				e.unsatCnt--
			}
		}
	}
}

// cancelToLevel is the enumerator's backtrack: it unwinds the satisfied-
// clause index over the removed trail suffix, then delegates to the
// solver and trims the per-level flip flags. All backtracking during an
// enumeration must go through here.
func (e *ChronoEnum) cancelToLevel(level int) {
	s := e.s
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	if e.satHead > bound {
		for i := e.satHead - 1; i >= bound; i-- {
			l := s.trail[i]
			for _, ci := range e.occ[l] {
				if e.satBy[ci] == int32(i) {
					e.satBy[ci] = -1
					e.unsatCnt++
				}
			}
		}
		e.satHead = bound
	}
	s.cancelUntil(level)
	e.flipped = e.flipped[:level]
}

// advance pops flipped levels off the top and flips the deepest unflipped
// decision in place (same level, negated literal, no reason). It returns
// false when every level is flipped — the search tree is exhausted.
func (e *ChronoEnum) advance() bool {
	s := e.s
	for s.decisionLevel() > 0 && e.flipped[s.decisionLevel()-1] {
		e.cancelToLevel(s.decisionLevel() - 1)
	}
	d := s.decisionLevel()
	if d == 0 {
		return false
	}
	dec := s.trail[s.trailLim[d-1]]
	e.cancelToLevel(d - 1)
	s.newDecisionLevel()
	e.flipped = append(e.flipped, true)
	s.uncheckedEnqueue(dec.Not(), crefUndef)
	return true
}

// emit shrinks the current (all-clauses-satisfied) trail into a cube and
// advances past the region it covers. Soundness: every clause holds a
// satisfying literal at level ≤ b, so any completion of the level-≤b
// prefix — in particular any projection extending the cube completed with
// the prefix's auxiliary literals — is a model. Disjointness: the cube
// retains every flipped projection decision, and each future region
// carries the negation of the decision flipped here, so no later cube can
// intersect this one.
func (e *ChronoEnum) emit() {
	s := e.s
	d := s.decisionLevel()
	b := 0
	for ci := range e.clauses {
		if lv := s.level[s.trail[e.satBy[ci]].Var()]; lv > b {
			b = lv
		}
	}
	p, fproj := 0, 0
	for l := 1; l <= d; l++ {
		if !e.projVar(s.trail[s.trailLim[l-1]].Var()) {
			break // auxiliary suffix starts here (prefix invariant)
		}
		p = l
		if e.flipped[l-1] {
			fproj = l
		}
	}
	if b < fproj {
		b = fproj
	}
	if b > p {
		b = p
	}
	end := len(s.trail)
	if b < d {
		end = s.trailLim[b]
	}
	e.cube = e.cube[:0]
	for _, l := range s.trail[:end] {
		if e.projVar(l.Var()) {
			e.cube = append(e.cube, l)
		}
	}
	e.cancelToLevel(b)
	if !e.advance() {
		e.exhausted = true
	}
}

// learnFrom runs first-UIP analysis and stores the learnt clause
// attach-only: it joins the watch lists (pruning future descents) but is
// never used as an enqueue reason here, so chronological flipping keeps
// full control of the trail. The clause is implied by the formula alone —
// flipped decisions resolve like ordinary decisions — so it can never
// exclude an unenumerated model; deleting one is therefore sound, and the
// attach-only learnts go through the same tiered database as CDCL
// learnts. The tier rules give them exactly the protection they need: a
// clause that prunes a descent participates in the conflict analysis,
// which sets its used bit (and may promote it), and reduceDB never
// deletes a used clause — so a learnt cannot be dropped in the same
// round it pruned a subtree (pinned by TestChronoAttachOnlySurvival).
func (e *ChronoEnum) learnFrom(confl cref) {
	s := e.s
	learnt, _, lbd := s.analyze(confl)
	s.varDecay()
	s.claDecay()
	if len(learnt) < 2 {
		// Unit (or empty) consequences are rediscovered by propagation;
		// installing them mid-tree would need out-of-order enqueueing.
		return
	}
	s.installLearnt(learnt, lbd)
	s.stats.Learned++
	s.stats.LearnedLits += uint64(len(learnt))
	if s.reduceNeeded() {
		s.reduceDB()
	}
}
