package sat

import (
	"allsatpre/internal/lit"
)

// varHeap is a binary max-heap of variables ordered by activity, with an
// index map for decrease/increase-key. It is the VSIDS decision queue.
type varHeap struct {
	heap     []lit.Var // heap of variables
	indices  []int     // var -> position in heap, -1 if absent
	activity *[]float64
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{activity: act}
}

func (h *varHeap) less(a, b lit.Var) bool {
	return (*h.activity)[a] > (*h.activity)[b]
}

func (h *varHeap) grow(n int) {
	for len(h.indices) < n {
		h.indices = append(h.indices, -1)
	}
}

func (h *varHeap) contains(v lit.Var) bool {
	return int(v) < len(h.indices) && h.indices[v] >= 0
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) percolateUp(i int) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(v, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.indices[h.heap[i]] = i
		i = p
	}
	h.heap[i] = v
	h.indices[v] = i
}

func (h *varHeap) percolateDown(i int) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		c := l
		if r < n && h.less(h.heap[r], h.heap[l]) {
			c = r
		}
		if !h.less(h.heap[c], v) {
			break
		}
		h.heap[i] = h.heap[c]
		h.indices[h.heap[i]] = i
		i = c
	}
	h.heap[i] = v
	h.indices[v] = i
}

// insert adds v to the heap if not already present.
func (h *varHeap) insert(v lit.Var) {
	h.grow(int(v) + 1)
	if h.indices[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.percolateUp(len(h.heap) - 1)
}

// removeMin pops the highest-activity variable.
func (h *varHeap) removeMin() lit.Var {
	v := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.indices[v] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.indices[last] = 0
		h.percolateDown(0)
	}
	return v
}

// decrease re-heapifies after the activity of v increased (moves it up).
func (h *varHeap) decrease(v lit.Var) {
	if h.contains(v) {
		h.percolateUp(h.indices[v])
	}
}

// reset empties the heap while keeping both backing arrays; grow
// re-appends the -1 sentinels into retained capacity as variables
// return after a Solver.Reset.
func (h *varHeap) reset() {
	h.heap = h.heap[:0]
	h.indices = h.indices[:0]
}

// rebuild re-heapifies the whole heap (after a global rescale the relative
// order is unchanged, so this is only needed when activities are reset).
func (h *varHeap) rebuild() {
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.percolateDown(i)
	}
}
