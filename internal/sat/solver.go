// Package sat implements a conflict-driven clause-learning (CDCL) SAT
// solver in the MiniSat lineage: two-watched-literal propagation, first-UIP
// conflict analysis with recursive clause minimization, VSIDS decision
// ordering with phase saving, Luby restarts, and a Glucose-style tiered
// learnt clause database. The solver is incremental: clauses may be
// added between Solve calls, and Solve accepts assumption literals.
//
// Clause storage is a flat arena (see arena.go): clauses are cref
// offsets into one []uint32 backing store, watch lists carry
// {cref, blocker} pairs, and binary clauses have dedicated watch lists
// that propagate without touching clause memory at all. Deleted clauses
// are compacted away by relocation-safe garbage collection.
//
// It is the workhorse beneath the all-solutions enumeration engines in
// internal/allsat and the blocking-clause preimage baseline.
//
// # Activation-literal protocol
//
// Incremental clients (internal/incr, the trace stepper in
// internal/preimage) manage retractable clause groups with activation
// literals in the Eén/Sörensson style: every clause of a group carries a
// fresh literal ¬act, Solve is called with act among the assumptions to
// enable the group, and the group is retired permanently by adding the
// unit clause ¬act. The solver makes this sound without any special
// support: a learned clause derived from a gated clause inherits ¬act
// (assumption-level literals are never resolved away), so after the
// retiring unit propagates, every such learned clause is satisfied and
// inert. Learned clauses that never mention a retired activation literal
// remain live across retargetings — that retention is the point of the
// protocol, and TestActivationLiteralRetire pins the contract.
package sat

import (
	"fmt"
	"math/rand"
	"slices"

	"allsatpre/internal/budget"
	"allsatpre/internal/cnf"
	"allsatpre/internal/lit"
)

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota // budget exhausted before an answer
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// Options tune the solver. The zero value is replaced by DefaultOptions.
type Options struct {
	// VarDecay is the VSIDS activity decay factor (0 < VarDecay < 1).
	VarDecay float64
	// ClauseDecay is the learnt-clause activity decay factor.
	ClauseDecay float64
	// RestartBase is the Luby restart unit in conflicts.
	RestartBase uint64
	// LearntFactor sets the initial learnt DB cap as a fraction of the
	// number of problem clauses.
	LearntFactor float64
	// LearntGrowth multiplies the learnt DB cap at each reduction.
	LearntGrowth float64
	// PhaseSaving enables progress-saving polarity selection.
	PhaseSaving bool
	// RandomFreq is the probability of a random decision (0 disables).
	RandomFreq float64
	// Seed seeds the random decision source.
	Seed int64
	// MaxConflicts bounds a single Solve call; 0 means unbounded. When
	// exceeded, Solve returns Unknown.
	MaxConflicts uint64
	// Budget imposes cross-call resource limits (deadline, cancellation,
	// cumulative conflict/decision caps). When it trips, Solve returns
	// Unknown and StopReason reports why. The zero Budget is unbounded.
	Budget budget.Budget
}

// DefaultOptions returns the standard tuning.
func DefaultOptions() Options {
	return Options{
		VarDecay:     0.95,
		ClauseDecay:  0.999,
		RestartBase:  100,
		LearntFactor: 1.0 / 3.0,
		LearntGrowth: 1.1,
		PhaseSaving:  true,
		RandomFreq:   0.0,
		Seed:         91648253,
	}
}

// Solver is an incremental CDCL SAT solver.
type Solver struct {
	opts Options

	ca      arena  // flat clause store; all crefs index into it
	clauses []cref // problem clauses
	learnts []cref // learnt clauses, all tiers

	watches    [][]watcher    // indexed by literal; clauses of length ≥ 3
	binWatches [][]binWatcher // indexed by literal; binary clauses only

	assign   []lit.Tern // by var
	level    []int      // decision level of assignment, by var
	reason   []cref     // antecedent clause, by var (crefUndef for decisions)
	polarity []bool     // saved phase: true = last value was false (sign)
	activity []float64
	seen     []byte // scratch for analyze

	trail    []lit.Lit
	trailLim []int // trail index at each decision level
	qhead    int

	order  *varHeap
	varInc float64
	claInc float64

	// Tier bookkeeping: live learnt counts per tier and the live learnt
	// footprint in arena words (PeakLearntBytes watermark feeds from it).
	nCore, nTier2, nLocal int
	learntWords           uint64

	okay        bool // false once a top-level conflict is found
	rng         *rand.Rand
	maxLearnts  float64
	assumptions []lit.Lit
	conflictOut []lit.Lit // final conflict over assumptions
	model       []bool    // snapshot of the last satisfying assignment
	proof       *proofLogger

	// analyze scratch
	analyzeStack []lit.Lit
	analyzeToClr []lit.Lit
	learntBuf    []lit.Lit // analyze result buffer, reused across conflicts
	lbdStamp     []uint32  // per-level stamps for computeLBD
	lbdGen       uint32    // current computeLBD generation
	tmpLits      []lit.Lit // scratch for proof emission from the arena
	reduceBuf    []cref    // scratch for reduceDB's local-tier sort

	check      *budget.Checker // live budget checker, nil when unbounded
	stopReason budget.Reason   // why the last Solve returned Unknown

	stats Stats
}

// New creates a solver with the given options (zero value → defaults).
// Resource limits (MaxConflicts, Budget) survive the default substitution:
// they are caps, not tuning, so leaving VarDecay unset must not erase them.
func New(opts Options) *Solver {
	if opts.VarDecay == 0 {
		maxConflicts, bud := opts.MaxConflicts, opts.Budget
		opts = DefaultOptions()
		opts.MaxConflicts = maxConflicts
		opts.Budget = bud
	}
	opts.Budget = opts.Budget.Materialize()
	s := &Solver{
		opts:   opts,
		varInc: 1.0,
		claInc: 1.0,
		okay:   true,
		rng:    rand.New(rand.NewSource(opts.Seed)),
	}
	s.order = newVarHeap(&s.activity)
	return s
}

// NewDefault creates a solver with DefaultOptions.
func NewDefault() *Solver { return New(DefaultOptions()) }

// FromFormula creates a solver preloaded with the clauses of f.
func FromFormula(f *cnf.Formula, opts Options) *Solver {
	s := New(opts)
	s.LoadFormula(f)
	return s
}

// LoadFormula bulk-loads f's clauses with up-front pre-sizing of the
// variable slices, the clause list, and the arena — the loading path
// shared by FromFormula and Reset-reused solvers from the warm pool.
// It returns false if the clause set is unsatisfiable at the top level.
func (s *Solver) LoadFormula(f *cnf.Formula) bool {
	s.EnsureVars(f.NumVars)
	s.clauses = slices.Grow(s.clauses, len(f.Clauses))
	total := 0
	for _, c := range f.Clauses {
		total += len(c) + 1
	}
	s.ca.data = slices.Grow(s.ca.data, total)
	ok := true
	for _, c := range f.Clauses {
		if !s.AddClause(c...) {
			ok = false
		}
	}
	return ok
}

// NumVars returns the number of variables known to the solver.
func (s *Solver) NumVars() int { return len(s.assign) }

// NumClauses returns the number of problem clauses currently held.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearnts returns the number of learnt clauses currently held.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// Stats returns a copy of the cumulative statistics, with the arena and
// tier gauges snapshotted at call time.
func (s *Solver) Stats() Stats {
	st := s.stats
	st.ArenaBytes = uint64(len(s.ca.data)) * 4
	st.LearntsCore = s.nCore
	st.LearntsTier2 = s.nTier2
	st.LearntsLocal = s.nLocal
	return st
}

// SetBudget replaces the solver's resource budget. Relative timeouts are
// materialized into an absolute deadline immediately, so the clock starts
// now, not at the next Solve — call this at the outermost entry point and
// let every subsequent Solve share the same allowance.
func (s *Solver) SetBudget(b budget.Budget) {
	s.opts.Budget = b.Materialize()
	s.check = nil // rebuilt on the next Solve
}

// StopReason reports why the most recent Solve returned Unknown
// (budget.None after a Sat/Unsat answer or before any Solve).
func (s *Solver) StopReason() budget.Reason { return s.stopReason }

// Okay reports whether the clause set is still possibly satisfiable; it
// becomes false permanently after a top-level conflict.
func (s *Solver) Okay() bool { return s.okay }

// NewVar allocates a fresh variable.
func (s *Solver) NewVar() lit.Var {
	v := lit.Var(len(s.assign))
	s.assign = append(s.assign, lit.Unknown)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, crefUndef)
	s.polarity = append(s.polarity, true) // default phase: false
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, 0)
	s.watches = extendWatchLists(s.watches)
	s.binWatches = extendWatchLists(s.binWatches)
	s.order.insert(v)
	return v
}

// EnsureVars allocates variables until at least n exist. The per-variable
// slices are grown once up front, so a bulk reservation (FromFormula,
// AddFormula) costs one reallocation per slice instead of an amortized
// doubling chain through NewVar.
func (s *Solver) EnsureVars(n int) {
	extra := n - len(s.assign)
	if extra <= 0 {
		return
	}
	s.assign = slices.Grow(s.assign, extra)
	s.level = slices.Grow(s.level, extra)
	s.reason = slices.Grow(s.reason, extra)
	s.polarity = slices.Grow(s.polarity, extra)
	s.activity = slices.Grow(s.activity, extra)
	s.seen = slices.Grow(s.seen, extra)
	s.watches = slices.Grow(s.watches, 2*extra)
	s.binWatches = slices.Grow(s.binWatches, 2*extra)
	for len(s.assign) < n {
		s.NewVar()
	}
}

// Value returns the current ternary value of variable v.
func (s *Solver) Value(v lit.Var) lit.Tern {
	if int(v) >= len(s.assign) {
		return lit.Unknown
	}
	return s.assign[v]
}

// LitValue returns the current ternary value of literal l.
func (s *Solver) LitValue(l lit.Lit) lit.Tern {
	return s.Value(l.Var()).XorSign(l.Sign())
}

// litVal is the bounds-check-free hot-path variant of LitValue: l must
// be a defined literal of an allocated variable.
func (s *Solver) litVal(l lit.Lit) lit.Tern {
	return s.assign[l.Var()].XorSign(l.Sign())
}

// Model returns the satisfying assignment found by the most recent Sat
// answer, indexed by variable. Variables with no forced value read as
// false. The returned slice is a fresh copy on every call — it stays
// valid across later Solve calls; use ModelBuf in tight loops to avoid
// the per-call allocation.
func (s *Solver) Model() []bool {
	m := make([]bool, len(s.model))
	copy(m, s.model)
	return m
}

// ModelBuf is Model with a caller-owned buffer: the assignment is
// appended into dst[:0] and the (possibly regrown) slice returned, so an
// enumeration loop reusing the same buffer allocates at most once.
func (s *Solver) ModelBuf(dst []bool) []bool {
	return append(dst[:0], s.model...)
}

// Conflict returns, after an Unsat answer under assumptions, a subset of
// the negated assumptions that is sufficient for unsatisfiability. The
// returned slice is a fresh copy on every call; use ConflictBuf to reuse
// a buffer instead.
func (s *Solver) Conflict() []lit.Lit {
	out := make([]lit.Lit, len(s.conflictOut))
	copy(out, s.conflictOut)
	return out
}

// ConflictBuf is Conflict with a caller-owned buffer, appending into
// dst[:0] and returning the (possibly regrown) slice.
func (s *Solver) ConflictBuf(dst []lit.Lit) []lit.Lit {
	return append(dst[:0], s.conflictOut...)
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a problem clause. It returns false if the clause set is
// now known unsatisfiable at the top level. Must be called at decision
// level 0 (Solve restores level 0 before returning).
func (s *Solver) AddClause(ls ...lit.Lit) bool {
	if !s.okay {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause called above decision level 0")
	}
	// Normalize: sort-free dedup & tautology check, drop false lits,
	// detect satisfied clauses.
	c := s.tmpLits[:0]
	for _, l := range ls {
		if !l.IsDef() {
			panic("sat: undefined literal in clause")
		}
		if int(l.Var()) >= len(s.assign) {
			s.EnsureVars(int(l.Var()) + 1)
		}
		switch s.LitValue(l) {
		case lit.True:
			s.tmpLits = c[:0]
			return true // already satisfied at top level
		case lit.False:
			continue // literal permanently false: drop
		}
		dup := false
		for _, x := range c {
			if x == l {
				dup = true
				break
			}
			if x == l.Not() {
				s.tmpLits = c[:0]
				return true // tautology
			}
		}
		if !dup {
			c = append(c, l)
		}
	}
	s.tmpLits = c[:0]
	switch len(c) {
	case 0:
		s.okay = false
		if s.proof != nil {
			s.proof.addClause(nil)
		}
		return false
	case 1:
		s.uncheckedEnqueue(c[0], crefUndef)
		if s.propagate() != crefUndef {
			s.okay = false
			if s.proof != nil {
				s.proof.addClause(nil)
			}
			return false
		}
		return true
	}
	cr := s.ca.alloc(c, false)
	s.clauses = append(s.clauses, cr)
	s.attach(cr)
	return true
}

// AddFormula adds every clause of f; returns false on top-level conflict.
func (s *Solver) AddFormula(f *cnf.Formula) bool {
	s.EnsureVars(f.NumVars)
	s.clauses = slices.Grow(s.clauses, len(f.Clauses))
	for _, c := range f.Clauses {
		if !s.AddClause(c...) {
			return false
		}
	}
	return true
}

// attach hooks a clause into the watch structure: binary clauses go to
// the dedicated binary lists (each entry names the implied literal, so
// firing them never reads clause memory), longer ones watch their first
// two literals.
func (s *Solver) attach(c cref) {
	ls := s.ca.lits(c)
	l0, l1 := lit.Lit(ls[0]), lit.Lit(ls[1])
	if len(ls) == 2 {
		s.binWatches[l0.Not()] = append(s.binWatches[l0.Not()], binWatcher{other: ls[1], c: uint32(c)})
		s.binWatches[l1.Not()] = append(s.binWatches[l1.Not()], binWatcher{other: ls[0], c: uint32(c)})
		return
	}
	s.watches[l0.Not()] = append(s.watches[l0.Not()], watcher{c: uint32(c), blocker: ls[1]})
	s.watches[l1.Not()] = append(s.watches[l1.Not()], watcher{c: uint32(c), blocker: ls[0]})
}

// uncheckedEnqueue assigns literal l true with the given reason clause.
func (s *Solver) uncheckedEnqueue(l lit.Lit, from cref) {
	v := l.Var()
	s.assign[v] = lit.TernOf(!l.Sign())
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
	if len(s.trail) > s.stats.MaxTrail {
		s.stats.MaxTrail = len(s.trail)
	}
}

// propagate performs unit propagation over the watch lists, returning the
// conflicting clause or crefUndef. Binary clauses propagate first and
// without dereferencing the arena; long clauses use blocker literals and
// in-place watch migration.
func (s *Solver) propagate() cref {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is now true; clauses watching ¬p must be checked
		s.qhead++

		// Binary pass: every entry implies `other` outright. The lists
		// are never mutated by propagation, so a conflict returns
		// directly.
		for _, bw := range s.binWatches[p] {
			other := lit.Lit(bw.other)
			switch s.litVal(other) {
			case lit.True:
			case lit.False:
				s.qhead = len(s.trail)
				return cref(bw.c)
			default:
				s.stats.Propagations++
				s.uncheckedEnqueue(other, cref(bw.c))
			}
		}

		ws := s.watches[p]
		out := ws[:0]
		confl := crefUndef
		falseLit := uint32(p.Not())
	watchLoop:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.litVal(lit.Lit(w.blocker)) == lit.True {
				out = append(out, w)
				continue
			}
			c := cref(w.c)
			h := s.ca.data[c]
			if h&caDeleted != 0 {
				continue // drop lazily
			}
			base := c + hdrWords(h)
			ls := s.ca.data[base : base+cref(h>>caSizeShift)]
			// Ensure the false literal is at position 1.
			if ls[0] == falseLit {
				ls[0], ls[1] = ls[1], ls[0]
			}
			first := lit.Lit(ls[0])
			if ls[0] != w.blocker && s.litVal(first) == lit.True {
				out = append(out, watcher{c: w.c, blocker: ls[0]})
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(ls); k++ {
				if s.litVal(lit.Lit(ls[k])) != lit.False {
					ls[1], ls[k] = ls[k], ls[1]
					nw := lit.Lit(ls[1]).Not()
					s.watches[nw] = append(s.watches[nw], watcher{c: w.c, blocker: ls[0]})
					continue watchLoop
				}
			}
			// No new watch: clause is unit or conflicting.
			out = append(out, watcher{c: w.c, blocker: ls[0]})
			if s.litVal(first) == lit.False {
				confl = c
				s.qhead = len(s.trail)
				// Copy remaining watchers back untouched.
				for i++; i < len(ws); i++ {
					out = append(out, ws[i])
				}
				break
			}
			s.stats.Propagations++
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = out
		if confl != crefUndef {
			return confl
		}
	}
	return crefUndef
}

// cancelUntil backtracks to the given decision level.
func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.Var()
		s.assign[v] = lit.Unknown
		s.reason[v] = crefUndef
		if s.opts.PhaseSaving {
			s.polarity[v] = l.Sign()
		}
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, len(s.trail))
}

// varBump increases the VSIDS activity of v.
func (s *Solver) varBump(v lit.Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.decrease(v)
}

func (s *Solver) varDecay() { s.varInc /= s.opts.VarDecay }

func (s *Solver) claBump(c cref) {
	a := s.ca.activity(c) + s.claInc
	s.ca.setActivity(c, a)
	if a > 1e20 {
		for _, lc := range s.learnts {
			s.ca.setActivity(lc, s.ca.activity(lc)*1e-20)
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) claDecay() { s.claInc /= s.opts.ClauseDecay }

// installLearnt allocates a learnt clause in the arena, assigns its tier
// from size and LBD, attaches it, and books the tier/footprint counters.
// New learnts start with the used bit set — they are protected for the
// reduce round they were learnt in.
func (s *Solver) installLearnt(ls []lit.Lit, lbd int) cref {
	c := s.ca.alloc(ls, true)
	s.ca.setLBD(c, lbd)
	t := tierFor(len(ls), lbd)
	s.ca.setTier(c, t)
	s.ca.setUsed(c)
	s.bumpTier(t, 1)
	s.learnts = append(s.learnts, c)
	if len(s.learnts) > s.stats.PeakLearnts {
		s.stats.PeakLearnts = len(s.learnts)
	}
	s.learntWords += uint64(s.ca.words(c))
	if b := s.learntWords * 4; b > s.stats.PeakLearntBytes {
		s.stats.PeakLearntBytes = b
	}
	s.attach(c)
	s.claBump(c)
	return c
}

func (s *Solver) bumpTier(t uint32, d int) {
	switch t {
	case tierCore:
		s.nCore += d
	case tierTwo:
		s.nTier2 += d
	case tierLocal:
		s.nLocal += d
	}
}

// pickBranchLit chooses the next decision literal, or UndefLit when all
// variables are assigned.
func (s *Solver) pickBranchLit() lit.Lit {
	var v lit.Var = lit.UndefVar
	if s.opts.RandomFreq > 0 && s.rng.Float64() < s.opts.RandomFreq && !s.order.empty() {
		cand := s.order.heap[s.rng.Intn(len(s.order.heap))]
		if s.assign[cand] == lit.Unknown {
			v = cand
		}
	}
	for v == lit.UndefVar {
		if s.order.empty() {
			return lit.UndefLit
		}
		cand := s.order.removeMin()
		if s.assign[cand] == lit.Unknown {
			v = cand
		}
	}
	return lit.New(v, s.polarity[v])
}

func (s *Solver) String() string {
	return fmt.Sprintf("sat.Solver(vars=%d clauses=%d learnts=%d arenaKB=%d)",
		s.NumVars(), len(s.clauses), len(s.learnts), len(s.ca.data)*4/1024)
}
