package sat

import (
	"context"
	"testing"
	"time"

	"allsatpre/internal/budget"
	"allsatpre/internal/lit"
)

func TestSolveDeadlineReturnsUnknownWithReason(t *testing.T) {
	f := phpFormula(9, 8)
	s := FromFormula(f, Options{
		Budget: budget.Budget{Deadline: time.Now().Add(-time.Second)},
	})
	if st := s.Solve(); st != Unknown {
		t.Fatalf("expired deadline: Solve = %v, want Unknown", st)
	}
	if r := s.StopReason(); r != budget.Deadline {
		t.Fatalf("StopReason = %v, want Deadline", r)
	}
}

func TestSolveCancelReturnsUnknownWithReason(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := phpFormula(9, 8)
	s := FromFormula(f, DefaultOptions())
	s.SetBudget(budget.Budget{Ctx: ctx})
	if st := s.Solve(); st != Unknown {
		t.Fatalf("cancelled context: Solve = %v, want Unknown", st)
	}
	if r := s.StopReason(); r != budget.Cancelled {
		t.Fatalf("StopReason = %v, want Cancelled", r)
	}
}

func TestSolveConflictCapSetsReason(t *testing.T) {
	f := phpFormula(9, 8) // hard enough to need more than a few conflicts
	s := FromFormula(f, Options{MaxConflicts: 5})
	if st := s.Solve(); st != Unknown {
		t.Fatalf("conflict cap: Solve = %v, want Unknown", st)
	}
	if r := s.StopReason(); r != budget.Conflicts {
		t.Fatalf("StopReason = %v, want Conflicts", r)
	}
}

func TestSolveBudgetCumulativeConflictCap(t *testing.T) {
	f := phpFormula(9, 8)
	s := FromFormula(f, Options{Budget: budget.Budget{MaxConflicts: 5}})
	if st := s.Solve(); st != Unknown {
		t.Fatalf("budget conflict cap: Solve = %v, want Unknown", st)
	}
	// The budget cap is cumulative: a second Solve trips immediately.
	before := s.Stats().Conflicts
	if st := s.Solve(); st != Unknown {
		t.Fatalf("second Solve = %v, want Unknown", st)
	}
	if after := s.Stats().Conflicts; after > before+1 {
		t.Fatalf("second Solve burned %d conflicts past a spent budget", after-before)
	}
}

func TestNewPreservesLimitsOverDefaultSubstitution(t *testing.T) {
	b := budget.Budget{MaxConflicts: 7, Timeout: time.Hour}
	s := New(Options{MaxConflicts: 3, Budget: b})
	if s.opts.MaxConflicts != 3 {
		t.Fatalf("MaxConflicts lost in default substitution: %d", s.opts.MaxConflicts)
	}
	if s.opts.Budget.MaxConflicts != 7 {
		t.Fatal("Budget lost in default substitution")
	}
	if s.opts.Budget.Deadline.IsZero() || s.opts.Budget.Timeout != 0 {
		t.Fatal("Budget not materialized by New")
	}
	if s.opts.VarDecay != DefaultOptions().VarDecay {
		t.Fatal("defaults not applied")
	}
}

func TestSolveStopReasonClearedOnSuccess(t *testing.T) {
	s := NewDefault()
	v := s.NewVar()
	s.AddClause(lit.Pos(v))
	if st := s.Solve(); st != Sat {
		t.Fatalf("Solve = %v", st)
	}
	if r := s.StopReason(); r != budget.None {
		t.Fatalf("StopReason after Sat = %v, want None", r)
	}
}
