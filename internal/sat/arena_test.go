package sat

// Property/fuzz tests for the clause arena: random interleavings of
// solving, reduction, simplification, and forced compaction must keep
// every live watcher and reason cref valid and leave the solver's
// answers (and models) identical to a brute-force truth-table oracle.

import (
	"math/rand"
	"testing"

	"allsatpre/internal/lit"
)

// checkArenaInvariants audits the cref graph after any mutation:
//
//   - every cref held by a watch list, the clause lists, or a trail
//     reason addresses a well-formed header inside the arena;
//   - binary watch entries agree with their clause's literals;
//   - long watch entries watch one of the clause's first two literals;
//   - trail reasons are never deleted clauses;
//   - the tier counters and the live learnt footprint match a recount.
func checkArenaInvariants(t *testing.T, s *Solver) {
	t.Helper()
	validate := func(c cref) []uint32 {
		if int(c) >= len(s.ca.data) {
			t.Fatalf("cref %d outside arena (len %d)", c, len(s.ca.data))
		}
		h := s.ca.data[c]
		if h&caReloc != 0 {
			t.Fatalf("cref %d still carries a relocation forward", c)
		}
		sz := int(h >> caSizeShift)
		if sz < 2 {
			t.Fatalf("cref %d has size %d < 2", c, sz)
		}
		end := int(c+hdrWords(h)) + sz
		if end > len(s.ca.data) {
			t.Fatalf("cref %d (size %d) overruns arena end %d", c, sz, len(s.ca.data))
		}
		return s.ca.lits(c)
	}
	for li := range s.binWatches {
		p := lit.Lit(li)
		for _, w := range s.binWatches[li] {
			ls := validate(cref(w.c))
			if len(ls) != 2 {
				t.Fatalf("binary watch on non-binary clause %d (size %d)", w.c, len(ls))
			}
			if s.ca.isDeleted(cref(w.c)) {
				t.Fatalf("binary watch holds deleted clause %d", w.c)
			}
			// The entry fires when p falsifies, implying `other`: the
			// clause must be exactly {¬p, other} in either order.
			neg := uint32(p.Not())
			if !(ls[0] == neg && ls[1] == w.other) && !(ls[1] == neg && ls[0] == w.other) {
				t.Fatalf("binary watch %v/{other=%d} disagrees with clause lits %v", p, w.other, ls)
			}
		}
	}
	for li := range s.watches {
		p := lit.Lit(li)
		for _, w := range s.watches[li] {
			c := cref(w.c)
			ls := validate(c)
			if s.ca.isDeleted(c) {
				continue // lazily dropped; must still be in-bounds (above)
			}
			neg := uint32(p.Not())
			if ls[0] != neg && ls[1] != neg {
				t.Fatalf("watcher for %v not among first two lits of clause %d: %v", p, c, ls)
			}
		}
	}
	for _, l := range s.trail {
		r := s.reason[l.Var()]
		if r == crefUndef {
			continue
		}
		validate(r)
		if s.ca.isDeleted(r) {
			t.Fatalf("reason of %v is a deleted clause", l)
		}
	}
	for _, c := range s.clauses {
		validate(c)
	}
	nCore, nTier2, nLocal := 0, 0, 0
	var words uint64
	for _, c := range s.learnts {
		validate(c)
		if s.ca.isDeleted(c) {
			t.Fatalf("learnt list holds deleted clause %d", c)
		}
		switch s.ca.tier(c) {
		case tierCore:
			nCore++
		case tierTwo:
			nTier2++
		case tierLocal:
			nLocal++
		default:
			t.Fatalf("learnt clause %d has tier %d", c, s.ca.tier(c))
		}
		words += uint64(s.ca.words(c))
	}
	if nCore != s.nCore || nTier2 != s.nTier2 || nLocal != s.nLocal {
		t.Fatalf("tier counters (%d,%d,%d) != recount (%d,%d,%d)",
			s.nCore, s.nTier2, s.nLocal, nCore, nTier2, nLocal)
	}
	if words != s.learntWords {
		t.Fatalf("learntWords %d != recount %d", s.learntWords, words)
	}
}

// randomCNFWithModels builds a random 3-CNF (some clauses shorter) and
// its truth-table model set over nVars ≤ 16 variables.
func randomCNFWithModels(rng *rand.Rand, nVars, nClauses int) (clauses [][]lit.Lit, models []uint32) {
	for i := 0; i < nClauses; i++ {
		k := 3
		if rng.Intn(8) == 0 {
			k = 2
		}
		c := make([]lit.Lit, 0, k)
		for j := 0; j < k; j++ {
			c = append(c, lit.New(lit.Var(rng.Intn(nVars)), rng.Intn(2) == 1))
		}
		clauses = append(clauses, c)
	}
	for m := uint32(0); m < 1<<nVars; m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				bit := m>>uint(l.Var())&1 == 1
				if bit != l.Sign() { // Sign()==true means negated
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			models = append(models, m)
		}
	}
	return clauses, models
}

func modelMatches(m uint32, assumptions []lit.Lit) bool {
	for _, a := range assumptions {
		bit := m>>uint(a.Var())&1 == 1
		if bit == a.Sign() {
			return false
		}
	}
	return true
}

// TestArenaCompactionFuzz interleaves Solve (under random assumptions),
// Simplify, reduceDB, and unconditional garbageCollect in random orders,
// auditing the cref graph after every step and checking each answer
// against the truth table.
func TestArenaCompactionFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(0xa7e4a))
	iters := 120
	if testing.Short() {
		iters = 30
	}
	for iter := 0; iter < iters; iter++ {
		nVars := 5 + rng.Intn(8) // 5..12
		nClauses := 3*nVars + rng.Intn(3*nVars)
		clauses, models := randomCNFWithModels(rng, nVars, nClauses)

		opts := DefaultOptions()
		opts.RestartBase = 8 // restart often: more clause churn per op
		opts.Seed = int64(iter)
		s := New(opts)
		s.EnsureVars(nVars)
		okAdd := true
		for _, c := range clauses {
			if !s.AddClause(c...) {
				okAdd = false
				break
			}
		}
		checkArenaInvariants(t, s)
		if !okAdd {
			if len(models) != 0 {
				t.Fatalf("iter %d: AddClause reported UNSAT but %d models exist", iter, len(models))
			}
			continue
		}

		for op := 0; op < 20; op++ {
			switch rng.Intn(10) {
			case 0:
				if s.Okay() {
					s.Simplify()
				}
			case 1:
				if s.Okay() {
					s.reduceDB()
				}
			case 2:
				s.garbageCollect()
			default:
				var assumptions []lit.Lit
				used := map[lit.Var]bool{}
				for len(assumptions) < rng.Intn(4) {
					v := lit.Var(rng.Intn(nVars))
					if used[v] {
						continue
					}
					used[v] = true
					assumptions = append(assumptions, lit.New(v, rng.Intn(2) == 1))
				}
				st := s.Solve(assumptions...)
				want := Unsat
				for _, m := range models {
					if modelMatches(m, assumptions) {
						want = Sat
						break
					}
				}
				if st != want {
					t.Fatalf("iter %d op %d: Solve(%v) = %v, oracle says %v", iter, op, assumptions, st, want)
				}
				if st == Sat {
					model := s.Model()
					for _, c := range clauses {
						sat := false
						for _, l := range c {
							if model[l.Var()] != l.Sign() {
								sat = true
								break
							}
						}
						if !sat {
							t.Fatalf("iter %d op %d: model %v violates clause %v", iter, op, model, c)
						}
					}
					for _, a := range assumptions {
						if model[a.Var()] == a.Sign() {
							t.Fatalf("iter %d op %d: model violates assumption %v", iter, op, a)
						}
					}
				}
			}
			checkArenaInvariants(t, s)
			if !s.Okay() {
				break
			}
		}
	}
}

// TestArenaGCPreservesClausePositions pins the contract ChronoEnum's
// occurrence index depends on: garbage collection rewrites the
// problem-clause list in place, position-preserving, through the shared
// backing array.
func TestArenaGCPreservesClausePositions(t *testing.T) {
	s := NewDefault()
	s.EnsureVars(6)
	v := func(i int) lit.Lit { return lit.New(lit.Var(i), false) }
	nv := func(i int) lit.Lit { return lit.New(lit.Var(i), true) }
	s.AddClause(v(0), v(1), v(2))
	s.AddClause(nv(0), v(3), v(4))
	s.AddClause(v(1), nv(3), v(5))
	shared := s.clauses
	var before [][]lit.Lit
	for _, c := range shared {
		before = append(before, s.ca.litsBuf(c, nil))
	}
	s.garbageCollect()
	if len(shared) != 3 {
		t.Fatalf("shared view length changed: %d", len(shared))
	}
	for i, c := range shared {
		got := s.ca.litsBuf(c, nil)
		want := before[i]
		if len(got) != len(want) {
			t.Fatalf("clause %d changed length after GC", i)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("clause %d literal %d changed after GC: %v -> %v", i, j, want, got)
			}
		}
	}
	checkArenaInvariants(t, s)
}

// TestArenaRelocReclaimsWaste drives real deletion through the tier
// machinery (demote twice, then delete) and checks compaction reclaims
// the tombstoned words.
func TestArenaWasteAccounting(t *testing.T) {
	s := NewDefault()
	s.EnsureVars(4)
	a := lit.New(0, false)
	b := lit.New(1, false)
	c := lit.New(2, false)
	s.AddClause(a, b, c)
	// Hand-install a local-tier learnt and delete it.
	cr := s.installLearnt([]lit.Lit{a.Not(), b, c}, tier2LBD+1)
	if got := s.ca.tier(cr); got != tierLocal {
		t.Fatalf("tier = %d, want local", got)
	}
	wordsBefore := len(s.ca.data)
	s.ca.clearUsed(cr) // strip the learn-time protection
	s.removeLearnt(cr)
	if s.ca.wasted == 0 {
		t.Fatal("deletion booked no waste")
	}
	s.learnts = s.learnts[:0]
	s.garbageCollect()
	if s.ca.wasted != 0 {
		t.Fatalf("wasted = %d after GC, want 0", s.ca.wasted)
	}
	if len(s.ca.data) >= wordsBefore {
		t.Fatalf("arena did not shrink: %d -> %d words", wordsBefore, len(s.ca.data))
	}
	checkArenaInvariants(t, s)
}
