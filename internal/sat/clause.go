package sat

// watcher pairs a clause reference with a blocker literal: if the
// blocker is already true the clause is satisfied and need not be
// inspected at all. Both fields are 32-bit, so a watch list packs eight
// watchers per cache line (the pointer-based watcher was 24 bytes).
type watcher struct {
	c       uint32 // cref of the watched clause
	blocker uint32 // lit.Lit, the other watched literal at attach time
}

// binWatcher is the dedicated binary-clause watch entry: when the
// watched literal falsifies, `other` is implied — propagation touches no
// clause memory at all. The cref is carried only for conflict analysis
// (reason/conflict reporting) and proof deletion.
type binWatcher struct {
	other uint32 // lit.Lit implied when the watch fires
	c     uint32 // cref of the binary clause
}

// Stats collects solver counters. All fields are cumulative across Solve
// calls except the Arena*/Learnts* gauges, which snapshot the clause
// store at the moment Stats() is called.
type Stats struct {
	Decisions    uint64
	Propagations uint64
	Conflicts    uint64
	Restarts     uint64
	Learned      uint64
	LearnedLits  uint64
	MinimizedOut uint64 // literals removed by clause minimization
	Reduced      uint64 // learnt clauses deleted by DB reduction
	Demoted      uint64 // tier2 learnts demoted to local for disuse
	Promoted     uint64 // learnts promoted to a better tier on LBD improvement
	ArenaGCs     uint64 // arena compactions
	MaxTrail     int
	PeakLearnts  int // high-water learnt clause count (all tiers)
	// PeakLearntBytes is the high-water arena footprint of live learnt
	// clauses (headers + literals), the tier-proof memory measure: tier
	// counts are incomparable across engines, bytes are not.
	PeakLearntBytes uint64
	// ArenaBytes is the current clause-arena footprint (problem + learnt
	// + not-yet-collected garbage), snapshotted by Stats().
	ArenaBytes uint64
	// Live learnt counts per tier, snapshotted by Stats(). Core clauses
	// (LBD ≤ 2 and all binaries) are kept forever; tier2 (LBD ≤ 6) are
	// demoted when unused for a reduce round; local face deletion.
	LearntsCore, LearntsTier2, LearntsLocal int
}

// luby computes the i-th element (1-based) of the Luby restart sequence.
func luby(i uint64) uint64 {
	// Find the subsequence that contains index i: size = 2^k - 1.
	var size, seq uint64 = 1, 0
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) / 2
		seq--
		i = i % size
	}
	return uint64(1) << seq
}
