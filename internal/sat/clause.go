package sat

import (
	"allsatpre/internal/lit"
)

// clause is the solver-internal clause representation. The first two
// literals are the watched literals.
type clause struct {
	lits     []lit.Lit
	activity float64
	lbd      int  // literal block distance at learn time (learnt clauses)
	learnt   bool // true for conflict-learned clauses
	deleted  bool // lazily removed from watch lists
}

func (c *clause) len() int { return len(c.lits) }

// watcher pairs a clause with a blocker literal: if the blocker is already
// true the clause is satisfied and need not be inspected at all.
type watcher struct {
	cl      *clause
	blocker lit.Lit
}

// Stats collects solver counters. All fields are cumulative across Solve
// calls.
type Stats struct {
	Decisions    uint64
	Propagations uint64
	Conflicts    uint64
	Restarts     uint64
	Learned      uint64
	LearnedLits  uint64
	MinimizedOut uint64 // literals removed by clause minimization
	Reduced      uint64 // learnt clauses deleted by DB reduction
	MaxTrail     int
	PeakLearnts  int // high-water learnt clause count (DB memory proxy)
}

// luby computes the i-th element (1-based) of the Luby restart sequence.
func luby(i uint64) uint64 {
	// Find the subsequence that contains index i: size = 2^k - 1.
	var size, seq uint64 = 1, 0
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) / 2
		seq--
		i = i % size
	}
	return uint64(1) << seq
}
