package sat

import (
	"math/rand"

	"allsatpre/internal/budget"
)

// Reset returns the solver to the state New(opts) produces — no
// variables, no clauses, pristine statistics — while keeping every
// backing array at its high-water capacity: the clause arena, the
// problem/learnt cref lists, all per-variable slices, the VSIDS heap,
// and (critically) the per-literal watch-list arrays, whose inner
// slices are truncated in place rather than dropped so a reused solver
// re-attaches clauses without reallocating a single watch list.
//
// A Reset solver is behaviourally indistinguishable from a fresh one:
// crefs are arena offsets (capacity never shifts them), watch-list
// order is determined by the attach/propagate sequence (not capacity),
// activities restart at zero, and the RNG is reseeded from opts.Seed —
// so loading the same formula yields bit-identical Solve trajectories.
// The reuse equivalence suite pins this contract.
func (s *Solver) Reset(opts Options) {
	if opts.VarDecay == 0 {
		maxConflicts, bud := opts.MaxConflicts, opts.Budget
		opts = DefaultOptions()
		opts.MaxConflicts = maxConflicts
		opts.Budget = bud
	}
	opts.Budget = opts.Budget.Materialize()
	s.opts = opts

	s.ca.data = s.ca.data[:0]
	s.ca.wasted = 0
	s.clauses = s.clauses[:0]
	s.learnts = s.learnts[:0]

	// Outer watch slices shrink to zero length; the inner arrays stay
	// alive in the capacity region and are reclaimed one pair at a time
	// as NewVar re-extends (see extendWatchLists).
	s.watches = s.watches[:0]
	s.binWatches = s.binWatches[:0]

	s.assign = s.assign[:0]
	s.level = s.level[:0]
	s.reason = s.reason[:0]
	s.polarity = s.polarity[:0]
	s.activity = s.activity[:0]
	s.seen = s.seen[:0]

	s.trail = s.trail[:0]
	s.trailLim = s.trailLim[:0]
	s.qhead = 0

	s.order.reset()
	s.varInc = 1.0
	s.claInc = 1.0

	s.nCore, s.nTier2, s.nLocal = 0, 0, 0
	s.learntWords = 0

	s.okay = true
	s.rng = rand.New(rand.NewSource(opts.Seed))
	s.maxLearnts = 0
	s.assumptions = s.assumptions[:0]
	s.conflictOut = s.conflictOut[:0]
	s.model = s.model[:0]
	s.proof = nil

	s.analyzeStack = s.analyzeStack[:0]
	s.analyzeToClr = s.analyzeToClr[:0]
	s.learntBuf = s.learntBuf[:0]
	// Stale stamps could collide with a restarted generation counter, so
	// zero them before truncating (appends refill with zeros on regrowth).
	clear(s.lbdStamp)
	s.lbdStamp = s.lbdStamp[:0]
	s.lbdGen = 0
	s.tmpLits = s.tmpLits[:0]
	s.reduceBuf = s.reduceBuf[:0]

	s.check = nil
	s.stopReason = budget.None
	s.stats = Stats{}
}

// extendWatchLists appends two empty per-literal lists, reusing the
// inner-array capacity a Reset left parked beyond len instead of
// overwriting it with nil (which would leak the warm arrays to the GC).
func extendWatchLists[T any](ws [][]T) [][]T {
	for i := 0; i < 2; i++ {
		if n := len(ws); n < cap(ws) {
			ws = ws[:n+1]
			ws[n] = ws[n][:0]
		} else {
			ws = append(ws, nil)
		}
	}
	return ws
}

// RetainedBytes estimates the heap bytes pinned by the solver's backing
// arrays — the memory a warm-pool entry holds while idle. It is a
// size-class and trimming signal, not an exact accounting: struct
// headers and allocator rounding are approximated by the slice-header
// term per watch list.
func (s *Solver) RetainedBytes() uint64 {
	b := uint64(cap(s.ca.data))*4 +
		uint64(cap(s.clauses))*4 +
		uint64(cap(s.learnts))*4 +
		uint64(cap(s.assign))*1 +
		uint64(cap(s.level))*8 +
		uint64(cap(s.reason))*4 +
		uint64(cap(s.polarity))*1 +
		uint64(cap(s.activity))*8 +
		uint64(cap(s.seen))*1 +
		uint64(cap(s.trail))*8 +
		uint64(cap(s.trailLim))*8 +
		uint64(cap(s.analyzeStack))*8 +
		uint64(cap(s.analyzeToClr))*8 +
		uint64(cap(s.learntBuf))*8 +
		uint64(cap(s.lbdStamp))*4 +
		uint64(cap(s.tmpLits))*8 +
		uint64(cap(s.reduceBuf))*4 +
		uint64(cap(s.order.heap))*8 +
		uint64(cap(s.order.indices))*8
	// Inner watch arrays live beyond len after a Reset; count the full
	// capacity region.
	ws := s.watches[:cap(s.watches)]
	for i := range ws {
		b += uint64(cap(ws[i])) * 8
	}
	bs := s.binWatches[:cap(s.binWatches)]
	for i := range bs {
		b += uint64(cap(bs[i])) * 8
	}
	b += uint64(cap(s.watches))*24 + uint64(cap(s.binWatches))*24
	return b
}
