package sat

import (
	"math/rand"
	"strings"
	"testing"

	"allsatpre/internal/cnf"
	"allsatpre/internal/lit"
)

func phpFormula(pigeons, holes int) *cnf.Formula {
	f := cnf.New(pigeons * holes)
	vr := func(p, h int) lit.Var { return lit.Var(p*holes + h) }
	for p := 0; p < pigeons; p++ {
		c := make(cnf.Clause, holes)
		for h := 0; h < holes; h++ {
			c[h] = lit.Pos(vr(p, h))
		}
		f.AddClause(c)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.Add(lit.Neg(vr(p1, h)), lit.Neg(vr(p2, h)))
			}
		}
	}
	return f
}

func TestDRUPProofPigeonhole(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		f := phpFormula(n+1, n)
		var proof strings.Builder
		s := FromFormula(f, DefaultOptions())
		s.SetProofWriter(&proof)
		if st := s.Solve(); st != Unsat {
			t.Fatalf("PHP(%d,%d) should be UNSAT", n+1, n)
		}
		s.FlushProof()
		if err := CheckDRUP(f, strings.NewReader(proof.String())); err != nil {
			t.Fatalf("PHP(%d,%d) proof rejected: %v\n%s", n+1, n, err, proof.String())
		}
	}
}

func TestDRUPProofRandomUnsat(t *testing.T) {
	rng := rand.New(rand.NewSource(717))
	checked := 0
	for iter := 0; iter < 200 && checked < 40; iter++ {
		nVars := 5 + rng.Intn(8)
		f := randomFormula(rng, nVars, 6*nVars, 3)
		if f.CountModels() != 0 {
			continue
		}
		checked++
		var proof strings.Builder
		s := FromFormula(f, DefaultOptions())
		s.SetProofWriter(&proof)
		if st := s.Solve(); st != Unsat {
			t.Fatalf("iter %d: expected UNSAT", iter)
		}
		s.FlushProof()
		if err := CheckDRUP(f, strings.NewReader(proof.String())); err != nil {
			t.Fatalf("iter %d: proof rejected: %v", iter, err)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d UNSAT instances generated", checked)
	}
}

func TestDRUPProofWithReduceDB(t *testing.T) {
	// Aggressive clause deletion must still give a checkable proof with
	// deletion lines.
	opts := DefaultOptions()
	opts.LearntFactor = 0.01
	f := phpFormula(7, 6)
	var proof strings.Builder
	s := FromFormula(f, opts)
	s.SetProofWriter(&proof)
	if st := s.Solve(); st != Unsat {
		t.Fatal("expected UNSAT")
	}
	s.FlushProof()
	text := proof.String()
	if !strings.Contains(text, "d ") {
		t.Log("note: no deletions occurred in this run")
	}
	if err := CheckDRUP(f, strings.NewReader(text)); err != nil {
		t.Fatalf("proof rejected: %v", err)
	}
}

func TestDRUPTopLevelConflictFromAddClause(t *testing.T) {
	s := NewDefault()
	var proof strings.Builder
	s.SetProofWriter(&proof)
	v := s.NewVar()
	s.AddClause(lit.Pos(v))
	s.AddClause(lit.Neg(v))
	s.FlushProof()
	f := cnf.New(1)
	f.Add(lit.Pos(0))
	f.Add(lit.Neg(0))
	if err := CheckDRUP(f, strings.NewReader(proof.String())); err != nil {
		t.Fatalf("proof rejected: %v", err)
	}
}

func TestCheckDRUPRejectsBogusProofs(t *testing.T) {
	// A SAT formula cannot have a valid UNSAT proof.
	f := cnf.New(2)
	f.Add(lit.Pos(0), lit.Pos(1))
	if err := CheckDRUP(f, strings.NewReader("0\n")); err == nil {
		t.Fatal("empty clause over a SAT formula must be rejected")
	}
	// Non-RUP addition.
	if err := CheckDRUP(f, strings.NewReader("1 0\n")); err == nil {
		t.Fatal("non-RUP clause must be rejected")
	}
	// Deletion of a clause not present.
	if err := CheckDRUP(f, strings.NewReader("d 1 0\n0\n")); err == nil {
		t.Fatal("bogus deletion must be rejected")
	}
	// Missing empty clause at the end of a non-proof.
	g := cnf.New(1)
	g.Add(lit.Pos(0))
	if err := CheckDRUP(g, strings.NewReader("")); err == nil {
		t.Fatal("proof without empty clause over a SAT formula must be rejected")
	}
	// Malformed transcripts.
	for _, bad := range []string{"1 2\n", "x 0\n"} {
		if err := CheckDRUP(f, strings.NewReader(bad)); err == nil {
			t.Fatalf("malformed transcript %q accepted", bad)
		}
	}
}

func TestCheckDRUPAcceptsImplicitEmptyClause(t *testing.T) {
	// If the added clauses make the formula propagate to a conflict, the
	// final explicit "0" may be omitted. Formula: (x1)(¬x1∨x2)(¬x2) is
	// UNSAT; the clause ¬x1 is RUP (assume x1, propagate x2, conflict)
	// and once added, propagation alone reaches the conflict.
	f := cnf.New(2)
	f.Add(lit.Pos(0))
	f.Add(lit.Neg(0), lit.Pos(1))
	f.Add(lit.Neg(1))
	if err := CheckDRUP(f, strings.NewReader("-1 0\n")); err != nil {
		t.Fatalf("implicit empty clause rejected: %v", err)
	}
}

func TestDRUPCommentsIgnored(t *testing.T) {
	f := cnf.New(1)
	f.Add(lit.Pos(0))
	f.Add(lit.Neg(0))
	if err := CheckDRUP(f, strings.NewReader("c produced by test\n0\n")); err != nil {
		t.Fatalf("comment line broke the checker: %v", err)
	}
}
