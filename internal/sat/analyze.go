package sat

import (
	"allsatpre/internal/lit"
)

// analyze performs first-UIP conflict analysis starting from the
// conflicting clause, returning the learnt clause (asserting literal first)
// and the backtrack level. It also computes the clause's LBD.
func (s *Solver) analyze(confl *clause) (learnt []lit.Lit, btLevel, lbd int) {
	learnt = append(learnt, lit.UndefLit) // room for the asserting literal
	pathC := 0
	var p lit.Lit = lit.UndefLit
	idx := len(s.trail) - 1

	for {
		if confl.learnt {
			s.claBump(confl)
		}
		start := 0
		if p.IsDef() {
			start = 1 // skip the asserting literal of the reason
		}
		for _, q := range confl.lits[start:] {
			v := q.Var()
			if s.seen[v] != 0 || s.level[v] == 0 {
				continue
			}
			s.seen[v] = 1
			s.varBump(v)
			if s.level[v] >= s.decisionLevel() {
				pathC++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal on the trail to expand.
		for s.seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = 0
		pathC--
		if pathC <= 0 {
			break
		}
		confl = s.reason[p.Var()]
		if confl == nil {
			panic("sat: analyze reached a decision before the UIP")
		}
	}
	learnt[0] = p.Not()

	// Clause minimization: delete literals implied by the rest.
	s.analyzeToClr = append(s.analyzeToClr[:0], learnt...)
	abstractLevels := uint32(0)
	for _, q := range learnt[1:] {
		abstractLevels |= s.abstractLevel(q.Var())
	}
	j := 1
	for i := 1; i < len(learnt); i++ {
		q := learnt[i]
		if s.reason[q.Var()] == nil || !s.litRedundant(q, abstractLevels) {
			learnt[j] = q
			j++
		} else {
			s.stats.MinimizedOut++
		}
	}
	learnt = learnt[:j]
	// Clear seen flags set during analysis & minimization.
	for _, q := range s.analyzeToClr {
		s.seen[q.Var()] = 0
	}

	// Find backtrack level: the highest level among learnt[1:].
	btLevel = 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}

	return learnt, btLevel, s.computeLBD(learnt)
}

// computeLBD counts the distinct decision levels among the literals using
// a generation-stamped scratch array: one conflict bumps the generation,
// so clearing is free and the hot path allocates nothing (the map this
// replaces cost one allocation plus hashing per conflict — see
// BenchmarkAnalyzeLBD).
func (s *Solver) computeLBD(lits []lit.Lit) (lbd int) {
	s.lbdGen++
	if s.lbdGen == 0 {
		// Generation counter wrapped: wipe stale stamps so marks from
		// 2^32 conflicts ago cannot read as current.
		for i := range s.lbdStamp {
			s.lbdStamp[i] = 0
		}
		s.lbdGen = 1
	}
	for _, q := range lits {
		lvl := s.level[q.Var()]
		if lvl >= len(s.lbdStamp) {
			// Levels are bounded by the variable count; grow once to the
			// current need and amortize like any scratch slice.
			s.lbdStamp = append(s.lbdStamp, make([]uint32, lvl+1-len(s.lbdStamp))...)
		}
		if s.lbdStamp[lvl] != s.lbdGen {
			s.lbdStamp[lvl] = s.lbdGen
			lbd++
		}
	}
	return lbd
}

func (s *Solver) abstractLevel(v lit.Var) uint32 {
	return 1 << uint(s.level[v]&31)
}

// litRedundant checks whether literal q is implied by the other literals of
// the learnt clause (marked seen) through the implication graph; such
// literals may be removed (recursive clause minimization).
func (s *Solver) litRedundant(q lit.Lit, abstractLevels uint32) bool {
	s.analyzeStack = s.analyzeStack[:0]
	s.analyzeStack = append(s.analyzeStack, q)
	top := len(s.analyzeToClr)
	for len(s.analyzeStack) > 0 {
		p := s.analyzeStack[len(s.analyzeStack)-1]
		s.analyzeStack = s.analyzeStack[:len(s.analyzeStack)-1]
		c := s.reason[p.Var()]
		for _, l := range c.lits[1:] {
			v := l.Var()
			if s.seen[v] != 0 || s.level[v] == 0 {
				continue
			}
			if s.reason[v] == nil || s.abstractLevel(v)&abstractLevels == 0 {
				// Cannot be resolved away: q is not redundant. Undo marks.
				for _, x := range s.analyzeToClr[top:] {
					s.seen[x.Var()] = 0
				}
				s.analyzeToClr = s.analyzeToClr[:top]
				return false
			}
			s.seen[v] = 1
			s.analyzeStack = append(s.analyzeStack, l)
			s.analyzeToClr = append(s.analyzeToClr, l)
		}
	}
	return true
}

// analyzeFinal computes, after a conflict at an assumption level, the
// subset of assumptions responsible. p is the failing assumption literal.
func (s *Solver) analyzeFinal(p lit.Lit) {
	s.conflictOut = s.conflictOut[:0]
	s.conflictOut = append(s.conflictOut, p.Not())
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = 1
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if s.seen[v] == 0 {
			continue
		}
		if s.reason[v] == nil {
			if s.level[v] > 0 {
				s.conflictOut = append(s.conflictOut, s.trail[i].Not())
			}
		} else {
			for _, l := range s.reason[v].lits[1:] {
				if s.level[l.Var()] > 0 {
					s.seen[l.Var()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
	s.seen[p.Var()] = 0
}
