package sat

import (
	"allsatpre/internal/lit"
)

// fixBinaryReason restores the reason invariant for binary clauses: long
// clauses always lead with their propagated literal (propagate swaps it
// into position 0), but binary propagation fires straight off the watch
// list without touching clause memory, so a binary reason may still store
// its literals in attach order. Analysis walks reasons as lits[1:], so
// swap the propagated literal to the front on first dereference.
func (s *Solver) fixBinaryReason(c cref, p lit.Lit) {
	ls := s.ca.lits(c)
	if len(ls) == 2 && lit.Lit(ls[0]).Var() != p.Var() {
		ls[0], ls[1] = ls[1], ls[0]
	}
}

// useLearnt records that a learnt clause participated in conflict
// analysis: bump its activity, set the recently-used protection bit, and
// recompute its LBD from current levels — if the clause has become
// "gluier" it is promoted to the better tier (Glucose's dynamic LBD
// update), which is how a lucky local clause earns permanence.
func (s *Solver) useLearnt(c cref) {
	s.claBump(c)
	s.ca.setUsed(c)
	d := s.computeLBDWords(s.ca.lits(c))
	if d < s.ca.lbd(c) {
		s.ca.setLBD(c, d)
		t := tierFor(s.ca.size(c), d)
		if cur := s.ca.tier(c); t < cur {
			s.ca.setTier(c, t)
			s.bumpTier(cur, -1)
			s.bumpTier(t, 1)
			s.stats.Promoted++
		}
	}
}

// analyze performs first-UIP conflict analysis starting from the
// conflicting clause, returning the learnt clause (asserting literal first)
// and the backtrack level. It also computes the clause's LBD. The returned
// slice is a reused scratch buffer, valid until the next analyze call —
// installLearnt copies it into the arena, so nothing long-lived aliases it.
func (s *Solver) analyze(confl cref) (learnt []lit.Lit, btLevel, lbd int) {
	learnt = append(s.learntBuf[:0], lit.UndefLit) // room for the asserting literal
	pathC := 0
	var p lit.Lit = lit.UndefLit
	idx := len(s.trail) - 1

	for {
		if s.ca.isLearnt(confl) {
			s.useLearnt(confl)
		}
		ls := s.ca.lits(confl)
		start := 0
		if p.IsDef() {
			start = 1 // skip the asserting literal of the reason
		}
		for _, w := range ls[start:] {
			q := lit.Lit(w)
			v := q.Var()
			if s.seen[v] != 0 || s.level[v] == 0 {
				continue
			}
			s.seen[v] = 1
			s.varBump(v)
			if s.level[v] >= s.decisionLevel() {
				pathC++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal on the trail to expand.
		for s.seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = 0
		pathC--
		if pathC <= 0 {
			break
		}
		confl = s.reason[p.Var()]
		if confl == crefUndef {
			panic("sat: analyze reached a decision before the UIP")
		}
		s.fixBinaryReason(confl, p)
	}
	learnt[0] = p.Not()

	// Clause minimization: delete literals implied by the rest.
	s.analyzeToClr = append(s.analyzeToClr[:0], learnt...)
	abstractLevels := uint32(0)
	for _, q := range learnt[1:] {
		abstractLevels |= s.abstractLevel(q.Var())
	}
	j := 1
	for i := 1; i < len(learnt); i++ {
		q := learnt[i]
		if s.reason[q.Var()] == crefUndef || !s.litRedundant(q, abstractLevels) {
			learnt[j] = q
			j++
		} else {
			s.stats.MinimizedOut++
		}
	}
	learnt = learnt[:j]
	// Clear seen flags set during analysis & minimization.
	for _, q := range s.analyzeToClr {
		s.seen[q.Var()] = 0
	}

	// Find backtrack level: the highest level among learnt[1:].
	btLevel = 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}

	s.learntBuf = learnt
	return learnt, btLevel, s.computeLBD(learnt)
}

// computeLBD counts the distinct decision levels among the literals using
// a generation-stamped scratch array: one conflict bumps the generation,
// so clearing is free and the hot path allocates nothing (the map this
// replaces cost one allocation plus hashing per conflict — see
// BenchmarkAnalyzeLBD).
func (s *Solver) computeLBD(lits []lit.Lit) (lbd int) {
	s.lbdGen++
	if s.lbdGen == 0 {
		// Generation counter wrapped: wipe stale stamps so marks from
		// 2^32 conflicts ago cannot read as current.
		for i := range s.lbdStamp {
			s.lbdStamp[i] = 0
		}
		s.lbdGen = 1
	}
	for _, q := range lits {
		lvl := s.level[q.Var()]
		if lvl >= len(s.lbdStamp) {
			// Levels are bounded by the variable count; grow once to the
			// current need and amortize like any scratch slice.
			s.lbdStamp = append(s.lbdStamp, make([]uint32, lvl+1-len(s.lbdStamp))...)
		}
		if s.lbdStamp[lvl] != s.lbdGen {
			s.lbdStamp[lvl] = s.lbdGen
			lbd++
		}
	}
	return lbd
}

// computeLBDWords is computeLBD over a clause's raw arena words, used for
// the LBD recomputation on use without materializing a []lit.Lit.
func (s *Solver) computeLBDWords(words []uint32) (lbd int) {
	s.lbdGen++
	if s.lbdGen == 0 {
		for i := range s.lbdStamp {
			s.lbdStamp[i] = 0
		}
		s.lbdGen = 1
	}
	for _, w := range words {
		lvl := s.level[lit.Lit(w).Var()]
		if lvl >= len(s.lbdStamp) {
			s.lbdStamp = append(s.lbdStamp, make([]uint32, lvl+1-len(s.lbdStamp))...)
		}
		if s.lbdStamp[lvl] != s.lbdGen {
			s.lbdStamp[lvl] = s.lbdGen
			lbd++
		}
	}
	return lbd
}

func (s *Solver) abstractLevel(v lit.Var) uint32 {
	return 1 << uint(s.level[v]&31)
}

// litRedundant checks whether literal q is implied by the other literals of
// the learnt clause (marked seen) through the implication graph; such
// literals may be removed (recursive clause minimization).
func (s *Solver) litRedundant(q lit.Lit, abstractLevels uint32) bool {
	s.analyzeStack = s.analyzeStack[:0]
	s.analyzeStack = append(s.analyzeStack, q)
	top := len(s.analyzeToClr)
	for len(s.analyzeStack) > 0 {
		p := s.analyzeStack[len(s.analyzeStack)-1]
		s.analyzeStack = s.analyzeStack[:len(s.analyzeStack)-1]
		c := s.reason[p.Var()]
		s.fixBinaryReason(c, p)
		for _, w := range s.ca.lits(c)[1:] {
			l := lit.Lit(w)
			v := l.Var()
			if s.seen[v] != 0 || s.level[v] == 0 {
				continue
			}
			if s.reason[v] == crefUndef || s.abstractLevel(v)&abstractLevels == 0 {
				// Cannot be resolved away: q is not redundant. Undo marks.
				for _, x := range s.analyzeToClr[top:] {
					s.seen[x.Var()] = 0
				}
				s.analyzeToClr = s.analyzeToClr[:top]
				return false
			}
			s.seen[v] = 1
			s.analyzeStack = append(s.analyzeStack, l)
			s.analyzeToClr = append(s.analyzeToClr, l)
		}
	}
	return true
}

// analyzeFinal computes, after a conflict at an assumption level, the
// subset of assumptions responsible. p is the failing assumption literal.
func (s *Solver) analyzeFinal(p lit.Lit) {
	s.conflictOut = s.conflictOut[:0]
	s.conflictOut = append(s.conflictOut, p.Not())
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = 1
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if s.seen[v] == 0 {
			continue
		}
		if r := s.reason[v]; r == crefUndef {
			if s.level[v] > 0 {
				s.conflictOut = append(s.conflictOut, s.trail[i].Not())
			}
		} else {
			s.fixBinaryReason(r, s.trail[i])
			for _, w := range s.ca.lits(r)[1:] {
				l := lit.Lit(w)
				if s.level[l.Var()] > 0 {
					s.seen[l.Var()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
	s.seen[p.Var()] = 0
}
