package sat

import (
	"fmt"
	"math/rand"
	"testing"

	"allsatpre/internal/cnf"
	"allsatpre/internal/lit"
)

// BenchmarkSolvePigeonhole measures pure CDCL search on the classic
// UNSAT family.
func BenchmarkSolvePigeonhole(b *testing.B) {
	for _, n := range []int{6, 7, 8} {
		f := phpFormula(n+1, n)
		b.Run(fmt.Sprintf("php%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := FromFormula(f, DefaultOptions())
				if st := s.Solve(); st != Unsat {
					b.Fatal("expected UNSAT")
				}
			}
		})
	}
}

// BenchmarkSolveRandom3SAT measures mixed SAT/UNSAT behaviour at the
// phase-transition clause ratio.
func BenchmarkSolveRandom3SAT(b *testing.B) {
	for _, nVars := range []int{50, 100} {
		rng := rand.New(rand.NewSource(int64(nVars)))
		formulas := make([]*cnf.Formula, 16)
		for i := range formulas {
			formulas[i] = randomFormula(rng, nVars, int(4.26*float64(nVars)), 3)
		}
		b.Run(fmt.Sprintf("v%d", nVars), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := FromFormula(formulas[i%len(formulas)], DefaultOptions())
				s.Solve()
			}
		})
	}
}

// BenchmarkAnalyzeLBD isolates the per-conflict LBD computation on a
// synthetic 128-literal learnt clause spanning 64 decision levels. The
// stamped scratch array (computeLBD) replaced a per-conflict
// map[int]bool here: on this shape the map cost ~4.8µs, 9 allocations
// and ~4.4KB per conflict, the stamp array ~315ns and nothing — about
// 15× on the measurement, and a few percent of wall-clock on
// conflict-heavy solves (pigeonhole) where analyze dominates.
func BenchmarkAnalyzeLBD(b *testing.B) {
	const nVars = 512
	s := NewDefault()
	s.EnsureVars(nVars)
	lits := make([]lit.Lit, nVars/4)
	for i := range lits {
		v := lit.Var(i * 4)
		s.level[v] = i / 2 // two literals per level: exercises the dedup
		lits[i] = lit.Pos(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.computeLBD(lits); got != len(lits)/2 {
			b.Fatalf("lbd = %d, want %d", got, len(lits)/2)
		}
	}
}

// BenchmarkIncrementalAssumptions measures assumption-based re-solving
// of one instance under varying unit assumptions (the pattern the trace
// extractor and BMC rely on).
func BenchmarkIncrementalAssumptions(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	f := randomFormula(rng, 80, 280, 3)
	s := FromFormula(f, DefaultOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := lit.Var(i % 80)
		s.Solve(lit.New(v, i%2 == 0))
	}
}
