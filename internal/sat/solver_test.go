package sat

import (
	"math/rand"
	"testing"

	"allsatpre/internal/cnf"
	"allsatpre/internal/lit"
)

func checkModel(t *testing.T, f *cnf.Formula, model []bool) {
	t.Helper()
	assign := make([]lit.Tern, f.NumVars)
	for v := 0; v < f.NumVars && v < len(model); v++ {
		assign[v] = lit.TernOf(model[v])
	}
	for i, c := range f.Clauses {
		if c.Eval(assign) != lit.True {
			t.Fatalf("model does not satisfy clause %d: %v", i, c)
		}
	}
}

func TestTrivial(t *testing.T) {
	s := NewDefault()
	v := s.NewVar()
	if !s.AddClause(lit.Pos(v)) {
		t.Fatal("AddClause failed")
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v, want SAT", st)
	}
	if !s.Model()[v] {
		t.Fatal("model should set v true")
	}
}

func TestEmptyFormulaIsSat(t *testing.T) {
	s := NewDefault()
	if st := s.Solve(); st != Sat {
		t.Fatalf("empty formula should be SAT, got %v", st)
	}
}

func TestTopLevelConflict(t *testing.T) {
	s := NewDefault()
	v := s.NewVar()
	s.AddClause(lit.Pos(v))
	if s.AddClause(lit.Neg(v)) {
		t.Fatal("adding conflicting unit should fail")
	}
	if s.Okay() {
		t.Fatal("solver should not be okay")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want UNSAT", st)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := NewDefault()
	if s.AddClause() {
		t.Fatal("empty clause should make the solver unsat")
	}
}

func TestAddClauseNormalization(t *testing.T) {
	s := NewDefault()
	a, b := s.NewVar(), s.NewVar()
	// Tautology is a no-op.
	if !s.AddClause(lit.Pos(a), lit.Neg(a)) {
		t.Fatal("tautology should succeed")
	}
	if s.NumClauses() != 0 {
		t.Fatal("tautology should not be stored")
	}
	// Duplicate literals collapse.
	if !s.AddClause(lit.Pos(a), lit.Pos(a), lit.Pos(b)) {
		t.Fatal("AddClause failed")
	}
	if s.NumClauses() != 1 {
		t.Fatalf("want 1 clause, got %d", s.NumClauses())
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons into n holes — classic UNSAT family.
	for _, n := range []int{2, 3, 4, 5, 6} {
		s := NewDefault()
		// var p*n + h: pigeon p sits in hole h
		vr := func(p, h int) lit.Var { return lit.Var(p*n + h) }
		s.EnsureVars((n + 1) * n)
		for p := 0; p <= n; p++ {
			c := make([]lit.Lit, n)
			for h := 0; h < n; h++ {
				c[h] = lit.Pos(vr(p, h))
			}
			s.AddClause(c...)
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 <= n; p1++ {
				for p2 := p1 + 1; p2 <= n; p2++ {
					s.AddClause(lit.Neg(vr(p1, h)), lit.Neg(vr(p2, h)))
				}
			}
		}
		if st := s.Solve(); st != Unsat {
			t.Fatalf("PHP(%d,%d): got %v, want UNSAT", n+1, n, st)
		}
	}
}

func TestPigeonholeSatVariant(t *testing.T) {
	// n pigeons into n holes is SAT.
	n := 5
	s := NewDefault()
	vr := func(p, h int) lit.Var { return lit.Var(p*n + h) }
	f := cnf.New(n * n)
	for p := 0; p < n; p++ {
		c := make([]lit.Lit, n)
		for h := 0; h < n; h++ {
			c[h] = lit.Pos(vr(p, h))
		}
		f.Add(c...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 < n; p1++ {
			for p2 := p1 + 1; p2 < n; p2++ {
				f.Add(lit.Neg(vr(p1, h)), lit.Neg(vr(p2, h)))
			}
		}
	}
	s = FromFormula(f, DefaultOptions())
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v, want SAT", st)
	}
	checkModel(t, f, s.Model())
}

func randomFormula(rng *rand.Rand, nVars, nClauses, k int) *cnf.Formula {
	f := cnf.New(nVars)
	for i := 0; i < nClauses; i++ {
		c := make(cnf.Clause, 0, k)
		for len(c) < k {
			v := lit.Var(rng.Intn(nVars))
			l := lit.New(v, rng.Intn(2) == 0)
			dup := false
			for _, x := range c {
				if x.Var() == v {
					dup = true
					break
				}
			}
			if !dup {
				c = append(c, l)
			}
		}
		f.AddClause(c)
	}
	return f
}

// TestAgainstBruteForce cross-checks SAT/UNSAT answers and models against
// exhaustive enumeration on hundreds of random 3-CNFs around the phase
// transition.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 400; iter++ {
		nVars := 3 + rng.Intn(10)
		nClauses := 1 + rng.Intn(nVars*5)
		f := randomFormula(rng, nVars, nClauses, 3)
		want := f.CountModels() > 0
		s := FromFormula(f, DefaultOptions())
		st := s.Solve()
		if want && st != Sat {
			t.Fatalf("iter %d: solver says %v but formula is SAT\n%s", iter, st, cnf.DimacsString(f, nil))
		}
		if !want && st != Unsat {
			t.Fatalf("iter %d: solver says %v but formula is UNSAT\n%s", iter, st, cnf.DimacsString(f, nil))
		}
		if st == Sat {
			checkModel(t, f, s.Model())
		}
	}
}

func TestIncrementalAddClause(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 60; iter++ {
		nVars := 4 + rng.Intn(8)
		s := New(DefaultOptions())
		s.EnsureVars(nVars)
		f := cnf.New(nVars)
		unsatYet := false
		for step := 0; step < 30; step++ {
			c := randomFormula(rng, nVars, 1, 2+rng.Intn(2)).Clauses[0]
			f.AddClause(c)
			ok := s.AddClause(c...)
			want := f.CountModels() > 0
			if !ok {
				if want {
					t.Fatalf("iter %d step %d: AddClause failed but formula still SAT", iter, step)
				}
				unsatYet = true
				break
			}
			st := s.Solve()
			if want && st != Sat || !want && st != Unsat {
				t.Fatalf("iter %d step %d: got %v, want sat=%v", iter, step, st, want)
			}
			if st == Sat {
				checkModel(t, f, s.Model())
			}
			if st == Unsat {
				unsatYet = true
				break
			}
		}
		_ = unsatYet
	}
}

func TestAssumptions(t *testing.T) {
	// (a ∨ b) ∧ (¬a ∨ c): assuming ¬b forces a, then c.
	s := NewDefault()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(lit.Pos(a), lit.Pos(b))
	s.AddClause(lit.Neg(a), lit.Pos(c))
	if st := s.Solve(lit.Neg(b)); st != Sat {
		t.Fatalf("got %v, want SAT", st)
	}
	m := s.Model()
	if !m[a] || m[b] || !m[c] {
		t.Fatalf("bad model %v", m)
	}
	// Assuming ¬a and ¬b is UNSAT, and the conflict mentions them.
	if st := s.Solve(lit.Neg(a), lit.Neg(b)); st != Unsat {
		t.Fatalf("got %v, want UNSAT", st)
	}
	conf := s.Conflict()
	if len(conf) == 0 {
		t.Fatal("empty conflict under failing assumptions")
	}
	for _, l := range conf {
		if l != lit.Pos(a) && l != lit.Pos(b) {
			t.Fatalf("conflict literal %v is not a negated assumption", l)
		}
	}
	// Solver is reusable after UNSAT-under-assumptions.
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v, want SAT without assumptions", st)
	}
}

func TestAssumptionsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 150; iter++ {
		nVars := 4 + rng.Intn(7)
		f := randomFormula(rng, nVars, 2+rng.Intn(3*nVars), 3)
		s := FromFormula(f, DefaultOptions())
		if !s.Okay() {
			continue
		}
		// Random assumptions over distinct vars.
		nA := 1 + rng.Intn(3)
		assume := []lit.Lit{}
		used := map[lit.Var]bool{}
		for len(assume) < nA {
			v := lit.Var(rng.Intn(nVars))
			if used[v] {
				continue
			}
			used[v] = true
			assume = append(assume, lit.New(v, rng.Intn(2) == 0))
		}
		// Ground truth: add assumptions as units to a copy.
		g := f.Clone()
		for _, l := range assume {
			g.Add(l)
		}
		want := g.CountModels() > 0
		st := s.Solve(assume...)
		if want && st != Sat || !want && st != Unsat {
			t.Fatalf("iter %d: got %v, want sat=%v under %v\n%s",
				iter, st, want, assume, cnf.DimacsString(f, nil))
		}
		if st == Sat {
			checkModel(t, g, s.Model())
		} else {
			// Conflict must be a subset of negated assumptions and itself
			// sufficient: formula ∧ ¬conflict-literals... i.e. assuming the
			// negation of each conflict literal must be UNSAT again.
			neg := []lit.Lit{}
			for _, l := range conflictOrFail(t, s) {
				found := false
				for _, a := range assume {
					if l == a.Not() {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("iter %d: conflict literal %v not a negated assumption %v", iter, l, assume)
				}
				neg = append(neg, l.Not())
			}
			if len(neg) > 0 {
				if st2 := s.Solve(neg...); st2 != Unsat {
					t.Fatalf("iter %d: conflict subset not sufficient (%v)", iter, neg)
				}
			}
		}
	}
}

func conflictOrFail(t *testing.T, s *Solver) []lit.Lit {
	t.Helper()
	c := s.Conflict()
	if len(c) == 0 {
		// An empty conflict is legal only if the formula alone is UNSAT.
		if st := s.Solve(); st != Unsat {
			t.Fatal("empty conflict but formula is SAT without assumptions")
		}
	}
	return c
}

func TestMaxConflictsBudget(t *testing.T) {
	// A hard instance with a tiny budget should return Unknown.
	n := 8
	opts := DefaultOptions()
	opts.MaxConflicts = 3
	s := New(opts)
	vr := func(p, h int) lit.Var { return lit.Var(p*n + h) }
	s.EnsureVars((n + 1) * n)
	for p := 0; p <= n; p++ {
		c := make([]lit.Lit, n)
		for h := 0; h < n; h++ {
			c[h] = lit.Pos(vr(p, h))
		}
		s.AddClause(c...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(lit.Neg(vr(p1, h)), lit.Neg(vr(p2, h)))
			}
		}
	}
	if st := s.Solve(); st != Unknown {
		t.Fatalf("got %v, want UNKNOWN under budget", st)
	}
	// Removing the budget must give the real answer.
	s.opts.MaxConflicts = 0
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want UNSAT", st)
	}
}

func TestReduceDBKeepsSoundness(t *testing.T) {
	// Force many conflicts so reduceDB triggers, then validate the answer.
	rng := rand.New(rand.NewSource(1234))
	opts := DefaultOptions()
	opts.LearntFactor = 0.01 // aggressive reduction
	for iter := 0; iter < 30; iter++ {
		nVars := 10 + rng.Intn(6)
		f := randomFormula(rng, nVars, 4*nVars, 3)
		want := f.CountModels() > 0
		s := FromFormula(f, opts)
		st := s.Solve()
		if want && st != Sat || !want && st != Unsat {
			t.Fatalf("iter %d: got %v, want sat=%v", iter, st, want)
		}
		if st == Sat {
			checkModel(t, f, s.Model())
		}
	}
}

func TestSimplifyKeepsAnswer(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 50; iter++ {
		nVars := 5 + rng.Intn(6)
		f := randomFormula(rng, nVars, 3*nVars, 3)
		want := f.CountModels() > 0
		s := FromFormula(f, DefaultOptions())
		s.Solve()
		s.Simplify()
		st := s.Solve()
		if want && st != Sat || !want && st != Unsat {
			t.Fatalf("iter %d: after Simplify got %v, want sat=%v", iter, st, want)
		}
	}
}

func TestLuby(t *testing.T) {
	want := []uint64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(uint64(i)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestStatsProgress(t *testing.T) {
	s := NewDefault()
	f := randomFormula(rand.New(rand.NewSource(3)), 12, 50, 3)
	s.AddFormula(f)
	s.Solve()
	st := s.Stats()
	if st.Decisions == 0 && st.Propagations == 0 {
		t.Error("expected some search activity")
	}
}

func TestPhaseSavingRepeatability(t *testing.T) {
	// Solving the same satisfiable instance twice in a row must both be SAT.
	f := randomFormula(rand.New(rand.NewSource(8)), 10, 20, 3)
	s := FromFormula(f, DefaultOptions())
	if s.Solve() == Sat {
		if st := s.Solve(); st != Sat {
			t.Fatalf("second solve got %v", st)
		}
		checkModel(t, f, s.Model())
	}
}

func TestXorChain(t *testing.T) {
	// x0 ⊕ x1 ⊕ ... ⊕ xn = 1 encoded pairwise with auxiliary vars: exactly
	// half of assignments satisfy; solver must find one and honor parity.
	n := 12
	s := NewDefault()
	vars := make([]lit.Var, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	// aux[i] = parity of x0..xi
	aux := make([]lit.Var, n)
	aux[0] = vars[0]
	for i := 1; i < n; i++ {
		aux[i] = s.NewVar()
		a, b, c := aux[i-1], vars[i], aux[i]
		// c = a ⊕ b
		s.AddClause(lit.Neg(a), lit.Neg(b), lit.Neg(c))
		s.AddClause(lit.Pos(a), lit.Pos(b), lit.Neg(c))
		s.AddClause(lit.Neg(a), lit.Pos(b), lit.Pos(c))
		s.AddClause(lit.Pos(a), lit.Neg(b), lit.Pos(c))
	}
	s.AddClause(lit.Pos(aux[n-1]))
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v, want SAT", st)
	}
	m := s.Model()
	parity := false
	for _, v := range vars {
		parity = parity != m[v]
	}
	if !parity {
		t.Fatal("model violates odd parity constraint")
	}
}

func TestVarHeapOrdering(t *testing.T) {
	act := []float64{1, 5, 3, 9, 2}
	h := newVarHeap(&act)
	for v := 0; v < len(act); v++ {
		h.insert(lit.Var(v))
	}
	want := []lit.Var{3, 1, 2, 4, 0}
	for i, w := range want {
		if h.empty() {
			t.Fatalf("heap empty at %d", i)
		}
		if got := h.removeMin(); got != w {
			t.Fatalf("pop %d: got %v, want %v", i, got, w)
		}
	}
	if !h.empty() {
		t.Fatal("heap should be empty")
	}
}

func TestVarHeapDecrease(t *testing.T) {
	act := []float64{1, 2, 3}
	h := newVarHeap(&act)
	for v := 0; v < 3; v++ {
		h.insert(lit.Var(v))
	}
	act[0] = 100
	h.decrease(0)
	if got := h.removeMin(); got != 0 {
		t.Fatalf("after bump, pop = %v, want v0", got)
	}
	h.insert(0) // re-insert; duplicate insert must be a no-op
	h.insert(0)
	if len(h.heap) != 3 {
		t.Fatalf("duplicate insert changed size: %d", len(h.heap))
	}
	h.rebuild()
	if got := h.removeMin(); got != 0 {
		t.Fatalf("after rebuild, pop = %v, want v0", got)
	}
}

func TestSolverString(t *testing.T) {
	s := NewDefault()
	s.NewVar()
	if s.String() == "" {
		t.Error("empty String()")
	}
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Error("Status.String mismatch")
	}
}

func TestModelBufAndConflictBufReuse(t *testing.T) {
	s := NewDefault()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(lit.Pos(a), lit.Pos(b))
	s.AddClause(lit.Neg(a))
	if s.Solve() != Sat {
		t.Fatal("expected SAT")
	}
	want := s.Model()
	buf := s.ModelBuf(nil)
	if len(buf) != len(want) {
		t.Fatalf("ModelBuf len %d, want %d", len(buf), len(want))
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("ModelBuf[%d] = %v, want %v", i, buf[i], want[i])
		}
	}
	// A second call into the same buffer must reuse its backing array.
	again := s.ModelBuf(buf)
	if len(again) > 0 && len(buf) > 0 && &again[0] != &buf[0] {
		t.Fatal("ModelBuf reallocated despite sufficient capacity")
	}

	// Conflict under assumptions, via both accessors.
	if st := s.Solve(lit.Pos(a)); st != Unsat {
		t.Fatalf("status %v, want UNSAT under conflicting assumption", st)
	}
	cw := s.Conflict()
	cb := s.ConflictBuf(nil)
	if len(cw) != len(cb) {
		t.Fatalf("ConflictBuf len %d, want %d", len(cb), len(cw))
	}
	for i := range cw {
		if cw[i] != cb[i] {
			t.Fatalf("ConflictBuf[%d] = %v, want %v", i, cb[i], cw[i])
		}
	}
}

func TestEnsureVarsBulkGrow(t *testing.T) {
	s := NewDefault()
	s.EnsureVars(1000)
	if s.NumVars() != 1000 {
		t.Fatalf("NumVars %d, want 1000", s.NumVars())
	}
	if len(s.watches) != 2000 {
		t.Fatalf("watches len %d, want 2000", len(s.watches))
	}
	s.EnsureVars(10) // no-op shrink attempt
	if s.NumVars() != 1000 {
		t.Fatalf("NumVars shrank to %d", s.NumVars())
	}
}

func TestActivationLiteralRetire(t *testing.T) {
	// Pins the activation-literal contract the incremental reach session
	// (internal/incr) relies on: a clause group gated on ¬act is enabled
	// by assuming act, survives UNSAT answers, and is permanently retired
	// by the unit clause ¬act — after which the solver behaves as if the
	// group was never added.
	s := NewDefault()
	act1, act2 := s.NewVar(), s.NewVar()
	x, y := s.NewVar(), s.NewVar()
	// Group 1: act1 → x, act1 → y. Group 2: act2 → ¬x.
	s.AddClause(lit.Neg(act1), lit.Pos(x))
	s.AddClause(lit.Neg(act1), lit.Pos(y))
	s.AddClause(lit.Neg(act2), lit.Neg(x))

	// Both groups active: x ∧ ¬x, so UNSAT, and the final conflict is
	// over the activation assumptions only.
	if st := s.Solve(lit.Pos(act1), lit.Pos(act2)); st != Unsat {
		t.Fatalf("both groups: got %v, want UNSAT", st)
	}
	for _, l := range s.Conflict() {
		if l != lit.Neg(act1) && l != lit.Neg(act2) {
			t.Fatalf("conflict literal %v is not a negated activation assumption", l)
		}
	}

	// Group 1 alone is satisfiable and forces x, y.
	if st := s.Solve(lit.Pos(act1)); st != Sat {
		t.Fatalf("group 1: got %v, want SAT", st)
	}
	if m := s.Model(); !m[x] || !m[y] {
		t.Fatalf("group 1 model: x=%v y=%v, want both true", m[x], m[y])
	}

	// Retire group 1. The unit must be accepted, and from now on group 2
	// alone governs: x is forced false, and re-assuming act1 is a
	// top-level contradiction, not a crash.
	if !s.AddClause(lit.Neg(act1)) {
		t.Fatal("retiring unit ¬act1 rejected")
	}
	if st := s.Solve(lit.Pos(act2)); st != Sat {
		t.Fatalf("after retire: got %v, want SAT", st)
	}
	if m := s.Model(); m[x] {
		t.Fatal("after retire, group 2 should force x=false")
	}
	if st := s.Solve(lit.Pos(act1)); st != Unsat {
		t.Fatalf("assuming retired act1: got %v, want UNSAT", st)
	}
	// And the solver keeps working without assumptions afterwards.
	if st := s.Solve(); st != Sat {
		t.Fatalf("final solve: got %v, want SAT", st)
	}
}
