package sat

import (
	"slices"

	"allsatpre/internal/budget"
	"allsatpre/internal/lit"
)

// Solve determines satisfiability of the current clause set under the given
// assumption literals. On Sat, Model reports the assignment; on Unsat under
// assumptions, Conflict reports a sufficient subset of failed assumptions.
// Unknown is returned only when a resource limit — Options.MaxConflicts or
// the Options.Budget — is exceeded; StopReason then tells which one.
func (s *Solver) Solve(assumptions ...lit.Lit) Status {
	s.cancelUntil(0)
	s.conflictOut = s.conflictOut[:0]
	s.stopReason = budget.None
	if !s.okay {
		return Unsat
	}
	if s.check == nil && !s.opts.Budget.IsZero() {
		s.check = s.opts.Budget.Start()
	}
	if s.check != nil {
		if r := s.check.Now(); r != budget.None {
			s.stopReason = r
			return Unknown
		}
	}
	for _, a := range assumptions {
		if int(a.Var()) >= len(s.assign) {
			s.EnsureVars(int(a.Var()) + 1)
		}
	}
	s.assumptions = assumptions

	s.maxLearnts = float64(len(s.clauses)) * s.opts.LearntFactor
	if s.maxLearnts < 100 {
		s.maxLearnts = 100
	}

	var curRestart uint64 = 1
	conflictsAtStart := s.stats.Conflicts
	for {
		restartCap := s.opts.RestartBase * luby(curRestart)
		st := s.search(restartCap, conflictsAtStart)
		if st != Unknown {
			if st == Sat {
				// Snapshot the model before backtracking erases it.
				s.model = s.model[:0]
				for _, t := range s.assign {
					s.model = append(s.model, t == lit.True)
				}
			}
			s.cancelUntil(0)
			return st
		}
		if s.stopReason != budget.None {
			s.cancelUntil(0)
			return Unknown
		}
		curRestart++
		s.stats.Restarts++
	}
}

// limitExceeded checks the per-call conflict cap and the cumulative budget
// caps, recording the stop reason when one trips. conflictsAtStart anchors
// the per-call cap.
func (s *Solver) limitExceeded(conflictsAtStart uint64) bool {
	if s.opts.MaxConflicts > 0 && s.stats.Conflicts-conflictsAtStart >= s.opts.MaxConflicts {
		s.stopReason = budget.Conflicts
		return true
	}
	if b := s.opts.Budget.MaxConflicts; b > 0 && s.stats.Conflicts >= b {
		s.stopReason = budget.Conflicts
		return true
	}
	if b := s.opts.Budget.MaxDecisions; b > 0 && s.stats.Decisions >= b {
		s.stopReason = budget.Decisions
		return true
	}
	if s.check != nil {
		if r := s.check.Poll(); r != budget.None {
			s.stopReason = r
			return true
		}
	}
	return false
}

// search runs CDCL until a result, a restart budget of nConflicts, or the
// global conflict budget is exhausted (returning Unknown in both cases).
func (s *Solver) search(nConflicts, conflictsAtStart uint64) Status {
	var conflictsHere uint64
	for {
		confl := s.propagate()
		if confl != crefUndef {
			s.stats.Conflicts++
			conflictsHere++
			if s.decisionLevel() == 0 {
				s.okay = false
				if s.proof != nil {
					s.proof.addClause(nil)
				}
				return Unsat
			}
			// Amortized budget poll: without it a consecutive-conflict
			// streak never reaches the no-conflict check below and can
			// overshoot MaxConflicts/deadline/cancellation arbitrarily.
			// Every 64th conflict keeps the hot loop lean while bounding
			// the overshoot.
			if s.stats.Conflicts&63 == 0 && s.limitExceeded(conflictsAtStart) {
				return Unknown
			}
			learnt, btLevel, lbd := s.analyze(confl)
			if s.proof != nil {
				s.proof.addClause(learnt)
			}
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], crefUndef)
			} else {
				c := s.installLearnt(learnt, lbd)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.stats.Learned++
			s.stats.LearnedLits += uint64(len(learnt))
			s.varDecay()
			s.claDecay()
			continue
		}

		// No conflict.
		if s.limitExceeded(conflictsAtStart) {
			return Unknown
		}
		if conflictsHere >= nConflicts {
			s.cancelUntil(s.baseLevel())
			return Unknown // restart
		}
		if s.reduceNeeded() {
			s.reduceDB()
		}

		// Establish assumptions as the first decisions.
		next := lit.UndefLit
		for s.decisionLevel() < len(s.assumptions) {
			p := s.assumptions[s.decisionLevel()]
			switch s.LitValue(p) {
			case lit.True:
				s.newDecisionLevel() // dummy level for satisfied assumption
			case lit.False:
				s.analyzeFinal(p)
				return Unsat
			default:
				next = p
			}
			if next.IsDef() {
				break
			}
		}
		if !next.IsDef() {
			next = s.pickBranchLit()
			if !next.IsDef() {
				return Sat // all variables assigned
			}
			s.stats.Decisions++
		}
		s.newDecisionLevel()
		s.uncheckedEnqueue(next, crefUndef)
	}
}

// baseLevel is the decision level below which restarts must not backtrack
// (the assumption levels).
func (s *Solver) baseLevel() int {
	if len(s.assumptions) < s.decisionLevel() {
		return len(s.assumptions)
	}
	return s.decisionLevel()
}

// reduceNeeded gates DB reduction on the reducible population: core-tier
// clauses are permanent, so only tier2+local count against the cap.
func (s *Solver) reduceNeeded() bool {
	return float64(s.nTier2+s.nLocal) >= s.maxLearnts+float64(len(s.trail))
}

// locked reports whether clause c is the antecedent of a current
// assignment. Reason clauses lead with their propagated literal (an
// invariant propagate maintains for all clauses long enough to be
// reducible), so one variable lookup decides it.
func (s *Solver) locked(c cref) bool {
	v := s.ca.lit(c, 0).Var()
	return s.assign[v] != lit.Unknown && s.reason[v] == c
}

// removeLearnt tombstones a learnt clause: proof deletion, tier and
// footprint bookkeeping, arena waste accounting. Watch lists drop the
// tombstone lazily; garbage collection reclaims the words.
func (s *Solver) removeLearnt(c cref) {
	if s.proof != nil {
		s.tmpLits = s.ca.litsBuf(c, s.tmpLits)
		s.proof.deleteClause(s.tmpLits)
	}
	s.bumpTier(s.ca.tier(c), -1)
	s.learntWords -= uint64(s.ca.words(c))
	s.ca.setDeleted(c)
	s.stats.Reduced++
}

// reduceDB manages the tiered learnt database, Glucose-style:
//
//   - core (LBD ≤ 2, and every binary) is never touched;
//   - tier2 clauses that were used since the previous round keep their
//     protection cleared for the next one; unused tier2 clauses are
//     demoted to local;
//   - the local tier is sorted by activity and its less active half
//     deleted, skipping clauses that are locked (reason of a current
//     assignment) or recently used.
//
// The sort key is (activity, cref) — a total order, so reduction is
// deterministic and the worker-count equivalence suite stays bit-exact.
// Compaction runs afterwards when the tombstoned words pass the arena's
// waste threshold.
func (s *Solver) reduceDB() {
	local := s.reduceBuf[:0]
	for _, c := range s.learnts {
		if s.ca.isDeleted(c) {
			continue
		}
		switch s.ca.tier(c) {
		case tierTwo:
			if s.ca.isUsed(c) {
				s.ca.clearUsed(c)
			} else {
				s.ca.setTier(c, tierLocal)
				s.nTier2--
				s.nLocal++
				s.stats.Demoted++
				local = append(local, c)
			}
		case tierLocal:
			local = append(local, c)
		}
	}
	slices.SortFunc(local, func(a, b cref) int {
		aa, ba := s.ca.activity(a), s.ca.activity(b)
		switch {
		case aa < ba:
			return -1
		case aa > ba:
			return 1
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	})
	s.reduceBuf = local

	limit := len(local) / 2
	removed := 0
	for _, c := range local {
		if removed >= limit {
			break
		}
		if s.ca.isUsed(c) {
			s.ca.clearUsed(c)
			continue
		}
		if s.locked(c) {
			continue
		}
		s.removeLearnt(c)
		removed++
	}
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if s.ca.isDeleted(c) {
			continue
		}
		kept = append(kept, c)
	}
	s.learnts = kept
	s.maxLearnts *= s.opts.LearntGrowth
	if s.ca.gcNeeded() {
		s.garbageCollect()
	}
}

// Simplify removes problem and learnt clauses satisfied at level 0. Must be
// called at decision level 0. Binary watch lists are swept eagerly (they
// have no lazy-drop path); long watch lists shed tombstones lazily or at
// the compaction this may trigger.
func (s *Solver) Simplify() bool {
	if s.decisionLevel() != 0 {
		panic("sat: Simplify above level 0")
	}
	if !s.okay {
		return false
	}
	if s.propagate() != crefUndef {
		s.okay = false
		return false
	}
	satisfied := func(c cref) bool {
		for _, w := range s.ca.lits(c) {
			l := lit.Lit(w)
			if s.LitValue(l) == lit.True && s.level[l.Var()] == 0 {
				return true
			}
		}
		return false
	}
	anyDeleted := false
	filter := func(cs []cref, learnt bool) []cref {
		out := cs[:0]
		for _, c := range cs {
			if s.ca.isDeleted(c) {
				continue
			}
			if satisfied(c) {
				if learnt {
					s.bumpTier(s.ca.tier(c), -1)
					s.learntWords -= uint64(s.ca.words(c))
				}
				if s.proof != nil {
					s.tmpLits = s.ca.litsBuf(c, s.tmpLits)
					s.proof.deleteClause(s.tmpLits)
				}
				s.ca.setDeleted(c)
				anyDeleted = true
				continue
			}
			out = append(out, c)
		}
		return out
	}
	s.clauses = filter(s.clauses, false)
	s.learnts = filter(s.learnts, true)
	if anyDeleted {
		for li := range s.binWatches {
			ws := s.binWatches[li]
			out := ws[:0]
			for _, w := range ws {
				if s.ca.isDeleted(cref(w.c)) {
					continue
				}
				out = append(out, w)
			}
			s.binWatches[li] = out
		}
	}
	if s.ca.gcNeeded() {
		s.garbageCollect()
	}
	return true
}
