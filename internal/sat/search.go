package sat

import (
	"sort"

	"allsatpre/internal/budget"
	"allsatpre/internal/lit"
)

// Solve determines satisfiability of the current clause set under the given
// assumption literals. On Sat, Model reports the assignment; on Unsat under
// assumptions, Conflict reports a sufficient subset of failed assumptions.
// Unknown is returned only when a resource limit — Options.MaxConflicts or
// the Options.Budget — is exceeded; StopReason then tells which one.
func (s *Solver) Solve(assumptions ...lit.Lit) Status {
	s.cancelUntil(0)
	s.conflictOut = s.conflictOut[:0]
	s.stopReason = budget.None
	if !s.okay {
		return Unsat
	}
	if s.check == nil && !s.opts.Budget.IsZero() {
		s.check = s.opts.Budget.Start()
	}
	if s.check != nil {
		if r := s.check.Now(); r != budget.None {
			s.stopReason = r
			return Unknown
		}
	}
	for _, a := range assumptions {
		if int(a.Var()) >= len(s.assign) {
			s.EnsureVars(int(a.Var()) + 1)
		}
	}
	s.assumptions = assumptions

	s.maxLearnts = float64(len(s.clauses)) * s.opts.LearntFactor
	if s.maxLearnts < 100 {
		s.maxLearnts = 100
	}

	var curRestart uint64 = 1
	conflictsAtStart := s.stats.Conflicts
	for {
		restartCap := s.opts.RestartBase * luby(curRestart)
		st := s.search(restartCap, conflictsAtStart)
		if st != Unknown {
			if st == Sat {
				// Snapshot the model before backtracking erases it.
				s.model = s.model[:0]
				for _, t := range s.assign {
					s.model = append(s.model, t == lit.True)
				}
			}
			s.cancelUntil(0)
			return st
		}
		if s.stopReason != budget.None {
			s.cancelUntil(0)
			return Unknown
		}
		curRestart++
		s.stats.Restarts++
	}
}

// limitExceeded checks the per-call conflict cap and the cumulative budget
// caps, recording the stop reason when one trips. conflictsAtStart anchors
// the per-call cap.
func (s *Solver) limitExceeded(conflictsAtStart uint64) bool {
	if s.opts.MaxConflicts > 0 && s.stats.Conflicts-conflictsAtStart >= s.opts.MaxConflicts {
		s.stopReason = budget.Conflicts
		return true
	}
	if b := s.opts.Budget.MaxConflicts; b > 0 && s.stats.Conflicts >= b {
		s.stopReason = budget.Conflicts
		return true
	}
	if b := s.opts.Budget.MaxDecisions; b > 0 && s.stats.Decisions >= b {
		s.stopReason = budget.Decisions
		return true
	}
	if s.check != nil {
		if r := s.check.Poll(); r != budget.None {
			s.stopReason = r
			return true
		}
	}
	return false
}

// search runs CDCL until a result, a restart budget of nConflicts, or the
// global conflict budget is exhausted (returning Unknown in both cases).
func (s *Solver) search(nConflicts, conflictsAtStart uint64) Status {
	var conflictsHere uint64
	for {
		confl := s.propagate()
		if confl != nil {
			s.stats.Conflicts++
			conflictsHere++
			if s.decisionLevel() == 0 {
				s.okay = false
				if s.proof != nil {
					s.proof.addClause(nil)
				}
				return Unsat
			}
			// Amortized budget poll: without it a consecutive-conflict
			// streak never reaches the no-conflict check below and can
			// overshoot MaxConflicts/deadline/cancellation arbitrarily.
			// Every 64th conflict keeps the hot loop lean while bounding
			// the overshoot.
			if s.stats.Conflicts&63 == 0 && s.limitExceeded(conflictsAtStart) {
				return Unknown
			}
			learnt, btLevel, lbd := s.analyze(confl)
			if s.proof != nil {
				s.proof.addClause(learnt)
			}
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				cl := &clause{lits: learnt, learnt: true, lbd: lbd}
				s.learnts = append(s.learnts, cl)
				if len(s.learnts) > s.stats.PeakLearnts {
					s.stats.PeakLearnts = len(s.learnts)
				}
				s.attach(cl)
				s.claBump(cl)
				s.uncheckedEnqueue(learnt[0], cl)
			}
			s.stats.Learned++
			s.stats.LearnedLits += uint64(len(learnt))
			s.varDecay()
			s.claDecay()
			continue
		}

		// No conflict.
		if s.limitExceeded(conflictsAtStart) {
			return Unknown
		}
		if conflictsHere >= nConflicts {
			s.cancelUntil(s.baseLevel())
			return Unknown // restart
		}
		if float64(len(s.learnts)) >= s.maxLearnts+float64(len(s.trail)) {
			s.reduceDB()
		}

		// Establish assumptions as the first decisions.
		next := lit.UndefLit
		for s.decisionLevel() < len(s.assumptions) {
			p := s.assumptions[s.decisionLevel()]
			switch s.LitValue(p) {
			case lit.True:
				s.newDecisionLevel() // dummy level for satisfied assumption
			case lit.False:
				s.analyzeFinal(p)
				return Unsat
			default:
				next = p
			}
			if next.IsDef() {
				break
			}
		}
		if !next.IsDef() {
			next = s.pickBranchLit()
			if !next.IsDef() {
				return Sat // all variables assigned
			}
			s.stats.Decisions++
		}
		s.newDecisionLevel()
		s.uncheckedEnqueue(next, nil)
	}
}

// baseLevel is the decision level below which restarts must not backtrack
// (the assumption levels).
func (s *Solver) baseLevel() int {
	if len(s.assumptions) < s.decisionLevel() {
		return len(s.assumptions)
	}
	return s.decisionLevel()
}

// reduceDB removes roughly half of the learnt clauses, preferring low
// activity and high LBD; binary clauses, LBD≤2 clauses, and clauses that
// are the reason for a current assignment are kept.
func (s *Solver) reduceDB() {
	ls := s.learnts
	sort.Slice(ls, func(i, j int) bool {
		a, b := ls[i], ls[j]
		if (a.lbd <= 2) != (b.lbd <= 2) {
			return b.lbd <= 2 // glue clauses last (kept)
		}
		return a.activity < b.activity
	})
	locked := func(c *clause) bool {
		v := c.lits[0].Var()
		return s.assign[v] != lit.Unknown && s.reason[v] == c
	}
	limit := len(ls) / 2
	kept := ls[:0]
	for i, c := range ls {
		if i < limit && c.len() > 2 && c.lbd > 2 && !locked(c) {
			c.deleted = true
			s.stats.Reduced++
			if s.proof != nil {
				s.proof.deleteClause(c.lits)
			}
			continue
		}
		kept = append(kept, c)
	}
	s.learnts = kept
	s.maxLearnts *= s.opts.LearntGrowth
}

// Simplify removes problem and learnt clauses satisfied at level 0. Must be
// called at decision level 0.
func (s *Solver) Simplify() bool {
	if s.decisionLevel() != 0 {
		panic("sat: Simplify above level 0")
	}
	if !s.okay {
		return false
	}
	if s.propagate() != nil {
		s.okay = false
		return false
	}
	filter := func(cs []*clause) []*clause {
		out := cs[:0]
		for _, c := range cs {
			sat := false
			for _, l := range c.lits {
				if s.LitValue(l) == lit.True && s.level[l.Var()] == 0 {
					sat = true
					break
				}
			}
			if sat {
				c.deleted = true
				if s.proof != nil {
					s.proof.deleteClause(c.lits)
				}
				continue
			}
			out = append(out, c)
		}
		return out
	}
	s.clauses = filter(s.clauses)
	s.learnts = filter(s.learnts)
	return true
}
