package sat

import (
	"math/rand"
	"testing"

	"allsatpre/internal/budget"
	"allsatpre/internal/cnf"
	"allsatpre/internal/lit"
)

// solveTrace runs Solve on a formula-loaded solver and snapshots
// everything observable: status, model, and the full statistics record.
type solveTrace struct {
	status Status
	model  []bool
	stats  Stats
}

func traceOf(s *Solver, f *cnf.Formula) solveTrace {
	if !s.AddFormula(f) {
		return solveTrace{status: Unsat, stats: s.Stats()}
	}
	st := s.Solve()
	return solveTrace{status: st, model: s.Model(), stats: s.Stats()}
}

func sameTrace(t *testing.T, fresh, reused solveTrace, label string) {
	t.Helper()
	if fresh.status != reused.status {
		t.Fatalf("%s: status fresh=%v reused=%v", label, fresh.status, reused.status)
	}
	if len(fresh.model) != len(reused.model) {
		t.Fatalf("%s: model length fresh=%d reused=%d", label, len(fresh.model), len(reused.model))
	}
	for i := range fresh.model {
		if fresh.model[i] != reused.model[i] {
			t.Fatalf("%s: model differs at var %d", label, i)
		}
	}
	if fresh.stats != reused.stats {
		t.Fatalf("%s: stats differ\nfresh:  %+v\nreused: %+v", label, fresh.stats, reused.stats)
	}
}

// TestResetBitIdentical pins the Reset contract at the solver level: a
// Reset-reused solver must reproduce a fresh solver's entire observable
// trajectory — status, model, and every statistics counter — on a sweep
// of random formulas around the phase transition and on the
// conflict-dense pigeonhole instances.
func TestResetBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	formulas := []*cnf.Formula{pigeonhole(4), pigeonhole(5)}
	for i := 0; i < 20; i++ {
		formulas = append(formulas, randomFormula(rng, 30, 120+i*2, 3))
	}
	reused := NewDefault()
	// Warm the reused solver on an unrelated instance first so its
	// backing arrays hold stale contents that Reset must neutralize.
	traceOf(reused, pigeonhole(5))
	for i, f := range formulas {
		fresh := NewDefault()
		want := traceOf(fresh, f)
		reused.Reset(DefaultOptions())
		got := traceOf(reused, f)
		sameTrace(t, want, got, "formula "+string(rune('A'+i)))
	}
}

// TestResetAfterAbort reuses a solver whose previous Solve was cut off
// mid-search by a budget, leaving a partial trail, learnt clauses, and a
// nonzero stop reason behind — Reset must clear all of it.
func TestResetAfterAbort(t *testing.T) {
	s := New(Options{Budget: budget.Budget{MaxConflicts: 3}})
	hard := pigeonhole(6)
	if !s.AddFormula(hard) {
		t.Fatal("pigeonhole trivially unsat at load")
	}
	if st := s.Solve(); st != Unknown {
		t.Fatalf("expected budget abort, got %v", st)
	}
	if s.StopReason() == budget.None {
		t.Fatal("expected a stop reason after abort")
	}

	f := randomFormula(rand.New(rand.NewSource(11)), 25, 100, 3)
	want := traceOf(NewDefault(), f)
	s.Reset(DefaultOptions())
	if s.StopReason() != budget.None {
		t.Fatal("Reset left a stale stop reason")
	}
	got := traceOf(s, f)
	sameTrace(t, want, got, "after abort")
}

// TestResetRetainsCapacity is the point of Reset over New: the clause
// arena and watch-list backing arrays must survive at their high-water
// capacity.
func TestResetRetainsCapacity(t *testing.T) {
	s := NewDefault()
	traceOf(s, pigeonhole(6))
	arenaCap := cap(s.ca.data)
	watchCap := cap(s.watches)
	var innerCap int
	for _, w := range s.watches {
		innerCap += cap(w)
	}
	if arenaCap == 0 || innerCap == 0 {
		t.Fatal("expected nonzero capacities after a solve")
	}
	s.Reset(DefaultOptions())
	if cap(s.ca.data) != arenaCap {
		t.Fatalf("arena capacity dropped: %d -> %d", arenaCap, cap(s.ca.data))
	}
	if cap(s.watches) != watchCap {
		t.Fatalf("watch outer capacity dropped: %d -> %d", watchCap, cap(s.watches))
	}
	if s.NumVars() != 0 || s.NumClauses() != 0 || s.NumLearnts() != 0 {
		t.Fatalf("Reset left contents: vars=%d clauses=%d learnts=%d",
			s.NumVars(), s.NumClauses(), s.NumLearnts())
	}
	// Re-extend into the retained region: inner watch arrays must come
	// back with their old capacity, not nil.
	s.EnsureVars(watchCap / 2)
	var after int
	for _, w := range s.watches {
		after += cap(w)
	}
	if after != innerCap {
		t.Fatalf("inner watch capacity not retained: %d -> %d", innerCap, after)
	}
	if s.RetainedBytes() == 0 {
		t.Fatal("RetainedBytes reported zero for a warm solver")
	}
}

// TestResetOptionsNormalization mirrors New's zero-value handling:
// resource caps survive the default substitution.
func TestResetOptionsNormalization(t *testing.T) {
	s := NewDefault()
	s.Reset(Options{MaxConflicts: 7, Budget: budget.Budget{MaxDecisions: 9}})
	if s.opts.VarDecay != DefaultOptions().VarDecay {
		t.Fatalf("defaults not substituted: VarDecay=%v", s.opts.VarDecay)
	}
	if s.opts.MaxConflicts != 7 || s.opts.Budget.MaxDecisions != 9 {
		t.Fatalf("resource caps erased: %+v", s.opts)
	}
}

func TestExtendWatchListsReuse(t *testing.T) {
	ws := make([][]watcher, 0, 4)
	ws = extendWatchLists(ws)
	ws = extendWatchLists(ws)
	ws[2] = append(ws[2], watcher{c: 1}, watcher{c: 2})
	kept := cap(ws[2])
	ws = ws[:0]
	ws = extendWatchLists(ws)
	ws = extendWatchLists(ws)
	if len(ws[2]) != 0 || cap(ws[2]) != kept {
		t.Fatalf("inner slice not truncated in place: len=%d cap=%d want cap %d",
			len(ws[2]), cap(ws[2]), kept)
	}
	_ = lit.UndefLit
}
