package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"allsatpre/internal/cnf"
	"allsatpre/internal/lit"
)

// Proof logging (DRUP): when Options.Proof is set, the solver emits every
// learnt clause as an addition line and every clause removed by database
// reduction as a deletion line, in DIMACS-like syntax:
//
//	1 -3 4 0        (addition)
//	d 2 -5 0        (deletion)
//
// An UNSAT answer appends the empty clause "0". The resulting transcript
// is checkable without trusting the solver via CheckDRUP, which verifies
// that every added clause is RUP (reverse unit propagation) with respect
// to the original formula plus previously added clauses.

// proofLogger buffers and formats proof lines.
type proofLogger struct {
	w *bufio.Writer
}

func newProofLogger(w io.Writer) *proofLogger {
	return &proofLogger{w: bufio.NewWriter(w)}
}

func (p *proofLogger) addClause(lits []lit.Lit) {
	for _, l := range lits {
		fmt.Fprintf(p.w, "%d ", l.Dimacs())
	}
	fmt.Fprintln(p.w, "0")
}

func (p *proofLogger) deleteClause(lits []lit.Lit) {
	fmt.Fprint(p.w, "d ")
	for _, l := range lits {
		fmt.Fprintf(p.w, "%d ", l.Dimacs())
	}
	fmt.Fprintln(p.w, "0")
}

func (p *proofLogger) flush() {
	p.w.Flush()
}

// SetProofWriter enables DRUP proof logging on the solver. Must be called
// before any Solve; the proof covers all subsequent learning. Call
// FlushProof before reading the transcript.
func (s *Solver) SetProofWriter(w io.Writer) {
	s.proof = newProofLogger(w)
}

// FlushProof flushes buffered proof lines to the underlying writer.
func (s *Solver) FlushProof() {
	if s.proof != nil {
		s.proof.flush()
	}
}

// proofStep is one parsed DRUP line.
type proofStep struct {
	del  bool
	lits []lit.Lit
}

// parseDRUP reads a DRUP transcript.
func parseDRUP(r io.Reader) ([]proofStep, error) {
	var steps []proofStep
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		step := proofStep{}
		if strings.HasPrefix(line, "d ") {
			step.del = true
			line = line[2:]
		}
		closed := false
		for _, tok := range strings.Fields(line) {
			d, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("drup line %d: bad literal %q", lineNo, tok)
			}
			if d == 0 {
				closed = true
				break
			}
			step.lits = append(step.lits, lit.FromDimacs(d))
		}
		if !closed {
			return nil, fmt.Errorf("drup line %d: missing terminating 0", lineNo)
		}
		steps = append(steps, step)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return steps, nil
}

// CheckDRUP verifies a DRUP unsatisfiability proof for formula f: every
// addition must be derivable by reverse unit propagation from the
// original clauses plus the previously added (and not yet deleted)
// clauses, and the transcript must contain (or imply) the empty clause.
// It returns nil when the proof establishes UNSAT.
//
// The checker is a small, independent implementation: a counter-based
// unit propagator over a multiset clause database — deliberately sharing
// no code with the solver it audits.
func CheckDRUP(f *cnf.Formula, proof io.Reader) error {
	steps, err := parseDRUP(proof)
	if err != nil {
		return err
	}
	db := newRupDB(f.NumVars)
	for _, c := range f.Clauses {
		db.add(c)
	}
	provedEmpty := false
	for i, st := range steps {
		if st.del {
			if !db.remove(st.lits) {
				return fmt.Errorf("drup step %d: deletion of a clause not in the database", i+1)
			}
			continue
		}
		if !db.rup(st.lits) {
			return fmt.Errorf("drup step %d: clause %v is not RUP", i+1, st.lits)
		}
		if len(st.lits) == 0 {
			provedEmpty = true
			break
		}
		db.add(st.lits)
	}
	if !provedEmpty {
		// Accept transcripts whose last RUP check already yields a
		// top-level conflict: the empty clause must still be RUP now.
		if !db.rup(nil) {
			return fmt.Errorf("drup: proof does not derive the empty clause")
		}
	}
	return nil
}

// rupDB is the checker's clause database with a simple assignment stack.
type rupDB struct {
	nVars   int
	clauses []rupClause
	// index by literal to clause positions (kept as a multiset; removal
	// tombstones).
	occ map[lit.Lit][]int
}

type rupClause struct {
	lits []lit.Lit
	dead bool
}

func newRupDB(nVars int) *rupDB {
	return &rupDB{nVars: nVars, occ: make(map[lit.Lit][]int)}
}

func key(ls []lit.Lit) string {
	sorted := append([]lit.Lit(nil), ls...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var sb strings.Builder
	for _, l := range sorted {
		fmt.Fprintf(&sb, "%d ", int(l))
	}
	return sb.String()
}

func (db *rupDB) add(ls []lit.Lit) {
	ci := len(db.clauses)
	db.clauses = append(db.clauses, rupClause{lits: append([]lit.Lit(nil), ls...)})
	for _, l := range ls {
		if int(l.Var()) >= db.nVars {
			db.nVars = int(l.Var()) + 1
		}
		db.occ[l] = append(db.occ[l], ci)
	}
}

// remove tombstones one clause with exactly the given literal multiset.
func (db *rupDB) remove(ls []lit.Lit) bool {
	want := key(ls)
	// Scan candidates via the first literal (or all clauses for empty).
	var cand []int
	if len(ls) > 0 {
		cand = db.occ[ls[0]]
	} else {
		for i := range db.clauses {
			cand = append(cand, i)
		}
	}
	for _, ci := range cand {
		c := &db.clauses[ci]
		if c.dead || len(c.lits) != len(ls) {
			continue
		}
		if key(c.lits) == want {
			c.dead = true
			return true
		}
	}
	return false
}

// rup reports whether asserting the negation of every literal of ls and
// unit-propagating over the live database yields a conflict.
func (db *rupDB) rup(ls []lit.Lit) bool {
	assign := make([]lit.Tern, db.nVars)
	setLit := func(l lit.Lit) bool { // false on conflict
		v := l.Var()
		want := lit.TernOf(!l.Sign())
		if assign[v] == lit.Unknown {
			assign[v] = want
			return true
		}
		return assign[v] == want
	}
	for _, l := range ls {
		if !setLit(l.Not()) {
			return true // negated clause is itself contradictory
		}
	}
	// Naive propagation to fixpoint over live clauses.
	for {
		progress := false
		for ci := range db.clauses {
			c := &db.clauses[ci]
			if c.dead {
				continue
			}
			unassigned := lit.UndefLit
			nUnassigned := 0
			satisfied := false
			for _, l := range c.lits {
				switch assign[l.Var()].XorSign(l.Sign()) {
				case lit.True:
					satisfied = true
				case lit.Unknown:
					nUnassigned++
					unassigned = l
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			switch nUnassigned {
			case 0:
				return true // conflict
			case 1:
				if !setLit(unassigned) {
					return true
				}
				progress = true
			}
		}
		if !progress {
			return false
		}
	}
}
