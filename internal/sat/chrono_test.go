package sat

import (
	"math/rand"
	"testing"

	"allsatpre/internal/budget"
	"allsatpre/internal/cnf"
	"allsatpre/internal/lit"
)

func randomCNF(rng *rand.Rand, nVars, nClauses, k int) *cnf.Formula {
	f := cnf.New(nVars)
	for i := 0; i < nClauses; i++ {
		c := make(cnf.Clause, 0, k)
		for len(c) < k {
			v := lit.Var(rng.Intn(nVars))
			dup := false
			for _, x := range c {
				if x.Var() == v {
					dup = true
					break
				}
			}
			if !dup {
				c = append(c, lit.New(v, rng.Intn(2) == 0))
			}
		}
		f.AddClause(c)
	}
	return f
}

// expandCube enumerates the projected minterms covered by a chrono cube
// (projection literals, possibly a strict subset of proj) as bitstrings
// in proj order.
func expandCube(proj []lit.Var, cb []lit.Lit) []string {
	fixed := make(map[lit.Var]bool, len(cb))
	for _, l := range cb {
		fixed[l.Var()] = !l.Sign()
	}
	var free []int
	base := make([]byte, len(proj))
	for i, v := range proj {
		if val, ok := fixed[v]; ok {
			if val {
				base[i] = '1'
			} else {
				base[i] = '0'
			}
		} else {
			free = append(free, i)
		}
	}
	out := make([]string, 0, 1<<uint(len(free)))
	for x := 0; x < 1<<uint(len(free)); x++ {
		for bi, i := range free {
			if x&(1<<uint(bi)) != 0 {
				base[i] = '1'
			} else {
				base[i] = '0'
			}
		}
		out = append(out, string(base))
	}
	return out
}

// TestChronoEnumRandom checks, on random 3-CNF instances, that the
// chronological enumerator emits pairwise-disjoint cubes whose union is
// exactly the brute-force projection, and that it never adds a clause
// per solution (learnt count stays bounded by conflicts, and no blocking
// clauses exist by construction).
func TestChronoEnumRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		nVars := 4 + rng.Intn(8)
		f := randomCNF(rng, nVars, 2+rng.Intn(3*nVars), 3)
		nProj := 1 + rng.Intn(nVars)
		proj := make([]lit.Var, nProj)
		perm := rng.Perm(nVars)
		for i := range proj {
			proj[i] = lit.Var(perm[i])
		}
		want := f.ProjectedModels(proj)

		s := FromFormula(f, Options{})
		e := NewChronoEnum(s, proj)
		got := make(map[string]bool)
		for {
			st := e.Next()
			if st == Unknown {
				t.Fatalf("trial %d: unexpected budget stop", trial)
			}
			if st == Unsat {
				break
			}
			for _, m := range expandCube(proj, e.Cube()) {
				if got[m] {
					t.Fatalf("trial %d: minterm %s covered twice (cubes overlap)", trial, m)
				}
				got[m] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d projections, want %d", trial, len(got), len(want))
		}
		for m := range want {
			if !got[m] {
				t.Fatalf("trial %d: missing projection %s", trial, m)
			}
		}
	}
}

// TestChronoEnumUnsat: an unsatisfiable formula yields no cubes.
func TestChronoEnumUnsat(t *testing.T) {
	f := cnf.New(2)
	f.Add(lit.New(0, false))
	f.Add(lit.New(0, true))
	s := FromFormula(f, Options{})
	e := NewChronoEnum(s, []lit.Var{0, 1})
	if st := e.Next(); st != Unsat {
		t.Fatalf("unsat formula: got %v", st)
	}
}

// TestChronoEnumEmptyFormula: with no clauses the first cube is fully
// free and covers the whole space in one step.
func TestChronoEnumEmptyFormula(t *testing.T) {
	f := cnf.New(3)
	s := FromFormula(f, Options{})
	e := NewChronoEnum(s, []lit.Var{0, 1, 2})
	if st := e.Next(); st != Sat {
		t.Fatalf("first Next: got %v, want Sat", st)
	}
	if len(e.Cube()) != 0 {
		t.Fatalf("cube fixes %d literals, want fully free", len(e.Cube()))
	}
	if st := e.Next(); st != Unsat {
		t.Fatalf("second Next: got %v, want exhausted", st)
	}
}

// TestChronoEnumBudget: a decision budget stops the enumeration with
// Unknown and a recorded reason.
func TestChronoEnumBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := randomCNF(rng, 12, 20, 3)
	proj := make([]lit.Var, 12)
	for i := range proj {
		proj[i] = lit.Var(i)
	}
	s := FromFormula(f, Options{Budget: budget.Budget{MaxDecisions: 5}})
	e := NewChronoEnum(s, proj)
	for i := 0; ; i++ {
		st := e.Next()
		if st == Unknown {
			if e.StopReason() != budget.Decisions {
				t.Fatalf("stop reason %v, want decisions", e.StopReason())
			}
			if e.Exhausted() {
				t.Fatal("budget stop reported as exhaustion")
			}
			return
		}
		if st == Unsat {
			t.Fatal("5-decision budget never tripped on a 12-var instance")
		}
		if i > 100 {
			t.Fatal("runaway enumeration")
		}
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons into n holes — unsat, and
// famously conflict-dense, so the CDCL search spends long streaks on the
// conflict path.
func pigeonhole(n int) *cnf.Formula {
	f := cnf.New((n + 1) * n)
	x := func(p, h int) lit.Var { return lit.Var(p*n + h) }
	for p := 0; p <= n; p++ {
		c := make(cnf.Clause, n)
		for h := 0; h < n; h++ {
			c[h] = lit.New(x(p, h), false)
		}
		f.AddClause(c)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				f.Add(lit.New(x(p1, h), true), lit.New(x(p2, h), true))
			}
		}
	}
	return f
}

// TestConflictCapStreakBound is the regression test for the conflict-path
// budget poll: a consecutive-conflict streak must stop within the
// amortization window (64 conflicts) of MaxConflicts instead of
// overshooting it arbitrarily. The poll makes the bound unconditional —
// it holds for any instance, not just ones whose learnt clauses happen to
// assert without an immediate follow-on conflict — so the assertion here
// pins the contract on a conflict-dense refutation at several caps.
func TestConflictCapStreakBound(t *testing.T) {
	for _, cap := range []uint64{1, 10, 100} {
		s := FromFormula(pigeonhole(9), Options{MaxConflicts: cap})
		st := s.Solve()
		if st != Unknown {
			t.Fatalf("cap %d: got %v, want Unknown (php9 needs far more conflicts)", cap, st)
		}
		if s.StopReason() != budget.Conflicts {
			t.Fatalf("cap %d: stop reason %v, want conflicts", cap, s.StopReason())
		}
		if got := s.Stats().Conflicts; got > cap+64 {
			t.Fatalf("cap %d: %d conflicts, overshoot %d exceeds the 64-conflict poll window",
				cap, got, got-cap)
		}
	}
}

// TestChronoAttachOnlySurvival pins the retention rule chrono's
// attach-only learnts rely on: a learnt that pruned a visited subtree —
// i.e. participated in a conflict since the last reduction round, which
// sets its used bit — must never be deleted by the reduceDB cycle that
// follows, no matter how bad its activity or tier. Deleting it would be
// sound (the clause is implied by F) but would let the enumeration
// re-descend into a subtree it already refuted.
func TestChronoAttachOnlySurvival(t *testing.T) {
	s := NewDefault()
	nVars := 24
	s.EnsureVars(nVars)
	// The protected clause: installed exactly the way ChronoEnum.learnFrom
	// installs an attach-only learnt, with a worst-possible profile — local
	// tier (huge LBD), zero activity — then marked used, as conflict
	// analysis does when the clause prunes a descent.
	protected := make([]lit.Lit, 0, 8)
	for i := 0; i < 8; i++ {
		protected = append(protected, lit.New(lit.Var(i), i%2 == 0))
	}
	pc := s.installLearnt(protected, tier2LBD+10)
	if s.ca.tier(pc) != tierLocal {
		t.Fatalf("protected clause landed in tier %d, want local", s.ca.tier(pc))
	}
	s.ca.setActivity(pc, 0)
	s.ca.setUsed(pc) // "pruned a visited subtree this round"

	// Junk local learnts with higher activity, unused: reduceDB's sorted
	// deletion would pick the zero-activity protected clause first if the
	// used bit did not shield it.
	for j := 0; j < 40; j++ {
		c := make([]lit.Lit, 0, 6)
		for i := 0; i < 6; i++ {
			c = append(c, lit.New(lit.Var(8+(j+i)%(nVars-8)), (j+i)%2 == 0))
		}
		jc := s.installLearnt(c, tier2LBD+10)
		s.ca.clearUsed(jc)
		s.ca.setActivity(jc, float64(j+1))
	}

	before := s.nLocal
	s.reduceDB()
	if s.ca.isDeleted(pc) {
		t.Fatal("reduceDB deleted a used attach-only learnt")
	}
	found := false
	for _, c := range s.learnts {
		if c == pc {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("used attach-only learnt fell out of the learnt list")
	}
	if s.stats.Reduced == 0 || s.nLocal >= before {
		t.Fatalf("reduction was a no-op (reduced=%d, local %d -> %d): the shield was never tested",
			s.stats.Reduced, before, s.nLocal)
	}
	// The shield is one-round: reduceDB cleared the used bit, so a clause
	// that stops being useful becomes deletable again (no leak).
	if s.ca.isUsed(pc) {
		t.Fatal("reduceDB left the used bit set; protection would be permanent")
	}
	checkArenaInvariants(t, s)
}

// TestChronoReduceDBMidEnumerationExact forces reduceDB after every
// learnt install (maxLearnts driven below zero) and checks the cover is
// still the exact brute-force projection: clause deletion plus arena
// compaction mid-enumeration must not perturb disjointness or
// completeness.
func TestChronoReduceDBMidEnumerationExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		nVars := 6 + rng.Intn(6)
		f := randomCNF(rng, nVars, 3*nVars, 3)
		nProj := 1 + rng.Intn(nVars)
		proj := make([]lit.Var, nProj)
		perm := rng.Perm(nVars)
		for i := range proj {
			proj[i] = lit.Var(perm[i])
		}
		want := f.ProjectedModels(proj)

		s := FromFormula(f, Options{})
		e := NewChronoEnum(s, proj)
		s.maxLearnts = -1e18 // reduceNeeded() is now always true
		got := make(map[string]bool)
		for {
			st := e.Next()
			if st == Unknown {
				t.Fatalf("trial %d: unexpected budget stop", trial)
			}
			if st == Unsat {
				break
			}
			for _, m := range expandCube(proj, e.Cube()) {
				if got[m] {
					t.Fatalf("trial %d: minterm %s covered twice under forced reduceDB", trial, m)
				}
				got[m] = true
			}
			checkArenaInvariants(t, s)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d minterms, brute force says %d", trial, len(got), len(want))
		}
		for m := range want {
			if !got[m] {
				t.Fatalf("trial %d: minterm %s missing under forced reduceDB", trial, m)
			}
		}
	}
}
