package lit

import (
	"testing"
	"testing/quick"
)

func TestNewPosNeg(t *testing.T) {
	for v := Var(0); v < 100; v++ {
		p, n := Pos(v), Neg(v)
		if p.Var() != v || n.Var() != v {
			t.Fatalf("var mismatch for %v: %v %v", v, p.Var(), n.Var())
		}
		if p.Sign() {
			t.Fatalf("Pos(%v) has negative sign", v)
		}
		if !n.Sign() {
			t.Fatalf("Neg(%v) has positive sign", v)
		}
		if p.Not() != n || n.Not() != p {
			t.Fatalf("Not is not an involution for %v", v)
		}
	}
}

func TestUndef(t *testing.T) {
	if New(UndefVar, false) != UndefLit {
		t.Error("New(UndefVar) should be UndefLit")
	}
	if UndefLit.Var() != UndefVar {
		t.Error("UndefLit.Var() should be UndefVar")
	}
	if UndefLit.Not() != UndefLit {
		t.Error("UndefLit.Not() should stay undef")
	}
	if UndefLit.IsDef() {
		t.Error("UndefLit.IsDef() should be false")
	}
	if Pos(3).IsDef() != true {
		t.Error("Pos(3) should be defined")
	}
	if UndefLit.Dimacs() != 0 {
		t.Error("UndefLit.Dimacs() should be 0")
	}
	if FromDimacs(0) != UndefLit {
		t.Error("FromDimacs(0) should be UndefLit")
	}
	if UndefLit.String() != "lit(undef)" {
		t.Errorf("unexpected undef string %q", UndefLit.String())
	}
	if UndefVar.String() != "v(undef)" {
		t.Errorf("unexpected undef var string %q", UndefVar.String())
	}
}

func TestDimacsRoundTrip(t *testing.T) {
	f := func(d int16) bool {
		if d == 0 {
			return true
		}
		l := FromDimacs(int(d))
		return l.Dimacs() == int(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLitDimacsRoundTrip(t *testing.T) {
	f := func(v uint16, neg bool) bool {
		l := New(Var(v), neg)
		return FromDimacs(l.Dimacs()) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXorSign(t *testing.T) {
	l := Pos(5)
	if l.XorSign(false) != l {
		t.Error("XorSign(false) should be identity")
	}
	if l.XorSign(true) != l.Not() {
		t.Error("XorSign(true) should complement")
	}
	if UndefLit.XorSign(true) != UndefLit {
		t.Error("XorSign on undef should stay undef")
	}
}

func TestLitString(t *testing.T) {
	if got := Pos(0).String(); got != "1" {
		t.Errorf("Pos(0).String() = %q, want 1", got)
	}
	if got := Neg(2).String(); got != "-3" {
		t.Errorf("Neg(2).String() = %q, want -3", got)
	}
	if got := Var(7).String(); got != "v7" {
		t.Errorf("Var(7).String() = %q, want v7", got)
	}
}

func TestTernOf(t *testing.T) {
	if TernOf(true) != True || TernOf(false) != False {
		t.Error("TernOf mismatch")
	}
}

func TestTernNot(t *testing.T) {
	cases := map[Tern]Tern{True: False, False: True, Unknown: Unknown}
	for in, want := range cases {
		if got := in.Not(); got != want {
			t.Errorf("%v.Not() = %v, want %v", in, got, want)
		}
	}
}

func TestTernAndOrTables(t *testing.T) {
	vals := []Tern{True, False, Unknown}
	for _, a := range vals {
		for _, b := range vals {
			and, or := a.And(b), a.Or(b)
			// Commutativity.
			if and != b.And(a) || or != b.Or(a) {
				t.Fatalf("And/Or not commutative at %v,%v", a, b)
			}
			// Domination.
			if (a == False || b == False) && and != False {
				t.Errorf("%v AND %v should be 0", a, b)
			}
			if (a == True || b == True) && or != True {
				t.Errorf("%v OR %v should be 1", a, b)
			}
			// Known-only results agree with bool logic.
			av, aok := a.Bool()
			bv, bok := b.Bool()
			if aok && bok {
				if got, _ := and.Bool(); got != (av && bv) {
					t.Errorf("And(%v,%v) mismatch", a, b)
				}
				if got, _ := or.Bool(); got != (av || bv) {
					t.Errorf("Or(%v,%v) mismatch", a, b)
				}
				if got, _ := a.Xor(b).Bool(); got != (av != bv) {
					t.Errorf("Xor(%v,%v) mismatch", a, b)
				}
			}
		}
	}
}

func TestTernXorUnknown(t *testing.T) {
	for _, v := range []Tern{True, False, Unknown} {
		if v.Xor(Unknown) != Unknown || Unknown.Xor(v) != Unknown {
			t.Errorf("Xor with Unknown should be Unknown (v=%v)", v)
		}
	}
}

func TestTernXorSign(t *testing.T) {
	if True.XorSign(true) != False || True.XorSign(false) != True {
		t.Error("Tern.XorSign broken on True")
	}
	if Unknown.XorSign(true) != Unknown {
		t.Error("Tern.XorSign should preserve Unknown")
	}
}

func TestTernStringsAndBool(t *testing.T) {
	if True.String() != "1" || False.String() != "0" || Unknown.String() != "X" {
		t.Error("Tern.String mismatch")
	}
	if !True.IsKnown() || !False.IsKnown() || Unknown.IsKnown() {
		t.Error("IsKnown mismatch")
	}
	if _, ok := Unknown.Bool(); ok {
		t.Error("Unknown.Bool() should not be ok")
	}
}
