// Package lit provides the core literal, variable, and ternary-value types
// shared by every SAT-facing package in the repository.
//
// Variables are dense non-negative integers starting at 0. A literal packs a
// variable and a sign into a single int: literal 2*v encodes the positive
// phase of v, literal 2*v+1 the negative phase. This is the classic MiniSat
// encoding; it makes literals directly usable as slice indices for watch
// lists and assignment lookups.
package lit

import (
	"fmt"
	"strconv"
)

// Var is a propositional variable, numbered densely from 0.
type Var int

// Lit is a literal: a variable together with a phase.
// The zero value is the positive literal of variable 0.
type Lit int

// Undef sentinels for "no variable" / "no literal".
const (
	UndefVar Var = -1
	UndefLit Lit = -1
)

// New builds a literal from a variable and a phase. neg=false yields the
// positive literal v, neg=true yields ¬v.
func New(v Var, neg bool) Lit {
	if v < 0 {
		return UndefLit
	}
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Pos returns the positive literal of v.
func Pos(v Var) Lit { return New(v, false) }

// Neg returns the negative literal of v.
func Neg(v Var) Lit { return New(v, true) }

// Var returns the variable underlying l.
func (l Lit) Var() Var {
	if l < 0 {
		return UndefVar
	}
	return Var(l >> 1)
}

// Sign reports whether l is a negative literal.
func (l Lit) Sign() bool { return l >= 0 && l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit {
	if l < 0 {
		return UndefLit
	}
	return l ^ 1
}

// XorSign flips the phase of l when neg is true.
func (l Lit) XorSign(neg bool) Lit {
	if l < 0 {
		return UndefLit
	}
	if neg {
		return l ^ 1
	}
	return l
}

// IsDef reports whether l is a real literal (not UndefLit).
func (l Lit) IsDef() bool { return l >= 0 }

// Dimacs returns the DIMACS integer encoding of l: variable v (0-based)
// becomes v+1, negated literals are negative.
func (l Lit) Dimacs() int {
	if l < 0 {
		return 0
	}
	d := int(l.Var()) + 1
	if l.Sign() {
		return -d
	}
	return d
}

// FromDimacs converts a DIMACS integer (non-zero) to a Lit.
func FromDimacs(d int) Lit {
	if d == 0 {
		return UndefLit
	}
	if d < 0 {
		return Neg(Var(-d - 1))
	}
	return Pos(Var(d - 1))
}

// String renders the literal in DIMACS style ("3", "-7").
func (l Lit) String() string {
	if l < 0 {
		return "lit(undef)"
	}
	return strconv.Itoa(l.Dimacs())
}

// String renders the variable as "v<N>".
func (v Var) String() string {
	if v < 0 {
		return "v(undef)"
	}
	return fmt.Sprintf("v%d", int(v))
}

// Tern is a ternary truth value: True, False, or Unknown (X).
type Tern uint8

// Ternary constants. Unknown is the zero value so fresh assignment vectors
// start out fully unassigned.
const (
	Unknown Tern = iota
	True
	False
)

// TernOf converts a bool to a Tern.
func TernOf(b bool) Tern {
	if b {
		return True
	}
	return False
}

// Not returns the ternary complement (X maps to X).
func (t Tern) Not() Tern {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// XorSign complements t when neg is true; used to evaluate a literal from
// the value of its variable.
func (t Tern) XorSign(neg bool) Tern {
	if neg {
		return t.Not()
	}
	return t
}

// And is ternary conjunction: False dominates, otherwise X propagates.
func (t Tern) And(o Tern) Tern {
	if t == False || o == False {
		return False
	}
	if t == True && o == True {
		return True
	}
	return Unknown
}

// Or is ternary disjunction: True dominates, otherwise X propagates.
func (t Tern) Or(o Tern) Tern {
	if t == True || o == True {
		return True
	}
	if t == False && o == False {
		return False
	}
	return Unknown
}

// Xor is ternary exclusive or; X in, X out.
func (t Tern) Xor(o Tern) Tern {
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return TernOf((t == True) != (o == True))
}

// IsKnown reports whether t is True or False.
func (t Tern) IsKnown() bool { return t != Unknown }

// Bool converts t to a bool; Unknown yields false with ok=false.
func (t Tern) Bool() (val, ok bool) {
	switch t {
	case True:
		return true, true
	case False:
		return false, true
	default:
		return false, false
	}
}

func (t Tern) String() string {
	switch t {
	case True:
		return "1"
	case False:
		return "0"
	default:
		return "X"
	}
}
