// Package gen synthesizes the benchmark circuit families used by the
// evaluation: structured machines with closed-form reachability behaviour
// (counters, shift registers, LFSRs, Johnson and Gray counters, a traffic
// controller FSM) and a seeded family of random reconvergent sequential
// circuits ("SLike") standing in for the ISCAS-89 suite, which is not
// redistributable here.
package gen

import (
	"fmt"
	"math/rand"

	"allsatpre/internal/circuit"
)

// Counter builds an n-bit binary up-counter. If withEnable, an "en" input
// gates counting (state holds when en=0); otherwise the counter always
// counts. If withReset, a synchronous "rst" input clears the state and
// dominates en.
func Counter(n int, withEnable, withReset bool) *circuit.Circuit {
	if n < 1 {
		panic("gen: Counter needs n >= 1")
	}
	c := circuit.New(fmt.Sprintf("counter%d", n))
	en, rst := -1, -1
	if withEnable {
		en = c.AddInput("en")
	}
	if withReset {
		rst = c.AddInput("rst")
	}
	// Latches with placeholder fanins (patched after logic creation).
	state := make([]int, n)
	seed := en
	if seed < 0 {
		seed = rst
	}
	for i := 0; i < n; i++ {
		if seed < 0 {
			// No inputs at all: self-feed placeholder via a constant.
			seed = c.AddGate(fmt.Sprintf("tie%d", i), circuit.Const0)
		}
		state[i] = c.AddLatch(fmt.Sprintf("s%d", i), seed)
	}
	// carry chain: c0 = en (or const1), ci = c(i-1) AND s(i-1)
	var carry int
	if withEnable {
		carry = en
	} else {
		carry = c.AddGate("cin", circuit.Const1)
	}
	d := make([]int, n)
	for i := 0; i < n; i++ {
		d[i] = c.AddGate(fmt.Sprintf("sum%d", i), circuit.Xor, state[i], carry)
		if i+1 < n {
			carry = c.AddGate(fmt.Sprintf("c%d", i+1), circuit.And, carry, state[i])
		}
	}
	for i := 0; i < n; i++ {
		next := d[i]
		if withReset {
			nrst := c.AddGate(fmt.Sprintf("nr%d", i), circuit.Not, rst)
			next = c.AddGate(fmt.Sprintf("d%d", i), circuit.And, d[i], nrst)
		}
		c.Gates[state[i]].Fanins[0] = next
	}
	c.MarkOutput(state[n-1])
	return c
}

// ShiftRegister builds an n-bit shift register with serial input "sin":
// s0' = sin, s(i)' = s(i-1).
func ShiftRegister(n int) *circuit.Circuit {
	if n < 1 {
		panic("gen: ShiftRegister needs n >= 1")
	}
	c := circuit.New(fmt.Sprintf("shift%d", n))
	sin := c.AddInput("sin")
	state := make([]int, n)
	for i := 0; i < n; i++ {
		state[i] = c.AddLatch(fmt.Sprintf("s%d", i), sin)
	}
	for i := 1; i < n; i++ {
		buf := c.AddGate(fmt.Sprintf("b%d", i), circuit.Buf, state[i-1])
		c.Gates[state[i]].Fanins[0] = buf
	}
	c.MarkOutput(state[n-1])
	return c
}

// LFSR builds an n-bit Fibonacci linear feedback shift register with the
// given tap positions (0-based state indices XORed into the feedback).
// At least one tap is required and taps must be < n.
func LFSR(n int, taps ...int) *circuit.Circuit {
	if n < 2 || len(taps) == 0 {
		panic("gen: LFSR needs n >= 2 and at least one tap")
	}
	c := circuit.New(fmt.Sprintf("lfsr%d", n))
	// No primary inputs: autonomous machine. Give it one dummy "run"
	// input ANDed nowhere to keep the SAT instances shaped like the rest.
	state := make([]int, n)
	tie := c.AddGate("tie", circuit.Const0)
	for i := 0; i < n; i++ {
		state[i] = c.AddLatch(fmt.Sprintf("s%d", i), tie)
	}
	fb := state[taps[0]]
	for k := 1; k < len(taps); k++ {
		if taps[k] >= n || taps[k] < 0 {
			panic("gen: LFSR tap out of range")
		}
		fb = c.AddGate(fmt.Sprintf("fb%d", k), circuit.Xor, fb, state[taps[k]])
	}
	fbuf := c.AddGate("fbuf", circuit.Buf, fb)
	c.Gates[state[0]].Fanins[0] = fbuf
	for i := 1; i < n; i++ {
		buf := c.AddGate(fmt.Sprintf("b%d", i), circuit.Buf, state[i-1])
		c.Gates[state[i]].Fanins[0] = buf
	}
	c.MarkOutput(state[n-1])
	return c
}

// Johnson builds an n-bit Johnson (twisted-ring) counter: s0' = ¬s(n-1),
// s(i)' = s(i-1).
func Johnson(n int) *circuit.Circuit {
	if n < 2 {
		panic("gen: Johnson needs n >= 2")
	}
	c := circuit.New(fmt.Sprintf("johnson%d", n))
	tie := c.AddGate("tie", circuit.Const0)
	state := make([]int, n)
	for i := 0; i < n; i++ {
		state[i] = c.AddLatch(fmt.Sprintf("s%d", i), tie)
	}
	inv := c.AddGate("inv", circuit.Not, state[n-1])
	c.Gates[state[0]].Fanins[0] = inv
	for i := 1; i < n; i++ {
		buf := c.AddGate(fmt.Sprintf("b%d", i), circuit.Buf, state[i-1])
		c.Gates[state[i]].Fanins[0] = buf
	}
	c.MarkOutput(state[n-1])
	return c
}

// GrayCounter builds an n-bit Gray-code counter implemented as a binary
// counter with an output XOR stage folded into the next-state logic:
// the state itself steps through Gray codes.
//
// Implementation: g' = binary2gray(gray2binary(g) + 1). The conversion
// chains make it deep and XOR-rich — a good stress case for both engines.
func GrayCounter(n int) *circuit.Circuit {
	if n < 1 {
		panic("gen: GrayCounter needs n >= 1")
	}
	c := circuit.New(fmt.Sprintf("gray%d", n))
	tie := c.AddGate("tie", circuit.Const0)
	state := make([]int, n)
	for i := 0; i < n; i++ {
		state[i] = c.AddLatch(fmt.Sprintf("g%d", i), tie)
	}
	// gray → binary: b(n-1) = g(n-1); b(i) = b(i+1) XOR g(i)
	bin := make([]int, n)
	bin[n-1] = c.AddGate("btop", circuit.Buf, state[n-1])
	for i := n - 2; i >= 0; i-- {
		bin[i] = c.AddGate(fmt.Sprintf("bin%d", i), circuit.Xor, bin[i+1], state[i])
	}
	// binary + 1
	carry := c.AddGate("one", circuit.Const1)
	sum := make([]int, n)
	for i := 0; i < n; i++ {
		sum[i] = c.AddGate(fmt.Sprintf("sum%d", i), circuit.Xor, bin[i], carry)
		if i+1 < n {
			carry = c.AddGate(fmt.Sprintf("cy%d", i+1), circuit.And, carry, bin[i])
		}
	}
	// binary → gray: g(i) = b(i) XOR b(i+1); g(n-1) = b(n-1)
	for i := 0; i < n-1; i++ {
		g := c.AddGate(fmt.Sprintf("ng%d", i), circuit.Xor, sum[i], sum[i+1])
		c.Gates[state[i]].Fanins[0] = g
	}
	top := c.AddGate("ngtop", circuit.Buf, sum[n-1])
	c.Gates[state[n-1]].Fanins[0] = top
	c.MarkOutput(state[n-1])
	return c
}

// TrafficLight builds a small two-intersection traffic controller FSM
// (5 latches, 2 inputs): a main-road/side-road light pair with a car
// sensor and a walk-request input. It is the "control logic" style
// benchmark of the suite.
func TrafficLight() *circuit.Circuit {
	c := circuit.New("traffic")
	car := c.AddInput("car")
	walk := c.AddInput("walk")
	// One-hot-ish phase encoding in 3 bits + 2 timer bits.
	p0 := c.AddLatch("p0", car)
	p1 := c.AddLatch("p1", car)
	p2 := c.AddLatch("p2", car)
	t0 := c.AddLatch("t0", car)
	t1 := c.AddLatch("t1", car)

	// timer increments each cycle, wraps at 3
	nt0 := c.AddGate("nt0", circuit.Not, t0)
	tc := c.AddGate("tc", circuit.And, t0, t1)
	ntc := c.AddGate("ntc", circuit.Not, tc)
	t1x := c.AddGate("t1x", circuit.Xor, t1, t0)
	t1n := c.AddGate("t1n", circuit.And, t1x, ntc)
	t0n := c.AddGate("t0n", circuit.And, nt0, ntc)

	// phase advances when timer wraps and (car or walk) pressure matches
	go1 := c.AddGate("go1", circuit.Or, car, walk)
	adv := c.AddGate("adv", circuit.And, tc, go1)
	nadv := c.AddGate("nadv", circuit.Not, adv)

	hold0 := c.AddGate("hold0", circuit.And, p0, nadv)
	from2 := c.AddGate("from2", circuit.And, p2, adv)
	np0 := c.AddGate("np0", circuit.Or, hold0, from2)

	hold1 := c.AddGate("hold1", circuit.And, p1, nadv)
	from0 := c.AddGate("from0", circuit.And, p0, adv)
	np1 := c.AddGate("np1", circuit.Or, hold1, from0)

	hold2 := c.AddGate("hold2", circuit.And, p2, nadv)
	from1 := c.AddGate("from1", circuit.And, p1, adv)
	np2 := c.AddGate("np2", circuit.Or, hold2, from1)

	c.Gates[p0].Fanins[0] = np0
	c.Gates[p1].Fanins[0] = np1
	c.Gates[p2].Fanins[0] = np2
	c.Gates[t0].Fanins[0] = t0n
	c.Gates[t1].Fanins[0] = t1n

	green := c.AddGate("green", circuit.Or, p0, p1)
	c.MarkOutput(green)
	return c
}

// Arbiter builds an n-client round-robin arbiter: each client has a
// request input req_i; one grant latch g_i is hot at a time (or none),
// and a ⌈log2 n⌉-bit pointer latch tracks whose turn it is. A client is
// granted when it requests and either holds the grant already or is the
// pointer's choice while the current holder has released. The pointer
// advances one position per cycle. Arbiter safety ("at most one grant")
// is the classic model-checking property for this family.
func Arbiter(n int) *circuit.Circuit {
	if n < 2 {
		panic("gen: Arbiter needs n >= 2")
	}
	nPtr := 1
	for 1<<nPtr < n {
		nPtr++
	}
	c := circuit.New(fmt.Sprintf("arbiter%d", n))
	req := make([]int, n)
	for i := range req {
		req[i] = c.AddInput(fmt.Sprintf("req%d", i))
	}
	grant := make([]int, n)
	for i := range grant {
		grant[i] = c.AddLatch(fmt.Sprintf("g%d", i), req[0])
	}
	ptr := make([]int, nPtr)
	for i := range ptr {
		ptr[i] = c.AddLatch(fmt.Sprintf("p%d", i), req[0])
	}
	// anyHeld = OR over (g_i AND req_i): a client keeps its grant only
	// while it keeps requesting.
	var holds []int
	for i := 0; i < n; i++ {
		holds = append(holds, c.AddGate(fmt.Sprintf("hold%d", i), circuit.And, grant[i], req[i]))
	}
	anyHeld := holds[0]
	for i := 1; i < n; i++ {
		anyHeld = c.AddGate(fmt.Sprintf("anyh%d", i), circuit.Or, anyHeld, holds[i])
	}
	free := c.AddGate("free", circuit.Not, anyHeld)
	// isPtr_i: pointer equals i.
	isPtr := make([]int, n)
	for i := 0; i < n; i++ {
		var bits []int
		for b := 0; b < nPtr; b++ {
			if i&(1<<b) != 0 {
				bits = append(bits, ptr[b])
			} else {
				bits = append(bits, c.AddGate(fmt.Sprintf("np%d_%d", i, b), circuit.Not, ptr[b]))
			}
		}
		eq := bits[0]
		for b := 1; b < nPtr; b++ {
			eq = c.AddGate(fmt.Sprintf("eq%d_%d", i, b), circuit.And, eq, bits[b])
		}
		isPtr[i] = eq
	}
	// next grant: hold, or (free AND pointer choice AND request).
	for i := 0; i < n; i++ {
		take := c.AddGate(fmt.Sprintf("take%d", i), circuit.And, free, isPtr[i])
		take = c.AddGate(fmt.Sprintf("takeR%d", i), circuit.And, take, req[i])
		ng := c.AddGate(fmt.Sprintf("ng%d", i), circuit.Or, holds[i], take)
		c.Gates[grant[i]].Fanins[0] = ng
	}
	// pointer increments modulo 2^nPtr every cycle.
	carry := c.AddGate("pone", circuit.Const1)
	for b := 0; b < nPtr; b++ {
		s := c.AddGate(fmt.Sprintf("ps%d", b), circuit.Xor, ptr[b], carry)
		if b+1 < nPtr {
			carry = c.AddGate(fmt.Sprintf("pc%d", b), circuit.And, ptr[b], carry)
		}
		c.Gates[ptr[b]].Fanins[0] = s
	}
	// Output: any grant active.
	anyG := grant[0]
	for i := 1; i < n; i++ {
		anyG = c.AddGate(fmt.Sprintf("anyg%d", i), circuit.Or, anyG, grant[i])
	}
	c.MarkOutput(anyG)
	return c
}

// FIFOCtrl builds the control skeleton of a 2^n-entry FIFO: an n-bit
// head pointer, an n-bit tail pointer, and a "last operation was push"
// flag used to disambiguate the full and empty conditions when the
// pointers coincide. Inputs are push and pop requests; pushes are
// ignored when full, pops when empty. The classic safety properties —
// "never full and empty at once" is structural, and over/underflow
// freedom — make it a standard model-checking workload.
func FIFOCtrl(n int) *circuit.Circuit {
	if n < 1 {
		panic("gen: FIFOCtrl needs n >= 1")
	}
	c := circuit.New(fmt.Sprintf("fifo%d", n))
	push := c.AddInput("push")
	pop := c.AddInput("pop")
	head := make([]int, n)
	tail := make([]int, n)
	for i := 0; i < n; i++ {
		head[i] = c.AddLatch(fmt.Sprintf("h%d", i), push)
	}
	for i := 0; i < n; i++ {
		tail[i] = c.AddLatch(fmt.Sprintf("t%d", i), push)
	}
	lastPush := c.AddLatch("lp", push)

	// eq = head == tail
	eq := -1
	for i := 0; i < n; i++ {
		x := c.AddGate(fmt.Sprintf("xn%d", i), circuit.Xnor, head[i], tail[i])
		if eq < 0 {
			eq = x
		} else {
			eq = c.AddGate(fmt.Sprintf("eqa%d", i), circuit.And, eq, x)
		}
	}
	full := c.AddGate("full", circuit.And, eq, lastPush)
	nLast := c.AddGate("nlp", circuit.Not, lastPush)
	empty := c.AddGate("empty", circuit.And, eq, nLast)
	nFull := c.AddGate("nfull", circuit.Not, full)
	nEmpty := c.AddGate("nempty", circuit.Not, empty)

	doPush := c.AddGate("doPush", circuit.And, push, nFull)
	doPop := c.AddGate("doPop", circuit.And, pop, nEmpty)

	inc := func(prefix string, bits []int, en int) []int {
		carry := en
		out := make([]int, len(bits))
		for i := range bits {
			out[i] = c.AddGate(fmt.Sprintf("%ss%d", prefix, i), circuit.Xor, bits[i], carry)
			if i+1 < len(bits) {
				carry = c.AddGate(fmt.Sprintf("%sc%d", prefix, i), circuit.And, carry, bits[i])
			}
		}
		return out
	}
	nt := inc("t", tail, doPush)
	nh := inc("h", head, doPop)
	for i := 0; i < n; i++ {
		c.Gates[tail[i]].Fanins[0] = nt[i]
		c.Gates[head[i]].Fanins[0] = nh[i]
	}
	// lastPush updates on any effective operation: set on push, cleared
	// on pop; holds otherwise. pop wins ties (conservative: a same-cycle
	// push+pop leaves occupancy unchanged and clears the flag only if
	// the pop was effective).
	nDoPop := c.AddGate("ndoPop", circuit.Not, doPop)
	hold := c.AddGate("hold", circuit.And, lastPush, nDoPop)
	nlp := c.AddGate("nlpv", circuit.Or, doPush, hold)
	// A push and pop together keep the flag set via doPush; that is
	// consistent because occupancy stays > 0 after push onto non-full.
	c.Gates[lastPush].Fanins[0] = nlp

	c.MarkOutput(full)
	c.MarkOutput(empty)
	return c
}

// MultCore builds the BDD-hostile workload of the suite: an n×n array
// multiplier in the next-state logic. The multiplicand is the present
// state XOR-masked by one input word, the multiplier is a second input
// word, and the next state is the middle slice of the product — the
// product's middle bits are the classic functions with exponential ROBDD
// size in n, so the symbolic engine degrades while the SAT engines only
// see a linear-size CNF.
//
//	a = s ⊕ x;  p = a · y;  s' = p[n/2 .. n/2+n-1]
func MultCore(n int) *circuit.Circuit {
	if n < 2 {
		panic("gen: MultCore needs n >= 2")
	}
	c := circuit.New(fmt.Sprintf("mult%d", n))
	x := make([]int, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		x[i] = c.AddInput(fmt.Sprintf("x%d", i))
	}
	for i := 0; i < n; i++ {
		y[i] = c.AddInput(fmt.Sprintf("y%d", i))
	}
	s := make([]int, n)
	for i := 0; i < n; i++ {
		s[i] = c.AddLatch(fmt.Sprintf("s%d", i), x[0])
	}
	a := make([]int, n)
	for i := 0; i < n; i++ {
		a[i] = c.AddGate(fmt.Sprintf("a%d", i), circuit.Xor, s[i], x[i])
	}
	// Array multiplier: rows of partial products accumulated with
	// ripple-carry adders. sum[j] holds product bit j of the rows added
	// so far.
	zero := c.AddGate("zero", circuit.Const0)
	sum := make([]int, 2*n)
	for j := range sum {
		sum[j] = zero
	}
	fullAdder := func(tag string, p, q, cin int) (sumOut, coutOut int) {
		axb := c.AddGate(tag+"_ab", circuit.Xor, p, q)
		so := c.AddGate(tag+"_s", circuit.Xor, axb, cin)
		and1 := c.AddGate(tag+"_g1", circuit.And, p, q)
		and2 := c.AddGate(tag+"_g2", circuit.And, axb, cin)
		co := c.AddGate(tag+"_c", circuit.Or, and1, and2)
		return so, co
	}
	for i := 0; i < n; i++ { // row i: a * y_i << i
		carry := zero
		for j := 0; j < n; j++ {
			pp := c.AddGate(fmt.Sprintf("pp%d_%d", i, j), circuit.And, a[j], y[i])
			so, co := fullAdder(fmt.Sprintf("fa%d_%d", i, j), sum[i+j], pp, carry)
			sum[i+j] = so
			carry = co
		}
		// Propagate the final carry into the higher bits.
		for j := i + n; j < 2*n && carry != zero; j++ {
			so := c.AddGate(fmt.Sprintf("cs%d_%d", i, j), circuit.Xor, sum[j], carry)
			co := c.AddGate(fmt.Sprintf("cc%d_%d", i, j), circuit.And, sum[j], carry)
			sum[j] = so
			carry = co
		}
	}
	lo := n / 2
	for i := 0; i < n; i++ {
		c.Gates[s[i]].Fanins[0] = sum[lo+i]
	}
	c.MarkOutput(s[n-1])
	return c
}

// SLikeParams parameterizes the random reconvergent sequential family.
type SLikeParams struct {
	// Seed drives the deterministic pseudo-random construction.
	Seed int64
	// Inputs, Latches, Gates set the netlist dimensions.
	Inputs, Latches, Gates int
	// XorFraction (0..1) is the probability a gate is XOR/XNOR — higher
	// values produce harder, more BDD-hostile logic. Default 0.15.
	XorFraction float64
}

// SLike builds a seeded random sequential circuit in the style of the
// ISCAS-89 suite: a DAG of 2-input gates over the inputs and latch
// outputs, with reconvergent fanout (fanins biased toward recent gates),
// latch next-states tapped from deep gates, and one output.
func SLike(p SLikeParams) *circuit.Circuit {
	if p.Inputs < 1 || p.Latches < 1 || p.Gates < 1 {
		panic("gen: SLike needs at least one input, latch, and gate")
	}
	xf := p.XorFraction
	if xf == 0 {
		xf = 0.15
	}
	rng := rand.New(rand.NewSource(p.Seed))
	c := circuit.New(fmt.Sprintf("slike_s%d_g%d_l%d", p.Seed, p.Gates, p.Latches))
	for i := 0; i < p.Inputs; i++ {
		c.AddInput(fmt.Sprintf("x%d", i))
	}
	state := make([]int, p.Latches)
	for i := 0; i < p.Latches; i++ {
		state[i] = c.AddLatch(fmt.Sprintf("s%d", i), 0)
	}
	types := []circuit.GateType{circuit.And, circuit.Or, circuit.Nand, circuit.Nor}
	gates := make([]int, 0, p.Gates)
	pick := func() int {
		// Bias toward recent gates for depth and reconvergence.
		pool := p.Inputs + p.Latches + len(gates)
		if len(gates) > 0 && rng.Float64() < 0.6 {
			// among the last half of created gates
			lo := len(gates) / 2
			return gates[lo+rng.Intn(len(gates)-lo)]
		}
		return rng.Intn(pool) // inputs and latches occupy the first ids
	}
	for g := 0; g < p.Gates; g++ {
		var typ circuit.GateType
		if rng.Float64() < xf {
			if rng.Intn(2) == 0 {
				typ = circuit.Xor
			} else {
				typ = circuit.Xnor
			}
		} else {
			typ = types[rng.Intn(len(types))]
		}
		a, b := pick(), pick()
		for b == a {
			b = pick()
		}
		gates = append(gates, c.AddGate(fmt.Sprintf("g%d", g), typ, a, b))
	}
	// Latch next-states from the deepest third of gates.
	for i := 0; i < p.Latches; i++ {
		lo := 2 * len(gates) / 3
		src := gates[lo+rng.Intn(len(gates)-lo)]
		c.Gates[state[i]].Fanins[0] = src
	}
	c.MarkOutput(gates[len(gates)-1])
	return c
}

// Suite returns the standard benchmark set used by the experiment
// harness: name → constructor. Kept small enough that every experiment
// runs in seconds, large enough to expose the engine crossovers.
func Suite() []NamedCircuit {
	return []NamedCircuit{
		{"counter8", Counter(8, true, false)},
		{"counter12", Counter(12, true, false)},
		{"shift8", ShiftRegister(8)},
		{"lfsr8", LFSR(8, 0, 3, 4, 5)},
		{"johnson8", Johnson(8)},
		{"gray6", GrayCounter(6)},
		{"traffic", TrafficLight()},
		{"slike1", SLike(SLikeParams{Seed: 1, Inputs: 6, Latches: 6, Gates: 60})},
		{"slike2", SLike(SLikeParams{Seed: 2, Inputs: 8, Latches: 8, Gates: 120})},
		{"slike3", SLike(SLikeParams{Seed: 3, Inputs: 10, Latches: 10, Gates: 220})},
	}
}

// NamedCircuit pairs a display name with a circuit.
type NamedCircuit struct {
	Name    string
	Circuit *circuit.Circuit
}
