package gen

import (
	"testing"

	"allsatpre/internal/circuit"
)

func step(t *testing.T, c *circuit.Circuit, state, in []bool) []bool {
	t.Helper()
	sim, err := circuit.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	_, next := sim.Step(state, in)
	return next
}

func toBits(x, n int) []bool {
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = x&(1<<uint(i)) != 0
	}
	return out
}

func fromBits(b []bool) int {
	x := 0
	for i, v := range b {
		if v {
			x |= 1 << uint(i)
		}
	}
	return x
}

func TestCounterCounts(t *testing.T) {
	for _, n := range []int{1, 3, 5, 8} {
		c := Counter(n, true, false)
		for x := 0; x < 1<<uint(n); x++ {
			next := step(t, c, toBits(x, n), []bool{true})
			want := (x + 1) % (1 << uint(n))
			if got := fromBits(next); got != want {
				t.Fatalf("counter%d: %d -> %d, want %d", n, x, got, want)
			}
			hold := step(t, c, toBits(x, n), []bool{false})
			if fromBits(hold) != x {
				t.Fatalf("counter%d: disabled should hold %d", n, x)
			}
		}
	}
}

func TestCounterReset(t *testing.T) {
	c := Counter(4, true, true)
	// inputs: en, rst
	next := step(t, c, toBits(9, 4), []bool{true, true})
	if fromBits(next) != 0 {
		t.Fatal("reset should clear")
	}
	next = step(t, c, toBits(9, 4), []bool{true, false})
	if fromBits(next) != 10 {
		t.Fatalf("count with rst=0: got %d", fromBits(next))
	}
}

func TestCounterNoInputs(t *testing.T) {
	c := Counter(3, false, false)
	if len(c.Inputs) != 0 {
		t.Fatal("free-running counter should have no inputs")
	}
	next := step(t, c, toBits(5, 3), nil)
	if fromBits(next) != 6 {
		t.Fatalf("free-running: 5 -> %d, want 6", fromBits(next))
	}
}

func TestShiftRegister(t *testing.T) {
	c := ShiftRegister(4)
	next := step(t, c, []bool{true, false, true, false}, []bool{true})
	want := []bool{true, true, false, true}
	for i := range want {
		if next[i] != want[i] {
			t.Fatalf("shift: next=%v, want %v", next, want)
		}
	}
}

func TestLFSRStep(t *testing.T) {
	// 4-bit LFSR, taps {0, 3}: feedback = s0 XOR s3.
	c := LFSR(4, 0, 3)
	state := []bool{true, false, false, true} // s0=1 s3=1 -> fb=0
	next := step(t, c, state, nil)
	want := []bool{false, true, false, false}
	for i := range want {
		if next[i] != want[i] {
			t.Fatalf("lfsr next=%v, want %v", next, want)
		}
	}
}

func TestLFSRMaxLength(t *testing.T) {
	// x^4 + x^3 + 1 (taps 3,2 in 0-based shift-left orientation) gives a
	// period-15 sequence. Our orientation: s0' = fb, si' = s(i-1); use
	// taps {3, 2}: check the orbit of a nonzero state has size 15.
	c := LFSR(4, 3, 2)
	sim, _ := circuit.NewSimulator(c)
	state := []bool{true, false, false, false}
	seen := map[int]bool{}
	for i := 0; i < 20; i++ {
		x := fromBits(state)
		if x == 0 {
			t.Fatal("LFSR fell into the zero state")
		}
		if seen[x] {
			break
		}
		seen[x] = true
		_, state = sim.Step(state, nil)
	}
	if len(seen) != 15 {
		t.Fatalf("orbit size %d, want 15", len(seen))
	}
}

func TestJohnsonOrbit(t *testing.T) {
	// n-bit Johnson counter cycles through 2n states from the zero state.
	c := Johnson(4)
	sim, _ := circuit.NewSimulator(c)
	state := make([]bool, 4)
	seen := map[int]bool{}
	for i := 0; i < 10; i++ {
		x := fromBits(state)
		if seen[x] {
			break
		}
		seen[x] = true
		_, state = sim.Step(state, nil)
	}
	if len(seen) != 8 {
		t.Fatalf("Johnson orbit %d, want 8", len(seen))
	}
}

func TestGrayCounterAdjacentStatesDifferInOneBit(t *testing.T) {
	c := GrayCounter(5)
	sim, _ := circuit.NewSimulator(c)
	state := make([]bool, 5)
	seen := map[int]bool{}
	for i := 0; i < 32; i++ {
		x := fromBits(state)
		if seen[x] {
			t.Fatalf("premature repeat after %d states", i)
		}
		seen[x] = true
		var next []bool
		_, next = sim.Step(state, nil)
		diff := 0
		for k := range next {
			if next[k] != state[k] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("gray step changed %d bits (state %v -> %v)", diff, state, next)
		}
		state = next
	}
	if len(seen) != 32 {
		t.Fatalf("gray counter visited %d states, want 32", len(seen))
	}
}

func TestTrafficLightSanity(t *testing.T) {
	c := TrafficLight()
	s := c.Stats()
	if s.Inputs != 2 || s.Latches != 5 {
		t.Fatalf("traffic shape: %v", s)
	}
	if _, err := circuit.NewSimulator(c); err != nil {
		t.Fatal(err)
	}
	// Phase one-hot invariant is not enforced by construction, but the
	// phase must advance from p0 when the timer wraps with pressure.
	sim, _ := circuit.NewSimulator(c)
	state := []bool{true, false, false, true, true} // p0, timer=3
	_, next := sim.Step(state, []bool{true, false})
	if next[0] || !next[1] {
		t.Fatalf("expected advance p0->p1, got %v", next)
	}
}

func TestArbiterSafetyFromGoodStates(t *testing.T) {
	// Starting from the all-idle state, at most one grant is ever high —
	// checked by explicit simulation over random request sequences.
	c := Arbiter(3)
	sim, err := circuit.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	nL := len(c.Latches)
	state := make([]bool, nL)
	for trial := 0; trial < 500; trial++ {
		in := []bool{trial&1 != 0, trial&2 != 0, trial%3 == 0}
		_, state = sim.Step(state, in)
		grants := 0
		for i := 0; i < 3; i++ { // grant latches are declared first
			if state[i] {
				grants++
			}
		}
		if grants > 1 {
			t.Fatalf("trial %d: %d simultaneous grants", trial, grants)
		}
	}
}

func TestArbiterGrantsWhenRequested(t *testing.T) {
	// With a single persistent requester, the grant must arrive within n
	// cycles (once the pointer comes around).
	c := Arbiter(4)
	sim, _ := circuit.NewSimulator(c)
	state := make([]bool, len(c.Latches))
	in := []bool{false, false, true, false} // only client 2 requests
	got := false
	for cycle := 0; cycle < 8; cycle++ {
		_, state = sim.Step(state, in)
		if state[2] {
			got = true
			break
		}
	}
	if !got {
		t.Fatal("persistent requester never granted")
	}
}

func TestArbiterShape(t *testing.T) {
	c := Arbiter(5)
	s := c.Stats()
	if s.Inputs != 5 || s.Latches != 5+3 { // 5 grants + 3 pointer bits
		t.Fatalf("shape: %v", s)
	}
	if _, err := c.TopoOrder(); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOCtrlOccupancyModel(t *testing.T) {
	// Simulate against a reference queue-occupancy model.
	n := 3
	c := FIFOCtrl(n)
	sim, err := circuit.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	cap := 1 << n
	state := make([]bool, len(c.Latches))
	occ := 0
	for trial := 0; trial < 2000; trial++ {
		push := trial%3 != 0
		pop := trial%5 == 0 || trial%7 == 0
		out, next := sim.Step(state, []bool{push, pop})
		full, empty := out[0], out[1]
		if full != (occ == cap) {
			t.Fatalf("trial %d: full=%v but occ=%d/%d", trial, full, occ, cap)
		}
		if empty != (occ == 0) {
			t.Fatalf("trial %d: empty=%v but occ=%d", trial, empty, occ)
		}
		if push && !full {
			occ++
		}
		if pop && !empty {
			occ--
		}
		if occ < 0 || occ > cap {
			t.Fatalf("trial %d: reference occupancy escaped [0,%d]: %d", trial, cap, occ)
		}
		state = next
	}
}

func TestFIFOCtrlNeverFullAndEmpty(t *testing.T) {
	c := FIFOCtrl(2)
	sim, _ := circuit.NewSimulator(c)
	// Exhaustive over all states and inputs: outputs full & empty are
	// never both high (structural property of the flag encoding).
	nL := len(c.Latches)
	for sv := 0; sv < 1<<uint(nL); sv++ {
		st := make([]bool, nL)
		for i := range st {
			st[i] = sv&(1<<uint(i)) != 0
		}
		for iv := 0; iv < 4; iv++ {
			out, _ := sim.Step(st, []bool{iv&1 != 0, iv&2 != 0})
			if out[0] && out[1] {
				t.Fatalf("state %b: full and empty simultaneously", sv)
			}
		}
	}
}

func TestMultCoreMatchesIntegerMultiply(t *testing.T) {
	n := 5
	c := MultCore(n)
	sim, err := circuit.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		s := trial * 2654435761 % (1 << n)
		x := (trial*40503 + 7) % (1 << n)
		y := (trial*9176 + 3) % (1 << n)
		st := toBits(s, n)
		in := append(toBits(x, n), toBits(y, n)...)
		_, next := sim.Step(st, in)
		prod := ((s ^ x) * y) & ((1 << (2 * n)) - 1)
		want := (prod >> uint(n/2)) & ((1 << n) - 1)
		if got := fromBits(next); got != want {
			t.Fatalf("s=%d x=%d y=%d: next=%d, want %d", s, x, y, got, want)
		}
	}
}

func TestMultCoreShape(t *testing.T) {
	c := MultCore(4)
	st := c.Stats()
	if st.Inputs != 8 || st.Latches != 4 {
		t.Fatalf("shape: %v", st)
	}
	if _, err := c.TopoOrder(); err != nil {
		t.Fatal(err)
	}
}

func TestSLikeDeterministic(t *testing.T) {
	p := SLikeParams{Seed: 7, Inputs: 5, Latches: 4, Gates: 40}
	a := SLike(p)
	b := SLike(p)
	if circuit.BenchString(a) != circuit.BenchString(b) {
		t.Fatal("same seed must give identical netlists")
	}
	p.Seed = 8
	cc := SLike(p)
	if circuit.BenchString(a) == circuit.BenchString(cc) {
		t.Fatal("different seeds should differ")
	}
}

func TestSLikeShape(t *testing.T) {
	c := SLike(SLikeParams{Seed: 3, Inputs: 6, Latches: 5, Gates: 80})
	s := c.Stats()
	if s.Inputs != 6 || s.Latches != 5 || s.CombGates != 80 {
		t.Fatalf("shape: %v", s)
	}
	if _, err := c.TopoOrder(); err != nil {
		t.Fatalf("SLike produced a cyclic netlist: %v", err)
	}
	if s.Depth < 3 {
		t.Fatalf("SLike too shallow: depth %d", s.Depth)
	}
}

func TestSuiteBuilds(t *testing.T) {
	for _, nc := range Suite() {
		if nc.Circuit.NumGates() == 0 {
			t.Errorf("%s: empty circuit", nc.Name)
		}
		if _, err := circuit.NewSimulator(nc.Circuit); err != nil {
			t.Errorf("%s: %v", nc.Name, err)
		}
	}
}

func TestGeneratorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Counter(0, true, false) },
		func() { ShiftRegister(0) },
		func() { LFSR(1, 0) },
		func() { LFSR(4) },
		func() { LFSR(4, 9) },
		func() { Johnson(1) },
		func() { GrayCounter(0) },
		func() { MultCore(1) },
		func() { Arbiter(1) },
		func() { SLike(SLikeParams{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
