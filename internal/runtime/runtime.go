package runtime

// Runtime bundles the pooled execution substrate handed to the engine
// entry points (allsat.Options.Runtime, pool.Options.Runtime,
// preimage.Options.Runtime). A nil *Runtime — and a Runtime with nil
// fields — degrades to the classic behavior: fresh construction and
// per-request goroutines. Tenant labels the scheduler queue the
// request's jobs join; empty means the shared anonymous queue.
type Runtime struct {
	Pool   *Pool
	Sched  *Scheduler
	Tenant string
}

// WithTenant returns a shallow copy bound to the given tenant label.
func (r *Runtime) WithTenant(t string) *Runtime {
	if r == nil {
		return nil
	}
	c := *r
	c.Tenant = t
	return &c
}

// P returns the pool, nil-safely.
func (r *Runtime) P() *Pool {
	if r == nil {
		return nil
	}
	return r.Pool
}

// S returns the scheduler, nil-safely.
func (r *Runtime) S() *Scheduler {
	if r == nil {
		return nil
	}
	return r.Sched
}
