package runtime

import (
	"sync"
	"testing"

	"allsatpre/internal/cnf"
	"allsatpre/internal/lit"
	"allsatpre/internal/sat"
	"allsatpre/internal/stats"
)

func warmSolver(t *testing.T) *sat.Solver {
	t.Helper()
	f := cnf.New(4)
	f.Add(lit.New(0, false), lit.New(1, false))
	f.Add(lit.New(1, true), lit.New(2, false), lit.New(3, false))
	s := sat.FromFormula(f, sat.DefaultOptions())
	if s.Solve() != sat.Sat {
		t.Fatal("warm formula should be SAT")
	}
	return s
}

// metric fetches a rendered metric value from a registry snapshot.
func metric(t *testing.T, reg *stats.Registry, key string) string {
	t.Helper()
	for _, kv := range reg.Snapshot().Metrics {
		if kv.Key == key {
			return kv.Value
		}
	}
	return ""
}

func TestPoolSolverRoundTrip(t *testing.T) {
	reg := stats.NewRegistry("test")
	p := NewPool(PoolOptions{Stats: reg})
	s := warmSolver(t)
	p.ReleaseSolver(s)
	if p.RetainedBytes() == 0 {
		t.Fatal("released solver not accounted")
	}
	got := p.AcquireSolver(sat.DefaultOptions(), 0)
	if got != s {
		t.Fatal("expected the parked solver back")
	}
	if got.NumVars() != 0 || got.NumClauses() != 0 {
		t.Fatal("acquired solver not reset")
	}
	if p.RetainedBytes() != 0 {
		t.Fatal("bytes not released on acquire")
	}
	// Second acquire misses.
	fresh := p.AcquireSolver(sat.DefaultOptions(), 0)
	if fresh == s {
		t.Fatal("double-acquired the same solver")
	}
	if metric(t, reg, "runtime.solver-hits") != "1" || metric(t, reg, "runtime.solver-misses") != "1" {
		t.Fatalf("hit/miss counters wrong: %+v", reg.Snapshot().Metrics)
	}
}

func TestPoolManagerRoundTrip(t *testing.T) {
	p := NewPool(PoolOptions{})
	order := []lit.Var{0, 1, 2}
	m := p.AcquireManager(order, 0)
	m.Var(lit.Var(1))
	p.ReleaseManager(m)
	got := p.AcquireManager(order, 0)
	if got != m {
		t.Fatal("expected the parked manager back")
	}
	if got.NumNodes() != 2 {
		t.Fatalf("acquired manager not reset: %d nodes", got.NumNodes())
	}
}

func TestPoolByteCeiling(t *testing.T) {
	reg := stats.NewRegistry("test")
	p := NewPool(PoolOptions{MaxBytes: 1, Stats: reg})
	p.ReleaseSolver(warmSolver(t))
	p.ReleaseSolver(warmSolver(t))
	if got := p.RetainedBytes(); got > 1 {
		t.Fatalf("ceiling not enforced: %d bytes retained", got)
	}
	if v := metric(t, reg, "runtime.trims"); v == "" || v == "0" {
		t.Fatal("trims not counted")
	}
}

func TestPoolNilSafe(t *testing.T) {
	var p *Pool
	s := p.AcquireSolver(sat.DefaultOptions(), 0)
	if s == nil {
		t.Fatal("nil pool must construct fresh")
	}
	p.ReleaseSolver(s)
	m := p.AcquireManager([]lit.Var{0}, 0)
	if m == nil {
		t.Fatal("nil pool must construct fresh manager")
	}
	p.ReleaseManager(m)
	if p.RetainedBytes() != 0 {
		t.Fatal("nil pool retains nothing")
	}
}

func TestPoolSizeClassPreference(t *testing.T) {
	p := NewPool(PoolOptions{})
	small := warmSolver(t)
	big := warmSolver(t)
	// Grow big well past small.
	f := cnf.New(2000)
	for i := 0; i < 1999; i++ {
		f.Add(lit.New(lit.Var(i), false), lit.New(lit.Var(i+1), true))
	}
	big.AddFormula(f)
	p.ReleaseSolver(small)
	p.ReleaseSolver(big)
	got := p.AcquireSolver(sat.DefaultOptions(), big.RetainedBytes())
	if got != big {
		t.Fatal("size-class match should prefer the big solver for a big hint")
	}
}

func TestSchedulerFairShare(t *testing.T) {
	s := NewScheduler(1, nil)
	defer s.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	s.Submit("warm", func() { close(started); <-gate })
	<-started // the single executor is now parked inside a job

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	record := func(who string) func() {
		wg.Add(1)
		return func() {
			mu.Lock()
			order = append(order, who)
			mu.Unlock()
			wg.Done()
		}
	}
	for i := 0; i < 50; i++ {
		s.Submit("hog", record("hog"))
	}
	s.Submit("mouse", record("mouse"))
	close(gate)
	wg.Wait()

	pos := -1
	for i, who := range order {
		if who == "mouse" {
			pos = i
			break
		}
	}
	if pos < 0 || pos > 1 {
		t.Fatalf("mouse dispatched at position %d; fair share demands one of the first two slots", pos)
	}
}

func TestSchedulerCloseDrains(t *testing.T) {
	s := NewScheduler(2, nil)
	var ran sync.WaitGroup
	for i := 0; i < 20; i++ {
		ran.Add(1)
		s.Submit("t", func() { ran.Done() })
	}
	s.Close()
	ran.Wait() // Close must not strand queued jobs

	// After Close, Submit degrades to inline execution.
	done := false
	s.Submit("t", func() { done = true })
	if !done {
		t.Fatal("post-Close Submit did not run inline")
	}
}

func TestRuntimeNilSafe(t *testing.T) {
	var r *Runtime
	if r.P() != nil || r.S() != nil || r.WithTenant("x") != nil {
		t.Fatal("nil Runtime accessors must all be nil")
	}
	r2 := (&Runtime{}).WithTenant("a")
	if r2.Tenant != "a" {
		t.Fatal("WithTenant did not bind")
	}
}
