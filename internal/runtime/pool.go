// Package runtime provides the pooled execution substrate beneath the
// enumeration service: a free-list of warm sat.Solver / bdd.Manager
// instances whose backing arrays survive across requests (Reset instead
// of reconstruction), and a server-wide fair-share scheduler that runs
// subcube jobs from all in-flight requests on one fixed executor pool
// instead of spawning per-request worker goroutines.
//
// The package sits below internal/allsat, internal/core, internal/pool,
// and internal/preimage (all of which accept an optional *Runtime) and
// above only the leaf packages (sat, bdd, budget, stats) — it must never
// import an engine package, or the dependency cycle with internal/pool
// returns.
package runtime

import (
	"math/bits"
	"sync"

	"allsatpre/internal/bdd"
	"allsatpre/internal/lit"
	"allsatpre/internal/sat"
	"allsatpre/internal/stats"
)

// DefaultMaxBytes is the pool-wide retained-byte ceiling: the sum of
// RetainedBytes over every parked solver and manager stays under it,
// largest entries trimmed first. Sized for a service host; tune with
// PoolOptions.MaxBytes (cmd/serve: -pool-bytes).
const DefaultMaxBytes = 256 << 20

// numClasses is the number of power-of-two size classes. Class k holds
// objects with RetainedBytes in [2^k, 2^(k+1)); 40 classes cover every
// realistic object (1 TiB).
const numClasses = 40

// PoolOptions configures a warm-object pool.
type PoolOptions struct {
	// MaxBytes caps the total retained bytes across parked objects
	// (0 = DefaultMaxBytes, negative = unlimited).
	MaxBytes int64
	// Stats, when non-nil, receives the runtime.* pool counters.
	Stats *stats.Registry
}

// Pool is a size-classed free-list of warm solvers and managers. All
// methods are safe for concurrent use, and all methods are no-ops /
// fresh-construction fallbacks on a nil receiver, so callers thread an
// optional *Pool without nil checks.
type Pool struct {
	mu       sync.Mutex
	solvers  [numClasses][]*sat.Solver
	managers [numClasses][]*bdd.Manager
	bytes    int64 // retained bytes across both free-lists
	maxBytes int64

	reg *stats.Registry
	// Cached counter handles: acquire/release are per-request hot paths
	// and must not pay the registry's name lookup each time.
	cSolverHit, cSolverMiss   *stats.Counter
	cManagerHit, cManagerMiss *stats.Counter
	cTrims                    *stats.Counter
}

// NewPool creates a warm-object pool.
func NewPool(opts PoolOptions) *Pool {
	p := &Pool{maxBytes: opts.MaxBytes, reg: opts.Stats}
	if p.maxBytes == 0 {
		p.maxBytes = DefaultMaxBytes
	}
	if p.reg != nil {
		p.cSolverHit = p.reg.Counter("runtime.solver-hits")
		p.cSolverMiss = p.reg.Counter("runtime.solver-misses")
		p.cManagerHit = p.reg.Counter("runtime.manager-hits")
		p.cManagerMiss = p.reg.Counter("runtime.manager-misses")
		p.cTrims = p.reg.Counter("runtime.trims")
	}
	return p
}

// sizeClass maps a retained-byte figure to its power-of-two class.
func sizeClass(b uint64) int {
	c := bits.Len64(b)
	if c >= numClasses {
		c = numClasses - 1
	}
	return c
}

// AcquireSolver returns a warm solver Reset to the state sat.New(opts)
// produces, or a fresh one on a pool miss. hintBytes estimates the
// problem footprint so the match starts at the right size class (0 is
// fine: any warm solver beats a cold one, the search covers all
// classes).
func (p *Pool) AcquireSolver(opts sat.Options, hintBytes uint64) *sat.Solver {
	if p == nil {
		return sat.New(opts)
	}
	p.mu.Lock()
	var s *sat.Solver
	if c := p.pickClass(hintBytes, func(c int) bool { return len(p.solvers[c]) > 0 }); c >= 0 {
		n := len(p.solvers[c]) - 1
		s = p.solvers[c][n]
		p.solvers[c][n] = nil
		p.solvers[c] = p.solvers[c][:n]
		p.bytes -= int64(s.RetainedBytes())
	}
	p.mu.Unlock()
	if s == nil {
		p.count(p.cSolverMiss)
		return sat.New(opts)
	}
	p.count(p.cSolverHit)
	s.Reset(opts)
	p.gauge()
	return s
}

// ReleaseSolver parks a solver for reuse. The solver must not be used by
// the caller afterwards. Nil receivers and nil solvers are no-ops.
func (p *Pool) ReleaseSolver(s *sat.Solver) {
	if p == nil || s == nil {
		return
	}
	b := s.RetainedBytes()
	p.mu.Lock()
	c := sizeClass(b)
	p.solvers[c] = append(p.solvers[c], s)
	p.bytes += int64(b)
	p.trimLocked()
	p.mu.Unlock()
	p.gauge()
}

// AcquireManager returns a warm manager Reset over the given variable
// order, or a fresh bdd.NewOrdered on a miss.
func (p *Pool) AcquireManager(order []lit.Var, hintBytes uint64) *bdd.Manager {
	if p == nil {
		return bdd.NewOrdered(order)
	}
	p.mu.Lock()
	var m *bdd.Manager
	if c := p.pickClass(hintBytes, func(c int) bool { return len(p.managers[c]) > 0 }); c >= 0 {
		n := len(p.managers[c]) - 1
		m = p.managers[c][n]
		p.managers[c][n] = nil
		p.managers[c] = p.managers[c][:n]
		p.bytes -= int64(m.RetainedBytes())
	}
	p.mu.Unlock()
	if m == nil {
		p.count(p.cManagerMiss)
		return bdd.NewOrdered(order)
	}
	p.count(p.cManagerHit)
	m.Reset(order)
	p.gauge()
	return m
}

// ReleaseManager parks a manager for reuse. The manager — and every Ref
// obtained from it — must not be used by the caller afterwards.
func (p *Pool) ReleaseManager(m *bdd.Manager) {
	if p == nil || m == nil {
		return
	}
	b := m.RetainedBytes()
	p.mu.Lock()
	c := sizeClass(b)
	p.managers[c] = append(p.managers[c], m)
	p.bytes += int64(b)
	p.trimLocked()
	p.mu.Unlock()
	p.gauge()
}

// pickClass finds the free-list class to pop from: the smallest
// populated class that can hold hintBytes (warm capacity at least in
// the right ballpark), else the largest populated class below it (a
// smaller warm object still beats a cold start — it regrows in place).
func (p *Pool) pickClass(hintBytes uint64, populated func(int) bool) int {
	start := sizeClass(hintBytes)
	for c := start; c < numClasses; c++ {
		if populated(c) {
			return c
		}
	}
	for c := start - 1; c >= 0; c-- {
		if populated(c) {
			return c
		}
	}
	return -1
}

// trimLocked enforces the byte ceiling by dropping the largest parked
// objects first (they pin the most memory per slot and are the cheapest
// to re-grow relative to their hold cost). Called with p.mu held.
func (p *Pool) trimLocked() {
	if p.maxBytes < 0 {
		return
	}
	for c := numClasses - 1; c >= 0 && p.bytes > p.maxBytes; c-- {
		for p.bytes > p.maxBytes && len(p.solvers[c]) > 0 {
			n := len(p.solvers[c]) - 1
			p.bytes -= int64(p.solvers[c][n].RetainedBytes())
			p.solvers[c][n] = nil
			p.solvers[c] = p.solvers[c][:n]
			p.count(p.cTrims)
		}
		for p.bytes > p.maxBytes && len(p.managers[c]) > 0 {
			n := len(p.managers[c]) - 1
			p.bytes -= int64(p.managers[c][n].RetainedBytes())
			p.managers[c][n] = nil
			p.managers[c] = p.managers[c][:n]
			p.count(p.cTrims)
		}
	}
}

// RetainedBytes reports the bytes currently pinned by parked objects.
func (p *Pool) RetainedBytes() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bytes
}

func (p *Pool) count(c *stats.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (p *Pool) gauge() {
	if p.reg != nil {
		p.reg.SetGauge("runtime.bytes-retained", p.RetainedBytes())
	}
}
