package runtime

import (
	"sync"

	"allsatpre/internal/stats"
)

// Scheduler is the server-wide executor pool: a fixed set of N worker
// goroutines draining per-tenant job queues in round-robin order. Every
// in-flight request submits its subcube jobs here instead of spawning
// its own workers, so the goroutine population is bounded by N for any
// number of concurrent requests, and a giant enumeration cannot starve
// small ones: each dispatch round visits every tenant with pending work,
// so a tenant among T active tenants receives at least 1/T of the
// executor slots regardless of how much work the others have queued.
//
// Within one tenant, jobs run LIFO (newest first). Subcube splits push
// their children back immediately, so LIFO dispatch is depth-first over
// the guiding-path tree — the same memory-bounding discipline as the
// per-request Chase-Lev deques. Jobs must be finite: the engine
// integrations bound each job by the split threshold, which is what
// makes the fair-share guarantee a latency bound and not just an
// eventual-progress claim (see DESIGN.md §15).
type Scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantQueue
	ring    []*tenantQueue // tenants with pending jobs, round-robin order
	next    int            // ring index of the next tenant to serve
	queued  int            // jobs currently queued across all tenants
	closed  bool
	wg      sync.WaitGroup
	workers int

	reg   *stats.Registry
	cJobs *stats.Counter
}

type tenantQueue struct {
	name   string
	jobs   []func() // LIFO: executors pop the tail
	inRing bool
}

// NewScheduler starts a scheduler with the given executor count
// (<= 0 selects runtime.GOMAXPROCS(0), decided by the caller — this
// package takes the literal value to stay deterministic in tests).
func NewScheduler(workers int, reg *stats.Registry) *Scheduler {
	if workers <= 0 {
		workers = 1
	}
	s := &Scheduler{
		tenants: make(map[string]*tenantQueue),
		workers: workers,
		reg:     reg,
	}
	s.cond = sync.NewCond(&s.mu)
	if reg != nil {
		s.cJobs = reg.Counter("runtime.sched-jobs")
		reg.SetGauge("runtime.sched-workers", int64(workers))
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.executor()
	}
	return s
}

// Workers returns the executor count.
func (s *Scheduler) Workers() int { return s.workers }

// Submit queues a job under the given tenant. After Close, the job runs
// inline on the caller (shutdown drain path) — it is never dropped.
func (s *Scheduler) Submit(tenant string, job func()) {
	if s.cJobs != nil {
		s.cJobs.Inc()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		job()
		return
	}
	tq := s.tenants[tenant]
	if tq == nil {
		tq = &tenantQueue{name: tenant}
		s.tenants[tenant] = tq
	}
	tq.jobs = append(tq.jobs, job)
	if !tq.inRing {
		tq.inRing = true
		s.ring = append(s.ring, tq)
	}
	s.queued++
	if s.reg != nil {
		s.reg.MaxGauge("runtime.sched-queue-peak", int64(s.queued))
	}
	s.mu.Unlock()
	s.cond.Signal()
}

// Close stops the executors after the queues drain. Concurrent and
// later Submits run their jobs inline.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}

func (s *Scheduler) executor() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.ring) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.ring) == 0 {
			// closed and drained
			s.mu.Unlock()
			return
		}
		if s.next >= len(s.ring) {
			s.next = 0
		}
		tq := s.ring[s.next]
		n := len(tq.jobs) - 1
		job := tq.jobs[n]
		tq.jobs[n] = nil
		tq.jobs = tq.jobs[:n]
		s.queued--
		if n == 0 {
			tq.inRing = false
			s.ring = append(s.ring[:s.next], s.ring[s.next+1:]...)
			// s.next now points at the following tenant; keep it.
		} else {
			s.next++
		}
		s.mu.Unlock()
		job()
	}
}
