package bdd

// Open-addressed unique table. The classic Go-map unique table
// (map[node]Ref) pays struct hashing, bucket overhead, and GC-visible
// allocations on every growth step; this table is a bare power-of-two
// slice of node ids probed linearly, in the CUDD lineage. Entries are
// never deleted individually (nodes are only reclaimed wholesale when the
// manager is dropped), so no tombstones are needed and probe chains stay
// short under the 3/4 load-factor bound.
//
// Slot encoding: a slot holds the Ref of a node, or 0 for empty. Ref 0 is
// the False terminal, which is never interned, so 0 is a free sentinel.

// mix64 is the SplitMix64 finalizer: a cheap full-avalanche mixer used
// for both the unique table and the apply cache.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nodeHash hashes a (level, low, high) triple. low and high are packed
// into one 64-bit word and the level is folded in with a fibonacci
// multiply before the final mix.
func nodeHash(level int32, low, high Ref) uint64 {
	x := uint64(uint32(low)) | uint64(uint32(high))<<32
	x ^= uint64(uint32(level)) * 0x9e3779b97f4a7c15
	return mix64(x)
}

// uniqueTable is the open-addressed node index. It borrows the manager's
// node slice for key comparisons, storing only 4-byte ids itself.
type uniqueTable struct {
	slots []Ref
	mask  uint64

	// Instrumentation for the kernel gauges: lookups is the number of
	// find calls, probes the total slots inspected across them (their
	// ratio is the average probe length), rehashes the growth count.
	lookups  uint64
	probes   uint64
	rehashes uint64
}

// init sizes the table at 2^bits slots, discarding any prior contents.
func (t *uniqueTable) init(bits int) {
	t.slots = make([]Ref, 1<<bits)
	t.mask = uint64(len(t.slots) - 1)
}

// find probes for (level, low, high). On a hit it returns the canonical
// ref; on a miss it returns the empty slot index where the node belongs.
func (t *uniqueTable) find(nodes []node, level int32, low, high Ref) (Ref, uint64, bool) {
	t.lookups++
	i := nodeHash(level, low, high) & t.mask
	for {
		t.probes++
		r := t.slots[i]
		if r == 0 {
			return 0, i, false
		}
		n := &nodes[r]
		if n.level == level && n.low == low && n.high == high {
			return r, i, true
		}
		i = (i + 1) & t.mask
	}
}

// needGrow reports whether inserting one more node would push the table
// past its 3/4 load-factor bound. live is the current number of interned
// nodes (terminals excluded).
func (t *uniqueTable) needGrow(live int) bool {
	return uint64(live+1)*4 > uint64(len(t.slots))*3
}

// rehash doubles the table and reinserts every interned node (ids 2..n;
// the two terminals live outside the table). No nodes are created here,
// so a budget abort can never fire mid-rehash — mk checks its limits
// before calling.
func (t *uniqueTable) rehash(nodes []node) {
	t.rehashes++
	slots := make([]Ref, len(t.slots)*2)
	mask := uint64(len(slots) - 1)
	for id := 2; id < len(nodes); id++ {
		n := &nodes[id]
		i := nodeHash(n.level, n.low, n.high) & mask
		for slots[i] != 0 {
			i = (i + 1) & mask
		}
		slots[i] = Ref(id)
	}
	t.slots, t.mask = slots, mask
}

// emptySlot returns the insert position for a node known to be absent —
// used to re-locate the slot after a rehash invalidated a find result.
func (t *uniqueTable) emptySlot(level int32, low, high Ref) uint64 {
	i := nodeHash(level, low, high) & t.mask
	for t.slots[i] != 0 {
		i = (i + 1) & t.mask
	}
	return i
}
