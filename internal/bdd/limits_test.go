package bdd

import (
	"testing"
	"time"

	"allsatpre/internal/budget"
	"allsatpre/internal/lit"
)

// buildParity builds the XOR of n variables — a function whose apply
// cache grows with every operation.
func buildParity(m *Manager, n int) Ref {
	r := False
	for v := 0; v < n; v++ {
		r = m.Xor(r, m.Var(lit.Var(v)))
	}
	return r
}

func TestCacheCapClearsAndCounts(t *testing.T) {
	m := New(16)
	m.SetCacheLimit(8) // tiny cap: force clears
	f := buildParity(m, 16)
	g := buildParity(m, 16)
	if f != g {
		t.Fatal("parity not canonical")
	}
	lookups, hits, clears, size := m.CacheStats()
	if lookups == 0 {
		t.Fatal("no cache lookups recorded")
	}
	if clears == 0 {
		t.Fatal("tiny cache cap never cleared")
	}
	if size > 8 {
		t.Fatalf("cache size %d exceeds cap 8", size)
	}
	if hits > lookups {
		t.Fatalf("hits %d > lookups %d", hits, lookups)
	}
}

func TestCacheCapPreservesCorrectness(t *testing.T) {
	// Same computation with and without a punishing cache cap must agree.
	free := New(12)
	capped := New(12)
	capped.SetCacheLimit(4)
	ff := buildParity(free, 12)
	cf := buildParity(capped, 12)
	if free.SatCount(ff).Cmp(capped.SatCount(cf)) != 0 {
		t.Fatal("cache cap changed the function")
	}
	// Quantification under the cap, too.
	vars := []lit.Var{0, 1, 2}
	a := free.ExistsVars(ff, vars)
	b := capped.ExistsVars(cf, vars)
	if free.SatCount(a).Cmp(capped.SatCount(b)) != 0 {
		t.Fatal("cache cap changed quantification")
	}
}

func TestNodeCapAborts(t *testing.T) {
	m := New(24)
	m.SetLimits(16, nil) // far too small for a 24-var parity
	var reason budget.Reason
	func() {
		defer CatchAbort(&reason)
		buildParity(m, 24)
	}()
	if reason != budget.Nodes {
		t.Fatalf("reason %v, want Nodes", reason)
	}
}

func TestDeadlineAborts(t *testing.T) {
	m := New(20)
	check := budget.Budget{Deadline: time.Now().Add(-time.Second)}.Start()
	m.SetLimits(0, check)
	var reason budget.Reason
	func() {
		defer CatchAbort(&reason)
		buildParity(m, 20)
	}()
	if reason != budget.Deadline {
		t.Fatalf("reason %v, want Deadline", reason)
	}
}

func TestCatchAbortReraisesOtherPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("foreign panic swallowed")
		}
	}()
	var reason budget.Reason
	defer CatchAbort(&reason)
	panic("unrelated")
}
