package bdd

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
)

// truth evaluates f on every assignment over n vars and returns the bitset
// of satisfying rows (var i is bit i of the row index).
func truth(m *Manager, f Ref, n int) []bool {
	out := make([]bool, 1<<uint(n))
	assign := make([]bool, n)
	for x := range out {
		for i := 0; i < n; i++ {
			assign[i] = x&(1<<uint(i)) != 0
		}
		out[x] = m.Eval(f, assign)
	}
	return out
}

func TestTerminalsAndVar(t *testing.T) {
	m := New(3)
	if m.Eval(True, nil) != true || m.Eval(False, nil) != false {
		t.Fatal("terminal eval")
	}
	v1 := m.Var(1)
	if !m.Eval(v1, []bool{false, true, false}) || m.Eval(v1, []bool{true, false, true}) {
		t.Fatal("Var eval")
	}
	if m.NVar(1) != m.Not(v1) {
		t.Fatal("NVar should equal Not(Var)")
	}
	if m.Lit(lit.Neg(2)) != m.NVar(2) || m.Lit(lit.Pos(0)) != m.Var(0) {
		t.Fatal("Lit mismatch")
	}
	if Const(true) != True || Const(false) != False {
		t.Fatal("Const")
	}
}

func TestCanonicity(t *testing.T) {
	m := New(4)
	// Same function built two ways must be the same ref.
	a, b := m.Var(0), m.Var(1)
	f1 := m.Or(m.And(a, b), m.And(m.Not(a), b))
	f2 := b
	if f1 != f2 {
		t.Fatalf("canonical refs differ: %d vs %d", f1, f2)
	}
	// De Morgan.
	g1 := m.Not(m.And(a, b))
	g2 := m.Or(m.Not(a), m.Not(b))
	if g1 != g2 {
		t.Fatal("De Morgan violated")
	}
}

func TestIdempotentReduction(t *testing.T) {
	m := New(2)
	if m.ITE(m.Var(0), True, True) != True {
		t.Fatal("mk should collapse equal children")
	}
}

// randomRef builds a random function over n vars by combining literals
// with random connectives.
func randomRef(m *Manager, rng *rand.Rand, n, depth int) Ref {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(6) {
		case 0:
			return True
		case 1:
			return False
		default:
			return m.Lit(lit.New(lit.Var(rng.Intn(n)), rng.Intn(2) == 0))
		}
	}
	a := randomRef(m, rng, n, depth-1)
	b := randomRef(m, rng, n, depth-1)
	switch rng.Intn(5) {
	case 0:
		return m.And(a, b)
	case 1:
		return m.Or(a, b)
	case 2:
		return m.Xor(a, b)
	case 3:
		return m.Not(a)
	default:
		c := randomRef(m, rng, n, depth-1)
		return m.ITE(a, b, c)
	}
}

func TestOpsAgainstTruthTables(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 150; iter++ {
		n := 2 + rng.Intn(6)
		m := New(n)
		f := randomRef(m, rng, n, 4)
		g := randomRef(m, rng, n, 4)
		tf, tg := truth(m, f, n), truth(m, g, n)
		checks := []struct {
			name string
			ref  Ref
			fn   func(a, b bool) bool
		}{
			{"and", m.And(f, g), func(a, b bool) bool { return a && b }},
			{"or", m.Or(f, g), func(a, b bool) bool { return a || b }},
			{"xor", m.Xor(f, g), func(a, b bool) bool { return a != b }},
			{"xnor", m.Xnor(f, g), func(a, b bool) bool { return a == b }},
			{"implies", m.Implies(f, g), func(a, b bool) bool { return !a || b }},
			{"diff", m.Diff(f, g), func(a, b bool) bool { return a && !b }},
			{"not", m.Not(f), func(a, b bool) bool { return !a }},
		}
		for _, c := range checks {
			tr := truth(m, c.ref, n)
			for x := range tr {
				if tr[x] != c.fn(tf[x], tg[x]) {
					t.Fatalf("iter %d: op %s wrong at row %d", iter, c.name, x)
				}
			}
		}
	}
}

func TestAndOrNFolds(t *testing.T) {
	m := New(3)
	if m.AndN() != True || m.OrN() != False {
		t.Fatal("empty folds")
	}
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	if m.AndN(a, b, c) != m.And(a, m.And(b, c)) {
		t.Fatal("AndN mismatch")
	}
	if m.OrN(a, b, c) != m.Or(a, m.Or(b, c)) {
		t.Fatal("OrN mismatch")
	}
	if m.AndN(a, False, b) != False || m.OrN(a, True, b) != True {
		t.Fatal("short circuit")
	}
}

func TestQuantificationAgainstTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 120; iter++ {
		n := 2 + rng.Intn(5)
		m := New(n)
		f := randomRef(m, rng, n, 4)
		tf := truth(m, f, n)
		// Random quantification set.
		var qvars []lit.Var
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				qvars = append(qvars, lit.Var(v))
			}
		}
		ex := m.ExistsVars(f, qvars)
		fa := m.ForallVars(f, qvars)
		tex, tfa := truth(m, ex, n), truth(m, fa, n)
		inQ := make([]bool, n)
		for _, v := range qvars {
			inQ[v] = true
		}
		// Enumerate assignments of the q-set for each row.
		for x := 0; x < 1<<uint(n); x++ {
			anySat, allSat := false, true
			// vary quantified vars
			var qIdx []int
			for v := 0; v < n; v++ {
				if inQ[v] {
					qIdx = append(qIdx, v)
				}
			}
			for y := 0; y < 1<<uint(len(qIdx)); y++ {
				row := x
				for k, v := range qIdx {
					if y&(1<<uint(k)) != 0 {
						row |= 1 << uint(v)
					} else {
						row &^= 1 << uint(v)
					}
				}
				if tf[row] {
					anySat = true
				} else {
					allSat = false
				}
			}
			if tex[x] != anySat {
				t.Fatalf("iter %d: Exists wrong at row %d", iter, x)
			}
			if tfa[x] != allSat {
				t.Fatalf("iter %d: Forall wrong at row %d", iter, x)
			}
		}
	}
}

func TestAndExistsEqualsExistsOfAnd(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(6)
		m := New(n)
		f := randomRef(m, rng, n, 4)
		g := randomRef(m, rng, n, 4)
		var qvars []lit.Var
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				qvars = append(qvars, lit.Var(v))
			}
		}
		c := m.CubeVars(qvars)
		want := m.Exists(m.And(f, g), c)
		got := m.AndExists(f, g, c)
		if got != want {
			t.Fatalf("iter %d: AndExists ≠ Exists∘And", iter)
		}
	}
}

func TestRestrictAndCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for iter := 0; iter < 120; iter++ {
		n := 2 + rng.Intn(5)
		m := New(n)
		f := randomRef(m, rng, n, 4)
		g := randomRef(m, rng, n, 4)
		v := lit.Var(rng.Intn(n))
		tf, tg := truth(m, f, n), truth(m, g, n)
		r1 := truth(m, m.Restrict(f, v, true), n)
		r0 := truth(m, m.Restrict(f, v, false), n)
		comp := truth(m, m.Compose(f, v, g), n)
		for x := 0; x < 1<<uint(n); x++ {
			x1 := x | 1<<uint(v)
			x0 := x &^ (1 << uint(v))
			if r1[x] != tf[x1] || r0[x] != tf[x0] {
				t.Fatalf("iter %d: Restrict wrong at %d", iter, x)
			}
			want := tf[x0]
			if tg[x] {
				want = tf[x1]
			}
			if comp[x] != want {
				t.Fatalf("iter %d: Compose wrong at %d", iter, x)
			}
		}
	}
}

func TestConstrainDefiningProperty(t *testing.T) {
	// Constrain(f, c) ∧ c == f ∧ c, on random functions.
	rng := rand.New(rand.NewSource(121))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(6)
		m := New(n)
		f := randomRef(m, rng, n, 4)
		c := randomRef(m, rng, n, 4)
		if c == False {
			continue
		}
		g := m.Constrain(f, c)
		if m.And(g, c) != m.And(f, c) {
			t.Fatalf("iter %d: constrain property violated", iter)
		}
		// Idempotence on the care set.
		if m.Constrain(g, c) != m.Constrain(f, c) && m.And(m.Constrain(g, c), c) != m.And(f, c) {
			t.Fatalf("iter %d: constrain not stable", iter)
		}
	}
}

func TestConstrainTerminalCases(t *testing.T) {
	m := New(2)
	a := m.Var(0)
	if m.Constrain(True, a) != True || m.Constrain(False, a) != False {
		t.Fatal("terminal f")
	}
	if m.Constrain(a, True) != a {
		t.Fatal("care-all")
	}
	if m.Constrain(a, a) != True {
		t.Fatal("f == c should be True")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty care set")
		}
	}()
	m.Constrain(a, False)
}

func TestSimplifyWithInterval(t *testing.T) {
	// SimplifyWith(f, c) must lie between f∧c and f∨¬c pointwise.
	rng := rand.New(rand.NewSource(131))
	for iter := 0; iter < 150; iter++ {
		n := 2 + rng.Intn(5)
		m := New(n)
		f := randomRef(m, rng, n, 4)
		c := randomRef(m, rng, n, 4)
		s := m.SimplifyWith(f, c)
		if c == False {
			if s != False {
				t.Fatal("empty care set should give False")
			}
			continue
		}
		lower := m.And(f, c)
		upper := m.Or(f, m.Not(c))
		if m.And(lower, m.Not(s)) != False {
			t.Fatalf("iter %d: result below f∧c", iter)
		}
		if m.And(s, m.Not(upper)) != False {
			t.Fatalf("iter %d: result above f∨¬c", iter)
		}
	}
}

func TestSupport(t *testing.T) {
	m := New(5)
	f := m.And(m.Var(0), m.Or(m.Var(3), m.NVar(4)))
	sup := m.Support(f)
	if len(sup) != 3 || sup[0] != 0 || sup[1] != 3 || sup[2] != 4 {
		t.Fatalf("Support = %v", sup)
	}
	if len(m.Support(True)) != 0 {
		t.Fatal("terminal support should be empty")
	}
	// Redundant variable must not appear.
	g := m.Or(m.And(m.Var(1), m.Var(2)), m.And(m.NVar(1), m.Var(2)))
	sup = m.Support(g)
	if len(sup) != 1 || sup[0] != 2 {
		t.Fatalf("Support after reduction = %v", sup)
	}
}

func TestSatCount(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 150; iter++ {
		n := 1 + rng.Intn(7)
		m := New(n)
		f := randomRef(m, rng, n, 4)
		tf := truth(m, f, n)
		want := 0
		for _, b := range tf {
			if b {
				want++
			}
		}
		if got := m.SatCount(f); got.Cmp(big.NewInt(int64(want))) != 0 {
			t.Fatalf("iter %d: SatCount = %v, want %d", iter, got, want)
		}
	}
}

func TestSatCountIn(t *testing.T) {
	m := New(4)
	f := m.Var(0) // depends only on v0
	got := m.SatCountIn(f, []lit.Var{0, 1})
	if got.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("SatCountIn = %v, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when support exceeds universe")
		}
	}()
	m.SatCountIn(m.And(m.Var(2), m.Var(3)), []lit.Var{2})
}

func spaceOver(n int) *cube.Space {
	vars := make([]lit.Var, n)
	for i := range vars {
		vars[i] = lit.Var(i)
	}
	return cube.NewSpace(vars)
}

func TestAnySat(t *testing.T) {
	m := New(3)
	s := spaceOver(3)
	f := m.And(m.Var(0), m.NVar(2))
	c := m.AnySat(f, s)
	if c == nil {
		t.Fatal("AnySat returned nil for satisfiable f")
	}
	model := []bool{c[0] == lit.True, c[1] == lit.True, c[2] == lit.True}
	if !m.Eval(f, model) {
		t.Fatalf("AnySat cube %v does not satisfy f", c)
	}
	if m.AnySat(False, s) != nil {
		t.Fatal("AnySat of False should be nil")
	}
}

func TestToCoverFromCoverRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 100; iter++ {
		n := 1 + rng.Intn(6)
		m := New(n)
		s := spaceOver(n)
		f := randomRef(m, rng, n, 4)
		cv := m.ToCover(f, s)
		back := m.FromCover(cv)
		if back != f {
			t.Fatalf("iter %d: ToCover/FromCover round trip failed", iter)
		}
		// Cover minterm count must equal SatCount.
		if n <= 20 {
			cnt := cv.CountMinterms()
			if m.SatCount(f).Cmp(big.NewInt(int64(cnt))) != 0 {
				t.Fatalf("iter %d: cover minterms %d ≠ satcount %v", iter, cnt, m.SatCount(f))
			}
		}
	}
}

func TestToCoverPanicsOutsideSpace(t *testing.T) {
	m := New(3)
	s := cube.NewSpace([]lit.Var{0, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.ToCover(m.Var(2), s)
}

func TestRestrictCube(t *testing.T) {
	m := New(3)
	s := spaceOver(3)
	f := m.And(m.Var(0), m.Or(m.Var(1), m.Var(2)))
	g := m.RestrictCube(f, s, s.CubeOf("1X0"))
	if g != m.Var(1) {
		t.Fatalf("RestrictCube: got %d, want Var(1)=%d", g, m.Var(1))
	}
}

func TestCubeVarsOrderIndependence(t *testing.T) {
	m := New(4)
	a := m.CubeVars([]lit.Var{0, 2, 3})
	b := m.CubeVars([]lit.Var{3, 0, 2})
	if a != b {
		t.Fatal("CubeVars should not depend on list order")
	}
	if m.CubeVars(nil) != True {
		t.Fatal("empty cube should be True")
	}
}

func TestTransferPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for iter := 0; iter < 60; iter++ {
		n := 2 + rng.Intn(5)
		m := New(n)
		f := randomRef(m, rng, n, 4)
		// Reverse order destination.
		order := make([]lit.Var, n)
		for i := range order {
			order[i] = lit.Var(n - 1 - i)
		}
		d := NewOrdered(order)
		g := m.Transfer(d, f)
		tf, tg := truth(m, f, n), truth(d, g, n)
		for x := range tf {
			if tf[x] != tg[x] {
				t.Fatalf("iter %d: transfer changed semantics at %d", iter, x)
			}
		}
	}
}

func TestSiftImprovesKnownBadOrder(t *testing.T) {
	// f = x0·x3 + x1·x4 + x2·x5 with interleaved order is exponential;
	// sifting should find a pairing order that shrinks it.
	order := []lit.Var{0, 1, 2, 3, 4, 5}
	m := NewOrdered(order)
	f := m.OrN(
		m.And(m.Var(0), m.Var(3)),
		m.And(m.Var(1), m.Var(4)),
		m.And(m.Var(2), m.Var(5)))
	before := m.Size(f)
	d, roots := m.Sift([]Ref{f})
	after := d.Size(roots[0])
	if after > before {
		t.Fatalf("sift made it worse: %d -> %d", before, after)
	}
	// Semantics preserved.
	tf, tg := truth(m, f, 6), truth(d, roots[0], 6)
	for x := range tf {
		if tf[x] != tg[x] {
			t.Fatalf("sift changed semantics at %d", x)
		}
	}
	if after >= before {
		t.Logf("warning: sift found no strict improvement (%d -> %d)", before, after)
	}
}

func TestSiftNoOpStillDetaches(t *testing.T) {
	m := New(2)
	f := m.Var(0)
	d, roots := m.Sift([]Ref{f})
	if d == m {
		t.Fatal("Sift should return a fresh manager")
	}
	if !d.Eval(roots[0], []bool{true, false}) {
		t.Fatal("semantics lost")
	}
}

func TestWriteDot(t *testing.T) {
	m := New(2)
	f := m.And(m.Var(0), m.NVar(1))
	var sb strings.Builder
	if err := m.WriteDot(&sb, f, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph bdd", `label="0"`, `label="1"`, "v0", "style=dashed"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	var sb2 strings.Builder
	if err := m.WriteDot(&sb2, f, func(v int) string { return "sig" }); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb2.String(), "sig") {
		t.Error("custom name function ignored")
	}
}

func TestLevelPanicsOnUnknownVar(t *testing.T) {
	m := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Var(5)
}

func TestDuplicateOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewOrdered([]lit.Var{1, 1})
}

func TestNumNodesMonotone(t *testing.T) {
	m := New(8)
	n0 := m.NumNodes()
	if n0 != 2 {
		t.Fatalf("fresh manager should have 2 terminal nodes, got %d", n0)
	}
	m.Var(3)
	if m.NumNodes() != 3 {
		t.Fatalf("after one Var: %d nodes", m.NumNodes())
	}
	if m.NumVars() != 8 {
		t.Fatal("NumVars")
	}
	if m.VarAtLevel(m.Level(5)) != 5 {
		t.Fatal("VarAtLevel/Level inverse")
	}
}

func TestSatCountWideManagerUsesBigPath(t *testing.T) {
	// 70 variables exercises the big.Int fallback; 3 of 8 assignments over
	// the 3-var support, times 2^67 free variables.
	m := New(70)
	f := m.And(m.Var(0), m.Or(m.Var(1), m.NVar(2)))
	want := new(big.Int).Lsh(big.NewInt(3), 67)
	if got := m.SatCount(f); got.Cmp(want) != 0 {
		t.Fatalf("SatCount = %v, want %v", got, want)
	}
	// The two paths must agree on the same function where both apply.
	small := New(10)
	sf := small.And(small.Var(0), small.Or(small.Var(1), small.NVar(2)))
	if got, want := small.SatCount(sf), small.satCountBig(sf, 10); got.Cmp(want) != 0 {
		t.Fatalf("uint64 path %v != big path %v", got, want)
	}
}
