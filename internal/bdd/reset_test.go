package bdd

import (
	"testing"

	"allsatpre/internal/budget"
	"allsatpre/internal/lit"
)

// buildMajority constructs a small but nontrivial function (majority over
// three xor pairs) and returns the final root plus the manager's node
// count — enough structure to exercise mk, the apply cache, and at least
// one unique-table growth on a fresh manager.
func buildMajority(m *Manager) (Ref, int) {
	vs := make([]Ref, 6)
	for i := range vs {
		vs[i] = m.Var(lit.Var(i))
	}
	a := m.Xor(vs[0], vs[1])
	b := m.Xor(vs[2], vs[3])
	c := m.Xor(vs[4], vs[5])
	maj := m.Or(m.Or(m.And(a, b), m.And(a, c)), m.And(b, c))
	return maj, m.NumNodes()
}

// TestManagerResetBitIdentical pins the Reset contract: replaying the
// same operation sequence on a Reset-reused manager yields the same Refs
// and the same node population as a fresh manager, even though the
// reused unique table and apply cache are larger than a fresh one's.
func TestManagerResetBitIdentical(t *testing.T) {
	order := []lit.Var{0, 1, 2, 3, 4, 5}
	fresh := NewOrdered(order)
	wantRoot, wantNodes := buildMajority(fresh)

	reused := NewOrdered(order)
	// Warm it on a different order and function so stale state exists.
	buildMajority(reused)
	reused.Reset([]lit.Var{5, 4, 3, 2, 1, 0})
	buildMajority(reused)

	reused.Reset(order)
	gotRoot, gotNodes := buildMajority(reused)
	if gotRoot != wantRoot || gotNodes != wantNodes {
		t.Fatalf("reused manager diverged: root %d/%d nodes %d/%d",
			gotRoot, wantRoot, gotNodes, wantNodes)
	}
	// The function must be semantically identical too.
	assign := make([]bool, 6)
	for bits := 0; bits < 64; bits++ {
		for i := range assign {
			assign[i] = bits&(1<<i) != 0
		}
		if fresh.Eval(wantRoot, assign) != reused.Eval(gotRoot, assign) {
			t.Fatalf("semantic divergence at assignment %06b", bits)
		}
	}
}

// TestManagerResetRetainsCapacity verifies the warm-pool property: the
// node slice and unique table stay at high-water size across Reset.
func TestManagerResetRetainsCapacity(t *testing.T) {
	m := NewOrdered([]lit.Var{0, 1, 2, 3, 4, 5})
	buildMajority(m)
	nodeCap := cap(m.nodes)
	slots := len(m.unique.slots)
	m.Reset([]lit.Var{0, 1, 2, 3, 4, 5})
	if cap(m.nodes) != nodeCap {
		t.Fatalf("node capacity dropped: %d -> %d", nodeCap, cap(m.nodes))
	}
	if len(m.unique.slots) != slots {
		t.Fatalf("unique table shrank: %d -> %d", slots, len(m.unique.slots))
	}
	if m.NumNodes() != 2 {
		t.Fatalf("Reset left %d nodes, want 2 terminals", m.NumNodes())
	}
	if m.RetainedBytes() == 0 {
		t.Fatal("RetainedBytes reported zero for a warm manager")
	}
}

// TestManagerResetClearsLimits: budget hooks and node caps must not leak
// into the next tenant's request.
func TestManagerResetClearsLimits(t *testing.T) {
	m := NewOrdered([]lit.Var{0, 1, 2, 3, 4, 5})
	m.SetLimits(3, nil)
	var reason budget.Reason
	func() {
		defer CatchAbort(&reason)
		buildMajority(m)
	}()
	if reason != budget.Nodes {
		t.Fatalf("expected node-cap abort, got %v", reason)
	}
	m.Reset([]lit.Var{0, 1, 2, 3, 4, 5})
	if _, n := buildMajority(m); n == 0 {
		t.Fatal("build failed after Reset")
	}
}

// TestManagerResetNarrowerOrder: reusing a manager for a request with
// fewer variables must not read stale varLevel entries.
func TestManagerResetNarrowerOrder(t *testing.T) {
	m := NewOrdered([]lit.Var{0, 1, 2, 3, 4, 5, 6, 7})
	buildMajority(m)
	m.Reset([]lit.Var{1, 0})
	if got := m.Level(lit.Var(1)); got != 0 {
		t.Fatalf("Level(1)=%d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Level on out-of-order variable should panic")
		}
	}()
	m.Level(lit.Var(5))
}
