package bdd

import (
	"fmt"
	"math/big"
	"sort"

	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
)

// Exists existentially quantifies the variables of the positive cube
// (as built by CubeVars) out of f.
func (m *Manager) Exists(f, cubeRef Ref) Ref {
	return m.quant(f, cubeRef, opExists)
}

// Forall universally quantifies the cube's variables out of f.
func (m *Manager) Forall(f, cubeRef Ref) Ref {
	return m.quant(f, cubeRef, opForall)
}

// ExistsVars is Exists over an explicit variable list.
func (m *Manager) ExistsVars(f Ref, vars []lit.Var) Ref {
	return m.Exists(f, m.CubeVars(vars))
}

// ForallVars is Forall over an explicit variable list.
func (m *Manager) ForallVars(f Ref, vars []lit.Var) Ref {
	return m.Forall(f, m.CubeVars(vars))
}

func (m *Manager) quant(f, c Ref, op uint8) Ref {
	if f == True || f == False {
		return f
	}
	// Skip cube variables above f.
	for c != True && m.level(c) < m.level(f) {
		c = m.nodes[c].high
	}
	if c == True {
		return f
	}
	if r, ok := m.cache.get(op, f, c, 0); ok {
		return r
	}
	n := m.nodes[f]
	var r Ref
	lo := m.quant(n.low, c, op)
	hi := m.quant(n.high, c, op)
	if m.level(c) == n.level {
		if op == opExists {
			r = m.Or(lo, hi)
		} else {
			r = m.And(lo, hi)
		}
	} else {
		r = m.mk(n.level, lo, hi)
	}
	m.cache.put(op, f, c, 0, r)
	return r
}

// AndExists computes ∃cube. f ∧ g without building the full conjunction —
// the relational-product operation at the heart of BDD-based image and
// preimage computation.
func (m *Manager) AndExists(f, g, cubeRef Ref) Ref {
	switch {
	case f == False || g == False:
		return False
	case f == True:
		return m.Exists(g, cubeRef)
	case g == True:
		return m.Exists(f, cubeRef)
	case f == g:
		return m.Exists(f, cubeRef)
	}
	// Drop cube variables above both operands.
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	c := cubeRef
	for c != True && m.level(c) < top {
		c = m.nodes[c].high
	}
	if c == True {
		return m.And(f, g)
	}
	if r, ok := m.cache.get(opAndExists, f, g, c); ok {
		return r
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	var r Ref
	if m.level(c) == top {
		lo := m.AndExists(f0, g0, c)
		if lo == True {
			r = True
		} else {
			hi := m.AndExists(f1, g1, c)
			r = m.Or(lo, hi)
		}
	} else {
		r = m.mk(top, m.AndExists(f0, g0, c), m.AndExists(f1, g1, c))
	}
	m.cache.put(opAndExists, f, g, c, r)
	return r
}

// Restrict returns the cofactor of f with variable v fixed to val.
func (m *Manager) Restrict(f Ref, v lit.Var, val bool) Ref {
	level := m.Level(v)
	return m.restrictRec(f, level, val)
}

func (m *Manager) restrictRec(f Ref, level int32, val bool) Ref {
	if m.level(f) > level {
		return f // terminal or entirely below? level order: node levels grow downward
	}
	n := m.nodes[f]
	if n.level == level {
		if val {
			return n.high
		}
		return n.low
	}
	// Reuse the opCompose slot; the (level, val) pair is packed into the b
	// operand and c = -1 keeps it disjoint from real compose keys.
	key := Ref(level)*2 + boolRef(val)
	if r, ok := m.cache.get(opCompose, f, key, -1); ok {
		return r
	}
	r := m.mk(n.level, m.restrictRec(n.low, level, val), m.restrictRec(n.high, level, val))
	m.cache.put(opCompose, f, key, -1, r)
	return r
}

func boolRef(b bool) Ref {
	if b {
		return 1
	}
	return 0
}

// RestrictCube cofactors f by every fixed position of the cube c, whose
// positions map to variables through the space s.
func (m *Manager) RestrictCube(f Ref, s *cube.Space, c cube.Cube) Ref {
	for i, t := range c {
		if t == lit.Unknown {
			continue
		}
		f = m.Restrict(f, s.Vars()[i], t == lit.True)
	}
	return f
}

// Compose substitutes g for variable v in f: f[v := g].
func (m *Manager) Compose(f Ref, v lit.Var, g Ref) Ref {
	return m.ITE(g, m.Restrict(f, v, true), m.Restrict(f, v, false))
}

// Constrain computes the Coudert–Madre generalized cofactor f↓c: a
// function that agrees with f everywhere c holds and is chosen for BDD
// compactness elsewhere. The defining property is
//
//	Constrain(f, c) ∧ c  ==  f ∧ c
//
// so it implements "simplify f using ¬c as don't cares". c must not be
// False.
func (m *Manager) Constrain(f, c Ref) Ref {
	if c == False {
		panic("bdd: Constrain with an empty care set")
	}
	return m.constrainRec(f, c)
}

const opConstrain uint8 = 200

func (m *Manager) constrainRec(f, c Ref) Ref {
	switch {
	case c == True, f == True, f == False:
		return f
	case f == c:
		return True
	}
	if r, ok := m.cache.get(opConstrain, f, c, 0); ok {
		return r
	}
	level := m.level(f)
	if l := m.level(c); l < level {
		level = l
	}
	c0, c1 := m.cofactors(c, level)
	var r Ref
	switch {
	case c0 == False:
		_, f1 := m.cofactors(f, level)
		r = m.constrainRec(f1, c1)
	case c1 == False:
		f0, _ := m.cofactors(f, level)
		r = m.constrainRec(f0, c0)
	default:
		f0, f1 := m.cofactors(f, level)
		r = m.mk(level, m.constrainRec(f0, c0), m.constrainRec(f1, c1))
	}
	m.cache.put(opConstrain, f, c, 0, r)
	return r
}

// SimplifyWith returns some function between f∧c and f∨¬c (i.e. f with
// ¬c as a don't-care set), using Constrain; useful for shrinking frontier
// sets in reachability fixpoints.
func (m *Manager) SimplifyWith(f, c Ref) Ref {
	if c == False {
		return False
	}
	return m.Constrain(f, c)
}

// Support returns the variables f depends on, in order position.
func (m *Manager) Support(f Ref) []lit.Var {
	seen := map[Ref]bool{}
	levels := map[int32]bool{}
	var walk func(Ref)
	walk = func(r Ref) {
		if r == True || r == False || seen[r] {
			return
		}
		seen[r] = true
		n := m.nodes[r]
		levels[n.level] = true
		walk(n.low)
		walk(n.high)
	}
	walk(f)
	ls := make([]int32, 0, len(levels))
	for l := range levels {
		ls = append(ls, l)
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := make([]lit.Var, len(ls))
	for i, l := range ls {
		out[i] = m.order[l]
	}
	return out
}

// Size returns the number of distinct nodes reachable from f, including
// terminals.
func (m *Manager) Size(f Ref) int {
	seen := map[Ref]bool{}
	var walk func(Ref)
	walk = func(r Ref) {
		if seen[r] {
			return
		}
		seen[r] = true
		if r == True || r == False {
			return
		}
		n := m.nodes[r]
		walk(n.low)
		walk(n.high)
	}
	walk(f)
	return len(seen)
}

// SatCount returns the exact number of satisfying assignments of f over
// the manager's full variable set. Managers under 63 variables — every
// benchmark circuit — take an allocation-free uint64 path; wider ones
// fall back to big.Int arithmetic over a slice-indexed memo.
func (m *Manager) SatCount(f Ref) *big.Int {
	n := int32(len(m.order))
	if n < 63 {
		return new(big.Int).SetUint64(m.satCount64(f, n))
	}
	return m.satCountBig(f, n)
}

// satCount64 counts models with machine words: counts are bounded by
// 2^n < 2^63, so shifts and sums cannot overflow. The memo stores
// count+1 per node (0 = absent), one slice allocation total.
func (m *Manager) satCount64(f Ref, n int32) uint64 {
	memo := make([]uint64, len(m.nodes))
	levelOf := func(r Ref) int32 {
		if l := m.level(r); l != terminalLevel {
			return l
		}
		return n
	}
	var rec func(Ref) uint64 // models over variables from r's own level down
	rec = func(r Ref) uint64 {
		if r == False {
			return 0
		}
		if r == True {
			return 1
		}
		if c := memo[r]; c != 0 {
			return c - 1
		}
		nd := m.nodes[r]
		lo := rec(nd.low) << uint(levelOf(nd.low)-nd.level-1)
		hi := rec(nd.high) << uint(levelOf(nd.high)-nd.level-1)
		memo[r] = lo + hi + 1
		return lo + hi
	}
	return rec(f) << uint(levelOf(f))
}

func (m *Manager) satCountBig(f Ref, n int32) *big.Int {
	memo := make([]*big.Int, len(m.nodes))
	pows := make([]*big.Int, n+1) // lazily filled powers of two
	pow := func(k int32) *big.Int {
		if pows[k] == nil {
			pows[k] = new(big.Int).Lsh(big.NewInt(1), uint(k))
		}
		return pows[k]
	}
	levelOf := func(r Ref) int32 {
		if l := m.level(r); l != terminalLevel {
			return l
		}
		return n
	}
	var rec func(Ref) *big.Int // models over variables strictly below level(r)'s own level, counting r's level itself
	rec = func(r Ref) *big.Int {
		if r == False {
			return big.NewInt(0)
		}
		if r == True {
			return big.NewInt(1)
		}
		if c := memo[r]; c != nil {
			return c
		}
		nd := m.nodes[r]
		lo := new(big.Int).Mul(rec(nd.low), pow(levelOf(nd.low)-nd.level-1))
		hi := new(big.Int).Mul(rec(nd.high), pow(levelOf(nd.high)-nd.level-1))
		c := lo.Add(lo, hi)
		memo[r] = c
		return c
	}
	return new(big.Int).Mul(rec(f), pow(levelOf(f)))
}

// SatCountIn returns the number of satisfying assignments of f counting
// only the given variables as the universe; f's support must be a subset.
func (m *Manager) SatCountIn(f Ref, vars []lit.Var) *big.Int {
	full := m.SatCount(f)
	extra := len(m.order) - len(vars)
	if extra < 0 {
		panic("bdd: SatCountIn universe smaller than manager order")
	}
	den := new(big.Int).Exp(big.NewInt(2), big.NewInt(int64(extra)), nil)
	q, r := new(big.Int).QuoRem(full, den, new(big.Int))
	if r.Sign() != 0 {
		panic("bdd: SatCountIn: support not contained in universe")
	}
	return q
}

// AnySat returns one satisfying cube of f over the space s (or nil when
// f is False). Variables of s not in f's support come back Unknown.
func (m *Manager) AnySat(f Ref, s *cube.Space) cube.Cube {
	if f == False {
		return nil
	}
	c := s.FullCube()
	for f != True {
		n := m.nodes[f]
		v := m.order[n.level]
		pos := s.PosOf(v)
		if n.low != False {
			if pos >= 0 {
				c[pos] = lit.False
			}
			f = n.low
		} else {
			if pos >= 0 {
				c[pos] = lit.True
			}
			f = n.high
		}
	}
	return c
}

// ToCover enumerates the 1-paths of f as a cube cover over the space s.
// Every support variable of f must be in s.
func (m *Manager) ToCover(f Ref, s *cube.Space) *cube.Cover {
	cv := cube.NewCover(s)
	cur := s.FullCube()
	var walk func(Ref)
	walk = func(r Ref) {
		if r == False {
			return
		}
		if r == True {
			cv.Add(cur.Clone())
			return
		}
		n := m.nodes[r]
		v := m.order[n.level]
		pos := s.PosOf(v)
		if pos < 0 {
			panic(fmt.Sprintf("bdd: ToCover: support variable %v not in space", v))
		}
		cur[pos] = lit.False
		walk(n.low)
		cur[pos] = lit.True
		walk(n.high)
		cur[pos] = lit.Unknown
	}
	walk(f)
	return cv
}

// FromCube builds the BDD of a cube over space s.
func (m *Manager) FromCube(s *cube.Space, c cube.Cube) Ref {
	r := True
	for i, t := range c {
		if t == lit.Unknown {
			continue
		}
		v := s.Vars()[i]
		if t == lit.True {
			r = m.And(r, m.Var(v))
		} else {
			r = m.And(r, m.NVar(v))
		}
	}
	return r
}

// FromCover builds the BDD of a cover (disjunction of its cubes).
func (m *Manager) FromCover(cv *cube.Cover) Ref {
	r := False
	for _, c := range cv.Cubes() {
		r = m.Or(r, m.FromCube(cv.Space(), c))
	}
	return r
}
