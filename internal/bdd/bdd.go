// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// with a shared unique table and memoized operations: ITE-based Boolean
// connectives, existential/universal quantification, the AndExists
// relational product, restriction, composition, exact model counting, and
// greedy sifting-based variable reordering.
//
// It serves two roles in this repository: it is the baseline preimage
// engine (relational-product image computation, as in classical symbolic
// model checkers), and it is the canonical store for the solution sets
// produced by the all-solutions SAT enumerators.
package bdd

import (
	"fmt"
	"math"

	"allsatpre/internal/budget"
	"allsatpre/internal/lit"
)

// Ref identifies a BDD node within one Manager. The constants False and
// True are the terminal nodes. Refs from different managers must not be
// mixed; operations panic on out-of-range refs.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

const terminalLevel = int32(math.MaxInt32)

type node struct {
	level     int32 // position in the variable order (not the variable id)
	low, high Ref
}

const (
	opITE uint8 = iota
	opAnd
	opOr
	opExists
	opForall
	opAndExists
	opCompose
)

// DefaultCacheLimit is the apply-cache entry cap installed on new
// managers. The cache is a fixed-size direct-mapped array that starts
// small and doubles alongside unique-table growth, never past this many
// slots; colliding entries overwrite each other (lossy), so the cap
// bounds memory on long reachability runs at the price of recomputing
// evicted entries. Tune per manager with SetCacheLimit.
const DefaultCacheLimit = 1 << 21

// defaultUniqueBits sizes a fresh manager's unique table (2^bits slots).
// Kept small so the many short-lived managers (one per counting call)
// stay allocation-lean; the table doubles at 3/4 load.
const defaultUniqueBits = 8

// Manager owns a node table and operation caches for one variable order.
type Manager struct {
	nodes    []node
	unique   uniqueTable // open-addressed (level, low, high) -> Ref index
	cache    applyCache  // direct-mapped memo for the apply recursions
	order    []lit.Var   // level -> variable
	varLevel []int32     // variable -> level, -1 if unknown

	// cacheLimit caps the apply cache's slot count (see SetCacheLimit).
	cacheLimit int

	// Resource limits (see SetLimits): exceeding them aborts the current
	// operation by panicking with *Abort, recovered by CatchAbort.
	maxNodes int
	check    *budget.Checker
}

// Abort is the panic payload raised from deep inside a BDD operation
// when the manager's budget (node cap, deadline, cancellation) trips.
// Recover it with CatchAbort; any other panic is re-raised.
type Abort struct {
	Reason budget.Reason
}

func (a *Abort) Error() string { return "bdd: aborted: " + a.Reason.String() }

// SetLimits installs a node cap (0 = unlimited) and an optional budget
// checker polled from the node-construction hot path. When either trips,
// the in-flight operation panics with *Abort — wrap the calling
// computation with `defer CatchAbort(&reason)` to turn that into a
// structured abort with whatever partial state the caller retains.
func (m *Manager) SetLimits(maxNodes int, check *budget.Checker) {
	m.maxNodes = maxNodes
	m.check = check
}

// CatchAbort is the deferred companion of SetLimits: it recovers an
// *Abort panic into *reason and re-raises anything else.
func CatchAbort(reason *budget.Reason) {
	if r := recover(); r != nil {
		if a, ok := r.(*Abort); ok {
			*reason = a.Reason
			return
		}
		panic(r)
	}
}

// SetCacheLimit caps the apply cache at n entries (n <= 0 removes the
// cap, leaving the built-in hard ceiling). The cache is direct-mapped, so
// the cap is realized as a power-of-two slot count not exceeding n; a
// shrink reallocates immediately, while a raise takes effect as the cache
// doubles alongside unique-table growth.
func (m *Manager) SetCacheLimit(n int) {
	if n < 0 {
		n = 0
	}
	m.cacheLimit = n
	if cap := cacheSlotsFor(n); len(m.cache.entries) > cap {
		m.cache.resize(cap)
	}
}

// ClearCache invalidates every apply-cache entry in O(1) via a
// generation bump. Kernel bookkeeping only — never needed for
// correctness, since the cache is already lossy.
func (m *Manager) ClearCache() { m.cache.invalidate() }

// CacheStats reports apply-cache activity: lookups, hits, evictions
// (live entries overwritten by a colliding key — the direct-mapped
// analogue of the old wholesale clears), and the current occupancy.
func (m *Manager) CacheStats() (lookups, hits, evictions uint64, size int) {
	return m.cache.lookups, m.cache.hits, m.cache.evictions, m.cache.size
}

// growCache doubles the apply cache in step with unique-table rehashes,
// keeping its reach proportional to the node population without paying
// for a large array on managers that stay small.
func (m *Manager) growCache() {
	n := len(m.cache.entries)
	if n*2 <= cacheSlotsFor(m.cacheLimit) && n < len(m.unique.slots) {
		m.cache.resize(n * 2)
	}
}

// New creates a manager over n variables with the identity order
// (variable i at level i).
func New(n int) *Manager {
	order := make([]lit.Var, n)
	for i := range order {
		order[i] = lit.Var(i)
	}
	return NewOrdered(order)
}

// NewOrdered creates a manager whose variable order is the given list
// (first entry at the top). Every variable used in operations must appear.
func NewOrdered(order []lit.Var) *Manager {
	return newOrdered(order, defaultUniqueBits)
}

// newOrdered is NewOrdered with an explicit initial unique-table size
// (2^uniqueBits slots); tests use tiny tables to force rehashes early.
func newOrdered(order []lit.Var, uniqueBits int) *Manager {
	m := &Manager{
		order:      append([]lit.Var(nil), order...),
		cacheLimit: DefaultCacheLimit,
	}
	m.unique.init(uniqueBits)
	cacheSlots := minCacheSlots
	if cap := cacheSlotsFor(m.cacheLimit); cap < cacheSlots {
		cacheSlots = cap
	}
	m.cache.init(cacheSlots)
	maxVar := lit.Var(-1)
	for _, v := range order {
		if v > maxVar {
			maxVar = v
		}
	}
	m.varLevel = make([]int32, maxVar+1)
	for i := range m.varLevel {
		m.varLevel[i] = -1
	}
	for l, v := range m.order {
		if m.varLevel[v] != -1 {
			panic(fmt.Sprintf("bdd: duplicate variable %v in order", v))
		}
		m.varLevel[v] = int32(l)
	}
	// Terminals occupy slots 0 and 1.
	m.nodes = append(m.nodes,
		node{level: terminalLevel},
		node{level: terminalLevel})
	return m
}

// NumVars returns the number of variables in the order.
func (m *Manager) NumVars() int { return len(m.order) }

// NumNodes returns the total number of nodes ever created, including the
// two terminals — the memory-consumption proxy used by the benchmarks.
func (m *Manager) NumNodes() int { return len(m.nodes) }

// Order returns the variable order (level → variable); shared slice.
func (m *Manager) Order() []lit.Var { return m.order }

// Level returns the level of variable v, panicking if v is not in the
// order.
func (m *Manager) Level(v lit.Var) int32 {
	if int(v) >= len(m.varLevel) || m.varLevel[v] < 0 {
		panic(fmt.Sprintf("bdd: variable %v not in order", v))
	}
	return m.varLevel[v]
}

// VarAtLevel returns the variable at the given level.
func (m *Manager) VarAtLevel(l int32) lit.Var { return m.order[l] }

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

// mk returns the canonical node (level, low, high), applying the ROBDD
// reduction rules. It is the single point through which every node is
// created, so the budget limits are enforced here — after the unique-table
// hit check (a hit allocates nothing and must stay abort-free) and before
// any mutation, so an abort never leaves a half-inserted node behind.
func (m *Manager) mk(level int32, low, high Ref) Ref {
	if low == high {
		return low
	}
	r, slot, ok := m.unique.find(m.nodes, level, low, high)
	if ok {
		return r
	}
	if m.maxNodes > 0 && len(m.nodes) >= m.maxNodes {
		panic(&Abort{Reason: budget.Nodes})
	}
	if m.check != nil {
		if reason := m.check.Poll(); reason != budget.None {
			panic(&Abort{Reason: reason})
		}
	}
	if m.unique.needGrow(len(m.nodes) - 1) {
		m.unique.rehash(m.nodes)
		m.growCache()
		slot = m.unique.emptySlot(level, low, high)
	}
	r = Ref(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, low: low, high: high})
	m.unique.slots[slot] = r
	return r
}

// Var returns the BDD of the positive literal of v.
func (m *Manager) Var(v lit.Var) Ref { return m.mk(m.Level(v), False, True) }

// NVar returns the BDD of the negative literal of v.
func (m *Manager) NVar(v lit.Var) Ref { return m.mk(m.Level(v), True, False) }

// Lit returns the BDD of a literal.
func (m *Manager) Lit(l lit.Lit) Ref {
	if l.Sign() {
		return m.NVar(l.Var())
	}
	return m.Var(l.Var())
}

// Const returns the terminal for b.
func Const(b bool) Ref {
	if b {
		return True
	}
	return False
}

// cofactors returns the low/high cofactors of r with respect to the given
// level.
func (m *Manager) cofactors(r Ref, level int32) (lo, hi Ref) {
	n := m.nodes[r]
	if n.level == level {
		return n.low, n.high
	}
	return r, r
}

// ITE computes if-then-else: f·g + ¬f·h.
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal shortcuts.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	if r, ok := m.cache.get(opITE, f, g, h); ok {
		return r
	}
	level := m.level(f)
	if l := m.level(g); l < level {
		level = l
	}
	if l := m.level(h); l < level {
		level = l
	}
	f0, f1 := m.cofactors(f, level)
	g0, g1 := m.cofactors(g, level)
	h0, h1 := m.cofactors(h, level)
	r := m.mk(level, m.ITE(f0, g0, h0), m.ITE(f1, g1, h1))
	m.cache.put(opITE, f, g, h, r)
	return r
}

// Not returns ¬f.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, False, True) }

// And returns f ∧ g. It is a specialized binary apply recursion: the two
// connectives the enumerator and preimage loops actually build skip the
// generic ITE normalization, and their commuted operand pairs share one
// cache entry.
func (m *Manager) And(f, g Ref) Ref {
	switch {
	case f == g || g == True:
		return f
	case f == True:
		return g
	case f == False || g == False:
		return False
	}
	if g < f {
		f, g = g, f
	}
	if r, ok := m.cache.get(opAnd, f, g, 0); ok {
		return r
	}
	level := m.level(f)
	if l := m.level(g); l < level {
		level = l
	}
	f0, f1 := m.cofactors(f, level)
	g0, g1 := m.cofactors(g, level)
	r := m.mk(level, m.And(f0, g0), m.And(f1, g1))
	m.cache.put(opAnd, f, g, 0, r)
	return r
}

// Or returns f ∨ g (specialized like And).
func (m *Manager) Or(f, g Ref) Ref {
	switch {
	case f == g || g == False:
		return f
	case f == False:
		return g
	case f == True || g == True:
		return True
	}
	if g < f {
		f, g = g, f
	}
	if r, ok := m.cache.get(opOr, f, g, 0); ok {
		return r
	}
	level := m.level(f)
	if l := m.level(g); l < level {
		level = l
	}
	f0, f1 := m.cofactors(f, level)
	g0, g1 := m.cofactors(g, level)
	r := m.mk(level, m.Or(f0, g0), m.Or(f1, g1))
	m.cache.put(opOr, f, g, 0, r)
	return r
}

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.ITE(f, m.Not(g), g) }

// Xnor returns ¬(f ⊕ g), i.e. f ≡ g.
func (m *Manager) Xnor(f, g Ref) Ref { return m.ITE(f, g, m.Not(g)) }

// Implies returns f → g.
func (m *Manager) Implies(f, g Ref) Ref { return m.ITE(f, g, True) }

// Diff returns f ∧ ¬g.
func (m *Manager) Diff(f, g Ref) Ref { return m.And(f, m.Not(g)) }

// AndN folds And over the arguments (True for none).
func (m *Manager) AndN(fs ...Ref) Ref {
	r := True
	for _, f := range fs {
		r = m.And(r, f)
		if r == False {
			return False
		}
	}
	return r
}

// OrN folds Or over the arguments (False for none).
func (m *Manager) OrN(fs ...Ref) Ref {
	r := False
	for _, f := range fs {
		r = m.Or(r, f)
		if r == True {
			return True
		}
	}
	return r
}

// CubeVars returns the positive-literal cube over the given variables,
// used to name quantification sets.
func (m *Manager) CubeVars(vars []lit.Var) Ref {
	// Build bottom-up in level order for linear size.
	levels := make([]int32, 0, len(vars))
	for _, v := range vars {
		levels = append(levels, m.Level(v))
	}
	// insertion sort descending (deepest first)
	for i := 1; i < len(levels); i++ {
		for j := i; j > 0 && levels[j] > levels[j-1]; j-- {
			levels[j], levels[j-1] = levels[j-1], levels[j]
		}
	}
	r := True
	for _, l := range levels {
		r = m.mk(l, False, r)
	}
	return r
}

// Eval evaluates f under a total assignment indexed by variable.
func (m *Manager) Eval(f Ref, assign []bool) bool {
	for f != True && f != False {
		n := m.nodes[f]
		v := m.order[n.level]
		val := int(v) < len(assign) && assign[v]
		if val {
			f = n.high
		} else {
			f = n.low
		}
	}
	return f == True
}
