// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// with a shared unique table and memoized operations: ITE-based Boolean
// connectives, existential/universal quantification, the AndExists
// relational product, restriction, composition, exact model counting, and
// greedy sifting-based variable reordering.
//
// It serves two roles in this repository: it is the baseline preimage
// engine (relational-product image computation, as in classical symbolic
// model checkers), and it is the canonical store for the solution sets
// produced by the all-solutions SAT enumerators.
package bdd

import (
	"fmt"
	"math"

	"allsatpre/internal/lit"
)

// Ref identifies a BDD node within one Manager. The constants False and
// True are the terminal nodes. Refs from different managers must not be
// mixed; operations panic on out-of-range refs.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

const terminalLevel = int32(math.MaxInt32)

type node struct {
	level     int32 // position in the variable order (not the variable id)
	low, high Ref
}

type opKey struct {
	op      uint8
	a, b, c Ref
}

const (
	opITE uint8 = iota
	opExists
	opForall
	opAndExists
	opCompose
)

// Manager owns a node table and operation caches for one variable order.
type Manager struct {
	nodes    []node
	unique   map[node]Ref
	cache    map[opKey]Ref
	order    []lit.Var // level -> variable
	varLevel []int32   // variable -> level, -1 if unknown
}

// New creates a manager over n variables with the identity order
// (variable i at level i).
func New(n int) *Manager {
	order := make([]lit.Var, n)
	for i := range order {
		order[i] = lit.Var(i)
	}
	return NewOrdered(order)
}

// NewOrdered creates a manager whose variable order is the given list
// (first entry at the top). Every variable used in operations must appear.
func NewOrdered(order []lit.Var) *Manager {
	m := &Manager{
		unique: make(map[node]Ref),
		cache:  make(map[opKey]Ref),
		order:  append([]lit.Var(nil), order...),
	}
	maxVar := lit.Var(-1)
	for _, v := range order {
		if v > maxVar {
			maxVar = v
		}
	}
	m.varLevel = make([]int32, maxVar+1)
	for i := range m.varLevel {
		m.varLevel[i] = -1
	}
	for l, v := range m.order {
		if m.varLevel[v] != -1 {
			panic(fmt.Sprintf("bdd: duplicate variable %v in order", v))
		}
		m.varLevel[v] = int32(l)
	}
	// Terminals occupy slots 0 and 1.
	m.nodes = append(m.nodes,
		node{level: terminalLevel},
		node{level: terminalLevel})
	return m
}

// NumVars returns the number of variables in the order.
func (m *Manager) NumVars() int { return len(m.order) }

// NumNodes returns the total number of nodes ever created, including the
// two terminals — the memory-consumption proxy used by the benchmarks.
func (m *Manager) NumNodes() int { return len(m.nodes) }

// Order returns the variable order (level → variable); shared slice.
func (m *Manager) Order() []lit.Var { return m.order }

// Level returns the level of variable v, panicking if v is not in the
// order.
func (m *Manager) Level(v lit.Var) int32 {
	if int(v) >= len(m.varLevel) || m.varLevel[v] < 0 {
		panic(fmt.Sprintf("bdd: variable %v not in order", v))
	}
	return m.varLevel[v]
}

// VarAtLevel returns the variable at the given level.
func (m *Manager) VarAtLevel(l int32) lit.Var { return m.order[l] }

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

// mk returns the canonical node (level, low, high), applying the ROBDD
// reduction rules.
func (m *Manager) mk(level int32, low, high Ref) Ref {
	if low == high {
		return low
	}
	n := node{level: level, low: low, high: high}
	if r, ok := m.unique[n]; ok {
		return r
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, n)
	m.unique[n] = r
	return r
}

// Var returns the BDD of the positive literal of v.
func (m *Manager) Var(v lit.Var) Ref { return m.mk(m.Level(v), False, True) }

// NVar returns the BDD of the negative literal of v.
func (m *Manager) NVar(v lit.Var) Ref { return m.mk(m.Level(v), True, False) }

// Lit returns the BDD of a literal.
func (m *Manager) Lit(l lit.Lit) Ref {
	if l.Sign() {
		return m.NVar(l.Var())
	}
	return m.Var(l.Var())
}

// Const returns the terminal for b.
func Const(b bool) Ref {
	if b {
		return True
	}
	return False
}

// cofactors returns the low/high cofactors of r with respect to the given
// level.
func (m *Manager) cofactors(r Ref, level int32) (lo, hi Ref) {
	n := m.nodes[r]
	if n.level == level {
		return n.low, n.high
	}
	return r, r
}

// ITE computes if-then-else: f·g + ¬f·h.
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal shortcuts.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := opKey{op: opITE, a: f, b: g, c: h}
	if r, ok := m.cache[key]; ok {
		return r
	}
	level := m.level(f)
	if l := m.level(g); l < level {
		level = l
	}
	if l := m.level(h); l < level {
		level = l
	}
	f0, f1 := m.cofactors(f, level)
	g0, g1 := m.cofactors(g, level)
	h0, h1 := m.cofactors(h, level)
	r := m.mk(level, m.ITE(f0, g0, h0), m.ITE(f1, g1, h1))
	m.cache[key] = r
	return r
}

// Not returns ¬f.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, False, True) }

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.ITE(f, g, False) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.ITE(f, True, g) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.ITE(f, m.Not(g), g) }

// Xnor returns ¬(f ⊕ g), i.e. f ≡ g.
func (m *Manager) Xnor(f, g Ref) Ref { return m.ITE(f, g, m.Not(g)) }

// Implies returns f → g.
func (m *Manager) Implies(f, g Ref) Ref { return m.ITE(f, g, True) }

// Diff returns f ∧ ¬g.
func (m *Manager) Diff(f, g Ref) Ref { return m.And(f, m.Not(g)) }

// AndN folds And over the arguments (True for none).
func (m *Manager) AndN(fs ...Ref) Ref {
	r := True
	for _, f := range fs {
		r = m.And(r, f)
		if r == False {
			return False
		}
	}
	return r
}

// OrN folds Or over the arguments (False for none).
func (m *Manager) OrN(fs ...Ref) Ref {
	r := False
	for _, f := range fs {
		r = m.Or(r, f)
		if r == True {
			return True
		}
	}
	return r
}

// CubeVars returns the positive-literal cube over the given variables,
// used to name quantification sets.
func (m *Manager) CubeVars(vars []lit.Var) Ref {
	// Build bottom-up in level order for linear size.
	levels := make([]int32, 0, len(vars))
	for _, v := range vars {
		levels = append(levels, m.Level(v))
	}
	// insertion sort descending (deepest first)
	for i := 1; i < len(levels); i++ {
		for j := i; j > 0 && levels[j] > levels[j-1]; j-- {
			levels[j], levels[j-1] = levels[j-1], levels[j]
		}
	}
	r := True
	for _, l := range levels {
		r = m.mk(l, False, r)
	}
	return r
}

// Eval evaluates f under a total assignment indexed by variable.
func (m *Manager) Eval(f Ref, assign []bool) bool {
	for f != True && f != False {
		n := m.nodes[f]
		v := m.order[n.level]
		val := int(v) < len(assign) && assign[v]
		if val {
			f = n.high
		} else {
			f = n.low
		}
	}
	return f == True
}
