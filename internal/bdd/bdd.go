// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// with a shared unique table and memoized operations: ITE-based Boolean
// connectives, existential/universal quantification, the AndExists
// relational product, restriction, composition, exact model counting, and
// greedy sifting-based variable reordering.
//
// It serves two roles in this repository: it is the baseline preimage
// engine (relational-product image computation, as in classical symbolic
// model checkers), and it is the canonical store for the solution sets
// produced by the all-solutions SAT enumerators.
package bdd

import (
	"fmt"
	"math"

	"allsatpre/internal/budget"
	"allsatpre/internal/lit"
)

// Ref identifies a BDD node within one Manager. The constants False and
// True are the terminal nodes. Refs from different managers must not be
// mixed; operations panic on out-of-range refs.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

const terminalLevel = int32(math.MaxInt32)

type node struct {
	level     int32 // position in the variable order (not the variable id)
	low, high Ref
}

type opKey struct {
	op      uint8
	a, b, c Ref
}

const (
	opITE uint8 = iota
	opExists
	opForall
	opAndExists
	opCompose
)

// DefaultCacheLimit is the apply-cache entry cap installed on new
// managers: past it the cache is cleared wholesale (clear-on-threshold),
// bounding memory on long reachability runs at the price of recomputing
// warm entries. Tune per manager with SetCacheLimit.
const DefaultCacheLimit = 1 << 21

// Manager owns a node table and operation caches for one variable order.
type Manager struct {
	nodes    []node
	unique   map[node]Ref
	cache    map[opKey]Ref
	order    []lit.Var // level -> variable
	varLevel []int32   // variable -> level, -1 if unknown

	// Apply-cache governance: the cache is cleared whenever it grows past
	// cacheLimit entries (0 = unbounded); the counters feed stats.
	cacheLimit   int
	cacheLookups uint64
	cacheHits    uint64
	cacheClears  uint64

	// Resource limits (see SetLimits): exceeding them aborts the current
	// operation by panicking with *Abort, recovered by CatchAbort.
	maxNodes int
	check    *budget.Checker
}

// Abort is the panic payload raised from deep inside a BDD operation
// when the manager's budget (node cap, deadline, cancellation) trips.
// Recover it with CatchAbort; any other panic is re-raised.
type Abort struct {
	Reason budget.Reason
}

func (a *Abort) Error() string { return "bdd: aborted: " + a.Reason.String() }

// SetLimits installs a node cap (0 = unlimited) and an optional budget
// checker polled from the node-construction hot path. When either trips,
// the in-flight operation panics with *Abort — wrap the calling
// computation with `defer CatchAbort(&reason)` to turn that into a
// structured abort with whatever partial state the caller retains.
func (m *Manager) SetLimits(maxNodes int, check *budget.Checker) {
	m.maxNodes = maxNodes
	m.check = check
}

// CatchAbort is the deferred companion of SetLimits: it recovers an
// *Abort panic into *reason and re-raises anything else.
func CatchAbort(reason *budget.Reason) {
	if r := recover(); r != nil {
		if a, ok := r.(*Abort); ok {
			*reason = a.Reason
			return
		}
		panic(r)
	}
}

// SetCacheLimit caps the apply cache at n entries (n <= 0 removes the
// cap). The cache is cleared, not shrunk, when the cap is exceeded.
func (m *Manager) SetCacheLimit(n int) {
	if n < 0 {
		n = 0
	}
	m.cacheLimit = n
}

// CacheStats reports apply-cache activity: lookups, hits, wholesale
// clears forced by the entry cap, and the current entry count.
func (m *Manager) CacheStats() (lookups, hits, clears uint64, size int) {
	return m.cacheLookups, m.cacheHits, m.cacheClears, len(m.cache)
}

// cacheGet is the instrumented apply-cache probe.
func (m *Manager) cacheGet(key opKey) (Ref, bool) {
	m.cacheLookups++
	r, ok := m.cache[key]
	if ok {
		m.cacheHits++
	}
	return r, ok
}

// cachePut inserts an apply-cache entry, clearing the whole cache first
// when it has grown past the limit.
func (m *Manager) cachePut(key opKey, r Ref) {
	if m.cacheLimit > 0 && len(m.cache) >= m.cacheLimit {
		m.cache = make(map[opKey]Ref)
		m.cacheClears++
	}
	m.cache[key] = r
}

// New creates a manager over n variables with the identity order
// (variable i at level i).
func New(n int) *Manager {
	order := make([]lit.Var, n)
	for i := range order {
		order[i] = lit.Var(i)
	}
	return NewOrdered(order)
}

// NewOrdered creates a manager whose variable order is the given list
// (first entry at the top). Every variable used in operations must appear.
func NewOrdered(order []lit.Var) *Manager {
	m := &Manager{
		unique:     make(map[node]Ref),
		cache:      make(map[opKey]Ref),
		order:      append([]lit.Var(nil), order...),
		cacheLimit: DefaultCacheLimit,
	}
	maxVar := lit.Var(-1)
	for _, v := range order {
		if v > maxVar {
			maxVar = v
		}
	}
	m.varLevel = make([]int32, maxVar+1)
	for i := range m.varLevel {
		m.varLevel[i] = -1
	}
	for l, v := range m.order {
		if m.varLevel[v] != -1 {
			panic(fmt.Sprintf("bdd: duplicate variable %v in order", v))
		}
		m.varLevel[v] = int32(l)
	}
	// Terminals occupy slots 0 and 1.
	m.nodes = append(m.nodes,
		node{level: terminalLevel},
		node{level: terminalLevel})
	return m
}

// NumVars returns the number of variables in the order.
func (m *Manager) NumVars() int { return len(m.order) }

// NumNodes returns the total number of nodes ever created, including the
// two terminals — the memory-consumption proxy used by the benchmarks.
func (m *Manager) NumNodes() int { return len(m.nodes) }

// Order returns the variable order (level → variable); shared slice.
func (m *Manager) Order() []lit.Var { return m.order }

// Level returns the level of variable v, panicking if v is not in the
// order.
func (m *Manager) Level(v lit.Var) int32 {
	if int(v) >= len(m.varLevel) || m.varLevel[v] < 0 {
		panic(fmt.Sprintf("bdd: variable %v not in order", v))
	}
	return m.varLevel[v]
}

// VarAtLevel returns the variable at the given level.
func (m *Manager) VarAtLevel(l int32) lit.Var { return m.order[l] }

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

// mk returns the canonical node (level, low, high), applying the ROBDD
// reduction rules. It is the single point through which every node is
// created, so the budget limits are enforced here.
func (m *Manager) mk(level int32, low, high Ref) Ref {
	if low == high {
		return low
	}
	n := node{level: level, low: low, high: high}
	if r, ok := m.unique[n]; ok {
		return r
	}
	if m.maxNodes > 0 && len(m.nodes) >= m.maxNodes {
		panic(&Abort{Reason: budget.Nodes})
	}
	if m.check != nil {
		if reason := m.check.Poll(); reason != budget.None {
			panic(&Abort{Reason: reason})
		}
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, n)
	m.unique[n] = r
	return r
}

// Var returns the BDD of the positive literal of v.
func (m *Manager) Var(v lit.Var) Ref { return m.mk(m.Level(v), False, True) }

// NVar returns the BDD of the negative literal of v.
func (m *Manager) NVar(v lit.Var) Ref { return m.mk(m.Level(v), True, False) }

// Lit returns the BDD of a literal.
func (m *Manager) Lit(l lit.Lit) Ref {
	if l.Sign() {
		return m.NVar(l.Var())
	}
	return m.Var(l.Var())
}

// Const returns the terminal for b.
func Const(b bool) Ref {
	if b {
		return True
	}
	return False
}

// cofactors returns the low/high cofactors of r with respect to the given
// level.
func (m *Manager) cofactors(r Ref, level int32) (lo, hi Ref) {
	n := m.nodes[r]
	if n.level == level {
		return n.low, n.high
	}
	return r, r
}

// ITE computes if-then-else: f·g + ¬f·h.
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal shortcuts.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := opKey{op: opITE, a: f, b: g, c: h}
	if r, ok := m.cacheGet(key); ok {
		return r
	}
	level := m.level(f)
	if l := m.level(g); l < level {
		level = l
	}
	if l := m.level(h); l < level {
		level = l
	}
	f0, f1 := m.cofactors(f, level)
	g0, g1 := m.cofactors(g, level)
	h0, h1 := m.cofactors(h, level)
	r := m.mk(level, m.ITE(f0, g0, h0), m.ITE(f1, g1, h1))
	m.cachePut(key, r)
	return r
}

// Not returns ¬f.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, False, True) }

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.ITE(f, g, False) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.ITE(f, True, g) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.ITE(f, m.Not(g), g) }

// Xnor returns ¬(f ⊕ g), i.e. f ≡ g.
func (m *Manager) Xnor(f, g Ref) Ref { return m.ITE(f, g, m.Not(g)) }

// Implies returns f → g.
func (m *Manager) Implies(f, g Ref) Ref { return m.ITE(f, g, True) }

// Diff returns f ∧ ¬g.
func (m *Manager) Diff(f, g Ref) Ref { return m.And(f, m.Not(g)) }

// AndN folds And over the arguments (True for none).
func (m *Manager) AndN(fs ...Ref) Ref {
	r := True
	for _, f := range fs {
		r = m.And(r, f)
		if r == False {
			return False
		}
	}
	return r
}

// OrN folds Or over the arguments (False for none).
func (m *Manager) OrN(fs ...Ref) Ref {
	r := False
	for _, f := range fs {
		r = m.Or(r, f)
		if r == True {
			return True
		}
	}
	return r
}

// CubeVars returns the positive-literal cube over the given variables,
// used to name quantification sets.
func (m *Manager) CubeVars(vars []lit.Var) Ref {
	// Build bottom-up in level order for linear size.
	levels := make([]int32, 0, len(vars))
	for _, v := range vars {
		levels = append(levels, m.Level(v))
	}
	// insertion sort descending (deepest first)
	for i := 1; i < len(levels); i++ {
		for j := i; j > 0 && levels[j] > levels[j-1]; j-- {
			levels[j], levels[j-1] = levels[j-1], levels[j]
		}
	}
	r := True
	for _, l := range levels {
		r = m.mk(l, False, r)
	}
	return r
}

// Eval evaluates f under a total assignment indexed by variable.
func (m *Manager) Eval(f Ref, assign []bool) bool {
	for f != True && f != False {
		n := m.nodes[f]
		v := m.order[n.level]
		val := int(v) < len(assign) && assign[v]
		if val {
			f = n.high
		} else {
			f = n.low
		}
	}
	return f == True
}
