package bdd

import (
	"fmt"

	"allsatpre/internal/lit"
)

// Reset returns the manager to the state NewOrdered(order) produces —
// only the two terminals, an empty unique table, an invalidated apply
// cache, default limits — while keeping the node slice, unique-table
// slots, and apply-cache array at their high-water capacity.
//
// Capacity retention cannot perturb results: Refs are assigned in node
// creation order, which is driven purely by the sequence of first-time
// apply computations. A larger apply cache changes only which results
// are recomputed, and recomputing an already-computed operation creates
// no nodes (every constituent is already interned), so a Reset-reused
// manager yields bit-identical Refs to a fresh one for the same
// operation sequence. Unique-table size affects probe/rehash counters
// only. The reuse equivalence suite pins this contract.
func (m *Manager) Reset(order []lit.Var) {
	m.order = append(m.order[:0], order...)

	maxVar := lit.Var(-1)
	for _, v := range m.order {
		if v > maxVar {
			maxVar = v
		}
	}
	if n := int(maxVar + 1); n <= cap(m.varLevel) {
		m.varLevel = m.varLevel[:n]
	} else {
		m.varLevel = make([]int32, n)
	}
	for i := range m.varLevel {
		m.varLevel[i] = -1
	}
	for l, v := range m.order {
		if m.varLevel[v] != -1 {
			panic(fmt.Sprintf("bdd: duplicate variable %v in order", v))
		}
		m.varLevel[v] = int32(l)
	}

	m.nodes = append(m.nodes[:0],
		node{level: terminalLevel},
		node{level: terminalLevel})

	// Keep the unique table at its grown size; only the slot contents
	// must go (stale Refs would alias unrelated new nodes).
	clear(m.unique.slots)
	m.unique.lookups, m.unique.probes, m.unique.rehashes = 0, 0, 0

	// The apply cache drops in O(1) via a generation bump; its array and
	// therefore its reach stay warm for the next request.
	m.cache.invalidate()
	m.cache.lookups, m.cache.hits, m.cache.evictions = 0, 0, 0

	m.cacheLimit = DefaultCacheLimit
	m.maxNodes = 0
	m.check = nil
}

// RetainedBytes estimates the heap bytes pinned by the manager's backing
// arrays while parked in a warm pool — the size-class and trimming
// signal for internal/runtime. Approximate by design (allocator rounding
// and struct headers are ignored).
func (m *Manager) RetainedBytes() uint64 {
	return uint64(cap(m.nodes))*12 +
		uint64(len(m.unique.slots))*4 +
		uint64(len(m.cache.entries))*20 +
		uint64(cap(m.order))*8 +
		uint64(cap(m.varLevel))*4
}
