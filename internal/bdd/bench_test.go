package bdd

import (
	"fmt"
	"math/rand"
	"testing"

	"allsatpre/internal/lit"
)

// BenchmarkITE measures raw node construction on random expression DAGs.
func BenchmarkITE(b *testing.B) {
	for _, n := range []int{12, 20} {
		b.Run(fmt.Sprintf("v%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i)))
				m := New(n)
				randomRef(m, rng, n, 8)
			}
		})
	}
}

// BenchmarkAndExists measures the relational product against the
// quantify-after-conjoin baseline on adder-style functions.
func BenchmarkAndExists(b *testing.B) {
	n := 16
	build := func(m *Manager) (f, g, cube Ref) {
		f, g = True, False
		for i := 0; i+1 < n; i += 2 {
			f = m.And(f, m.Or(m.Var(lit.Var(i)), m.Var(lit.Var(i+1))))
			g = m.Or(g, m.And(m.Var(lit.Var(i)), m.NVar(lit.Var(i+1))))
		}
		var qs []lit.Var
		for i := 0; i < n; i += 3 {
			qs = append(qs, lit.Var(i))
		}
		return f, g, m.CubeVars(qs)
	}
	b.Run("andexists", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := New(n)
			f, g, c := build(m)
			m.AndExists(f, g, c)
		}
	})
	b.Run("and-then-exists", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := New(n)
			f, g, c := build(m)
			m.Exists(m.And(f, g), c)
		}
	})
}

// BenchmarkSatCount measures model counting on a parity chain (maximally
// balanced BDD).
func BenchmarkSatCount(b *testing.B) {
	n := 24
	m := New(n)
	f := False
	for i := 0; i < n; i++ {
		f = m.Xor(f, m.Var(lit.Var(i)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SatCount(f)
	}
}
