package bdd

import (
	"allsatpre/internal/lit"
)

// Transfer rebuilds f from this manager inside dst (which may have a
// different variable order) and returns the corresponding ref. Every
// support variable of f must be in dst's order.
func (m *Manager) Transfer(dst *Manager, f Ref) Ref {
	memo := map[Ref]Ref{False: False, True: True}
	var rec func(Ref) Ref
	rec = func(r Ref) Ref {
		if out, ok := memo[r]; ok {
			return out
		}
		n := m.nodes[r]
		v := m.order[n.level]
		lo := rec(n.low)
		hi := rec(n.high)
		out := dst.ITE(dst.Var(v), hi, lo)
		memo[r] = out
		return out
	}
	return rec(f)
}

// TransferAll transfers several roots at once, sharing the memo table.
func (m *Manager) TransferAll(dst *Manager, fs []Ref) []Ref {
	memo := map[Ref]Ref{False: False, True: True}
	var rec func(Ref) Ref
	rec = func(r Ref) Ref {
		if out, ok := memo[r]; ok {
			return out
		}
		n := m.nodes[r]
		v := m.order[n.level]
		lo := rec(n.low)
		hi := rec(n.high)
		out := dst.ITE(dst.Var(v), hi, lo)
		memo[r] = out
		return out
	}
	out := make([]Ref, len(fs))
	for i, f := range fs {
		out[i] = rec(f)
	}
	return out
}

// sharedSize measures the total number of distinct nodes shared by the
// roots.
func (m *Manager) sharedSize(roots []Ref) int {
	seen := map[Ref]bool{}
	var walk func(Ref)
	walk = func(r Ref) {
		if seen[r] {
			return
		}
		seen[r] = true
		if r == True || r == False {
			return
		}
		n := m.nodes[r]
		walk(n.low)
		walk(n.high)
	}
	for _, r := range roots {
		walk(r)
	}
	return len(seen)
}

// Sift greedily reorders the manager's variables to shrink the shared size
// of the given roots: each variable in turn is tried at every position and
// left at the best one. It returns a fresh manager with the improved order
// and the transferred roots. This is a simple rebuild-based sifting — each
// trial is a full Transfer — adequate for the variable counts used in the
// benchmarks (≤ 64); it trades the classic adjacent-swap machinery for
// simplicity.
func (m *Manager) Sift(roots []Ref) (*Manager, []Ref) {
	order := append([]lit.Var(nil), m.order...)
	cur := m
	curRoots := append([]Ref(nil), roots...)
	bestSize := cur.sharedSize(curRoots)

	for vi := 0; vi < len(order); vi++ {
		v := order[vi]
		bestPos := posOf(order, v)
		improved := false
		for pos := 0; pos < len(order); pos++ {
			if pos == posOf(order, v) {
				continue
			}
			trialOrder := moveVar(order, v, pos)
			trial := NewOrdered(trialOrder)
			trialRoots := cur.TransferAll(trial, curRoots)
			if sz := trial.sharedSize(trialRoots); sz < bestSize {
				bestSize = sz
				bestPos = pos
				improved = true
			}
		}
		if improved {
			order = moveVar(order, v, bestPos)
			next := NewOrdered(order)
			curRoots = cur.TransferAll(next, curRoots)
			cur = next
		}
	}
	if cur == m {
		// No improvement: still return a detached copy for a uniform API.
		next := NewOrdered(order)
		curRoots = cur.TransferAll(next, curRoots)
		cur = next
	}
	return cur, curRoots
}

func posOf(order []lit.Var, v lit.Var) int {
	for i, x := range order {
		if x == v {
			return i
		}
	}
	return -1
}

// moveVar returns a copy of order with v moved to position pos.
func moveVar(order []lit.Var, v lit.Var, pos int) []lit.Var {
	out := make([]lit.Var, 0, len(order))
	for _, x := range order {
		if x != v {
			out = append(out, x)
		}
	}
	out = append(out, 0)
	copy(out[pos+1:], out[pos:])
	out[pos] = v
	return out
}
