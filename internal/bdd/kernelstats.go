package bdd

// KernelStats is a point-in-time snapshot of the manager's two hot
// structures — the open-addressed unique table and the direct-mapped
// apply cache — for the stats registry and the experiment harness.
type KernelStats struct {
	// Nodes is the total node count including the two terminals.
	Nodes int
	// UniqueCap is the unique table's slot count; Nodes-2 live entries
	// over UniqueCap slots is the load factor.
	UniqueCap int
	// UniqueLookups / UniqueProbes: find calls and total slots inspected
	// across them; their ratio is the average probe length.
	UniqueLookups, UniqueProbes uint64
	// Rehashes counts unique-table doublings.
	Rehashes uint64
	// CacheCap / CacheSize: apply-cache slots and current occupancy.
	CacheCap, CacheSize int
	// CacheLookups / CacheHits / CacheEvictions: apply-cache activity;
	// an eviction is a live entry overwritten by a colliding key.
	CacheLookups, CacheHits, CacheEvictions uint64
}

// Kernel snapshots the manager's kernel gauges.
func (m *Manager) Kernel() KernelStats {
	return KernelStats{
		Nodes:          len(m.nodes),
		UniqueCap:      len(m.unique.slots),
		UniqueLookups:  m.unique.lookups,
		UniqueProbes:   m.unique.probes,
		Rehashes:       m.unique.rehashes,
		CacheCap:       len(m.cache.entries),
		CacheSize:      m.cache.size,
		CacheLookups:   m.cache.lookups,
		CacheHits:      m.cache.hits,
		CacheEvictions: m.cache.evictions,
	}
}

// LoadFactor is the unique table's live-entry fraction.
func (k KernelStats) LoadFactor() float64 {
	if k.UniqueCap == 0 {
		return 0
	}
	live := k.Nodes - 2
	if live < 0 {
		live = 0
	}
	return float64(live) / float64(k.UniqueCap)
}

// AvgProbes is the mean probe-chain length per unique-table lookup.
func (k KernelStats) AvgProbes() float64 {
	if k.UniqueLookups == 0 {
		return 0
	}
	return float64(k.UniqueProbes) / float64(k.UniqueLookups)
}

// CacheHitRate is the apply-cache hit fraction.
func (k KernelStats) CacheHitRate() float64 {
	if k.CacheLookups == 0 {
		return 0
	}
	return float64(k.CacheHits) / float64(k.CacheLookups)
}

// Merge folds another snapshot into k: counters add, sizes keep the
// maximum — the shape wanted when combining per-slice or per-step
// managers into one run total.
func (k *KernelStats) Merge(o KernelStats) {
	if o.Nodes > k.Nodes {
		k.Nodes = o.Nodes
	}
	if o.UniqueCap > k.UniqueCap {
		k.UniqueCap = o.UniqueCap
	}
	if o.CacheCap > k.CacheCap {
		k.CacheCap = o.CacheCap
	}
	if o.CacheSize > k.CacheSize {
		k.CacheSize = o.CacheSize
	}
	k.UniqueLookups += o.UniqueLookups
	k.UniqueProbes += o.UniqueProbes
	k.Rehashes += o.Rehashes
	k.CacheLookups += o.CacheLookups
	k.CacheHits += o.CacheHits
	k.CacheEvictions += o.CacheEvictions
}
