package bdd

import (
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
)

// ISOP computes an irredundant sum-of-products cover of f over the space
// s using the Minato–Morreale interval recursion. The result denotes
// exactly f but typically needs far fewer cubes than ToCover's raw
// 1-path enumeration, because each recursion step is free to enlarge
// cubes anywhere inside the [onset, onset] interval left after removing
// what earlier cubes already cover.
//
// Every support variable of f must be in s.
func (m *Manager) ISOP(f Ref, s *cube.Space) *cube.Cover {
	cv := cube.NewCover(s)
	cur := s.FullCube()
	m.isopRec(f, f, s, cur, cv)
	return cv
}

// isopRec emits cubes covering at least L and at most U under the
// partial cube cur, returning the function the emitted cubes denote
// (restricted to the subspace below cur).
func (m *Manager) isopRec(L, U Ref, s *cube.Space, cur cube.Cube, cv *cube.Cover) Ref {
	if L == False {
		return False
	}
	if U == True {
		cv.Add(cur.Clone())
		return True
	}
	// Top level among L and U.
	level := m.level(L)
	if l := m.level(U); l < level {
		level = l
	}
	v := m.order[level]
	pos := s.PosOf(v)
	if pos < 0 {
		panic("bdd: ISOP support variable not in space")
	}
	L0, L1 := m.cofactors(L, level)
	U0, U1 := m.cofactors(U, level)

	// Minterms that can only be covered with ¬v (resp. v).
	Lp0 := m.And(L0, m.Not(U1))
	Lp1 := m.And(L1, m.Not(U0))

	cur[pos] = lit.False
	f0 := m.isopRec(Lp0, U0, s, cur, cv)
	cur[pos] = lit.True
	f1 := m.isopRec(Lp1, U1, s, cur, cv)
	cur[pos] = lit.Unknown

	// Remainder, coverable without mentioning v.
	Ld := m.Or(m.And(L0, m.Not(f0)), m.And(L1, m.Not(f1)))
	fd := m.isopRec(Ld, m.And(U0, U1), s, cur, cv)

	return m.ITE(m.Var(v), m.Or(f1, fd), m.Or(f0, fd))
}
