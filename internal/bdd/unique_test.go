package bdd

import (
	"math/rand"
	"testing"

	"allsatpre/internal/budget"
	"allsatpre/internal/lit"
)

// buildRandom grows a pool of BDDs over n vars by repeatedly combining
// random pool members with random connectives, driving the unique table
// through many inserts (and, with a tiny initial table, many rehashes).
// The construction is deterministic in rng, so two managers fed the same
// rng build the same functions in the same order.
func buildRandom(m *Manager, rng *rand.Rand, n, steps int) []Ref {
	pool := make([]Ref, 0, n+steps)
	for v := 0; v < n; v++ {
		pool = append(pool, m.Var(lit.Var(v)))
	}
	for i := 0; i < steps; i++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		var r Ref
		switch rng.Intn(4) {
		case 0:
			r = m.And(a, b)
		case 1:
			r = m.Or(a, b)
		case 2:
			r = m.Xor(a, b)
		default:
			r = m.ITE(a, b, m.Not(b))
		}
		pool = append(pool, r)
	}
	return pool
}

// mapUnique is the reference unique table the open-addressed one replaced:
// it re-interns every node of a manager into a Go map and reports the
// number of distinct (level, low, high) triples.
func mapUnique(m *Manager) int {
	seen := map[node]Ref{}
	for id := 2; id < len(m.nodes); id++ {
		n := m.nodes[id]
		if _, ok := seen[n]; ok {
			return -id // duplicate triple: canonicity broken
		}
		seen[n] = Ref(id)
	}
	return len(seen)
}

func TestUniqueTableCanonicalAcrossRehashes(t *testing.T) {
	const nVars, steps = 14, 400
	rng := rand.New(rand.NewSource(7))

	// tiny: 4-slot initial table, so nearly every growth step rehashes.
	tiny := newOrdered(identityOrder(nVars), 2)
	roomy := NewOrdered(identityOrder(nVars))

	rngCopy := rand.New(rand.NewSource(7))
	poolTiny := buildRandom(tiny, rng, nVars, steps)
	poolRoomy := buildRandom(roomy, rngCopy, nVars, steps)

	if tiny.Kernel().Rehashes == 0 {
		t.Fatal("tiny table never rehashed; test exercises nothing")
	}

	// Same construction order on both managers must yield identical refs:
	// node numbering only depends on creation order, which canonicity fixes.
	if len(poolTiny) != len(poolRoomy) {
		t.Fatalf("pool sizes differ: %d vs %d", len(poolTiny), len(poolRoomy))
	}
	for i := range poolTiny {
		if poolTiny[i] != poolRoomy[i] {
			t.Fatalf("pool[%d]: tiny-table ref %d != roomy-table ref %d",
				i, poolTiny[i], poolRoomy[i])
		}
	}

	// No duplicate (level, low, high) triple may survive a rehash, and the
	// open-addressed table must agree with a map-based re-interning.
	if got := mapUnique(tiny); got != len(tiny.nodes)-2 {
		t.Fatalf("map reference count %d != node count %d", got, len(tiny.nodes)-2)
	}

	// mk of an existing triple returns the same ref, post-rehash.
	for _, f := range poolTiny[:50] {
		if f == True || f == False {
			continue
		}
		n := tiny.nodes[f]
		if again := tiny.mk(n.level, n.low, n.high); again != f {
			t.Fatalf("mk(%d,%d,%d) = %d, want canonical %d", n.level, n.low, n.high, again, f)
		}
	}
}

func TestNodeCapAbortsMidRehashWindow(t *testing.T) {
	// A 4-slot initial table rehashes constantly; the node cap must still
	// fire through CatchAbort exactly as with the default table, and the
	// manager must stay within the cap afterward.
	m := newOrdered(identityOrder(20), 2)
	m.SetLimits(64, nil)
	var reason budget.Reason
	func() {
		defer CatchAbort(&reason)
		buildRandom(m, rand.New(rand.NewSource(3)), 20, 2000)
	}()
	if reason != budget.Nodes {
		t.Fatalf("reason = %v, want %v", reason, budget.Nodes)
	}
	if got := m.NumNodes(); got > 64 {
		t.Fatalf("node count %d exceeds cap 64", got)
	}
	// The table must still be coherent: re-interning finds no duplicates.
	if got := mapUnique(m); got != m.NumNodes()-2 {
		t.Fatalf("post-abort map reference count %d != node count %d", got, m.NumNodes()-2)
	}
}

func identityOrder(n int) []lit.Var {
	order := make([]lit.Var, n)
	for i := range order {
		order[i] = lit.Var(i)
	}
	return order
}
