package bdd

import (
	"math/big"
	"math/rand"
	"testing"

	"allsatpre/internal/lit"
)

func TestISOPDenotesExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(6)
		m := New(n)
		s := spaceOver(n)
		f := randomRef(m, rng, n, 4)
		cv := m.ISOP(f, s)
		if back := m.FromCover(cv); back != f {
			t.Fatalf("iter %d: ISOP cover does not denote f", iter)
		}
	}
}

func TestISOPNeverWorseThanPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	worse := 0
	for iter := 0; iter < 120; iter++ {
		n := 3 + rng.Intn(5)
		m := New(n)
		s := spaceOver(n)
		f := randomRef(m, rng, n, 5)
		isop := m.ISOP(f, s).Len()
		paths := m.ToCover(f, s).Len()
		if isop > paths {
			worse++
		}
	}
	// ISOP is not theoretically guaranteed smaller on every instance, but
	// it should essentially never lose to raw path enumeration.
	if worse > 2 {
		t.Fatalf("ISOP worse than path cover on %d/120 instances", worse)
	}
}

func TestISOPIrredundant(t *testing.T) {
	// Dropping any single cube must lose minterms.
	rng := rand.New(rand.NewSource(161))
	for iter := 0; iter < 60; iter++ {
		n := 3 + rng.Intn(4)
		m := New(n)
		s := spaceOver(n)
		f := randomRef(m, rng, n, 4)
		if f == False {
			continue
		}
		cv := m.ISOP(f, s)
		cubes := cv.Cubes()
		for drop := range cubes {
			r := False
			for i, cb := range cubes {
				if i == drop {
					continue
				}
				r = m.Or(r, m.FromCube(s, cb))
			}
			if r == f {
				t.Fatalf("iter %d: cube %d is redundant", iter, drop)
			}
		}
	}
}

func TestISOPClassicWin(t *testing.T) {
	// f = x0 ∨ x1 ∨ x2 ∨ x3: path enumeration yields a staircase of
	// cubes; ISOP yields exactly the 4 single-literal primes.
	m := New(4)
	s := spaceOver(4)
	f := m.OrN(m.Var(0), m.Var(1), m.Var(2), m.Var(3))
	cv := m.ISOP(f, s)
	if cv.Len() != 4 {
		t.Fatalf("ISOP of a 4-way OR should have 4 cubes, got %d:\n%s", cv.Len(), cv)
	}
	for _, cb := range cv.Cubes() {
		if cb.FixedVars() != 1 {
			t.Fatalf("expected single-literal primes, got %s", cb)
		}
	}
	if got := cv.CountMinterms(); got != 15 {
		t.Fatalf("cover minterms %d, want 15", got)
	}
}

func TestISOPTerminals(t *testing.T) {
	m := New(2)
	s := spaceOver(2)
	if m.ISOP(False, s).Len() != 0 {
		t.Fatal("ISOP(0) should be empty")
	}
	cv := m.ISOP(True, s)
	if cv.Len() != 1 || cv.Cubes()[0].FreeVars() != 2 {
		t.Fatal("ISOP(1) should be the universal cube")
	}
	// Count cross-check on a literal.
	cnt := m.ISOP(m.Var(1), s).CountMinterms()
	if big.NewInt(int64(cnt)).Cmp(m.SatCount(m.Var(1))) != 0 {
		t.Fatal("literal count mismatch")
	}
	_ = lit.Var(0)
}
