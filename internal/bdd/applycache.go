package bdd

// Direct-mapped apply cache. The previous map[opKey]Ref memo grew without
// bound between clears and was reallocated wholesale whenever it crossed
// the cache limit — a multi-megabyte make(map) on the hot path. This
// cache is a fixed power-of-two array of 20-byte entries: each (op, a, b,
// c) key hashes to exactly one slot, a colliding insert overwrites
// (lossy, à la CUDD), and wholesale invalidation is an O(1) generation
// bump instead of a reallocation.
//
// Lossiness cannot affect correctness: the cache only memoizes results
// that every apply recursion can recompute from scratch; an evicted entry
// costs recomputation time, never a wrong answer (see DESIGN.md §kernel).

const (
	// cacheGenBits is the width of the generation tag packed next to the
	// op code in cacheEntry.opgen. Generation 0 is reserved so that a
	// zeroed entry can never match a live key.
	cacheGenBits = 24
	cacheGenMask = 1<<cacheGenBits - 1

	// minCacheSlots/maxCacheSlots bound the cache array. The cache starts
	// at the minimum and doubles alongside unique-table rehashes (so tiny
	// managers — one per SatCount call site — stay allocation-lean) up to
	// the limit set by SetCacheLimit, or this hard ceiling when unbounded.
	minCacheSlots = 1 << 8
	maxCacheSlots = 1 << 22
)

// cacheEntry is one direct-mapped slot: the operand triple, the result,
// and the packed op/generation word. 20 bytes, no padding.
type cacheEntry struct {
	a, b, c Ref
	res     Ref
	opgen   uint32 // op<<cacheGenBits | generation
}

type applyCache struct {
	entries []cacheEntry
	mask    uint64
	gen     uint32 // current generation, in [1, cacheGenMask]

	// Instrumentation: size is the occupancy of the current generation;
	// evictions counts live entries overwritten by a different key.
	size      int
	lookups   uint64
	hits      uint64
	evictions uint64
}

// init sizes the cache at n slots (a power of two), dropping any prior
// contents and counters' occupancy.
func (c *applyCache) init(n int) {
	c.entries = make([]cacheEntry, n)
	c.mask = uint64(n - 1)
	c.gen = 1
	c.size = 0
}

func cacheHash(op uint8, a, b, cc Ref) uint64 {
	x := uint64(uint32(a)) | uint64(uint32(b))<<32
	x ^= uint64(uint32(cc))*0xc2b2ae3d27d4eb4f ^ uint64(op)*0x165667b19e3779f9
	return mix64(x)
}

// get probes the single slot the key maps to.
func (c *applyCache) get(op uint8, a, b, cc Ref) (Ref, bool) {
	c.lookups++
	e := &c.entries[cacheHash(op, a, b, cc)&c.mask]
	if e.opgen == uint32(op)<<cacheGenBits|c.gen && e.a == a && e.b == b && e.c == cc {
		c.hits++
		return e.res, true
	}
	return 0, false
}

// put writes the slot unconditionally, overwriting whatever lived there.
func (c *applyCache) put(op uint8, a, b, cc Ref, r Ref) {
	e := &c.entries[cacheHash(op, a, b, cc)&c.mask]
	if e.opgen&cacheGenMask == c.gen {
		if e.a != a || e.b != b || e.c != cc || e.opgen>>cacheGenBits != uint32(op) {
			c.evictions++
		}
	} else {
		c.size++
	}
	e.a, e.b, e.c, e.res = a, b, cc, r
	e.opgen = uint32(op)<<cacheGenBits | c.gen
}

// invalidate drops every entry in O(1) by bumping the generation tag.
// On the (rare) 24-bit wrap the array is zeroed so stale tags from the
// previous cycle can never alias a live one.
func (c *applyCache) invalidate() {
	c.gen++
	if c.gen&cacheGenMask == 0 {
		clear(c.entries)
		c.gen = 1
	}
	c.size = 0
}

// resize reallocates the cache at n slots, dropping contents (the cache
// is lossy; dropped entries only cost recomputation).
func (c *applyCache) resize(n int) {
	c.entries = make([]cacheEntry, n)
	c.mask = uint64(n - 1)
	c.gen = 1
	c.size = 0
}

// cacheSlotsFor converts an entry cap (SetCacheLimit semantics: n <= 0 is
// unbounded) into a power-of-two slot count within the hard bounds, never
// exceeding the cap so that occupancy stays within the caller's limit.
func cacheSlotsFor(limit int) int {
	if limit <= 0 {
		return maxCacheSlots
	}
	n := 1
	for n*2 <= limit && n*2 <= maxCacheSlots {
		n *= 2
	}
	return n
}
