package bdd

import (
	"math/rand"
	"testing"

	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
)

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(8)
		order := make([]lit.Var, n)
		for i := range order {
			order[i] = lit.Var(i)
		}
		src := NewOrdered(order)
		f := randomRef(src, rng, n, 4)
		snap := src.Export(f)

		// Same-order import into a fresh manager: equal set, equal count.
		dst := NewOrdered(order)
		g := dst.Import(snap)
		if src.SatCount(f).Cmp(dst.SatCount(g)) != 0 {
			t.Fatalf("iter %d: count mismatch after import", iter)
		}
		// Canonical form: exporting the import yields the same snapshot.
		snap2 := dst.Export(g)
		if len(snap2.vars) != len(snap.vars) || snap2.root != snap.root {
			t.Fatalf("iter %d: round-trip snapshot differs (%d/%d nodes)",
				iter, len(snap.vars), len(snap2.vars))
		}
		for i := range snap.vars {
			if snap.vars[i] != snap2.vars[i] || snap.lo[i] != snap2.lo[i] || snap.hi[i] != snap2.hi[i] {
				t.Fatalf("iter %d: node %d differs", iter, i)
			}
		}
		// Import into the originating manager must return the original ref.
		if back := src.Import(snap); back != f {
			t.Fatalf("iter %d: self-import %v, want %v", iter, back, f)
		}
	}
}

func TestSnapshotTerminals(t *testing.T) {
	m := New(3)
	for _, f := range []Ref{False, True} {
		s := m.Export(f)
		if s.NumNodes() != 0 {
			t.Fatalf("terminal snapshot has %d nodes", s.NumNodes())
		}
		if got := m.Import(s); got != f {
			t.Fatalf("terminal import %v, want %v", got, f)
		}
	}
}

func TestSnapshotReversedOrder(t *testing.T) {
	// Importing into a manager with the opposite variable order must fall
	// back to ITE and still denote the same set.
	n := 5
	fwd := make([]lit.Var, n)
	rev := make([]lit.Var, n)
	for i := 0; i < n; i++ {
		fwd[i] = lit.Var(i)
		rev[i] = lit.Var(n - 1 - i)
	}
	src := NewOrdered(fwd)
	rng := rand.New(rand.NewSource(7))
	sp := cube.NewSpace(fwd)
	for iter := 0; iter < 50; iter++ {
		f := randomRef(src, rng, n, 4)
		dst := NewOrdered(rev)
		g := dst.Import(src.Export(f))
		if src.SatCount(f).Cmp(dst.SatCountIn(g, fwd)) != 0 {
			t.Fatalf("iter %d: count mismatch across orders", iter)
		}
		// Spot-check pointwise equivalence via the cover.
		cv := src.ISOP(f, sp)
		cv2 := dst.ISOP(g, sp)
		if !cv.Equal(cv2) {
			t.Fatalf("iter %d: covers differ across orders", iter)
		}
	}
}
