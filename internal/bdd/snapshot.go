package bdd

import "allsatpre/internal/lit"

// Snapshot is an immutable, manager-independent serialization of a single
// BDD. The parallel enumeration pool uses it to move solution sets between
// managers: a worker exports its per-subcube set and hands the snapshot to
// the merger thread. Handing over a live (Manager, Ref) pair instead would
// race — managers are single-threaded, and the worker keeps appending
// nodes (growing the backing arrays) while the merger reads.
//
// Nodes are stored children-before-parents with the root last. A node
// reference is encoded as 0 = False, 1 = True, k+2 = snapshot node k.
// Each node carries its variable id rather than its level, so a snapshot
// can be imported into any manager whose order contains those variables.
type Snapshot struct {
	vars   []lit.Var
	lo, hi []int32
	root   int32
}

// NumNodes reports the number of internal nodes the snapshot carries
// (zero for a terminal).
func (s *Snapshot) NumNodes() int { return len(s.vars) }

// Export serializes f into a self-contained Snapshot.
func (m *Manager) Export(f Ref) *Snapshot {
	s := &Snapshot{}
	idx := map[Ref]int32{False: 0, True: 1}
	var rec func(Ref) int32
	rec = func(r Ref) int32 {
		if out, ok := idx[r]; ok {
			return out
		}
		n := m.nodes[r]
		lo := rec(n.low)
		hi := rec(n.high)
		out := int32(len(s.vars)) + 2
		s.vars = append(s.vars, m.order[n.level])
		s.lo = append(s.lo, lo)
		s.hi = append(s.hi, hi)
		idx[r] = out
		return out
	}
	s.root = rec(f)
	return s
}

// Rename returns a snapshot whose variable ids are passed through sub
// (ids without an entry are kept). The node structure is shared with the
// receiver; only the variable table is rewritten. This lets a set be
// moved between managers with different variable spaces — e.g. a state
// set over CNF variable ids imported into a canonical-state-space
// manager. An order-preserving renaming keeps Import on the fast mk
// path; any other renaming still imports correctly via the ITE fallback.
func (s *Snapshot) Rename(sub map[lit.Var]lit.Var) *Snapshot {
	vars := make([]lit.Var, len(s.vars))
	for i, v := range s.vars {
		if w, ok := sub[v]; ok {
			v = w
		}
		vars[i] = v
	}
	return &Snapshot{vars: vars, lo: s.lo, hi: s.hi, root: s.root}
}

// Import rebuilds the snapshot inside m and returns the corresponding
// ref. Every snapshot variable must be in m's order. When the snapshot's
// relative variable order matches m's — the pool case, where every
// manager is built over the same projection order — each node maps to a
// single mk call; otherwise the node is rebuilt with ITE, which reorders
// correctly at the usual apply cost.
func (m *Manager) Import(s *Snapshot) Ref {
	refs := make([]Ref, len(s.vars))
	decode := func(x int32) Ref {
		if x < 2 {
			return Ref(x)
		}
		return refs[x-2]
	}
	for i, v := range s.vars {
		lv := m.Level(v)
		lo, hi := decode(s.lo[i]), decode(s.hi[i])
		if m.level(lo) > lv && m.level(hi) > lv {
			refs[i] = m.mk(lv, lo, hi)
		} else {
			refs[i] = m.ITE(m.Var(v), hi, lo)
		}
	}
	return decode(s.root)
}
