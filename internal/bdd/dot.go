package bdd

import (
	"fmt"
	"io"
	"sort"
)

// WriteDot emits a Graphviz DOT rendering of the BDD rooted at f, with
// solid edges for the high branch and dashed edges for the low branch.
// Variable names come from the name function (nil → "vN").
func (m *Manager) WriteDot(w io.Writer, f Ref, name func(int) string) error {
	if name == nil {
		name = func(v int) string { return fmt.Sprintf("v%d", v) }
	}
	seen := map[Ref]bool{}
	var order []Ref
	var walk func(Ref)
	walk = func(r Ref) {
		if seen[r] {
			return
		}
		seen[r] = true
		order = append(order, r)
		if r == True || r == False {
			return
		}
		n := m.nodes[r]
		walk(n.low)
		walk(n.high)
	}
	walk(f)
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	if _, err := fmt.Fprintln(w, "digraph bdd {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB;")
	for _, r := range order {
		switch r {
		case False:
			fmt.Fprintln(w, `  n0 [shape=box,label="0"];`)
		case True:
			fmt.Fprintln(w, `  n1 [shape=box,label="1"];`)
		default:
			n := m.nodes[r]
			fmt.Fprintf(w, "  n%d [shape=circle,label=%q];\n", r, name(int(m.order[n.level])))
			fmt.Fprintf(w, "  n%d -> n%d [style=dashed];\n", r, n.low)
			fmt.Fprintf(w, "  n%d -> n%d;\n", r, n.high)
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
