package core

import (
	"allsatpre/internal/allsat"
	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/lit"
)

// SubStatus classifies the outcome of one EnumerateUnder call. The
// distinction between SubUnsatAssumps and SubGlobalUnsat is the
// assumption-aware final-conflict path: a conflict while asserting
// assumptions means only that this subcube is empty, while a root-level
// conflict (no assumptions involved) means the whole formula is UNSAT.
type SubStatus uint8

const (
	// SubSAT: the enumeration under the assumptions completed; Set holds
	// the solutions (possibly the empty set — consistent assumptions with
	// no models are still SubSAT, not UNSAT of anything).
	SubSAT SubStatus = iota
	// SubUnsatAssumps: the assumptions conflict with the formula. Failed
	// holds a subset of the assumptions sufficient for the conflict; any
	// other subcube containing that subset is empty too.
	SubUnsatAssumps
	// SubGlobalUnsat: the formula is UNSAT at the root, independent of any
	// assumptions.
	SubGlobalUnsat
	// SubSplit: the per-call decision cap tripped before the subcube was
	// exhausted. No solutions are reported; the caller should split the
	// subcube and retry the halves (pre-cap memo entries are retained, so
	// the halves re-derive only the frontier).
	SubSplit
)

func (s SubStatus) String() string {
	switch s {
	case SubSAT:
		return "sat"
	case SubUnsatAssumps:
		return "unsat-assumptions"
	case SubGlobalUnsat:
		return "unsat-global"
	case SubSplit:
		return "split"
	}
	return "unknown"
}

// SubResult is the outcome of enumerating one assumption subcube.
type SubResult struct {
	// Set is the solution BDD over the projection variables, including the
	// assumption literals themselves (so disjoint subcubes yield disjoint
	// sets whose union is the full solution set). Valid for SubSAT; False
	// otherwise.
	Set bdd.Ref
	// Status classifies the outcome.
	Status SubStatus
	// Failed, for SubUnsatAssumps, is a subset of the assumptions whose
	// conjunction is already inconsistent with the formula. It may be
	// empty when the inconsistency involves no assumption at all (a
	// learned clause falsified at the root), in which case every subcube
	// is empty.
	Failed []lit.Lit
	// Stats holds the search counters spent by this call only.
	Stats allsat.Stats
	// Aborted is true when a resource budget tripped mid-call; Set is then
	// a sound under-approximation of the subcube's solutions.
	Aborted bool
	Reason  budget.Reason
}

// prepareRoot installs the unit clauses and runs root-level propagation
// once per enumerator, reporting false when the formula is UNSAT at the
// root. Both Enumerate and EnumerateUnder funnel through it, so an
// enumerator can serve any number of assumption subcubes after a single
// root setup.
func (e *Enumerator) prepareRoot() bool {
	if e.prepared {
		return !e.rootUnsat
	}
	e.prepared = true
	for _, cl := range e.orig {
		switch len(cl.lits) {
		case 0:
			e.rootUnsat = true
			return false
		case 1:
			switch e.litValue(cl.lits[0]) {
			case lit.False:
				e.rootUnsat = true
				return false
			case lit.Unknown:
				e.enqueue(cl.lits[0], nil)
			}
		}
	}
	if e.bcp() != nil {
		e.rootUnsat = true
		return false
	}
	return true
}

// EnumerateUnder enumerates the solutions inside the subcube described by
// assumps (projection literals, typically a guiding-path prefix). Each
// assumption is asserted at its own decision level — not at the root — so
// learned clauses remain implied by the formula alone and stay sound when
// the same enumerator is reused for the next subcube; the memo table is
// likewise shared across calls, because the residual signature is
// oblivious to how the current partial assignment was reached.
//
// callMaxDecisions, when non-zero, is a soft per-call cap: exceeding it
// abandons the call with SubSplit so the caller can split the subcube
// into halves, bounding the work granularity for dynamic load balancing.
//
// On return the trail is restored to the root, whatever the outcome.
func (e *Enumerator) EnumerateUnder(assumps []lit.Lit, callMaxDecisions uint64) SubResult {
	if e.check == nil && !e.opts.Budget.IsZero() {
		e.check = e.opts.Budget.Start()
	}
	before := e.stats
	out := SubResult{Set: bdd.False}
	base := len(e.trailLim)
	finish := func() SubResult {
		for len(e.trailLim) > base {
			e.popLevel()
		}
		out.Stats = statsDelta(e.stats, before)
		out.Aborted = e.aborted
		out.Reason = e.abortReason
		return out
	}
	// Poll once per call: a subcube can resolve through assumptions and
	// BCP alone, without a single decision, so without this a pooled run
	// over easy subcubes would never observe a deadline or cancellation.
	if e.check != nil && !e.aborted {
		if r := e.check.Poll(); r != budget.None {
			e.abort(r)
		}
	}
	if e.aborted {
		return finish()
	}
	if !e.prepareRoot() {
		out.Status = SubGlobalUnsat
		return finish()
	}
	for _, a := range assumps {
		switch e.litValue(a) {
		case lit.True:
			continue // already implied
		case lit.False:
			out.Status = SubUnsatAssumps
			out.Failed = e.analyzeFinalLit(a)
			return finish()
		}
		e.pushLevel()
		e.enqueue(a, nil)
		if confl := e.bcp(); confl != nil {
			e.stats.Conflicts++
			out.Status = SubUnsatAssumps
			out.Failed = e.analyzeFinal(confl)
			return finish()
		}
	}
	e.callBaseDec = e.stats.Decisions
	e.callMaxDec = callMaxDecisions
	set := e.enumerate()
	e.callMaxDec = 0
	if e.splitReq && !e.aborted {
		e.splitReq = false
		out.Status = SubSplit
		return finish()
	}
	e.splitReq = false
	if set != bdd.False {
		// Fold in every projection literal on the trail: root units, the
		// assumptions themselves, and everything they implied. Root
		// literals are folded into every subcube's set; the merge is an Or,
		// and (A∧r)∨(B∧r) = (A∨B)∧r, so the union matches the sequential
		// result exactly.
		for _, l := range e.trail {
			if e.isProj[l.Var()] {
				set = e.man.And(set, e.man.Lit(l))
			}
		}
	}
	out.Set = set
	out.Status = SubSAT
	return finish()
}

// Manager exposes the enumerator's BDD manager so callers of
// EnumerateUnder can export per-subcube sets.
func (e *Enumerator) Manager() *bdd.Manager { return e.man }

// Stats returns a copy of the accumulated search counters.
func (e *Enumerator) Stats() allsat.Stats { return e.stats }

// analyzeFinal resolves a conflict met while asserting assumptions back
// to the subset of assumption decisions that caused it (the analogue of
// MiniSat's analyzeFinal). Every decision level above the root is an
// assumption here — enumeration has not started — so any decision reached
// by the backward walk is an assumption literal.
func (e *Enumerator) analyzeFinal(confl *clause) []lit.Lit {
	e.cleanupBuf = e.cleanupBuf[:0]
	for _, q := range confl.lits {
		e.markFinal(q)
	}
	return e.collectFailed()
}

// analyzeFinalLit handles the case where assumption a is already false
// when asserted. If it was falsified at the root, the formula alone
// excludes a and the failed set is {a}; otherwise a's reason chain is
// resolved back to the earlier assumptions that implied ¬a.
func (e *Enumerator) analyzeFinalLit(a lit.Lit) []lit.Lit {
	v := a.Var()
	if e.dlevel[v] == 0 {
		return []lit.Lit{a}
	}
	e.cleanupBuf = e.cleanupBuf[:0]
	e.seen[v] = 1
	e.cleanupBuf = append(e.cleanupBuf, v)
	return append(e.collectFailed(), a)
}

// markFinal marks a conflict-side literal for the final-conflict walk.
// Root-level literals are facts of the formula, not of the assumptions,
// and are dropped.
func (e *Enumerator) markFinal(l lit.Lit) {
	v := l.Var()
	if e.seen[v] != 0 || e.assign[v] == lit.Unknown || e.dlevel[v] == 0 {
		return
	}
	e.seen[v] = 1
	e.cleanupBuf = append(e.cleanupBuf, v)
}

// collectFailed walks the trail top-down, expanding marked implied
// literals through their reasons and collecting marked decisions — the
// failed assumptions.
func (e *Enumerator) collectFailed() []lit.Lit {
	var failed []lit.Lit
	for i := len(e.trail) - 1; i >= 0; i-- {
		l := e.trail[i]
		v := l.Var()
		if e.seen[v] == 0 {
			continue
		}
		if rc := e.reason[v]; rc != nil {
			// rc.lits[0] is v's own literal while v is assigned (the watch
			// invariant learnFrom relies on too); expand the rest.
			for _, q := range rc.lits[1:] {
				e.markFinal(q)
			}
		} else {
			failed = append(failed, l)
		}
	}
	for _, v := range e.cleanupBuf {
		e.seen[v] = 0
	}
	return failed
}

// statsDelta subtracts the monotone search counters, yielding the cost of
// one call. BDDNodes and Kernel are per-manager gauges, not counters, and
// are reported separately by the pool at worker teardown.
func statsDelta(after, before allsat.Stats) allsat.Stats {
	return allsat.Stats{
		Solutions:    after.Solutions - before.Solutions,
		Cubes:        after.Cubes - before.Cubes,
		LiftedFree:   after.LiftedFree - before.LiftedFree,
		Decisions:    after.Decisions - before.Decisions,
		Propagations: after.Propagations - before.Propagations,
		Conflicts:    after.Conflicts - before.Conflicts,
		CacheLookups: after.CacheLookups - before.CacheLookups,
		CacheHits:    after.CacheHits - before.CacheHits,
		CacheClears:  after.CacheClears - before.CacheClears,

		BlockingClauses: after.BlockingClauses - before.BlockingClauses,
		BlockingLits:    after.BlockingLits - before.BlockingLits,
	}
}
