package core

import (
	"math/big"
	"math/rand"
	"testing"

	"allsatpre/internal/allsat"
	"allsatpre/internal/cnf"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
)

func projSpace(vars ...int) *cube.Space {
	vs := make([]lit.Var, len(vars))
	for i, v := range vars {
		vs[i] = lit.Var(v)
	}
	return cube.NewSpace(vs)
}

func randomFormula(rng *rand.Rand, nVars, nClauses, k int) *cnf.Formula {
	f := cnf.New(nVars)
	for i := 0; i < nClauses; i++ {
		c := make(cnf.Clause, 0, k)
		for len(c) < k {
			v := lit.Var(rng.Intn(nVars))
			dup := false
			for _, x := range c {
				if x.Var() == v {
					dup = true
					break
				}
			}
			if !dup {
				c = append(c, lit.New(v, rng.Intn(2) == 0))
			}
		}
		f.AddClause(c)
	}
	return f
}

func checkAgainstBruteForce(t *testing.T, iter int, f *cnf.Formula, space *cube.Space, opts Options) {
	t.Helper()
	want := f.ProjectedModels(space.Vars())
	r := EnumerateToResult(f, space, opts)
	n := space.Size()
	m := make([]bool, n)
	got := 0
	for x := 0; x < 1<<uint(n); x++ {
		for i := 0; i < n; i++ {
			m[i] = x&(1<<uint(i)) != 0
		}
		inCover := r.Cover.Contains(m)
		buf := make([]byte, n)
		for i := range m {
			if m[i] {
				buf[i] = '1'
			} else {
				buf[i] = '0'
			}
		}
		if inCover != want[string(buf)] {
			t.Fatalf("iter %d (opts %+v): projection %s: got %v, want %v\n%s",
				iter, opts, buf, inCover, want[string(buf)], cnf.DimacsString(f, space.Vars()))
		}
		if inCover {
			got++
		}
	}
	if r.Count.Cmp(big.NewInt(int64(len(want)))) != 0 {
		t.Fatalf("iter %d: count %v, want %d", iter, r.Count, len(want))
	}
	_ = got
}

func TestAgainstBruteForceAllOptionCombos(t *testing.T) {
	optCombos := []Options{
		{EnableMemo: true, EnableLearning: true},
		{EnableMemo: true, EnableLearning: false},
		{EnableMemo: false, EnableLearning: true},
		{EnableMemo: false, EnableLearning: false},
	}
	rng := rand.New(rand.NewSource(1001))
	for iter := 0; iter < 150; iter++ {
		nVars := 3 + rng.Intn(8)
		f := randomFormula(rng, nVars, 1+rng.Intn(4*nVars), 3)
		nProj := 1 + rng.Intn(nVars)
		vars := rng.Perm(nVars)[:nProj]
		space := projSpace(vars...)
		for _, opts := range optCombos {
			checkAgainstBruteForce(t, iter, f, space, opts)
		}
	}
}

func TestAgainstBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(2002))
	for iter := 0; iter < 120; iter++ {
		nVars := 4 + rng.Intn(8)
		f := randomFormula(rng, nVars, 1+rng.Intn(4*nVars), 3)
		nProj := 1 + rng.Intn(nVars-1)
		vars := rng.Perm(nVars)[:nProj]
		space := projSpace(vars...)
		rc := EnumerateToResult(f, space, DefaultOptions())
		rb := allsat.EnumerateBlocking(f.Clone(), space, allsat.Options{})
		if rc.Count.Cmp(rb.Count) != 0 {
			t.Fatalf("iter %d: success-driven %v vs blocking %v", iter, rc.Count, rb.Count)
		}
		// Covers may differ in cube structure but must denote the same set.
		if !rc.Cover.Equal(rb.Cover) {
			t.Fatalf("iter %d: cover mismatch", iter)
		}
	}
}

func TestUnsatCases(t *testing.T) {
	// Direct contradiction.
	f := cnf.New(2)
	f.Add(lit.Pos(0))
	f.Add(lit.Neg(0))
	r := EnumerateToResult(f, projSpace(0, 1), DefaultOptions())
	if r.Count.Sign() != 0 {
		t.Fatal("contradiction should have empty projection")
	}
	// Empty clause.
	g := cnf.New(2)
	g.AddClause(cnf.Clause{})
	r = EnumerateToResult(g, projSpace(0, 1), DefaultOptions())
	if r.Count.Sign() != 0 {
		t.Fatal("empty clause should have empty projection")
	}
	// UNSAT discovered only through propagation.
	h := cnf.New(3)
	h.Add(lit.Pos(0))
	h.Add(lit.Neg(0), lit.Pos(1))
	h.Add(lit.Neg(1), lit.Pos(2))
	h.Add(lit.Neg(2))
	r = EnumerateToResult(h, projSpace(0, 1, 2), DefaultOptions())
	if r.Count.Sign() != 0 {
		t.Fatal("propagated contradiction should have empty projection")
	}
}

func TestTautology(t *testing.T) {
	f := cnf.New(4)
	r := EnumerateToResult(f, projSpace(0, 1, 2, 3), DefaultOptions())
	if r.Count.Cmp(big.NewInt(16)) != 0 {
		t.Fatalf("count %v, want 16", r.Count)
	}
	if r.Cover.Len() != 1 || r.Cover.Cubes()[0].FreeVars() != 4 {
		t.Fatal("tautology should be one universal cube")
	}
	// A tautological clause is dropped, same result.
	f2 := cnf.New(4)
	f2.Add(lit.Pos(0), lit.Neg(0))
	r2 := EnumerateToResult(f2, projSpace(0, 1, 2, 3), DefaultOptions())
	if r2.Count.Cmp(big.NewInt(16)) != 0 {
		t.Fatalf("count %v, want 16", r2.Count)
	}
}

func TestRootImpliedProjectionLiteralsFolded(t *testing.T) {
	// Unit clause fixes a projection variable at the root.
	f := cnf.New(3)
	f.Add(lit.Neg(1))
	f.Add(lit.Pos(0), lit.Pos(2))
	space := projSpace(0, 1, 2)
	checkAgainstBruteForce(t, 0, f, space, DefaultOptions())
}

func TestResidualProblem(t *testing.T) {
	// Projection over x0 only; residual over x1..x3 decides SAT: the
	// residual is satisfiable only when x0 = 1.
	f := cnf.New(4)
	f.Add(lit.Pos(0), lit.Pos(1))
	f.Add(lit.Pos(0), lit.Neg(1))
	// make residual non-trivial: (x2 ∨ x3)(¬x2 ∨ x3)(x2 ∨ ¬x3) forces x2=x3=1
	f.Add(lit.Pos(2), lit.Pos(3))
	f.Add(lit.Neg(2), lit.Pos(3))
	f.Add(lit.Pos(2), lit.Neg(3))
	checkAgainstBruteForce(t, 0, f, projSpace(0), DefaultOptions())
	// And an unsatisfiable residual: projection must be empty.
	g := cnf.New(3)
	g.Add(lit.Pos(1), lit.Pos(2))
	g.Add(lit.Neg(1), lit.Pos(2))
	g.Add(lit.Pos(1), lit.Neg(2))
	g.Add(lit.Neg(1), lit.Neg(2))
	r := EnumerateToResult(g, projSpace(0), DefaultOptions())
	if r.Count.Sign() != 0 {
		t.Fatal("unsat residual should empty the projection")
	}
}

func TestMemoHitsOnReplicatedStructure(t *testing.T) {
	// Two identical disjoint cones sharing no variables: after the first
	// cone's subproblem is solved for a given assignment, the second
	// occurrence recurs... build replicated equality chains so identical
	// residuals appear under multiple prefixes.
	// f = (p0 ≡ a) ∧ (p1 ≡ a): once a is implied the state repeats.
	f := cnf.New(4) // p0, p1, a, b
	p0, p1, a, b := lit.Var(0), lit.Var(1), lit.Var(2), lit.Var(3)
	iff := func(x, y lit.Var) {
		f.Add(lit.Neg(x), lit.Pos(y))
		f.Add(lit.Pos(x), lit.Neg(y))
	}
	iff(p0, a)
	iff(p1, b)
	space := projSpace(0, 1)
	e := New(f, space, DefaultOptions())
	r := e.Enumerate()
	if got := e.man.SatCount(r.Set); got.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("count %v, want 4", got)
	}
	if r.Stats.CacheLookups == 0 {
		t.Error("expected memo lookups")
	}
	_ = p0
	_ = p1
	_ = a
	_ = b
}

func TestMemoSpeedsUpAndAgrees(t *testing.T) {
	// On formulas with repeated substructure the memo-enabled run must
	// agree with the memo-disabled run and perform no more decisions.
	rng := rand.New(rand.NewSource(3003))
	for iter := 0; iter < 40; iter++ {
		nVars := 6 + rng.Intn(6)
		f := randomFormula(rng, nVars, 2*nVars, 2) // 2-CNF has implications galore
		vars := rng.Perm(nVars)[:4]
		space := projSpace(vars...)
		rOn := EnumerateToResult(f, space, Options{EnableMemo: true, EnableLearning: true})
		rOff := EnumerateToResult(f, space, Options{EnableMemo: false, EnableLearning: true})
		if rOn.Count.Cmp(rOff.Count) != 0 {
			t.Fatalf("iter %d: memo changed the answer: %v vs %v", iter, rOn.Count, rOff.Count)
		}
	}
}

func TestLearnedClauseLengthCap(t *testing.T) {
	rng := rand.New(rand.NewSource(4004))
	for iter := 0; iter < 40; iter++ {
		nVars := 5 + rng.Intn(6)
		f := randomFormula(rng, nVars, 3*nVars, 3)
		vars := rng.Perm(nVars)[:3]
		space := projSpace(vars...)
		a := EnumerateToResult(f, space, Options{EnableLearning: true, MaxLearnedLen: 2})
		b := EnumerateToResult(f, space, Options{EnableLearning: true})
		if a.Count.Cmp(b.Count) != 0 {
			t.Fatalf("iter %d: learned-length cap changed the answer", iter)
		}
	}
}

func TestMaxDecisionsAborts(t *testing.T) {
	// A tautology over many variables needs many decisions without memo
	// hits being enough... use memo-off to force work, and a tiny budget.
	f := cnf.New(12)
	rng := rand.New(rand.NewSource(42))
	g := randomFormula(rng, 12, 20, 3)
	_ = f
	full := EnumerateToResult(g, projSpace(0, 1, 2, 3, 4, 5), Options{EnableLearning: true})
	if full.Aborted {
		t.Fatal("unbounded run should not abort")
	}
	capped := EnumerateToResult(g, projSpace(0, 1, 2, 3, 4, 5),
		Options{EnableLearning: true, MaxDecisions: 3})
	if !capped.Aborted {
		t.Skip("instance too easy to exercise the budget")
	}
	// The capped result must under-approximate the full one.
	if capped.Count.Cmp(full.Count) > 0 {
		t.Fatalf("aborted count %v exceeds exact %v", capped.Count, full.Count)
	}
	// Every capped projection must be a real projection.
	n := 6
	m := make([]bool, n)
	for x := 0; x < 1<<uint(n); x++ {
		for i := 0; i < n; i++ {
			m[i] = x&(1<<uint(i)) != 0
		}
		if capped.Cover.Contains(m) && !full.Cover.Contains(m) {
			t.Fatalf("aborted cover contains non-solution %06b", x)
		}
	}
}

func TestPanicsOnProjectionOutsideFormula(t *testing.T) {
	f := cnf.New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(f, projSpace(5), DefaultOptions())
}

func TestCountHelper(t *testing.T) {
	f := cnf.New(2)
	f.Add(lit.Pos(0), lit.Pos(1))
	if got := Count(f, projSpace(0, 1), DefaultOptions()); got.Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("Count = %v, want 3", got)
	}
}

func TestSolutionBDDIsCanonicalPreimageShape(t *testing.T) {
	// f encodes x0 = x1 AND x2 over projection (x0,x1,x2): the solution
	// BDD must equal the directly-built BDD of the constraint.
	f := cnf.New(3)
	f.Add(lit.Neg(0), lit.Pos(1))
	f.Add(lit.Neg(0), lit.Pos(2))
	f.Add(lit.Pos(0), lit.Neg(1), lit.Neg(2))
	space := projSpace(0, 1, 2)
	e := New(f, space, DefaultOptions())
	r := e.Enumerate()
	m := r.Manager
	want := m.Xnor(m.Var(0), m.And(m.Var(1), m.Var(2)))
	if r.Set != want {
		t.Fatalf("solution BDD not canonical: ref %d vs %d", r.Set, want)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5005))
	f := randomFormula(rng, 10, 30, 3)
	space := projSpace(0, 1, 2, 3)
	r1 := EnumerateToResult(f, space, DefaultOptions())
	r2 := EnumerateToResult(f, space, DefaultOptions())
	if r1.Count.Cmp(r2.Count) != 0 || r1.Stats.Decisions != r2.Stats.Decisions {
		t.Fatal("enumeration should be deterministic")
	}
	k1, k2 := r1.Cover.SortedKeys(), r2.Cover.SortedKeys()
	if len(k1) != len(k2) {
		t.Fatal("cover sizes differ across runs")
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatal("covers differ across runs")
		}
	}
}

func TestMemoBoundClearsAndAgrees(t *testing.T) {
	// A punishing memo bound must only cost re-derivations, never change
	// the answer, and each wholesale clear must be counted.
	rng := rand.New(rand.NewSource(4004))
	sawClear := false
	for iter := 0; iter < 30; iter++ {
		nVars := 8 + rng.Intn(4)
		f := randomFormula(rng, nVars, 2*nVars, 2)
		vars := rng.Perm(nVars)[:5]
		space := projSpace(vars...)
		free := EnumerateToResult(f, space, Options{EnableMemo: true, EnableLearning: true})
		opts := Options{EnableMemo: true, EnableLearning: true, MemoLimit: 2}
		e := New(f, space, opts)
		r := e.Enumerate()
		if got := e.man.SatCount(r.Set); got.Cmp(free.Count) != 0 {
			t.Fatalf("iter %d: memo bound changed the answer: %v vs %v", iter, got, free.Count)
		}
		if len(e.memo) > 2 {
			t.Fatalf("iter %d: memo size %d exceeds bound 2", iter, len(e.memo))
		}
		if r.Stats.CacheClears > 0 {
			sawClear = true
		}
	}
	if !sawClear {
		t.Fatal("bound 2 never triggered a clear across 30 formulas")
	}
}

func TestMemoLimitResolution(t *testing.T) {
	f := cnf.New(2)
	space := projSpace(0, 1)
	if e := New(f, space, Options{EnableMemo: true}); e.memoLimit != DefaultMemoLimit {
		t.Fatalf("zero MemoLimit resolved to %d, want DefaultMemoLimit", e.memoLimit)
	}
	if e := New(f, space, Options{EnableMemo: true, MemoLimit: 64}); e.memoLimit != 64 {
		t.Fatalf("explicit MemoLimit resolved to %d, want 64", e.memoLimit)
	}
	if e := New(f, space, Options{EnableMemo: true, MemoLimit: -1}); e.memoLimit != 0 {
		t.Fatalf("negative MemoLimit resolved to %d, want 0 (unbounded)", e.memoLimit)
	}
}

func TestKernelStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(5005))
	f := randomFormula(rng, 10, 20, 3)
	space := projSpace(0, 1, 2, 3, 4)
	r := New(f, space, DefaultOptions()).Enumerate()
	k := r.Stats.Kernel
	if k.UniqueLookups == 0 || k.UniqueCap == 0 {
		t.Fatalf("kernel gauges empty: %+v", k)
	}
	if k.Nodes != r.Stats.BDDNodes {
		t.Fatalf("kernel node count %d != BDDNodes %d", k.Nodes, r.Stats.BDDNodes)
	}
}
