package core

// Incremental clause groups (Eén/Sörensson-style activation literals).
//
// A persistent enumerator can serve a sequence of targets against one
// fixed circuit encoding: the caller allocates fresh variables with
// NewVar, opens a clause group with BeginGroup, adds the target clauses
// gated on a fresh activation literal act (every group clause contains
// ¬act) with AddGroupClause, enumerates under the assumption act, and
// finally retires the group with RetireGroup(¬act, vars). The unit ¬act
// permanently satisfies every group clause, so the group can be swept
// from the watch and occurrence lists without changing the formula's
// models; learned clauses derived while act was assumable contain ¬act
// (or only circuit literals) and remain implied by the remaining
// formula, so they are retained unless they mention a retired variable —
// those are garbage-collected, since with ¬act forced they are
// permanently satisfied and would only burden the watch lists.
//
// Memo soundness across retargeting: a memo entry's signature hashes the
// exact set of (clause, falsified-literal) pairs of the unsatisfied
// clauses. Entries stored while every group clause was already satisfied
// have residuals drawn purely from the permanent circuit clauses and
// stay valid forever. Entries whose residual still contained a live
// group clause (dynUnsat > 0 at store time) are tracked in stepSigs and
// deleted at retirement: after ¬act their clause ids are permanently
// satisfied, so the signature could never be probed again and the entry
// is dead weight.

import (
	"fmt"

	"allsatpre/internal/cnf"
	"allsatpre/internal/lit"
)

// RetireStats reports what RetireGroup removed and kept.
type RetireStats struct {
	// OrigRetired is the number of group clauses tombstoned.
	OrigRetired int
	// LearnedKept / LearnedDropped split the learned-clause database at
	// retirement: kept clauses mention no retired variable and survive
	// into the next step.
	LearnedKept    int
	LearnedDropped int
	// MemoInvalidated counts memo entries whose residual signature
	// embedded a live group clause and had to be deleted.
	MemoInvalidated int
	// VarsRetired is len(vars) as passed by the caller (activation +
	// selector variables of the group).
	VarsRetired int
}

// NumVars reports the enumerator's current variable count.
func (e *Enumerator) NumVars() int { return len(e.assign) }

// MemoSize reports the current number of success-memo entries.
func (e *Enumerator) MemoSize() int { return len(e.memo) }

// LearnedCount reports the current learned-clause count.
func (e *Enumerator) LearnedCount() int { return len(e.learned) }

// LearnedLits reports the total literal count of the live learned
// clauses — the retained-learnt footprint a persistent session carries
// across retargetings (clause counts alone hide clause length).
func (e *Enumerator) LearnedLits() int { return e.learnedLits }

// NewVar allocates a fresh variable (for activation literals and
// per-step selectors). The variable is not a projection variable and
// does not enter the BDD manager's order.
func (e *Enumerator) NewVar() lit.Var {
	v := lit.Var(len(e.assign))
	e.assign = append(e.assign, lit.Unknown)
	e.reason = append(e.reason, nil)
	e.seen = append(e.seen, 0)
	e.dlevel = append(e.dlevel, 0)
	e.trailIdx = append(e.trailIdx, 0)
	e.isProj = append(e.isProj, false)
	e.watches = append(e.watches, nil, nil)
	e.occ = append(e.occ, nil, nil)
	return v
}

// AddClause installs a permanent clause at the root level between
// enumeration calls. It reports false when the addition (or prior state)
// makes the formula UNSAT at the root.
func (e *Enumerator) AddClause(lits ...lit.Lit) bool {
	return e.addDynamic(lits, 0)
}

// BeginGroup opens a new clause group. Only one group may be open at a
// time; it must be closed with RetireGroup before the next BeginGroup.
func (e *Enumerator) BeginGroup() {
	if e.curGroup != 0 {
		panic("core: BeginGroup with a group already open")
	}
	e.nextGroup++
	e.curGroup = e.nextGroup
	e.groupClauses = e.groupClauses[:0]
}

// AddGroupClause installs a clause belonging to the open group. Every
// group clause must contain the negated activation literal that will
// later be passed to RetireGroup, so that the retirement unit satisfies
// it permanently.
func (e *Enumerator) AddGroupClause(lits ...lit.Lit) bool {
	if e.curGroup == 0 {
		panic("core: AddGroupClause without BeginGroup")
	}
	return e.addDynamic(lits, e.curGroup)
}

// addDynamic normalizes and installs one clause at the root, aware of
// the current root assignment: root-true literals set satBy, root-false
// literals fold their falsity keys into the contribution (so the
// residual signature of a later partial assignment matches what a fresh
// enumerator would compute), and a clause unit under the root assignment
// is propagated immediately.
func (e *Enumerator) addDynamic(ls []lit.Lit, group int32) bool {
	if len(e.trailLim) != 0 {
		panic("core: clause added above the root level")
	}
	if !e.prepareRoot() {
		return false
	}
	nc, taut := cnf.Clause(ls).Normalize()
	if taut {
		return true
	}
	for _, l := range nc {
		if int(l.Var()) >= len(e.assign) {
			panic(fmt.Sprintf("core: clause literal %v outside formula; call NewVar first", l))
		}
	}
	if len(nc) == 0 {
		e.rootUnsat = true
		return false
	}
	ci := int32(len(e.orig))
	// Root status: earliest satisfying trail position, falsity keys of
	// root-false literals, and the non-false literals moved to the front
	// so positions 0 and 1 are valid watches.
	contrib := clauseBase(ci)
	satPos := int32(-1)
	w := 0
	for i, l := range nc {
		switch e.litValue(l) {
		case lit.True:
			if p := e.trailIdx[l.Var()]; satPos < 0 || p < satPos {
				satPos = p
			}
			nc[w], nc[i] = nc[i], nc[w]
			w++
		case lit.Unknown:
			nc[w], nc[i] = nc[i], nc[w]
			w++
		case lit.False:
			contrib.xor(falseKey(ci, l))
		}
	}
	cl := &clause{lits: nc}
	e.orig = append(e.orig, cl)
	e.satBy = append(e.satBy, satPos)
	e.contrib = append(e.contrib, contrib)
	e.groupOf = append(e.groupOf, group)
	if satPos < 0 {
		e.unsatCnt++
		e.resid.xor(contrib)
		if group != 0 {
			e.dynUnsat++
		}
	}
	for _, l := range nc {
		e.occ[l] = append(e.occ[l], ci)
	}
	if group != 0 {
		e.groupClauses = append(e.groupClauses, ci)
	}
	if w >= 2 {
		e.attach(cl)
		return true
	}
	if satPos >= 0 {
		return true
	}
	if w == 0 {
		// Every literal is root-false: the formula became UNSAT.
		e.rootUnsat = true
		return false
	}
	// Exactly one non-false literal (now at nc[0], satisfying the
	// "reason clause leads with its own literal" invariant): unit under
	// the root assignment — propagate it. enqueue sees this clause in
	// occ[nc[0]] and marks it satisfied, balancing the counters above.
	e.enqueue(nc[0], cl)
	e.stats.Propagations++
	if e.bcp() != nil {
		e.rootUnsat = true
		return false
	}
	return true
}

// RetireGroup closes the open group: unit is the negated activation
// literal (every group clause contains it), vars are the variables
// private to the group (activation + selectors). The unit is added as a
// permanent clause, the group's clauses are swept from the watch and
// occurrence lists, learned clauses mentioning a retired variable are
// garbage-collected, and memo entries whose residual embedded a live
// group clause are invalidated. Must be called at the root with no
// enumeration in flight.
func (e *Enumerator) RetireGroup(unit lit.Lit, vars []lit.Var) RetireStats {
	var out RetireStats
	if e.curGroup == 0 {
		panic("core: RetireGroup without an open group")
	}
	if len(e.trailLim) != 0 {
		panic("core: RetireGroup above the root level")
	}
	e.curGroup = 0
	out.VarsRetired = len(vars)
	if !e.AddClause(unit) {
		// Root-UNSAT; nothing else can run on this enumerator.
		e.groupClauses = e.groupClauses[:0]
		return out
	}
	// 1. Tombstone the group clauses and drop their occurrence entries.
	// The unit made every one root-satisfied, so removal changes no
	// model and invalidates no learned clause.
	for _, ci := range e.groupClauses {
		cl := e.orig[ci]
		if cl.dead || e.satBy[ci] < 0 {
			// satBy < 0 would mean a group clause without the gating
			// literal — a protocol violation; leave it live rather than
			// unsoundly deleting a constraint.
			continue
		}
		cl.dead = true
		out.OrigRetired++
		for _, l := range cl.lits {
			e.removeOcc(l, ci)
		}
	}
	e.groupClauses = e.groupClauses[:0]
	// 2. GC learned clauses mentioning a retired variable. With the
	// activation literal forced false they are permanently satisfied (or
	// mention a forever-unassignable selector) — keeping them would only
	// burden the watch lists across later steps.
	for _, v := range vars {
		e.seen[v] = 1
	}
	kept := e.learned[:0]
	for _, cl := range e.learned {
		drop := false
		for _, l := range cl.lits {
			if e.seen[l.Var()] != 0 {
				drop = true
				break
			}
		}
		if drop {
			cl.dead = true
			e.learnedLits -= len(cl.lits)
			out.LearnedDropped++
		} else {
			kept = append(kept, cl)
		}
	}
	for i := len(kept); i < len(e.learned); i++ {
		e.learned[i] = nil
	}
	e.learned = kept
	out.LearnedKept = len(kept)
	for _, v := range vars {
		e.seen[v] = 0
	}
	// 3. Sweep every watch list once, dropping dead clauses. bcp
	// migrates watchers between lists, so per-clause unlinking is not
	// possible; the full sweep between steps is.
	for li := range e.watches {
		ws := e.watches[li]
		outWs := ws[:0]
		for _, wt := range ws {
			if !wt.cl.dead {
				outWs = append(outWs, wt)
			}
		}
		for i := len(outWs); i < len(ws); i++ {
			ws[i] = watcher{}
		}
		e.watches[li] = outWs
	}
	// 4. Invalidate memo entries whose residual embedded a group clause.
	for _, s := range e.stepSigs {
		if _, ok := e.memo[s]; ok {
			delete(e.memo, s)
			out.MemoInvalidated++
		}
	}
	e.stepSigs = e.stepSigs[:0]
	return out
}

// removeOcc swap-removes clause ci from l's occurrence list. Occurrence
// order does not influence results (enqueue/popLevel visit all entries),
// so the in-place shrink is safe.
func (e *Enumerator) removeOcc(l lit.Lit, ci int32) {
	occ := e.occ[l]
	for i, x := range occ {
		if x == ci {
			occ[i] = occ[len(occ)-1]
			e.occ[l] = occ[:len(occ)-1]
			return
		}
	}
}
