package core

import (
	"math/rand"
	"testing"

	"allsatpre/internal/bdd"
	"allsatpre/internal/cnf"
	"allsatpre/internal/lit"
)

// randTargetClauses builds a small random CNF "target" over the first
// nVars variables: the per-step constraints a reach loop would gate on
// an activation literal.
func randTargetClauses(rng *rand.Rand, nVars int) []cnf.Clause {
	n := 1 + rng.Intn(3)
	out := make([]cnf.Clause, 0, n)
	for i := 0; i < n; i++ {
		w := 1 + rng.Intn(3)
		c := make(cnf.Clause, 0, w)
		for j := 0; j < w; j++ {
			c = append(c, lit.New(lit.Var(rng.Intn(nVars)), rng.Intn(2) == 0))
		}
		out = append(out, c)
	}
	return out
}

// TestIncrementalRetargetMatchesFresh drives one persistent enumerator
// through a sequence of activation-gated targets and checks that every
// step's solution set is bit-identical (as an exported BDD) to a fresh
// enumerator built with the same target clauses added ungated. This is
// the core soundness property the incremental reach engine relies on:
// learned clauses and memo entries carried across RetireGroup must not
// change any later step's solution set.
func TestIncrementalRetargetMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(7117))
	for iter := 0; iter < 80; iter++ {
		nVars := 4 + rng.Intn(6)
		f := randomFormula(rng, nVars, 1+rng.Intn(3*nVars), 3)
		nProj := 2 + rng.Intn(nVars-1)
		vars := rng.Perm(nVars)[:nProj]
		space := projSpace(vars...)

		inc := New(f.Clone(), space, DefaultOptions())
		steps := 2 + rng.Intn(4)
		for s := 0; s < steps; s++ {
			target := randTargetClauses(rng, nVars)

			// Fresh reference: formula plus the ungated target clauses.
			ff := f.Clone()
			for _, c := range target {
				ff.Add(c.Clone()...)
			}
			fresh := New(ff, space, DefaultOptions())
			want := fresh.Enumerate()

			// Incremental: gate the same clauses on a fresh activation
			// literal and enumerate under it.
			act := inc.NewVar()
			inc.BeginGroup()
			ok := true
			installed := 0
			for _, c := range target {
				if _, taut := c.Normalize(); !taut {
					installed++
				}
				gc := append(cnf.Clause{lit.New(act, true)}, c...)
				ok = inc.AddGroupClause(gc...) && ok
			}
			var got bdd.Ref
			gotUnsat := false
			if !ok {
				gotUnsat = true
			} else {
				sub := inc.EnumerateUnder([]lit.Lit{lit.New(act, false)}, 0)
				switch sub.Status {
				case SubSAT:
					got = sub.Set
				case SubUnsatAssumps, SubGlobalUnsat:
					gotUnsat = true
				default:
					t.Fatalf("iter %d step %d: unexpected status %v", iter, s, sub.Status)
				}
			}
			if gotUnsat {
				if want.Set != bdd.False {
					t.Fatalf("iter %d step %d: incremental UNSAT but fresh has solutions", iter, s)
				}
			} else {
				wantHere := inc.man.Import(fresh.man.Export(want.Set))
				if got != wantHere {
					t.Fatalf("iter %d step %d: incremental set differs from fresh", iter, s)
				}
			}

			rs := inc.RetireGroup(lit.New(act, true), []lit.Var{act})
			if rs.VarsRetired != 1 {
				t.Fatalf("iter %d step %d: VarsRetired = %d", iter, s, rs.VarsRetired)
			}
			if !gotUnsat && rs.OrigRetired != installed {
				t.Fatalf("iter %d step %d: OrigRetired = %d, want %d",
					iter, s, rs.OrigRetired, installed)
			}
			if rs.LearnedKept != inc.LearnedCount() {
				t.Fatalf("iter %d step %d: LearnedKept %d != live learned %d",
					iter, s, rs.LearnedKept, inc.LearnedCount())
			}
			// No live learned clause may mention the retired variable.
			for _, cl := range inc.learned {
				for _, l := range cl.lits {
					if l.Var() == act {
						t.Fatalf("iter %d step %d: retained learned clause mentions retired var", iter, s)
					}
				}
			}
			// No watcher may reference a dead clause.
			for _, ws := range inc.watches {
				for _, w := range ws {
					if w.cl.dead {
						t.Fatalf("iter %d step %d: dead clause left in a watch list", iter, s)
					}
				}
			}
			if inc.rootUnsat {
				// Retirement cannot make the base formula UNSAT (act is
				// fresh and the gated clauses are satisfied by ¬act).
				t.Fatalf("iter %d step %d: root UNSAT after retirement", iter, s)
			}
		}
	}
}

// TestIncrementalAddClausePermanent checks that AddClause between steps
// behaves like a clause present from construction.
func TestIncrementalAddClausePermanent(t *testing.T) {
	rng := rand.New(rand.NewSource(9119))
	for iter := 0; iter < 60; iter++ {
		nVars := 4 + rng.Intn(5)
		f := randomFormula(rng, nVars, 1+rng.Intn(2*nVars), 3)
		extra := randTargetClauses(rng, nVars)
		space := projSpace(rng.Perm(nVars)[:2+rng.Intn(nVars-1)]...)

		ff := f.Clone()
		for _, c := range extra {
			ff.Add(c.Clone()...)
		}
		fresh := New(ff, space, DefaultOptions())
		want := fresh.Enumerate()

		inc := New(f.Clone(), space, DefaultOptions())
		// Force root preparation and some prior search state.
		_ = inc.EnumerateUnder(nil, 0)
		ok := true
		for _, c := range extra {
			ok = inc.AddClause(c...) && ok
		}
		if !ok {
			if want.Set != bdd.False {
				t.Fatalf("iter %d: AddClause reported UNSAT but fresh has solutions", iter)
			}
			continue
		}
		sub := inc.EnumerateUnder(nil, 0)
		if sub.Status == SubGlobalUnsat {
			if want.Set != bdd.False {
				t.Fatalf("iter %d: incremental UNSAT but fresh has solutions", iter)
			}
			continue
		}
		wantHere := inc.man.Import(fresh.man.Export(want.Set))
		if sub.Set != wantHere {
			t.Fatalf("iter %d: post-AddClause set differs from fresh", iter)
		}
	}
}

// TestRetireGroupMemoInvalidation stores memo entries while a group
// clause is live in the residual and checks they are dropped at
// retirement while circuit-only entries survive.
func TestRetireGroupMemoInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(515))
	sawInvalidation := false
	sawSurvivor := false
	for iter := 0; iter < 120 && !(sawInvalidation && sawSurvivor); iter++ {
		nVars := 5 + rng.Intn(5)
		f := randomFormula(rng, nVars, 2+rng.Intn(3*nVars), 3)
		space := projSpace(rng.Perm(nVars)[:3]...)
		inc := New(f.Clone(), space, DefaultOptions())
		for s := 0; s < 3; s++ {
			act := inc.NewVar()
			inc.BeginGroup()
			ok := true
			for _, c := range randTargetClauses(rng, nVars) {
				ok = inc.AddGroupClause(append(cnf.Clause{lit.New(act, true)}, c...)...) && ok
			}
			if ok {
				_ = inc.EnumerateUnder([]lit.Lit{lit.New(act, false)}, 0)
			}
			before := inc.MemoSize()
			rs := inc.RetireGroup(lit.New(act, true), []lit.Var{act})
			if inc.MemoSize() != before-rs.MemoInvalidated {
				t.Fatalf("iter %d step %d: memo size %d→%d but MemoInvalidated=%d",
					iter, s, before, inc.MemoSize(), rs.MemoInvalidated)
			}
			if rs.MemoInvalidated > 0 {
				sawInvalidation = true
			}
			if inc.MemoSize() > 0 {
				sawSurvivor = true
			}
			if len(inc.stepSigs) != 0 {
				t.Fatalf("iter %d step %d: stepSigs not cleared", iter, s)
			}
		}
	}
	if !sawInvalidation {
		t.Error("no run ever invalidated a memo entry; test is vacuous")
	}
	if !sawSurvivor {
		t.Error("no memo entry ever survived retirement; retention untested")
	}
}

// TestGroupProtocolPanics pins the misuse panics.
func TestGroupProtocolPanics(t *testing.T) {
	f := cnf.New(2)
	f.Add(lit.New(0, false), lit.New(1, false))
	e := New(f, projSpace(0, 1), DefaultOptions())
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("AddGroupClause without BeginGroup", func() {
		e.AddGroupClause(lit.New(0, false))
	})
	mustPanic("RetireGroup without group", func() {
		e.RetireGroup(lit.New(0, true), nil)
	})
	e.BeginGroup()
	mustPanic("nested BeginGroup", func() { e.BeginGroup() })
}
