// Package core implements the paper's primary contribution: a SAT
// all-solutions enumerator specialized for preimage computation.
//
// Instead of the classical solve/block/repeat loop, the enumerator runs a
// structured DPLL search that branches only on the projection variables
// (present-state and primary-input variables of a preimage instance), in a
// fixed static order, and assembles the solution set directly as an ROBDD
// over those variables:
//
//   - Unit propagation uses two-watched literals; internal circuit
//     variables are never decided, only implied.
//   - When every original clause is satisfied, the remaining (unassigned)
//     projection variables are don't cares: the search returns the BDD
//     constant True, covering 2^k projections at once (cube enlargement).
//   - When both branches of a projection variable complete, the node
//     ITE(v, hi, lo) is built in the shared BDD manager, so the final
//     answer is the preimage as a canonical ROBDD — no blocking clauses
//     are ever added.
//   - Success-driven learning: every completed subproblem is memoized
//     under a canonical signature of its residual — the set of not-yet-
//     satisfied clauses restricted to their unassigned literals,
//     maintained as an incremental 128-bit Zobrist hash. When an
//     equivalent residual recurs — which is frequent in circuits with
//     reconvergent or replicated logic, and happens across sibling
//     branches whenever the decided variable has ceased to matter — the
//     stored solution sub-BDD is grafted in O(1) instead of re-searching.
//   - Conflict-driven learning is retained: failed branches produce
//     first-UIP learned clauses that prune later UNSAT regions. Learned
//     clauses are used only for propagation and conflict detection, never
//     for the satisfaction test, so they cannot corrupt the enumeration.
package core

import (
	"fmt"
	"math/big"

	"allsatpre/internal/allsat"
	"allsatpre/internal/bdd"
	"allsatpre/internal/budget"
	"allsatpre/internal/cnf"
	"allsatpre/internal/cube"
	"allsatpre/internal/lit"
)

// Options tunes the success-driven enumerator.
type Options struct {
	// EnableMemo turns success-driven learning (subproblem memoization)
	// on. Default true via DefaultOptions.
	EnableMemo bool
	// EnableLearning turns conflict-clause learning on.
	EnableLearning bool
	// MaxLearnedLen drops learned clauses longer than this (0 = keep all).
	MaxLearnedLen int
	// MemoLimit bounds the success-driven memo table: when the entry count
	// reaches the limit, the whole table is cleared (a clear-on-threshold
	// policy, counted in Stats.CacheClears), bounding memory on deep
	// enumerations at the price of re-deriving evicted subproblems. 0
	// selects DefaultMemoLimit; a negative value removes the bound.
	MemoLimit int
	// MaxDecisions aborts the enumeration once this many decisions have
	// been made (0 = unbounded). An aborted run returns an
	// under-approximation of the solution set, flagged in the result.
	MaxDecisions uint64
	// Budget imposes wall-clock, cancellation, decision, and BDD-node
	// limits on the enumeration. When it trips, the run aborts with the
	// portion of the solution set assembled so far — always a sound
	// under-approximation. The zero Budget is unbounded.
	Budget budget.Budget
	// OnDecision, when set, is polled once per projection decision; a
	// non-None reason aborts the enumeration like a tripped budget. The
	// parallel pool uses it to enforce a single global decision budget
	// across workers via a shared atomic counter.
	OnDecision func() budget.Reason
	// Manager, when non-nil, is used as the enumerator's solution-set
	// manager instead of constructing a fresh one. The caller must hand
	// it over empty (fresh or Reset) with its variable order equal to
	// space.Vars(); ownership passes to the enumerator until the caller
	// takes it back (e.g. a warm pool releasing it after the run).
	Manager *bdd.Manager
}

// DefaultOptions enables both learning mechanisms.
func DefaultOptions() Options {
	return Options{EnableMemo: true, EnableLearning: true}
}

// IsZero reports whether the options are the zero value, in which case
// callers substitute DefaultOptions. Field-wise because Options holds a
// function value and is not comparable.
func (o Options) IsZero() bool {
	return !o.EnableMemo && !o.EnableLearning && o.MaxLearnedLen == 0 &&
		o.MemoLimit == 0 && o.MaxDecisions == 0 && o.Budget.IsZero() &&
		o.OnDecision == nil && o.Manager == nil
}

// DefaultMemoLimit is the memo-table entry bound installed when
// Options.MemoLimit is zero. At roughly 24 bytes per entry this caps the
// table near 25 MB — far beyond what the benchmark circuits populate, so
// it only engages on pathological instances.
const DefaultMemoLimit = 1 << 20

type clause struct {
	lits    []lit.Lit
	learned bool
	// dead marks a clause retired by RetireGroup (or a learned clause
	// garbage-collected with it); dead clauses are swept from the watch
	// lists at retirement and stay permanently root-satisfied, so the
	// search never consults them again.
	dead bool
}

type watcher struct {
	cl      *clause
	blocker lit.Lit
}

// Enumerator is the success-driven all-solutions engine for one formula
// and projection. Create with New, run with Enumerate.
type Enumerator struct {
	opts Options

	orig    []*clause // original clauses, index-aligned with satBy
	learned []*clause
	watches [][]watcher

	assign   []lit.Tern
	reason   []*clause
	seen     []byte // analyze scratch
	dlevel   []int32
	trailIdx []int32 // variable -> trail position (valid while assigned)

	trail    []lit.Lit
	trailLim []int
	qhead    int

	// occ[l] lists original clause indexes containing literal l, for the
	// satisfied-clause bookkeeping.
	occ      [][]int32
	satBy    []int32 // original clause -> trail index that satisfied it, -1
	unsatCnt int

	// Residual-subproblem signature (success-driven learning). The
	// residual of a search state is the set of not-yet-satisfied original
	// clauses, each restricted to its unassigned literals; it exactly
	// determines the solution set over the remaining projection
	// variables. resid is a 128-bit Zobrist hash of that residual,
	// maintained incrementally: contrib[ci] is clause ci's current
	// contribution (base key ⊕ keys of its falsified literals), XORed
	// into resid while the clause is unsatisfied.
	resid   sig128
	contrib []sig128

	proj   []lit.Var
	isProj []bool
	space  *cube.Space

	man       *bdd.Manager
	memo      map[sig128]bdd.Ref
	memoLimit int // resolved MemoLimit; 0 = unbounded

	// learnFrom scratch, reused across conflicts.
	learntBuf  []lit.Lit
	cleanupBuf []lit.Var

	// Chunked backing for learned clauses: clause structs and their
	// literal slices are carved out of fixed-capacity blocks, so a learnt
	// costs zero dedicated allocations once a chunk is open (the same
	// pre-sizing idea New applies to the original clauses, extended to
	// clauses whose count is unknown up front). Chunks are never grown in
	// place — live *clause pointers into them must stay stable — a full
	// chunk is simply replaced by a fresh one and kept alive by its
	// clauses. learnedLits counts the literals of live learned clauses
	// (the retained-learnt footprint incr sessions report).
	litChunk    []lit.Lit
	clauseChunk []clause
	learnedLits int

	residScan   int  // rotating scan pointer for residualSAT
	aborted     bool // resource budget exhausted
	abortReason budget.Reason
	check       *budget.Checker // nil when the budget is unbounded

	// Incremental-clause state (see incr.go). groupOf tags each original
	// clause with its dynamic group (0 = permanent); dynUnsat counts the
	// unsatisfied clauses of the open group, so the memo can tell which
	// entries embed the current target; stepSigs records those entries
	// for invalidation when the group retires.
	groupOf      []int32
	groupClauses []int32 // clause indexes of the open group
	curGroup     int32   // open group id (0 = none)
	nextGroup    int32
	dynUnsat     int
	stepSigs     []sig128

	// Root preparation state (unit installation + root BCP), done once so
	// the enumerator can serve repeated EnumerateUnder calls.
	prepared  bool
	rootUnsat bool

	// Per-call soft decision cap (EnumerateUnder): when the call exceeds
	// callMaxDec decisions, splitReq is raised and the search unwinds with
	// partial results discarded, asking the caller to split the subcube.
	callMaxDec  uint64
	callBaseDec uint64
	splitReq    bool

	stats allsat.Stats
}

// New prepares an enumerator for formula f projected onto the variables of
// space (which become the BDD variable order, top to bottom).
func New(f *cnf.Formula, space *cube.Space, opts Options) *Enumerator {
	opts.Budget = opts.Budget.Materialize()
	man := opts.Manager
	if man == nil {
		man = bdd.NewOrdered(space.Vars())
	}
	n := f.NumVars
	e := &Enumerator{
		opts:     opts,
		watches:  make([][]watcher, 2*n),
		assign:   make([]lit.Tern, n),
		reason:   make([]*clause, n),
		seen:     make([]byte, n),
		dlevel:   make([]int32, n),
		trailIdx: make([]int32, n),
		occ:      make([][]int32, 2*n),
		proj:     space.Vars(),
		isProj:   make([]bool, n),
		space:    space,
		man:      man,
		memo:     make(map[sig128]bdd.Ref),
	}
	switch {
	case opts.MemoLimit > 0:
		e.memoLimit = opts.MemoLimit
	case opts.MemoLimit == 0:
		e.memoLimit = DefaultMemoLimit
	}
	for _, v := range e.proj {
		if int(v) >= n {
			panic(fmt.Sprintf("core: projection variable %v outside formula", v))
		}
		e.isProj[v] = true
	}

	// Install the clauses in two passes: normalize and count first, then
	// carve the occurrence lists, clause literals, and initial watch lists
	// out of single backing arrays sized exactly — one allocation each
	// instead of an append-doubling chain per literal.
	norm := make([]cnf.Clause, 0, len(f.Clauses))
	occCnt := make([]int32, 2*n)
	watchCnt := make([]int32, 2*n)
	totalLits := 0
	for _, c := range f.Clauses {
		nc, taut := c.Normalize()
		if taut {
			continue
		}
		norm = append(norm, nc)
		totalLits += len(nc)
		for _, l := range nc {
			occCnt[l]++
		}
		if len(nc) >= 2 {
			watchCnt[nc[0].Not()]++
			watchCnt[nc[1].Not()]++
		}
	}
	occBack := make([]int32, totalLits)
	pos := 0
	for l, cnt := range occCnt {
		if cnt == 0 {
			continue
		}
		e.occ[l] = occBack[pos : pos : pos+int(cnt)]
		pos += int(cnt)
	}
	totalWatch := 0
	for _, cnt := range watchCnt {
		totalWatch += int(cnt)
	}
	watchBack := make([]watcher, totalWatch)
	pos = 0
	for l, cnt := range watchCnt {
		if cnt == 0 {
			continue
		}
		// Three-index caps keep a list that later outgrows its chunk from
		// stomping its neighbour: the overflowing append reallocates.
		e.watches[l] = watchBack[pos : pos : pos+int(cnt)]
		pos += int(cnt)
	}
	litBack := make([]lit.Lit, 0, totalLits)
	clauseBack := make([]clause, len(norm))
	e.orig = make([]*clause, 0, len(norm))
	e.satBy = make([]int32, 0, len(norm))
	e.contrib = make([]sig128, 0, len(norm))
	e.groupOf = make([]int32, 0, len(norm))
	for i, nc := range norm {
		start := len(litBack)
		litBack = append(litBack, nc...)
		cl := &clauseBack[i]
		cl.lits = litBack[start:len(litBack):len(litBack)]
		e.install(cl)
	}
	return e
}

// install records a normalized problem clause: residual signature,
// occurrence lists, and (for clauses of length ≥ 2) the watch pair. Unit
// and empty clauses are handled at Enumerate start.
func (e *Enumerator) install(cl *clause) {
	ci := int32(len(e.orig))
	e.orig = append(e.orig, cl)
	e.satBy = append(e.satBy, -1)
	e.groupOf = append(e.groupOf, 0)
	e.unsatCnt++
	base := clauseBase(ci)
	e.contrib = append(e.contrib, base)
	e.resid.xor(base)
	for _, l := range cl.lits {
		e.occ[l] = append(e.occ[l], ci)
	}
	if len(cl.lits) >= 2 {
		e.attach(cl)
	}
}

func (e *Enumerator) attach(cl *clause) {
	w0, w1 := cl.lits[0].Not(), cl.lits[1].Not()
	e.watches[w0] = append(e.watches[w0], watcher{cl: cl, blocker: cl.lits[1]})
	e.watches[w1] = append(e.watches[w1], watcher{cl: cl, blocker: cl.lits[0]})
}

func (e *Enumerator) litValue(l lit.Lit) lit.Tern {
	return e.assign[l.Var()].XorSign(l.Sign())
}

func (e *Enumerator) enqueue(l lit.Lit, from *clause) {
	v := l.Var()
	e.assign[v] = lit.TernOf(!l.Sign())
	e.reason[v] = from
	e.dlevel[v] = int32(len(e.trailLim))
	pos := int32(len(e.trail))
	e.trailIdx[v] = pos
	e.trail = append(e.trail, l)
	// Clauses containing l become satisfied: drop them from the residual.
	for _, ci := range e.occ[l] {
		if e.satBy[ci] < 0 {
			e.satBy[ci] = pos
			e.unsatCnt--
			e.resid.xor(e.contrib[ci])
			if e.groupOf[ci] != 0 {
				e.dynUnsat--
			}
		}
	}
	// Clauses containing ¬l lose a literal: fold the falsity key in.
	nl := l.Not()
	for _, ci := range e.occ[nl] {
		k := falseKey(ci, nl)
		e.contrib[ci].xor(k)
		if e.satBy[ci] < 0 {
			e.resid.xor(k)
		}
	}
}

// bcp propagates to fixpoint; returns the conflicting clause or nil.
func (e *Enumerator) bcp() *clause {
	for e.qhead < len(e.trail) {
		p := e.trail[e.qhead]
		e.qhead++
		ws := e.watches[p]
		out := ws[:0]
		var confl *clause
	watchLoop:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if e.litValue(w.blocker) == lit.True {
				out = append(out, w)
				continue
			}
			c := w.cl
			falseLit := p.Not()
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && e.litValue(first) == lit.True {
				out = append(out, watcher{cl: c, blocker: first})
				continue
			}
			for k := 2; k < len(c.lits); k++ {
				if e.litValue(c.lits[k]) != lit.False {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nw := c.lits[1].Not()
					e.watches[nw] = append(e.watches[nw], watcher{cl: c, blocker: first})
					continue watchLoop
				}
			}
			out = append(out, watcher{cl: c, blocker: first})
			switch e.litValue(first) {
			case lit.False:
				confl = c
				e.qhead = len(e.trail)
				for i++; i < len(ws); i++ {
					out = append(out, ws[i])
				}
			case lit.Unknown:
				e.stats.Propagations++
				e.enqueue(first, c)
			}
			if confl != nil {
				break
			}
		}
		e.watches[p] = out
		if confl != nil {
			return confl
		}
	}
	return nil
}

// pushLevel opens a new decision level and returns the trail mark.
func (e *Enumerator) pushLevel() int {
	e.trailLim = append(e.trailLim, len(e.trail))
	return len(e.trail)
}

// popLevel undoes the topmost decision level.
func (e *Enumerator) popLevel() {
	mark := e.trailLim[len(e.trailLim)-1]
	e.trailLim = e.trailLim[:len(e.trailLim)-1]
	for i := len(e.trail) - 1; i >= mark; i-- {
		l := e.trail[i]
		v := l.Var()
		e.assign[v] = lit.Unknown
		e.reason[v] = nil
		nl := l.Not()
		for _, ci := range e.occ[nl] {
			k := falseKey(ci, nl)
			e.contrib[ci].xor(k)
			if e.satBy[ci] < 0 {
				e.resid.xor(k)
			}
		}
		for _, ci := range e.occ[l] {
			if e.satBy[ci] == int32(i) {
				e.satBy[ci] = -1
				e.unsatCnt++
				e.resid.xor(e.contrib[ci])
				if e.groupOf[ci] != 0 {
					e.dynUnsat++
				}
			}
		}
	}
	e.trail = e.trail[:mark]
	e.qhead = len(e.trail)
}

// sig128 is a 128-bit Zobrist hash value.
type sig128 struct{ a, b uint64 }

func (s *sig128) xor(o sig128) {
	s.a ^= o.a
	s.b ^= o.b
}

// splitmix64 is the SplitMix64 finalizer, used to derive Zobrist keys
// deterministically from clause ids and literals (no key tables needed).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// clauseBase is the Zobrist key of clause ci being present (unsatisfied,
// all literals alive) in the residual.
func clauseBase(ci int32) sig128 {
	a := splitmix64(uint64(ci)*2 + 1)
	return sig128{a: a, b: splitmix64(a ^ 0xd1b54a32d192ed03)}
}

// falseKey is the Zobrist key of literal l of clause ci being falsified.
func falseKey(ci int32, l lit.Lit) sig128 {
	a := splitmix64(uint64(ci+1)<<20 ^ uint64(l)*0x9e3779b97f4a7c15)
	return sig128{a: a, b: splitmix64(a ^ 0x2545f4914f6cdd1d)}
}

// Result bundles the solution BDD with the shared manager.
type Result struct {
	// Manager owns Set; its variable order is the projection order.
	Manager *bdd.Manager
	// Set is the projection of all models as an ROBDD.
	Set bdd.Ref
	// Stats holds search counters.
	Stats allsat.Stats
	// Aborted is true when a resource limit stopped the search early; Set
	// is then an under-approximation and Reason says what tripped.
	Aborted bool
	Reason  budget.Reason
}

// Enumerate runs the search and returns the solution BDD. If the budget
// trips mid-search the returned Set covers only the subtrees completed so
// far — a sound under-approximation — with Aborted and Reason set.
func (e *Enumerator) Enumerate() *Result {
	if e.check == nil && !e.opts.Budget.IsZero() {
		e.check = e.opts.Budget.Start()
	}
	res := &Result{Manager: e.man}
	if !e.prepareRoot() {
		res.Set = bdd.False
		res.Stats = e.stats
		return res
	}
	set := e.enumerate()
	// Fold in projection literals implied at the root level.
	for _, l := range e.trail {
		if e.isProj[l.Var()] {
			set = e.man.And(set, e.man.Lit(l))
		}
	}
	res.Set = set
	res.Stats = e.stats
	res.Stats.BDDNodes = e.man.NumNodes()
	res.Stats.Kernel = e.man.Kernel()
	res.Aborted = e.aborted
	res.Reason = e.abortReason
	return res
}

// enumerate explores the subproblem under the current assignment (BCP
// complete, conflict-free) and returns its solution set over the
// still-unassigned projection variables.
func (e *Enumerator) enumerate() bdd.Ref {
	if e.unsatCnt == 0 {
		e.stats.Solutions++
		return bdd.True
	}
	var sig sig128
	if e.opts.EnableMemo {
		sig = e.resid
		e.stats.CacheLookups++
		if r, ok := e.memo[sig]; ok {
			e.stats.CacheHits++
			return r
		}
	}
	// Next decision: the first unassigned projection variable.
	v := lit.UndefVar
	for _, pv := range e.proj {
		if e.assign[pv] == lit.Unknown {
			v = pv
			break
		}
	}
	var r bdd.Ref
	if v == lit.UndefVar {
		// All projection variables assigned; decide the residual problem.
		if e.residualSAT() {
			e.stats.Solutions++
			r = bdd.True
		} else {
			r = bdd.False
		}
	} else {
		lo := e.branch(lit.Neg(v))
		hi := e.branch(lit.Pos(v))
		r = e.man.ITE(e.man.Var(v), hi, lo)
	}
	// Results computed after an abort or split request may be truncated;
	// keep them out of the memo so pre-abort entries stay exact.
	if e.opts.EnableMemo && !e.aborted && !e.splitReq {
		e.memo[sig] = r
		if e.dynUnsat > 0 {
			// The residual embeds an unsatisfied clause of the open
			// dynamic group: remember the signature so RetireGroup can
			// drop the entry (its clause ids become permanently
			// satisfied, so the signature could never be probed again).
			e.stepSigs = append(e.stepSigs, sig)
		}
		if e.memoLimit > 0 && len(e.memo) >= e.memoLimit {
			clear(e.memo)
			e.stepSigs = e.stepSigs[:0]
			e.stats.CacheClears++
		}
	}
	return r
}

// branch explores one phase of a decision variable and returns its
// solution set (with projection literals implied under the branch folded
// in).
func (e *Enumerator) branch(dec lit.Lit) bdd.Ref {
	if e.aborted || e.splitReq {
		return bdd.False
	}
	if maxDec := e.opts.Budget.MergeDecisions(e.opts.MaxDecisions); maxDec > 0 &&
		e.stats.Decisions >= maxDec {
		e.abort(budget.Decisions)
		return bdd.False
	}
	if e.callMaxDec > 0 && e.stats.Decisions-e.callBaseDec >= e.callMaxDec {
		e.splitReq = true
		return bdd.False
	}
	if n := e.opts.Budget.MaxBDDNodes; n > 0 && e.man.NumNodes() >= n {
		e.abort(budget.Nodes)
		return bdd.False
	}
	if e.check != nil {
		if r := e.check.Poll(); r != budget.None {
			e.abort(r)
			return bdd.False
		}
	}
	if f := e.opts.OnDecision; f != nil {
		if r := f(); r != budget.None {
			e.abort(r)
			return bdd.False
		}
	}
	mark := e.pushLevel()
	e.stats.Decisions++
	e.enqueue(dec, nil)
	if confl := e.bcp(); confl != nil {
		e.stats.Conflicts++
		if e.opts.EnableLearning {
			e.learnFrom(confl)
		}
		e.popLevel()
		return bdd.False
	}
	sub := e.enumerate()
	if sub != bdd.False {
		// Fold in projection literals implied by this branch (not the
		// decision itself — the caller encodes that in the ITE).
		for i := mark + 1; i < len(e.trail); i++ {
			l := e.trail[i]
			if e.isProj[l.Var()] {
				sub = e.man.And(sub, e.man.Lit(l))
			}
		}
	}
	e.popLevel()
	return sub
}

// learnFrom performs first-UIP conflict analysis and installs the learned
// clause for future propagation. The clause is implied by the original
// formula, so it can only prune, never change, the solution set.
func (e *Enumerator) learnFrom(confl *clause) {
	level := int32(len(e.trailLim))
	if level == 0 {
		return
	}
	// learntBuf and cleanupBuf are per-enumerator scratch: conflicts are
	// frequent and the buffers reach steady-state capacity quickly, so the
	// analysis itself allocates nothing; only a kept clause copies out.
	e.learntBuf = e.learntBuf[:0]
	e.cleanupBuf = e.cleanupBuf[:0]
	pathC := 0
	idx := len(e.trail) - 1
	var p lit.Lit = lit.UndefLit

	expand := func(c *clause, skipFirst bool) {
		start := 0
		if skipFirst {
			start = 1
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if e.seen[v] != 0 || e.assign[v] == lit.Unknown {
				continue
			}
			// Root-level literals are globally implied and can be dropped.
			if e.dlevel[v] == 0 {
				continue
			}
			e.seen[v] = 1
			e.cleanupBuf = append(e.cleanupBuf, v)
			if e.dlevel[v] >= level {
				pathC++
			} else {
				e.learntBuf = append(e.learntBuf, q)
			}
		}
	}
	expand(confl, false)
	for pathC > 0 {
		for idx >= 0 && e.seen[e.trail[idx].Var()] == 0 {
			idx--
		}
		if idx < 0 {
			break
		}
		p = e.trail[idx]
		idx--
		e.seen[p.Var()] = 0
		pathC--
		if pathC == 0 {
			break
		}
		if rc := e.reason[p.Var()]; rc != nil {
			expand(rc, true)
		} else {
			// Reached a decision before the UIP: abandon learning.
			for _, v := range e.cleanupBuf {
				e.seen[v] = 0
			}
			return
		}
	}
	for _, v := range e.cleanupBuf {
		e.seen[v] = 0
	}
	if !p.IsDef() {
		return
	}
	n := len(e.learntBuf) + 1
	if e.opts.MaxLearnedLen > 0 && n > e.opts.MaxLearnedLen {
		return
	}
	cl := e.allocLearnt(n)
	learnt := cl.lits
	learnt[0] = p.Not()
	copy(learnt[1:], e.learntBuf)
	e.learned = append(e.learned, cl)
	e.learnedLits += n
	e.stats.BlockingClauses++ // reuse the counter as "learned clauses"
	e.stats.BlockingLits += uint64(len(learnt))
	if len(learnt) >= 2 {
		// Watch the UIP literal and the most recently assigned other
		// literal, so the clause is inspected as soon as relevant.
		best := 1
		for k := 2; k < len(learnt); k++ {
			if e.trailPos(learnt[k].Var()) > e.trailPos(learnt[best].Var()) {
				best = k
			}
		}
		learnt[1], learnt[best] = learnt[best], learnt[1]
		e.attach(cl)
	}
}

// Chunk capacities for the learned-clause backing arrays: big enough to
// amortize allocation, small enough that a mostly-dead chunk pinned by
// one long-lived clause wastes little.
const (
	learntLitChunk    = 1 << 12
	learntClauseChunk = 256
)

// allocLearnt returns a learned clause with an n-literal backing slice,
// both carved from the current chunks (full-capacity slice expression,
// so later carves cannot alias it).
func (e *Enumerator) allocLearnt(n int) *clause {
	if cap(e.litChunk)-len(e.litChunk) < n {
		c := learntLitChunk
		if n > c {
			c = n
		}
		e.litChunk = make([]lit.Lit, 0, c)
	}
	s := len(e.litChunk)
	e.litChunk = e.litChunk[:s+n]
	lits := e.litChunk[s : s+n : s+n]
	if len(e.clauseChunk) == cap(e.clauseChunk) {
		e.clauseChunk = make([]clause, 0, learntClauseChunk)
	}
	e.clauseChunk = append(e.clauseChunk, clause{lits: lits, learned: true})
	return &e.clauseChunk[len(e.clauseChunk)-1]
}

// trailPos returns the trail index of a currently assigned variable.
func (e *Enumerator) trailPos(v lit.Var) int {
	return int(e.trailIdx[v])
}

// abort flags the enumeration as truncated, keeping the first reason.
func (e *Enumerator) abort(r budget.Reason) {
	if !e.aborted {
		e.aborted = true
		e.abortReason = r
	}
}

// residualSAT decides satisfiability of the residual problem once every
// projection variable is assigned. For circuit-derived CNF the residual is
// almost always already decided by propagation (unsatCnt == 0); the
// fallback is a plain DPLL over the remaining variables.
func (e *Enumerator) residualSAT() bool {
	if e.unsatCnt == 0 {
		return true
	}
	// Find an unsatisfied clause with an unassigned literal.
	n := len(e.orig)
	for scan := 0; scan < n; scan++ {
		ci := (e.residScan + scan) % n
		if e.satBy[ci] >= 0 {
			continue
		}
		e.residScan = ci
		cl := e.orig[ci]
		for _, l := range cl.lits {
			if e.litValue(l) != lit.Unknown {
				continue
			}
			e.pushLevel()
			e.stats.Decisions++
			e.enqueue(l, nil)
			ok := e.bcp() == nil && e.residualSAT()
			e.popLevel()
			if ok {
				return true
			}
		}
		// Every literal of an unsatisfied clause is false or trying each
		// unassigned one failed: the residual is UNSAT here.
		return false
	}
	return true
}

// EnumerateToResult runs the engine and converts to the shared allsat
// result shape. The cover is extracted from the solution BDD with the
// Minato–Morreale ISOP algorithm, which yields an irredundant
// sum-of-products — typically far fewer cubes than raw 1-path
// enumeration, and the compact representation the downstream reachability
// loop feeds back as its next target.
func EnumerateToResult(f *cnf.Formula, space *cube.Space, opts Options) *allsat.Result {
	e := New(f, space, opts)
	r := e.Enumerate()
	out := &allsat.Result{
		Space:   space,
		Cover:   r.Manager.ISOP(r.Set, space),
		Count:   r.Manager.SatCount(r.Set),
		Stats:   r.Stats,
		Aborted: r.Aborted,
		Reason:  r.Reason,
	}
	out.Stats.Cubes = uint64(out.Cover.Len())
	return out
}

// Count is a convenience that returns only the number of projected
// solutions.
func Count(f *cnf.Formula, space *cube.Space, opts Options) *big.Int {
	e := New(f, space, opts)
	return e.man.SatCount(e.Enumerate().Set)
}
