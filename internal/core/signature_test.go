package core

import (
	"math/big"
	"testing"

	"allsatpre/internal/cnf"
	"allsatpre/internal/lit"
)

func TestZobristKeysDistinct(t *testing.T) {
	// Keys for nearby clause ids / literals must all differ (spot check
	// for accidental structure in the derivation).
	seen := map[sig128]string{}
	add := func(s sig128, what string) {
		t.Helper()
		if prev, dup := seen[s]; dup {
			t.Fatalf("key collision: %s vs %s", what, prev)
		}
		seen[s] = what
	}
	for ci := int32(0); ci < 200; ci++ {
		add(clauseBase(ci), "base")
	}
	for ci := int32(0); ci < 40; ci++ {
		for l := lit.Lit(0); l < 40; l++ {
			add(falseKey(ci, l), "falseKey")
		}
	}
}

func TestResidualHashRestoredOnBacktrack(t *testing.T) {
	// Push a decision level, assign, pop: resid must return exactly.
	f := cnf.New(4)
	f.Add(lit.Pos(0), lit.Pos(1))
	f.Add(lit.Neg(0), lit.Pos(2))
	f.Add(lit.Neg(1), lit.Neg(2), lit.Pos(3))
	space := projSpace(0, 1, 2, 3)
	e := New(f, space, DefaultOptions())
	start := e.resid
	startUnsat := e.unsatCnt

	e.pushLevel()
	e.enqueue(lit.Pos(0), nil)
	if e.bcp() != nil {
		t.Fatal("unexpected conflict")
	}
	if e.resid == start {
		t.Fatal("assignment should change the residual hash")
	}
	e.popLevel()
	if e.resid != start || e.unsatCnt != startUnsat {
		t.Fatalf("residual not restored: unsat %d -> %d", startUnsat, e.unsatCnt)
	}

	// Two levels, partial pops.
	e.pushLevel()
	e.enqueue(lit.Neg(1), nil)
	e.bcp()
	mid := e.resid
	e.pushLevel()
	e.enqueue(lit.Pos(2), nil)
	e.bcp()
	e.popLevel()
	if e.resid != mid {
		t.Fatal("inner level not restored")
	}
	e.popLevel()
	if e.resid != start {
		t.Fatal("outer level not restored")
	}
}

func TestEqualResidualsSameHash(t *testing.T) {
	// Assigning irrelevant variables in different orders reaches the
	// same residual and therefore the same hash.
	f := cnf.New(4)
	f.Add(lit.Pos(2), lit.Pos(3)) // clause untouched by v0, v1
	space := projSpace(0, 1, 2, 3)

	e1 := New(f, space, DefaultOptions())
	e1.pushLevel()
	e1.enqueue(lit.Pos(0), nil)
	e1.bcp()
	e1.pushLevel()
	e1.enqueue(lit.Neg(1), nil)
	e1.bcp()

	e2 := New(f.Clone(), space, DefaultOptions())
	e2.pushLevel()
	e2.enqueue(lit.Neg(1), nil)
	e2.bcp()
	e2.pushLevel()
	e2.enqueue(lit.Pos(0), nil)
	e2.bcp()

	if e1.resid != e2.resid {
		t.Fatal("identical residuals hash differently")
	}
	// And an assignment touching the clause changes it.
	e2.pushLevel()
	e2.enqueue(lit.Neg(2), nil)
	e2.bcp()
	if e1.resid == e2.resid {
		t.Fatal("different residuals hash equal")
	}
}

func TestMemoHitRateOnShiftChain(t *testing.T) {
	// A long implication chain with repeated structure should produce
	// real cache hits and agree with the memo-off answer.
	n := 14
	f := cnf.New(2 * n)
	for i := 0; i < n; i++ {
		// x_i drives y_i: y_i ≡ x_i
		f.Add(lit.Neg(lit.Var(i)), lit.Pos(lit.Var(n+i)))
		f.Add(lit.Pos(lit.Var(i)), lit.Neg(lit.Var(n+i)))
	}
	vars := make([]int, n)
	for i := range vars {
		vars[i] = i
	}
	space := projSpace(vars...)
	e := New(f, space, DefaultOptions())
	r := e.Enumerate()
	if got := e.man.SatCount(r.Set); got.Cmp(big.NewInt(1<<uint(n))) != 0 {
		t.Fatalf("count %v, want 2^%d", got, n)
	}
	if r.Stats.CacheHits == 0 {
		t.Fatal("expected memo hits on repeated residuals")
	}
	off := EnumerateToResult(f, space, Options{EnableLearning: true})
	if off.Count.Cmp(big.NewInt(1<<uint(n))) != 0 {
		t.Fatal("memo-off disagrees")
	}
}
