package core

import (
	"math/rand"
	"testing"

	"allsatpre/internal/bdd"
	"allsatpre/internal/cnf"
	"allsatpre/internal/lit"
)

// TestEnumerateUnderPartitionsSolutionSet drives one reused enumerator
// through every assumption subcube of a random prefix and checks the
// guiding-path invariant: the per-subcube sets are pairwise disjoint and
// their union equals the sequential solution set. Reusing a single
// enumerator across subcubes also exercises memo and learned-clause
// sharing between calls.
func TestEnumerateUnderPartitionsSolutionSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3003))
	for iter := 0; iter < 120; iter++ {
		nVars := 4 + rng.Intn(7)
		f := randomFormula(rng, nVars, 1+rng.Intn(4*nVars), 3)
		nProj := 2 + rng.Intn(nVars-1)
		vars := rng.Perm(nVars)[:nProj]
		space := projSpace(vars...)

		full := New(f.Clone(), space, DefaultOptions())
		fr := full.Enumerate()

		e := New(f.Clone(), space, DefaultOptions())
		want := e.man.Import(full.man.Export(fr.Set))

		k := 1 + rng.Intn(2)
		if k > nProj {
			k = nProj
		}
		union := bdd.False
		for bits := 0; bits < 1<<k; bits++ {
			assumps := make([]lit.Lit, k)
			for i := 0; i < k; i++ {
				assumps[i] = lit.New(space.Vars()[i], bits&(1<<i) == 0)
			}
			sub := e.EnumerateUnder(assumps, 0)
			switch sub.Status {
			case SubSAT:
				if inter := e.man.And(union, sub.Set); inter != bdd.False {
					t.Fatalf("iter %d bits %d: subcube sets overlap", iter, bits)
				}
				union = e.man.Or(union, sub.Set)
			case SubUnsatAssumps:
				// The failed subset alone must already exclude every
				// solution.
				r := want
				for _, l := range sub.Failed {
					r = e.man.And(r, e.man.Lit(l))
				}
				if r != bdd.False {
					t.Fatalf("iter %d bits %d: failed set %v does not empty the solutions",
						iter, bits, sub.Failed)
				}
			case SubGlobalUnsat:
				if want != bdd.False {
					t.Fatalf("iter %d: global UNSAT reported for satisfiable formula", iter)
				}
			case SubSplit:
				t.Fatalf("iter %d: unexpected split with no cap", iter)
			}
		}
		if union != want {
			t.Fatalf("iter %d: union of subcube sets differs from sequential set", iter)
		}
	}
}

func TestEnumerateUnderFailedAssumptions(t *testing.T) {
	// (¬a ∨ ¬b) ∧ (c ∨ d): assuming a then b conflicts; the failed set
	// must name both conspirators, not report global UNSAT.
	f := cnf.New(4)
	f.AddClause(cnf.Clause{lit.Neg(0), lit.Neg(1)})
	f.AddClause(cnf.Clause{lit.Pos(2), lit.Pos(3)})
	space := projSpace(0, 1, 2, 3)
	e := New(f, space, DefaultOptions())
	sub := e.EnumerateUnder([]lit.Lit{lit.Pos(0), lit.Pos(1)}, 0)
	if sub.Status != SubUnsatAssumps {
		t.Fatalf("status %v, want unsat-assumptions", sub.Status)
	}
	got := map[lit.Lit]bool{}
	for _, l := range sub.Failed {
		got[l] = true
	}
	if len(sub.Failed) != 2 || !got[lit.Pos(0)] || !got[lit.Pos(1)] {
		t.Fatalf("failed set %v, want {0, 1}", sub.Failed)
	}
	// The same enumerator must still serve the complementary subcube.
	ok := e.EnumerateUnder([]lit.Lit{lit.Pos(0), lit.Neg(1)}, 0)
	if ok.Status != SubSAT || ok.Set == bdd.False {
		t.Fatalf("follow-up subcube: status %v", ok.Status)
	}
}

func TestEnumerateUnderRootFalsifiedAssumption(t *testing.T) {
	// Unit (¬a) falsifies the assumption at the root: the failed set is
	// {a} alone — the formula, not any co-assumption, excludes it.
	f := cnf.New(3)
	f.AddClause(cnf.Clause{lit.Neg(0)})
	f.AddClause(cnf.Clause{lit.Pos(1), lit.Pos(2)})
	space := projSpace(0, 1, 2)
	e := New(f, space, DefaultOptions())
	sub := e.EnumerateUnder([]lit.Lit{lit.Pos(1), lit.Pos(0)}, 0)
	if sub.Status != SubUnsatAssumps {
		t.Fatalf("status %v, want unsat-assumptions", sub.Status)
	}
	if len(sub.Failed) != 1 || sub.Failed[0] != lit.Pos(0) {
		t.Fatalf("failed set %v, want {+0}", sub.Failed)
	}
}

func TestEnumerateUnderGlobalUnsat(t *testing.T) {
	f := cnf.New(2)
	f.AddClause(cnf.Clause{lit.Pos(0)})
	f.AddClause(cnf.Clause{lit.Neg(0)})
	space := projSpace(0, 1)
	e := New(f, space, DefaultOptions())
	sub := e.EnumerateUnder([]lit.Lit{lit.Pos(1)}, 0)
	if sub.Status != SubGlobalUnsat {
		t.Fatalf("status %v, want unsat-global", sub.Status)
	}
}

func TestEnumerateUnderSplitRequest(t *testing.T) {
	// (a ∨ b ∨ c) needs two nested decisions under no assumptions, so a
	// one-decision cap must trip; the uncapped retry then completes and
	// the result matches the sequential enumeration.
	f := cnf.New(3)
	f.AddClause(cnf.Clause{lit.Pos(0), lit.Pos(1), lit.Pos(2)})
	space := projSpace(0, 1, 2)
	e := New(f.Clone(), space, DefaultOptions())
	sub := e.EnumerateUnder(nil, 1)
	if sub.Status != SubSplit {
		t.Fatalf("status %v, want split", sub.Status)
	}
	if sub.Aborted {
		t.Fatal("split request must not count as an abort")
	}
	retry := e.EnumerateUnder(nil, 0)
	if retry.Status != SubSAT {
		t.Fatalf("retry status %v", retry.Status)
	}
	want := EnumerateToResult(f.Clone(), space, DefaultOptions())
	if got := e.man.SatCount(retry.Set); got.Cmp(want.Count) != 0 {
		t.Fatalf("post-split count %v, want %v", got, want.Count)
	}
}
