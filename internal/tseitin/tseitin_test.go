package tseitin

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"allsatpre/internal/circuit"
	"allsatpre/internal/cnf"
	"allsatpre/internal/lit"
	"allsatpre/internal/sat"
)

func loadS27(t *testing.T) *circuit.Circuit {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "s27.bench"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := circuit.ParseBenchString("s27", string(data))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// randomCombCircuit builds a random DAG of gates over nIn inputs.
func randomCombCircuit(rng *rand.Rand, nIn, nGates int) *circuit.Circuit {
	c := circuit.New("rnd")
	for i := 0; i < nIn; i++ {
		c.AddInput(name("i", i))
	}
	types := []circuit.GateType{circuit.And, circuit.Or, circuit.Nand,
		circuit.Nor, circuit.Xor, circuit.Xnor, circuit.Not, circuit.Buf}
	for g := 0; g < nGates; g++ {
		typ := types[rng.Intn(len(types))]
		n := c.NumGates()
		var fanins []int
		switch typ {
		case circuit.Not, circuit.Buf:
			fanins = []int{rng.Intn(n)}
		default:
			fanins = []int{rng.Intn(n), rng.Intn(n)}
		}
		c.AddGate(name("g", g), typ, fanins...)
	}
	c.MarkOutput(c.NumGates() - 1)
	return c
}

func name(p string, i int) string {
	return p + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + string(rune('0'+i%10))
}

// TestEncodingAgreesWithSimulation: for random input vectors, the CNF with
// inputs fixed must be satisfiable with internal variables equal to the
// simulated values, and the output variable must match.
func TestEncodingAgreesWithSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for iter := 0; iter < 60; iter++ {
		c := randomCombCircuit(rng, 2+rng.Intn(4), 1+rng.Intn(15))
		e, err := Encode(c)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := circuit.NewSimulator(c)
		if err != nil {
			t.Fatal(err)
		}
		for vec := 0; vec < 8; vec++ {
			in := make([]bool, len(c.Inputs))
			for i := range in {
				in[i] = rng.Intn(2) == 0
			}
			out, _ := sim.Step(nil, in)

			s := sat.FromFormula(e.F, sat.DefaultOptions())
			var assume []lit.Lit
			for i, v := range e.InputVars {
				assume = append(assume, lit.New(v, !in[i]))
			}
			if st := s.Solve(assume...); st != sat.Sat {
				t.Fatalf("iter %d: CNF unsat under consistent inputs (%v)", iter, st)
			}
			m := s.Model()
			for k, ov := range e.OutputVars {
				if m[ov] != out[k] {
					t.Fatalf("iter %d: output %d mismatch: CNF %v, sim %v", iter, k, m[ov], out[k])
				}
			}
			// Forcing the output to the opposite value must be UNSAT.
			assume2 := append(append([]lit.Lit(nil), assume...),
				lit.New(e.OutputVars[0], out[0]))
			if st := s.Solve(assume2...); st != sat.Unsat {
				t.Fatalf("iter %d: flipped output should be UNSAT, got %v", iter, st)
			}
		}
	}
}

// TestModelCountMatchesCircuit: the number of CNF models equals 2^(inputs)
// for a combinational circuit, since internal signals are functionally
// determined.
func TestModelCountMatchesCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for iter := 0; iter < 40; iter++ {
		c := randomCombCircuit(rng, 2+rng.Intn(3), 1+rng.Intn(8))
		e, err := Encode(c)
		if err != nil {
			t.Fatal(err)
		}
		if e.F.NumVars > 20 {
			continue
		}
		want := 1 << uint(len(c.Inputs))
		if got := e.F.CountModels(); got != want {
			t.Fatalf("iter %d: %d models, want %d\n%s", iter, got, want,
				cnf.DimacsString(e.F, nil))
		}
	}
}

func TestS27Encoding(t *testing.T) {
	c := loadS27(t)
	e, err := Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.InputVars) != 4 || len(e.StateVars) != 3 || len(e.NextStateVars) != 3 || len(e.OutputVars) != 1 {
		t.Fatalf("var group sizes wrong: %d %d %d %d",
			len(e.InputVars), len(e.StateVars), len(e.NextStateVars), len(e.OutputVars))
	}
	if e.Circuit() != c {
		t.Fatal("Circuit() accessor")
	}
	// CNF model count = 2^(PI+FF): 2^7 = 128.
	if got := e.F.CountModels(); got != 128 {
		t.Fatalf("s27 CNF has %d models, want 128", got)
	}
}

// TestS27TransitionAgreement: a SAT model of the CNF, read at
// (state, input) → next-state vars, must agree with simulation.
func TestS27TransitionAgreement(t *testing.T) {
	c := loadS27(t)
	e, _ := Encode(c)
	sim, _ := circuit.NewSimulator(c)
	rng := rand.New(rand.NewSource(99))
	s := sat.FromFormula(e.F, sat.DefaultOptions())
	for iter := 0; iter < 64; iter++ {
		st := []bool{rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0}
		in := []bool{rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0}
		_, next := sim.Step(st, in)
		var assume []lit.Lit
		for i, v := range e.StateVars {
			assume = append(assume, lit.New(v, !st[i]))
		}
		for i, v := range e.InputVars {
			assume = append(assume, lit.New(v, !in[i]))
		}
		if got := s.Solve(assume...); got != sat.Sat {
			t.Fatalf("iter %d: unsat", iter)
		}
		m := s.Model()
		for i, v := range e.NextStateVars {
			if m[v] != next[i] {
				t.Fatalf("iter %d: next-state %d mismatch", iter, i)
			}
		}
	}
}

func TestEncodeRejectsCyclic(t *testing.T) {
	c := circuit.New("cyc")
	a := c.AddInput("a")
	g1 := c.AddGate("g1", circuit.And, a, a)
	g2 := c.AddGate("g2", circuit.Or, g1, a)
	c.Gates[g1].Fanins[1] = g2
	if _, err := Encode(c); err == nil {
		t.Fatal("expected error on cyclic circuit")
	}
}

func TestConstants(t *testing.T) {
	c := circuit.New("const")
	z := c.AddGate("z", circuit.Const0)
	o := c.AddGate("o", circuit.Const1)
	f := c.AddGate("f", circuit.And, z, o)
	c.MarkOutput(f)
	e, err := Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	s := sat.FromFormula(e.F, sat.DefaultOptions())
	if st := s.Solve(); st != sat.Sat {
		t.Fatal("const circuit CNF should be SAT")
	}
	m := s.Model()
	if m[e.VarOf[z]] || !m[e.VarOf[o]] || m[e.VarOf[f]] {
		t.Fatal("constant values wrong in model")
	}
}
