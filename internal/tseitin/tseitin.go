// Package tseitin converts gate-level circuits into CNF via the Tseitin
// transformation: one CNF variable per signal and a constant-size clause
// set per gate, so the CNF is linear in circuit size and every satisfying
// assignment corresponds exactly to a consistent signal valuation.
package tseitin

import (
	"fmt"

	"allsatpre/internal/circuit"
	"allsatpre/internal/cnf"
	"allsatpre/internal/lit"
)

// Encoding holds a circuit's CNF image together with the signal↔variable
// correspondence.
type Encoding struct {
	// F is the CNF. Variables 0..NumVars-1 map one-to-one onto gates.
	F *cnf.Formula
	// VarOf maps gate index to CNF variable.
	VarOf []lit.Var
	// GateOf maps CNF variable to gate index.
	GateOf []int
	// InputVars are the CNF variables of the primary inputs, in circuit
	// declaration order.
	InputVars []lit.Var
	// StateVars are the variables of the latch outputs (present state Q),
	// in latch declaration order.
	StateVars []lit.Var
	// NextStateVars are the variables of the latch D signals (next state),
	// in latch declaration order.
	NextStateVars []lit.Var
	// OutputVars are the variables of the primary outputs.
	OutputVars []lit.Var

	c *circuit.Circuit
}

// Circuit returns the encoded circuit.
func (e *Encoding) Circuit() *circuit.Circuit { return e.c }

// Encode builds the Tseitin CNF of the circuit's combinational logic.
// Primary inputs and latch outputs (present-state variables) are
// unconstrained; DFF gates themselves contribute no clauses — their D
// fanin's variable is reported in NextStateVars.
func Encode(c *circuit.Circuit) (*Encoding, error) {
	if _, err := c.TopoOrder(); err != nil {
		return nil, err
	}
	e := &Encoding{
		F:      cnf.New(c.NumGates()),
		VarOf:  make([]lit.Var, c.NumGates()),
		GateOf: make([]int, c.NumGates()),
		c:      c,
	}
	for i := range c.Gates {
		e.VarOf[i] = lit.Var(i)
		e.GateOf[i] = i
	}
	for i, g := range c.Gates {
		z := lit.Pos(e.VarOf[i])
		nz := z.Not()
		fan := func(k int) lit.Lit { return lit.Pos(e.VarOf[g.Fanins[k]]) }
		switch g.Type {
		case circuit.Input, circuit.DFF:
			// free variables
		case circuit.Const0:
			e.F.Add(nz)
		case circuit.Const1:
			e.F.Add(z)
		case circuit.Buf:
			a := fan(0)
			e.F.Add(nz, a)
			e.F.Add(z, a.Not())
		case circuit.Not:
			a := fan(0)
			e.F.Add(nz, a.Not())
			e.F.Add(z, a)
		case circuit.And, circuit.Nand:
			out, nout := z, nz
			if g.Type == circuit.Nand {
				out, nout = nz, z
			}
			big := make([]lit.Lit, 0, len(g.Fanins)+1)
			big = append(big, out)
			for k := range g.Fanins {
				e.F.Add(nout, fan(k))
				big = append(big, fan(k).Not())
			}
			e.F.Add(big...)
		case circuit.Or, circuit.Nor:
			out, nout := z, nz
			if g.Type == circuit.Nor {
				out, nout = nz, z
			}
			big := make([]lit.Lit, 0, len(g.Fanins)+1)
			big = append(big, nout)
			for k := range g.Fanins {
				e.F.Add(out, fan(k).Not())
				big = append(big, fan(k))
			}
			e.F.Add(big...)
		case circuit.Xor, circuit.Xnor:
			a, b := fan(0), fan(1)
			out := z
			if g.Type == circuit.Xnor {
				out = nz
			}
			nout := out.Not()
			// out ≡ a ⊕ b
			e.F.Add(nout, a, b)
			e.F.Add(nout, a.Not(), b.Not())
			e.F.Add(out, a.Not(), b)
			e.F.Add(out, a, b.Not())
		default:
			return nil, fmt.Errorf("tseitin: unsupported gate type %v", g.Type)
		}
	}
	for _, i := range c.Inputs {
		e.InputVars = append(e.InputVars, e.VarOf[i])
	}
	for _, i := range c.Latches {
		e.StateVars = append(e.StateVars, e.VarOf[i])
		e.NextStateVars = append(e.NextStateVars, e.VarOf[c.Gates[i].Fanins[0]])
	}
	for _, i := range c.Outputs {
		e.OutputVars = append(e.OutputVars, e.VarOf[i])
	}
	return e, nil
}
