package tseitin

import (
	"reflect"
	"sync"
	"testing"

	"allsatpre/internal/gen"
)

func TestEncodeCachedReusesAndAgrees(t *testing.T) {
	c := gen.Counter(6, true, false)
	e1, err := EncodeCached(c)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := EncodeCached(c)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Error("second EncodeCached of the same circuit did not reuse the encoding")
	}
	fresh, err := Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e1.F.Clauses, fresh.F.Clauses) {
		t.Error("cached encoding clauses differ from a fresh Encode")
	}
	if !reflect.DeepEqual(e1.StateVars, fresh.StateVars) ||
		!reflect.DeepEqual(e1.NextStateVars, fresh.NextStateVars) ||
		!reflect.DeepEqual(e1.InputVars, fresh.InputVars) {
		t.Error("cached encoding variable groups differ from a fresh Encode")
	}

	// A distinct circuit object gets its own encoding.
	other := gen.Counter(6, true, false)
	e3, err := EncodeCached(other)
	if err != nil {
		t.Fatal(err)
	}
	if e3 == e1 {
		t.Error("different circuit objects shared an encoding")
	}
}

func TestEncodeCachedConcurrent(t *testing.T) {
	c := gen.GrayCounter(5)
	var wg sync.WaitGroup
	encs := make([]*Encoding, 8)
	for i := range encs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := EncodeCached(c)
			if err != nil {
				t.Error(err)
				return
			}
			encs[i] = e
		}(i)
	}
	wg.Wait()
	for _, e := range encs {
		if e == nil || !reflect.DeepEqual(e.F.Clauses, encs[0].F.Clauses) {
			t.Fatal("concurrent EncodeCached returned inconsistent encodings")
		}
	}
}
