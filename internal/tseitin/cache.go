package tseitin

import (
	"sync"

	"allsatpre/internal/circuit"
)

// The encode cache short-circuits re-encoding the same circuit object:
// reachability loops build one instance per step from an unchanged
// circuit, and the parallel BMC sweep encodes per worker. A handful of
// entries suffices — the working set is "the circuits of the current
// run", not a corpus.
const encodeCacheSize = 8

var (
	encodeCacheMu    sync.Mutex
	encodeCache      [encodeCacheSize]encodeCacheEntry
	encodeCacheClock int
)

type encodeCacheEntry struct {
	c     *circuit.Circuit
	gates int
	enc   *Encoding
}

// EncodeCached returns the Tseitin encoding of c, reusing a previous
// encoding when the same circuit value was encoded recently. The cache
// is keyed by pointer identity with the gate count as a staleness guard,
// so callers must not mutate a circuit after encoding it (the rest of
// the pipeline already assumes frozen circuits).
//
// The returned Encoding is shared: treat it — including Enc.F — as
// immutable. Clone F before adding clauses (NewInstance does).
func EncodeCached(c *circuit.Circuit) (*Encoding, error) {
	encodeCacheMu.Lock()
	for i := range encodeCache {
		ce := &encodeCache[i]
		if ce.c == c && ce.gates == c.NumGates() {
			enc := ce.enc
			encodeCacheMu.Unlock()
			return enc, nil
		}
	}
	encodeCacheMu.Unlock()
	enc, err := Encode(c)
	if err != nil {
		return nil, err
	}
	encodeCacheMu.Lock()
	encodeCache[encodeCacheClock%encodeCacheSize] = encodeCacheEntry{
		c: c, gates: c.NumGates(), enc: enc,
	}
	encodeCacheClock++
	encodeCacheMu.Unlock()
	return enc, nil
}
