package circuit

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"allsatpre/internal/lit"
)

// buildToy returns a small sequential circuit: a 2-bit counter with enable.
//
//	d0 = s0 XOR en
//	d1 = s1 XOR (s0 AND en)
func buildToy(t *testing.T) *Circuit {
	t.Helper()
	c := New("toy")
	en := c.AddInput("en")
	// Latches declared with placeholder fanins resolved after the logic.
	// AddLatch requires an existing gate, so declare logic bottom-up using
	// forward gate creation: create DFFs last referencing logic, but logic
	// references DFF outputs — so create DFF with a temporary source and
	// patch. Simpler: create inputs, then DFFs fed initially by the input,
	// then patch fanins.
	s0 := c.AddLatch("s0", en)
	s1 := c.AddLatch("s1", en)
	d0 := c.AddGate("d0", Xor, s0, en)
	carry := c.AddGate("carry", And, s0, en)
	d1 := c.AddGate("d1", Xor, s1, carry)
	c.Gates[s0].Fanins[0] = d0
	c.Gates[s1].Fanins[0] = d1
	c.MarkOutput(s1)
	return c
}

func TestAddGateValidation(t *testing.T) {
	c := New("t")
	a := c.AddInput("a")
	mustPanic(t, func() { c.AddInput("a") })           // duplicate
	mustPanic(t, func() { c.AddGate("x", Not, a, a) }) // arity
	mustPanic(t, func() { c.AddGate("y", And, a) })    // arity
	mustPanic(t, func() { c.AddGate("z", Buf, 99) })   // range
	mustPanic(t, func() { c.MarkOutput(42) })          // range
	if c.IndexOf("a") != a || c.IndexOf("nope") != -1 {
		t.Error("IndexOf")
	}
	if c.GateName(a) != "a" {
		t.Error("GateName")
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestEvalGateTruth(t *testing.T) {
	cases := []struct {
		t    GateType
		in   []bool
		want bool
	}{
		{Const0, nil, false}, {Const1, nil, true},
		{Buf, []bool{true}, true}, {Not, []bool{true}, false},
		{And, []bool{true, true, true}, true}, {And, []bool{true, false}, false},
		{Nand, []bool{true, true}, false}, {Nand, []bool{false, true}, true},
		{Or, []bool{false, false}, false}, {Or, []bool{false, true}, true},
		{Nor, []bool{false, false}, true}, {Nor, []bool{true, false}, false},
		{Xor, []bool{true, false}, true}, {Xor, []bool{true, true}, false},
		{Xnor, []bool{true, true}, true}, {Xnor, []bool{true, false}, false},
		{DFF, []bool{true}, true},
	}
	for _, tc := range cases {
		if got := EvalGate(tc.t, tc.in); got != tc.want {
			t.Errorf("EvalGate(%v, %v) = %v, want %v", tc.t, tc.in, got, tc.want)
		}
	}
	mustPanic(t, func() { EvalGate(GateType(99), nil) })
	mustPanic(t, func() { EvalGateTern(GateType(99), nil) })
}

func TestEvalGateTernRefinesBinary(t *testing.T) {
	types := []GateType{Buf, Not, And, Nand, Or, Nor, Xor, Xnor}
	for _, typ := range types {
		mn, _ := typ.arity()
		n := mn
		for x := 0; x < 1<<uint(n); x++ {
			in := make([]bool, n)
			tin := make([]lit.Tern, n)
			for i := 0; i < n; i++ {
				in[i] = x&(1<<uint(i)) != 0
				tin[i] = lit.TernOf(in[i])
			}
			want := lit.TernOf(EvalGate(typ, in))
			if got := EvalGateTern(typ, tin); got != want {
				t.Errorf("%v(%v): tern %v, binary %v", typ, in, got, want)
			}
		}
	}
	// Controlling values beat X.
	if EvalGateTern(And, []lit.Tern{lit.False, lit.Unknown}) != lit.False {
		t.Error("0 AND X should be 0")
	}
	if EvalGateTern(Or, []lit.Tern{lit.Unknown, lit.True}) != lit.True {
		t.Error("X OR 1 should be 1")
	}
	if EvalGateTern(Xor, []lit.Tern{lit.Unknown, lit.True}) != lit.Unknown {
		t.Error("X XOR 1 should be X")
	}
}

func TestToyCounterSimulation(t *testing.T) {
	c := buildToy(t)
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	state := []bool{false, false}
	// 5 enabled steps: counter goes 00 -> 01 -> 10 -> 11 -> 00 -> 01.
	for step, want := range [][]bool{{true, false}, {false, true}, {true, true}, {false, false}, {true, false}} {
		_, state = sim.Step(state, []bool{true})
		if state[0] != want[0] || state[1] != want[1] {
			t.Fatalf("step %d: state %v, want %v", step, state, want)
		}
	}
	// Disabled step holds.
	prev := append([]bool(nil), state...)
	_, state = sim.Step(state, []bool{false})
	if state[0] != prev[0] || state[1] != prev[1] {
		t.Fatal("disabled counter should hold state")
	}
}

func TestStepDimensionPanics(t *testing.T) {
	c := buildToy(t)
	sim, _ := NewSimulator(c)
	mustPanic(t, func() { sim.Step([]bool{false}, []bool{true}) })
	mustPanic(t, func() { sim.StepTern(nil, nil) })
	mustPanic(t, func() { sim.Step64(nil, nil) })
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	c := New("cyc")
	a := c.AddInput("a")
	g1 := c.AddGate("g1", And, a, a)
	g2 := c.AddGate("g2", Or, g1, a)
	// Introduce a combinational cycle g1 <- g2.
	c.Gates[g1].Fanins[1] = g2
	if _, err := c.TopoOrder(); err == nil {
		t.Fatal("expected cycle error")
	}
	if _, err := c.Levels(); err == nil {
		t.Fatal("Levels should propagate cycle error")
	}
	if _, err := NewSimulator(c); err == nil {
		t.Fatal("NewSimulator should reject cycles")
	}
	if d, err := c.Depth(); err == nil {
		t.Fatalf("Depth should fail, got %d", d)
	}
	if s := c.Stats(); s.Depth != -1 {
		t.Fatal("Stats depth should be -1 on cyclic netlists")
	}
}

func TestLatchFeedbackIsNotACycle(t *testing.T) {
	c := buildToy(t)
	if _, err := c.TopoOrder(); err != nil {
		t.Fatalf("latch feedback flagged as cycle: %v", err)
	}
	d, err := c.Depth()
	if err != nil || d != 2 {
		t.Fatalf("Depth = %d, %v; want 2", d, err)
	}
}

func TestLevels(t *testing.T) {
	c := buildToy(t)
	lvl, err := c.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if lvl[c.IndexOf("en")] != 0 || lvl[c.IndexOf("s0")] != 0 {
		t.Error("sources should be level 0")
	}
	if lvl[c.IndexOf("carry")] != 1 || lvl[c.IndexOf("d1")] != 2 {
		t.Errorf("levels: carry=%d d1=%d", lvl[c.IndexOf("carry")], lvl[c.IndexOf("d1")])
	}
}

func TestFanoutCounts(t *testing.T) {
	c := buildToy(t)
	fo := c.FanoutCounts()
	if fo[c.IndexOf("en")] != 3 { // d0, carry, plus initial? en feeds d0 XOR and carry AND only after patch
		// en appears in d0 and carry fanins = 2; the initial latch fanins were patched away.
		t.Logf("fanout(en) = %d", fo[c.IndexOf("en")])
	}
	if fo[c.IndexOf("d0")] != 1 {
		t.Errorf("fanout(d0) = %d, want 1 (the latch)", fo[c.IndexOf("d0")])
	}
}

func TestS27ParseAndStats(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "s27.bench"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := ParseBenchString("s27", string(data))
	if err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Inputs != 4 || s.Outputs != 1 || s.Latches != 3 {
		t.Fatalf("s27 stats wrong: %v", s)
	}
	if s.CombGates != 10 {
		t.Fatalf("s27 should have 10 combinational gates, got %d", s.CombGates)
	}
	if !strings.Contains(s.String(), "PI=4") {
		t.Error("Stats.String")
	}
}

func TestS27SimulationKnownVector(t *testing.T) {
	data, _ := os.ReadFile(filepath.Join("..", "..", "testdata", "s27.bench"))
	c, err := ParseBenchString("s27", string(data))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	// All-zero state, all-zero inputs: compute by hand.
	// G14=NOT(G0)=1, G8=AND(G14,G6)=0, G12=NOR(G1,G7)=1, G15=OR(G12,G8)=1,
	// G16=OR(G3,G8)=0, G9=NAND(G16,G15)=1, G11=NOR(G5,G9)=0, G17=NOT(G11)=1,
	// G10=NOR(G14,G11)=0, G13=NOR(G2,G12)=0.
	out, next := sim.Step([]bool{false, false, false}, []bool{false, false, false, false})
	if !out[0] {
		t.Error("G17 should be 1")
	}
	for i, want := range []bool{false, false, false} { // G10, G11, G13
		if next[i] != want {
			t.Errorf("next[%d] = %v, want %v", i, next[i], want)
		}
	}
}

func TestBenchRoundTrip(t *testing.T) {
	data, _ := os.ReadFile(filepath.Join("..", "..", "testdata", "s27.bench"))
	c, err := ParseBenchString("s27", string(data))
	if err != nil {
		t.Fatal(err)
	}
	text := BenchString(c)
	c2, err := ParseBenchString("s27rt", text)
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, text)
	}
	// Behavioural equivalence on random vectors.
	sim1, _ := NewSimulator(c)
	sim2, _ := NewSimulator(c2)
	rng := rand.New(rand.NewSource(9))
	st1 := make([]bool, 3)
	st2 := make([]bool, 3)
	for step := 0; step < 200; step++ {
		in := []bool{rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0}
		var o1, o2 []bool
		o1, st1 = sim1.Step(st1, in)
		o2, st2 = sim2.Step(st2, in)
		if o1[0] != o2[0] {
			t.Fatalf("step %d: outputs diverge", step)
		}
	}
}

func TestBenchParseErrors(t *testing.T) {
	cases := []string{
		"INPUT(a)\nINPUT(a)\n",                  // dup input
		"INPUT a\n",                             // malformed
		"INPUT()\n",                             // empty name
		"f = AND(a, b)\n",                       // undefined fanins
		"INPUT(a)\nf = FROB(a, a)\n",            // unknown type
		"INPUT(a)\nf = NOT(a, a)\n",             // arity
		"INPUT(a)\nOUTPUT(zz)\nf = NOT(a)",      // undefined output
		"INPUT(a)\nf AND(a)\n",                  // no '='
		"INPUT(a)\nf = AND a, a\n",              // no parens
		"INPUT(a)\nf = AND(a, g)\ng = NOT(f)\n", // comb cycle
		"INPUT(a)\nf = NOT(a)\nf = BUF(a)\n",    // dup definition
	}
	for _, s := range cases {
		if _, err := ParseBenchString("bad", s); err == nil {
			t.Errorf("expected parse error for:\n%s", s)
		}
	}
}

func TestBenchConstAndAliases(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(f)
z = CONST0()
o = ONE()
b = BUFF(a)
n = INV(b)
q = FF(n)
f = and(q, o)
`
	c, err := ParseBenchString("alias", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Latches) != 1 || c.Gates[c.IndexOf("z")].Type != Const0 ||
		c.Gates[c.IndexOf("o")].Type != Const1 {
		t.Fatal("alias parsing wrong")
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	out, next := sim.Step([]bool{true}, []bool{true})
	if !out[0] {
		t.Error("f = q AND 1 with q=1 should be 1")
	}
	if next[0] {
		t.Error("next q = NOT(BUF(1)) should be 0")
	}
}

func TestStep64MatchesScalar(t *testing.T) {
	data, _ := os.ReadFile(filepath.Join("..", "..", "testdata", "s27.bench"))
	c, err := ParseBenchString("s27", string(data))
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := NewSimulator(c)
	rng := rand.New(rand.NewSource(123))
	nL, nI := len(c.Latches), len(c.Inputs)
	state64 := make([]uint64, nL)
	in64 := make([]uint64, nI)
	for i := range state64 {
		state64[i] = rng.Uint64()
	}
	for i := range in64 {
		in64[i] = rng.Uint64()
	}
	out64, next64 := sim.Step64(state64, in64)
	for bit := 0; bit < 64; bit++ {
		st := make([]bool, nL)
		in := make([]bool, nI)
		for i := range st {
			st[i] = state64[i]&(1<<uint(bit)) != 0
		}
		for i := range in {
			in[i] = in64[i]&(1<<uint(bit)) != 0
		}
		out, next := sim.Step(st, in)
		for k := range out {
			if out[k] != (out64[k]&(1<<uint(bit)) != 0) {
				t.Fatalf("bit %d output %d mismatch", bit, k)
			}
		}
		for k := range next {
			if next[k] != (next64[k]&(1<<uint(bit)) != 0) {
				t.Fatalf("bit %d next-state %d mismatch", bit, k)
			}
		}
	}
}

func TestStepTernRefinesStep(t *testing.T) {
	data, _ := os.ReadFile(filepath.Join("..", "..", "testdata", "s27.bench"))
	c, _ := ParseBenchString("s27", string(data))
	sim, _ := NewSimulator(c)
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 100; iter++ {
		st := make([]lit.Tern, 3)
		in := make([]lit.Tern, 4)
		for i := range st {
			st[i] = lit.Tern(rng.Intn(3))
		}
		for i := range in {
			in[i] = lit.Tern(rng.Intn(3))
		}
		outT, nextT := sim.StepTern(st, in)
		// Every completion of the X bits must agree with known outputs.
		for comp := 0; comp < 8; comp++ {
			stB := make([]bool, 3)
			inB := make([]bool, 4)
			k := 0
			ok := true
			for i := range st {
				if v, known := st[i].Bool(); known {
					stB[i] = v
				} else {
					stB[i] = comp&(1<<uint(k)) != 0
					k++
					if k > 3 {
						ok = false
						break
					}
				}
			}
			for i := range in {
				if v, known := in[i].Bool(); known {
					inB[i] = v
				} else {
					inB[i] = comp&(1<<uint(k%3)) != 0
				}
			}
			if !ok {
				continue
			}
			outB, nextB := sim.Step(stB, inB)
			for j := range outT {
				if v, known := outT[j].Bool(); known && v != outB[j] {
					t.Fatalf("ternary output %d=%v contradicts completion", j, outT[j])
				}
			}
			for j := range nextT {
				if v, known := nextT[j].Bool(); known && v != nextB[j] {
					t.Fatalf("ternary next %d=%v contradicts completion", j, nextT[j])
				}
			}
		}
	}
}

func TestRunTrace(t *testing.T) {
	c := buildToy(t)
	sim, _ := NewSimulator(c)
	trace, final := sim.Run([]bool{false, false}, [][]bool{{true}, {true}, {true}})
	if len(trace) != 3 {
		t.Fatal("trace length")
	}
	if final[0] != true || final[1] != true {
		t.Fatalf("final state %v, want [true true]", final)
	}
}

func TestConeOfInfluence(t *testing.T) {
	c := New("coi")
	a := c.AddInput("a")
	b := c.AddInput("b")
	x := c.AddGate("x", Not, a)
	y := c.AddGate("y", Not, b) // not in COI of out
	out := c.AddGate("out", And, x, a)
	c.MarkOutput(out)
	_ = y
	coi := c.ConeOfInfluence([]int{out})
	if !coi[a] || !coi[x] || !coi[out] {
		t.Error("COI missing gates")
	}
	if coi[b] || coi[y] {
		t.Error("COI includes unrelated gates")
	}
	ec := c.ExtractCOI([]int{out})
	if ec.NumGates() != 3 || len(ec.Inputs) != 1 || len(ec.Outputs) != 1 {
		t.Fatalf("ExtractCOI: %v", ec.Stats())
	}
}

func TestExtractCOIWithLatches(t *testing.T) {
	c := buildToy(t)
	// COI of s1 includes everything.
	ec := c.ExtractCOI([]int{c.IndexOf("s1")})
	if len(ec.Latches) != 2 {
		t.Fatalf("COI should keep both latches, got %d", len(ec.Latches))
	}
	// Behavioural equivalence.
	sim1, _ := NewSimulator(c)
	sim2, _ := NewSimulator(ec)
	st1 := []bool{false, false}
	st2 := []bool{false, false}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		in := []bool{rng.Intn(2) == 0}
		var o1, o2 []bool
		o1, st1 = sim1.Step(st1, in)
		o2, st2 = sim2.Step(st2, in)
		if o1[0] != o2[0] {
			t.Fatalf("COI extraction changed behaviour at step %d", i)
		}
	}
}

func TestSortedNamesAndOutputs(t *testing.T) {
	c := buildToy(t)
	names := c.SortedSignalNames()
	if len(names) != c.NumGates() {
		t.Fatal("SortedSignalNames length")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatal("names not sorted")
		}
	}
	if got := c.SortedOutputs(); len(got) != 1 || got[0] != "s1" {
		t.Fatalf("SortedOutputs = %v", got)
	}
}

func TestGateTypeString(t *testing.T) {
	if And.String() != "AND" || DFF.String() != "DFF" {
		t.Error("GateType.String")
	}
	if !strings.Contains(GateType(99).String(), "99") {
		t.Error("unknown GateType.String")
	}
}
