package circuit

import (
	"fmt"
)

// OptResult reports what Optimize removed.
type OptResult struct {
	// ConstFolded counts gates replaced by constants.
	ConstFolded int
	// BuffersCollapsed counts BUF gates bypassed.
	BuffersCollapsed int
	// DeadRemoved counts gates dropped as unreachable from outputs and
	// latches.
	DeadRemoved int
}

// Optimize returns a behaviourally equivalent, cleaned copy of the
// circuit: constants are propagated through the combinational logic
// (0 dominates AND, 1 dominates OR, inverters fold), buffer chains are
// bypassed, and gates feeding neither an output nor a latch are swept.
// Inputs and latches are preserved verbatim so the state space and the
// I/O interface are unchanged.
func Optimize(c *Circuit) (*Circuit, OptResult, error) {
	var res OptResult
	order, err := c.TopoOrder()
	if err != nil {
		return nil, res, err
	}

	// Phase 1: compute, for each gate, either a constant value or a
	// representative gate index (for buffers) after folding.
	type fold struct {
		isConst bool
		val     bool
		rep     int // representative original gate index
	}
	folds := make([]fold, len(c.Gates))
	repOf := func(i int) fold { return folds[i] }
	for _, i := range order {
		g := &c.Gates[i]
		switch g.Type {
		case Input, DFF:
			folds[i] = fold{rep: i}
		case Const0:
			folds[i] = fold{isConst: true, val: false, rep: i}
		case Const1:
			folds[i] = fold{isConst: true, val: true, rep: i}
		case Buf:
			folds[i] = repOf(g.Fanins[0])
			if !folds[i].isConst {
				res.BuffersCollapsed++
			}
		case Not:
			in := repOf(g.Fanins[0])
			if in.isConst {
				folds[i] = fold{isConst: true, val: !in.val, rep: i}
				res.ConstFolded++
			} else {
				folds[i] = fold{rep: i}
			}
		case And, Nand, Or, Nor:
			neutral := g.Type == And || g.Type == Nand // neutral input value is 1 for AND
			dominating := !neutral                     // 1 dominates OR
			_ = dominating
			anyDominated := false
			allConst := true
			acc := neutral
			var liveFanins []int
			for _, fi := range g.Fanins {
				in := repOf(fi)
				if in.isConst {
					if g.Type == And || g.Type == Nand {
						acc = acc && in.val
						if !in.val {
							anyDominated = true
						}
					} else {
						acc = acc || in.val
						if in.val {
							anyDominated = true
						}
					}
				} else {
					allConst = false
					liveFanins = append(liveFanins, in.rep)
				}
			}
			invertOut := g.Type == Nand || g.Type == Nor
			switch {
			case anyDominated:
				v := g.Type == Or || g.Type == Nand // OR with a 1 → 1; AND with a 0 → 0, NAND → 1
				if g.Type == Nor {
					v = false
				}
				folds[i] = fold{isConst: true, val: v, rep: i}
				res.ConstFolded++
			case allConst:
				v := acc
				if invertOut {
					v = !v
				}
				folds[i] = fold{isConst: true, val: v, rep: i}
				res.ConstFolded++
			case len(liveFanins) == 1 && !invertOut:
				// AND/OR of one live input with neutral constants.
				folds[i] = fold{rep: liveFanins[0]}
				res.ConstFolded++
			default:
				folds[i] = fold{rep: i}
			}
		case Xor, Xnor:
			a, b := repOf(g.Fanins[0]), repOf(g.Fanins[1])
			inv := g.Type == Xnor
			switch {
			case a.isConst && b.isConst:
				folds[i] = fold{isConst: true, val: (a.val != b.val) != inv, rep: i}
				res.ConstFolded++
			case a.isConst && !a.val && !inv:
				folds[i] = fold{rep: b.rep} // 0 ⊕ x = x
				res.ConstFolded++
			case b.isConst && !b.val && !inv:
				folds[i] = fold{rep: a.rep}
				res.ConstFolded++
			default:
				folds[i] = fold{rep: i}
			}
		default:
			return nil, res, fmt.Errorf("circuit: Optimize: unsupported gate %v", g.Type)
		}
	}

	// Phase 2: mark gates live from outputs and latch D inputs, through
	// folded representatives.
	live := make([]bool, len(c.Gates))
	var mark func(i int)
	mark = func(i int) {
		f := folds[i]
		if f.isConst {
			live[f.rep] = true // keep a constant source
			return
		}
		i = f.rep
		if live[i] {
			return
		}
		live[i] = true
		g := &c.Gates[i]
		if g.Type == DFF {
			mark(g.Fanins[0])
			return
		}
		for _, fi := range g.Fanins {
			mark(fi)
		}
	}
	// Inputs and latches always survive (interface preservation).
	for _, i := range c.Inputs {
		live[i] = true
	}
	for _, i := range c.Latches {
		live[i] = true
		mark(c.Gates[i].Fanins[0])
	}
	for _, i := range c.Outputs {
		mark(i)
	}

	// Phase 3: rebuild.
	nc := New(c.Name + "_opt")
	remap := make([]int, len(c.Gates))
	for i := range remap {
		remap[i] = -1
	}
	var c0, c1 = -1, -1
	constGate := func(val bool) int {
		if val {
			if c1 < 0 {
				c1 = nc.AddGate("const1", Const1)
			}
			return c1
		}
		if c0 < 0 {
			c0 = nc.AddGate("const0", Const0)
		}
		return c0
	}
	resolve := func(i int) int {
		f := folds[i]
		if f.isConst {
			return constGate(f.val)
		}
		if remap[f.rep] < 0 {
			panic(fmt.Sprintf("circuit: Optimize: gate %q resolved before creation", c.Gates[f.rep].Name))
		}
		return remap[f.rep]
	}
	// Inputs first, then latch placeholders, then live logic in topo order.
	for _, i := range c.Inputs {
		remap[i] = nc.AddInput(c.Gates[i].Name)
	}
	for _, i := range c.Latches {
		idx := len(nc.Gates)
		nc.Gates = append(nc.Gates, Gate{Name: c.Gates[i].Name, Type: DFF, Fanins: []int{0}})
		nc.byName[c.Gates[i].Name] = idx
		nc.Latches = append(nc.Latches, idx)
		remap[i] = idx
	}
	for _, i := range order {
		g := &c.Gates[i]
		if g.Type == Input || g.Type == DFF {
			continue
		}
		if !live[i] || folds[i].rep != i || folds[i].isConst {
			if !live[i] {
				res.DeadRemoved++
			}
			continue
		}
		fan := make([]int, len(g.Fanins))
		for k, fi := range g.Fanins {
			fan[k] = resolve(fi)
		}
		remap[i] = nc.AddGate(g.Name, g.Type, fan...)
	}
	for _, i := range c.Latches {
		nc.Gates[remap[i]].Fanins[0] = resolve(c.Gates[i].Fanins[0])
	}
	for _, i := range c.Outputs {
		nc.MarkOutput(resolve(i))
	}
	return nc, res, nil
}
